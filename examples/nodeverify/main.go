// Nodeverify reproduces the paper's Figure 6 test bench: an STBus node with
// three initiators, two targets and a programming initiator (here, regular
// initiators that also program the arbitration priority registers through
// the node's register decoder), surrounded by CATG harnesses, monitors,
// protocol checkers and the scoreboard — then runs the full twelve-test
// suite on both views and prints the per-configuration verdict.
//
//	go run ./examples/nodeverify
package main

import (
	"fmt"
	"log"
	"os"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

func main() {
	// The Figure 6 node: 3 initiators, 2 targets, programmable arbitration
	// with the programming port exposed.
	cfg := nodespec.Config{
		Name:    "fig6",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Programmable, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x1000),
		ProgPort: true,
		ProgBase: 0x10_0000,
	}

	fmt.Printf("verifying %v\n", cfg)
	fmt.Printf("test suite: %d generic tests × 2 seeds, both views\n\n", len(testcases.All()))
	cr, err := regress.RunConfig(cfg, regress.Options{
		Tests: testcases.All(),
		Seeds: []int64{1, 2},
		Log:   os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(regress.MatrixReport([]*regress.ConfigResult{cr}))
	fmt.Println()
	fmt.Print(cr.SuiteCoverage.Report())
	fmt.Println()
	fmt.Print(cr.CodeCov.Report())
	fmt.Printf("\nsigned off: %v\n", cr.SignedOff())
	if !cr.SignedOff() {
		os.Exit(1)
	}
}
