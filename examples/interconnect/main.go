// Interconnect builds the paper's Figure 1 style hierarchical communication
// network out of the four basic STBus components — nodes, a size converter,
// a type converter and a register decoder — and drives directed traffic end
// to end across the hierarchy:
//
//	init0 (T3/64) ── size conv 64/32 ──┐
//	init1 (T3/32) ─────────────────────┤            ┌── mem A (T3/32)
//	init2 (T3/32) ─────────────────────┼─ node A ───┤
//	                                   (T3/32)      └── type conv t3/t2 ── node B ──┬── mem B (T2/32)
//	                                                                       (T2/32)  └── register decoder
//
//	go run ./examples/interconnect
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// driver streams scripted request packets on one port and collects response
// packets.
type driver struct {
	p      *stbus.Port
	toSend []stbus.Cell
	idx    int
	resp   [][]stbus.RespCell
	cur    []stbus.RespCell
}

func attach(sm *sim.Simulator, p *stbus.Port) *driver {
	d := &driver{p: p}
	sm.Seq(p.Name+".drv", func() {
		if d.idx < len(d.toSend) && p.ReqFire() {
			d.idx++
		}
		if d.idx < len(d.toSend) {
			p.DriveCell(d.toSend[d.idx])
		} else {
			p.IdleReq()
		}
		if p.RespFire() {
			c := p.SampleResp()
			d.cur = append(d.cur, c)
			if c.EOP {
				d.resp = append(d.resp, d.cur)
				d.cur = nil
			}
		}
		p.RGnt.SetBool(true)
	})
	return d
}

func (d *driver) send(cfg stbus.PortConfig, op stbus.Opcode, addr uint64, payload []byte, tid, src uint8) {
	cells, err := stbus.BuildRequest(cfg.Type, cfg.Endian, op, addr, payload,
		cfg.BusBytes(), tid, src, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	d.toSend = append(d.toSend, cells...)
}

func main() {
	sm := sim.New()
	root := sim.Root(sm)
	p32 := stbus.PortConfig{Type: stbus.Type3, DataBits: 32}.WithDefaults()
	p64 := stbus.PortConfig{Type: stbus.Type3, DataBits: 64}.WithDefaults()
	p32t2 := p32
	p32t2.Type = stbus.Type2

	const (
		memABase = 0x1000_0000
		memBBase = 0x2000_0000
		regBase  = 0x2008_0000
	)

	// Node A: the T3/32 router of the upper half.
	nodeA, err := rtl.NewNode(root, nodespec.Config{
		Name: "nodeA", Port: p32, NumInit: 3, NumTgt: 2,
		Arch: nodespec.FullCrossbar, ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.AddrMap{
			{Base: memABase, Size: 0x10_0000, Target: 0},
			{Base: memBBase, Size: 0x8_0000, Target: 1},
			{Base: regBase, Size: 0x1000, Target: 1},
		},
	}.WithDefaults())
	if err != nil {
		log.Fatal(err)
	}
	// Size converter 64 -> 32 in front of initiator port 0.
	szConv, err := rtl.NewSizeConverter(root, "sz64_32", p64, 32)
	if err != nil {
		log.Fatal(err)
	}
	stbus.Bind(sm, szConv.Down, nodeA.Init[0])
	// Memory A behind target 0.
	memA, err := rtl.NewMemory(root, rtl.MemoryConfig{
		Name: "memA", Port: p32, Base: memABase, Size: 0x10_0000, Latency: 2})
	if err != nil {
		log.Fatal(err)
	}
	stbus.Bind(sm, nodeA.Tgt[0], memA.Port)
	// Type converter T3 -> T2 toward the lower half.
	tyConv, err := rtl.NewTypeConverter(root, "t3_t2", p32, stbus.Type2)
	if err != nil {
		log.Fatal(err)
	}
	stbus.Bind(sm, nodeA.Tgt[1], tyConv.Up)
	// Node B: the T2/32 router of the lower half.
	nodeB, err := rtl.NewNode(root, nodespec.Config{
		Name: "nodeB", Port: p32t2, NumInit: 1, NumTgt: 2,
		Arch: nodespec.SharedBus, ReqArb: arb.Priority, RespArb: arb.Priority,
		Map: stbus.AddrMap{
			{Base: memBBase, Size: 0x8_0000, Target: 0},
			{Base: regBase, Size: 0x1000, Target: 1},
		},
	}.WithDefaults())
	if err != nil {
		log.Fatal(err)
	}
	stbus.Bind(sm, tyConv.Down, nodeB.Init[0])
	memB, err := rtl.NewMemory(root, rtl.MemoryConfig{
		Name: "memB", Port: p32t2, Base: memBBase, Size: 0x8_0000, Latency: 4})
	if err != nil {
		log.Fatal(err)
	}
	stbus.Bind(sm, nodeB.Tgt[0], memB.Port)
	// 1024 registers so the decoder serves the full 0x1000-byte window the
	// nodes route at it — the shipped figure1.fab topology checks exactly
	// this correspondence.
	regs, err := rtl.NewRegDecoder(root, rtl.RegDecoderConfig{
		Name: "regs", Port: p32t2, Base: regBase, NumRegs: 1024})
	if err != nil {
		log.Fatal(err)
	}
	stbus.Bind(sm, nodeB.Tgt[1], regs.Port)

	// Drivers.
	d0 := attach(sm, szConv.Up) // 64-bit master through the size converter
	d1 := attach(sm, nodeA.Init[1])
	d2 := attach(sm, nodeA.Init[2])

	far := []byte{0xca, 0xfe, 0xba, 0xbe, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8}
	d0.send(p64, stbus.ST16, memBBase+0x40, far, 1, 0) // crosses size conv, node A, type conv, node B
	d0.send(p64, stbus.LD16, memBBase+0x40, nil, 2, 0)
	near := []byte{0x11, 0x22, 0x33, 0x44}
	d1.send(p32, stbus.ST4, memABase+0x10, near, 1, 1)
	d1.send(p32, stbus.LD4, memABase+0x10, nil, 2, 1)
	d2.send(p32, stbus.ST4, regBase+0x0c, []byte{0x2a, 0, 0, 0}, 1, 2) // register 3
	d2.send(p32, stbus.LD4, regBase+0x0c, nil, 2, 2)

	done := func() bool { return len(d0.resp) == 2 && len(d1.resp) == 2 && len(d2.resp) == 2 }
	if err := sm.RunUntil(done, 5000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hierarchical interconnect drained in %d cycles\n\n", sm.Cycle())
	ok := true
	report := func(label string, want, got []byte) {
		match := bytes.Equal(want, got)
		ok = ok && match
		fmt.Printf("%s\n  want %x\n  got  %x  match=%v\n", label, want, got, match)
	}
	got0 := stbus.ExtractReadData(p64.Endian, stbus.LD16, memBBase+0x40, d0.resp[1], p64.BusBytes())
	report("init0 (T3/64) -> szconv -> nodeA -> tyconv -> nodeB -> memB", far, got0)
	got1 := stbus.ExtractReadData(p32.Endian, stbus.LD4, memABase+0x10, d1.resp[1], p32.BusBytes())
	report("init1 (T3/32) -> nodeA -> memA", near, got1)
	got2 := stbus.ExtractReadData(p32.Endian, stbus.LD4, regBase+0x0c, d2.resp[1], p32.BusBytes())
	report("init2 (T3/32) -> nodeA -> tyconv -> nodeB -> regdec", []byte{0x2a, 0, 0, 0}, got2)
	fmt.Printf("\nregister decoder reg3 = %#x (written over the bus)\n", regs.Reg(3))
	fmt.Printf("memory B @%#x = %#x\n", uint64(memBBase+0x40), memB.Peek(memBBase+0x40))
	if !ok || regs.Reg(3) != 0x2a {
		fmt.Println("FAIL: data integrity broken across the hierarchy")
		os.Exit(1)
	}
	fmt.Println("\nPASS: every path through the Figure 1 hierarchy preserves data")
}
