// Portsapproach demonstrates the paper's future-work item (Section 6): the
// next-generation CATG "ports approach" plugs the BCA model into the
// verification environment directly — no signal-level wrapper — recovering
// most of the transaction engine's speed while observing exactly the same
// behaviour. The program runs the same test and seed three ways and compares
// results and throughput:
//
//  1. RTL view in the signal-level common bench,
//
//  2. BCA view wrapped into the same signal-level bench (today's flow),
//
//  3. BCA engine in the transaction-level bench (the future flow).
//
//     go run ./examples/portsapproach
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
	"crve/internal/tlm"
)

func main() {
	cfg := nodespec.Config{
		Name:    "ports",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}
	traffic := catg.TrafficConfig{Ops: 300, UnmappedPct: 3, IdlePct: 5}
	target := catg.TargetConfig{MinLatency: 1, MaxLatency: 4, GntGapPct: 10}
	test := core.Test{Name: "ports_demo", Traffic: traffic, Target: target}
	const seed = 21

	type row struct {
		name   string
		cycles uint64
		txs    int
		cov    float64
		el     time.Duration
		pass   bool
	}
	var rows []row

	timeIt := func(name string, run func() (uint64, int, float64, bool)) {
		start := time.Now()
		cycles, txs, cov, pass := run()
		rows = append(rows, row{name, cycles, txs, cov, time.Since(start), pass})
	}
	timeIt("RTL, signal bench", func() (uint64, int, float64, bool) {
		r, err := core.RunTest(cfg, core.RTLView, test, seed, core.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return r.Cycles, r.Transactions, r.Coverage.Percent(), r.Passed()
	})
	timeIt("BCA wrapped, signal bench", func() (uint64, int, float64, bool) {
		r, err := core.RunTest(cfg, core.BCAView, test, seed, core.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return r.Cycles, r.Transactions, r.Coverage.Percent(), r.Passed()
	})
	var portsCov = 0.0
	timeIt("BCA ports approach (TLM)", func() (uint64, int, float64, bool) {
		r, err := tlm.RunTest(cfg, traffic, target, seed, bca.Bugs{})
		if err != nil {
			log.Fatal(err)
		}
		portsCov = r.Coverage.Percent()
		return r.Cycles, r.Transactions, portsCov, r.Passed()
	})

	fmt.Printf("%-28s %8s %6s %9s %12s %14s %6s\n",
		"bench", "cycles", "txs", "coverage", "elapsed", "cycles/sec", "pass")
	for _, r := range rows {
		fmt.Printf("%-28s %8d %6d %8.1f%% %12s %14.0f %6v\n",
			r.name, r.cycles, r.txs, r.cov, r.el.Round(time.Microsecond),
			float64(r.cycles)/r.el.Seconds(), r.pass)
	}
	same := rows[1].txs == rows[2].txs && rows[0].txs == rows[1].txs &&
		rows[0].cov == rows[1].cov && rows[1].cov == rows[2].cov
	fmt.Printf("\nidentical observations across all three benches: %v\n", same)
	fmt.Println("(the ports approach keeps the environment's view of the DUT unchanged while")
	fmt.Println(" shedding the wrapper cost — the paper: direct interfacing \"should enhance")
	fmt.Println(" simulation performance\")")
	if !same {
		os.Exit(1)
	}
}
