// Quickstart: verify one STBus node configuration with the common reusable
// verification environment, on both design views, in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

func main() {
	// 1. Describe the DUT: the HDL parameters of one node instance.
	cfg := nodespec.Config{
		Name:    "demo",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}

	// 2. Describe the test: constrained-random traffic plus target timing.
	test := core.Test{
		Name:    "quickstart",
		Traffic: catg.TrafficConfig{Ops: 50, UnmappedPct: 5, IdlePct: 10},
		Target:  catg.TargetConfig{MinLatency: 1, MaxLatency: 6, GntGapPct: 20},
	}

	// 3. Run the same test with the same seed on both views, compare the
	//    waveforms port by port and check coverage equality.
	pair, err := core.RunPair(cfg, test, 42, bca.Bugs{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pair.RTL.Summary())
	fmt.Println(pair.BCA.Summary())
	fmt.Printf("functional coverage equal between views: %v\n\n", pair.CoverageEqual)
	fmt.Println("bus-accurate comparison (STBus Analyzer):")
	fmt.Print(pair.Alignment)
	fmt.Printf("\nsign-off (all checks pass, coverage equal, every port >= 99%%): %v\n", pair.SignedOff())
	fmt.Println("\nfunctional coverage report (RTL view):")
	fmt.Print(pair.RTL.Coverage.Report())

	if !pair.SignedOff() {
		os.Exit(1)
	}
}
