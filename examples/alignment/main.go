// Alignment demonstrates the bus-accurate comparison leg of the flow: it
// runs the same test with the same seed on the RTL and the BCA views with
// the streaming STBus Analyzer attached (per-port alignment rates and the
// 99 % sign-off check come straight off the co-simulation — no VCD round
// trip), writes the compact binary waveform recordings to disk alongside a
// full-fidelity text VCD re-served from one of them, and extracts the
// transaction stream directly from the recording.
//
//	go run ./examples/alignment [outdir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stba"
	"crve/internal/stbus"
	"crve/internal/vcd"
)

func main() {
	outDir := os.TempDir()
	if len(os.Args) > 1 {
		outDir = os.Args[1]
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	cfg := nodespec.Config{
		Name:    "align",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}
	// Both initiators hammer target 0 so the arbiter decides every cycle —
	// the workload that makes an arbitration bug visible in the waveforms.
	test := core.Test{
		Name:    "alignment_demo",
		Traffic: catg.TrafficConfig{Ops: 60, Targets: []int{0}},
		Target:  catg.TargetConfig{MinLatency: 2, MaxLatency: 4},
	}

	run := func(label string, bugs bca.Bugs) {
		pair, err := core.RunPairOpt(cfg, test, 9, core.RunOptions{RecordWave: true, Bugs: bugs})
		if err != nil {
			log.Fatal(err)
		}
		rtlPath := filepath.Join(outDir, label+"_rtl.crw")
		bcaPath := filepath.Join(outDir, label+"_bca.crw")
		if err := os.WriteFile(rtlPath, pair.RTL.Wave.Encode(), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(bcaPath, pair.BCA.Wave.Encode(), 0o644); err != nil {
			log.Fatal(err)
		}
		// Full-fidelity text VCD on demand, byte-identical to what a live
		// writer would have dumped.
		vcdPath := filepath.Join(outDir, label+"_rtl.vcd")
		if err := os.WriteFile(vcdPath, pair.RTL.Wave.VCD(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (recordings: %s, %s; text VCD: %s)\n", label, rtlPath, bcaPath, vcdPath)
		fmt.Print(pair.Alignment)
		fmt.Printf("sign-off: %v\n\n", pair.Alignment.AllPass())

		// Transaction extraction straight from the stored recording, the
		// other half of what the paper's analyzer does — round-tripped
		// through the binary encoding to show nothing is lost.
		raw, err := os.ReadFile(rtlPath)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := vcd.DecodeRecording(raw)
		if err != nil {
			log.Fatal(err)
		}
		txs, err := stba.ExtractTransactions(rec.File(), cfg.Name+".init0", cfg.Port.Type)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("transactions extracted from %s at %s.init0: %d; first three:\n", label, cfg.Name, len(txs))
		for i, tr := range txs {
			if i == 3 {
				break
			}
			fmt.Printf("  %v\n", tr)
		}
		fmt.Println()
	}

	run("clean", bca.Bugs{})
	run("bug_lru_init", bca.Bugs{LRUInit: true})
	fmt.Println("the clean model signs off at 100%; the bugged model falls under the 99% line,")
	fmt.Println("which in the paper's Figure 4 loops the BCA model back for fixing.")
}
