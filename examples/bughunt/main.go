// Bughunt reproduces the paper's headline Section 5 result on one page: five
// historically plausible bugs are seeded into the BCA model, the old flow
// (write-then-read harness, visual checks) is run first, then the common
// reusable verification environment — the old flow misses all five, the new
// one finds all five.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"log"
	"os"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/oldflow"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

func main() {
	base := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}
	t2 := base
	t2.Port.Type = stbus.Type2

	fmt.Println("hunting the five seeded BCA model bugs")
	fmt.Printf("%-22s | %-28s | %s\n", "bug", "past flow", "common environment")
	fmt.Println("-----------------------+------------------------------+-------------------------------")
	newFound := 0
	oldFound := 0
	for bi, bug := range bca.AllBugs() {
		cfg := base
		if bug.T2OrderIgnored {
			cfg = t2
		}
		// Past flow: the model owner's write-then-read bench.
		ores, err := oldflow.Run(cfg, bug, 20, 1)
		if err != nil {
			log.Fatal(err)
		}
		oldVerdict := "PASSED (bug missed)"
		if !ores.Passed {
			oldVerdict = "caught"
			oldFound++
		}
		// Common flow: the generic suite until something fires.
		newVerdict := "escaped"
		for _, tc := range testcases.All() {
			pair, err := core.RunPair(cfg, tc, 1, bug)
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case len(pair.BCA.Violations) > 0:
				newVerdict = fmt.Sprintf("checker[%s] (%s)", pair.BCA.Violations[0].Rule, tc.Name)
			case len(pair.BCA.ScoreErrors) > 0:
				newVerdict = "scoreboard (" + tc.Name + ")"
			case !pair.BCA.Drained:
				newVerdict = "stall (" + tc.Name + ")"
			case !pair.Alignment.AllPass():
				newVerdict = fmt.Sprintf("alignment %.1f%% (%s)", pair.Alignment.MinRate(), tc.Name)
			default:
				continue
			}
			newFound++
			break
		}
		fmt.Printf("%-22s | %-28s | %s\n", bca.BugNames()[bi], oldVerdict, newVerdict)
	}
	fmt.Printf("\npast flow found %d/5, common environment found %d/5\n", oldFound, newFound)
	fmt.Println("(paper: \"five bugs on BCA models, not found using old environment of the past flow\")")
	if newFound != 5 || oldFound != 0 {
		os.Exit(1)
	}
}
