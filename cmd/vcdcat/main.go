// Command vcdcat inspects a waveform dump — text VCD or a compact binary
// recording (.crw), sniffed by content: it lists the declared variables or
// prints cycle-sampled values of selected signals, which is handy when
// debugging an alignment divergence the analyzer reported. A binary
// recording can also be converted back to the byte-identical text VCD the
// original run would have dumped.
//
// Usage:
//
//	vcdcat dump.vcd                         # list variables
//	vcdcat dump.crw                         # same, from a binary recording
//	vcdcat -sig node.init0.req,node.init0.gnt -from 40 -to 60 dump.vcd
//	vcdcat -tovcd dump.crw > dump.vcd       # re-serve full-fidelity text VCD
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"crve/internal/vcd"
)

func main() {
	var (
		sigs  = flag.String("sig", "", "comma-separated signal names to print per cycle")
		from  = flag.Uint64("from", 0, "first cycle to print")
		to    = flag.Uint64("to", 0, "last cycle to print (0 = end of dump)")
		tovcd = flag.Bool("tovcd", false, "write the recording back out as text VCD on stdout")
	)
	flag.Parse()
	if err := run(*sigs, *from, *to, *tovcd, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "vcdcat:", err)
		os.Exit(1)
	}
}

func run(sigs string, from, to uint64, tovcd bool, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: vcdcat [flags] dump.vcd|dump.crw")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var f *vcd.File
	if vcd.IsRecording(data) {
		rec, err := vcd.DecodeRecording(data)
		if err != nil {
			return err
		}
		if tovcd {
			_, err := os.Stdout.Write(rec.VCD())
			return err
		}
		f = rec.File()
	} else {
		if tovcd {
			return fmt.Errorf("-tovcd needs a binary recording (input is already text VCD)")
		}
		if f, err = vcd.Parse(bytes.NewReader(data)); err != nil {
			return err
		}
	}
	if sigs == "" {
		fmt.Printf("top module %q, %d variables, %d cycles\n", f.TopModule, len(f.Vars), f.Cycles())
		for _, v := range f.Vars {
			fmt.Printf("  %-40s %3d bits\n", v.Name, v.Width)
		}
		return nil
	}
	var idx []int
	names := strings.Split(sigs, ",")
	for _, n := range names {
		i := f.VarIndex(strings.TrimSpace(n))
		if i < 0 {
			return fmt.Errorf("no signal %q in dump", n)
		}
		idx = append(idx, i)
	}
	if to == 0 || to >= f.Cycles() {
		to = f.Cycles() - 1
	}
	fmt.Printf("%8s", "cycle")
	for _, i := range idx {
		fmt.Printf(" %20s", f.Vars[i].Name)
	}
	fmt.Println()
	for cyc := from; cyc <= to; cyc++ {
		fmt.Printf("%8d", cyc)
		for _, i := range idx {
			fmt.Printf(" %20s", f.ValueAt(i, cyc*vcd.TimePerCycle))
		}
		fmt.Println()
	}
	return nil
}
