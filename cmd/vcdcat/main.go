// Command vcdcat inspects a VCD waveform dump: it lists the declared
// variables or prints cycle-sampled values of selected signals, which is
// handy when debugging an alignment divergence the analyzer reported.
//
// Usage:
//
//	vcdcat dump.vcd                         # list variables
//	vcdcat -sig node.init0.req,node.init0.gnt -from 40 -to 60 dump.vcd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crve/internal/vcd"
)

func main() {
	var (
		sigs = flag.String("sig", "", "comma-separated signal names to print per cycle")
		from = flag.Uint64("from", 0, "first cycle to print")
		to   = flag.Uint64("to", 0, "last cycle to print (0 = end of dump)")
	)
	flag.Parse()
	if err := run(*sigs, *from, *to, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "vcdcat:", err)
		os.Exit(1)
	}
}

func run(sigs string, from, to uint64, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: vcdcat [flags] dump.vcd")
	}
	fh, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer fh.Close()
	f, err := vcd.Parse(fh)
	if err != nil {
		return err
	}
	if sigs == "" {
		fmt.Printf("top module %q, %d variables, %d cycles\n", f.TopModule, len(f.Vars), f.Cycles())
		for _, v := range f.Vars {
			fmt.Printf("  %-40s %3d bits\n", v.Name, v.Width)
		}
		return nil
	}
	var idx []int
	names := strings.Split(sigs, ",")
	for _, n := range names {
		i := f.VarIndex(strings.TrimSpace(n))
		if i < 0 {
			return fmt.Errorf("no signal %q in dump", n)
		}
		idx = append(idx, i)
	}
	if to == 0 || to >= f.Cycles() {
		to = f.Cycles() - 1
	}
	fmt.Printf("%8s", "cycle")
	for _, i := range idx {
		fmt.Printf(" %20s", f.Vars[i].Name)
	}
	fmt.Println()
	for cyc := from; cyc <= to; cyc++ {
		fmt.Printf("%8d", cyc)
		for _, i := range idx {
			fmt.Printf(" %20s", f.ValueAt(i, cyc*vcd.TimePerCycle))
		}
		fmt.Println()
	}
	return nil
}
