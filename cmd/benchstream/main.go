// Command benchstream measures the streaming-STBA pipeline against the
// legacy VCD round trip and emits the comparison as JSON (checked in and
// archived by CI as BENCH_streaming.json): paired sign-off throughput in
// simulated cycles per second, waveform bytes written per sign-off, and the
// alignment cost in nanoseconds per compared cycle for both pipelines.
//
// Usage:
//
//	benchstream                                  # JSON on stdout
//	benchstream -out BENCH_streaming.json -repeat 5
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"crve/internal/arb"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stba"
	"crve/internal/stbus"
	"crve/internal/testcases"
	"crve/internal/vcd"
)

// pipeline is one measured alignment pipeline.
type pipeline struct {
	// CyclesPerSec is paired sign-off throughput: simulated cycles across
	// both views divided by wall time for the full pair (runs + alignment).
	CyclesPerSec float64 `json:"cycles_per_s"`
	// AlignNsPerCycle is the alignment cost alone, per compared cycle.
	AlignNsPerCycle float64 `json:"align_ns_per_cycle"`
	// WaveformBytes is what the pipeline writes to disk per sign-off by
	// default (legacy: two text VCDs; streaming: nothing).
	WaveformBytes int `json:"waveform_bytes_per_signoff"`
}

type report struct {
	Config        string   `json:"config"`
	Test          string   `json:"test"`
	Seed          int64    `json:"seed"`
	PairCycles    uint64   `json:"pair_cycles"`
	AlignedCycles uint64   `json:"aligned_cycles"`
	Streaming     pipeline `json:"streaming"`
	Legacy        pipeline `json:"legacy"`
	// CrwBytesOptIn is the size of the opt-in compact recordings (-wave)
	// for the same pair — the artifact that replaces text VCD when a
	// waveform is wanted at all.
	CrwBytesOptIn int `json:"crw_bytes_opt_in"`
	// PairSpeedup is streaming over legacy paired throughput.
	PairSpeedup float64 `json:"pair_speedup"`
}

func refCfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

func main() {
	var (
		out    = flag.String("out", "", "write JSON here instead of stdout")
		repeat = flag.Int("repeat", 5, "timing repetitions (best of N)")
		seed   = flag.Int64("seed", 1, "test seed")
	)
	flag.Parse()
	if err := run(*out, *repeat, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
}

// best times f over n runs and returns the fastest wall time, the usual
// way to strip scheduler noise from a single-figure benchmark.
func best(n int, f func() error) (time.Duration, error) {
	min := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if min == 0 || d < min {
			min = d
		}
	}
	return min, nil
}

func run(out string, repeat int, seed int64) error {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return err
	}

	// One pair of each flavor up front for sizes and cycle counts; the
	// timed runs below discard their results.
	str, err := core.RunPairOpt(cfg, tc, seed, core.RunOptions{RecordWave: true})
	if err != nil {
		return err
	}
	leg, err := core.RunPairOpt(cfg, tc, seed, core.RunOptions{LegacyAlignment: true, DumpVCD: true})
	if err != nil {
		return err
	}
	if str.Alignment.MinRate() != 100 || leg.Alignment.MinRate() != 100 {
		return fmt.Errorf("clean reference pair failed to align")
	}
	rep := report{
		Config:     cfg.Name,
		Test:       tc.Name,
		Seed:       seed,
		PairCycles: str.RTL.Cycles + str.BCA.Cycles,
		Legacy:     pipeline{WaveformBytes: len(leg.RTL.VCD) + len(leg.BCA.VCD)},
		CrwBytesOptIn: len(str.RTL.Wave.Encode()) +
			len(str.BCA.Wave.Encode()),
	}
	// Every port spans the same pair of dumps, so any port's Cycles is the
	// number of compared cycles.
	rep.AlignedCycles = str.Alignment.Ports[0].Cycles

	// Paired throughput, both pipelines.
	tStream, err := best(repeat, func() error {
		_, err := core.RunPairOpt(cfg, tc, seed, core.RunOptions{})
		return err
	})
	if err != nil {
		return err
	}
	tLegacy, err := best(repeat, func() error {
		_, err := core.RunPairOpt(cfg, tc, seed, core.RunOptions{LegacyAlignment: true})
		return err
	})
	if err != nil {
		return err
	}
	rep.Streaming.CyclesPerSec = float64(rep.PairCycles) / tStream.Seconds()
	rep.Legacy.CyclesPerSec = float64(rep.PairCycles) / tLegacy.Seconds()
	rep.PairSpeedup = tLegacy.Seconds() / tStream.Seconds()

	// Alignment cost in isolation. Streaming: the observer rides the BCA
	// run, so its cost is the streaming pair minus the same two runs with
	// no alignment attached. Legacy: parse both dumps and Compare.
	tBare, err := best(repeat, func() error {
		if _, err := core.RunTest(cfg, core.RTLView, tc, seed, core.RunOptions{RecordWave: true}); err != nil {
			return err
		}
		_, err := core.RunTest(cfg, core.BCAView, tc, seed, core.RunOptions{})
		return err
	})
	if err != nil {
		return err
	}
	streamAlign := tStream - tBare
	if streamAlign < 0 {
		streamAlign = 0 // within run-to-run noise
	}
	rep.Streaming.AlignNsPerCycle = float64(streamAlign.Nanoseconds()) / float64(rep.AlignedCycles)

	tCompare, err := best(repeat, func() error {
		fr, err := vcd.Parse(bytes.NewReader(leg.RTL.VCD))
		if err != nil {
			return err
		}
		fb, err := vcd.Parse(bytes.NewReader(leg.BCA.VCD))
		if err != nil {
			return err
		}
		_, err = stba.Compare(fr, fb, nil)
		return err
	})
	if err != nil {
		return err
	}
	rep.Legacy.AlignNsPerCycle = float64(tCompare.Nanoseconds()) / float64(rep.AlignedCycles)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
