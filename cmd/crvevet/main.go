// Command crvevet is the repo's custom vet tool: it serves the Go-invariant
// analyzers of internal/analysis over the `go vet -vettool` protocol, so the
// codebase's own conventions are machine-checked alongside the standard vet
// suite:
//
//	go build -o bin/crvevet ./cmd/crvevet
//	go vet -vettool=bin/crvevet ./...
//
// Individual analyzers can be toggled like any vet check, e.g.
// `-configliteral=false`. See also cmd/crvelint, which lints the bench
// configuration files themselves.
package main

import "crve/internal/analysis"

func main() {
	analysis.Main(analysis.Analyzers()...)
}
