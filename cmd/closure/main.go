// Command closure runs the coverage-closure engine standalone: it executes
// the generic suite on each configuration, then loops — read the merged
// functional-coverage holes, synthesize follow-up work units biased toward
// them, run the units through the regression engine and its result cache —
// until coverage is full or the iteration/cycle budget runs out.
//
// Usage:
//
//	closure -config configs/closure/regbank.cfg       # close one configuration
//	closure -config ./configs -j 8 -cache ./rc        # a directory, parallel + incremental
//	closure -config FILE -plan                        # report holes and the planned units, run nothing
//	closure -config FILE -json > trajectory.json      # machine-readable trajectory
//
// The trajectory is deterministic for a fixed seed at any -j width, and a
// warm re-run against the same cache re-simulates nothing. The command exits
// non-zero if any configuration's closure fails to converge.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"crve/internal/closure"
	"crve/internal/core"
	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/testcases"
)

type options struct {
	configPath string
	testsArg   string
	seedsArg   string
	jobs       int
	cacheDir   string
	maxIters   int
	budget     uint64
	jsonOut    bool
	plan       bool
	verbose    bool
	nolint     bool
}

func main() {
	var o options
	flag.StringVar(&o.configPath, "config", "", "a .cfg parameter file or a directory of them")
	flag.StringVar(&o.testsArg, "tests", "", "comma-separated base-suite test names (default: all 12)")
	flag.StringVar(&o.seedsArg, "seeds", "1", "comma-separated base-suite seeds (the first also salts closure seeds)")
	flag.IntVar(&o.jobs, "j", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.cacheDir, "cache", "", "incremental result cache directory")
	flag.IntVar(&o.maxIters, "max-iters", 8, "maximum closure iterations per configuration")
	flag.Uint64Var(&o.budget, "budget", 0, "closure cycle budget per configuration, both views (0 = unlimited)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the closure trajectories as JSON instead of text")
	flag.BoolVar(&o.plan, "plan", false, "report holes and the planned follow-up units after the base suite, without running them")
	flag.BoolVar(&o.verbose, "v", false, "log each run")
	flag.BoolVar(&o.nolint, "nolint", false, "skip the static-analysis gate")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "closure:", err)
		os.Exit(1)
	}
}

// loadConfigs accepts either one .cfg file or a directory of them.
func loadConfigs(path string) ([]nodespec.Config, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return regress.LoadConfigDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg, err := regress.ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return []nodespec.Config{cfg}, nil
}

func run(o options) error {
	if o.configPath == "" {
		return fmt.Errorf("pass -config FILE|DIR (see -h)")
	}
	cfgs, err := loadConfigs(o.configPath)
	if err != nil {
		return err
	}

	var tests []core.Test
	if o.testsArg == "" {
		tests = testcases.All()
	} else {
		for _, name := range strings.Split(o.testsArg, ",") {
			tc, err := testcases.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			tests = append(tests, tc)
		}
	}
	var seeds []int64
	for _, s := range strings.Split(o.seedsArg, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", s)
		}
		seeds = append(seeds, v)
	}

	if !o.nolint {
		rep := regress.LintConfigs(cfgs, seeds)
		for _, d := range rep.Diags {
			fmt.Fprintln(os.Stderr, "lint:", d)
		}
		if rep.HasErrors() {
			return fmt.Errorf("%s (pass -nolint to override)", rep.Summary())
		}
		// CRVE017 warnings matter here specifically: a statically dead bin
		// caps what closure can reach.
		for _, d := range rep.ByCode(lint.CodeDeadBin) {
			fmt.Fprintln(os.Stderr, "note: closure will skip this bin:", d.Msg)
		}
	}

	opt := closure.Options{
		Tests: tests, Seeds: seeds, Workers: o.jobs,
		MaxIters: o.maxIters, Budget: o.budget, NoLint: true, // linted above
	}
	if o.verbose {
		opt.Log = os.Stdout
	}
	if o.cacheDir != "" {
		cache, err := regress.OpenCache(o.cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = cache
	}

	if o.plan {
		return planOnly(cfgs, opt)
	}

	var stats regress.Stats
	notConverged := 0
	var trajJSON []string
	for _, cfg := range cfgs {
		res, err := closure.Close(cfg, opt)
		if err != nil {
			return err
		}
		if o.jsonOut {
			var sb strings.Builder
			if err := closure.JSON(&sb, res.Trajectory); err != nil {
				return err
			}
			trajJSON = append(trajJSON, strings.TrimRight(sb.String(), "\n"))
		} else {
			closure.Text(os.Stdout, res.Trajectory)
		}
		s := res.Stats()
		stats.Ran += s.Ran
		stats.Cached += s.Cached
		if !res.Trajectory.Converged {
			notConverged++
		}
	}
	if o.jsonOut {
		fmt.Printf("[%s]\n", strings.Join(trajJSON, ",\n"))
	} else {
		fmt.Printf("work units: %s\n", stats)
	}
	if notConverged > 0 {
		return fmt.Errorf("closure did not converge on %d configuration(s)", notConverged)
	}
	return nil
}

// planOnly runs the base suite and reports the holes plus the first
// iteration's synthesized units, without simulating any of them — the dry
// "what would closure do" report.
func planOnly(cfgs []nodespec.Config, opt closure.Options) error {
	for _, cfg := range cfgs {
		cfg = cfg.WithDefaults()
		base, err := regress.RunConfig(cfg, regress.Options{
			Tests: opt.Tests, Seeds: opt.Seeds, Workers: opt.Workers,
			Cache: opt.Cache, Log: opt.Log,
		})
		if err != nil {
			return err
		}
		holes := base.SuiteCoverage.Holes()
		fmt.Printf("%s: %.1f%% functional coverage, %d hole(s)\n",
			cfg.Name, base.SuiteCoverage.Percent(), len(holes))
		if len(holes) == 0 {
			continue
		}
		for _, h := range holes {
			fmt.Printf("  hole %s\n", h)
		}
		for _, u := range closure.Plan(cfg, holes, 1) {
			var hs []string
			for _, h := range u.Holes {
				hs = append(hs, h.String())
			}
			fmt.Printf("  plan %s -> [%s]\n", u.Test.Name, strings.Join(hs, " "))
		}
	}
	return nil
}
