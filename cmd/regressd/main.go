// Command regressd serves the verification flow: a long-lived daemon that
// accepts regression jobs over HTTP/JSON, runs them on a bounded executor
// pool against a shared content-addressed result cache (so overlapping or
// repeated submissions dedupe at the work-unit level), and serves reports,
// coverage, alignment, kernel profiles and waveform artifacts back — plus an
// embedded no-build dashboard on the same port.
//
// Usage:
//
//	regressd -addr :8041 -cache ./rc           # serve with a shared result store
//	regressd -addr :8041 -cache ./rc -slots 4  # up to 4 jobs running concurrently
//	regressd -workers 8                        # 8 engine workers per job
//
// Submit and watch a job:
//
//	curl -s -X POST localhost:8041/api/v1/jobs -d '{"matrix":true,"quick":true}'
//	curl -s -X POST localhost:8041/api/v1/jobs \
//	    -d '{"matrix":true,"kernel":"compiled","seeds":[1,2,3,4],"lanes":64}'
//	curl -s localhost:8041/api/v1/jobs/j0001
//	curl -s localhost:8041/api/v1/jobs/j0001/report
//
// SIGINT/SIGTERM drains gracefully: the queue closes, queued jobs cancel,
// running jobs finish (or are cancelled after -drain-timeout), then the HTTP
// server shuts down and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crve/internal/api"
	"crve/internal/jobs"
	"crve/internal/regress"
	"crve/internal/web"
)

func main() {
	var (
		addr         = flag.String("addr", ":8041", "listen address")
		cacheDir     = flag.String("cache", "", "shared result cache directory (recommended: dedupes repeated and concurrent jobs)")
		workers      = flag.Int("workers", 0, "engine workers per job (0 = GOMAXPROCS)")
		slots        = flag.Int("slots", 2, "jobs running concurrently")
		queueDepth   = flag.Int("queue", 256, "submission queue depth")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for running jobs before cancelling them")
		verbose      = flag.Bool("v", false, "log job transitions")
	)
	flag.Parse()
	if err := run(*addr, *cacheDir, *workers, *slots, *queueDepth, *drainTimeout, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "regressd:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, workers, slots, queueDepth int, drainTimeout time.Duration, verbose bool) error {
	opt := jobs.Options{Workers: workers, Slots: slots, QueueDepth: queueDepth}
	if verbose {
		opt.Log = os.Stderr
	}
	if cacheDir != "" {
		cache, err := regress.OpenCache(cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = cache
	}
	mgr := jobs.NewManager(opt)

	mux := http.NewServeMux()
	apiHandler := api.New(mgr).Handler()
	mux.Handle("/api/", apiHandler)
	mux.Handle("/healthz", apiHandler)
	mux.Handle("/", web.New(mgr).Handler())
	srv := &http.Server{Addr: addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "regressd: listening on %s (version %s)\n", addr, regress.CodeVersion())
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintln(os.Stderr, "regressd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "regressd: drain:", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "regressd: bye")
	return nil
}
