package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crve/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runCLI invokes the command body from the repository root and returns its
// exit code and streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	t.Chdir("../..")
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestBadCorpusGolden locks down the full report over the negative corpus:
// one configuration per diagnostic code, plus a duplicated seed. Any change
// to rule text, positions, ordering or the summary line shows up as a diff.
func TestBadCorpusGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seeds", "1,2,1", "configs/bad")
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (corpus has lint errors); stderr: %s", code, stderr)
	}
	const golden = "cmd/crvelint/testdata/bad.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("report differs from %s (rerun with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, stdout, want)
	}
}

// TestBadCorpusCoversEveryCode asserts the corpus stays exhaustive: every
// published diagnostic code must appear in the report at its declared
// severity, so adding a rule without a negative fixture fails here.
func TestBadCorpusCoversEveryCode(t *testing.T) {
	_, stdout, _ := runCLI(t, "-seeds", "1,2,1", "configs/bad")
	for _, rule := range lint.Rules() {
		needle := rule.Severity.String() + ": " + string(rule.Code) + ":"
		if !strings.Contains(stdout, needle) {
			t.Errorf("no %s diagnostic for %s in the corpus report", rule.Severity, rule.Code)
		}
	}
}

func TestShippedConfigsExitClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "configs")
	if code != 0 {
		t.Errorf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "0 error(s), 0 warning(s)") {
		t.Errorf("shipped configs are not lint-clean:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "configs/bad/crve002_overlap.cfg")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var report struct {
		Diagnostics []struct {
			Code string `json:"code"`
		} `json:"diagnostics"`
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if report.Errors != 1 || len(report.Diagnostics) != 1 || report.Diagnostics[0].Code != "CRVE002" {
		t.Errorf("unexpected JSON report: %+v", report)
	}
}

func TestCodesTable(t *testing.T) {
	code, stdout, _ := runCLI(t, "-codes")
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	for _, rule := range lint.Rules() {
		if !strings.Contains(stdout, string(rule.Code)) {
			t.Errorf("-codes table missing %s", rule.Code)
		}
	}
}

func TestUsageAndIOFailures(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no args: code=%d stderr=%q, want 2 + usage", code, stderr)
	}
	if code, _, _ := runCLI(t, "configs/no-such-dir"); code != 2 {
		t.Errorf("missing path: code=%d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "-seeds", "1,x", "configs"); code != 2 || !strings.Contains(stderr, "bad seed") {
		t.Errorf("bad seeds: code=%d stderr=%q, want 2 + bad seed", code, stderr)
	}
}

// runOnce invokes the command body without changing directory: fix/fabric
// tests call it several times in one test, against absolute or
// already-anchored paths.
func runOnce(args ...string) (code int, stdout, stderr string) {
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

const fixableCfg = `name      = %s
type      = t3
data_bits = 32
endian    = little
num_init  = 2
num_tgt   = 2
arch      = full
req_arb   = lru
resp_arb  = priority
pipe      = %d
map       = 0x1000:0x1000:0, 0x2000:0x1000:1
`

// TestFixIdempotent is the acceptance check for -fix: the first pass
// repairs the mechanical diagnostics (duplicate names, non-power-of-two
// pipe, duplicate seeds), the rewritten files re-parse cleanly, and a
// second pass fixes nothing and changes zero bytes. A file the parser
// cannot read is never touched.
func TestFixIdempotent(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.cfg", fmt.Sprintf(fixableCfg, "dup", 4))
	write("b.cfg", fmt.Sprintf(fixableCfg, "dup", 4)) // CRVE015: later duplicate
	write("c.cfg", fmt.Sprintf(fixableCfg, "c", 6))   // CRVE013: non-power-of-two
	const brokenText = "this is not = a = config\npipe = banana\n"
	write("broken.cfg", brokenText)

	snapshot := func() map[string]string {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string]string{}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = string(b)
		}
		return files
	}

	code1, stdout1, stderr1 := runOnce("-fix", "-seeds", "1,2,1", dir)
	if code1 != 1 { // broken.cfg keeps its CRVE000 errors
		t.Errorf("first pass: exit = %d, want 1 (parse errors remain); stdout:\n%s", code1, stdout1)
	}
	for _, want := range []string{
		`renamed "dup" -> "b" (CRVE015)`,
		"pipe 6 -> 8 (CRVE013)",
		"dropped duplicate seed 1 (CRVE016)",
	} {
		if !strings.Contains(stderr1, want) {
			t.Errorf("first pass stderr missing %q:\n%s", want, stderr1)
		}
	}
	// Everything mechanical is gone from the re-lint report: what remains
	// is the untouchable parse-broken file.
	for _, gone := range []string{"CRVE013", "CRVE015", "CRVE016"} {
		if strings.Contains(stdout1, gone) {
			t.Errorf("first pass report still carries %s:\n%s", gone, stdout1)
		}
	}
	after1 := snapshot()
	if after1["broken.cfg"] != brokenText {
		t.Errorf("-fix rewrote a parse-broken file:\n%s", after1["broken.cfg"])
	}

	code2, stdout2, stderr2 := runOnce("-fix", "-seeds", "1,2,1", dir)
	if code2 != code1 {
		t.Errorf("second pass: exit = %d, want %d", code2, code1)
	}
	for _, fixed := range []string{"renamed", "pipe"} {
		if strings.Contains(stderr2, fixed) {
			t.Errorf("second pass still fixing files (%q):\n%s", fixed, stderr2)
		}
	}
	if stdout2 != stdout1 {
		t.Errorf("second pass report differs:\nfirst:\n%s\nsecond:\n%s", stdout1, stdout2)
	}
	after2 := snapshot()
	for name, want := range after1 {
		if after2[name] != want {
			t.Errorf("second -fix pass changed bytes of %s:\n--- first pass\n%s\n--- second pass\n%s",
				name, want, after2[name])
		}
	}
	if len(after2) != len(after1) {
		t.Errorf("second pass changed the file set: %d -> %d files", len(after1), len(after2))
	}
}

// TestFabricFlag drives the -fabric path end to end: a topology with a
// black-holed window fails with CRVE019, and the shipped Figure 1 topology
// passes with only its documented residual warning.
func TestFabricFlag(t *testing.T) {
	t.Chdir("../..")
	code, stdout, _ := runOnce("-fabric", "configs/bad/crve019_blackhole.fab")
	if code != 1 || !strings.Contains(stdout, "CRVE019") {
		t.Errorf("bad fabric: exit=%d, want 1 with CRVE019; stdout:\n%s", code, stdout)
	}
	code, stdout, _ = runOnce("-fabric", "examples/interconnect/figure1.fab")
	if code != 0 {
		t.Errorf("figure1.fab: exit=%d, want 0; stdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "CRVE003") || !strings.Contains(stdout, "0 error(s)") {
		t.Errorf("figure1.fab should leave exactly its documented CRVE003 residual:\n%s", stdout)
	}
}
