package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"

	"crve/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runCLI invokes the command body from the repository root and returns its
// exit code and streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	t.Chdir("../..")
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestBadCorpusGolden locks down the full report over the negative corpus:
// one configuration per diagnostic code, plus a duplicated seed. Any change
// to rule text, positions, ordering or the summary line shows up as a diff.
func TestBadCorpusGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seeds", "1,2,1", "configs/bad")
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (corpus has lint errors); stderr: %s", code, stderr)
	}
	const golden = "cmd/crvelint/testdata/bad.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("report differs from %s (rerun with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, stdout, want)
	}
}

// TestBadCorpusCoversEveryCode asserts the corpus stays exhaustive: every
// published diagnostic code must appear in the report at its declared
// severity, so adding a rule without a negative fixture fails here.
func TestBadCorpusCoversEveryCode(t *testing.T) {
	_, stdout, _ := runCLI(t, "-seeds", "1,2,1", "configs/bad")
	for _, rule := range lint.Rules() {
		needle := rule.Severity.String() + ": " + string(rule.Code) + ":"
		if !strings.Contains(stdout, needle) {
			t.Errorf("no %s diagnostic for %s in the corpus report", rule.Severity, rule.Code)
		}
	}
}

func TestShippedConfigsExitClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "configs")
	if code != 0 {
		t.Errorf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "0 error(s), 0 warning(s)") {
		t.Errorf("shipped configs are not lint-clean:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "configs/bad/crve002_overlap.cfg")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var report struct {
		Diagnostics []struct {
			Code string `json:"code"`
		} `json:"diagnostics"`
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if report.Errors != 1 || len(report.Diagnostics) != 1 || report.Diagnostics[0].Code != "CRVE002" {
		t.Errorf("unexpected JSON report: %+v", report)
	}
}

func TestCodesTable(t *testing.T) {
	code, stdout, _ := runCLI(t, "-codes")
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	for _, rule := range lint.Rules() {
		if !strings.Contains(stdout, string(rule.Code)) {
			t.Errorf("-codes table missing %s", rule.Code)
		}
	}
}

func TestUsageAndIOFailures(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no args: code=%d stderr=%q, want 2 + usage", code, stderr)
	}
	if code, _, _ := runCLI(t, "configs/no-such-dir"); code != 2 {
		t.Errorf("missing path: code=%d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "-seeds", "1,x", "configs"); code != 2 || !strings.Contains(stderr, "bad seed") {
		t.Errorf("bad seeds: code=%d stderr=%q, want 2 + bad seed", code, stderr)
	}
}
