// Command crvelint statically analyzes bench configuration files before any
// cycle runs: it parses each *.cfg, runs the internal/lint rule set over the
// parsed configurations, and reports every problem of the whole set in one
// pass — the same checks the regression driver applies before a matrix run.
//
// Usage:
//
//	crvelint [flags] path...
//
// Each path is a configuration file, a topology file (*.fab) or a directory.
// A directory contributes its *.cfg files to the lint set and its *.fab
// files to the fabric checks. All configurations named on one command line
// are linted as a single set, so cross-configuration rules (duplicate names)
// see everything at once; each topology is elaborated and checked as a whole
// fabric (CRVE018–CRVE023), including the per-config lint of every node
// configuration it references.
//
// Flags:
//
//	-json          emit the report as JSON instead of text
//	-seeds list    comma-separated seed list to lint alongside the configs
//	-codes         print the diagnostic-code table and exit
//	-fabric list   comma-separated topology files to check as whole fabrics
//	-fix           rewrite configs to repair mechanical diagnostics, then re-lint
//
// -fix repairs what has exactly one mechanical resolution — duplicate
// configuration names (CRVE015: later duplicates are renamed after their
// file) and non-power-of-two pipe depths (CRVE013: rounded up to the next
// power of two) — by rewriting the file through the regress.FormatConfig
// round trip, which normalizes formatting and drops comments. Duplicate
// seeds (CRVE016) are dropped from the seed list for the re-lint (the flag
// itself cannot be rewritten). Files with parse errors are never touched.
// A second -fix pass finds nothing left to repair and changes zero bytes.
//
// Exit status is 0 when the set is clean (warnings allowed), 1 when any
// Error-severity diagnostic remains, and 2 on usage or I/O failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"crve/internal/lint"
	"crve/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it lints the paths named in args and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crvelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	seedList := fs.String("seeds", "", "comma-separated seed list to lint alongside the configs")
	codes := fs.Bool("codes", false, "print the diagnostic-code table and exit")
	fabricList := fs.String("fabric", "", "comma-separated topology files to check as whole fabrics")
	fix := fs.Bool("fix", false, "rewrite configs to repair mechanical diagnostics, then re-lint")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: crvelint [flags] path...")
		fmt.Fprintln(stderr, "Each path is a configuration file, a topology file (*.fab) or a directory")
		fmt.Fprintln(stderr, "of *.cfg and *.fab files.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		printCodes(stdout)
		return 0
	}
	if fs.NArg() == 0 && *fabricList == "" {
		fs.Usage()
		return 2
	}

	seeds, err := parseSeeds(*seedList)
	if err != nil {
		fmt.Fprintf(stderr, "crvelint: %v\n", err)
		return 2
	}
	var cfgPaths []string
	fabrics := splitList(*fabricList)
	for _, path := range fs.Args() {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
		switch {
		case info.IsDir():
			fabs, err := fabFileNames(path)
			if err != nil {
				fmt.Fprintf(stderr, "crvelint: %v\n", err)
				return 2
			}
			fabrics = append(fabrics, fabs...)
			cfgPaths = append(cfgPaths, path)
		case strings.HasSuffix(path, ".fab"):
			fabrics = append(fabrics, path)
		default:
			cfgPaths = append(cfgPaths, path)
		}
	}

	srcs, err := loadSources(cfgPaths)
	if err != nil {
		fmt.Fprintf(stderr, "crvelint: %v\n", err)
		return 2
	}
	if *fix {
		seeds, err = applyFixes(srcs, seeds, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
		// Re-lint what is actually on disk now, not the in-memory edits.
		if srcs, err = loadSources(cfgPaths); err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
	}

	report := lint.CheckSet(srcs, seeds)
	for _, fab := range fabrics {
		frep, err := regress.CheckFabric(fab)
		if err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
		report.Diags = append(report.Diags, frep.Diags...)
	}
	report.Sort()
	if *jsonOut {
		if err := report.JSON(stdout); err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
	} else {
		report.Text(stdout)
	}
	if report.HasErrors() {
		return 1
	}
	return 0
}

// loadSources turns the configuration paths — directories of *.cfg files or
// single files — into lint sources. Parse failures become CRVE000
// diagnostics, not errors: only I/O problems stop the run.
func loadSources(paths []string) ([]lint.Source, error) {
	var srcs []lint.Source
	for _, path := range paths {
		s, err := loadPath(path)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s...)
	}
	return srcs, nil
}

// loadPath turns one configuration path into lint sources.
func loadPath(path string) ([]lint.Source, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return regress.LoadSourceDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src := regress.ParseSource(path, f)
	// Mirror LoadSourceDir: an unnamed config takes its file name, so
	// duplicate-name linting matches what a regression run would use.
	if src.Cfg.Name == "node" {
		src.Cfg.Name = strings.TrimSuffix(filepath.Base(path), ".cfg")
	}
	return []lint.Source{src}, nil
}

// fabFileNames lists the *.fab topology files of dir, sorted by name. An
// empty result is fine: most directories hold only configs.
func fabFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".fab") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// applyFixes repairs the mechanically fixable diagnostics in place:
// duplicate names (CRVE015) by renaming later duplicates after their file,
// and non-power-of-two pipe depths (CRVE013) by rounding up. Fixed files are
// rewritten through the FormatConfig round trip; untouched files keep their
// bytes, which is what makes a second pass a no-op. Returns the seed list
// with duplicates (CRVE016) dropped.
func applyFixes(srcs []lint.Source, seeds []int64, stderr io.Writer) ([]int64, error) {
	taken := map[string]bool{}
	for _, src := range srcs {
		taken[src.Cfg.WithDefaults().Name] = true
	}
	seen := map[string]bool{}
	for i := range srcs {
		src := &srcs[i]
		if parseBroken(*src) {
			continue // never rewrite a file the parser could not read back
		}
		cfg := src.Cfg.WithDefaults()
		changed := false

		if seen[cfg.Name] {
			base := strings.TrimSuffix(filepath.Base(src.File), ".cfg")
			name := base
			for n := 2; taken[name]; n++ {
				name = fmt.Sprintf("%s_%d", base, n)
			}
			fmt.Fprintf(stderr, "crvelint: fix %s: renamed %q -> %q (CRVE015)\n", src.File, cfg.Name, name)
			cfg.Name = name
			taken[name] = true
			changed = true
		}
		seen[cfg.Name] = true

		// A t3 node with pipe 1 (the other CRVE013 variant) is a design
		// decision, not a typo with one mechanical resolution; only the
		// depth rounding is safe to automate.
		if p := cfg.PipeSize; p > 1 && p <= 64 && p&(p-1) != 0 {
			next := 2
			for next < p {
				next *= 2
			}
			fmt.Fprintf(stderr, "crvelint: fix %s: pipe %d -> %d (CRVE013)\n", src.File, p, next)
			cfg.PipeSize = next
			changed = true
		}

		if changed {
			if err := os.WriteFile(src.File, []byte(regress.FormatConfig(cfg)), 0o644); err != nil {
				return nil, err
			}
		}
	}

	var out []int64
	dupSeen := map[int64]bool{}
	for _, s := range seeds {
		if dupSeen[s] {
			fmt.Fprintf(stderr, "crvelint: fix: dropped duplicate seed %d (CRVE016)\n", s)
			continue
		}
		dupSeen[s] = true
		out = append(out, s)
	}
	return out, nil
}

// parseBroken reports whether the source carries an Error-grade parse
// diagnostic.
func parseBroken(src lint.Source) bool {
	for _, d := range src.Parse {
		if d.Severity == lint.Error {
			return true
		}
	}
	return false
}

// parseSeeds parses the -seeds flag: a comma-separated list of int64s.
func parseSeeds(list string) ([]int64, error) {
	if list == "" {
		return nil, nil
	}
	var seeds []int64
	for _, field := range strings.Split(list, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in -seeds", field)
		}
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// splitList splits a comma-separated flag value, dropping empty fields.
func splitList(list string) []string {
	var out []string
	for _, f := range strings.Split(list, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// printCodes renders the rule table: every diagnostic code, its severity
// and a one-line summary.
func printCodes(w io.Writer) {
	for _, rule := range lint.Rules() {
		fmt.Fprintf(w, "%s  %-7s  %s\n", rule.Code, rule.Severity, rule.Summary)
	}
}
