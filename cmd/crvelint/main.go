// Command crvelint statically analyzes bench configuration files before any
// cycle runs: it parses each *.cfg, runs the internal/lint rule set over the
// parsed configurations, and reports every problem of the whole set in one
// pass — the same checks the regression driver applies before a matrix run.
//
// Usage:
//
//	crvelint [flags] path...
//
// Each path is a configuration file or a directory of *.cfg files. All
// configurations named on one command line are linted as a single set, so
// cross-configuration rules (duplicate names) see everything at once.
//
// Flags:
//
//	-json        emit the report as JSON instead of text
//	-seeds list  comma-separated seed list to lint alongside the configs
//	-codes       print the diagnostic-code table and exit
//
// Exit status is 0 when the set is clean (warnings allowed), 1 when any
// Error-severity diagnostic was reported, and 2 on usage or I/O failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"crve/internal/lint"
	"crve/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it lints the paths named in args and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crvelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	seedList := fs.String("seeds", "", "comma-separated seed list to lint alongside the configs")
	codes := fs.Bool("codes", false, "print the diagnostic-code table and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: crvelint [flags] path...")
		fmt.Fprintln(stderr, "Each path is a configuration file or a directory of *.cfg files.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		printCodes(stdout)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	seeds, err := parseSeeds(*seedList)
	if err != nil {
		fmt.Fprintf(stderr, "crvelint: %v\n", err)
		return 2
	}
	var srcs []lint.Source
	for _, path := range fs.Args() {
		s, err := loadPath(path)
		if err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
		srcs = append(srcs, s...)
	}

	report := lint.CheckSet(srcs, seeds)
	if *jsonOut {
		if err := report.JSON(stdout); err != nil {
			fmt.Fprintf(stderr, "crvelint: %v\n", err)
			return 2
		}
	} else {
		report.Text(stdout)
	}
	if report.HasErrors() {
		return 1
	}
	return 0
}

// loadPath turns one command-line path — a directory of *.cfg files or a
// single configuration file — into lint sources. Parse failures become
// CRVE000 diagnostics, not errors: only I/O problems stop the run.
func loadPath(path string) ([]lint.Source, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return regress.LoadSourceDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src := regress.ParseSource(path, f)
	// Mirror LoadSourceDir: an unnamed config takes its file name, so
	// duplicate-name linting matches what a regression run would use.
	if src.Cfg.Name == "node" {
		src.Cfg.Name = strings.TrimSuffix(filepath.Base(path), ".cfg")
	}
	return []lint.Source{src}, nil
}

// parseSeeds parses the -seeds flag: a comma-separated list of int64s.
func parseSeeds(list string) ([]int64, error) {
	if list == "" {
		return nil, nil
	}
	var seeds []int64
	for _, field := range strings.Split(list, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in -seeds", field)
		}
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// printCodes renders the rule table: every diagnostic code, its severity
// and a one-line summary.
func printCodes(w io.Writer) {
	for _, rule := range lint.Rules() {
		fmt.Fprintf(w, "%s  %-7s  %s\n", rule.Code, rule.Severity, rule.Summary)
	}
}
