// Command experiments regenerates the paper's evaluation (see DESIGN.md §4
// and EXPERIMENTS.md): each experiment prints the table or narrative the
// paper's flow reports.
//
// Usage:
//
//	experiments -exp e1           # regression matrix (add -quick for a slice)
//	experiments -exp e2           # bug detection: past flow vs common flow
//	experiments -exp e3           # coverage equality between views
//	experiments -exp e4           # per-port alignment rates
//	experiments -exp e5           # simulation throughput
//	experiments -exp e6           # code coverage (RTL only)
//	experiments -exp e7           # future work: ports approach (TLM bench)
//	experiments -exp a1           # ablation: shared bus vs crossbar performance
//	experiments -exp a2           # ablation: pipe-size sweep
//	experiments -exp m1           # motivation: fast BCA design-space exploration
//	experiments -exp flow         # Figures 4/5 step-by-step narrative
//	experiments -exp all -quick   # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"crve/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: e1..e7, a1, a2, m1, flow, or all")
		quick = flag.Bool("quick", false, "e1: run a 6-configuration slice instead of the full matrix")
	)
	flag.Parse()
	if err := run(*exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	w := os.Stdout
	runOne := func(name string) error {
		switch name {
		case "e1":
			return experiments.E1RegressionMatrix(w, quick)
		case "e2":
			return experiments.E2BugDetection(w)
		case "e3":
			return experiments.E3CoverageEquality(w)
		case "e4":
			return experiments.E4Alignment(w)
		case "e5":
			_, err := experiments.E5Speed(w)
			return err
		case "e6":
			return experiments.E6CodeCoverage(w)
		case "e7":
			return experiments.E7PortsApproach(w)
		case "a1":
			return experiments.AblationArch(w)
		case "a2":
			return experiments.AblationPipe(w)
		case "m1":
			return experiments.Exploration(w)
		case "flow":
			return experiments.Flow(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	if exp != "all" {
		return runOne(exp)
	}
	for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "a1", "a2", "m1", "flow"} {
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
