// Command stba is the STBus Analyzer CLI: it compares two waveform dumps
// (typically the RTL and BCA runs of the same test and seed) and prints the
// per-port alignment table against the 99 % sign-off threshold. It can also
// extract the STBus transaction stream observed at one port. Inputs may be
// text VCD dumps or compact binary recordings (.crw, as written by
// regress -wave), in any combination — the format is sniffed per file.
//
// Usage:
//
//	stba rtl.vcd bca.vcd                  # per-port alignment table
//	stba rtl.crw bca.crw                  # same, from binary recordings
//	stba -ports node.init0 rtl.vcd bca.vcd
//	stba -extract node.init0 -type 3 rtl.vcd
//	stba -signals node.init0 rtl.vcd bca.vcd  # per-signal drill-down
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"crve/internal/stba"
	"crve/internal/stbus"
	"crve/internal/vcd"
)

func main() {
	var (
		portsArg = flag.String("ports", "", "comma-separated port prefixes (default: discover)")
		extract  = flag.String("extract", "", "extract transactions at this port from one dump")
		typeArg  = flag.Int("type", 3, "STBus protocol type for -extract (1, 2 or 3)")
		signals  = flag.String("signals", "", "drill into one port: per-signal alignment rates")
	)
	flag.Parse()
	if err := run(*portsArg, *extract, *signals, *typeArg, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "stba:", err)
		os.Exit(1)
	}
}

// parseVCD loads a waveform file as a parsed dump, accepting either text VCD
// or a compact binary recording (sniffed by magic, not extension).
func parseVCD(path string) (*vcd.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if vcd.IsRecording(data) {
		rec, err := vcd.DecodeRecording(data)
		if err != nil {
			return nil, err
		}
		return rec.File(), nil
	}
	return vcd.Parse(bytes.NewReader(data))
}

func run(portsArg, extract, signals string, typeArg int, args []string) error {
	if extract != "" {
		if len(args) != 1 {
			return fmt.Errorf("-extract needs exactly one VCD file")
		}
		f, err := parseVCD(args[0])
		if err != nil {
			return err
		}
		txs, err := stba.ExtractTransactions(f, extract, stbus.Type(typeArg))
		if err != nil {
			return err
		}
		for _, tr := range txs {
			fmt.Println(tr)
		}
		fmt.Printf("%d transactions at %s\n", len(txs), extract)
		return nil
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: stba [flags] rtl.vcd bca.vcd")
	}
	a, err := parseVCD(args[0])
	if err != nil {
		return err
	}
	b, err := parseVCD(args[1])
	if err != nil {
		return err
	}
	if signals != "" {
		rates, err := stba.SignalRates(a, b, signals)
		if err != nil {
			return err
		}
		fmt.Printf("per-signal alignment at %s (worst first):\n", signals)
		for _, sr := range rates {
			fmt.Printf("  %-40s %7.2f%%\n", sr.Signal, sr.Rate())
		}
		return nil
	}
	var ports []string
	if portsArg != "" {
		ports = strings.Split(portsArg, ",")
	}
	rep, err := stba.Compare(a, b, ports)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if !rep.AllPass() {
		return fmt.Errorf("alignment below the %.0f%% sign-off rate", stba.SignoffRate)
	}
	fmt.Printf("all ports at or above %.0f%%: BCA model may be signed off\n", stba.SignoffRate)
	return nil
}
