// Command regress is the batch regression tool of the flow (the paper's GUI
// tool, CLI-ified): it loads node configurations from parameter files (or
// generates the standard matrix), runs the generic test suite on both the
// RTL and the BCA view with the same seeds, emits verification, coverage and
// alignment reports, and optionally writes the VCD dumps used by the
// bus-accurate comparison.
//
// Usage:
//
//	regress -matrix                    # run the >=36-configuration matrix
//	regress -config ./configs          # run every .cfg file in a directory
//	regress -config ./configs -tests basic_write_read,error_paths -seeds 1,2,3
//	regress -matrix -quick -out ./out  # fast slice, write reports and VCDs
//	regress -emit ./configs            # materialise the matrix as .cfg files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"crve/internal/core"
	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/testcases"
)

func main() {
	var (
		configDir = flag.String("config", "", "directory of .cfg parameter files")
		matrix    = flag.Bool("matrix", false, "use the standard >=36-configuration matrix")
		quick     = flag.Bool("quick", false, "with -matrix: run only the first 6 configurations")
		testsArg  = flag.String("tests", "", "comma-separated test names (default: all 12)")
		seedsArg  = flag.String("seeds", "1", "comma-separated seeds")
		outDir    = flag.String("out", "", "directory for reports and VCD dumps")
		emitDir   = flag.String("emit", "", "write the standard matrix as .cfg files and exit")
		verbose   = flag.Bool("v", false, "log each run")
		nolint    = flag.Bool("nolint", false, "skip the static-analysis gate and run even with lint errors")
	)
	flag.Parse()
	if err := run(*configDir, *matrix, *quick, *testsArg, *seedsArg, *outDir, *emitDir, *verbose, *nolint); err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
		os.Exit(1)
	}
}

func run(configDir string, matrix, quick bool, testsArg, seedsArg, outDir, emitDir string, verbose, nolint bool) error {
	if emitDir != "" {
		if err := os.MkdirAll(emitDir, 0o755); err != nil {
			return err
		}
		for _, cfg := range regress.StandardMatrix() {
			path := filepath.Join(emitDir, cfg.Name+".cfg")
			if err := os.WriteFile(path, []byte(regress.FormatConfig(cfg)), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d configuration files to %s\n", len(regress.StandardMatrix()), emitDir)
		return nil
	}

	var cfgs []nodespec.Config
	switch {
	case configDir != "":
		var err error
		cfgs, err = regress.LoadConfigDir(configDir)
		if err != nil {
			return err
		}
	case matrix:
		cfgs = regress.StandardMatrix()
		if quick {
			cfgs = cfgs[:6]
		}
	default:
		return fmt.Errorf("pass -config DIR or -matrix (see -h)")
	}

	var tests []core.Test
	if testsArg == "" {
		tests = testcases.All()
	} else {
		for _, name := range strings.Split(testsArg, ",") {
			tc, err := testcases.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			tests = append(tests, tc)
		}
	}
	var seeds []int64
	for _, s := range strings.Split(seedsArg, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", s)
		}
		seeds = append(seeds, v)
	}

	// Static-analysis gate: lint the whole set (with file:line positions
	// when the configs came from a directory) before any cycle runs.
	var rep *lint.Report
	if configDir != "" {
		srcs, err := regress.LoadSourceDir(configDir)
		if err != nil {
			return err
		}
		rep = lint.CheckSet(srcs, seeds)
	} else {
		rep = regress.LintConfigs(cfgs, seeds)
	}
	for _, d := range rep.Diags {
		fmt.Fprintln(os.Stderr, "lint:", d)
	}
	if rep.HasErrors() {
		if !nolint {
			return fmt.Errorf("%s (run crvelint for details, or pass -nolint to override)", rep.Summary())
		}
		fmt.Fprintf(os.Stderr, "lint: %s — continuing because -nolint is set\n", rep.Summary())
	}

	opt := regress.Options{Tests: tests, Seeds: seeds, NoLint: true} // linted above
	if verbose {
		opt.Log = os.Stdout
	}
	results, err := regress.RunMatrix(cfgs, opt)
	if err != nil {
		return err
	}
	fmt.Print(regress.MatrixReport(results))
	signed := 0
	for _, cr := range results {
		if cr.SignedOff() {
			signed++
		}
	}
	fmt.Printf("signed off: %d/%d configurations\n", signed, len(results))

	if outDir != "" {
		if err := regress.WriteReports(outDir, results); err != nil {
			return err
		}
		fmt.Printf("reports written to %s\n", outDir)
	}
	if signed != len(results) {
		return fmt.Errorf("%d configuration(s) failed sign-off", len(results)-signed)
	}
	return nil
}
