// Command regress is the batch regression tool of the flow (the paper's GUI
// tool, CLI-ified): it loads node configurations from parameter files (or
// generates the standard matrix), runs the generic test suite on both the
// RTL and the BCA view with the same seeds, and emits verification, coverage
// and alignment reports. The bus-accurate comparison streams online — no VCD
// is written or parsed on the default path; -wave keeps compact binary
// waveform recordings (.crw) as artifacts, and -legacy-align restores the
// write-two-VCDs/parse/Compare round trip for ablation.
//
// Usage:
//
//	regress -matrix                    # run the >=36-configuration matrix
//	regress -config ./configs          # run every .cfg file in a directory
//	regress -config ./configs -tests basic_write_read,error_paths -seeds 1,2,3
//	regress -matrix -quick -out ./out  # fast slice, write reports
//	regress -matrix -quick -out ./out -wave  # ...plus .crw waveform recordings
//	regress -matrix -j 8 -cache ./rc   # 8 workers, incremental result cache
//	regress -emit ./configs            # materialise the matrix as .cfg files
//	regress -config ./configs -close   # close coverage holes with synthesized tests
//	regress -matrix -quick -kernelstats # also print the kernel profile per config/view
//	regress -matrix -quick -kernel=compiled -kernelstats  # compiled bytecode backend + its profile
//	regress -matrix -kernel=compiled -seeds 1,2,3,4 -lanes 64  # bit-parallel seed lanes per (config, test)
//	regress -config ./configs -fabric topo.fab  # also gate on a whole-fabric check
//	regress -matrix -quick -legacy-align  # alignment via the legacy VCD round trip
//
// The report output is byte-identical at any -j width: work units fan out
// across the pool but merge deterministically. With -cache, a re-run serves
// unchanged (config, test, seed) units from disk and re-simulates only what
// changed; the trailing "work units" line reports the ran/cached split.
//
// With -close, any configuration the suite leaves below 100 % functional
// coverage enters the coverage-closure loop: the engine maps each hole back
// to the traffic dimensions that can reach it, synthesizes biased follow-up
// work units and re-runs them through the same pool and cache until coverage
// is full or the -max-iters/-budget limits run out. The per-iteration
// closure report prints per configuration (and lands in OUT/<config>/
// closure.json with -out); a configuration whose closure does not converge
// fails the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"crve/internal/closure"
	"crve/internal/core"
	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/testcases"
)

// options collects the parsed command line.
type options struct {
	configDir   string
	matrix      bool
	quick       bool
	testsArg    string
	seedsArg    string
	outDir      string
	emitDir     string
	verbose     bool
	nolint      bool
	jobs        int
	cacheDir    string
	close       bool
	maxIters    int
	budget      uint64
	kernelstats bool
	kernel      string
	fabricArg   string
	wave        bool
	legacyAlign bool
	jsonOut     bool
	lanes       int
}

func main() {
	var o options
	flag.StringVar(&o.configDir, "config", "", "directory of .cfg parameter files")
	flag.BoolVar(&o.matrix, "matrix", false, "use the standard >=36-configuration matrix")
	flag.BoolVar(&o.quick, "quick", false, "with -matrix: run only the first 6 configurations")
	flag.StringVar(&o.testsArg, "tests", "", "comma-separated test names (default: all 12)")
	flag.StringVar(&o.seedsArg, "seeds", "1", "comma-separated seeds")
	flag.StringVar(&o.outDir, "out", "", "directory for reports and VCD dumps")
	flag.StringVar(&o.emitDir, "emit", "", "write the standard matrix as .cfg files and exit")
	flag.BoolVar(&o.verbose, "v", false, "log each run")
	flag.BoolVar(&o.nolint, "nolint", false, "skip the static-analysis gate and run even with lint errors")
	flag.IntVar(&o.jobs, "j", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.cacheDir, "cache", "", "incremental result cache directory (re-runs only what changed)")
	flag.BoolVar(&o.close, "close", false, "run the coverage-closure loop on configurations the suite leaves below 100% functional coverage")
	flag.IntVar(&o.maxIters, "max-iters", 8, "with -close: maximum closure iterations per configuration")
	flag.Uint64Var(&o.budget, "budget", 0, "with -close: closure cycle budget per configuration, both views (0 = unlimited)")
	flag.BoolVar(&o.kernelstats, "kernelstats", false, "collect and print the simulation-kernel profile (deltas/cycle, settle depth, hottest processes)")
	flag.StringVar(&o.kernel, "kernel", "", "simulation backend: levelized (default) or compiled (fuses IR-declared processes into flat bytecode)")
	flag.StringVar(&o.fabricArg, "fabric", "", "comma-separated topology files (*.fab) the matrix must compose into; checked by the lint gate")
	flag.BoolVar(&o.wave, "wave", false, "keep compact binary waveform recordings per run (written as .crw with -out)")
	flag.BoolVar(&o.legacyAlign, "legacy-align", false, "compute alignment via the legacy VCD write/parse/Compare round trip (ablation baseline)")
	flag.IntVar(&o.lanes, "lanes", 0, "batch up to N seeds of one (config, test) pair into a lane-parallel simulator (max 64; 0 = scalar); per-seed reports stay byte-identical")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the canonical JSON report on stdout (human summary moves to stderr) — byte-identical to the regressd report endpoint")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.emitDir != "" {
		if err := os.MkdirAll(o.emitDir, 0o755); err != nil {
			return err
		}
		cfgs := regress.StandardMatrix()
		for _, cfg := range cfgs {
			path := filepath.Join(o.emitDir, cfg.Name+".cfg")
			if err := os.WriteFile(path, []byte(regress.FormatConfig(cfg)), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d configuration files to %s\n", len(cfgs), o.emitDir)
		return nil
	}

	var cfgs []nodespec.Config
	switch {
	case o.configDir != "":
		var err error
		cfgs, err = regress.LoadConfigDir(o.configDir)
		if err != nil {
			return err
		}
	case o.matrix:
		cfgs = regress.StandardMatrix()
		if o.quick {
			cfgs = cfgs[:6]
		}
	default:
		return fmt.Errorf("pass -config DIR or -matrix (see -h)")
	}

	var tests []core.Test
	if o.testsArg == "" {
		tests = testcases.All()
	} else {
		for _, name := range strings.Split(o.testsArg, ",") {
			tc, err := testcases.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			tests = append(tests, tc)
		}
	}
	var seeds []int64
	for _, s := range strings.Split(o.seedsArg, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", s)
		}
		seeds = append(seeds, v)
	}

	// Static-analysis gate: lint the whole set (with file:line positions
	// when the configs came from a directory) before any cycle runs.
	var rep *lint.Report
	if o.configDir != "" {
		srcs, err := regress.LoadSourceDir(o.configDir)
		if err != nil {
			return err
		}
		rep = lint.CheckSet(srcs, seeds)
	} else {
		rep = regress.LintConfigs(cfgs, seeds)
	}
	if o.fabricArg != "" {
		for _, path := range strings.Split(o.fabricArg, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			frep, err := regress.CheckFabric(path)
			if err != nil {
				return err
			}
			rep.Diags = append(rep.Diags, frep.Diags...)
		}
		rep.Sort()
	}
	for _, d := range rep.Diags {
		fmt.Fprintln(os.Stderr, "lint:", d)
	}
	if rep.HasErrors() {
		if !o.nolint {
			return fmt.Errorf("%s (run crvelint for details, or pass -nolint to override)", rep.Summary())
		}
		fmt.Fprintf(os.Stderr, "lint: %s — continuing because -nolint is set\n", rep.Summary())
	}

	// With -json the canonical report owns stdout; everything human-facing
	// (tables, logs, summaries) moves to stderr so piping stays clean.
	hout := io.Writer(os.Stdout)
	if o.jsonOut {
		hout = os.Stderr
	}

	opt := regress.Options{
		Tests: tests, Seeds: seeds, NoLint: true, Workers: o.jobs, // linted above
		KernelStats: o.kernelstats, Kernel: o.kernel, Lanes: o.lanes,
		RecordWave: o.wave, LegacyAlignment: o.legacyAlign,
	}
	if o.verbose {
		opt.Log = hout
	}
	if o.cacheDir != "" {
		cache, err := regress.OpenCache(o.cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = cache
	}
	results, stats, err := regress.Run(cfgs, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(hout, regress.MatrixReport(results))
	signed := 0
	for _, cr := range results {
		if cr.SignedOff() {
			signed++
		}
	}
	fmt.Fprintf(hout, "signed off: %d/%d configurations\n", signed, len(results))
	fmt.Fprintf(hout, "work units: %s\n", stats)
	// Wall-clock and throughput come from the engine's Stats — computed
	// once, read everywhere — and go to stderr so report output stays
	// deterministic (byte-identical across runs and -j widths).
	fmt.Fprintf(os.Stderr, "elapsed %s, %d cycles simulated, %.0f cycles/s\n",
		stats.Duration.Round(time.Millisecond), stats.Cycles, stats.Throughput())
	if o.kernelstats {
		fmt.Fprint(hout, regress.KernelReport(results))
	}

	var notConverged int
	if o.close {
		var cstats regress.Stats
		closed := 0
		for _, cr := range results {
			if cr.SuiteCoverage.Full() {
				continue
			}
			copt := closure.Options{
				Seeds: seeds, Workers: o.jobs, Cache: opt.Cache,
				MaxIters: o.maxIters, Budget: o.budget,
			}
			if o.verbose {
				copt.Log = hout
			}
			res, err := closure.CloseGroup(cr.Cfg, cr.SuiteCoverage, copt)
			if err != nil {
				return err
			}
			closure.Text(hout, res.Trajectory)
			cstats.Ran += res.ClosureStats.Ran
			cstats.Cached += res.ClosureStats.Cached
			if res.Trajectory.Converged {
				closed++
			} else {
				notConverged++
			}
			if o.outDir != "" {
				dir := filepath.Join(o.outDir, cr.Cfg.Name)
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return err
				}
				f, err := os.Create(filepath.Join(dir, "closure.json"))
				if err != nil {
					return err
				}
				if err := closure.JSON(f, res.Trajectory); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(hout, "closure: %d configuration(s) closed, %d not converged, units %s\n",
			closed, notConverged, cstats)
	}

	if o.jsonOut {
		// Built after closure so the coverage columns reflect whatever the
		// closure loop bought — the same order of operations the service
		// uses, keeping CLI and API reports diffable.
		if err := regress.WriteJSON(os.Stdout, regress.BuildReport(results, stats)); err != nil {
			return err
		}
	}

	if o.outDir != "" {
		if err := regress.WriteReports(o.outDir, results); err != nil {
			return err
		}
		fmt.Fprintf(hout, "reports written to %s\n", o.outDir)
	}
	if signed != len(results) {
		return fmt.Errorf("%d configuration(s) failed sign-off", len(results)-signed)
	}
	if notConverged > 0 {
		return fmt.Errorf("coverage closure did not converge on %d configuration(s)", notConverged)
	}
	return nil
}
