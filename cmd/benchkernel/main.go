// Command benchkernel measures the compiled bytecode backend against the
// levelized scheduler on the E5 reference run and emits the comparison as
// JSON (checked in and archived by CI as BENCH_kernel.json): RTL-view
// throughput in simulated cycles per second for both backends, the speedup
// of each over the PR 5 recorded levelized baseline, delta iterations per
// cycle, and the size of the fused program (processes absorbed, bytecode
// instructions emitted).
//
// Usage:
//
//	benchkernel                              # JSON on stdout
//	benchkernel -out BENCH_kernel.json -repeat 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"crve/internal/arb"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// baselinePR5 is the levelized BenchmarkE5RTL figure recorded when the
// levelized scheduler landed (PR 5), the reference point the compiled
// backend's acceptance speedup is measured against.
const baselinePR5 = 79388.0

// backend is one measured simulation backend.
type backend struct {
	// CyclesPerSec is RTL-view throughput: simulated cycles divided by
	// wall time, median of -repeat timed samples (each a half-second batch
	// of runs).
	CyclesPerSec float64 `json:"cycles_per_s"`
	// SpeedupVsPR5 is CyclesPerSec over the PR 5 levelized baseline.
	SpeedupVsPR5 float64 `json:"speedup_vs_pr5_baseline"`
	// DeltasPerCycle is delta iterations per simulated cycle — both
	// backends retire the legacy convergence loop, so this stays low.
	DeltasPerCycle float64 `json:"deltas_per_cycle"`
	// FusedProcs and FusedOps size the fused bytecode program: processes
	// absorbed into flat segments and total instructions emitted (zero
	// under the levelized backend).
	FusedProcs int `json:"fused_procs,omitempty"`
	FusedOps   int `json:"fused_ops,omitempty"`
	// CompiledEvals and ClosureEvals split process evaluations by dispatch
	// mechanism over the profiled run.
	CompiledEvals uint64 `json:"compiled_evals,omitempty"`
	ClosureEvals  uint64 `json:"closure_evals,omitempty"`
}

type report struct {
	Config string `json:"config"`
	Test   string `json:"test"`
	Seed   int64  `json:"seed"`
	Cycles uint64 `json:"cycles_per_run"`
	// BaselinePR5 is the recorded levelized figure both speedups divide by.
	BaselinePR5 float64 `json:"pr5_baseline_cycles_per_s"`
	Levelized   backend `json:"levelized"`
	Compiled    backend `json:"compiled"`
	// CompiledSpeedup is compiled over levelized as measured in this run
	// (same machine, same repetitions).
	CompiledSpeedup float64 `json:"compiled_speedup"`
}

func refCfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

func main() {
	var (
		out    = flag.String("out", "", "write JSON here instead of stdout")
		repeat = flag.Int("repeat", 7, "timing repetitions (median of N)")
		seed   = flag.Int64("seed", 7, "test seed")
	)
	flag.Parse()
	if err := run(*out, *repeat, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
}

// sampleWindow is how long one timed sample loops the run under test. A
// single E5 run lasts a couple of milliseconds — far too short to time on
// its own — so each sample batches runs until the window elapses, the same
// amortisation go test -bench applies.
const sampleWindow = 500 * time.Millisecond

// medianRate takes n timed samples of f (each a batch of runs filling
// sampleWindow, yielding runs-per-second) and returns the median — the
// robust single figure on shared machines where best-of-N can catch one
// lucky scheduling window and the mean is dragged by one unlucky one.
func medianRate(n int, f func() error) (float64, error) {
	rates := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		runs := 0
		start := time.Now()
		for time.Since(start) < sampleWindow {
			if err := f(); err != nil {
				return 0, err
			}
			runs++
		}
		rates = append(rates, float64(runs)/time.Since(start).Seconds())
	}
	sort.Float64s(rates)
	return rates[len(rates)/2], nil
}

// measure profiles and times one backend on the E5 reference run.
func measure(cfg nodespec.Config, tc core.Test, seed int64, k sim.Kernel, repeat int) (backend, uint64, error) {
	var be backend

	// One profiled run for the kernel statistics; timing sampling has a
	// cost, so the throughput runs below are taken without it.
	prof, err := core.RunTest(cfg, core.RTLView, tc, seed, core.RunOptions{Kernel: k, KernelStats: true})
	if err != nil {
		return be, 0, err
	}
	ks := prof.Kernel
	if k == sim.KernelCompiled && ks.FusedProcs == 0 {
		return be, 0, fmt.Errorf("compiled backend fused no processes")
	}
	be.DeltasPerCycle = float64(ks.Deltas) / float64(ks.Cycles)
	be.FusedProcs = ks.FusedProcs
	be.FusedOps = ks.FusedOps
	be.CompiledEvals = ks.CompiledEvals
	be.ClosureEvals = ks.ClosureEvals

	rate, err := medianRate(repeat, func() error {
		_, err := core.RunTest(cfg, core.RTLView, tc, seed, core.RunOptions{Kernel: k})
		return err
	})
	if err != nil {
		return be, 0, err
	}
	be.CyclesPerSec = rate * float64(prof.Cycles)
	be.SpeedupVsPR5 = be.CyclesPerSec / baselinePR5
	return be, prof.Cycles, nil
}

func run(out string, repeat int, seed int64) error {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return err
	}

	rep := report{Config: cfg.Name, Test: tc.Name, Seed: seed, BaselinePR5: baselinePR5}
	if rep.Levelized, rep.Cycles, err = measure(cfg, tc, seed, sim.KernelLevelized, repeat); err != nil {
		return err
	}
	if rep.Compiled, _, err = measure(cfg, tc, seed, sim.KernelCompiled, repeat); err != nil {
		return err
	}
	rep.CompiledSpeedup = rep.Compiled.CyclesPerSec / rep.Levelized.CyclesPerSec

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
