// Command benchkernel measures the compiled bytecode backend against the
// levelized scheduler on the E5 reference run and emits the comparison as
// JSON (checked in and archived by CI as BENCH_kernel.json): RTL-view
// throughput in simulated cycles per second for both backends, the speedup
// of each over the PR 5 recorded levelized baseline, delta iterations per
// cycle, and the size of the fused program (processes absorbed, bytecode
// instructions emitted).
//
// With -lanes it instead measures bit-parallel multi-seed execution: the
// same 64-seed workload run scalar and in lane batches of increasing width,
// reported as aggregate seed-cycles per second alongside the divergence rate
// (the share of per-lane work the fused transposed bytecode could not absorb
// and the closure fallback executed lane by lane). CI archives that report
// as BENCH_lanes.json.
//
// Usage:
//
//	benchkernel                              # JSON on stdout
//	benchkernel -out BENCH_kernel.json -repeat 7
//	benchkernel -lanes -out BENCH_lanes.json # lane-batching sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"crve/internal/arb"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// baselinePR5 is the levelized BenchmarkE5RTL figure recorded when the
// levelized scheduler landed (PR 5), the reference point the compiled
// backend's acceptance speedup is measured against.
const baselinePR5 = 79388.0

// backend is one measured simulation backend.
type backend struct {
	// CyclesPerSec is RTL-view throughput: simulated cycles divided by
	// wall time, median of -repeat timed samples (each a half-second batch
	// of runs).
	CyclesPerSec float64 `json:"cycles_per_s"`
	// SpeedupVsPR5 is CyclesPerSec over the PR 5 levelized baseline.
	SpeedupVsPR5 float64 `json:"speedup_vs_pr5_baseline"`
	// DeltasPerCycle is delta iterations per simulated cycle — both
	// backends retire the legacy convergence loop, so this stays low.
	DeltasPerCycle float64 `json:"deltas_per_cycle"`
	// FusedProcs and FusedOps size the fused bytecode program: processes
	// absorbed into flat segments and total instructions emitted (zero
	// under the levelized backend).
	FusedProcs int `json:"fused_procs,omitempty"`
	FusedOps   int `json:"fused_ops,omitempty"`
	// CompiledEvals and ClosureEvals split process evaluations by dispatch
	// mechanism over the profiled run.
	CompiledEvals uint64 `json:"compiled_evals,omitempty"`
	ClosureEvals  uint64 `json:"closure_evals,omitempty"`
}

type report struct {
	Config string `json:"config"`
	Test   string `json:"test"`
	Seed   int64  `json:"seed"`
	Cycles uint64 `json:"cycles_per_run"`
	// BaselinePR5 is the recorded levelized figure both speedups divide by.
	BaselinePR5 float64 `json:"pr5_baseline_cycles_per_s"`
	Levelized   backend `json:"levelized"`
	Compiled    backend `json:"compiled"`
	// CompiledSpeedup is compiled over levelized as measured in this run
	// (same machine, same repetitions).
	CompiledSpeedup float64 `json:"compiled_speedup"`
}

func refCfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

func main() {
	var (
		out    = flag.String("out", "", "write JSON here instead of stdout")
		repeat = flag.Int("repeat", 7, "timing repetitions (median of N)")
		seed   = flag.Int64("seed", 7, "test seed")
		lanes  = flag.Bool("lanes", false, "measure lane-batched multi-seed throughput instead of the backend comparison")
	)
	flag.Parse()
	runner := run
	if *lanes {
		runner = runLanes
	}
	if err := runner(*out, *repeat, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
}

// sampleWindow is how long one timed sample loops the run under test. A
// single E5 run lasts a couple of milliseconds — far too short to time on
// its own — so each sample batches runs until the window elapses, the same
// amortisation go test -bench applies.
const sampleWindow = 500 * time.Millisecond

// medianRate takes n timed samples of f (each a batch of runs filling
// sampleWindow, yielding runs-per-second) and returns the median — the
// robust single figure on shared machines where best-of-N can catch one
// lucky scheduling window and the mean is dragged by one unlucky one.
func medianRate(n int, f func() error) (float64, error) {
	rates := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		runs := 0
		start := time.Now()
		for time.Since(start) < sampleWindow {
			if err := f(); err != nil {
				return 0, err
			}
			runs++
		}
		rates = append(rates, float64(runs)/time.Since(start).Seconds())
	}
	sort.Float64s(rates)
	return rates[len(rates)/2], nil
}

// measure profiles and times one backend on the E5 reference run.
func measure(cfg nodespec.Config, tc core.Test, seed int64, k sim.Kernel, repeat int) (backend, uint64, error) {
	var be backend

	// One profiled run for the kernel statistics; timing sampling has a
	// cost, so the throughput runs below are taken without it.
	prof, err := core.RunTest(cfg, core.RTLView, tc, seed, core.RunOptions{Kernel: k, KernelStats: true})
	if err != nil {
		return be, 0, err
	}
	ks := prof.Kernel
	if k == sim.KernelCompiled && ks.FusedProcs == 0 {
		return be, 0, fmt.Errorf("compiled backend fused no processes")
	}
	be.DeltasPerCycle = float64(ks.Deltas) / float64(ks.Cycles)
	be.FusedProcs = ks.FusedProcs
	be.FusedOps = ks.FusedOps
	be.CompiledEvals = ks.CompiledEvals
	be.ClosureEvals = ks.ClosureEvals

	rate, err := medianRate(repeat, func() error {
		_, err := core.RunTest(cfg, core.RTLView, tc, seed, core.RunOptions{Kernel: k})
		return err
	})
	if err != nil {
		return be, 0, err
	}
	be.CyclesPerSec = rate * float64(prof.Cycles)
	be.SpeedupVsPR5 = be.CyclesPerSec / baselinePR5
	return be, prof.Cycles, nil
}

// laneWidth is one measured batching width over the fixed 64-seed workload.
type laneWidth struct {
	// Lanes is the batch width: seeds packed into one lane-parallel
	// simulator per core.RunTestLanes call (1 = scalar core.RunTest).
	Lanes int `json:"lanes"`
	// SeedCyclesPerSec is aggregate throughput: total simulated seed-cycles
	// of the whole workload divided by wall time, median of -repeat samples.
	SeedCyclesPerSec float64 `json:"seed_cycles_per_s"`
	// SpeedupVsScalar is SeedCyclesPerSec over the scalar (lanes=1) row.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
	// FusedLaneEvals and ClosureEvals split one profiled batch's per-lane
	// work between the transposed bytecode and the closure fallback;
	// DivergencePct is the closure share — the Amdahl ceiling on lane gain.
	FusedLaneEvals uint64  `json:"fused_lane_evals,omitempty"`
	ClosureEvals   uint64  `json:"closure_evals,omitempty"`
	DivergencePct  float64 `json:"divergence_pct,omitempty"`
}

type laneReport struct {
	Config string `json:"config"`
	Test   string `json:"test"`
	// Seeds is the workload: this many consecutive seeds starting at Seed,
	// identical for every row so the rows differ only in batching.
	Seed  int64 `json:"seed"`
	Seeds int   `json:"seeds"`
	// TotalCycles is the summed per-seed simulated cycle count of the
	// workload (lane runs reproduce scalar cycle counts exactly).
	TotalCycles uint64      `json:"total_cycles"`
	Kernel      string      `json:"kernel"`
	Widths      []laneWidth `json:"widths"`
	// IRKernel is the kernel-only microbenchmark: the same comparison on a
	// design the transposed bytecode absorbs completely, isolating the
	// vectorizable share that the end-to-end rows dilute with per-lane
	// testbench closures.
	IRKernel irKernel `json:"ir_kernel"`
}

// irKernel is the kernel-only lane block: an IR-only synthetic datapath
// (a depth-deep combinational mixing chain folding into a seeded register)
// run scalar and 64-lane, in seed-cycles per second.
type irKernel struct {
	Depth                  int     `json:"depth"`
	CyclesPerRun           int     `json:"cycles_per_run"`
	ScalarSeedCyclesPerSec float64 `json:"scalar_seed_cycles_per_s"`
	Lane64SeedCyclesPerSec float64 `json:"lane64_seed_cycles_per_s"`
	Speedup                float64 `json:"speedup"`
}

// buildIRPipe elaborates the IR-only datapath: every process is an
// Expr-declared comb or seq unit, so the compiled backend fuses all of it
// and a lane run diverges nowhere.
func buildIRPipe(sm *sim.Simulator, depth int) *sim.Signal {
	st := sm.Signal("state", 64)
	prev := sim.Read(st)
	for i := 0; i < depth; i++ {
		s := sm.Signal(fmt.Sprintf("mix%d", i), 64)
		e := prev.Xor(sim.ConstU64(0x9e3779b97f4a7c15*(uint64(i)+1), 64))
		switch i % 3 {
		case 1:
			e = e.Add(sim.Read(st)).Field(0, 64)
		case 2:
			e = e.Not()
		}
		sm.CombExpr(fmt.Sprintf("m%d", i), sim.Assign{Dst: s, Src: e})
		prev = sim.Read(s)
	}
	sm.SeqExpr("fold", sim.Assign{Dst: st, Src: prev})
	return st
}

// measureIRLane times the IR-only datapath scalar (64 independent
// simulators) and 64-lane (one simulator, one seed per lane), identical
// seeding, construction outside the timed loop — steady-state kernel
// throughput, nothing else.
func measureIRLane(depth, cycles, repeat int) (irKernel, error) {
	ik := irKernel{Depth: depth, CyclesPerRun: cycles}
	seedVal := func(i int) sim.Bits { return sim.B64(uint64(i)*0x9e3779b97f4a7c15 + 1) }

	scalars := make([]*sim.Simulator, core.MaxLanes)
	for i := range scalars {
		sm := sim.New()
		sm.Kernel = sim.KernelCompiled
		buildIRPipe(sm, depth).Set(seedVal(i))
		scalars[i] = sm
	}
	rate, err := medianRate(repeat, func() error {
		for _, sm := range scalars {
			if err := sm.Run(cycles); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return ik, err
	}
	ik.ScalarSeedCyclesPerSec = rate * float64(core.MaxLanes*cycles)

	lsm := sim.New()
	lsm.Kernel = sim.KernelCompiled
	lsm.SetLanes(core.MaxLanes)
	var st *sim.Signal
	for l := 0; l < core.MaxLanes; l++ {
		lsm.BeginLane(l)
		s := buildIRPipe(lsm, depth)
		if l == 0 {
			st = s
		}
	}
	lsm.EndBuild()
	for l := 0; l < core.MaxLanes; l++ {
		st.SetLane(l, seedVal(l))
	}
	// Warm one cycle so the elaboration settle (which legitimately runs
	// closures once) is behind us, then require the timed region to be pure
	// transposed bytecode.
	if err := lsm.Run(1); err != nil {
		return ik, err
	}
	warm := lsm.Stats()
	rate, err = medianRate(repeat, func() error { return lsm.Run(cycles) })
	if err != nil {
		return ik, err
	}
	if ks := lsm.Stats(); ks.FusedLaneEvals == warm.FusedLaneEvals || ks.ClosureEvals != warm.ClosureEvals {
		return ik, fmt.Errorf("IR-only lane run not fully fused: %d fused, %d closure evals in the timed region",
			ks.FusedLaneEvals-warm.FusedLaneEvals, ks.ClosureEvals-warm.ClosureEvals)
	}
	ik.Lane64SeedCyclesPerSec = rate * float64(core.MaxLanes*cycles)
	ik.Speedup = ik.Lane64SeedCyclesPerSec / ik.ScalarSeedCyclesPerSec
	return ik, nil
}

// runLanes measures the lane-batching sweep: the same 64-seed compiled-RTL
// workload executed scalar and in batches of 4, 16 and 64 lanes.
func runLanes(out string, repeat int, seed int64) error {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return err
	}
	const nSeeds = core.MaxLanes
	seeds := make([]int64, nSeeds)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	opt := core.RunOptions{Kernel: sim.KernelCompiled}

	rep := laneReport{
		Config: cfg.Name, Test: tc.Name, Seed: seed, Seeds: nSeeds,
		Kernel: "compiled",
	}
	for _, s := range seeds {
		res, err := core.RunTest(cfg, core.RTLView, tc, s, opt)
		if err != nil {
			return err
		}
		rep.TotalCycles += res.Cycles
	}

	ctx := context.Background()
	for _, w := range []int{1, 4, 16, 64} {
		lw := laneWidth{Lanes: w}
		if w > 1 {
			// One profiled batch for the divergence split; timing runs below
			// skip the stats to keep the hot loop clean.
			popt := opt
			popt.KernelStats = true
			prof, err := core.RunTestLanes(ctx, cfg, core.RTLView, tc, seeds[:w], popt)
			if err != nil {
				return err
			}
			ks := prof[0].Kernel
			if ks.FusedLaneEvals == 0 {
				return fmt.Errorf("lane batch of %d fused no lane evals", w)
			}
			lw.FusedLaneEvals = ks.FusedLaneEvals
			lw.ClosureEvals = ks.ClosureEvals
			lw.DivergencePct = ks.DivergenceRate() * 100
		}
		rate, err := medianRate(repeat, func() error {
			for lo := 0; lo < nSeeds; lo += w {
				batch := seeds[lo : lo+w]
				if w == 1 {
					if _, err := core.RunTest(cfg, core.RTLView, tc, batch[0], opt); err != nil {
						return err
					}
				} else if _, err := core.RunTestLanes(ctx, cfg, core.RTLView, tc, batch, opt); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		lw.SeedCyclesPerSec = rate * float64(rep.TotalCycles)
		if len(rep.Widths) > 0 {
			lw.SpeedupVsScalar = lw.SeedCyclesPerSec / rep.Widths[0].SeedCyclesPerSec
		} else {
			lw.SpeedupVsScalar = 1
		}
		rep.Widths = append(rep.Widths, lw)
	}

	if rep.IRKernel, err = measureIRLane(200, 1000, repeat); err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func run(out string, repeat int, seed int64) error {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return err
	}

	rep := report{Config: cfg.Name, Test: tc.Name, Seed: seed, BaselinePR5: baselinePR5}
	if rep.Levelized, rep.Cycles, err = measure(cfg, tc, seed, sim.KernelLevelized, repeat); err != nil {
		return err
	}
	if rep.Compiled, _, err = measure(cfg, tc, seed, sim.KernelCompiled, repeat); err != nil {
		return err
	}
	rep.CompiledSpeedup = rep.Compiled.CyclesPerSec / rep.Levelized.CyclesPerSec

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
