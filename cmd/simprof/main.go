// Command simprof profiles the simulation kernel on a single (configuration,
// test, seed, view) run: it executes the run with kernel profiling enabled
// and prints the schedule shape (levelized ranks, SCC inventory), the
// deltas/cycle convergence metric, the settle-depth histogram, and the top-N
// processes ranked by sampled wall time (falling back to evaluation count) —
// the data that says where simulation time goes before reaching for a CPU
// profiler.
//
// Usage:
//
//	simprof -matrix-index 0 -test back_to_back -seed 7        # matrix config
//	simprof -config node.cfg -test priority_arb -view bca     # config file
//	simprof -matrix-index 4 -test back_to_back -top 20 -json  # full JSON dump
//	simprof -matrix-index 0 -test back_to_back -kernel compiled  # compiled backend
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/sim"
	"crve/internal/testcases"
)

func main() {
	var (
		configFile  = flag.String("config", "", "node configuration file (.cfg)")
		matrixIndex = flag.Int("matrix-index", -1, "index into the standard configuration matrix")
		testName    = flag.String("test", "back_to_back", "test case name (see -list)")
		seed        = flag.Int64("seed", 1, "test seed")
		view        = flag.String("view", "rtl", "design view: rtl or bca")
		kernel      = flag.String("kernel", "", "simulation backend: levelized (default) or compiled")
		top         = flag.Int("top", 10, "number of hottest processes to print")
		jsonOut     = flag.Bool("json", false, "emit the full profile as JSON")
		list        = flag.Bool("list", false, "list test case names and matrix configurations, then exit")
	)
	flag.Parse()
	if err := run(*configFile, *matrixIndex, *testName, *seed, *view, *kernel, *top, *jsonOut, *list); err != nil {
		fmt.Fprintln(os.Stderr, "simprof:", err)
		os.Exit(1)
	}
}

func run(configFile string, matrixIndex int, testName string, seed int64, view, kernel string, top int, jsonOut, list bool) error {
	if list {
		fmt.Println("tests:", strings.Join(testcases.Names(), ", "))
		fmt.Println("matrix:")
		for i, cfg := range regress.StandardMatrix() {
			fmt.Printf("  %2d  %s (%v)\n", i, cfg.Name, cfg)
		}
		return nil
	}

	var cfg nodespec.Config
	switch {
	case configFile != "":
		f, err := os.Open(configFile)
		if err != nil {
			return err
		}
		cfg, err = regress.ParseConfig(f)
		f.Close()
		if err != nil {
			return err
		}
	case matrixIndex >= 0:
		matrix := regress.StandardMatrix()
		if matrixIndex >= len(matrix) {
			return fmt.Errorf("matrix index %d out of range 0..%d", matrixIndex, len(matrix)-1)
		}
		cfg = matrix[matrixIndex]
	default:
		return fmt.Errorf("pass -config FILE or -matrix-index N (see -h, -list)")
	}

	tc, err := testcases.ByName(testName)
	if err != nil {
		return err
	}
	v := core.RTLView
	switch strings.ToLower(view) {
	case "rtl":
	case "bca":
		v = core.BCAView
	default:
		return fmt.Errorf("bad view %q: want rtl or bca", view)
	}

	k, err := sim.ParseKernel(kernel)
	if err != nil {
		return err
	}
	res, err := core.RunTest(cfg, v, tc, seed, core.RunOptions{KernelStats: true, Kernel: k})
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Kernel)
	}
	fmt.Printf("%s %v %s seed=%d: %d cycles, %d transactions, %s\n",
		cfg.Name, v, tc.Name, seed, res.Cycles, res.Transactions, passStr(res.Passed()))
	res.Kernel.Text(os.Stdout, top)
	return nil
}

func passStr(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}
