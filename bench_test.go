// Benchmarks regenerating the paper's evaluation (one benchmark per
// experiment of DESIGN.md §4) plus ablation benches for the design choices
// DESIGN.md §5 calls out. Run with:
//
//	go test -bench=. -benchmem
package crve_test

import (
	"bytes"
	"io"
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/experiments"
	"crve/internal/nodespec"
	"crve/internal/oldflow"
	"crve/internal/regress"
	"crve/internal/sim"
	"crve/internal/stba"
	"crve/internal/stbus"
	"crve/internal/testcases"
	"crve/internal/tlm"
	"crve/internal/vcd"
)

func refCfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

// BenchmarkE1RegressionMatrix measures one configuration's full-suite
// regression (both views, alignment, coverage merge) — the unit of the ≥36
// configuration matrix of experiment E1.
func BenchmarkE1RegressionMatrix(b *testing.B) {
	cfg := regress.StandardMatrix()[7]
	opt := regress.Options{Tests: testcases.All()[:4], Seeds: []int64{1}}
	for i := 0; i < b.N; i++ {
		cr, err := regress.RunConfig(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !cr.SignedOff() {
			b.Fatal("config failed sign-off")
		}
	}
}

// BenchmarkE2BugDetection measures one bugged-model detection round: the
// past flow (which misses) plus one common-flow pair (which catches).
func BenchmarkE2BugDetection(b *testing.B) {
	cfg := refCfg()
	bug := bca.Bugs{LRUInit: true}
	tc, err := testcases.ByName("hot_target")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		old, err := oldflowRun(cfg, bug)
		if err != nil {
			b.Fatal(err)
		}
		if !old {
			b.Fatal("past flow unexpectedly caught the bug")
		}
		pair, err := core.RunPair(cfg, tc, 1, bug)
		if err != nil {
			b.Fatal(err)
		}
		if pair.Alignment.AllPass() && pair.BCA.Passed() {
			b.Fatal("common flow missed the bug")
		}
	}
}

// BenchmarkE3CoverageEquality measures one same-test-same-seed pair run plus
// the bin-exact coverage comparison.
func BenchmarkE3CoverageEquality(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("random_mixed")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pair, err := core.RunPair(cfg, tc, 1, bca.Bugs{})
		if err != nil {
			b.Fatal(err)
		}
		if eq, why := pair.RTL.Coverage.EqualHits(pair.BCA.Coverage); !eq {
			b.Fatal(why)
		}
	}
}

// BenchmarkE4Alignment measures the legacy STBus Analyzer round trip:
// parsing two VCD dumps and computing per-port alignment rates. (The paired
// flow no longer does this — see BenchmarkStreamingPair — so the dumps are
// requested explicitly.)
func BenchmarkE4Alignment(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	pair, err := core.RunPairOpt(cfg, tc, 1, core.RunOptions{DumpVCD: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := vcd.Parse(bytes.NewReader(pair.RTL.VCD))
		if err != nil {
			b.Fatal(err)
		}
		fb, err := vcd.Parse(bytes.NewReader(pair.BCA.VCD))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := stba.Compare(fr, fb, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MinRate() != 100 {
			b.Fatal("clean pair should align")
		}
	}
}

// benchPair runs one full sign-off pair (RTL run + BCA run + alignment) and
// reports paired simulated cycles per second — the end-to-end unit the
// streaming STBA rework targets.
func benchPair(b *testing.B, opt core.RunOptions) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		pair, err := core.RunPairOpt(cfg, tc, 1, opt)
		if err != nil {
			b.Fatal(err)
		}
		if pair.Alignment.MinRate() != 100 {
			b.Fatal("clean pair should align")
		}
		total += pair.RTL.Cycles + pair.BCA.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkStreamingPair measures the default paired flow: the online
// observer compares per cycle against the RTL run's compact recording — no
// VCD text is built and nothing is parsed back.
func BenchmarkStreamingPair(b *testing.B) { benchPair(b, core.RunOptions{}) }

// BenchmarkLegacyPair measures the retired round trip kept for ablation:
// dump both runs to text VCD, parse both, then Compare.
func BenchmarkLegacyPair(b *testing.B) {
	benchPair(b, core.RunOptions{LegacyAlignment: true})
}

// benchViewThroughput runs a saturating test on one view and reports
// simulated cycles per second — the E5 metric.
func benchViewThroughput(b *testing.B, view core.View, opt core.RunOptions) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := core.RunTest(cfg, view, tc, 7, opt)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkE5RTL measures RTL-view throughput in the common environment.
func BenchmarkE5RTL(b *testing.B) {
	benchViewThroughput(b, core.RTLView, core.RunOptions{})
}

// BenchmarkE5RTLCompiled measures the same RTL-view run under the compiled
// bytecode backend — the PR 9 tier that fuses IR-declared processes into one
// flat program over preresolved signal slots.
func BenchmarkE5RTLCompiled(b *testing.B) {
	benchViewThroughput(b, core.RTLView, core.RunOptions{Kernel: sim.KernelCompiled})
}

// BenchmarkE5BCAWrapped measures the wrapped BCA view — per the paper, the
// wrapper costs it the standalone speed advantage.
func BenchmarkE5BCAWrapped(b *testing.B) {
	benchViewThroughput(b, core.BCAView, core.RunOptions{})
}

// BenchmarkE5BCAStandalone measures the bare transaction engine with
// function-call harnesses, no signal kernel.
func BenchmarkE5BCAStandalone(b *testing.B) {
	cfg := refCfg()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := bca.RunStandalone(bca.StandaloneConfig{
			Node: cfg, Seed: 7, OpsPerInit: 80, MemLatency: 1})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkE7PortsApproach measures the future-work transaction-level bench
// (paper §6: direct model integration "should enhance simulation
// performance").
func BenchmarkE7PortsApproach(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := tlm.RunTest(cfg, tc.Traffic, tc.Target, 7, bca.Bugs{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatal("ports-approach run failed")
		}
		total += res.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkE6CodeCoverage measures an instrumented RTL run plus the
// code-coverage report.
func BenchmarkE6CodeCoverage(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("random_mixed")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.RunTest(cfg, core.RTLView, tc, 1, core.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.CodeCov == nil || res.CodeCov.Report() == "" {
			b.Fatal("missing code coverage")
		}
	}
}

// BenchmarkFlowF45 measures the full Figures 4/5 narrative flow.
func BenchmarkFlowF45(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Flow(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblationDeltaKernel quantifies the delta-cycle kernel cost: it
// runs the RTL node and reports delta iterations per simulated cycle, the
// price paid for SystemC-style same-cycle grant settling.
func BenchmarkAblationDeltaKernel(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	deltas, cycles := uint64(0), uint64(0)
	for i := 0; i < b.N; i++ {
		sm := sim.New()
		dut, err := core.BuildDUT(sim.Root(sm), cfg, core.RTLView, bca.Bugs{})
		if err != nil {
			b.Fatal(err)
		}
		var bfms []*catg.InitiatorBFM
		for k, p := range dut.InitPorts() {
			ops := catg.GenerateOps(cfg, tc.Traffic, k, 3)
			bfms = append(bfms, catg.NewInitiatorBFM(sm, p, ops))
		}
		for t, p := range dut.TgtPorts() {
			catg.NewTargetBFM(sm, p, tc.Target, int64(t))
		}
		done := func() bool {
			for _, bfm := range bfms {
				if !bfm.Done() {
					return false
				}
			}
			return true
		}
		if err := sm.RunUntil(done, 100000); err != nil {
			b.Fatal(err)
		}
		deltas += sm.DeltaCount
		cycles += sm.Cycle()
	}
	b.ReportMetric(float64(deltas)/float64(cycles), "deltas/cycle")
}

// BenchmarkAblationArch compares shared-bus and full-crossbar node
// architectures on the same traffic (cycles to drain).
func BenchmarkAblationArch(b *testing.B) {
	for _, arch := range []nodespec.Arch{nodespec.SharedBus, nodespec.FullCrossbar} {
		arch := arch
		b.Run(arch.String(), func(b *testing.B) {
			cfg := refCfg()
			cfg.Arch = arch
			cfg.ReqArb, cfg.RespArb = arb.RoundRobin, arb.RoundRobin
			total := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := bca.RunStandalone(bca.StandaloneConfig{
					Node: cfg, Seed: 3, OpsPerInit: 60, MemLatency: 1})
				if err != nil {
					b.Fatal(err)
				}
				total += res.Cycles
			}
			b.ReportMetric(float64(total)/float64(b.N), "drain-cycles")
		})
	}
}

// BenchmarkAblationArbitration compares the six arbitration policies under
// identical hot-target contention (drain cycles per policy).
func BenchmarkAblationArbitration(b *testing.B) {
	for _, kind := range arb.Kinds {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			cfg := refCfg()
			cfg.ReqArb = kind
			if kind == arb.Programmable {
				cfg.ProgPort = true
				cfg.ProgBase = 0x10_0000
			}
			total := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := bca.RunStandalone(bca.StandaloneConfig{
					Node: cfg, Seed: 5, OpsPerInit: 60, MemLatency: 2})
				if err != nil {
					b.Fatal(err)
				}
				total += res.Cycles
			}
			b.ReportMetric(float64(total)/float64(b.N), "drain-cycles")
		})
	}
}

// BenchmarkVCDWrite measures waveform-dump overhead per simulated cycle.
func BenchmarkVCDWrite(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.RunTest(cfg, core.RTLView, tc, 1, core.RunOptions{DumpVCD: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.VCD) == 0 {
			b.Fatal("no dump")
		}
	}
}

// BenchmarkVCDParse measures dump parsing, the analyzer's input stage.
func BenchmarkVCDParse(b *testing.B) {
	cfg := refCfg()
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.RunTest(cfg, core.RTLView, tc, 1, core.RunOptions{DumpVCD: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.VCD)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vcd.Parse(bytes.NewReader(res.VCD)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelStep measures the bare kernel: a 64-signal design stepping
// with one comb and one seq process per signal pair.
func BenchmarkKernelStep(b *testing.B) {
	sm := sim.New()
	var regs []*sim.Signal
	for i := 0; i < 32; i++ {
		d := sm.Signal("d", 32)
		q := sm.Signal("q", 32)
		sm.Comb("inc", func() { q.SetU64(d.U64() + 1) }, d)
		sm.Seq("reg", func() { d.Set(q.Get()) })
		regs = append(regs, q)
	}
	_ = regs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sm.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelStepChain measures settle depth: a single depth-32
// combinational chain, the worst case for the legacy delta loop (33 deltas
// per cycle) and the best case for the levelized scheduler (one ranked
// sweep). The deltas/cycle metric makes the difference visible next to
// ns/op.
func BenchmarkKernelStepChain(b *testing.B) {
	const depth = 32
	sm := sim.New()
	sigs := make([]*sim.Signal, depth+1)
	for i := range sigs {
		sigs[i] = sm.Signal("s", 32)
	}
	for i := 0; i < depth; i++ {
		i := i
		sm.CombOut("link", func() { sigs[i+1].SetU64(sigs[i].U64() + 1) }, []*sim.Signal{sigs[i+1]}, sigs[i])
	}
	sm.Seq("drive", func() { sigs[0].SetU64(sigs[0].U64() + 1) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sm.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sm.DeltaCount)/float64(sm.Cycle()), "deltas/cycle")
}

// oldflowRun wraps the past flow for the E2 bench (true = bug missed).
func oldflowRun(cfg nodespec.Config, bugs bca.Bugs) (bool, error) {
	res, err := oldflow.Run(cfg, bugs, 15, 1)
	if err != nil {
		return false, err
	}
	return res.Passed, nil
}
