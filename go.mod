module crve

go 1.22
