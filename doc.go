// Package crve is a reproduction of "Common Reusable Verification
// Environment for BCA and RTL Models" (Falconeri, Naifer, Romdhane;
// STMicroelectronics OCCS; DATE 2004/2005): one verification environment —
// constrained-random harnesses, monitors, protocol checkers, scoreboard and
// functional coverage — applied unchanged to two independently implemented
// views of an STBus node (a signal-level RTL model and a bus-cycle-accurate
// transaction model), followed by a per-port bus-accurate waveform
// comparison with a 99 % alignment sign-off.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); runnable entry points are the binaries under cmd/ and the programs
// under examples/. The benchmarks in bench_test.go regenerate the paper's
// evaluation (EXPERIMENTS.md records paper-vs-measured).
package crve
