package regress

import (
	"context"
	"fmt"
	"io"
	"strings"

	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/coverage"
	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/sim"
)

// Options tunes a regression run.
type Options struct {
	// Tests is the suite to run (the twelve generic test cases by default —
	// supplied by the caller to avoid an import cycle with testcases).
	Tests []core.Test
	// Seeds lists the seeds each test file runs with ("Same test file could
	// be run more than one time with a different seed").
	Seeds []int64
	// Bugs seeds the BCA view (for the bug-detection experiment).
	Bugs bca.Bugs
	// Log receives progress lines when non-nil (batch-mode output).
	Log io.Writer
	// Progress, when non-nil, receives one event per merged work unit, in
	// canonical order, from the single merge goroutine — the structured
	// counterpart of Log for callers (the job service) that track counters
	// instead of text.
	Progress func(Progress)
	// NoLint skips the static-analysis gate in RunMatrix. By default a
	// matrix with lint errors refuses to run: a mis-specified node config
	// should fail in milliseconds, not mid-run after expensive cycles.
	NoLint bool
	// Fabrics lists topology files (*.fab) to check alongside the matrix:
	// the run refuses to start while any fabric the configs are meant to
	// compose into fails the whole-topology rules (CRVE018–CRVE023), under
	// the same NoLint override as the per-config gate.
	Fabrics []string
	// Workers bounds the engine's worker pool — how many (config, test,
	// seed) units simulate concurrently. 0 means runtime.GOMAXPROCS(0);
	// 1 executes strictly serially. The merged output is byte-identical
	// at any width.
	Workers int
	// Cache, when non-nil, makes the run incremental: units whose inputs
	// hash to an existing entry are served from disk instead of
	// re-simulated, and fresh results are stored back.
	Cache *Cache
	// KernelStats collects the simulation-kernel profile of every simulated
	// unit (cache-served units keep whatever profile their stored record
	// has, possibly none). Aggregate with KernelReport.
	KernelStats bool
	// Kernel names the simulation backend every unit runs on: "levelized"
	// (default, also the empty string) or "compiled". Parsed with
	// sim.ParseKernel; the kernel is part of the cache key, so switching
	// backends never serves a stale profile.
	Kernel string
	// Lanes batches up to that many seeds of one (config, test) pair into a
	// single lane-parallel simulation (core.RunPairLanes), capped at
	// core.MaxLanes (64). 0 or 1 runs every unit scalar. Per-seed results,
	// cache entries and the merged report are byte-identical to a scalar
	// run; only the engine's work-unit shape changes. Lane batches probe the
	// cache per seed but skip the in-process flight dedupe (a batch holds
	// many keys at once), so two concurrent jobs may redundantly simulate
	// overlapping units — correct, just not deduped. Ignored under
	// LegacyAlignment, which has no lane path.
	Lanes int
	// RecordWave keeps the compact binary waveform recording of every
	// simulated unit (WriteReports stores them as .crw files). Off by
	// default: the streaming alignment path needs no retained waveforms.
	RecordWave bool
	// LegacyAlignment computes alignment through the legacy VCD round trip
	// (write both dumps, parse, Compare) instead of the streaming observer —
	// the ablation baseline.
	LegacyAlignment bool
}

// TestRun is one (test, seed) execution on both views.
type TestRun struct {
	Test string
	Seed int64
	Pair *core.PairResult
	// Cached reports whether the result was served from the incremental
	// cache rather than simulated (always false when the run had no cache).
	Cached bool
}

// ConfigResult aggregates a full suite run on one node configuration.
type ConfigResult struct {
	Cfg  nodespec.Config
	Runs []TestRun

	// SuiteCoverage merges the RTL functional coverage of every run into
	// the configuration-level report.
	SuiteCoverage *coverage.Group
	// CodeCov merges the RTL code coverage of every run.
	CodeCov *coverage.CodeMap
	// CoverageAllEqual reports whether every run's functional coverage
	// matched between the views.
	CoverageAllEqual bool
	// MinAlignment is the worst per-port alignment rate over all runs.
	MinAlignment float64
	// RTLFailures / BCAFailures count runs whose checks failed per view.
	RTLFailures, BCAFailures int
}

// SignedOff applies the paper's criteria to the whole configuration: at
// least one run executed, all checks pass on both views, coverage equal,
// every port ≥ 99 % aligned. The zero-run guard matters: an empty Runs
// slice leaves every aggregate at its vacuous optimum (no failures, equal
// coverage, 100 % alignment), and sign-off on evidence of nothing is
// exactly the hole a verification flow exists to close.
func (cr *ConfigResult) SignedOff() bool {
	if len(cr.Runs) == 0 {
		return false
	}
	if cr.RTLFailures > 0 || cr.BCAFailures > 0 || !cr.CoverageAllEqual {
		return false
	}
	return cr.MinAlignment >= 99.0
}

// SuiteTraffic returns the union traffic configuration whose coverage model
// is a superset of every test's, so per-test groups merge into one
// suite-level report. It is catg.UnionTraffic, re-exported because the whole
// regression layer (engine, cache, closure) keys its suite-level coverage
// model off this one definition.
func SuiteTraffic(cfg nodespec.Config) catg.TrafficConfig {
	return catg.UnionTraffic(cfg)
}

// newConfigResult builds the empty aggregate for one configuration: the
// suite-level coverage model, an empty code map, and the vacuous optima the
// per-run merges tighten.
func newConfigResult(cfg nodespec.Config) *ConfigResult {
	return &ConfigResult{
		Cfg:              cfg,
		SuiteCoverage:    catg.NewCoverageModel(cfg, SuiteTraffic(cfg)).Group,
		CodeCov:          coverage.NewCodeMap(),
		CoverageAllEqual: true,
		MinAlignment:     100,
	}
}

// add folds one run into the configuration aggregate. It mutates shared
// coverage structures, so the engine calls it only from the single merge
// goroutine, in canonical run order.
func (cr *ConfigResult) add(test string, seed int64, pair *core.PairResult, cached bool) error {
	cr.Runs = append(cr.Runs, TestRun{Test: test, Seed: seed, Pair: pair, Cached: cached})
	if !pair.RTL.Passed() {
		cr.RTLFailures++
	}
	if !pair.BCA.Passed() {
		cr.BCAFailures++
	}
	if !pair.CoverageEqual {
		cr.CoverageAllEqual = false
	}
	if r := pair.Alignment.MinRate(); r < cr.MinAlignment {
		cr.MinAlignment = r
	}
	if err := cr.SuiteCoverage.Merge(pair.RTL.Coverage); err != nil {
		return fmt.Errorf("regress: coverage merge: %w", err)
	}
	if pair.RTL.CodeCov != nil {
		cr.CodeCov.Merge(pair.RTL.CodeCov)
	}
	return nil
}

// RunConfig executes the full suite against one configuration, on both
// views, with every seed, and aggregates the reports. An empty test suite
// is an error: a configuration that runs nothing must not produce a result
// that could sign off. Parallelism and caching follow opt.Workers/opt.Cache.
func RunConfig(cfg nodespec.Config, opt Options) (*ConfigResult, error) {
	return RunConfigCtx(context.Background(), cfg, opt)
}

// RunConfigCtx is RunConfig under a cancellation context (see RunCtx).
func RunConfigCtx(ctx context.Context, cfg nodespec.Config, opt Options) (*ConfigResult, error) {
	results, _, err := runEngine(ctx, []nodespec.Config{cfg}, opt, false)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

func passStr(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// LintConfigs runs the static-analysis layer over a configuration set and
// the run's seed list, positioning diagnostics at the configuration names
// (file-based positions come from LoadSourceDir + lint.CheckSet directly).
func LintConfigs(cfgs []nodespec.Config, seeds []int64) *lint.Report {
	srcs := make([]lint.Source, len(cfgs))
	for i, cfg := range cfgs {
		srcs[i] = lint.MemSource(cfg)
	}
	return lint.CheckSet(srcs, seeds)
}

// Run executes the suite over every configuration on the parallel,
// incremental engine and returns the per-configuration aggregates plus the
// ran/cached statistics. Seeds default once, up front, so the lint gate and
// the engine always see the same seed list — they can never disagree about
// which runs execute. Unless opt.NoLint is set, the matrix is linted first
// and refuses to run on any Error-grade diagnostic — the whole point of the
// static layer is to catch a bad config before the first simulation cycle.
func Run(cfgs []nodespec.Config, opt Options) ([]*ConfigResult, Stats, error) {
	return RunCtx(context.Background(), cfgs, opt)
}

// RunCtx is Run under a cancellation context: cancelling ctx stops the
// engine promptly mid-matrix (units already completed stay merged and, with
// a cache, stored; unstarted units never run) and returns ctx's error. This
// is the entry point of the served tier — one job, one context.
func RunCtx(ctx context.Context, cfgs []nodespec.Config, opt Options) ([]*ConfigResult, Stats, error) {
	if len(opt.Seeds) == 0 {
		opt.Seeds = []int64{1}
	}
	if !opt.NoLint {
		rep := LintConfigs(cfgs, opt.Seeds)
		if rep.HasErrors() {
			var sb strings.Builder
			rep.Text(&sb)
			return nil, Stats{}, fmt.Errorf("regress: matrix failed lint (set NoLint to override):\n%s", sb.String())
		}
		for _, path := range opt.Fabrics {
			frep, err := CheckFabric(path)
			if err != nil {
				return nil, Stats{}, fmt.Errorf("regress: fabric %s: %w", path, err)
			}
			if frep.HasErrors() {
				var sb strings.Builder
				frep.Text(&sb)
				return nil, Stats{}, fmt.Errorf("regress: fabric %s failed lint (set NoLint to override):\n%s", path, sb.String())
			}
			rep.Diags = append(rep.Diags, frep.Diags...)
		}
		if opt.Log != nil {
			for _, d := range rep.Diags {
				fmt.Fprintf(opt.Log, "lint: %s\n", d)
			}
		}
	}
	return runEngine(ctx, cfgs, opt, true)
}

// RunMatrix is Run without the statistics, kept for callers that only need
// the results.
func RunMatrix(cfgs []nodespec.Config, opt Options) ([]*ConfigResult, error) {
	results, _, err := Run(cfgs, opt)
	return results, err
}

// KernelReport renders the merged simulation-kernel profile of a matrix
// run, one section per (configuration, view): deltas/cycle, settle-depth
// histogram, cyclic-SCC inventory and the hottest processes. Runs without a
// profile (cache-served records stored before kernel stats existed, or runs
// without Options.KernelStats) are skipped; an empty report says so.
func KernelReport(results []*ConfigResult) string {
	var sb strings.Builder
	any := false
	for _, cr := range results {
		for view := 0; view < 2; view++ {
			var merged *sim.KernelStats
			name := "RTL"
			n := 0
			for _, run := range cr.Runs {
				r := run.Pair.RTL
				if view == 1 {
					r, name = run.Pair.BCA, "BCA"
				}
				if r.Kernel == nil {
					continue
				}
				if merged == nil {
					merged = &sim.KernelStats{}
				}
				merged.Merge(r.Kernel)
				n++
			}
			if merged == nil {
				continue
			}
			any = true
			fmt.Fprintf(&sb, "%s %s (%d runs)\n", cr.Cfg.Name, name, n)
			merged.Text(&sb, 5)
		}
	}
	if !any {
		return "no kernel profiles recorded (enable Options.KernelStats on a cold cache)\n"
	}
	return sb.String()
}

// MatrixReport renders the configuration-level summary table (the paper's
// §5 claim row by row: checkers, coverage, alignment, sign-off).
func MatrixReport(results []*ConfigResult) string {
	var sb strings.Builder
	sb.WriteString("config  ports type arch    reqarb        pipe  runs  rtl  bca  covEq  funcCov  lineCov  minAlign  signoff\n")
	for _, cr := range results {
		lineCov := cr.CodeCov.Percent(coverage.LinePoint)
		fmt.Fprintf(&sb, "%-7s %dx%d   %v   %-7v %-13v %2d   %4d %4d %4d  %-5v  %6.1f%%  %6.1f%%  %7.2f%%  %s\n",
			cr.Cfg.Name, cr.Cfg.NumInit, cr.Cfg.NumTgt, cr.Cfg.Port.Type, cr.Cfg.Arch,
			cr.Cfg.ReqArb, cr.Cfg.PipeSize, len(cr.Runs),
			cr.RTLFailures, cr.BCAFailures, cr.CoverageAllEqual,
			cr.SuiteCoverage.Percent(), lineCov, cr.MinAlignment, passStr(cr.SignedOff()))
	}
	return sb.String()
}
