package regress

import (
	"os"
	"path/filepath"
	"strings"

	"crve/internal/fabric"
	"crve/internal/lint"
)

// loadConfigSource is the fabric.ConfigLoader backed by the standard
// parameter-file parser: node directives in a topology file reference the
// same *.cfg format the regression matrix loads. Unnamed configs take their
// file basename, exactly as LoadSourceDir does.
func loadConfigSource(path string) (lint.Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return lint.Source{}, err
	}
	defer f.Close()
	src := ParseSource(path, f)
	if src.Cfg.Name == "node" {
		src.Cfg.Name = strings.TrimSuffix(filepath.Base(path), ".cfg")
	}
	return src, nil
}

// LoadFabric elaborates the topology file at path, resolving node configs
// through the regress parameter-file loader.
func LoadFabric(path string) (*fabric.Topology, error) {
	return fabric.LoadFile(path, loadConfigSource)
}

// CheckFabric elaborates and checks one topology file: the whole-fabric
// rules (CRVE018–CRVE023) plus the per-config lint of every referenced
// configuration. Only I/O failures on the topology file itself are errors.
func CheckFabric(path string) (*lint.Report, error) {
	return fabric.CheckFile(path, loadConfigSource)
}
