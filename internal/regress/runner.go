package regress

// This file is the incremental, parallel regression engine. Every
// (configuration, test, seed) triple of a matrix run is an independent work
// unit — core.RunPair builds a fresh simulator per view and shares nothing —
// so the engine fans units out across a bounded worker pool and funnels
// every outcome through one merge goroutine that applies them in canonical
// (config, test, seed) order. All shared state — coverage merges, aggregate
// counters, the progress log, cached/ran statistics — is touched only on
// that goroutine, which makes the run race-free by construction and its
// output byte-identical to a serial run regardless of scheduling.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/sim"
)

// Stats counts how the engine satisfied a run's work units. The engine is
// the one place throughput is computed: everything downstream — the CLI
// summary, the service dashboard, CI — reads these fields instead of
// re-deriving cycles/s ad hoc.
type Stats struct {
	// Ran counts units that were actually simulated; Cached counts units
	// served from the incremental result cache.
	Ran, Cached int
	// Cycles totals the simulated cycles of ran units across both views.
	// Cached units contribute nothing: they cost no simulation.
	Cycles uint64
	// Duration is the wall-clock time of the engine run. It is the only
	// non-deterministic field, so the canonical report (BuildReport) and
	// String() exclude it — byte-identical output stays byte-identical.
	Duration time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("%d ran, %d cached", s.Ran, s.Cached)
}

// Throughput returns the run's simulation rate in cycles per second (0 when
// nothing was simulated or no time elapsed).
func (s Stats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Cycles) / s.Duration.Seconds()
}

// Progress is one merged-work-unit notification, delivered to
// Options.Progress from the merge goroutine in canonical order — the
// injected sink a job manager counts on instead of parsing the log.
type Progress struct {
	// Done counts units merged so far; Total is the planned unit count.
	Done, Total int
	// Ran / Cached split Done by how the unit was satisfied; Cycles totals
	// simulated cycles so far (both views, ran units only).
	Ran, Cached int
	Cycles      uint64
	// Config, Test, Seed identify the unit just merged; FromCache reports
	// whether it was served from the result cache.
	Config    string
	Test      string
	Seed      int64
	FromCache bool
}

// workUnit is one (configuration, test, seed) triple. idx is its position
// in canonical order — the merge sequence and the tiebreaker that keeps
// parallel output deterministic.
type workUnit struct {
	idx    int
	cfgIdx int
	cfg    nodespec.Config
	test   core.Test
	seed   int64
}

// unitOutcome is what a worker hands the merge goroutine.
type unitOutcome struct {
	idx    int
	pair   *core.PairResult
	cached bool
	err    error
}

// runEngine plans, executes and merges a matrix run. Callers have already
// defaulted opt.Seeds; the lint gate (if any) runs before this point.
// logHeaders controls the per-configuration banner line (RunMatrix prints
// it, RunConfig historically does not).
//
// Cancelling ctx stops the run promptly: the producer stops feeding units,
// in-flight units abort at their next cancellation check, and the engine
// returns ctx's error after draining. Units that completed before the cancel
// are already merged and (with a cache) stored; aborted units leave no cache
// entry — a cancelled matrix leaves the store consistent, never torn.
func runEngine(ctx context.Context, cfgs []nodespec.Config, opt Options, logHeaders bool) ([]*ConfigResult, Stats, error) {
	start := time.Now()
	if len(opt.Tests) == 0 {
		return nil, Stats{}, fmt.Errorf("regress: empty test suite: Options.Tests must name at least one test (a zero-run configuration can never sign off)")
	}
	if _, err := sim.ParseKernel(opt.Kernel); err != nil {
		return nil, Stats{}, err
	}
	seeds := opt.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}

	results := make([]*ConfigResult, len(cfgs))
	units := make([]workUnit, 0, len(cfgs)*len(opt.Tests)*len(seeds))
	for ci := range cfgs {
		cfg := cfgs[ci].WithDefaults()
		results[ci] = newConfigResult(cfg)
		for _, test := range opt.Tests {
			for _, seed := range seeds {
				units = append(units, workUnit{idx: len(units), cfgIdx: ci, cfg: cfg, test: test, seed: seed})
			}
		}
	}

	// A work batch is a run of canonically consecutive units sharing one
	// (config, test) pair — the unit of dispatch. Scalar runs use batches of
	// one; lane mode packs up to Options.Lanes seeds per batch and simulates
	// the whole batch in one lane-parallel simulator.
	laneW := opt.Lanes
	if laneW > core.MaxLanes {
		laneW = core.MaxLanes
	}
	if laneW < 1 || opt.LegacyAlignment {
		laneW = 1 // no lane path under the legacy VCD round trip
	}
	var batches [][]workUnit
	for start := 0; start < len(units); {
		end := start + 1
		for end-start < laneW && end < len(units) &&
			units[end].cfgIdx == units[start].cfgIdx && units[end].test.Name == units[start].test.Name {
			end++
		}
		batches = append(batches, units[start:end])
		start = end
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batches) {
		workers = len(batches)
	}

	work := make(chan []workUnit)
	outcomes := make(chan unitOutcome)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	// Producer: feeds batches in canonical order, quits early on abort or
	// cancellation.
	go func() {
		defer close(work)
		for _, b := range batches {
			select {
			case work <- b:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: simulate (or fetch) batches, touching nothing shared.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				if len(b) == 1 {
					outcomes <- runUnit(ctx, b[0], opt)
					continue
				}
				for _, o := range runLaneBatch(ctx, b, opt) {
					outcomes <- o
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Merge loop — the single goroutine where outcomes meet shared state.
	// Outcomes arrive in completion order; a reorder buffer applies them in
	// canonical order, so logs, aggregates and the eventual MatrixReport
	// never depend on scheduling. On the first (canonical-order) error the
	// engine stops feeding work and drains the in-flight units.
	var (
		stats    Stats
		firstErr error
		pending  = make(map[int]unitOutcome)
		next     = 0
		lastCfg  = -1
	)
	for o := range outcomes {
		pending[o.idx] = o
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr != nil {
				continue // draining after an error
			}
			if cur.err != nil {
				firstErr = cur.err
				abort()
				continue
			}
			u := units[cur.idx]
			if logHeaders && opt.Log != nil && u.cfgIdx != lastCfg {
				fmt.Fprintf(opt.Log, "%s (%v)\n", u.cfg.Name, u.cfg)
				lastCfg = u.cfgIdx
			}
			if err := results[u.cfgIdx].add(u.test.Name, u.seed, cur.pair, cur.cached); err != nil {
				firstErr = err
				abort()
				continue
			}
			if cur.cached {
				stats.Cached++
			} else {
				stats.Ran++
				stats.Cycles += cur.pair.RTL.Cycles + cur.pair.BCA.Cycles
			}
			if opt.Progress != nil {
				opt.Progress(Progress{
					Done: stats.Ran + stats.Cached, Total: len(units),
					Ran: stats.Ran, Cached: stats.Cached, Cycles: stats.Cycles,
					Config: u.cfg.Name, Test: u.test.Name, Seed: u.seed,
					FromCache: cur.cached,
				})
			}
			if opt.Log != nil {
				suffix := ""
				if cur.cached {
					suffix = "  (cached)"
				}
				fmt.Fprintf(opt.Log, "  %s seed=%d  align=%.2f%% covEq=%v rtl=%s bca=%s%s\n",
					u.test.Name, u.seed, cur.pair.Alignment.MinRate(), cur.pair.CoverageEqual,
					passStr(cur.pair.RTL.Passed()), passStr(cur.pair.BCA.Passed()), suffix)
			}
		}
	}
	stats.Duration = time.Since(start)
	if firstErr == nil {
		// The producer may have quit on cancellation with every in-flight
		// unit still completing cleanly; the run is nonetheless incomplete.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return results, stats, nil
}

// runUnit executes one work unit: cache/flight probe, simulation on a miss,
// cache fill. Runs on a worker goroutine; everything it touches is
// unit-local. With a cache, the acquire/release flight protocol guarantees
// at most one goroutine in the process ever simulates a given key, across
// every engine run sharing the Cache.
func runUnit(ctx context.Context, u workUnit, opt Options) unitOutcome {
	var key string
	if opt.Cache != nil {
		key = opt.Cache.Key(u.cfg, u.test.Name, u.seed, opt.Bugs, opt.Kernel)
		rec, release, err := opt.Cache.acquire(ctx, key)
		if err != nil {
			return unitOutcome{idx: u.idx, err: fmt.Errorf("regress: %s/%s seed %d: %w", u.cfg.Name, u.test.Name, u.seed, err)}
		}
		if rec != nil {
			return unitOutcome{idx: u.idx, pair: rec.Result(u.cfg), cached: true}
		}
		defer release()
	}
	if err := ctx.Err(); err != nil {
		return unitOutcome{idx: u.idx, err: fmt.Errorf("regress: %s/%s seed %d: %w", u.cfg.Name, u.test.Name, u.seed, err)}
	}
	kernel, _ := sim.ParseKernel(opt.Kernel) // validated at engine start
	pair, err := core.RunPairCtx(ctx, u.cfg, u.test, u.seed, core.RunOptions{
		Bugs: opt.Bugs, KernelStats: opt.KernelStats, Kernel: kernel,
		RecordWave: opt.RecordWave, LegacyAlignment: opt.LegacyAlignment,
	})
	if err != nil {
		return unitOutcome{idx: u.idx, err: fmt.Errorf("regress: %s/%s seed %d: %w", u.cfg.Name, u.test.Name, u.seed, err)}
	}
	if opt.Cache != nil {
		if err := opt.Cache.Store(key, u.cfg, u.test.Name, u.seed, pair.Record()); err != nil {
			return unitOutcome{idx: u.idx, err: fmt.Errorf("regress: %s/%s seed %d: %w", u.cfg.Name, u.test.Name, u.seed, err)}
		}
	}
	return unitOutcome{idx: u.idx, pair: pair}
}

// runLaneBatch executes one lane batch — up to core.MaxLanes seeds of the
// same (config, test) pair — and returns one outcome per unit. Each seed
// keeps its own scalar cache key: cached seeds are served from disk and only
// the misses enter the lane-parallel simulator, so a batch's entries are
// interchangeable with a scalar run's. The in-process flight group is not
// taken (a batch would have to hold many keys at once); concurrent engines
// may duplicate work on overlapping keys but the atomic Store keeps every
// entry consistent.
func runLaneBatch(ctx context.Context, batch []workUnit, opt Options) []unitOutcome {
	out := make([]unitOutcome, 0, len(batch))
	unitErr := func(u workUnit, err error) unitOutcome {
		return unitOutcome{idx: u.idx, err: fmt.Errorf("regress: %s/%s seed %d: %w", u.cfg.Name, u.test.Name, u.seed, err)}
	}
	missing := batch
	var keys []string
	if opt.Cache != nil {
		missing = nil
		for _, u := range batch {
			key := opt.Cache.Key(u.cfg, u.test.Name, u.seed, opt.Bugs, opt.Kernel)
			if rec, ok := opt.Cache.Load(key); ok {
				out = append(out, unitOutcome{idx: u.idx, pair: rec.Result(u.cfg), cached: true})
				continue
			}
			missing = append(missing, u)
			keys = append(keys, key)
		}
	}
	if len(missing) == 0 {
		return out
	}
	if err := ctx.Err(); err != nil {
		for _, u := range missing {
			out = append(out, unitErr(u, err))
		}
		return out
	}
	kernel, _ := sim.ParseKernel(opt.Kernel) // validated at engine start
	seeds := make([]int64, len(missing))
	for i, u := range missing {
		seeds[i] = u.seed
	}
	prs, err := core.RunPairLanes(ctx, missing[0].cfg, missing[0].test, seeds, core.RunOptions{
		Bugs: opt.Bugs, KernelStats: opt.KernelStats, Kernel: kernel,
		RecordWave: opt.RecordWave,
	})
	if err != nil {
		for _, u := range missing {
			out = append(out, unitErr(u, err))
		}
		return out
	}
	for i, pr := range prs {
		u := missing[i]
		if opt.Cache != nil {
			if err := opt.Cache.Store(keys[i], u.cfg, u.test.Name, u.seed, pr.Record()); err != nil {
				out = append(out, unitErr(u, err))
				continue
			}
		}
		out = append(out, unitOutcome{idx: u.idx, pair: pr})
	}
	return out
}
