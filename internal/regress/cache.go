package regress

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"

	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
)

// cacheSchema names the on-disk entry layout. Bump it whenever the record
// format or the key derivation changes; stale entries then miss cleanly.
const cacheSchema = "crve-regress-cache-v3"

// CodeVersion identifies the simulation semantics baked into cached results:
// the cache schema plus, when the binary carries build metadata, the VCS
// revision (with a -dirty marker for modified trees). Two binaries built
// from different commits never share entries — a cached result is only as
// reusable as the code that produced it.
func CodeVersion() string {
	v := cacheSchema
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			v += "+" + rev
			if modified == "true" {
				v += "-dirty"
			}
		}
	}
	return v
}

// Cache is the content-addressed result store of the incremental regression
// engine. One entry holds the full serialized outcome of one
// (configuration, test, seed, bugs) work unit; the key is a canonical hash
// of exactly the inputs that determine that outcome, so re-running a matrix
// after editing one configuration re-simulates only that configuration's
// units and serves everything else from disk.
//
// Entries are independent JSON files, written atomically, so concurrent
// workers — or concurrent regress processes sharing a directory — never
// observe torn entries. Any unreadable, unparsable or version-mismatched
// entry degrades to a miss.
//
// Within one process the cache is also a flight group: when several engine
// runs share a Cache (the served, multi-tenant tier), the first goroutine to
// miss on a key becomes its owner and everyone else blocks until the entry
// lands, then loads it — two concurrent jobs submitting overlapping
// (config, test, seed) units never simulate the same unit twice. Separate
// processes sharing a directory stay correct (atomic entries) but may
// duplicate work; the flight group is per-process by design.
type Cache struct {
	dir     string
	version string

	mu     sync.Mutex
	flight map[string]chan struct{}
}

// OpenCache opens (creating if needed) a cache directory, keyed with the
// current CodeVersion.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("regress: cache: %w", err)
	}
	return &Cache{dir: dir, version: CodeVersion(), flight: make(map[string]chan struct{})}, nil
}

// Dir returns the backing directory.
func (c *Cache) Dir() string { return c.dir }

// Key derives the content hash of one work unit. The canonical serialized
// configuration (FormatConfig — the same text the .cfg corpus round-trips
// through, building on the lint.Source provenance of parameter files) keys
// the config by value, not by name: renaming a file moves nothing, editing
// any parameter invalidates exactly that configuration's entries. Tests are
// keyed by registry name and bug sets by their canonical rendering; the
// code version covers everything else (test definitions included). The
// kernel backend is part of the key: a stored record carries that backend's
// kernel profile, and equivalence runs must never serve one backend's
// profile as another's.
func (c *Cache) Key(cfg nodespec.Config, testName string, seed int64, bugs bca.Bugs, kernel string) string {
	if kernel == "" {
		kernel = "levelized"
	}
	h := sha256.New()
	for _, part := range []string{
		c.version,
		FormatConfig(cfg),
		testName,
		fmt.Sprintf("%d", seed),
		fmt.Sprintf("%+v", bugs),
		kernel,
	} {
		io.WriteString(h, part)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the on-disk envelope: the version gate plus enough plain
// text (config, test, seed) to make entries greppable when debugging.
type cacheEntry struct {
	Version string           `json:"version"`
	Config  string           `json:"config"`
	Test    string           `json:"test"`
	Seed    int64            `json:"seed"`
	Pair    *core.PairRecord `json:"pair"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load fetches the entry for key, reporting whether a valid one exists.
func (c *Cache) Load(key string) (*core.PairRecord, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, false
	}
	if ent.Version != c.version || ent.Pair == nil || ent.Pair.RTL == nil || ent.Pair.BCA == nil {
		return nil, false
	}
	return ent.Pair, true
}

// acquire resolves a work unit against the cache and the in-process flight
// group. It returns exactly one of:
//
//   - (rec, nil, nil): a valid entry exists — the unit is served from disk;
//   - (nil, release, nil): the caller is now the flight owner for key and
//     must simulate the unit, then call release exactly once (after Store on
//     success, or bare on failure so waiters can take over);
//   - (nil, nil, err): ctx was cancelled while waiting on another owner.
//
// While an owner is in flight every other acquire of the same key blocks,
// then re-probes — the dedupe that makes a second identical job simulate
// zero units even when submitted concurrently with the first.
func (c *Cache) acquire(ctx context.Context, key string) (*core.PairRecord, func(), error) {
	for {
		if rec, ok := c.Load(key); ok {
			return rec, nil, nil
		}
		c.mu.Lock()
		ch, inFlight := c.flight[key]
		if !inFlight {
			c.flight[key] = make(chan struct{})
			c.mu.Unlock()
			// The previous owner may have stored and released between our
			// Load miss and taking the lock; re-probe before simulating.
			if rec, ok := c.Load(key); ok {
				c.release(key)
				return rec, nil, nil
			}
			return nil, func() { c.release(key) }, nil
		}
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// release ends the caller's flight ownership of key, waking every waiter.
func (c *Cache) release(key string) {
	c.mu.Lock()
	if ch, ok := c.flight[key]; ok {
		delete(c.flight, key)
		close(ch)
	}
	c.mu.Unlock()
}

// Store persists the entry for key atomically (temp file + rename).
func (c *Cache) Store(key string, cfg nodespec.Config, testName string, seed int64, rec *core.PairRecord) error {
	data, err := json.Marshal(cacheEntry{
		Version: c.version,
		Config:  FormatConfig(cfg),
		Test:    testName,
		Seed:    seed,
		Pair:    rec,
	})
	if err != nil {
		return fmt.Errorf("regress: cache store: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("regress: cache store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("regress: cache store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("regress: cache store: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("regress: cache store: %w", err)
	}
	return nil
}
