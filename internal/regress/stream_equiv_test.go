package regress

import (
	"bytes"
	"encoding/json"
	"testing"

	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/testcases"
)

// TestStreamingAlignmentEquivalence is the safety net under the streaming
// STBA rework: for every configuration of the standard matrix, with and
// without an injected BCA bug, the online observer must produce an alignment
// report byte-identical (as JSON and as the rendered table) to the legacy
// write-two-VCDs/parse/Compare round trip — and the cache record of the pair
// must be unchanged, so warm caches stay coherent across the switch. The
// streaming path must also be what it claims: no VCD text buffer may exist
// on either run.
func TestStreamingAlignmentEquivalence(t *testing.T) {
	cfgs := StandardMatrix()
	if testing.Short() {
		cfgs = cfgs[:6]
	}
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7

	for _, bugs := range []bca.Bugs{{}, {LRUInit: true}} {
		bugs := bugs
		label := "clean"
		if bugs != (bca.Bugs{}) {
			label = "lru_bug"
		}
		for _, cfg := range cfgs {
			cfg := cfg
			t.Run(cfg.Name+"/"+label, func(t *testing.T) {
				str, err := core.RunPairOpt(cfg, tc, seed, core.RunOptions{Bugs: bugs})
				if err != nil {
					t.Fatal(err)
				}
				leg, err := core.RunPairOpt(cfg, tc, seed, core.RunOptions{Bugs: bugs, LegacyAlignment: true})
				if err != nil {
					t.Fatal(err)
				}

				if str.RTL.VCD != nil || str.BCA.VCD != nil {
					t.Error("streaming path must not build VCD text buffers")
				}
				if str.RTL.Wave != nil || str.BCA.Wave != nil {
					t.Error("streaming path must not retain recordings unless asked")
				}

				sj, err := json.Marshal(str.Alignment)
				if err != nil {
					t.Fatal(err)
				}
				lj, err := json.Marshal(leg.Alignment)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sj, lj) {
					t.Errorf("alignment reports differ:\nstream: %s\nlegacy: %s", sj, lj)
				}
				if str.Alignment.String() != leg.Alignment.String() {
					t.Errorf("rendered alignment tables differ:\n--- stream ---\n%s--- legacy ---\n%s",
						str.Alignment, leg.Alignment)
				}
				if str.SignedOff() != leg.SignedOff() {
					t.Errorf("sign-off verdicts differ: stream %v, legacy %v", str.SignedOff(), leg.SignedOff())
				}

				// The cache unit is the serialized PairRecord; it must be
				// byte-identical so existing caches and the new path agree.
				sr, err := json.Marshal(str.Record())
				if err != nil {
					t.Fatal(err)
				}
				lr, err := json.Marshal(leg.Record())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sr, lr) {
					t.Errorf("pair records differ:\nstream: %s\nlegacy: %s", sr, lr)
				}
			})
		}
	}
}

// TestStreamingEngineDeterminism re-asserts the engine's byte-identical-at-
// any-width property on the streaming path, and that the streaming and
// legacy pipelines produce the same logs and matrix report end to end.
func TestStreamingEngineDeterminism(t *testing.T) {
	cfgs := StandardMatrix()[:3]
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int, legacy bool) (string, string) {
		var log bytes.Buffer
		opt := Options{
			Tests: []core.Test{tc}, Seeds: []int64{1, 2},
			Workers: workers, Log: &log, NoLint: true, LegacyAlignment: legacy,
		}
		results, _, err := Run(cfgs, opt)
		if err != nil {
			t.Fatal(err)
		}
		return log.String(), MatrixReport(results)
	}

	serialLog, serialRep := run(1, false)
	parallelLog, parallelRep := run(8, false)
	if serialLog != parallelLog {
		t.Errorf("streaming logs differ between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s", serialLog, parallelLog)
	}
	if serialRep != parallelRep {
		t.Errorf("streaming matrix reports differ between -j1 and -j8")
	}
	legacyLog, legacyRep := run(8, true)
	if legacyLog != serialLog {
		t.Errorf("legacy and streaming logs differ:\n--- legacy ---\n%s--- stream ---\n%s", legacyLog, serialLog)
	}
	if legacyRep != serialRep {
		t.Errorf("legacy and streaming matrix reports differ:\n--- legacy ---\n%s--- stream ---\n%s", legacyRep, serialRep)
	}
}
