package regress

import (
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestFormatConfigFixpoint is the confidence prerequisite for crvelint -fix:
// rewriting a configuration through the FormatConfig round trip must be a
// fixpoint — parse(format(parse(x))) == parse(x), and a second format pass
// changes zero bytes — for every parseable configuration shipped in the
// repository, good and bad alike (configs/, configs/closure/, configs/bad/
// and its fabric helpers). Files that do not parse are skipped: -fix never
// rewrites those.
func TestFormatConfigFixpoint(t *testing.T) {
	root := filepath.Join("..", "..", "configs")
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".cfg") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 40 {
		t.Fatalf("only %d corpus files found under %s", len(files), root)
	}
	parsed := 0
	for _, path := range files {
		rel, _ := filepath.Rel(root, path)
		t.Run(filepath.ToSlash(rel), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			cfg, _, lineErrs := parseLines(f)
			if len(lineErrs) > 0 {
				t.Skipf("does not parse (%d line errors): -fix never rewrites it", len(lineErrs))
			}
			parsed++
			cfg = cfg.WithDefaults()
			text := FormatConfig(cfg)
			back, _, backErrs := parseLines(strings.NewReader(text))
			if len(backErrs) > 0 {
				t.Fatalf("formatted config does not re-parse: %v\n%s", backErrs, text)
			}
			if got := back.WithDefaults(); !reflect.DeepEqual(got, cfg) {
				t.Errorf("round trip changed the config:\n got %+v\nwant %+v", got, cfg)
			}
			if again := FormatConfig(back.WithDefaults()); again != text {
				t.Errorf("format is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
			}
		})
	}
	if parsed < 36 {
		t.Errorf("only %d corpus files parsed: the fixpoint property barely exercised", parsed)
	}
}
