package regress

import (
	"bytes"
	"encoding/json"
	"testing"

	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/sim"
	"crve/internal/testcases"
)

// TestLevelizedKernelEquivalence is the determinism property every kernel
// backend must uphold across the whole standard matrix: for every
// configuration, running the same (test, seed) pair with the levelized
// scheduler, with the legacy delta loop and with the compiled bytecode
// backend produces byte-identical VCD dumps, functional-coverage groups and
// alignment reports on both views. The paper's alignment methodology leans
// entirely on "same tests, same seeds, same waveforms"; a backend that
// changed waveforms would silently invalidate every signed-off result.
func TestLevelizedKernelEquivalence(t *testing.T) {
	cfgs := StandardMatrix()
	if testing.Short() {
		cfgs = cfgs[:6]
	}
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7

	// ForceDeltaLoop is a package-level elaboration toggle, so the legacy
	// runs execute serially with the global set and restored around them.
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			// Text VCD is now an opt-in artifact; the byte-equality check here
			// still wants the dumps, so request them explicitly.
			opt := core.RunOptions{DumpVCD: true}
			lvl, err := core.RunPairOpt(cfg, tc, seed, opt)
			if err != nil {
				t.Fatal(err)
			}
			sim.ForceDeltaLoop = true
			leg, err := core.RunPairOpt(cfg, tc, seed, opt)
			sim.ForceDeltaLoop = false
			if err != nil {
				t.Fatal(err)
			}
			compOpt := opt
			compOpt.Kernel = sim.KernelCompiled
			compOpt.KernelStats = true
			cmp1, err := core.RunPairOpt(cfg, tc, seed, compOpt)
			if err != nil {
				t.Fatal(err)
			}
			if cmp1.RTL.Kernel == nil || !cmp1.RTL.Kernel.Compiled || cmp1.RTL.Kernel.FusedProcs == 0 {
				t.Errorf("compiled RTL run fused no processes: %+v", cmp1.RTL.Kernel)
			}

			for _, alt := range []struct {
				kernel string
				pair   *core.PairResult
			}{{"legacy", leg}, {"compiled", cmp1}} {
				if !bytes.Equal(lvl.RTL.VCD, alt.pair.RTL.VCD) {
					t.Errorf("RTL VCD dumps differ between levelized and %s kernels", alt.kernel)
				}
				if !bytes.Equal(lvl.BCA.VCD, alt.pair.BCA.VCD) {
					t.Errorf("BCA VCD dumps differ between levelized and %s kernels", alt.kernel)
				}
				for _, cmp := range []struct {
					name string
					a, b interface{}
				}{
					{"RTL coverage", lvl.RTL.Coverage, alt.pair.RTL.Coverage},
					{"BCA coverage", lvl.BCA.Coverage, alt.pair.BCA.Coverage},
					{"RTL code coverage", lvl.RTL.CodeCov, alt.pair.RTL.CodeCov},
					{"alignment report", lvl.Alignment, alt.pair.Alignment},
				} {
					aj, err := json.Marshal(cmp.a)
					if err != nil {
						t.Fatal(err)
					}
					bj, err := json.Marshal(cmp.b)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(aj, bj) {
						t.Errorf("%s differs between levelized and %s kernels", cmp.name, alt.kernel)
					}
				}
			}
		})
	}
}

// TestCompiledKernelEquivalenceBugged repeats the compiled-vs-levelized
// comparison with a seeded BCA bug: the backends must also agree on the
// misaligned waveforms a bug produces, or the bug-detection experiment would
// depend on which kernel ran it.
func TestCompiledKernelEquivalenceBugged(t *testing.T) {
	cfg := StandardMatrix()[0]
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.RunOptions{DumpVCD: true, Bugs: bca.Bugs{LRUInit: true, PipeOffByOne: true}}
	lvl, err := core.RunPairOpt(cfg, tc, 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Kernel = sim.KernelCompiled
	comp, err := core.RunPairOpt(cfg, tc, 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lvl.RTL.VCD, comp.RTL.VCD) || !bytes.Equal(lvl.BCA.VCD, comp.BCA.VCD) {
		t.Error("bugged VCD dumps differ between levelized and compiled kernels")
	}
	aj, _ := json.Marshal(lvl.Alignment)
	bj, _ := json.Marshal(comp.Alignment)
	if !bytes.Equal(aj, bj) {
		t.Error("bugged alignment reports differ between levelized and compiled kernels")
	}
}
