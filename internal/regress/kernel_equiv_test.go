package regress

import (
	"bytes"
	"encoding/json"
	"testing"

	"crve/internal/core"
	"crve/internal/sim"
	"crve/internal/testcases"
)

// TestLevelizedKernelEquivalence is the determinism property the levelized
// scheduler must uphold across the whole standard matrix: for every
// configuration, running the same (test, seed) pair with the levelized
// scheduler and with the legacy delta loop produces byte-identical VCD dumps,
// functional-coverage groups and alignment reports on both views. The
// paper's alignment methodology leans entirely on "same tests, same seeds,
// same waveforms"; a scheduler that changed waveforms would silently
// invalidate every signed-off result.
func TestLevelizedKernelEquivalence(t *testing.T) {
	cfgs := StandardMatrix()
	if testing.Short() {
		cfgs = cfgs[:6]
	}
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7

	// ForceDeltaLoop is a package-level elaboration toggle, so the legacy
	// runs execute serially with the global set and restored around them.
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			// Text VCD is now an opt-in artifact; the byte-equality check here
			// still wants the dumps, so request them explicitly.
			opt := core.RunOptions{DumpVCD: true}
			lvl, err := core.RunPairOpt(cfg, tc, seed, opt)
			if err != nil {
				t.Fatal(err)
			}
			sim.ForceDeltaLoop = true
			leg, err := core.RunPairOpt(cfg, tc, seed, opt)
			sim.ForceDeltaLoop = false
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(lvl.RTL.VCD, leg.RTL.VCD) {
				t.Error("RTL VCD dumps differ between levelized and legacy kernels")
			}
			if !bytes.Equal(lvl.BCA.VCD, leg.BCA.VCD) {
				t.Error("BCA VCD dumps differ between levelized and legacy kernels")
			}
			for _, cmp := range []struct {
				name string
				a, b interface{}
			}{
				{"RTL coverage", lvl.RTL.Coverage, leg.RTL.Coverage},
				{"BCA coverage", lvl.BCA.Coverage, leg.BCA.Coverage},
				{"RTL code coverage", lvl.RTL.CodeCov, leg.RTL.CodeCov},
				{"alignment report", lvl.Alignment, leg.Alignment},
			} {
				aj, err := json.Marshal(cmp.a)
				if err != nil {
					t.Fatal(err)
				}
				bj, err := json.Marshal(cmp.b)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(aj, bj) {
					t.Errorf("%s differs between levelized and legacy kernels", cmp.name)
				}
			}
		})
	}
}
