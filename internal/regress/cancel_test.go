package regress

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"crve/internal/nodespec"
)

// TestRunCtxCancelMidMatrix is the service tier's cancellation contract:
// cancelling the context mid-matrix stops the engine promptly (well short of
// the full unit count), surfaces context.Canceled, leaves every stored cache
// entry whole, and lets a follow-up run finish the remainder incrementally.
func TestRunCtxCancelMidMatrix(t *testing.T) {
	cache := testCache(t, "cancel")
	var cfgs []nodespec.Config
	for _, name := range []string{"cx0", "cx1", "cx2", "cx3"} {
		cfgs = append(cfgs, engineCfg(t, name, 2))
	}
	suite := engineSuite(t, "basic_write_read", "error_paths", "random_mixed")
	units := len(cfgs) * len(suite) * 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events atomic.Int64
	opt := Options{
		Tests: suite, Seeds: []int64{1, 2}, Cache: cache, Workers: 2, NoLint: true,
		Progress: func(p Progress) {
			// Cancel as soon as the first unit merges.
			if events.Add(1) == 1 {
				cancel()
			}
		},
	}
	_, _, err := RunCtx(ctx, cfgs, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	merged := int(events.Load())
	if merged == 0 || merged >= units {
		t.Fatalf("cancelled run merged %d of %d units, want some but not all", merged, units)
	}

	// Every entry the cancelled run stored must be whole: the finishing run
	// serves them as cache hits and still signs everything off.
	results, stats, err := RunCtx(context.Background(), cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran+stats.Cached != units {
		t.Fatalf("finishing run covered %d units, want %d", stats.Ran+stats.Cached, units)
	}
	if stats.Cached == 0 {
		t.Error("finishing run reused nothing from the cancelled run")
	}
	for _, cr := range results {
		if !cr.SignedOff() {
			t.Errorf("%s: lost sign-off after a cancel/resume cycle", cr.Cfg.Name)
		}
	}
}

// TestRunCtxCancelBeforeStart: a context cancelled before the run starts
// simulates nothing at all.
func TestRunCtxCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	opt := Options{
		Tests: engineSuite(t, "basic_write_read"), Seeds: []int64{1}, NoLint: true,
		Progress: func(p Progress) { ran++ },
	}
	_, _, err := RunCtx(ctx, []nodespec.Config{engineCfg(t, "pre", 2)}, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d units merged on a pre-cancelled context, want 0", ran)
	}
}
