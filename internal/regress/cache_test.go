package regress

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"crve/internal/bca"
	"crve/internal/nodespec"
)

// testCache builds a cache with a pinned version so tests control
// invalidation explicitly.
func testCache(t *testing.T, version string) *Cache {
	t.Helper()
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.version = version
	return c
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := testCache(t, "v1")
	cfg := StandardMatrix()[0]
	base := c.Key(cfg, "basic_write_read", 1, bca.Bugs{}, "")
	if base != c.Key(cfg, "basic_write_read", 1, bca.Bugs{}, "") {
		t.Error("key is not stable")
	}
	// The empty kernel means the default backend explicitly.
	if base != c.Key(cfg, "basic_write_read", 1, bca.Bugs{}, "levelized") {
		t.Error("empty kernel and levelized must share a key")
	}
	edited := cfg
	edited.PipeSize++
	c2 := testCache(t, "v2")
	distinct := map[string]string{
		"config":  c.Key(edited, "basic_write_read", 1, bca.Bugs{}, ""),
		"test":    c.Key(cfg, "error_paths", 1, bca.Bugs{}, ""),
		"seed":    c.Key(cfg, "basic_write_read", 2, bca.Bugs{}, ""),
		"bugs":    c.Key(cfg, "basic_write_read", 1, bca.Bugs{LRUInit: true}, ""),
		"kernel":  c.Key(cfg, "basic_write_read", 1, bca.Bugs{}, "compiled"),
		"version": c2.Key(cfg, "basic_write_read", 1, bca.Bugs{}, ""),
	}
	for dim, key := range distinct {
		if key == base {
			t.Errorf("changing the %s must change the key", dim)
		}
	}
	// Renaming alone must also invalidate: the name is part of the
	// canonical config text and of every report.
	renamed := cfg
	renamed.Name = "elsewhere"
	if c.Key(renamed, "basic_write_read", 1, bca.Bugs{}, "") == base {
		t.Error("renaming the config must change the key")
	}
}

func TestCacheCorruptAndVersionMismatchAreMisses(t *testing.T) {
	c := testCache(t, "v1")
	cfg := StandardMatrix()[0]
	key := c.Key(cfg, "t", 1, bca.Bugs{}, "")
	if _, ok := c.Load(key); ok {
		t.Fatal("empty cache must miss")
	}
	if err := os.WriteFile(c.path(key), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(key); ok {
		t.Error("corrupt entry must load as a miss")
	}
	if err := os.WriteFile(c.path(key), []byte(`{"version":"other","pair":{"rtl":{},"bca":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(key); ok {
		t.Error("version-mismatched entry must load as a miss")
	}
}

// TestRunIncremental is the cache's end-to-end contract: a warm re-run
// simulates nothing and reports the same bytes; editing one configuration
// re-simulates exactly that configuration's units.
func TestRunIncremental(t *testing.T) {
	cache := testCache(t, "pinned")
	cfgs := []nodespec.Config{
		engineCfg(t, "inc0", 4),
		engineCfg(t, "inc1", 2),
	}
	suite := engineSuite(t, "basic_write_read", "error_paths")
	opt := Options{Tests: suite, Seeds: []int64{1}, Cache: cache, Workers: 4}

	results1, stats1, err := Run(cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	units := len(cfgs) * len(suite)
	if stats1.Ran != units || stats1.Cached != 0 {
		t.Fatalf("cold run stats %v, want %d ran, 0 cached", stats1, units)
	}
	rep1 := MatrixReport(results1)

	var log bytes.Buffer
	opt.Log = &log
	results2, stats2, err := Run(cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Ran != 0 || stats2.Cached != units {
		t.Fatalf("warm run stats %v, want 0 ran, %d cached", stats2, units)
	}
	if rep2 := MatrixReport(results2); rep2 != rep1 {
		t.Errorf("cache-served report differs from simulated report:\n%s\nvs\n%s", rep1, rep2)
	}
	if !strings.Contains(log.String(), "(cached)") {
		t.Errorf("verbose log should mark cache-served runs:\n%s", log.String())
	}
	for _, cr := range results2 {
		if !cr.SignedOff() {
			t.Errorf("%s: cache-served aggregate lost sign-off", cr.Cfg.Name)
		}
	}

	// Edit one configuration: only its units re-simulate.
	opt.Log = nil
	edited := []nodespec.Config{cfgs[0], engineCfg(t, "inc1", 8)}
	_, stats3, err := Run(edited, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(suite); stats3.Ran != want || stats3.Cached != units-want {
		t.Fatalf("incremental stats %v, want %d ran, %d cached", stats3, want, units-want)
	}

	// A fresh cache sees changed code (version bump): everything re-runs.
	bumped := testCache(t, "pinned-2")
	bumped.dir = cache.dir
	opt.Cache = bumped
	_, stats4, err := Run(cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats4.Ran != units || stats4.Cached != 0 {
		t.Fatalf("version-bumped stats %v, want %d ran, 0 cached", stats4, units)
	}
}

func TestCodeVersionCarriesSchema(t *testing.T) {
	if !strings.HasPrefix(CodeVersion(), cacheSchema) {
		t.Errorf("CodeVersion %q must start with the schema tag", CodeVersion())
	}
}
