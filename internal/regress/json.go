package regress

// This file defines the canonical JSON encoding of a regression run — the
// one report shape both the CLI (cmd/regress -json) and the service
// (GET /api/v1/jobs/{id}/report) emit, byte for byte. Everything in it is
// deterministic: wall-clock duration lives in Stats (and the service's job
// status), never here, so the same matrix always serializes to the same
// bytes regardless of scheduling, parallelism or cache temperature — only
// the ran/cached split reflects the cache, as it must.

import (
	"encoding/json"
	"io"

	"crve/internal/coverage"
)

// ReportSchema names the canonical report layout. Bump it when the shape
// changes so consumers can gate on it.
const ReportSchema = "crve-regress-report-v1"

// RunReport is the canonical form of one (test, seed) pair run.
type RunReport struct {
	Test   string `json:"test"`
	Seed   int64  `json:"seed"`
	Cached bool   `json:"cached"`
	// Cycles sums both views' simulated cycles (cached units report their
	// recorded cost).
	Cycles        uint64  `json:"cycles"`
	Transactions  int     `json:"transactions"`
	RTLPass       bool    `json:"rtl_pass"`
	BCAPass       bool    `json:"bca_pass"`
	CoverageEqual bool    `json:"coverage_equal"`
	MinAlignment  float64 `json:"min_alignment"`
}

// ConfigReport is the canonical form of one configuration's suite aggregate.
type ConfigReport struct {
	Name string `json:"name"`
	// Params is the canonical parameter-file text (FormatConfig) — the
	// config by value, so a report is self-describing and diffable.
	Params         string      `json:"params"`
	Runs           []RunReport `json:"runs"`
	RTLFailures    int         `json:"rtl_failures"`
	BCAFailures    int         `json:"bca_failures"`
	CoverageEqual  bool        `json:"coverage_equal"`
	FuncCovPercent float64     `json:"func_cov_percent"`
	LineCovPercent float64     `json:"line_cov_percent"`
	MinAlignment   float64     `json:"min_alignment"`
	SignedOff      bool        `json:"signed_off"`
	// Holes lists the unhit functional-coverage bins, in declaration order.
	Holes []string `json:"holes,omitempty"`
}

// UnitTotals is the deterministic slice of Stats: how the run's work units
// were satisfied and what they cost in simulated cycles.
type UnitTotals struct {
	Ran    int    `json:"ran"`
	Cached int    `json:"cached"`
	Cycles uint64 `json:"cycles"`
}

// Report is the canonical JSON report of a whole matrix run.
type Report struct {
	Schema    string         `json:"schema"`
	Configs   []ConfigReport `json:"configs"`
	SignedOff int            `json:"signed_off"`
	Total     int            `json:"total"`
	Units     UnitTotals     `json:"units"`
}

// BuildReport assembles the canonical report from the engine's results and
// statistics.
func BuildReport(results []*ConfigResult, stats Stats) *Report {
	rep := &Report{
		Schema: ReportSchema,
		Total:  len(results),
		Units:  UnitTotals{Ran: stats.Ran, Cached: stats.Cached, Cycles: stats.Cycles},
	}
	for _, cr := range results {
		crep := ConfigReport{
			Name:           cr.Cfg.Name,
			Params:         FormatConfig(cr.Cfg),
			RTLFailures:    cr.RTLFailures,
			BCAFailures:    cr.BCAFailures,
			CoverageEqual:  cr.CoverageAllEqual,
			FuncCovPercent: cr.SuiteCoverage.Percent(),
			LineCovPercent: cr.CodeCov.Percent(coverage.LinePoint),
			MinAlignment:   cr.MinAlignment,
			SignedOff:      cr.SignedOff(),
		}
		for _, h := range cr.SuiteCoverage.Holes() {
			crep.Holes = append(crep.Holes, h.String())
		}
		for _, run := range cr.Runs {
			crep.Runs = append(crep.Runs, RunReport{
				Test:          run.Test,
				Seed:          run.Seed,
				Cached:        run.Cached,
				Cycles:        run.Pair.RTL.Cycles + run.Pair.BCA.Cycles,
				Transactions:  run.Pair.RTL.Transactions,
				RTLPass:       run.Pair.RTL.Passed(),
				BCAPass:       run.Pair.BCA.Passed(),
				CoverageEqual: run.Pair.CoverageEqual,
				MinAlignment:  run.Pair.Alignment.MinRate(),
			})
		}
		if crep.SignedOff {
			rep.SignedOff++
		}
		rep.Configs = append(rep.Configs, crep)
	}
	return rep
}

// WriteJSON writes v in the canonical encoding (two-space indent, trailing
// newline). Every JSON surface of the flow — CLI and HTTP — goes through
// this one function, which is what makes their outputs diffable.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
