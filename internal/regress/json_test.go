package regress

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"crve/internal/nodespec"
)

// encodeReport renders the canonical bytes the CLI (-json) and the service
// report endpoint both emit.
func encodeReport(t *testing.T, results []*ConfigResult, stats Stats) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, BuildReport(results, stats)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportBytesDeterministic is the byte-identity contract behind the
// service: the canonical JSON report must not depend on worker width, on
// whether units came from the cache, or on wall-clock time.
func TestReportBytesDeterministic(t *testing.T) {
	cfgs := []nodespec.Config{engineCfg(t, "js0", 4), engineCfg(t, "js1", 2)}
	suite := engineSuite(t, "basic_write_read", "error_paths")
	base := Options{Tests: suite, Seeds: []int64{1, 2}, NoLint: true}

	serialOpt := base
	serialOpt.Workers = 1
	serialRes, serialStats, err := Run(cfgs, serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	serial := encodeReport(t, serialRes, serialStats)

	parOpt := base
	parOpt.Workers = 8
	parRes, parStats, err := Run(cfgs, parOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeReport(t, parRes, parStats); !bytes.Equal(serial, got) {
		t.Errorf("report bytes differ between -j 1 and -j 8:\n%s\nvs\n%s", serial, got)
	}

	// Wall clock is the one non-deterministic stat; the report must exclude it.
	bumped := serialStats
	bumped.Duration += 5 * time.Hour
	if got := encodeReport(t, serialRes, bumped); !bytes.Equal(serial, got) {
		t.Error("report bytes depend on Stats.Duration")
	}

	// A cache-served re-run must also reproduce the same bytes.
	cache := testCache(t, "jsoncache")
	warmOpt := base
	warmOpt.Cache = cache
	if _, _, err := Run(cfgs, warmOpt); err != nil {
		t.Fatal(err)
	}
	warmRes, warmStats, err := Run(cfgs, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Cached == 0 {
		t.Fatal("warm run served nothing from cache")
	}
	warm := encodeReport(t, warmRes, warmStats)
	// The units block legitimately differs (ran vs cached); everything else
	// must match. Compare with the units normalised away.
	if got := stripUnits(t, warm); !bytes.Equal(stripUnits(t, serial), got) {
		t.Errorf("cache-served report differs beyond the units block:\n%s\nvs\n%s", serial, warm)
	}
}

// stripUnits decodes a report, zeroes the ran/cached split and the per-run
// cached flags, and re-encodes canonically.
func stripUnits(t *testing.T, data []byte) []byte {
	t.Helper()
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	rep.Units = UnitTotals{}
	for _, cfg := range rep.Configs {
		for i := range cfg.Runs {
			cfg.Runs[i].Cached = false
		}
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStatsThroughput: cycles/duration, computed once in the engine, read
// everywhere.
func TestStatsThroughput(t *testing.T) {
	s := Stats{Cycles: 1000, Duration: 2 * time.Second}
	if got := s.Throughput(); got != 500 {
		t.Errorf("Throughput() = %v, want 500", got)
	}
	if got := (Stats{Cycles: 100}).Throughput(); got != 0 {
		t.Errorf("zero-duration Throughput() = %v, want 0", got)
	}
	if got := (Stats{Ran: 3, Cached: 4}).String(); got != "3 ran, 4 cached" {
		t.Errorf("Stats.String() = %q, want %q (CI greps this exact shape)", got, "3 ran, 4 cached")
	}
}

// TestEngineFillsDurationAndCycles: the engine stamps wall clock and
// simulated cycles so no caller recomputes them.
func TestEngineFillsDurationAndCycles(t *testing.T) {
	_, stats, err := Run([]nodespec.Config{engineCfg(t, "dur", 2)},
		Options{Tests: engineSuite(t, "basic_write_read"), Seeds: []int64{1}, NoLint: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duration <= 0 {
		t.Errorf("Stats.Duration = %v, want > 0", stats.Duration)
	}
	if stats.Cycles == 0 {
		t.Error("Stats.Cycles = 0, want simulated cycles counted")
	}
}
