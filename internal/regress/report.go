package regress

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crve/internal/core"
)

// WriteReports materialises per-configuration reports and per-run waveform
// artifacts — text VCD when a run dumped it, compact binary recordings
// (.crw, re-servable as byte-identical VCD) when Options.RecordWave kept
// them — the artifacts the paper's tool leaves for the analyzer and the
// engineer.
func WriteReports(dir string, results []*ConfigResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cr := range results {
		base := filepath.Join(dir, cr.Cfg.Name)
		if err := os.MkdirAll(base, 0o755); err != nil {
			return err
		}
		var report strings.Builder
		fmt.Fprintf(&report, "configuration: %v\n\n", cr.Cfg)
		for _, run := range cr.Runs {
			fmt.Fprintf(&report, "%s\n%s\n", run.Pair.RTL.Summary(), run.Pair.BCA.Summary())
			fmt.Fprintf(&report, "alignment min %.2f%%, coverage equal %v\n\n",
				run.Pair.Alignment.MinRate(), run.Pair.CoverageEqual)
			for view, res := range map[string]*core.RunResult{"rtl": run.Pair.RTL, "bca": run.Pair.BCA} {
				if res.VCD != nil {
					name := fmt.Sprintf("%s_seed%d_%s.vcd", run.Test, run.Seed, view)
					if err := os.WriteFile(filepath.Join(base, name), res.VCD, 0o644); err != nil {
						return err
					}
				}
				if res.Wave != nil {
					name := fmt.Sprintf("%s_seed%d_%s.crw", run.Test, run.Seed, view)
					if err := os.WriteFile(filepath.Join(base, name), res.Wave.Encode(), 0o644); err != nil {
						return err
					}
				}
			}
		}
		fmt.Fprintf(&report, "suite functional coverage:\n%s\n", cr.SuiteCoverage.Report())
		fmt.Fprintf(&report, "%s\n", cr.CodeCov.Report())
		if err := os.WriteFile(filepath.Join(base, "report.txt"), []byte(report.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
