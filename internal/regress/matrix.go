package regress

import (
	"fmt"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// StandardMatrix generates the regression configuration matrix used by
// experiment E1: 36 node configurations (the paper: "More than 36
// configurations of the Node have been tested"), sweeping the six
// arbitration policies, the three architectures and the two node protocol
// types, while cycling bus widths, port counts, endianness and pipe sizes.
func StandardMatrix() []nodespec.Config {
	widths := []int{32, 64, 16, 128}
	shapes := []struct{ i, t int }{{2, 2}, {3, 2}, {4, 3}, {2, 1}}
	types := []stbus.Type{stbus.Type2, stbus.Type3}
	archs := []nodespec.Arch{nodespec.SharedBus, nodespec.FullCrossbar, nodespec.PartialCrossbar}

	var out []nodespec.Config
	k := 0
	for _, ty := range types {
		for _, ar := range archs {
			for _, policy := range arb.Kinds {
				sh := shapes[k%len(shapes)]
				cfg := nodespec.Config{
					Name:    fmt.Sprintf("cfg%02d", k),
					Port:    stbus.PortConfig{Type: ty, DataBits: widths[k%len(widths)]},
					NumInit: sh.i,
					NumTgt:  sh.t,
					Arch:    ar,
					ReqArb:  policy,
					RespArb: arb.Kinds[(k+1)%len(arb.Kinds)],
					Map:     stbus.UniformMap(sh.t, 0x1000, 0x800),
					// Cycle pipe sizes through the CATG "pipe size" knob.
					PipeSize: []int{4, 2, 8}[k%3],
				}
				// The response path sticks to policies that need no
				// programming port of their own.
				if cfg.RespArb == arb.Programmable {
					cfg.RespArb = arb.Priority
				}
				if k%5 == 4 {
					cfg.Port.Endian = stbus.BigEndian
				}
				if ar == nodespec.PartialCrossbar {
					cfg.Allowed = partialMatrix(sh.i, sh.t)
				}
				if policy == arb.Programmable {
					cfg.ProgPort = true
					cfg.ProgBase = 0x10_0000
				}
				out = append(out, cfg.WithDefaults())
				k++
			}
		}
	}
	return out
}

// partialMatrix builds a deterministic partial-crossbar connectivity: all
// pairs connected except the last initiator to the last target (when more
// than one of each exists), so the blocked-pair path is exercised while
// every initiator keeps at least one reachable target.
func partialMatrix(nInit, nTgt int) [][]bool {
	rows := make([][]bool, nInit)
	for i := range rows {
		rows[i] = make([]bool, nTgt)
		for t := range rows[i] {
			rows[i][t] = true
		}
	}
	if nInit > 1 && nTgt > 1 {
		rows[nInit-1][nTgt-1] = false
	}
	return rows
}
