package regress

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
)

// fakeRecord builds a minimal valid cache payload (Load requires both views).
func fakeRecord(test string, seed int64) *core.PairRecord {
	return &core.PairRecord{
		RTL: &core.RunRecord{Test: test, Seed: seed, Cycles: 10},
		BCA: &core.RunRecord{Test: test, Seed: seed, Cycles: 10},
	}
}

// TestCacheConcurrentStoreLoad hammers the store from many goroutines — same
// key and distinct keys interleaved — and requires every load to return a
// whole entry or a clean miss, never a torn one. Run under -race this is the
// store's concurrency contract.
func TestCacheConcurrentStoreLoad(t *testing.T) {
	c := testCache(t, "conc")
	cfg := StandardMatrix()[0]
	const (
		goroutines = 16
		rounds     = 25
		sharedKeys = 4
	)
	var wg sync.WaitGroup
	var torn atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Contended keys: everyone stores and loads the same few.
				test := fmt.Sprintf("shared%d", i%sharedKeys)
				key := c.Key(cfg, test, 1, bca.Bugs{}, "")
				if err := c.Store(key, cfg, test, 1, fakeRecord(test, 1)); err != nil {
					t.Error(err)
					return
				}
				if rec, ok := c.Load(key); ok {
					if rec.RTL == nil || rec.BCA == nil || rec.RTL.Test != test {
						torn.Add(1)
					}
				}
				// Private keys: one writer each, must always hit after store.
				priv := fmt.Sprintf("private%d_%d", g, i)
				pkey := c.Key(cfg, priv, int64(g), bca.Bugs{}, "")
				if err := c.Store(pkey, cfg, priv, int64(g), fakeRecord(priv, int64(g))); err != nil {
					t.Error(err)
					return
				}
				if rec, ok := c.Load(pkey); !ok || rec.RTL.Test != priv {
					t.Errorf("private key %s: lost or torn entry", priv)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Errorf("%d torn entries observed", n)
	}
}

// TestCacheFlightGroupDedupes is the served tier's dedupe contract: two
// engine runs submitting identical unit sets against one shared cache, at
// the same time, must simulate each unit exactly once between them — the
// in-process flight group blocks the second run's miss until the first run's
// entry lands.
func TestCacheFlightGroupDedupes(t *testing.T) {
	cache := testCache(t, "flight")
	cfgs := []nodespec.Config{engineCfg(t, "fl0", 4), engineCfg(t, "fl1", 2)}
	suite := engineSuite(t, "basic_write_read", "error_paths")
	units := len(cfgs) * len(suite)
	opt := Options{Tests: suite, Seeds: []int64{1}, Cache: cache, Workers: 4, NoLint: true}

	const jobsN = 3
	stats := make([]Stats, jobsN)
	var wg sync.WaitGroup
	for i := 0; i < jobsN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, st, err := RunCtx(context.Background(), cfgs, opt)
			if err != nil {
				t.Error(err)
				return
			}
			stats[i] = st
		}(i)
	}
	wg.Wait()
	totalRan, totalCached := 0, 0
	for i, st := range stats {
		if st.Ran+st.Cached != units {
			t.Errorf("job %d: %d ran + %d cached != %d units", i, st.Ran, st.Cached, units)
		}
		totalRan += st.Ran
		totalCached += st.Cached
	}
	if totalRan != units {
		t.Errorf("concurrent identical jobs simulated %d units, want exactly %d (one per unique unit)", totalRan, units)
	}
	if totalCached != (jobsN-1)*units {
		t.Errorf("cache served %d units, want %d", totalCached, (jobsN-1)*units)
	}
}

// TestCacheFlightOwnerFailureReleasesWaiters: when a flight owner never
// stores (simulation failed), a blocked waiter must take over instead of
// hanging or treating the miss as a hit.
func TestCacheFlightOwnerFailureReleasesWaiters(t *testing.T) {
	c := testCache(t, "fail")
	cfg := StandardMatrix()[0]
	key := c.Key(cfg, "t", 1, bca.Bugs{}, "")

	rec, release, err := c.acquire(context.Background(), key)
	if err != nil || rec != nil || release == nil {
		t.Fatalf("first acquire: want ownership, got rec=%v owner=%v err=%v", rec, release != nil, err)
	}

	got := make(chan error, 1)
	go func() {
		rec2, release2, err2 := c.acquire(context.Background(), key)
		if err2 != nil {
			got <- err2
			return
		}
		if rec2 != nil {
			got <- fmt.Errorf("waiter got a record although the owner stored nothing")
			return
		}
		release2() // waiter became the new owner
		got <- nil
	}()

	release() // owner gives up without storing
	if err := <-got; err != nil {
		t.Fatal(err)
	}

	// Cancellation while waiting must return the context error.
	_, release3, _ := c.acquire(context.Background(), key)
	defer release3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.acquire(ctx, key); err == nil {
		t.Fatal("acquire with a cancelled context while another owner is in flight must fail")
	}
}
