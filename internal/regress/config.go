// Package regress implements the paper's regression tool: it loads node
// configurations from parameter text files ("regression tool can load text
// files defining HDL parameters of each of them; it's sufficient to indicate
// the directory"), generates and runs the test suites on both models with
// the same seeds in batch mode, produces verification and functional-
// coverage reports plus waveform dumps, and calls the STBus Analyzer for the
// bus-accurate comparison. The paper's GUI front end is replaced by the
// cmd/regress CLI (see DESIGN.md substitutions).
package regress

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"crve/internal/arb"
	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// lineError is one parse failure with its 1-based line number, so callers
// can report every broken line of a parameter file at once.
type lineError struct {
	line int
	err  error
}

// parseLines scans one parameter file, applying every `key = value` line and
// accumulating (rather than short-circuiting on) per-line failures. It
// returns the partially-filled configuration, the line on which each key was
// set, and every parse error.
func parseLines(r io.Reader) (nodespec.Config, map[string]int, []lineError) {
	cfg := nodespec.Config{}
	keyLine := map[string]int{}
	var errs []lineError
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		if !ok {
			errs = append(errs, lineError{line, fmt.Errorf("expected key = value")})
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if err := applyParam(&cfg, key, val); err != nil {
			errs = append(errs, lineError{line, err})
			continue
		}
		keyLine[key] = line
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, lineError{line, err})
	}
	return cfg, keyLine, errs
}

// ParseConfig reads one HDL-parameter file. The format is line-oriented
// `key = value` with `#` comments:
//
//	name      = cfg01
//	type      = t3            # t2 | t3
//	data_bits = 32
//	endian    = little        # little | big
//	num_init  = 3
//	num_tgt   = 2
//	arch      = full          # shared | full | partial
//	req_arb   = lru           # priority|roundrobin|lru|latency|bandwidth|programmable
//	resp_arb  = priority
//	pipe      = 4
//	map       = 0x1000:0x1000:0, 0x2000:0x1000:1   # base:size:target
//	allowed   = 11,10         # partial only: one row per initiator
//	prog_port = true
//	prog_base = 0x8000
//
// Every broken line is reported (the errors are joined, one `regress: line
// N:` entry per failure) instead of stopping at the first; the semantic
// Validate pass runs only when the file parsed cleanly. For positioned,
// coded diagnostics use ParseSource and internal/lint instead.
func ParseConfig(r io.Reader) (nodespec.Config, error) {
	cfg, _, lineErrs := parseLines(r)
	if len(lineErrs) > 0 {
		errs := make([]error, len(lineErrs))
		for i, le := range lineErrs {
			errs[i] = fmt.Errorf("regress: line %d: %w", le.line, le.err)
		}
		return cfg, errors.Join(errs...)
	}
	cfg = cfg.WithDefaults()
	return cfg, cfg.Validate()
}

// ParseSource reads one HDL-parameter file into a lint.Source: the parsed
// configuration plus the per-key line positions the static analyzers use to
// anchor diagnostics. Parse failures become CRVE000 diagnostics on the
// source rather than an error, so a whole configuration directory can be
// linted in one pass.
func ParseSource(file string, r io.Reader) lint.Source {
	cfg, keyLine, lineErrs := parseLines(r)
	src := lint.Source{File: file, Cfg: cfg.WithDefaults(), KeyLine: keyLine}
	for _, le := range lineErrs {
		src.Parse = append(src.Parse, lint.Diagnostic{
			Pos:      lint.Position{File: file, Line: le.line},
			Code:     lint.CodeParse,
			Severity: lint.Error,
			Msg:      le.err.Error(),
		})
	}
	return src
}

func applyParam(cfg *nodespec.Config, key, val string) error {
	parseUint := func() (uint64, error) {
		return strconv.ParseUint(strings.TrimPrefix(val, "0x"), base(val), 64)
	}
	switch key {
	case "name":
		cfg.Name = val
	case "type":
		switch val {
		case "t1":
			cfg.Port.Type = stbus.Type1
		case "t2":
			cfg.Port.Type = stbus.Type2
		case "t3":
			cfg.Port.Type = stbus.Type3
		default:
			return fmt.Errorf("bad type %q", val)
		}
	case "data_bits":
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		cfg.Port.DataBits = n
	case "addr_bits":
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		cfg.Port.AddrBits = n
	case "endian":
		switch val {
		case "little":
			cfg.Port.Endian = stbus.LittleEndian
		case "big":
			cfg.Port.Endian = stbus.BigEndian
		default:
			return fmt.Errorf("bad endian %q", val)
		}
	case "num_init":
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		cfg.NumInit = n
	case "num_tgt":
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		cfg.NumTgt = n
	case "arch":
		a, err := nodespec.ParseArch(val)
		if err != nil {
			return err
		}
		cfg.Arch = a
	case "req_arb":
		k, err := arb.ParseKind(val)
		if err != nil {
			return err
		}
		cfg.ReqArb = k
	case "resp_arb":
		k, err := arb.ParseKind(val)
		if err != nil {
			return err
		}
		cfg.RespArb = k
	case "pipe":
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		cfg.PipeSize = n
	case "map":
		var m stbus.AddrMap
		for _, ent := range strings.Split(val, ",") {
			parts := strings.Split(strings.TrimSpace(ent), ":")
			if len(parts) != 3 {
				return fmt.Errorf("bad map entry %q", ent)
			}
			b, err := strconv.ParseUint(strings.TrimPrefix(parts[0], "0x"), base(parts[0]), 64)
			if err != nil {
				return err
			}
			s, err := strconv.ParseUint(strings.TrimPrefix(parts[1], "0x"), base(parts[1]), 64)
			if err != nil {
				return err
			}
			t, err := strconv.Atoi(parts[2])
			if err != nil {
				return err
			}
			m = append(m, stbus.Region{Base: b, Size: s, Target: t})
		}
		cfg.Map = m
	case "allowed":
		var rows [][]bool
		for _, rs := range strings.Split(val, ",") {
			rs = strings.TrimSpace(rs)
			row := make([]bool, len(rs))
			for i, ch := range rs {
				switch ch {
				case '1':
					row[i] = true
				case '0':
				default:
					return fmt.Errorf("bad allowed bit %q", ch)
				}
			}
			rows = append(rows, row)
		}
		cfg.Allowed = rows
	case "prog_port":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return err
		}
		cfg.ProgPort = b
	case "prog_base":
		v, err := parseUint()
		if err != nil {
			return err
		}
		cfg.ProgBase = v
	default:
		return fmt.Errorf("unknown parameter %q", key)
	}
	return nil
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// FormatConfig renders a configuration back into the parameter-file format,
// so the matrix generator can materialise a configuration directory.
func FormatConfig(cfg nodespec.Config) string {
	cfg = cfg.WithDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "name      = %s\n", cfg.Name)
	fmt.Fprintf(&sb, "type      = t%d\n", int(cfg.Port.Type))
	fmt.Fprintf(&sb, "data_bits = %d\n", cfg.Port.DataBits)
	fmt.Fprintf(&sb, "addr_bits = %d\n", cfg.Port.AddrBits)
	fmt.Fprintf(&sb, "endian    = %v\n", cfg.Port.Endian)
	fmt.Fprintf(&sb, "num_init  = %d\n", cfg.NumInit)
	fmt.Fprintf(&sb, "num_tgt   = %d\n", cfg.NumTgt)
	fmt.Fprintf(&sb, "arch      = %v\n", cfg.Arch)
	fmt.Fprintf(&sb, "req_arb   = %v\n", cfg.ReqArb)
	fmt.Fprintf(&sb, "resp_arb  = %v\n", cfg.RespArb)
	fmt.Fprintf(&sb, "pipe      = %d\n", cfg.PipeSize)
	var ents []string
	for _, r := range cfg.Map {
		ents = append(ents, fmt.Sprintf("0x%x:0x%x:%d", r.Base, r.Size, r.Target))
	}
	fmt.Fprintf(&sb, "map       = %s\n", strings.Join(ents, ", "))
	if cfg.Arch == nodespec.PartialCrossbar {
		var rows []string
		for _, row := range cfg.Allowed {
			bits := make([]byte, len(row))
			for i, b := range row {
				if b {
					bits[i] = '1'
				} else {
					bits[i] = '0'
				}
			}
			rows = append(rows, string(bits))
		}
		fmt.Fprintf(&sb, "allowed   = %s\n", strings.Join(rows, ","))
	}
	if cfg.ProgPort {
		fmt.Fprintf(&sb, "prog_port = true\n")
		fmt.Fprintf(&sb, "prog_base = 0x%x\n", cfg.ProgBase)
	}
	return sb.String()
}

// cfgFileNames lists the *.cfg files of dir, sorted by name.
func cfgFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".cfg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("regress: no .cfg files in %s", dir)
	}
	return names, nil
}

// LoadConfigDir parses every *.cfg file in dir, sorted by file name.
func LoadConfigDir(dir string) ([]nodespec.Config, error) {
	names, err := cfgFileNames(dir)
	if err != nil {
		return nil, err
	}
	var cfgs []nodespec.Config
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		cfg, err := ParseConfig(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if cfg.Name == "node" {
			cfg.Name = strings.TrimSuffix(name, ".cfg")
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

// LoadSourceDir parses every *.cfg file in dir into lint sources. Unlike
// LoadConfigDir it does not fail on broken files: parse failures ride along
// as CRVE000 diagnostics so crvelint reports every problem of the directory
// in one pass. Only I/O failures (or an empty directory) are errors.
func LoadSourceDir(dir string) ([]lint.Source, error) {
	names, err := cfgFileNames(dir)
	if err != nil {
		return nil, err
	}
	var srcs []lint.Source
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		src := ParseSource(path, f)
		f.Close()
		// Mirror LoadConfigDir: an unnamed config takes its file name, so
		// duplicate-name linting matches what a run would use.
		if src.Cfg.Name == "node" {
			src.Cfg.Name = strings.TrimSuffix(name, ".cfg")
		}
		srcs = append(srcs, src)
	}
	return srcs, nil
}
