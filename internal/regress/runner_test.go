package regress

import (
	"bytes"
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// engineCfg builds a small, lint-clean configuration for engine tests.
func engineCfg(t *testing.T, name string, pipe int) nodespec.Config {
	t.Helper()
	cfg := nodespec.Config{
		Name:    name,
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x800),
		PipeSize: pipe,
	}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// engineSuite returns a small test suite by name.
func engineSuite(t *testing.T, names ...string) []core.Test {
	t.Helper()
	var tests []core.Test
	for _, name := range names {
		tc, err := testcases.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tests = append(tests, tc)
	}
	return tests
}

// TestSignedOffRequiresRuns is the zero-run sign-off hole: an empty result
// leaves every aggregate at its vacuous optimum, and that must not read as
// a verified configuration.
func TestSignedOffRequiresRuns(t *testing.T) {
	cr := &ConfigResult{CoverageAllEqual: true, MinAlignment: 100}
	if cr.SignedOff() {
		t.Fatal("a configuration with zero runs must not sign off")
	}
}

// TestEmptySuiteErrors: running nothing is an error, not a vacuous pass —
// on the single-config path and on the matrix path.
func TestEmptySuiteErrors(t *testing.T) {
	cfg := engineCfg(t, "empty", 4)
	if _, err := RunConfig(cfg, Options{}); err == nil {
		t.Error("RunConfig with an empty test suite must error")
	} else if !strings.Contains(err.Error(), "empty test suite") {
		t.Errorf("error should name the empty suite: %v", err)
	}
	if _, _, err := Run([]nodespec.Config{cfg}, Options{}); err == nil {
		t.Error("Run with an empty test suite must error")
	}
}

// TestRunDefaultsSeedsOnce: with no seed list, the default {1} is applied
// before the lint gate and the engine alike, so both see the same runs.
func TestRunDefaultsSeedsOnce(t *testing.T) {
	cfg := engineCfg(t, "seeded", 4)
	results, stats, err := Run([]nodespec.Config{cfg}, Options{
		Tests: engineSuite(t, "basic_write_read"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 1 || stats.Cached != 0 {
		t.Errorf("stats %v, want 1 ran", stats)
	}
	if len(results[0].Runs) != 1 || results[0].Runs[0].Seed != 1 {
		t.Errorf("runs %v, want one run with the default seed 1", results[0].Runs)
	}
}

// TestSerialParallelByteIdentical is the engine's determinism contract: the
// verbose log and the MatrixReport must be byte-identical at any worker
// count, because all merging and logging happens on one goroutine in
// canonical (config, test, seed) order.
func TestSerialParallelByteIdentical(t *testing.T) {
	cfgs := []nodespec.Config{
		engineCfg(t, "par0", 4),
		engineCfg(t, "par1", 2),
		engineCfg(t, "par2", 8),
	}
	suite := engineSuite(t, "basic_write_read", "error_paths")
	runAt := func(workers int) (string, string) {
		var log bytes.Buffer
		results, stats, err := Run(cfgs, Options{
			Tests: suite, Seeds: []int64{1, 2}, Workers: workers, Log: &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := len(cfgs) * len(suite) * 2; stats.Ran != want {
			t.Errorf("workers=%d: ran %d units, want %d", workers, stats.Ran, want)
		}
		return MatrixReport(results), log.String()
	}
	serialRep, serialLog := runAt(1)
	for _, workers := range []int{4, 8} {
		rep, log := runAt(workers)
		if rep != serialRep {
			t.Errorf("workers=%d: MatrixReport differs from serial:\n%s\nvs\n%s", workers, serialRep, rep)
		}
		if log != serialLog {
			t.Errorf("workers=%d: progress log differs from serial:\n%s\nvs\n%s", workers, serialLog, log)
		}
	}
	if !strings.Contains(serialLog, "par1 (") {
		t.Errorf("log missing config header:\n%s", serialLog)
	}
}

// TestParallelErrorIsCanonical: when several units fail, the engine reports
// the canonically first failure regardless of scheduling — parallel error
// output must be as deterministic as the reports.
func TestParallelErrorIsCanonical(t *testing.T) {
	good := engineCfg(t, "aok", 4)
	bad := func(name string) nodespec.Config {
		cfg := nodespec.Config{
			Name:    name,
			Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
			NumInit: 2, NumTgt: 2,
			Arch:   nodespec.FullCrossbar,
			ReqArb: arb.LRU, RespArb: arb.Priority,
			// Routes to a target the node does not have: elaboration fails.
			Map: stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 5}},
		}.WithDefaults()
		return cfg
	}
	cfgs := []nodespec.Config{good, bad("bad1"), bad("bad2")}
	opt := Options{Tests: engineSuite(t, "basic_write_read"), Seeds: []int64{1, 2}, NoLint: true, Workers: 8}
	for i := 0; i < 3; i++ {
		_, _, err := Run(cfgs, opt)
		if err == nil {
			t.Fatal("matrix with broken configs must error")
		}
		if !strings.Contains(err.Error(), "bad1") || strings.Contains(err.Error(), "bad2") {
			t.Errorf("error must cite the canonically first failure (bad1): %v", err)
		}
	}
}
