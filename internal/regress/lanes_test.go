package regress

import (
	"bytes"
	"testing"

	"crve/internal/nodespec"
)

// TestLaneRunByteIdentical extends the engine's determinism contract to lane
// mode: batching seeds into lane-parallel simulators must leave the verbose
// log and the MatrixReport byte-identical to a scalar run — lane width is a
// performance knob, never a semantic one.
func TestLaneRunByteIdentical(t *testing.T) {
	cfgs := []nodespec.Config{
		engineCfg(t, "ln0", 4),
		engineCfg(t, "ln1", 2),
	}
	suite := engineSuite(t, "basic_write_read", "error_paths")
	runWith := func(lanes int) (string, string) {
		var log bytes.Buffer
		results, stats, err := Run(cfgs, Options{
			Tests: suite, Seeds: []int64{1, 2, 3, 4, 5},
			Workers: 4, Lanes: lanes, Kernel: "compiled", Log: &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := len(cfgs) * len(suite) * 5; stats.Ran != want {
			t.Errorf("lanes=%d: ran %d units, want %d", lanes, stats.Ran, want)
		}
		return MatrixReport(results), log.String()
	}
	scalarRep, scalarLog := runWith(0)
	for _, lanes := range []int{2, 64} {
		rep, log := runWith(lanes)
		if rep != scalarRep {
			t.Errorf("lanes=%d: MatrixReport differs from scalar:\n%s\nvs\n%s", lanes, scalarRep, rep)
		}
		if log != scalarLog {
			t.Errorf("lanes=%d: progress log differs from scalar:\n%s\nvs\n%s", lanes, scalarLog, log)
		}
	}
}

// TestLaneCacheInterop pins that lane batches keep the per-seed cache keys:
// entries stored by a scalar run serve a lane run (a partial batch simulates
// only the missing seeds) and entries stored by a lane run serve a scalar
// run.
func TestLaneCacheInterop(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := engineCfg(t, "lc", 4)
	suite := engineSuite(t, "basic_write_read")
	run := func(seeds []int64, lanes int) Stats {
		_, stats, err := Run([]nodespec.Config{cfg}, Options{
			Tests: suite, Seeds: seeds, Lanes: lanes, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	if s := run([]int64{1, 2}, 0); s.Ran != 2 || s.Cached != 0 {
		t.Fatalf("cold scalar run: %v, want 2 ran", s)
	}
	// Lane run over a superset: the scalar-stored seeds serve from cache and
	// only the two missing seeds enter the lane simulator.
	if s := run([]int64{1, 2, 3, 4}, 64); s.Ran != 2 || s.Cached != 2 {
		t.Fatalf("partial lane batch: %v, want 2 ran + 2 cached", s)
	}
	// Scalar rerun of everything: the lane-stored entries serve too.
	if s := run([]int64{1, 2, 3, 4}, 0); s.Ran != 0 || s.Cached != 4 {
		t.Fatalf("warm scalar run: %v, want 4 cached", s)
	}
}
