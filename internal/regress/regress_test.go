package regress

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/coverage"
	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/stbus"
	"crve/internal/testcases"
	"crve/internal/vcd"
)

const sampleCfg = `
# reference configuration
name      = sample
type      = t3
data_bits = 32
endian    = little
num_init  = 3
num_tgt   = 2
arch      = full
req_arb   = lru
resp_arb  = priority
pipe      = 4
map       = 0x1000:0x1000:0, 0x2000:0x1000:1
`

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(sampleCfg))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "sample" || cfg.Port.Type != stbus.Type3 || cfg.Port.DataBits != 32 ||
		cfg.NumInit != 3 || cfg.NumTgt != 2 || cfg.ReqArb != arb.LRU || cfg.PipeSize != 4 {
		t.Errorf("parsed %v", cfg)
	}
	if len(cfg.Map) != 2 || cfg.Map[1].Base != 0x2000 || cfg.Map[1].Target != 1 {
		t.Errorf("map %v", cfg.Map)
	}
}

func TestParseConfigPartialAndProg(t *testing.T) {
	src := `
type = t2
data_bits = 64
num_init = 2
num_tgt = 2
arch = partial
req_arb = programmable
resp_arb = roundrobin
map = 0x0:0x1000:0, 0x1000:0x1000:1
allowed = 11,10
prog_port = true
prog_base = 0x100000
endian = big
`
	cfg, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arch != nodespec.PartialCrossbar || !cfg.Allowed[0][1] || cfg.Allowed[1][1] {
		t.Errorf("allowed %v", cfg.Allowed)
	}
	if !cfg.ProgPort || cfg.ProgBase != 0x100000 || cfg.Port.Endian != stbus.BigEndian {
		t.Errorf("cfg %v", cfg)
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"type = t9\n",
		"nonsense\n",
		"whoami = 3\n",
		"arch = ring\n",
		"map = 1:2\n",
		"allowed = 12\n",
		// valid syntax, invalid semantics (no map):
		"type = t3\ndata_bits = 32\nnum_init = 1\nnum_tgt = 1\n",
	}
	for _, src := range bad {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("ParseConfig(%q) should fail", src)
		}
	}
}

func TestFormatConfigRoundTrip(t *testing.T) {
	for _, cfg := range StandardMatrix()[:8] {
		text := FormatConfig(cfg)
		back, err := ParseConfig(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: %v\n%s", cfg.Name, err, text)
		}
		if back.String() != cfg.String() {
			t.Errorf("round trip changed config:\n%v\n%v", cfg, back)
		}
	}
}

func TestLoadConfigDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.cfg"), []byte(sampleCfg), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := StandardMatrix()[0]
	if err := os.WriteFile(filepath.Join(dir, "b.cfg"), []byte(FormatConfig(cfg2)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgs, err := LoadConfigDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Name != "sample" {
		t.Errorf("loaded %d configs: %v", len(cfgs), cfgs)
	}
	if _, err := LoadConfigDir(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestStandardMatrixShape(t *testing.T) {
	m := StandardMatrix()
	if len(m) < 36 {
		t.Fatalf("matrix has %d configs, the paper tested more than 36", len(m))
	}
	seenArb := map[arb.Kind]bool{}
	seenArch := map[nodespec.Arch]bool{}
	seenType := map[stbus.Type]bool{}
	names := map[string]bool{}
	for _, cfg := range m {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
		if names[cfg.Name] {
			t.Errorf("duplicate name %s", cfg.Name)
		}
		names[cfg.Name] = true
		seenArb[cfg.ReqArb] = true
		seenArch[cfg.Arch] = true
		seenType[cfg.Port.Type] = true
	}
	if len(seenArb) != 6 {
		t.Errorf("only %d arbitration kinds swept", len(seenArb))
	}
	if len(seenArch) != 3 || len(seenType) != 2 {
		t.Error("matrix must sweep all architectures and node protocol types")
	}
}

func TestRunConfigCleanSuite(t *testing.T) {
	cfg := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
	// A focused sub-suite keeps the unit test quick; the full matrix runs in
	// the E1 benchmark.
	suite := []string{"basic_write_read", "out_of_order", "error_paths", "chunked"}
	opt := Options{Seeds: []int64{1, 2}}
	for _, name := range suite {
		tc, err := testcases.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opt.Tests = append(opt.Tests, tc)
	}
	cr, err := RunConfig(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.SignedOff() {
		t.Fatalf("clean config not signed off: rtlFail=%d bcaFail=%d covEq=%v align=%.2f",
			cr.RTLFailures, cr.BCAFailures, cr.CoverageAllEqual, cr.MinAlignment)
	}
	if cr.MinAlignment != 100 {
		t.Errorf("alignment %.2f", cr.MinAlignment)
	}
	if len(cr.Runs) != 8 {
		t.Errorf("%d runs, want 8", len(cr.Runs))
	}
	// The 4-test sub-suite cannot reach full coverage (no long bursts, no
	// mixed kinds); it must still make substantial progress.
	if cr.SuiteCoverage.Percent() < 50 {
		t.Errorf("suite coverage %.1f%% suspiciously low\n%s",
			cr.SuiteCoverage.Percent(), cr.SuiteCoverage.Report())
	}
	rep := MatrixReport([]*ConfigResult{cr})
	if !strings.Contains(rep, "PASS") && !strings.Contains(rep, "pass") {
		t.Errorf("report:\n%s", rep)
	}
}

// TestFullSuiteReachesFullCoverage is the paper's coverage sign-off: the
// complete twelve-test suite, with a few seeds, must reach 100 % functional
// coverage on the reference configuration.
func TestFullSuiteReachesFullCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	cfg := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Programmable, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x1000),
		ProgPort: true,
		ProgBase: 0x10_0000,
	}.WithDefaults()
	cr, err := RunConfig(cfg, Options{Tests: testcases.All(), Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.SignedOff() {
		t.Fatalf("reference config not signed off: rtlFail=%d bcaFail=%d covEq=%v align=%.2f",
			cr.RTLFailures, cr.BCAFailures, cr.CoverageAllEqual, cr.MinAlignment)
	}
	if !cr.SuiteCoverage.Full() {
		t.Errorf("functional coverage %.1f%%, want 100%%\n%s",
			cr.SuiteCoverage.Percent(), cr.SuiteCoverage.Report())
	}
	if lc := cr.CodeCov.Percent(coverage.LinePoint); lc != 100 {
		t.Errorf("justified line coverage %.1f%%, want 100%%\n%s", lc, cr.CodeCov.Report())
	}
}

func TestRunConfigDetectsBuggedBCA(t *testing.T) {
	cfg := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 1,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(1, 0x1000, 0x1000),
	}.WithDefaults()
	tc, err := testcases.ByName("priority_pressure")
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunConfig(cfg, Options{Tests: []core.Test{tc}, Seeds: []int64{1},
		Bugs: bca.Bugs{LRUInit: true}})
	if err != nil {
		t.Fatal(err)
	}
	if cr.SignedOff() {
		t.Error("bugged BCA must not sign off")
	}
	if cr.MinAlignment == 100 {
		t.Error("alignment should drop")
	}
}

func TestWriteReports(t *testing.T) {
	cfg := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 1, NumTgt: 1,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Priority, RespArb: arb.Priority,
		Map: stbus.UniformMap(1, 0x1000, 0x1000),
	}.WithDefaults()
	tc, err := testcases.ByName("basic_write_read")
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunConfig(cfg, Options{Tests: []core.Test{tc}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteReports(dir, []*ConfigResult{cr}); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, cfg.Name)
	rep, err := os.ReadFile(filepath.Join(base, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alignment min 100.00%", "functional coverage", "code coverage"} {
		if !strings.Contains(string(rep), want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The streaming default writes no waveform files at all.
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".vcd") || strings.HasSuffix(e.Name(), ".crw") {
			t.Errorf("default run must not write waveform artifacts, found %s", e.Name())
		}
	}

	// With RecordWave, the compact binary recordings are kept per run and
	// round-trip through the encoder.
	cr, err = RunConfig(cfg, Options{Tests: []core.Test{tc}, Seeds: []int64{1}, RecordWave: true})
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := WriteReports(dir2, []*ConfigResult{cr}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"basic_write_read_seed1_rtl.crw", "basic_write_read_seed1_bca.crw"} {
		data, err := os.ReadFile(filepath.Join(dir2, cfg.Name, f))
		if err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
			continue
		}
		if _, err := vcd.DecodeRecording(data); err != nil {
			t.Errorf("artifact %s does not decode: %v", f, err)
		}
	}
}

func TestParseConfigAccumulatesAllErrors(t *testing.T) {
	src := `
name = multi
type = t9
data_bits = thirty
num_init = 2
num_tgt = 2
arch = full
map = 0x1000:0x800:0, 0x1800:0x800:1
bogus = 1
`
	_, err := ParseConfig(strings.NewReader(src))
	if err == nil {
		t.Fatal("broken config must fail")
	}
	msg := err.Error()
	for _, want := range []string{"line 3", "line 4", "line 9"} {
		if !strings.Contains(msg, "regress: "+want) {
			t.Errorf("error does not report %s:\n%s", want, msg)
		}
	}
}

func TestParseSourcePositions(t *testing.T) {
	src := ParseSource("x.cfg", strings.NewReader(sampleCfg))
	if len(src.Parse) != 0 {
		t.Fatalf("clean config produced parse diagnostics: %v", src.Parse)
	}
	// sampleCfg starts with a blank line and a comment; `name` is line 3.
	if src.KeyLine["name"] != 3 || src.KeyLine["map"] != 13 {
		t.Errorf("key lines wrong: %v", src.KeyLine)
	}
	if src.Cfg.Name != "sample" || src.File != "x.cfg" {
		t.Errorf("source %q cfg %v", src.File, src.Cfg)
	}

	bad := ParseSource("y.cfg", strings.NewReader("gibberish\nname = ok\n"))
	if len(bad.Parse) != 1 || bad.Parse[0].Pos.Line != 1 || bad.Parse[0].Code != lint.CodeParse {
		t.Errorf("parse diagnostics: %v", bad.Parse)
	}
}

func TestLoadSourceDirCollectsBrokenFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "good.cfg"), []byte(sampleCfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.cfg"), []byte("what\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srcs, err := LoadSourceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("loaded %d sources, want 2", len(srcs))
	}
	// Sorted by file name: broken.cfg first.
	if len(srcs[0].Parse) != 1 || len(srcs[1].Parse) != 0 {
		t.Errorf("parse diagnostics misplaced: %v / %v", srcs[0].Parse, srcs[1].Parse)
	}
	if srcs[0].Cfg.Name != "broken" {
		t.Errorf("unnamed config should take its file name, got %q", srcs[0].Cfg.Name)
	}
}

// TestRunMatrixLintGate is the contract of the static layer: a matrix with
// lint errors refuses to run before the first cycle, unless NoLint is set.
func TestRunMatrixLintGate(t *testing.T) {
	cfg := nodespec.Config{
		Name:    "gated",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		// Both regions route to target 0: CRVE005, target 1 unreachable.
		Map: stbus.AddrMap{
			{Base: 0x1000, Size: 0x1000, Target: 0},
			{Base: 0x2000, Size: 0x1000, Target: 0},
		},
	}.WithDefaults()
	tc, err := testcases.ByName("basic_write_read")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Tests: []core.Test{tc}, Seeds: []int64{1}}
	if _, err := RunMatrix([]nodespec.Config{cfg}, opt); err == nil {
		t.Fatal("matrix with lint errors must refuse to run")
	} else if !strings.Contains(err.Error(), string(lint.CodeTargetUnmapped)) {
		t.Errorf("refusal should cite the diagnostic code:\n%v", err)
	}
	opt.NoLint = true
	if _, err := RunMatrix([]nodespec.Config{cfg}, opt); err != nil {
		t.Errorf("NoLint override failed: %v", err)
	}
}

// TestShippedConfigsLintCleanAndRoundTrip is the shipped-corpus contract:
// every configs/cfg*.cfg parses, passes the linter without any diagnostic,
// and survives a writer -> parser round trip unchanged.
func TestShippedConfigsLintCleanAndRoundTrip(t *testing.T) {
	dir := filepath.Join("..", "..", "configs")
	srcs, err := LoadSourceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) < 32 {
		t.Fatalf("only %d shipped configs, want >= 32", len(srcs))
	}
	rep := lint.CheckSet(srcs, []int64{1, 2})
	if len(rep.Diags) != 0 {
		var sb strings.Builder
		rep.Text(&sb)
		t.Fatalf("shipped configs are not lint-clean:\n%s", sb.String())
	}
	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src.File), func(t *testing.T) {
			back, err := ParseConfig(strings.NewReader(FormatConfig(src.Cfg)))
			if err != nil {
				t.Fatalf("round trip does not parse: %v", err)
			}
			if back.String() != src.Cfg.String() {
				t.Errorf("round trip changed config:\n%v\n%v", src.Cfg, back)
			}
			if len(back.Map) != len(src.Cfg.Map) {
				t.Errorf("round trip changed map: %v -> %v", src.Cfg.Map, back.Map)
			}
		})
	}
}
