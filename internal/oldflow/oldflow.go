// Package oldflow reproduces the paper's "past flow" baseline (Section 2):
// the BCA model verification as it was done before the common environment
// existed — a test bench written by the model owner, "based on a very basic
// model of harnesses ... doing write then read operations towards a memory
// model", with directive test cases and checks done visually.
//
// The baseline's weaknesses are structural, and this package keeps them on
// purpose so experiment E2 can measure them:
//
//   - a single active initiator (no arbitration contention);
//   - one outstanding operation at a time (no pipelining pressure);
//   - one memory target (no ordering or out-of-order traffic);
//   - only mapped addresses (no error paths);
//   - no protocol checkers, no scoreboard, no coverage — the only check is
//     the write-then-read data comparison and "it finished".
package oldflow

import (
	"bytes"
	"fmt"
	"math/rand"

	"crve/internal/bca"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// Result summarises a past-flow run.
type Result struct {
	// Passed reports whether the write-then-read checks succeeded — the old
	// flow's whole verdict.
	Passed bool
	// Ops is the number of write/read pairs executed.
	Ops int
	// Mismatches counts readback comparisons that failed.
	Mismatches int
	// Cycles is the run length.
	Cycles uint64
	// Notes carries the "visual check" observations a human would have made.
	Notes []string
}

// Run executes the past flow against a BCA model with the given seeded bugs
// and reports whether the old methodology notices anything wrong.
func Run(cfg nodespec.Config, bugs bca.Bugs, pairs int, seed int64) (*Result, error) {
	cfg = cfg.WithDefaults()
	sm := sim.New()
	node, err := bca.NewNode(sim.Root(sm), cfg, bugs)
	if err != nil {
		return nil, err
	}
	res := &Result{Ops: pairs}
	rng := rand.New(rand.NewSource(seed))

	// The memory model behind target 0 — the only target the old flow uses.
	mem := attachSimpleMemory(sm, node.Tgt[0].Name, node)
	_ = mem
	// Idle every other port: the model owner's bench never drove them.
	for i := 1; i < cfg.NumInit; i++ {
		p := node.Init[i]
		sm.Seq(p.Name+".idle", func() {
			p.IdleReq()
			p.RGnt.SetBool(true)
		})
	}
	for t := 1; t < cfg.NumTgt; t++ {
		p := node.Tgt[t]
		sm.Seq(p.Name+".idle", func() {
			p.Gnt.SetBool(true)
			p.IdleResp()
		})
	}

	// The directed write-then-read driver: one operation outstanding at a
	// time, strictly alternating ST4/LD4 over a handful of addresses.
	drv := &directedDriver{p: node.Init[0], rng: rng, pairs: pairs, cfg: cfg}
	sm.Seq("oldflow.driver", drv.tick)

	limit := 200 + pairs*200
	if err := sm.RunUntil(func() bool { return drv.done }, limit); err != nil {
		res.Notes = append(res.Notes, "simulation did not finish (would have been debugged by the model owner)")
		res.Cycles = sm.Cycle()
		return res, nil
	}
	res.Cycles = sm.Cycle()
	res.Mismatches = drv.mismatches
	res.Passed = drv.mismatches == 0
	if res.Passed {
		res.Notes = append(res.Notes, "waveforms looked fine (visual check)")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf("%d readback mismatches", drv.mismatches))
	}
	return res, nil
}

// directedDriver issues write-then-read pairs, one operation at a time.
type directedDriver struct {
	p     *stbus.Port
	rng   *rand.Rand
	cfg   nodespec.Config
	pairs int

	state      int // 0 = send write, 1 = wait write resp, 2 = send read, 3 = wait read resp
	pair       int
	cellIdx    int
	cells      []stbus.Cell
	addr       uint64
	written    []byte
	got        []byte
	mismatches int
	done       bool
	tid        uint8
}

func (d *directedDriver) buildOp(op stbus.Opcode, payload []byte) {
	d.tid++
	cells, err := stbus.BuildRequest(d.cfg.Port.Type, d.cfg.Port.Endian, op, d.addr, payload,
		d.cfg.Port.BusBytes(), d.tid, 0, 0, false)
	if err != nil {
		panic(err)
	}
	d.cells = cells
	d.cellIdx = 0
}

func (d *directedDriver) tick() {
	p := d.p
	p.RGnt.SetBool(true)
	if d.done {
		p.IdleReq()
		return
	}
	region := d.cfg.Map[0]
	switch d.state {
	case 0:
		d.addr = region.Base + uint64(d.rng.Intn(int(region.Size/4)))*4
		d.written = make([]byte, 4)
		d.rng.Read(d.written)
		d.buildOp(stbus.ST4, d.written)
		d.state = 1
	case 1, 3:
		if p.ReqFire() {
			d.cellIdx++
		}
		if p.RespFire() {
			cell := p.SampleResp()
			if d.state == 3 {
				d.got = append(d.got, stbus.UnpackLanes(d.cfg.Port.Endian,
					d.addr+uint64(len(d.got)), cell.Data, minInt(4-len(d.got), d.cfg.Port.BusBytes()),
					d.cfg.Port.BusBytes())...)
			}
			if cell.EOP {
				if d.state == 1 {
					d.state = 2
				} else {
					if !bytes.Equal(d.got, d.written) {
						d.mismatches++
					}
					d.got = nil
					d.pair++
					if d.pair >= d.pairs {
						d.done = true
					} else {
						d.state = 0
					}
				}
			}
		}
	case 2:
		d.buildOp(stbus.LD4, nil)
		d.state = 3
	}
	if d.cellIdx < len(d.cells) && (d.state == 1 || d.state == 3) {
		p.DriveCell(d.cells[d.cellIdx])
	} else {
		p.IdleReq()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// attachSimpleMemory is the old flow's memory model behind target port 0.
func attachSimpleMemory(sm *sim.Simulator, name string, node *bca.Node) map[uint64]byte {
	p := node.Tgt[0]
	cfg := p.Cfg
	mem := map[uint64]byte{}
	var cur []stbus.Cell
	type pkt struct {
		resp []stbus.RespCell
		idx  int
	}
	var queue []*pkt
	sm.Seq(name+".mem", func() {
		if p.ReqFire() {
			cur = append(cur, p.SampleCell())
			if cur[len(cur)-1].EOP {
				first := cur[0]
				var rd []byte
				if first.Opc.IsLoad() {
					rd = make([]byte, first.Opc.SizeBytes())
					for i := range rd {
						rd[i] = mem[first.Addr+uint64(i)]
					}
				}
				if first.Opc.HasWriteData() {
					for i, v := range stbus.ExtractWriteData(cfg.Endian, cur, cfg.BusBytes()) {
						mem[first.Addr+uint64(i)] = v
					}
				}
				resp, err := stbus.BuildResponse(cfg.Type, cfg.Endian, first.Opc, first.Addr, rd,
					cfg.BusBytes(), first.TID, first.Src, false)
				if err != nil {
					resp = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
				}
				queue = append(queue, &pkt{resp: resp})
				cur = nil
			}
		}
		if p.RespFire() {
			h := queue[0]
			h.idx++
			if h.idx == len(h.resp) {
				queue = queue[1:]
			}
		}
		if len(queue) > 0 {
			p.DriveResp(queue[0].resp[queue[0].idx])
		} else {
			p.IdleResp()
		}
		p.Gnt.SetBool(len(queue) < 2)
	})
	return mem
}
