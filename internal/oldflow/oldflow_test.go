package oldflow

import (
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

func cfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x1000),
		PipeSize: 2,
	}.WithDefaults()
}

func TestOldFlowPassesCleanModel(t *testing.T) {
	res, err := Run(cfg(), bca.Bugs{}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("old flow failed a clean model: %+v", res)
	}
	if res.Mismatches != 0 || res.Ops != 20 {
		t.Errorf("result %+v", res)
	}
}

// TestOldFlowMissesEverySeededBug is the baseline half of experiment E2: the
// paper reports that the five BCA bugs were "not found using old environment
// of the past flow". Each seeded bug must slip through the old methodology.
func TestOldFlowMissesEverySeededBug(t *testing.T) {
	c := cfg()
	t2c := c
	t2c.Port.Type = stbus.Type2
	for bi, bug := range bca.AllBugs() {
		bug := bug
		t.Run(bca.BugNames()[bi], func(t *testing.T) {
			use := c
			if bug.T2OrderIgnored {
				use = t2c
			}
			for seed := int64(1); seed <= 3; seed++ {
				res, err := Run(use, bug, 20, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Passed {
					t.Fatalf("old flow unexpectedly caught %v (seed %d): %+v",
						bug.List(), seed, res)
				}
			}
		})
	}
}

func TestOldFlowDeterministic(t *testing.T) {
	a, err := Run(cfg(), bca.Bugs{}, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg(), bca.Bugs{}, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
}
