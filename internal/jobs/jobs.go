// Package jobs is the job tier of the served verification flow: it wraps
// the regress/closure engines in an explicit job lifecycle
// (queued → running → done/failed/cancelled) behind a bounded scheduler, so
// many clients can submit matrix runs into one long-lived process sharing
// one content-addressed result cache. The HTTP surface (internal/api) and
// the dashboard (internal/web) are thin views over this package; nothing in
// it knows about HTTP.
package jobs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/sim"
	"crve/internal/testcases"
	"crve/internal/vcd"
)

// State is a job's lifecycle position.
type State string

const (
	// Queued — accepted, waiting for an executor slot.
	Queued State = "queued"
	// Running — an executor is driving the engine.
	Running State = "running"
	// Done — the run completed; results and the report are available.
	Done State = "done"
	// Failed — the run errored (lint gate, simulation failure, ...).
	Failed State = "failed"
	// Cancelled — the client (or shutdown) cancelled the job before it
	// completed. Work units finished before the cancel remain in the shared
	// cache; nothing else ran.
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Spec is a job submission: which configurations to run, with which tests
// and seeds, and which extras to collect. It is the POST /api/v1/jobs body.
type Spec struct {
	// Matrix selects the standard ≥36-configuration matrix; Quick restricts
	// it to the first 6 (the CI slice).
	Matrix bool `json:"matrix,omitempty"`
	Quick  bool `json:"quick,omitempty"`
	// Configs holds inline HDL-parameter files (the .cfg text format), one
	// configuration each, appended after any matrix selection.
	Configs []string `json:"configs,omitempty"`
	// Tests names the suite subset (default: all twelve generic tests).
	Tests []string `json:"tests,omitempty"`
	// Seeds lists the per-test seeds (default: [1]).
	Seeds []int64 `json:"seeds,omitempty"`
	// NoLint skips the static-analysis gate.
	NoLint bool `json:"nolint,omitempty"`
	// KernelStats collects the simulation-kernel profile per unit.
	KernelStats bool `json:"kernelstats,omitempty"`
	// Kernel selects the simulation backend: "levelized" (default, also the
	// empty string) or "compiled".
	Kernel string `json:"kernel,omitempty"`
	// Lanes batches up to N seeds of one (config, test) pair into a
	// lane-parallel simulator (max 64; 0 = scalar). Per-seed results and
	// reports stay byte-identical to a scalar run.
	Lanes int `json:"lanes,omitempty"`
	// RecordWave keeps compact binary waveform recordings (.crw) per run,
	// served back via GET .../wave/{config}/{test}/{seed}/{view}.
	RecordWave bool `json:"record_wave,omitempty"`
	// Close runs the coverage-closure loop on configurations the suite
	// leaves below 100% functional coverage; MaxIters/Budget bound it.
	Close    bool   `json:"close,omitempty"`
	MaxIters int    `json:"max_iters,omitempty"`
	Budget   uint64 `json:"budget,omitempty"`
}

// resolved is a validated spec: concrete configurations and tests.
type resolved struct {
	cfgs  []nodespec.Config
	tests []core.Test
	seeds []int64
}

// resolve validates the spec into runnable form, so a bad submission fails
// at submit time with a client error, not mid-job.
func (s Spec) resolve() (resolved, error) {
	var r resolved
	if s.Matrix {
		r.cfgs = regress.StandardMatrix()
		if s.Quick {
			r.cfgs = r.cfgs[:6]
		}
	} else if s.Quick {
		return r, fmt.Errorf("jobs: \"quick\" needs \"matrix\"")
	}
	for i, text := range s.Configs {
		cfg, err := regress.ParseConfig(strings.NewReader(text))
		if err != nil {
			return r, fmt.Errorf("jobs: configs[%d]: %w", i, err)
		}
		r.cfgs = append(r.cfgs, cfg)
	}
	if len(r.cfgs) == 0 {
		return r, fmt.Errorf("jobs: empty spec: set \"matrix\" or supply \"configs\"")
	}
	if len(s.Tests) == 0 {
		r.tests = testcases.All()
	} else {
		for _, name := range s.Tests {
			tc, err := testcases.ByName(name)
			if err != nil {
				return r, fmt.Errorf("jobs: %w", err)
			}
			r.tests = append(r.tests, tc)
		}
	}
	r.seeds = s.Seeds
	if len(r.seeds) == 0 {
		r.seeds = []int64{1}
	}
	if _, err := sim.ParseKernel(s.Kernel); err != nil {
		return r, fmt.Errorf("jobs: %w", err)
	}
	if s.Lanes < 0 || s.Lanes > core.MaxLanes {
		return r, fmt.Errorf("jobs: lanes %d out of range [0, %d]", s.Lanes, core.MaxLanes)
	}
	return r, nil
}

// ProgressStatus is the live counter block of a job status.
type ProgressStatus struct {
	// Total is the planned work-unit count; Done counts units merged so
	// far, split into Ran (simulated) and Cached (served from the store).
	Total  int `json:"total"`
	Done   int `json:"done"`
	Ran    int `json:"ran"`
	Cached int `json:"cached"`
	// Cycles totals simulated cycles so far (both views, ran units only);
	// CyclesPerSec is the engine-computed throughput over the job's
	// wall-clock so far.
	Cycles       uint64  `json:"cycles"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Config/Test/Seed identify the most recently merged unit.
	Config string `json:"config,omitempty"`
	Test   string `json:"test,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// Status is a point-in-time snapshot of a job — the GET /api/v1/jobs/{id}
// body and the SSE event payload.
type Status struct {
	ID       string         `json:"id"`
	State    State          `json:"state"`
	Spec     Spec           `json:"spec"`
	Created  time.Time      `json:"created"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Error    string         `json:"error,omitempty"`
	Progress ProgressStatus `json:"progress"`
	// SignedOff/Total summarise the result once the job is done.
	SignedOff int `json:"signed_off,omitempty"`
	Configs   int `json:"configs,omitempty"`
}

// Job is one submitted verification run. All mutable state is behind mu;
// accessors hand out snapshots.
type Job struct {
	ID   string
	Spec Spec

	res resolved

	mu       sync.Mutex
	state    State
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	progress ProgressStatus
	// committed accumulates counters from engine runs that already finished
	// (the base matrix, then each closure loop): live Progress events are
	// relative to one engine run, so the job-level counters are
	// committed + current.
	committed ProgressStatus
	log       strings.Builder
	cancel    func()
	results   []*regress.ConfigResult
	stats     regress.Stats
	report    *regress.Report
	closures  []*core.ClosureTrajectory
	waves     map[string]*vcd.Recording
	subs      map[chan Status]struct{}
	subClosed bool
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{
		ID: j.ID, State: j.state, Spec: j.Spec,
		Created: j.created, Error: j.err, Progress: j.progress,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
		elapsed := time.Since(j.started)
		if !j.finished.IsZero() {
			elapsed = j.finished.Sub(j.started)
		}
		st.Progress.ElapsedMS = elapsed.Milliseconds()
		if elapsed > 0 {
			st.Progress.CyclesPerSec = float64(st.Progress.Cycles) / elapsed.Seconds()
		}
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.results != nil {
		st.Configs = len(j.results)
		for _, cr := range j.results {
			if cr.SignedOff() {
				st.SignedOff++
			}
		}
	}
	return st
}

// Report returns the canonical JSON report, or nil until the job is done.
func (j *Job) Report() *regress.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Results returns the per-configuration aggregates, or nil until done.
func (j *Job) Results() []*regress.ConfigResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results
}

// Stats returns the engine statistics of a finished job.
func (j *Job) Stats() regress.Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Closures returns the coverage-closure trajectories, if the job ran any.
func (j *Job) Closures() []*core.ClosureTrajectory {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closures
}

// Log returns the accumulated progress log.
func (j *Job) Log() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.String()
}

// Wave returns the stored waveform recording for a unit key of the form
// "config/test/seed/view" (view "rtl" or "bca"), or nil.
func (j *Job) Wave(unit string) *vcd.Recording {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.waves[unit]
}

// WaveUnits lists the unit keys with stored recordings, in report order.
func (j *Job) WaveUnits() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	var keys []string
	for _, cr := range j.results {
		for _, run := range cr.Runs {
			for _, view := range []string{"rtl", "bca"} {
				k := waveKey(cr.Cfg.Name, run.Test, run.Seed, view)
				if _, ok := j.waves[k]; ok {
					keys = append(keys, k)
				}
			}
		}
	}
	return keys
}

func waveKey(cfg, test string, seed int64, view string) string {
	return fmt.Sprintf("%s/%s/%d/%s", cfg, test, seed, view)
}

// Subscribe registers for status events: one snapshot per merged work unit
// and per state change, closing after the terminal snapshot. Subscribing to
// a finished job yields exactly the terminal snapshot. The returned cancel
// function is idempotent and must be called when the consumer stops early.
func (j *Job) Subscribe() (<-chan Status, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Status, 16)
	if j.subClosed || j.state.Terminal() {
		ch <- j.statusLocked()
		close(ch)
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// broadcastLocked sends the current status to every subscriber without
// blocking: a slow consumer misses intermediate snapshots, never stalls the
// engine. Callers hold mu.
func (j *Job) broadcastLocked() {
	st := j.statusLocked()
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

// closeSubsLocked delivers the terminal snapshot and closes every
// subscriber. Callers hold mu.
func (j *Job) closeSubsLocked() {
	st := j.statusLocked()
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
		close(ch)
		delete(j.subs, ch)
	}
	j.subClosed = true
}

// onProgress is the engine's injected sink (regress.Options.Progress),
// called from the merge goroutine in canonical order. Events are relative
// to the current engine run; the job adds its committed baseline.
func (j *Job) onProgress(p regress.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.Total = j.committed.Total + p.Total
	j.progress.Done = j.committed.Done + p.Done
	j.progress.Ran = j.committed.Ran + p.Ran
	j.progress.Cached = j.committed.Cached + p.Cached
	j.progress.Cycles = j.committed.Cycles + p.Cycles
	j.progress.Config = p.Config
	j.progress.Test = p.Test
	j.progress.Seed = p.Seed
	j.broadcastLocked()
}

// commit folds a finished engine run's statistics into the committed
// baseline, so the next engine run's relative events stack correctly.
func (j *Job) commit(stats regress.Stats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	units := stats.Ran + stats.Cached
	j.committed.Total += units
	j.committed.Done += units
	j.committed.Ran += stats.Ran
	j.committed.Cached += stats.Cached
	j.committed.Cycles += stats.Cycles
	j.progress = j.committed
	j.broadcastLocked()
}

// jobLog adapts the job to io.Writer for regress.Options.Log.
type jobLog struct{ j *Job }

// logCap bounds the per-job log; runaway logs truncate with a marker rather
// than growing without bound in a long-lived server.
const logCap = 1 << 20

func (w jobLog) Write(p []byte) (int, error) {
	w.j.mu.Lock()
	defer w.j.mu.Unlock()
	if w.j.log.Len() < logCap {
		w.j.log.Write(p)
		if w.j.log.Len() >= logCap {
			w.j.log.WriteString("\n... log truncated ...\n")
		}
	}
	return len(p), nil
}
