package jobs

import (
	"bytes"
	"context"
	"testing"
	"time"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/stbus"
)

// cfgText renders a small, lint-clean configuration as inline .cfg text —
// the form a Spec carries over the wire.
func cfgText(t *testing.T, name string, pipe int) string {
	t.Helper()
	cfg := nodespec.Config{
		Name:    name,
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x800),
		PipeSize: pipe,
	}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return regress.FormatConfig(cfg)
}

// testManager builds a manager over a fresh cache directory.
func testManager(t *testing.T, slots int) *Manager {
	t.Helper()
	cache, err := regress.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(Options{Cache: cache, Slots: slots, Workers: 2})
}

// waitTerminal polls a job to its terminal state.
func waitTerminal(t *testing.T, job *Job) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if st := job.Status(); st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state (stuck at %s)", job.ID, job.Status().State)
	return Status{}
}

func TestSpecValidation(t *testing.T) {
	m := testManager(t, 1)
	for name, spec := range map[string]Spec{
		"empty":              {},
		"quick needs matrix": {Quick: true},
		"unknown test":       {Configs: []string{cfgText(t, "v0", 2)}, Tests: []string{"no_such_test"}},
		"unparsable config":  {Configs: []string{"pipe_size = what"}},
		"negative lanes":     {Configs: []string{cfgText(t, "v1", 2)}, Lanes: -1},
		"too many lanes":     {Configs: []string{cfgText(t, "v2", 2)}, Lanes: 65},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("%s: Submit accepted an invalid spec", name)
		}
	}
}

// TestJobLifecycle drives one job through queued→running→done and checks the
// dedupe contract: an identical second job is served entirely from the
// shared cache.
func TestJobLifecycle(t *testing.T) {
	m := testManager(t, 2)
	spec := Spec{
		Configs: []string{cfgText(t, "lc0", 4)},
		Tests:   []string{"basic_write_read", "error_paths"},
		Seeds:   []int64{1},
	}
	units := 2

	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != Done {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Progress.Done != units || st.Progress.Ran != units || st.Progress.Cached != 0 {
		t.Errorf("cold job progress %+v, want %d done, all ran", st.Progress, units)
	}
	if st.SignedOff != 1 || st.Configs != 1 {
		t.Errorf("signed off %d/%d, want 1/1", st.SignedOff, st.Configs)
	}
	if st.Started == nil || st.Finished == nil {
		t.Error("terminal status must carry started/finished timestamps")
	}
	rep := job.Report()
	if rep == nil || rep.Schema != regress.ReportSchema {
		t.Fatalf("done job report = %+v, want schema %s", rep, regress.ReportSchema)
	}
	if job.Stats().Duration <= 0 {
		t.Error("done job must carry a wall-clock duration")
	}

	// Identical second job: everything cached, zero simulated.
	job2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, job2)
	if st2.State != Done {
		t.Fatalf("second job ended %s (%s), want done", st2.State, st2.Error)
	}
	if st2.Progress.Ran != 0 || st2.Progress.Cached != units {
		t.Errorf("duplicate job progress %+v, want 0 ran, %d cached", st2.Progress, units)
	}

	// Reports agree on everything but the ran/cached split.
	var b1, b2 bytes.Buffer
	rep2 := job2.Report()
	rep.Units, rep2.Units = regress.UnitTotals{}, regress.UnitTotals{}
	for _, r := range [2]*regress.Report{rep, rep2} {
		for i := range r.Configs {
			for j := range r.Configs[i].Runs {
				r.Configs[i].Runs[j].Cached = false
			}
		}
	}
	regress.WriteJSON(&b1, rep)
	regress.WriteJSON(&b2, rep2)
	if b1.String() != b2.String() {
		t.Errorf("cache-served report diverged:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

// TestLaneJobReportMatchesScalar submits the same matrix slice through a
// lane-batched job and a scalar job (separate cold caches, so nothing
// dedupes) and requires byte-identical canonical reports: lane width is a
// service-side performance knob, invisible in every result surface.
func TestLaneJobReportMatchesScalar(t *testing.T) {
	reports := make([]string, 2)
	for i, lanes := range []int{0, 64} {
		m := testManager(t, 1)
		job, err := m.Submit(Spec{
			Configs: []string{cfgText(t, "lj0", 4)},
			Tests:   []string{"basic_write_read", "error_paths"},
			Seeds:   []int64{1, 2, 3},
			Kernel:  "compiled",
			Lanes:   lanes,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, job)
		if st.State != Done {
			t.Fatalf("lanes=%d: job ended %s (%s), want done", lanes, st.State, st.Error)
		}
		var b bytes.Buffer
		regress.WriteJSON(&b, job.Report())
		reports[i] = b.String()
	}
	if reports[0] != reports[1] {
		t.Errorf("lane job report diverged from scalar:\n%s\nvs\n%s", reports[0], reports[1])
	}
}

// TestCancelQueuedAndRunning covers both cancel paths: a job cancelled while
// waiting for a slot goes terminal immediately; a running job unwinds to
// cancelled via its context.
func TestCancelQueuedAndRunning(t *testing.T) {
	m := testManager(t, 1)                                                     // one slot: the second submission queues behind the first
	big := Spec{Configs: []string{cfgText(t, "cr0", 4)}, Seeds: []int64{1, 2}} // all 12 tests × 2 seeds
	running, err := m.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(big)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.Status(); st.State != Cancelled || st.Started != nil {
		t.Errorf("queued job after cancel: %s (started %v), want cancelled and never started", st.State, st.Started)
	}

	// Let the first job actually start, then cancel it mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for running.Status().State == Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, running)
	if st.State != Cancelled && st.State != Done {
		t.Fatalf("running job after cancel ended %s (%s), want cancelled (or done if it outran the cancel)", st.State, st.Error)
	}
	if st.State == Cancelled && st.Progress.Done >= st.Progress.Total {
		t.Errorf("cancelled mid-run but all %d units completed", st.Progress.Total)
	}
	if err := m.Cancel(running.ID); err != nil {
		t.Errorf("cancelling a terminal job must be a no-op, got %v", err)
	}
}

// TestDrain is the graceful-shutdown contract: no new submissions, queued
// jobs cancel, running jobs finish, Drain returns.
func TestDrain(t *testing.T) {
	m := testManager(t, 1)
	spec := Spec{Configs: []string{cfgText(t, "dr0", 2)}, Tests: []string{"basic_write_read"}}
	a, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(Spec{Configs: []string{cfgText(t, "dr1", 2)}, Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, job := range []*Job{a, b} {
		if st := job.Status(); !st.State.Terminal() {
			t.Errorf("job %s still %s after drain", job.ID, st.State)
		}
	}
	if _, err := m.Submit(spec); err == nil {
		t.Error("Submit after Drain must fail")
	}
	if err := m.Drain(ctx); err != nil {
		t.Errorf("second Drain must be a no-op, got %v", err)
	}
}

// TestSubscribe: subscribers see progress and a terminal snapshot; late
// subscribers get exactly the terminal snapshot.
func TestSubscribe(t *testing.T) {
	m := testManager(t, 1)
	job, err := m.Submit(Spec{Configs: []string{cfgText(t, "sub0", 2)}, Tests: []string{"basic_write_read", "error_paths"}})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := job.Subscribe()
	defer cancel()
	var last Status
	sawTerminal := false
	timeout := time.After(60 * time.Second)
	for !sawTerminal {
		select {
		case st, ok := <-ch:
			if !ok {
				sawTerminal = last.State.Terminal()
				if !sawTerminal {
					t.Fatalf("subscription closed at non-terminal state %s", last.State)
				}
			} else {
				last = st
				sawTerminal = st.State.Terminal()
			}
		case <-timeout:
			t.Fatal("no terminal event")
		}
	}
	if last.State != Done {
		t.Fatalf("terminal event state %s (%s), want done", last.State, last.Error)
	}

	late, lateCancel := job.Subscribe()
	defer lateCancel()
	select {
	case st := <-late:
		if st.State != Done {
			t.Errorf("late subscriber got %s, want done", st.State)
		}
	case <-time.After(time.Second):
		t.Error("late subscriber got nothing")
	}
}
