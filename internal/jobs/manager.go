package jobs

// This file is the bounded scheduler: a fixed pool of executor slots pulls
// queued jobs and drives the regress/closure engines under a per-job
// cancellation context. Every job shares the manager's content-addressed
// result cache, so overlapping submissions dedupe at the work-unit level —
// the cache's in-process flight group guarantees a unit is simulated at most
// once even when identical jobs run concurrently.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"crve/internal/closure"
	"crve/internal/core"
	"crve/internal/regress"
	"crve/internal/vcd"
)

// Options configures a Manager.
type Options struct {
	// Cache is the shared result store. Optional but strongly recommended:
	// without it every job simulates everything and nothing dedupes.
	Cache *regress.Cache
	// Workers bounds each job's engine worker pool (0 = GOMAXPROCS).
	Workers int
	// Slots bounds how many jobs run concurrently (default 2).
	Slots int
	// QueueDepth bounds the submission queue (default 256); Submit fails
	// fast when the backlog is full instead of blocking the API.
	QueueDepth int
	// Log, when non-nil, receives one line per job state transition.
	Log io.Writer
}

// Manager owns the job table and the executor pool.
type Manager struct {
	opt Options

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool

	queue     chan *Job
	wg        sync.WaitGroup
	baseCtx   context.Context
	cancelAll context.CancelFunc
}

// NewManager starts a manager with opt.Slots executor goroutines.
func NewManager(opt Options) *Manager {
	if opt.Slots <= 0 {
		opt.Slots = 2
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opt:       opt,
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, opt.QueueDepth),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	for i := 0; i < opt.Slots; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for job := range m.queue {
				m.execute(job)
			}
		}()
	}
	return m
}

// Submit validates spec, registers a queued job and hands it to the
// executor pool. A spec that cannot resolve (unknown test, bad config text,
// nothing to run) fails here, before a job ID exists.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	res, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: manager is draining, not accepting jobs")
	}
	m.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j%04d", m.nextID),
		Spec:    spec,
		res:     res,
		state:   Queued,
		created: time.Now(),
		subs:    make(map[chan Status]struct{}),
		waves:   make(map[string]*vcd.Recording),
	}
	job.progress.Total = len(res.cfgs) * len(res.tests) * len(res.seeds)
	// Enqueue under the lock: Drain closes the queue under the same lock,
	// so a submission can never race a send onto a closed channel.
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: queue full (%d pending)", cap(m.queue))
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.mu.Unlock()
	m.logf("job %s queued (%d configs, %d tests, %d seeds)",
		job.ID, len(res.cfgs), len(res.tests), len(res.seeds))
	return job, nil
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cache exposes the shared result store (nil when the manager runs
// cacheless).
func (m *Manager) Cache() *regress.Cache { return m.opt.Cache }

// Cancel stops a job: a queued job goes terminal immediately (the executor
// skips it), a running job has its context cancelled and reaches the
// cancelled state once the engine unwinds. Cancelling a terminal job is a
// no-op.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", id)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	switch {
	case job.state == Queued:
		job.state = Cancelled
		job.finished = time.Now()
		job.closeSubsLocked()
		m.logf("job %s cancelled while queued", job.ID)
	case job.state == Running && job.cancel != nil:
		job.cancel()
		m.logf("job %s cancel requested", job.ID)
	}
	return nil
}

// Drain stops accepting submissions, cancels everything still queued and
// waits for running jobs to finish — the graceful-shutdown path. If ctx
// expires first, running jobs are cancelled and the drain waits for them to
// unwind to their terminal states.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	ids := append([]string(nil), m.order...)
	// Close under the lock — see Submit for the pairing.
	close(m.queue)
	m.mu.Unlock()

	// Queued jobs will never get a slot once the queue closes; cancel them
	// so clients see a terminal state instead of an eternal "queued".
	for _, id := range ids {
		if job, ok := m.Get(id); ok {
			job.mu.Lock()
			if job.state == Queued {
				job.state = Cancelled
				job.finished = time.Now()
				job.closeSubsLocked()
			}
			job.mu.Unlock()
		}
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancelAll()
		<-done
		return ctx.Err()
	}
}

// execute drives one job start to finish on an executor slot.
func (m *Manager) execute(job *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.state != Queued { // cancelled while waiting for a slot
		job.mu.Unlock()
		return
	}
	job.state = Running
	job.started = time.Now()
	job.cancel = cancel
	job.broadcastLocked()
	job.mu.Unlock()
	m.logf("job %s running", job.ID)

	results, stats, err := regress.RunCtx(ctx, job.res.cfgs, regress.Options{
		Tests: job.res.tests, Seeds: job.res.seeds,
		NoLint: job.Spec.NoLint, Workers: m.opt.Workers, Cache: m.opt.Cache,
		KernelStats: job.Spec.KernelStats, Kernel: job.Spec.Kernel,
		Lanes:      job.Spec.Lanes,
		RecordWave: job.Spec.RecordWave,
		Log:        jobLog{job}, Progress: job.onProgress,
	})
	if err == nil {
		job.commit(stats)
		if job.Spec.Close {
			err = m.runClosure(ctx, job, results, &stats)
		}
	}
	m.finish(job, results, stats, err)
}

// runClosure runs the coverage-closure loop on every configuration the
// suite left below full functional coverage, accumulating trajectories and
// unit statistics into the job.
func (m *Manager) runClosure(ctx context.Context, job *Job, results []*regress.ConfigResult, stats *regress.Stats) error {
	for _, cr := range results {
		if cr.SuiteCoverage.Full() {
			continue
		}
		res, err := closure.CloseGroupCtx(ctx, cr.Cfg, cr.SuiteCoverage, closure.Options{
			Seeds: job.res.seeds, Workers: m.opt.Workers, Cache: m.opt.Cache,
			MaxIters: job.Spec.MaxIters, Budget: job.Spec.Budget, Log: jobLog{job},
		})
		if err != nil {
			return err
		}
		cs := res.ClosureStats
		stats.Ran += cs.Ran
		stats.Cached += cs.Cached
		job.mu.Lock()
		job.closures = append(job.closures, res.Trajectory)
		job.mu.Unlock()
		job.commit(regress.Stats{Ran: cs.Ran, Cached: cs.Cached, Cycles: res.Trajectory.TotalCycles})
	}
	return nil
}

// finish moves the job to its terminal state, builds the canonical report
// and the waveform index, and releases subscribers.
func (m *Manager) finish(job *Job, results []*regress.ConfigResult, stats regress.Stats, err error) {
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	job.cancel = nil
	switch {
	case err == nil:
		job.state = Done
		job.results = results
		job.stats = stats
		job.stats.Duration = job.finished.Sub(job.started)
		job.report = regress.BuildReport(results, job.stats)
		for _, cr := range results {
			for _, run := range cr.Runs {
				for view, r := range map[string]*core.RunResult{"rtl": run.Pair.RTL, "bca": run.Pair.BCA} {
					if r.Wave != nil {
						job.waves[waveKey(cr.Cfg.Name, run.Test, run.Seed, view)] = r.Wave
					}
				}
			}
		}
	case errors.Is(err, context.Canceled):
		job.state = Cancelled
		job.err = err.Error()
	default:
		job.state = Failed
		job.err = err.Error()
	}
	job.closeSubsLocked()
	m.logf("job %s %s", job.ID, job.state)
}

func (m *Manager) logf(format string, args ...any) {
	if m.opt.Log != nil {
		fmt.Fprintf(m.opt.Log, "regressd: "+format+"\n", args...)
	}
}
