package catg

import (
	"crve/internal/stbus"
)

// TxAssembler is the signal-independent core of a Monitor: it reconstructs
// transactions from a stream of request-cell and response-cell transfer
// events at one port. The signal-level Monitor feeds it from sampled wires;
// the transaction-level bench (internal/tlm, the paper's future-work "ports
// approach") feeds it from function-call events. Using one assembler for
// both guarantees the two bench styles report identical transactions.
type TxAssembler struct {
	// Cfg is the port configuration (protocol type, width, endianness).
	Cfg stbus.PortConfig
	// Index is the port's position on its side of the DUT.
	Index int
	// InitiatorSide is true for DUT initiator-facing ports.
	InitiatorSide bool
	// Route classifies first-cell addresses (nil on target-side ports).
	Route RouteFunc

	// Completed transactions in completion order.
	Completed []*stbus.Transaction
	listeners []func(*stbus.Transaction)

	reqCells  []stbus.Cell
	reqStart  uint64
	pending   []*pendingTx
	respCells []stbus.RespCell
	seq       uint64

	lastCompletedSeq uint64
}

// NewTxAssembler builds an assembler for one port.
func NewTxAssembler(cfg stbus.PortConfig, index int, initiatorSide bool, route RouteFunc) *TxAssembler {
	return &TxAssembler{Cfg: cfg.WithDefaults(), Index: index, InitiatorSide: initiatorSide, Route: route}
}

// OnComplete registers a transaction listener.
func (a *TxAssembler) OnComplete(fn func(*stbus.Transaction)) {
	a.listeners = append(a.listeners, fn)
}

// ReqCell records one granted request cell at cycle cyc.
func (a *TxAssembler) ReqCell(cyc uint64, cell stbus.Cell) {
	if len(a.reqCells) == 0 {
		a.reqStart = cyc
	}
	a.reqCells = append(a.reqCells, cell)
	if cell.EOP {
		a.finishRequest(cyc)
	}
}

// RespCell records one granted response cell at cycle cyc.
func (a *TxAssembler) RespCell(cyc uint64, cell stbus.RespCell) {
	a.respCells = append(a.respCells, cell)
	if cell.EOP {
		a.finishResponse(cyc)
	}
}

func (a *TxAssembler) finishRequest(cyc uint64) {
	first := a.reqCells[0]
	tr := &stbus.Transaction{
		Initiator:   -1,
		Target:      -1,
		Opc:         first.Opc,
		Addr:        first.Addr,
		TID:         first.TID,
		Src:         first.Src,
		Pri:         first.Pri,
		Lck:         first.Lck,
		StartCycle:  a.reqStart,
		ReqEndCycle: cyc,
	}
	if a.InitiatorSide {
		tr.Initiator = a.Index
	}
	if a.Route != nil {
		tr.Target = a.Route(first.Addr)
	} else if !a.InitiatorSide {
		tr.Target = a.Index
	}
	if first.Opc.HasWriteData() {
		tr.WriteData = stbus.ExtractWriteData(a.Cfg.Endian, a.reqCells, a.Cfg.BusBytes())
	}
	a.seq++
	a.pending = append(a.pending, &pendingTx{tr: tr, reqOp: first.Opc, reqAddr: first.Addr, seq: a.seq})
	// Nothing above retains the cell slice (ExtractWriteData copies), so the
	// buffer is reused across packets instead of reallocated.
	a.reqCells = a.reqCells[:0]
}

func (a *TxAssembler) finishResponse(cyc uint64) {
	// cells stays valid through this call — the next RespCell append that
	// could overwrite the backing array happens only after it returns — and
	// ExtractReadData copies, so the buffer is reused across packets.
	cells := a.respCells
	a.respCells = a.respCells[:0]
	first := cells[0]
	// Pair with a pending request: Type III matches on (src, tid); the
	// ordered protocols take the oldest pending request.
	idx := -1
	if a.Cfg.Type == stbus.Type3 {
		for k, pt := range a.pending {
			if pt.tr.Src == first.Src && pt.tr.TID == first.TID {
				idx = k
				break
			}
		}
	} else if len(a.pending) > 0 {
		idx = 0
	}
	if idx < 0 {
		// Orphan response: surface it as an anonymous errored transaction so
		// the checker and scoreboard can flag it.
		tr := &stbus.Transaction{Initiator: -1, Target: -1, TID: first.TID, Src: first.Src,
			Err: true, StartCycle: cyc, EndCycle: cyc}
		a.complete(tr)
		return
	}
	pt := a.pending[idx]
	a.pending = append(a.pending[:idx], a.pending[idx+1:]...)
	a.lastCompletedSeq = pt.seq
	tr := pt.tr
	tr.EndCycle = cyc
	for _, c := range cells {
		if c.Err() {
			tr.Err = true
		}
	}
	if pt.reqOp.IsLoad() && !tr.Err {
		tr.ReadData = stbus.ExtractReadData(a.Cfg.Endian, pt.reqOp, pt.reqAddr, cells, a.Cfg.BusBytes())
	}
	a.complete(tr)
}

func (a *TxAssembler) complete(tr *stbus.Transaction) {
	a.Completed = append(a.Completed, tr)
	for _, fn := range a.listeners {
		fn(tr)
	}
}

// LastCompletedSeq returns the issue sequence number of the most recently
// completed transaction (0 before any completion or for orphan responses).
func (a *TxAssembler) LastCompletedSeq() uint64 { return a.lastCompletedSeq }

// PendingCount returns the number of request packets awaiting a response.
func (a *TxAssembler) PendingCount() int { return len(a.pending) }

// OldestPendingSeq returns the issue sequence number of the oldest pending
// transaction (0 when none).
func (a *TxAssembler) OldestPendingSeq() uint64 {
	if len(a.pending) == 0 {
		return 0
	}
	oldest := a.pending[0].seq
	for _, pt := range a.pending {
		if pt.seq < oldest {
			oldest = pt.seq
		}
	}
	return oldest
}
