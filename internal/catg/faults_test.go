package catg

import (
	"testing"

	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// TestFaultRigQualifiesEveryCheckerRule is the verification-of-the-
// verification suite: for every injectable protocol fault, the port checker
// must flag exactly the rule the fault targets. This is how the paper's flow
// debugs the environment itself before trusting it on the models.
func TestFaultRigQualifiesEveryCheckerRule(t *testing.T) {
	for _, f := range AllFaults() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := nodeCfg(1, 1)
			sm := sim.New()
			n, err := rtl.NewNode(sim.Root(sm), cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Multi-cell stores so packet-shape faults have room, plus a
			// slow target so handshake faults get a waiting window.
			tc := TrafficConfig{Ops: 8, Kinds: []stbus.OpKind{stbus.KindStore}, Sizes: []int{16}}
			ops := GenerateOps(cfg, tc, 0, 11)
			ops = InjectFault(ops, 2, f)
			ck := NewChecker(sm, n.Init[0], cfg, true, NodeRouter(cfg, 0))
			NewTargetBFM(sm, n.Tgt[0], TargetConfig{MinLatency: 4, MaxLatency: 4, GntGapPct: 60}, 3)
			bfm := NewFaultyInitiatorBFM(sm, n.Init[0], ops, f, 2)
			// A violated protocol may wedge the DUT; run bounded.
			_ = sm.RunUntil(bfm.Done, 4000)
			found := false
			for _, v := range ck.Violations {
				if v.Rule == f.CheckerRule() {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("fault %v did not trigger rule %q; violations: %v",
					f, f.CheckerRule(), ck.Violations)
			}
		})
	}
}

// TestFaultRigCleanWhenNoFault: the rig with FaultNone behaves like a plain
// BFM and triggers nothing.
func TestFaultRigCleanWhenNoFault(t *testing.T) {
	cfg := nodeCfg(1, 1)
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := GenerateOps(cfg, TrafficConfig{Ops: 10}, 0, 4)
	ck := NewChecker(sm, n.Init[0], cfg, true, NodeRouter(cfg, 0))
	NewTargetBFM(sm, n.Tgt[0], TargetConfig{MinLatency: 2, MaxLatency: 4}, 3)
	bfm := NewFaultyInitiatorBFM(sm, n.Init[0], ops, FaultNone, 2)
	if err := sm.RunUntil(bfm.Done, 4000); err != nil {
		t.Fatal(err)
	}
	if !ck.Passed() {
		t.Errorf("clean rig triggered: %v", ck.Violations)
	}
	if bfm.Injected() {
		t.Error("FaultNone should never inject")
	}
}

func TestInjectFaultLeavesOriginalUntouched(t *testing.T) {
	cfg := nodeCfg(1, 1)
	ops := GenerateOps(cfg, TrafficConfig{Ops: 5, Kinds: []stbus.OpKind{stbus.KindStore}, Sizes: []int{16}}, 0, 9)
	origLen := len(ops[2].Cells)
	mut := InjectFault(ops, 2, FaultShortPacket)
	if len(ops[2].Cells) != origLen {
		t.Error("InjectFault mutated the source stream")
	}
	if len(mut[2].Cells) != origLen-1 {
		t.Errorf("short-packet fault: %d cells, want %d", len(mut[2].Cells), origLen-1)
	}
	// Out-of-range packet index is a no-op.
	same := InjectFault(ops, 99, FaultShortPacket)
	if len(same[2].Cells) != origLen {
		t.Error("out-of-range injection should be a no-op")
	}
}

func TestFaultStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range AllFaults() {
		if f.String() == "" || seen[f.String()] {
			t.Errorf("bad fault name %q", f.String())
		}
		seen[f.String()] = true
		if f.CheckerRule() == "" {
			t.Errorf("fault %v has no rule", f)
		}
	}
	if FaultNone.CheckerRule() != "" || FaultNone.String() != "none" {
		t.Error("FaultNone descriptors")
	}
}
