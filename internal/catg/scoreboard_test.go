package catg

import (
	"strings"
	"testing"

	"crve/internal/stbus"
)

func sbFixture() (*Scoreboard, func(tr stbus.Transaction), func(tr stbus.Transaction)) {
	cfg := nodeCfg(2, 2)
	cfg.ProgPort = true
	cfg.ProgBase = 0x10_0000
	sb := NewScoreboard(cfg, nil, nil)
	addInit := func(tr stbus.Transaction) { sb.AddInitiatorTransaction(&tr) }
	addTgt := func(tr stbus.Transaction) { sb.AddTargetTransaction(&tr) }
	return sb, addInit, addTgt
}

func TestScoreboardMatchesCleanStreams(t *testing.T) {
	sb, addInit, addTgt := sbFixture()
	tr := stbus.Transaction{
		Initiator: 0, Target: 1, Opc: stbus.ST4, Addr: 0x2000,
		TID: 3, Src: 0, WriteData: []byte{1, 2, 3, 4},
	}
	addInit(tr)
	tt := tr
	tt.Initiator = -1
	addTgt(tt)
	if errs := sb.Check(); len(errs) != 0 {
		t.Fatalf("clean match flagged: %v", errs)
	}
}

func TestScoreboardDetectsWriteCorruption(t *testing.T) {
	sb, addInit, addTgt := sbFixture()
	tr := stbus.Transaction{Initiator: 0, Target: 0, Opc: stbus.ST4, Addr: 0x1000,
		TID: 1, WriteData: []byte{1, 2, 3, 4}}
	addInit(tr)
	tt := tr
	tt.WriteData = []byte{1, 2, 3, 5} // corrupted through the DUT
	addTgt(tt)
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "write data corrupted") {
		t.Fatalf("corruption not flagged: %v", errs)
	}
}

func TestScoreboardDetectsReadCorruption(t *testing.T) {
	sb, addInit, addTgt := sbFixture()
	tr := stbus.Transaction{Initiator: 0, Target: 0, Opc: stbus.LD4, Addr: 0x1000,
		TID: 1, ReadData: []byte{9, 9, 9, 9}}
	addInit(tr)
	tt := tr
	tt.ReadData = []byte{9, 9, 9, 8}
	addTgt(tt)
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "read data corrupted") {
		t.Fatalf("read corruption not flagged: %v", errs)
	}
}

func TestScoreboardDetectsMissingTargetSide(t *testing.T) {
	sb, addInit, _ := sbFixture()
	addInit(stbus.Transaction{Initiator: 0, Target: 1, Opc: stbus.LD4, Addr: 0x2000, TID: 2})
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "never observed at target side") {
		t.Fatalf("lost transaction not flagged: %v", errs)
	}
}

func TestScoreboardDetectsPhantomTargetSide(t *testing.T) {
	sb, _, addTgt := sbFixture()
	addTgt(stbus.Transaction{Target: 0, Opc: stbus.LD4, Addr: 0x1000, TID: 2})
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "never requested") {
		t.Fatalf("phantom transaction not flagged: %v", errs)
	}
}

func TestScoreboardUnmappedMustError(t *testing.T) {
	sb, addInit, _ := sbFixture()
	addInit(stbus.Transaction{Initiator: 0, Target: RouteUnmapped, Opc: stbus.LD4,
		Addr: 0xF000_0000, TID: 1, Err: false})
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "unmapped access must error") {
		t.Fatalf("unmapped without error not flagged: %v", errs)
	}
}

func TestScoreboardProgModel(t *testing.T) {
	sb, addInit, _ := sbFixture()
	base := uint64(0x10_0000)
	// Write 0x05 to reg 0, then a matching readback: clean.
	addInit(stbus.Transaction{Initiator: 0, Target: RouteProg, Opc: stbus.ST4,
		Addr: base, TID: 1, WriteData: []byte{0x05, 0, 0, 0}})
	addInit(stbus.Transaction{Initiator: 0, Target: RouteProg, Opc: stbus.LD4,
		Addr: base, TID: 2, ReadData: []byte{0x05, 0, 0, 0}})
	if errs := sb.Check(); len(errs) != 0 {
		t.Fatalf("clean prog sequence flagged: %v", errs)
	}
}

func TestScoreboardProgReadbackMismatch(t *testing.T) {
	sb, addInit, _ := sbFixture()
	base := uint64(0x10_0000)
	addInit(stbus.Transaction{Initiator: 0, Target: RouteProg, Opc: stbus.ST4,
		Addr: base, TID: 1, WriteData: []byte{0x05, 0, 0, 0}})
	addInit(stbus.Transaction{Initiator: 0, Target: RouteProg, Opc: stbus.LD4,
		Addr: base, TID: 2, ReadData: []byte{0x07, 0, 0, 0}})
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "register readback") {
		t.Fatalf("prog readback mismatch not flagged: %v", errs)
	}
}

func TestScoreboardProgIllegalMustError(t *testing.T) {
	sb, addInit, _ := sbFixture()
	addInit(stbus.Transaction{Initiator: 0, Target: RouteProg, Opc: stbus.ST8,
		Addr: 0x10_0000, TID: 1, WriteData: make([]byte, 8), Err: false})
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "illegal programming access") {
		t.Fatalf("illegal prog access not flagged: %v", errs)
	}
}

func TestScoreboardErrorFlagMismatch(t *testing.T) {
	sb, addInit, addTgt := sbFixture()
	tr := stbus.Transaction{Initiator: 0, Target: 0, Opc: stbus.LD4, Addr: 0x1000, TID: 1, Err: true}
	addInit(tr)
	tt := tr
	tt.Err = false
	addTgt(tt)
	errs := sb.Check()
	if len(errs) != 1 || !strings.Contains(errs[0], "error flag changed") {
		t.Fatalf("error-flag mismatch not flagged: %v", errs)
	}
}

func TestScoreboardAccessors(t *testing.T) {
	sb, addInit, addTgt := sbFixture()
	addInit(stbus.Transaction{Initiator: 0, Target: RouteUnmapped, Err: true})
	addTgt(stbus.Transaction{Target: 0, Opc: stbus.LD4})
	if len(sb.InitTransactions()) != 1 || len(sb.TgtTransactions()) != 1 {
		t.Error("accessors wrong")
	}
}
