// Package catg is this repository's equivalent of the paper's CATG library
// ("Checkers and Automatic Test Generation"): a generic verification
// component library for IPs with STBus interfaces. It provides
//
//   - harness BFMs: a constrained-random initiator and a memory-modelling
//     target, both seeded so that the same test file and seed produce the
//     same stimulus on the RTL and the BCA view;
//   - monitors that reconstruct transactions from port signals;
//   - protocol checkers enforcing the STBus interface rules;
//   - a scoreboard checking data integrity through the DUT;
//   - a functional-coverage model derived from the DUT and traffic
//     configuration.
//
// Everything is configurable "according to the DUT configuration, in terms
// of bus size, protocol bus type, pipe size, endianess and some other
// parameters" (paper, Section 4).
package catg

import (
	"math/rand"

	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// TrafficConfig constrains the random stimulus of one initiator BFM: it is
// the machine-readable form of a CATG test file.
type TrafficConfig struct {
	// Ops is the number of operations to issue.
	Ops int
	// Kinds are the operation classes to draw from (default load+store).
	Kinds []stbus.OpKind
	// Sizes are the operand sizes in bytes to draw from (default 1..32).
	Sizes []int
	// Targets restricts generated addresses to these target indices
	// (default: every target reachable through the address map).
	Targets []int
	// UnmappedPct is the percentage of operations aimed at unmapped
	// addresses (error-path coverage).
	UnmappedPct int
	// ProgPct is the percentage of operations aimed at the programming
	// region (only meaningful when the DUT has a programming port).
	ProgPct int
	// ChunkPct is the percentage of operations that open a two-packet lck
	// chunk to one target.
	ChunkPct int
	// IdlePct is the percentage chance of an idle gap (1..4 cycles) before
	// an operation.
	IdlePct int
	// PriMax bounds the random request priority field.
	PriMax uint8
}

// WithDefaults fills zero-valued fields.
func (tc TrafficConfig) WithDefaults() TrafficConfig {
	if tc.Ops == 0 {
		tc.Ops = 50
	}
	if len(tc.Kinds) == 0 {
		tc.Kinds = []stbus.OpKind{stbus.KindLoad, stbus.KindStore}
	}
	if len(tc.Sizes) == 0 {
		tc.Sizes = []int{1, 2, 4, 8, 16, 32}
	}
	return tc
}

// Op is one generated operation: a request packet plus the idle gap that
// precedes it.
type Op struct {
	Cells      []stbus.Cell
	IdleBefore int
}

// GenerateOps produces the deterministic stimulus of initiator initIdx for
// the given DUT configuration, traffic constraints and seed. The same
// arguments always yield the same operation list — the property that lets
// the paper apply "same test cases on both [models] with same seeds".
func GenerateOps(node nodespec.Config, tc TrafficConfig, initIdx int, seed int64) []Op {
	node = node.WithDefaults()
	tc = tc.WithDefaults()
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(initIdx)*7919))
	targets := tc.Targets
	if len(targets) == 0 {
		for t := 0; t < node.NumTgt; t++ {
			if node.Connected(initIdx, t) {
				targets = append(targets, t)
			}
		}
	}
	var ops []Op
	tid := uint8(0)
	nextTID := func() uint8 {
		v := tid
		tid = (tid + 1) % 64
		return v
	}
	buildOne := func(op stbus.Opcode, addr uint64, lck bool) (Op, bool) {
		var payload []byte
		if op.HasWriteData() {
			payload = make([]byte, op.SizeBytes())
			rng.Read(payload)
		}
		cells, err := stbus.BuildRequest(node.Port.Type, node.Port.Endian, op, addr, payload,
			node.Port.BusBytes(), nextTID(), uint8(initIdx), uint8(rng.Intn(int(tc.PriMax)+1)), lck)
		if err != nil {
			return Op{}, false
		}
		o := Op{Cells: cells}
		if rng.Intn(100) < tc.IdlePct {
			o.IdleBefore = 1 + rng.Intn(4)
		}
		return o, true
	}
	pickOp := func() stbus.Opcode {
		for {
			k := tc.Kinds[rng.Intn(len(tc.Kinds))]
			size := tc.Sizes[rng.Intn(len(tc.Sizes))]
			// RMW and swap are word-sized atomics.
			if (k == stbus.KindRMW || k == stbus.KindSwap) && size > 8 {
				size = 4
			}
			op := stbus.Op(k, size)
			if op.ValidFor(node.Port.Type, node.Port.BusBytes()) {
				return op
			}
		}
	}
	addrIn := func(t int, size int) uint64 {
		var regions []stbus.Region
		for _, r := range node.Map {
			if r.Target == t && r.Size >= uint64(size) {
				regions = append(regions, r)
			}
		}
		if len(regions) == 0 {
			return 0
		}
		r := regions[rng.Intn(len(regions))]
		slots := r.Size / uint64(size)
		return r.Base + (uint64(rng.Int63())%slots)*uint64(size)
	}
	for len(ops) < tc.Ops {
		roll := rng.Intn(100)
		switch {
		case roll < tc.UnmappedPct:
			op := stbus.Op(stbus.KindLoad, 4)
			if rng.Intn(2) == 1 {
				op = stbus.Op(stbus.KindStore, 4)
			}
			// Far above every mapped region and the programming window.
			addr := (uint64(0xF000_0000) + uint64(rng.Intn(1<<16))*4) & ^uint64(3)
			if o, ok := buildOne(op, addr, false); ok {
				ops = append(ops, o)
			}
		case node.ProgPort && roll < tc.UnmappedPct+tc.ProgPct:
			// Each initiator programs only its own priority register, so the
			// scoreboard's register model stays race-free under concurrent
			// traffic.
			addr := node.ProgBase + uint64(4*initIdx)
			op := stbus.LD4
			if rng.Intn(2) == 1 {
				op = stbus.ST4
			}
			if node.ProgBase%8 == 0 && rng.Intn(4) == 0 {
				// Illegal programming access (wrong operation size): the
				// register decoder must answer it with an error response.
				op = stbus.Op(op.Kind(), 8)
				addr = node.ProgBase
			}
			if o, ok := buildOne(op, addr, false); ok {
				ops = append(ops, o)
			}
		case len(targets) > 0 && len(ops) < tc.Ops-1 && roll < tc.UnmappedPct+tc.ProgPct+tc.ChunkPct:
			// A two-packet chunk to one target.
			t := targets[rng.Intn(len(targets))]
			op := pickOp()
			a1 := addrIn(t, op.SizeBytes())
			a2 := addrIn(t, op.SizeBytes())
			o1, ok1 := buildOne(op, a1, true)
			o2, ok2 := buildOne(op, a2, false)
			if ok1 && ok2 {
				o2.IdleBefore = 0 // chunks stream back to back
				ops = append(ops, o1, o2)
			}
		default:
			if len(targets) == 0 {
				// Nothing reachable: fall back to error traffic so the test
				// still exercises the port.
				if o, ok := buildOne(stbus.LD4, 0xF000_0000, false); ok {
					ops = append(ops, o)
				}
				continue
			}
			t := targets[rng.Intn(len(targets))]
			op := pickOp()
			if o, ok := buildOne(op, addrIn(t, op.SizeBytes()), false); ok {
				ops = append(ops, o)
			}
		}
	}
	return ops[:tc.Ops]
}
