package catg

import (
	"fmt"
	"sort"

	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// CoverageModel is the CATG functional-coverage model: a coverage group
// whose bins are derived from the DUT configuration and the traffic
// constraints, so that every declared bin is reachable and "full functional
// coverage" (the paper's sign-off criterion) is a meaningful target.
//
// It samples initiator-side monitors and per-cycle contention; because its
// input is only what the monitors observe at the ports, the same tests with
// the same seeds produce identical coverage on the RTL and the BCA view —
// the equality the paper requires.
type CoverageModel struct {
	Group *coverage.Group

	node nodespec.Config
	tc   TrafficConfig

	hasUnmapped bool
	hasProg     bool
	hasChunk    bool
	hasOOO      bool
	multiInit   bool
}

// reachableOps lists the distinct opcodes the generator can emit.
func reachableOps(node nodespec.Config, tc TrafficConfig) []stbus.Opcode {
	seen := map[stbus.Opcode]bool{}
	var out []stbus.Opcode
	add := func(op stbus.Opcode) {
		if !seen[op] && op.ValidFor(node.Port.Type, node.Port.BusBytes()) {
			seen[op] = true
			out = append(out, op)
		}
	}
	for _, k := range tc.Kinds {
		for _, size := range tc.Sizes {
			if (k == stbus.KindRMW || k == stbus.KindSwap) && size > 8 {
				size = 4
			}
			add(stbus.Op(k, size))
		}
	}
	if tc.UnmappedPct > 0 {
		add(stbus.LD4)
		add(stbus.ST4)
	}
	if tc.ProgPct > 0 && node.ProgPort {
		add(stbus.LD4)
		add(stbus.ST4)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewCoverageModel declares the coverage group for the given DUT and traffic
// configuration.
func NewCoverageModel(node nodespec.Config, tc TrafficConfig) *CoverageModel {
	node = node.WithDefaults()
	tc = tc.WithDefaults()
	cm := &CoverageModel{
		Group:       coverage.NewGroup("catg." + node.Name),
		node:        node,
		tc:          tc,
		hasUnmapped: tc.UnmappedPct > 0,
		hasProg:     tc.ProgPct > 0 && node.ProgPort,
		hasChunk:    tc.ChunkPct > 0,
		multiInit:   node.NumInit > 1,
	}
	cm.hasOOO = node.Port.Type == stbus.Type3 && node.NumTgt > 1 && node.PipeSize > 1
	g := cm.Group

	var opBins []string
	for _, op := range reachableOps(node, tc) {
		opBins = append(opBins, op.String())
	}
	g.Item("opcode", opBins...)

	var initBins []string
	for i := 0; i < node.NumInit; i++ {
		initBins = append(initBins, fmt.Sprintf("init%d", i))
	}
	g.Item("initiator", initBins...)

	var routeBins []string
	reach := map[int]bool{}
	for i := 0; i < node.NumInit; i++ {
		for t := 0; t < node.NumTgt; t++ {
			if node.Connected(i, t) {
				reach[t] = true
			}
		}
	}
	for t := 0; t < node.NumTgt; t++ {
		if reach[t] {
			routeBins = append(routeBins, fmt.Sprintf("tgt%d", t))
		}
	}
	if cm.hasUnmapped {
		routeBins = append(routeBins, "unmapped")
	}
	if cm.hasProg {
		routeBins = append(routeBins, "prog")
	}
	g.Item("route", routeBins...)

	// Cross initiator × reachable route (only pairs the generator can emit).
	var crossBins []string
	for i := 0; i < node.NumInit; i++ {
		for t := 0; t < node.NumTgt; t++ {
			if node.Connected(i, t) {
				crossBins = append(crossBins, fmt.Sprintf("init%d×tgt%d", i, t))
			}
		}
	}
	g.Item("init_x_route", crossBins...)

	// Achievable request packet lengths.
	lens := map[int]bool{}
	for _, op := range reachableOps(node, tc) {
		lens[stbus.ReqLen(node.Port.Type, op, node.Port.BusBytes())] = true
	}
	var lenBins []string
	var ls []int
	for l := range lens {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	for _, l := range ls {
		lenBins = append(lenBins, fmt.Sprintf("%dcell", l))
	}
	g.Item("req_pkt_len", lenBins...)

	respBins := []string{"ok"}
	if cm.hasUnmapped {
		respBins = append(respBins, "err")
	}
	g.Item("response", respBins...)

	if cm.hasChunk {
		g.Item("chunk", "plain", "locked")
	}
	if cm.hasOOO {
		g.Item("completion_order", "in_order", "reordered")
	}
	if cm.multiInit {
		g.Item("contention", "solo", "concurrent")
	}
	g.Item("latency", "lt5", "lt10", "lt20", "ge20")
	return cm
}

// SubscribeMonitors wires the model to the DUT's initiator-side monitors and
// registers its per-cycle contention sampler.
func (cm *CoverageModel) SubscribeMonitors(sm *sim.Simulator, initMons []*Monitor) {
	for _, m := range initMons {
		m := m
		m.OnComplete(func(tr *stbus.Transaction) {
			cm.SampleTransaction(tr, m.LastCompletedSeq(), m.OldestPendingSeq())
		})
	}
	if cm.multiInit {
		sm.AtCycleEnd(func() {
			// Contention counts simultaneous requests (not grants): a shared
			// bus grants at most one initiator per cycle, but its arbiter
			// still sees concurrent requests.
			n := 0
			for _, m := range initMons {
				if m.Port.Req.Bool() {
					n++
				}
			}
			cm.SampleContention(n)
		})
	}
}

// SampleContention records one cycle's count of requesting initiators.
func (cm *CoverageModel) SampleContention(requesting int) {
	if !cm.multiInit {
		return
	}
	switch {
	case requesting > 1:
		cm.Group.MustItem("contention").Hit("concurrent")
	case requesting == 1:
		cm.Group.MustItem("contention").Hit("solo")
	}
}

// SampleTransaction records one completed initiator-side transaction.
// completedSeq is the transaction's issue sequence number and oldestPending
// the oldest still-pending issue number at its port (0 when none) — the pair
// the out-of-order detector needs. Both a signal-level Monitor and the
// transaction-level bench (internal/tlm) feed this entry point.
func (cm *CoverageModel) SampleTransaction(tr *stbus.Transaction, completedSeq, oldestPending uint64) {
	g := cm.Group
	g.MustItem("opcode").HitOK(tr.Opc.String())
	if tr.Initiator >= 0 {
		g.MustItem("initiator").HitOK(fmt.Sprintf("init%d", tr.Initiator))
	}
	switch {
	case tr.Target >= 0:
		g.MustItem("route").HitOK(fmt.Sprintf("tgt%d", tr.Target))
		g.MustItem("init_x_route").HitOK(fmt.Sprintf("init%d×tgt%d", tr.Initiator, tr.Target))
	case tr.Target == RouteUnmapped:
		g.MustItem("route").HitOK("unmapped")
	case tr.Target == RouteProg:
		g.MustItem("route").HitOK("prog")
	}
	if tr.Opc.Valid() {
		l := stbus.ReqLen(cm.node.Port.Type, tr.Opc, cm.node.Port.BusBytes())
		g.MustItem("req_pkt_len").HitOK(fmt.Sprintf("%dcell", l))
	}
	if tr.Err {
		g.MustItem("response").HitOK("err")
	} else {
		g.MustItem("response").HitOK("ok")
	}
	if cm.hasChunk {
		if tr.Lck {
			g.MustItem("chunk").Hit("locked")
		} else {
			g.MustItem("chunk").Hit("plain")
		}
	}
	if cm.hasOOO {
		// Reordered when an older pending transaction still waits while this
		// one completes.
		if oldestPending != 0 && oldestPending < completedSeq {
			g.MustItem("completion_order").Hit("reordered")
		} else {
			g.MustItem("completion_order").Hit("in_order")
		}
	}
	lat := tr.Latency()
	switch {
	case lat < 5:
		g.MustItem("latency").Hit("lt5")
	case lat < 10:
		g.MustItem("latency").Hit("lt10")
	case lat < 20:
		g.MustItem("latency").Hit("lt20")
	default:
		g.MustItem("latency").Hit("ge20")
	}
}
