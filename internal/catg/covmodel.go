package catg

import (
	"fmt"
	"sort"

	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// CoverageModel is the CATG functional-coverage model: a coverage group
// whose bins are derived from the DUT configuration and the traffic
// constraints, so that every declared bin is reachable and "full functional
// coverage" (the paper's sign-off criterion) is a meaningful target.
//
// It samples initiator-side monitors and per-cycle contention; because its
// input is only what the monitors observe at the ports, the same tests with
// the same seeds produce identical coverage on the RTL and the BCA view —
// the equality the paper requires.
type CoverageModel struct {
	Group *coverage.Group

	node nodespec.Config
	tc   TrafficConfig

	hasUnmapped bool
	hasProg     bool
	hasChunk    bool
	hasOOO      bool
	multiInit   bool

	// Preresolved bin handles (nil = bin undeclared for this configuration).
	// The transaction sampler runs on every monitor's completion callback and
	// dominated the RTL-view throughput profile when it formatted bin names
	// and looked them up per event; with handles a sample is counter
	// increments only. Resolved once by resolveBins after the group is
	// declared; nil handles no-op on Inc, matching HitOK's tolerance of
	// undeclared bins.
	opBin                          [256]*coverage.Bin // opcode → "opcode" bin
	lenBin                         [256]*coverage.Bin // opcode → "req_pkt_len" bin
	initBin                        []*coverage.Bin
	tgtBin                         []*coverage.Bin   // target → "route" bin
	crossBin                       [][]*coverage.Bin // [initiator][target] → "init_x_route" bin
	routeUnmappedBin, routeProgBin *coverage.Bin
	respOKBin, respErrBin          *coverage.Bin
	chunkPlainBin, chunkLockedBin  *coverage.Bin
	orderInBin, orderReBin         *coverage.Bin
	contSoloBin, contConcBin       *coverage.Bin
	latBin                         [4]*coverage.Bin // lt5, lt10, lt20, ge20
}

// reachableOps lists the distinct opcodes the generator can emit.
func reachableOps(node nodespec.Config, tc TrafficConfig) []stbus.Opcode {
	seen := map[stbus.Opcode]bool{}
	var out []stbus.Opcode
	add := func(op stbus.Opcode) {
		if !seen[op] && op.ValidFor(node.Port.Type, node.Port.BusBytes()) {
			seen[op] = true
			out = append(out, op)
		}
	}
	for _, k := range tc.Kinds {
		for _, size := range tc.Sizes {
			if (k == stbus.KindRMW || k == stbus.KindSwap) && size > 8 {
				size = 4
			}
			add(stbus.Op(k, size))
		}
	}
	if tc.UnmappedPct > 0 {
		add(stbus.LD4)
		add(stbus.ST4)
	}
	if tc.ProgPct > 0 && node.ProgPort {
		add(stbus.LD4)
		add(stbus.ST4)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewCoverageModel declares the coverage group for the given DUT and traffic
// configuration.
func NewCoverageModel(node nodespec.Config, tc TrafficConfig) *CoverageModel {
	node = node.WithDefaults()
	tc = tc.WithDefaults()
	cm := &CoverageModel{
		Group:       coverage.NewGroup("catg." + node.Name),
		node:        node,
		tc:          tc,
		hasUnmapped: tc.UnmappedPct > 0,
		hasProg:     tc.ProgPct > 0 && node.ProgPort,
		hasChunk:    tc.ChunkPct > 0,
		multiInit:   node.NumInit > 1,
	}
	cm.hasOOO = node.Port.Type == stbus.Type3 && node.NumTgt > 1 && node.PipeSize > 1
	g := cm.Group

	var opBins []string
	for _, op := range reachableOps(node, tc) {
		opBins = append(opBins, op.String())
	}
	g.Item("opcode", opBins...)

	var initBins []string
	for i := 0; i < node.NumInit; i++ {
		initBins = append(initBins, fmt.Sprintf("init%d", i))
	}
	g.Item("initiator", initBins...)

	var routeBins []string
	reach := map[int]bool{}
	for i := 0; i < node.NumInit; i++ {
		for t := 0; t < node.NumTgt; t++ {
			if node.Connected(i, t) {
				reach[t] = true
			}
		}
	}
	for t := 0; t < node.NumTgt; t++ {
		if reach[t] {
			routeBins = append(routeBins, fmt.Sprintf("tgt%d", t))
		}
	}
	if cm.hasUnmapped {
		routeBins = append(routeBins, "unmapped")
	}
	if cm.hasProg {
		routeBins = append(routeBins, "prog")
	}
	g.Item("route", routeBins...)

	// Cross initiator × reachable route (only pairs the generator can emit).
	var crossBins []string
	for i := 0; i < node.NumInit; i++ {
		for t := 0; t < node.NumTgt; t++ {
			if node.Connected(i, t) {
				crossBins = append(crossBins, fmt.Sprintf("init%d×tgt%d", i, t))
			}
		}
	}
	g.Item("init_x_route", crossBins...)

	// Achievable request packet lengths.
	lens := map[int]bool{}
	for _, op := range reachableOps(node, tc) {
		lens[stbus.ReqLen(node.Port.Type, op, node.Port.BusBytes())] = true
	}
	var lenBins []string
	var ls []int
	for l := range lens {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	for _, l := range ls {
		lenBins = append(lenBins, fmt.Sprintf("%dcell", l))
	}
	g.Item("req_pkt_len", lenBins...)

	respBins := []string{"ok"}
	if cm.hasUnmapped {
		respBins = append(respBins, "err")
	}
	g.Item("response", respBins...)

	if cm.hasChunk {
		g.Item("chunk", "plain", "locked")
	}
	if cm.hasOOO {
		g.Item("completion_order", "in_order", "reordered")
	}
	if cm.multiInit {
		g.Item("contention", "solo", "concurrent")
	}
	g.Item("latency", "lt5", "lt10", "lt20", "ge20")
	cm.resolveBins()
	return cm
}

// resolveBins fills the preresolved handle tables from the declared group.
// Counter returns nil for bins this configuration never declared, and the
// per-opcode tables are total over the opcode byte so the sampler can index
// them without validity checks.
func (cm *CoverageModel) resolveBins() {
	g := cm.Group
	opIt, lenIt := g.MustItem("opcode"), g.MustItem("req_pkt_len")
	for o := 0; o < 256; o++ {
		op := stbus.Opcode(o)
		if !op.Valid() {
			continue
		}
		cm.opBin[o] = opIt.Counter(op.String())
		l := stbus.ReqLen(cm.node.Port.Type, op, cm.node.Port.BusBytes())
		cm.lenBin[o] = lenIt.Counter(fmt.Sprintf("%dcell", l))
	}
	initIt, routeIt, crossIt := g.MustItem("initiator"), g.MustItem("route"), g.MustItem("init_x_route")
	cm.initBin = make([]*coverage.Bin, cm.node.NumInit)
	cm.crossBin = make([][]*coverage.Bin, cm.node.NumInit)
	for i := 0; i < cm.node.NumInit; i++ {
		cm.initBin[i] = initIt.Counter(fmt.Sprintf("init%d", i))
		cm.crossBin[i] = make([]*coverage.Bin, cm.node.NumTgt)
		for t := 0; t < cm.node.NumTgt; t++ {
			cm.crossBin[i][t] = crossIt.Counter(fmt.Sprintf("init%d×tgt%d", i, t))
		}
	}
	cm.tgtBin = make([]*coverage.Bin, cm.node.NumTgt)
	for t := 0; t < cm.node.NumTgt; t++ {
		cm.tgtBin[t] = routeIt.Counter(fmt.Sprintf("tgt%d", t))
	}
	cm.routeUnmappedBin = routeIt.Counter("unmapped")
	cm.routeProgBin = routeIt.Counter("prog")
	respIt := g.MustItem("response")
	cm.respOKBin, cm.respErrBin = respIt.Counter("ok"), respIt.Counter("err")
	if cm.hasChunk {
		it := g.MustItem("chunk")
		cm.chunkPlainBin, cm.chunkLockedBin = it.Counter("plain"), it.Counter("locked")
	}
	if cm.hasOOO {
		it := g.MustItem("completion_order")
		cm.orderInBin, cm.orderReBin = it.Counter("in_order"), it.Counter("reordered")
	}
	if cm.multiInit {
		it := g.MustItem("contention")
		cm.contSoloBin, cm.contConcBin = it.Counter("solo"), it.Counter("concurrent")
	}
	latIt := g.MustItem("latency")
	for i, name := range []string{"lt5", "lt10", "lt20", "ge20"} {
		cm.latBin[i] = latIt.Counter(name)
	}
}

// SubscribeMonitors wires the model to the DUT's initiator-side monitors and
// registers its per-cycle contention sampler.
func (cm *CoverageModel) SubscribeMonitors(sm *sim.Simulator, initMons []*Monitor) {
	for _, m := range initMons {
		m := m
		m.OnComplete(func(tr *stbus.Transaction) {
			cm.SampleTransaction(tr, m.LastCompletedSeq(), m.OldestPendingSeq())
		})
	}
	if cm.multiInit {
		sm.AtCycleEnd(func() {
			// Contention counts simultaneous requests (not grants): a shared
			// bus grants at most one initiator per cycle, but its arbiter
			// still sees concurrent requests.
			n := 0
			for _, m := range initMons {
				if m.Port.Req.Bool() {
					n++
				}
			}
			cm.SampleContention(n)
		})
	}
}

// SampleContention records one cycle's count of requesting initiators.
func (cm *CoverageModel) SampleContention(requesting int) {
	if !cm.multiInit {
		return
	}
	switch {
	case requesting > 1:
		cm.contConcBin.Inc()
	case requesting == 1:
		cm.contSoloBin.Inc()
	}
}

// SampleTransaction records one completed initiator-side transaction.
// completedSeq is the transaction's issue sequence number and oldestPending
// the oldest still-pending issue number at its port (0 when none) — the pair
// the out-of-order detector needs. Both a signal-level Monitor and the
// transaction-level bench (internal/tlm) feed this entry point.
func (cm *CoverageModel) SampleTransaction(tr *stbus.Transaction, completedSeq, oldestPending uint64) {
	cm.opBin[tr.Opc].Inc()
	if tr.Initiator >= 0 && tr.Initiator < len(cm.initBin) {
		cm.initBin[tr.Initiator].Inc()
	}
	switch {
	case tr.Target >= 0:
		if tr.Target < len(cm.tgtBin) {
			cm.tgtBin[tr.Target].Inc()
		}
		if tr.Initiator >= 0 && tr.Initiator < len(cm.crossBin) && tr.Target < len(cm.crossBin[tr.Initiator]) {
			cm.crossBin[tr.Initiator][tr.Target].Inc()
		}
	case tr.Target == RouteUnmapped:
		cm.routeUnmappedBin.Inc()
	case tr.Target == RouteProg:
		cm.routeProgBin.Inc()
	}
	if tr.Opc.Valid() {
		cm.lenBin[tr.Opc].Inc()
	}
	if tr.Err {
		cm.respErrBin.Inc()
	} else {
		cm.respOKBin.Inc()
	}
	if cm.hasChunk {
		if tr.Lck {
			cm.chunkLockedBin.Inc()
		} else {
			cm.chunkPlainBin.Inc()
		}
	}
	if cm.hasOOO {
		// Reordered when an older pending transaction still waits while this
		// one completes.
		if oldestPending != 0 && oldestPending < completedSeq {
			cm.orderReBin.Inc()
		} else {
			cm.orderInBin.Inc()
		}
	}
	lat := tr.Latency()
	switch {
	case lat < 5:
		cm.latBin[0].Inc()
	case lat < 10:
		cm.latBin[1].Inc()
	case lat < 20:
		cm.latBin[2].Inc()
	default:
		cm.latBin[3].Inc()
	}
}
