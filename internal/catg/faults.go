package catg

import (
	"fmt"

	"crve/internal/sim"
	"crve/internal/stbus"
)

// Fault selects a deliberate protocol violation for the fault-injecting
// harness. The paper notes the verification environment itself must be
// debugged ("some bugs could be given by verification environment"; the
// model verification "could also serve to correct verification
// implementation") — FaultyInitiatorBFM is the qualification rig that proves
// every checker rule actually fires.
type Fault int

const (
	// FaultNone injects nothing (the rig degenerates to a plain BFM).
	FaultNone Fault = iota
	// FaultDropReq deasserts req for one cycle while waiting for gnt.
	FaultDropReq
	// FaultMutatePayload changes the data payload while waiting for gnt.
	FaultMutatePayload
	// FaultShortPacket raises EOP one cell early on a multi-cell packet.
	FaultShortPacket
	// FaultLongPacket suppresses EOP on the last cell and appends extras.
	FaultLongPacket
	// FaultMisaligned issues a first cell with an unaligned address.
	FaultMisaligned
	// FaultBadOpcode issues an undefined opcode.
	FaultBadOpcode
	// FaultTagChange changes the tid mid-packet.
	FaultTagChange
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDropReq:
		return "drop-req"
	case FaultMutatePayload:
		return "mutate-payload"
	case FaultShortPacket:
		return "short-packet"
	case FaultLongPacket:
		return "long-packet"
	case FaultMisaligned:
		return "misaligned"
	case FaultBadOpcode:
		return "bad-opcode"
	case FaultTagChange:
		return "tag-change"
	default:
		return fmt.Sprintf("fault?%d", int(f))
	}
}

// CheckerRule returns the checker rule the fault must trigger.
func (f Fault) CheckerRule() string {
	switch f {
	case FaultDropReq:
		return "req-drop"
	case FaultMutatePayload:
		return "stability"
	case FaultShortPacket:
		return "packet-length"
	case FaultLongPacket:
		return "eop-missing"
	case FaultMisaligned:
		return "alignment"
	case FaultBadOpcode:
		return "opcode"
	case FaultTagChange:
		return "tag-change"
	default:
		return ""
	}
}

// AllFaults lists the injectable faults.
func AllFaults() []Fault {
	return []Fault{FaultDropReq, FaultMutatePayload, FaultShortPacket, FaultLongPacket,
		FaultMisaligned, FaultBadOpcode, FaultTagChange}
}

// InjectFault returns a mutated copy of ops with the fault applied to the
// packet at index pkt, for the statically expressible faults. Dynamic faults
// (FaultDropReq, FaultMutatePayload) are injected by the BFM at run time and
// leave the stream unchanged here.
func InjectFault(ops []Op, pkt int, f Fault) []Op {
	out := make([]Op, len(ops))
	for i := range ops {
		out[i] = Op{IdleBefore: ops[i].IdleBefore, Cells: append([]stbus.Cell(nil), ops[i].Cells...)}
	}
	if pkt >= len(out) {
		return out
	}
	cells := out[pkt].Cells
	switch f {
	case FaultShortPacket:
		if len(cells) >= 2 {
			cells[len(cells)-2].EOP = true
			out[pkt].Cells = cells[:len(cells)-1]
		}
	case FaultLongPacket:
		last := cells[len(cells)-1]
		cells[len(cells)-1].EOP = false
		extra := last
		extra.EOP = false
		tail := last
		tail.EOP = true
		out[pkt].Cells = append(cells, extra, tail)
	case FaultMisaligned:
		for i := range cells {
			cells[i].Addr++
		}
	case FaultBadOpcode:
		for i := range cells {
			cells[i].Opc = stbus.Opcode(0xEF) // kind 14: undefined
		}
	case FaultTagChange:
		if len(cells) >= 2 {
			cells[len(cells)-1].TID ^= 0x3f
		}
	}
	return out
}

// FaultyInitiatorBFM is an InitiatorBFM that additionally injects one
// dynamic handshake fault (drop-req or mutate-payload) on the chosen packet.
// Static faults should be applied to the stream with InjectFault instead.
type FaultyInitiatorBFM struct {
	Port  *stbus.Port
	Fault Fault
	// OnPacket is the packet index the dynamic fault strikes.
	OnPacket int

	ops      []Op
	opIdx    int
	cellIdx  int
	injected bool
	waiting  bool

	sentPackets int
	respEOPs    int
}

// NewFaultyInitiatorBFM attaches the fault rig to port.
func NewFaultyInitiatorBFM(sm *sim.Simulator, port *stbus.Port, ops []Op, f Fault, onPacket int) *FaultyInitiatorBFM {
	b := &FaultyInitiatorBFM{Port: port, Fault: f, OnPacket: onPacket, ops: ops}
	sm.Seq(port.Name+".faultybfm", b.tick)
	return b
}

func (b *FaultyInitiatorBFM) tick() {
	p := b.Port
	if p.ReqFire() {
		b.waiting = false
		cur := b.ops[b.opIdx]
		b.cellIdx++
		if b.cellIdx == len(cur.Cells) {
			b.sentPackets++
			b.opIdx++
			b.cellIdx = 0
		}
	} else if p.Req.Bool() && !p.Gnt.Bool() {
		b.waiting = true
	}
	if p.RespFire() && p.SampleResp().EOP {
		b.respEOPs++
	}
	p.RGnt.SetBool(true)
	if b.opIdx >= len(b.ops) {
		p.IdleReq()
		return
	}
	cell := b.ops[b.opIdx].Cells[b.cellIdx]
	// Dynamic fault injection while waiting for grant on the chosen packet.
	if b.waiting && !b.injected && b.opIdx == b.OnPacket {
		switch b.Fault {
		case FaultDropReq:
			b.injected = true
			p.IdleReq()
			return
		case FaultMutatePayload:
			b.injected = true
			cell.Data = cell.Data.Xor(sim.B64(0xff))
			cell.Addr ^= 0x4
		}
	}
	p.DriveCell(cell)
}

// Done reports whether the stream was issued and answered.
func (b *FaultyInitiatorBFM) Done() bool {
	return b.opIdx >= len(b.ops) && b.respEOPs >= b.sentPackets
}

// Injected reports whether the dynamic fault fired.
func (b *FaultyInitiatorBFM) Injected() bool { return b.injected }
