package catg

import (
	"testing"

	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// TestBenchAroundConverterDUT shows the environment's genericity claim: CATG
// is "aimed to test component[s] having STBus interfaces", not only the
// node. Here the DUT is a type converter (T3 upstream, T2 downstream) with a
// memory behind it; the same BFM/monitor/checker/scoreboard/coverage pieces
// wrap it unchanged.
func TestBenchAroundConverterDUT(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type3, DataBits: 32}.WithDefaults()
	sm := sim.New()
	root := sim.Root(sm)
	conv, err := rtl.NewTypeConverter(root, "dut", up, stbus.Type2)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := rtl.NewMemory(root, rtl.MemoryConfig{
		Name: "m", Port: conv.Cfg.Down, Base: 0x1000, Size: 0x1000, Latency: 2})
	if err != nil {
		t.Fatal(err)
	}
	stbus.Bind(sm, conv.Down, mem.Port)

	// The converter is a single-initiator single-"target" component: describe
	// it to the environment as a 1x1 system whose pipe matches the
	// converter's. The converter's downstream port is the observable target
	// side; but its protocol type differs, so the checker there validates
	// against a T2 view of the same component.
	upView := nodespec.Config{
		Port: up, NumInit: 1, NumTgt: 1,
		Arch: nodespec.FullCrossbar,
		Map:  stbus.UniformMap(1, 0x1000, 0x1000),
		// Store-and-forward converter accepts up to its pipe depth.
		PipeSize: conv.Cfg.Pipe,
	}.WithDefaults()
	downView := upView
	downView.Port = conv.Cfg.Down

	ops := GenerateOps(upView, TrafficConfig{Ops: 30, IdlePct: 10}, 0, 5)
	bfm := NewInitiatorBFM(sm, conv.Up, ops)
	upMon := NewMonitor(sm, conv.Up, 0, true, NodeRouter(upView, 0))
	upCk := NewChecker(sm, conv.Up, upView, true, NodeRouter(upView, 0))
	downMon := NewMonitor(sm, conv.Down, 0, false, nil)
	downCk := NewChecker(sm, conv.Down, downView, false, nil)
	sb := NewScoreboard(upView, []*Monitor{upMon}, []*Monitor{downMon})
	cov := NewCoverageModel(upView, TrafficConfig{Ops: 30, IdlePct: 10})
	cov.SubscribeMonitors(sm, []*Monitor{upMon})

	if err := sm.RunUntil(bfm.Done, 20000); err != nil {
		t.Fatal(err)
	}
	if err := sm.Run(5); err != nil {
		t.Fatal(err)
	}
	if !upCk.Passed() {
		t.Fatalf("upstream checker: %v", upCk.Violations)
	}
	if !downCk.Passed() {
		t.Fatalf("downstream checker: %v", downCk.Violations)
	}
	if errs := sb.Check(); len(errs) != 0 {
		t.Fatalf("scoreboard through the converter: %v", errs)
	}
	if len(upMon.CompletedTxs()) != 30 {
		t.Errorf("%d transactions observed, want 30", len(upMon.CompletedTxs()))
	}
	if cov.Group.Percent() < 70 {
		t.Errorf("coverage %.1f%%\n%s", cov.Group.Percent(), cov.Group.Report())
	}
}

// TestBenchAroundType1PeripheralDUT plugs the environment onto a Type 1
// peripheral interface: a T1→T3 converter in front of a memory. Type 1
// allows one outstanding operation; the converter's single-entry pipe
// enforces it, and the checker's t1-outstanding rule watches it.
func TestBenchAroundType1PeripheralDUT(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type1, DataBits: 32}.WithDefaults()
	sm := sim.New()
	root := sim.Root(sm)
	conv, err := rtl.NewTypeConverter(root, "dut", up, stbus.Type3)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Cfg.Pipe != 1 {
		t.Fatalf("T1 converter pipe = %d", conv.Cfg.Pipe)
	}
	mem, err := rtl.NewMemory(root, rtl.MemoryConfig{
		Name: "m", Port: conv.Cfg.Down, Base: 0x1000, Size: 0x1000, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	stbus.Bind(sm, conv.Down, mem.Port)

	upView := nodespec.Config{
		Port: up, NumInit: 1, NumTgt: 1,
		Map:      stbus.UniformMap(1, 0x1000, 0x1000),
		PipeSize: 1,
	}
	// Type 1 restricts the command set: word-sized loads and stores only.
	tc := TrafficConfig{Ops: 20, Sizes: []int{1, 2, 4}, IdlePct: 20}
	ops := GenerateOps(upView, tc, 0, 9)
	for _, o := range ops {
		if !o.Cells[0].Opc.ValidFor(stbus.Type1, up.BusBytes()) {
			t.Fatalf("generator emitted %v, illegal on T1", o.Cells[0].Opc)
		}
		if len(o.Cells) != 1 {
			t.Fatalf("T1 packets are single-cell, got %d", len(o.Cells))
		}
	}
	bfm := NewInitiatorBFM(sm, conv.Up, ops)
	ck := NewChecker(sm, conv.Up, upView, true, NodeRouter(upView, 0))
	mon := NewMonitor(sm, conv.Up, 0, true, NodeRouter(upView, 0))
	if err := sm.RunUntil(bfm.Done, 10000); err != nil {
		t.Fatal(err)
	}
	if !ck.Passed() {
		t.Fatalf("T1 checker: %v", ck.Violations)
	}
	if len(mon.CompletedTxs()) != 20 {
		t.Errorf("%d transactions, want 20", len(mon.CompletedTxs()))
	}
	for _, tr := range mon.CompletedTxs() {
		if tr.Err {
			t.Errorf("unexpected error response: %v", tr)
		}
	}
}
