package catg

import (
	"testing"

	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// scriptStep fully specifies one cycle at a port, both directions — the test
// plays DUT and harness at once to hit checker rules precisely.
type scriptStep struct {
	req, gnt   bool
	cell       stbus.Cell
	rreq, rgnt bool
	resp       stbus.RespCell
}

// runScript replays steps on a fresh port with a checker attached.
func runScript(t *testing.T, cfg nodespec.Config, initiatorSide bool, steps []scriptStep) *Checker {
	t.Helper()
	sm := sim.New()
	p := stbus.NewPort(sim.Root(sm), "p", cfg.Port)
	var route RouteFunc
	if initiatorSide {
		route = NodeRouter(cfg, 0)
	}
	ck := NewChecker(sm, p, cfg, initiatorSide, route)
	idx := 0
	sm.Seq("script", func() {
		if idx >= len(steps) {
			p.IdleReq()
			p.IdleResp()
			p.Gnt.SetBool(false)
			p.RGnt.SetBool(false)
			return
		}
		s := steps[idx]
		idx++
		if s.req {
			p.DriveCell(s.cell)
		} else {
			p.IdleReq()
		}
		p.Gnt.SetBool(s.gnt)
		if s.rreq {
			p.DriveResp(s.resp)
		} else {
			p.IdleResp()
		}
		p.RGnt.SetBool(s.rgnt)
	})
	if err := sm.Run(len(steps) + 3); err != nil {
		t.Fatal(err)
	}
	return ck
}

func hasRule(ck *Checker, rule string) bool {
	for _, v := range ck.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func ld4Cell(addr uint64, tid uint8) stbus.Cell {
	return stbus.Cell{Opc: stbus.LD4, Addr: addr, BE: 0xf, EOP: true, TID: tid}
}

func okResp(tid uint8) stbus.RespCell {
	return stbus.RespCell{ROpc: stbus.RespData, EOP: true, TID: tid}
}

func TestCheckerT1SingleOutstanding(t *testing.T) {
	cfg := nodeCfg(1, 1)
	cfg.Port.Type = stbus.Type1
	steps := []scriptStep{
		{req: true, gnt: true, cell: ld4Cell(0x1000, 0)}, // first op granted
		{req: true, gnt: true, cell: ld4Cell(0x1004, 1)}, // second before a response: illegal on T1
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "t1-outstanding") {
		t.Errorf("T1 double-outstanding not flagged: %v", ck.Violations)
	}
}

func TestCheckerT1LegalSequence(t *testing.T) {
	cfg := nodeCfg(1, 1)
	cfg.Port.Type = stbus.Type1
	steps := []scriptStep{
		{req: true, gnt: true, cell: ld4Cell(0x1000, 0)},
		{rreq: true, rgnt: true, resp: okResp(0)},
		{req: true, gnt: true, cell: ld4Cell(0x1004, 1)},
		{rreq: true, rgnt: true, resp: okResp(1)},
	}
	ck := runScript(t, cfg, true, steps)
	if !ck.Passed() {
		t.Errorf("legal T1 sequence flagged: %v", ck.Violations)
	}
}

func TestCheckerRespLength(t *testing.T) {
	cfg := nodeCfg(1, 1) // Type3/32-bit
	// LD8 expects a 2-cell response; deliver a 1-cell one.
	req := stbus.Cell{Opc: stbus.LD8, Addr: 0x1000, BE: 0xf, EOP: true, TID: 3}
	steps := []scriptStep{
		{req: true, gnt: true, cell: req},
		{rreq: true, rgnt: true, resp: stbus.RespCell{ROpc: stbus.RespData, EOP: true, TID: 3}},
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "resp-length") {
		t.Errorf("short response packet not flagged: %v", ck.Violations)
	}
}

func TestCheckerRespInterleave(t *testing.T) {
	cfg := nodeCfg(1, 1)
	// Two LD8s outstanding; their response packets interleave cell-wise.
	steps := []scriptStep{
		{req: true, gnt: true, cell: stbus.Cell{Opc: stbus.LD8, Addr: 0x1000, BE: 0xf, EOP: true, TID: 1}},
		{req: true, gnt: true, cell: stbus.Cell{Opc: stbus.LD8, Addr: 0x1008, BE: 0xf, EOP: true, TID: 2}},
		{rreq: true, rgnt: true, resp: stbus.RespCell{ROpc: stbus.RespData, TID: 1}}, // first cell of resp 1
		{rreq: true, rgnt: true, resp: stbus.RespCell{ROpc: stbus.RespData, TID: 2}}, // interleaved!
		{rreq: true, rgnt: true, resp: stbus.RespCell{ROpc: stbus.RespData, EOP: true, TID: 1}},
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "resp-interleave") {
		t.Errorf("interleaved response not flagged: %v", ck.Violations)
	}
}

func TestCheckerRespOrphan(t *testing.T) {
	cfg := nodeCfg(1, 1)
	cfg.Port.Type = stbus.Type2
	steps := []scriptStep{
		{rreq: true, rgnt: true, resp: okResp(0)}, // response with nothing outstanding
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "resp-orphan") {
		t.Errorf("orphan response not flagged: %v", ck.Violations)
	}
}

func TestCheckerErrExpectedOnUnmapped(t *testing.T) {
	cfg := nodeCfg(1, 1)
	steps := []scriptStep{
		{req: true, gnt: true, cell: ld4Cell(0x9000, 5)}, // unmapped address
		{rreq: true, rgnt: true, resp: okResp(5)},        // answered WITHOUT error flag
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "err-expected") {
		t.Errorf("missing error flag on unmapped access not flagged: %v", ck.Violations)
	}
}

func TestCheckerChunkBreakAcrossTargets(t *testing.T) {
	cfg := nodeCfg(1, 2)
	lckCell := ld4Cell(0x1000, 0)
	lckCell.Lck = true
	steps := []scriptStep{
		{req: true, gnt: true, cell: lckCell},            // chunk opened toward target 0
		{req: true, gnt: true, cell: ld4Cell(0x2000, 1)}, // next packet jumps to target 1
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "chunk-break") {
		t.Errorf("chunk target switch not flagged: %v", ck.Violations)
	}
}

func TestCheckerOpcodeChangeMidPacket(t *testing.T) {
	cfg := nodeCfg(1, 1)
	c1 := stbus.Cell{Opc: stbus.ST8, Addr: 0x1000, BE: 0xf, TID: 1}
	c2 := stbus.Cell{Opc: stbus.ST4, Addr: 0x1004, BE: 0xf, EOP: true, TID: 1}
	steps := []scriptStep{
		{req: true, gnt: true, cell: c1},
		{req: true, gnt: true, cell: c2},
	}
	ck := runScript(t, cfg, true, steps)
	if !hasRule(ck, "opcode-change") {
		t.Errorf("opcode change mid-packet not flagged: %v", ck.Violations)
	}
}

func TestCheckerCleanWaitState(t *testing.T) {
	// Holding a stable request through several ungranted cycles is legal.
	cfg := nodeCfg(1, 1)
	c := ld4Cell(0x1000, 0)
	steps := []scriptStep{
		{req: true, gnt: false, cell: c},
		{req: true, gnt: false, cell: c},
		{req: true, gnt: true, cell: c},
		{rreq: true, rgnt: true, resp: okResp(0)},
	}
	ck := runScript(t, cfg, true, steps)
	if !ck.Passed() {
		t.Errorf("stable wait flagged: %v", ck.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Cycle: 7, Port: "node.init0", Rule: "stability", Detail: "x"}
	s := v.String()
	for _, want := range []string{"7", "node.init0", "stability"} {
		if indexOf(s, want) < 0 {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
