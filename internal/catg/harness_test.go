package catg

import (
	"testing"

	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// buildLoop wires a BFM pair (initiator + target) back to back through a
// trivially permissive port: the initiator's port doubles as the target's.
func buildLoop(t *testing.T, tgtCfg TargetConfig, ops []Op, seed int64) (*sim.Simulator, *InitiatorBFM, *TargetBFM) {
	t.Helper()
	sm := sim.New()
	p := stbus.NewPort(sim.Root(sm), "loop", stbus.PortConfig{Type: stbus.Type3, DataBits: 32})
	bfm := NewInitiatorBFM(sm, p, ops)
	tgt := NewTargetBFM(sm, p, tgtCfg, seed)
	return sm, bfm, tgt
}

func TestInitiatorBFMDrivesAllOpsAndCompletes(t *testing.T) {
	cfg := nodeCfg(1, 1)
	ops := GenerateOps(cfg, TrafficConfig{Ops: 12, IdlePct: 30}, 0, 7)
	sm, bfm, _ := buildLoop(t, TargetConfig{MinLatency: 1, MaxLatency: 3}, ops, 3)
	if err := sm.RunUntil(bfm.Done, 3000); err != nil {
		t.Fatal(err)
	}
	if bfm.Sent() != 12 || bfm.Received() != 12 {
		t.Errorf("sent %d received %d, want 12/12", bfm.Sent(), bfm.Received())
	}
}

func TestInitiatorBFMInsertsIdleGaps(t *testing.T) {
	cfg := nodeCfg(1, 1)
	// Force every op to have an idle gap.
	ops := GenerateOps(cfg, TrafficConfig{Ops: 10, IdlePct: 100, Sizes: []int{4}}, 0, 7)
	gapsDeclared := 0
	for _, o := range ops {
		if o.IdleBefore > 0 {
			gapsDeclared++
		}
	}
	if gapsDeclared < 8 {
		t.Fatalf("only %d declared gaps with IdlePct=100", gapsDeclared)
	}
	sm, bfm, _ := buildLoop(t, TargetConfig{}, ops, 3)
	idleCycles := 0
	sm.AtCycleEnd(func() {
		if !bfm.Port.Req.Bool() && !bfm.Done() {
			idleCycles++
		}
	})
	if err := sm.RunUntil(bfm.Done, 3000); err != nil {
		t.Fatal(err)
	}
	if idleCycles == 0 {
		t.Error("no idle cycles observed despite IdleBefore gaps")
	}
}

func TestTargetBFMQueueDepthBackpressure(t *testing.T) {
	cfg := nodeCfg(1, 1)
	// Slow target with depth 1: at most one packet in flight inside it.
	ops := GenerateOps(cfg, TrafficConfig{Ops: 6, Sizes: []int{4}}, 0, 2)
	sm, bfm, tgt := buildLoop(t, TargetConfig{MinLatency: 10, MaxLatency: 10, QueueDepth: 1}, ops, 5)
	maxQ := 0
	sm.AtCycleEnd(func() {
		if n := len(tgt.queue); n > maxQ {
			maxQ = n
		}
	})
	if err := sm.RunUntil(bfm.Done, 5000); err != nil {
		t.Fatal(err)
	}
	if maxQ > 1 {
		t.Errorf("target queue reached %d with depth 1", maxQ)
	}
}

func TestTargetBFMMemorySemantics(t *testing.T) {
	sm := sim.New()
	p := stbus.NewPort(sim.Root(sm), "loop", stbus.PortConfig{Type: stbus.Type3, DataBits: 32})
	tgt := NewTargetBFM(sm, p, TargetConfig{MinLatency: 1, MaxLatency: 1}, 9)
	payload := []byte{4, 3, 2, 1}
	st, err := stbus.BuildRequest(stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x40, payload, 4, 1, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := stbus.BuildRequest(stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x40, nil, 4, 2, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	bfm := NewInitiatorBFM(sm, p, []Op{{Cells: st}, {Cells: ld}})
	if err := sm.RunUntil(bfm.Done, 500); err != nil {
		t.Fatal(err)
	}
	if tgt.Peek(0x40) != 4 || tgt.Peek(0x43) != 1 {
		t.Errorf("memory state %x %x", tgt.Peek(0x40), tgt.Peek(0x43))
	}
}

func TestTargetBFMDeterministicTiming(t *testing.T) {
	cfg := nodeCfg(1, 1)
	run := func() uint64 {
		ops := GenerateOps(cfg, TrafficConfig{Ops: 15}, 0, 4)
		sm, bfm, _ := buildLoop(t, TargetConfig{MinLatency: 0, MaxLatency: 8, GntGapPct: 40}, ops, 77)
		if err := sm.RunUntil(bfm.Done, 5000); err != nil {
			t.Fatal(err)
		}
		return sm.Cycle()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different drain: %d vs %d", a, b)
	}
}

// TestBFMAgainstRealNodeIsLossless cross-checks the BFM bookkeeping against
// monitor counts on a real DUT.
func TestBFMAgainstRealNodeIsLossless(t *testing.T) {
	cfg := nodeCfg(2, 2)
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bfms []*InitiatorBFM
	var mons []*Monitor
	for i, p := range n.Init {
		bfms = append(bfms, NewInitiatorBFM(sm, p, GenerateOps(cfg, TrafficConfig{Ops: 20}, i, 6)))
		mons = append(mons, NewMonitor(sm, p, i, true, NodeRouter(cfg, i)))
	}
	for tg, p := range n.Tgt {
		NewTargetBFM(sm, p, TargetConfig{MinLatency: 1, MaxLatency: 4}, int64(tg))
	}
	done := func() bool { return bfms[0].Done() && bfms[1].Done() }
	if err := sm.RunUntil(done, 20000); err != nil {
		t.Fatal(err)
	}
	if err := sm.Run(3); err != nil {
		t.Fatal(err)
	}
	for i, m := range mons {
		if len(m.CompletedTxs()) != bfms[i].Sent() {
			t.Errorf("initiator %d: monitor saw %d txs, BFM sent %d",
				i, len(m.CompletedTxs()), bfms[i].Sent())
		}
		if m.PendingCount() != 0 {
			t.Errorf("initiator %d: %d transactions never completed", i, m.PendingCount())
		}
	}
}
