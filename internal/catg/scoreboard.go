package catg

import (
	"bytes"
	"fmt"

	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Scoreboard checks data integrity through a routing DUT: every transaction
// observed entering an initiator port must be observed unmodified at the
// routed target port, with matching request payloads and response payloads
// (the paper's "Automatic Check on data integrity: the DUT outputs' data
// correspond to the inputs' one").
//
// Transactions routed to the DUT's internal services (unmapped addresses,
// the programming region) have no target-side counterpart; the scoreboard
// instead checks their response contract (error flags, register readback).
type Scoreboard struct {
	Node nodespec.Config

	initTxs []*stbus.Transaction
	tgtTxs  []*stbus.Transaction

	// progRegs mirrors the programming register file to check readbacks.
	progRegs []uint8
}

// NewScoreboard builds a scoreboard subscribed to the given initiator-side
// and target-side monitors.
func NewScoreboard(node nodespec.Config, initMons, tgtMons []*Monitor) *Scoreboard {
	node = node.WithDefaults()
	s := &Scoreboard{Node: node, progRegs: node.DefaultPriorities()}
	for _, m := range initMons {
		m.OnComplete(s.AddInitiatorTransaction)
	}
	for _, m := range tgtMons {
		m.OnComplete(s.AddTargetTransaction)
	}
	return s
}

// AddInitiatorTransaction feeds one initiator-side transaction directly
// (used by the transaction-level bench in internal/tlm).
func (s *Scoreboard) AddInitiatorTransaction(tr *stbus.Transaction) {
	s.initTxs = append(s.initTxs, tr)
}

// AddTargetTransaction feeds one target-side transaction directly.
func (s *Scoreboard) AddTargetTransaction(tr *stbus.Transaction) {
	s.tgtTxs = append(s.tgtTxs, tr)
}

type sbKey struct {
	src  uint8
	tid  uint8
	opc  stbus.Opcode
	addr uint64
}

// Check matches the two transaction streams and returns every data-integrity
// error found. Call it after the test drains.
func (s *Scoreboard) Check() []string {
	var errs []string
	byKey := make(map[sbKey][]*stbus.Transaction, len(s.tgtTxs))
	for _, tr := range s.tgtTxs {
		k := sbKey{src: tr.Src, tid: tr.TID, opc: tr.Opc, addr: tr.Addr}
		byKey[k] = append(byKey[k], tr)
	}
	for _, tr := range s.initTxs {
		switch {
		case tr.Target >= 0:
			k := sbKey{src: tr.Src, tid: tr.TID, opc: tr.Opc, addr: tr.Addr}
			q := byKey[k]
			if len(q) == 0 {
				errs = append(errs, fmt.Sprintf("%v: never observed at target side", tr))
				continue
			}
			tt := q[0]
			byKey[k] = q[1:]
			if !bytes.Equal(tr.WriteData, tt.WriteData) {
				errs = append(errs, fmt.Sprintf("%v: write data corrupted through DUT (%x vs %x)",
					tr, tr.WriteData, tt.WriteData))
			}
			if tr.Err != tt.Err {
				errs = append(errs, fmt.Sprintf("%v: error flag changed through DUT", tr))
			}
			if !tr.Err && !bytes.Equal(tr.ReadData, tt.ReadData) {
				errs = append(errs, fmt.Sprintf("%v: read data corrupted through DUT (%x vs %x)",
					tr, tr.ReadData, tt.ReadData))
			}
		case tr.Target == RouteUnmapped:
			if !tr.Err {
				errs = append(errs, fmt.Sprintf("%v: unmapped access must error", tr))
			}
		case tr.Target == RouteProg:
			errs = append(errs, s.checkProg(tr)...)
		}
	}
	for k, q := range byKey {
		for range q {
			errs = append(errs, fmt.Sprintf("target-side transaction %+v never requested by an initiator", k))
		}
	}
	return errs
}

// checkProg models the register decoder to validate programming-port
// responses. Transactions are checked in initiator completion order, which
// matches the order the node serviced them for a single programming port.
func (s *Scoreboard) checkProg(tr *stbus.Transaction) []string {
	var errs []string
	reg := int(tr.Addr-s.Node.ProgBase) / 4
	legal := reg >= 0 && reg < s.Node.NumInit && (tr.Opc == stbus.ST4 || tr.Opc == stbus.LD4)
	if !legal {
		if !tr.Err {
			errs = append(errs, fmt.Sprintf("%v: illegal programming access must error", tr))
		}
		return errs
	}
	if tr.Err {
		errs = append(errs, fmt.Sprintf("%v: legal programming access errored", tr))
		return errs
	}
	if tr.Opc == stbus.ST4 {
		s.progRegs[reg] = tr.WriteData[0] & 0xf
		return errs
	}
	if len(tr.ReadData) != 4 || tr.ReadData[0] != s.progRegs[reg] {
		errs = append(errs, fmt.Sprintf("%v: register readback %x, model %#x",
			tr, tr.ReadData, s.progRegs[reg]))
	}
	return errs
}

// InitTransactions returns the initiator-side transaction stream.
func (s *Scoreboard) InitTransactions() []*stbus.Transaction { return s.initTxs }

// TgtTransactions returns the target-side transaction stream.
func (s *Scoreboard) TgtTransactions() []*stbus.Transaction { return s.tgtTxs }
