package catg

import (
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// UnionTraffic returns the traffic configuration whose coverage model is a
// superset of every generic test's for the given node: the full operation
// mix, every size, and a non-zero share of each optional stimulus class
// (unmapped, chunked, idle, programming when the node has a programming
// port). The regression suite aggregates per-test coverage into the model
// this union declares, and the closure engine plans against its holes.
func UnionTraffic(node nodespec.Config) TrafficConfig {
	tc := TrafficConfig{
		Ops:         1,
		Kinds:       []stbus.OpKind{stbus.KindLoad, stbus.KindStore, stbus.KindRMW, stbus.KindSwap},
		Sizes:       []int{1, 2, 4, 8, 16, 32, 64},
		UnmappedPct: 1,
		ChunkPct:    1,
		IdlePct:     1,
		PriMax:      15,
	}
	if node.ProgPort {
		tc.ProgPct = 1
	}
	return tc
}

// UnreachableBins returns the bins the coverage model for (node, tc) declares
// but which no stimulus can ever hit — holes that are properties of the
// configuration, not of the tests run so far. The model derives its bins
// from the configuration precisely so that every declared bin is reachable;
// the cases below are the residue where a bin's precondition spans more than
// one parameter and only their combination is dead:
//
//   - completion_order/reordered is declared whenever the node is Type3 with
//     more than one target and a pipe deeper than one, but observing a
//     reordered completion requires some initiator that can reach at least
//     two targets; a partial crossbar whose rows each allow a single target
//     declares the bin and can never sample it.
//
// Lint surfaces these as CRVE017 and the closure planner skips them: no
// amount of added tests closes a statically dead bin.
func UnreachableBins(node nodespec.Config, tc TrafficConfig) []coverage.Hole {
	node = node.WithDefaults()
	var dead []coverage.Hole
	hasOOO := node.Port.Type == stbus.Type3 && node.NumTgt > 1 && node.PipeSize > 1
	if hasOOO {
		fanout := 0
		for i := 0; i < node.NumInit; i++ {
			n := 0
			for t := 0; t < node.NumTgt; t++ {
				if node.Connected(i, t) {
					n++
				}
			}
			if n > fanout {
				fanout = n
			}
		}
		if fanout < 2 {
			dead = append(dead, coverage.Hole{Item: "completion_order", Bin: "reordered"})
		}
	}
	return dead
}
