package catg

import (
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// Route codes a monitor's route classifier may return for a first-cell
// address.
const (
	// RouteUnmapped marks addresses outside every map region (answered by
	// the DUT's error responder).
	RouteUnmapped = -1
	// RouteProg marks addresses inside the programming region.
	RouteProg = -2
)

// RouteFunc classifies a first-cell address: a target index, RouteUnmapped
// or RouteProg. NodeRouter builds one from a node configuration.
type RouteFunc func(addr uint64) int

// NodeRouter returns the route classifier of a node configuration, as seen
// from initiator port initIdx (partial-crossbar connectivity included).
func NodeRouter(cfg nodespec.Config, initIdx int) RouteFunc {
	return func(addr uint64) int {
		if cfg.ProgPort && addr >= cfg.ProgBase && addr < cfg.ProgBase+uint64(4*cfg.NumInit) {
			return RouteProg
		}
		t := cfg.Map.Route(addr)
		if t < 0 || !cfg.Connected(initIdx, t) {
			return RouteUnmapped
		}
		return t
	}
}

type pendingTx struct {
	tr      *stbus.Transaction
	reqOp   stbus.Opcode
	reqAddr uint64
	seq     uint64
}

// Monitor reconstructs STBus transactions from the signals of one port. It
// is a passive cycle-end observer (the "Monitor" blocks of Figure 2); the
// protocol checker, scoreboard and coverage model all consume its output.
// The transaction pairing itself lives in TxAssembler, shared with the
// transaction-level bench.
type Monitor struct {
	Port *stbus.Port
	asm  *TxAssembler

	// Per-cycle statistics for coverage sampling.
	Cycles    uint64
	ReqFires  uint64
	RespFires uint64
}

// NewMonitor attaches a monitor to port. route may be nil (target-side
// monitors have no routing to classify).
func NewMonitor(sm *sim.Simulator, port *stbus.Port, index int, initiatorSide bool, route RouteFunc) *Monitor {
	m := &Monitor{Port: port, asm: NewTxAssembler(port.Cfg, index, initiatorSide, route)}
	sm.AtCycleEnd(m.observe)
	return m
}

// Index returns the port's position on its side of the DUT.
func (m *Monitor) Index() int { return m.asm.Index }

// InitiatorSide reports whether this is a DUT initiator-facing port.
func (m *Monitor) InitiatorSide() bool { return m.asm.InitiatorSide }

// Completed returns the transactions completed so far, in completion order.
func (m *Monitor) CompletedTxs() []*stbus.Transaction { return m.asm.Completed }

// OnComplete registers a transaction listener.
func (m *Monitor) OnComplete(fn func(*stbus.Transaction)) { m.asm.OnComplete(fn) }

func (m *Monitor) observe() {
	m.Cycles++
	p := m.Port
	cyc := m.Cycles - 1
	if p.ReqFire() {
		m.ReqFires++
		m.asm.ReqCell(cyc, p.SampleCell())
	}
	if p.RespFire() {
		m.RespFires++
		m.asm.RespCell(cyc, p.SampleResp())
	}
}

// LastCompletedSeq returns the issue sequence number of the most recently
// completed transaction (0 before any completion or for orphan responses).
func (m *Monitor) LastCompletedSeq() uint64 { return m.asm.LastCompletedSeq() }

// PendingCount returns the number of request packets awaiting a response.
func (m *Monitor) PendingCount() int { return m.asm.PendingCount() }

// OldestPendingSeq returns the issue sequence number of the oldest pending
// transaction (0 when none) — used by the out-of-order coverage detector.
func (m *Monitor) OldestPendingSeq() uint64 { return m.asm.OldestPendingSeq() }
