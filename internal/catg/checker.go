package catg

import (
	"fmt"

	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// Violation is one protocol-rule failure observed at a port.
type Violation struct {
	Cycle  uint64
	Port   string
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d %s [%s]: %s", v.Cycle, v.Port, v.Rule, v.Detail)
}

// Checker enforces the STBus interface rules at one port — the "Protocol
// checkers" of the paper's Figure 2/6. It is a passive cycle-end observer.
//
// The rule set covers the request handshake (payload stability, no request
// drops, alignment, opcode legality, packet length), the response channel
// (packet length, no interleaving, tid matching), protocol-type rules
// (Type 1 single-outstanding, Type 2 ordering) and DUT-level invariants
// derived from the node configuration (pipe occupancy, chunk atomicity).
type Checker struct {
	Port *stbus.Port
	// Node is the DUT configuration the checker validates against.
	Node nodespec.Config
	// InitiatorSide enables the initiator-port-only rules.
	InitiatorSide bool

	Violations []Violation

	route RouteFunc
	cyc   uint64

	// Request channel tracking.
	prevReq     bool
	prevGnt     bool
	prevCell    stbus.Cell
	reqCount    int
	reqFirst    stbus.Cell
	chunkOpen   bool
	chunkTarget int
	chunkSrc    uint8

	// Outstanding request packets (issue order).
	pending []checkerPending

	// Response channel tracking.
	respCount int
	respFirst stbus.RespCell
}

type checkerPending struct {
	op    stbus.Opcode
	addr  uint64
	tid   uint8
	src   uint8
	route int
}

// NewChecker attaches a protocol checker to port. route classifies
// first-cell addresses (NodeRouter for initiator-side ports; nil for
// target-side ports).
func NewChecker(sm *sim.Simulator, port *stbus.Port, node nodespec.Config, initiatorSide bool,
	route RouteFunc) *Checker {
	c := &Checker{Port: port, Node: node.WithDefaults(), InitiatorSide: initiatorSide, route: route}
	c.chunkTarget = -1
	sm.AtCycleEnd(c.observe)
	return c
}

func (c *Checker) fail(rule, format string, args ...any) {
	c.Violations = append(c.Violations, Violation{
		Cycle: c.cyc, Port: c.Port.Name, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// Passed reports whether no violation was recorded.
func (c *Checker) Passed() bool { return len(c.Violations) == 0 }

func (c *Checker) observe() {
	p := c.Port
	req, gnt := p.Req.Bool(), p.Gnt.Bool()
	cell := p.SampleCell()

	// Handshake rules against the previous cycle.
	if c.prevReq && !c.prevGnt {
		if !req {
			c.fail("req-drop", "req deasserted while waiting for gnt")
		} else if cell != c.prevCell {
			c.fail("stability", "request payload changed while waiting for gnt (%v -> %v)",
				c.prevCell, cell)
		}
	}
	if req && gnt {
		c.onReqCell(cell)
	}
	c.prevReq, c.prevGnt, c.prevCell = req, gnt, cell

	if p.RespFire() {
		c.onRespCell(p.SampleResp())
	}
	c.cyc++
}

func (c *Checker) onReqCell(cell stbus.Cell) {
	cfg := c.Node.Port
	if c.reqCount == 0 {
		c.reqFirst = cell
		if !cell.Opc.ValidFor(cfg.Type, cfg.BusBytes()) {
			c.fail("opcode", "opcode %#x illegal on %v/%d-bit port", uint8(cell.Opc), cfg.Type, cfg.DataBits)
		}
		if cell.Opc.Valid() && cell.Addr%uint64(cell.Opc.SizeBytes()) != 0 {
			c.fail("alignment", "%v at unaligned address %#x", cell.Opc, cell.Addr)
		}
		// Chunk atomicity.
		if c.InitiatorSide && c.route != nil {
			r := c.route(cell.Addr)
			if c.chunkOpen && r != c.chunkTarget {
				c.fail("chunk-break", "chunked initiator switched target %d -> %d", c.chunkTarget, r)
			}
			c.chunkTarget = r
		}
		if !c.InitiatorSide && c.chunkOpen && cell.Src != c.chunkSrc {
			c.fail("chunk-interleave", "src %d interleaved into chunk held by src %d",
				cell.Src, c.chunkSrc)
		}
		// Pipe occupancy (node back-pressure contract).
		if c.InitiatorSide && len(c.pending)+1 > c.Node.PipeSize {
			c.fail("pipe-overflow", "%d outstanding packets exceed pipe size %d",
				len(c.pending)+1, c.Node.PipeSize)
		}
		// Type 1: single outstanding.
		if cfg.Type == stbus.Type1 && len(c.pending) > 0 {
			c.fail("t1-outstanding", "Type 1 port with %d outstanding", len(c.pending))
		}
	} else {
		if cell.Opc != c.reqFirst.Opc {
			c.fail("opcode-change", "opcode changed mid-packet %v -> %v", c.reqFirst.Opc, cell.Opc)
		}
		if cell.TID != c.reqFirst.TID || cell.Src != c.reqFirst.Src {
			c.fail("tag-change", "tid/src changed mid-packet")
		}
	}
	c.reqCount++
	want := stbus.ReqLen(cfg.Type, c.reqFirst.Opc, cfg.BusBytes())
	if cell.EOP {
		if c.reqFirst.Opc.Valid() && c.reqCount != want {
			c.fail("packet-length", "%v request packet has %d cells, want %d",
				c.reqFirst.Opc, c.reqCount, want)
		}
		rt := 0
		if c.route != nil {
			rt = c.route(c.reqFirst.Addr)
		} else if !c.InitiatorSide {
			rt = 0 // target ports: the route is this target
		}
		c.pending = append(c.pending, checkerPending{
			op: c.reqFirst.Opc, addr: c.reqFirst.Addr, tid: c.reqFirst.TID,
			src: c.reqFirst.Src, route: rt,
		})
		c.chunkOpen = cell.Lck
		if cell.Lck {
			c.chunkSrc = c.reqFirst.Src
		}
		c.reqCount = 0
	} else if c.reqFirst.Opc.Valid() && c.reqCount >= want {
		c.fail("eop-missing", "%v request packet exceeded %d cells without eop", c.reqFirst.Opc, want)
		c.reqCount = 0
	}
}

func (c *Checker) onRespCell(cell stbus.RespCell) {
	cfg := c.Node.Port
	if c.respCount == 0 {
		c.respFirst = cell
	} else if cell.TID != c.respFirst.TID || cell.Src != c.respFirst.Src {
		c.fail("resp-interleave", "response packet interleaved (tid %d/%d src %d/%d)",
			c.respFirst.TID, cell.TID, c.respFirst.Src, cell.Src)
	}
	c.respCount++
	if !cell.EOP {
		return
	}
	count := c.respCount
	c.respCount = 0
	// Pair with a pending request.
	idx := -1
	if cfg.Type == stbus.Type3 {
		for k, pd := range c.pending {
			if pd.src == c.respFirst.Src && pd.tid == c.respFirst.TID {
				idx = k
				break
			}
		}
		if idx < 0 {
			c.fail("resp-unknown-tag", "response (src=%d tid=%d) matches no outstanding request",
				c.respFirst.Src, c.respFirst.TID)
			return
		}
	} else {
		if len(c.pending) == 0 {
			c.fail("resp-orphan", "response with no outstanding request")
			return
		}
		idx = 0
		pd := c.pending[0]
		if pd.src != c.respFirst.Src || pd.tid != c.respFirst.TID {
			c.fail("order", "%v response (src=%d tid=%d) out of order, expected (src=%d tid=%d)",
				cfg.Type, c.respFirst.Src, c.respFirst.TID, pd.src, pd.tid)
			// Fall back to tag matching so one ordering bug does not cascade.
			for k, q := range c.pending {
				if q.src == c.respFirst.Src && q.tid == c.respFirst.TID {
					idx = k
					break
				}
			}
		}
	}
	pd := c.pending[idx]
	c.pending = append(c.pending[:idx], c.pending[idx+1:]...)
	want := stbus.RespLen(cfg.Type, pd.op, cfg.BusBytes())
	if pd.op.Valid() && count != want {
		c.fail("resp-length", "%v response packet has %d cells, want %d", pd.op, count, want)
	}
	if pd.route == RouteUnmapped && !cell.Err() {
		c.fail("err-expected", "unmapped access (addr %#x) answered without error flag", pd.addr)
	}
}

// OutstandingCount returns the checker's view of in-flight packets.
func (c *Checker) OutstandingCount() int { return len(c.pending) }
