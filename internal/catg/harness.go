package catg

import (
	"math/rand"

	"crve/internal/sim"
	"crve/internal/stbus"
)

// InitiatorBFM drives one initiator-facing DUT port with a generated
// operation stream, honouring the request handshake (cells held until
// granted) and always accepting responses. It corresponds to the "Harness"
// blocks of the paper's Figure 2.
type InitiatorBFM struct {
	Port *stbus.Port

	ops     []Op
	opIdx   int
	cellIdx int
	idle    int
	started bool

	sentPackets int
	respEOPs    int
}

// NewInitiatorBFM attaches a BFM to port, registering its clocked driver
// process with the simulator.
func NewInitiatorBFM(sm *sim.Simulator, port *stbus.Port, ops []Op) *InitiatorBFM {
	b := &InitiatorBFM{Port: port, ops: ops}
	sm.Seq(port.Name+".bfm", b.tick)
	return b
}

func (b *InitiatorBFM) tick() {
	p := b.Port
	if p.ReqFire() {
		cur := b.ops[b.opIdx]
		b.cellIdx++
		if b.cellIdx == len(cur.Cells) {
			b.sentPackets++
			b.opIdx++
			b.cellIdx = 0
			if b.opIdx < len(b.ops) {
				b.idle = b.ops[b.opIdx].IdleBefore
			}
		}
	} else if b.started && b.idle > 0 && !p.Req.Bool() {
		b.idle--
	}
	if !b.started {
		b.started = true
		if b.opIdx < len(b.ops) {
			b.idle = b.ops[b.opIdx].IdleBefore
		}
	}
	if b.opIdx < len(b.ops) && b.idle == 0 {
		p.DriveCell(b.ops[b.opIdx].Cells[b.cellIdx])
	} else {
		p.IdleReq()
	}
	if p.RespFire() && p.SampleResp().EOP {
		b.respEOPs++
	}
	p.RGnt.SetBool(true)
}

// Done reports whether every operation was issued and every response packet
// received.
func (b *InitiatorBFM) Done() bool {
	return b.opIdx >= len(b.ops) && b.respEOPs >= b.sentPackets
}

// Sent returns the number of request packets fully issued.
func (b *InitiatorBFM) Sent() int { return b.sentPackets }

// Received returns the number of response packets received.
func (b *InitiatorBFM) Received() int { return b.respEOPs }

// TargetSeed derives the timing seed of target tgt from a test seed, the
// formula shared by the signal-level bench (internal/core) and the
// transaction-level bench (internal/tlm) so both consume identical
// randomness.
func TargetSeed(testSeed int64, tgt int) int64 { return testSeed*7919 + int64(tgt) }

// TargetConfig parameterises a target BFM's timing behaviour.
type TargetConfig struct {
	// MinLatency..MaxLatency bound the random response latency in cycles.
	MinLatency, MaxLatency int
	// GntGapPct is the percentage chance of a 1..3-cycle grant gap after an
	// accepted cell (a "slow target", the paper's out-of-order forcing
	// device).
	GntGapPct int
	// QueueDepth bounds packets in flight inside the target.
	QueueDepth int
}

// WithDefaults fills zero-valued fields.
func (tc TargetConfig) WithDefaults() TargetConfig {
	if tc.MaxLatency < tc.MinLatency {
		tc.MaxLatency = tc.MinLatency
	}
	if tc.QueueDepth == 0 {
		tc.QueueDepth = 4
	}
	return tc
}

type tgtPkt struct {
	resp    []stbus.RespCell
	readyAt uint64
	idx     int
}

// TargetBFM models a memory-backed STBus target with seeded random timing.
// The same seed yields the same grant/latency pattern on both DUT views.
type TargetBFM struct {
	Port *stbus.Port
	Cfg  TargetConfig

	rng   *rand.Rand
	mem   map[uint64]byte
	cur   []stbus.Cell
	queue []*tgtPkt
	gap   int
	cyc   uint64
}

// NewTargetBFM attaches a target BFM to port.
func NewTargetBFM(sm *sim.Simulator, port *stbus.Port, cfg TargetConfig, seed int64) *TargetBFM {
	b := &TargetBFM{Port: port, Cfg: cfg.WithDefaults(), rng: rand.New(rand.NewSource(seed)),
		mem: make(map[uint64]byte)}
	sm.Seq(port.Name+".bfm", b.tick)
	return b
}

// Peek reads a byte of the target's memory, for tests.
func (b *TargetBFM) Peek(addr uint64) byte { return b.mem[addr] }

func (b *TargetBFM) tick() {
	p := b.Port
	b.cyc++
	if p.ReqFire() {
		b.cur = append(b.cur, p.SampleCell())
		if b.Cfg.GntGapPct > 0 && b.rng.Intn(100) < b.Cfg.GntGapPct {
			b.gap = 1 + b.rng.Intn(3)
		}
		if b.cur[len(b.cur)-1].EOP {
			// serve consumes the cells synchronously, so the packet buffer is
			// reused across packets instead of reallocated.
			b.queue = append(b.queue, b.serve(b.cur))
			b.cur = b.cur[:0]
		}
	} else if b.gap > 0 {
		b.gap--
	}
	if p.RespFire() {
		h := b.queue[0]
		h.idx++
		if h.idx == len(h.resp) {
			b.queue = b.queue[1:]
		}
	}
	if len(b.queue) > 0 && b.cyc >= b.queue[0].readyAt {
		p.DriveResp(b.queue[0].resp[b.queue[0].idx])
	} else {
		p.IdleResp()
	}
	p.Gnt.SetBool(len(b.queue) < b.Cfg.QueueDepth && b.gap == 0)
}

// serve executes a completed request packet against the memory model.
func (b *TargetBFM) serve(cells []stbus.Cell) *tgtPkt {
	cfg := b.Port.Cfg
	first := cells[0]
	op, addr := first.Opc, first.Addr
	lat := b.Cfg.MinLatency
	if b.Cfg.MaxLatency > b.Cfg.MinLatency {
		lat += b.rng.Intn(b.Cfg.MaxLatency - b.Cfg.MinLatency + 1)
	}
	pk := &tgtPkt{readyAt: b.cyc + uint64(lat)}
	var rd []byte
	if op.IsLoad() {
		rd = make([]byte, op.SizeBytes())
		for i := range rd {
			rd[i] = b.mem[addr+uint64(i)]
		}
	}
	if op.HasWriteData() {
		for i, v := range stbus.ExtractWriteData(cfg.Endian, cells, cfg.BusBytes()) {
			b.mem[addr+uint64(i)] = v
		}
	}
	resp, err := stbus.BuildResponse(cfg.Type, cfg.Endian, op, addr, rd, cfg.BusBytes(),
		first.TID, first.Src, false)
	if err != nil {
		resp = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
	}
	pk.resp = resp
	return pk
}
