package catg

import (
	"testing"

	"crve/internal/nodespec"
	"crve/internal/stbus"
)

func unionNode(arch nodespec.Arch, allowed [][]bool) nodespec.Config {
	return nodespec.Config{
		Name:    "u",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32, AddrBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:    arch,
		Allowed: allowed,
		Map: stbus.AddrMap{
			{Base: 0x0000, Size: 0x1000, Target: 0},
			{Base: 0x1000, Size: 0x1000, Target: 1},
		},
		PipeSize: 4,
	}.WithDefaults()
}

func TestUnionTrafficCoversSuiteModels(t *testing.T) {
	node := unionNode(nodespec.FullCrossbar, nil)
	tc := UnionTraffic(node)
	if tc.ProgPct != 0 {
		t.Error("ProgPct set without a programming port")
	}
	node.ProgPort, node.ProgBase = true, 0x8000
	if UnionTraffic(node).ProgPct == 0 {
		t.Error("ProgPct unset despite a programming port")
	}
	// The union model must declare a superset of any per-test model: merging
	// a narrow test's group into the union group must succeed.
	union := NewCoverageModel(node, UnionTraffic(node)).Group
	narrow := NewCoverageModel(node, TrafficConfig{
		Kinds: []stbus.OpKind{stbus.KindRMW},
		Sizes: []int{1},
	}).Group
	if err := union.Merge(narrow); err != nil {
		t.Fatalf("union model does not cover a narrow test model: %v", err)
	}
}

func TestUnreachableBinsDiagonalCrossbar(t *testing.T) {
	// Each initiator reaches exactly one target: completion_order is declared
	// (t3, 2 targets, pipe 4) but "reordered" can never be observed.
	diag := unionNode(nodespec.PartialCrossbar, [][]bool{{true, false}, {false, true}})
	dead := UnreachableBins(diag, UnionTraffic(diag))
	if len(dead) != 1 || dead[0].Item != "completion_order" || dead[0].Bin != "reordered" {
		t.Fatalf("dead bins = %v, want [completion_order/reordered]", dead)
	}
	// The declared model really contains the dead bin — the diagnostic points
	// at something that exists.
	g := NewCoverageModel(diag, UnionTraffic(diag)).Group
	found := false
	for _, h := range g.Holes() {
		if h == dead[0] {
			found = true
		}
	}
	if !found {
		t.Error("dead bin not among the declared model's holes")
	}

	// One row with fanout two: reordering is observable, nothing is dead.
	fan := unionNode(nodespec.PartialCrossbar, [][]bool{{true, true}, {false, true}})
	if dead := UnreachableBins(fan, UnionTraffic(fan)); len(dead) != 0 {
		t.Errorf("dead bins = %v on a config with fanout 2", dead)
	}
	// Full crossbar, shared bus: never dead.
	full := unionNode(nodespec.FullCrossbar, nil)
	if dead := UnreachableBins(full, UnionTraffic(full)); len(dead) != 0 {
		t.Errorf("dead bins = %v on a full crossbar", dead)
	}
	// Type2 declares no completion_order item at all.
	t2 := unionNode(nodespec.PartialCrossbar, [][]bool{{true, false}, {false, true}})
	t2.Port.Type = stbus.Type2
	if dead := UnreachableBins(t2, UnionTraffic(t2)); len(dead) != 0 {
		t.Errorf("dead bins = %v on a t2 node", dead)
	}
}
