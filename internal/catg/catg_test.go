package catg

import (
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)

func nodeCfg(nInit, nTgt int) nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: nInit, NumTgt: nTgt,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Priority, RespArb: arb.Priority,
		Map: stbus.UniformMap(nTgt, 0x1000, 0x1000),
	}.WithDefaults()
}

// bench is a fully assembled CATG environment around a DUT.
type bench struct {
	sm       *sim.Simulator
	bfms     []*InitiatorBFM
	initMons []*Monitor
	tgtMons  []*Monitor
	checkers []*Checker
	sb       *Scoreboard
	cov      *CoverageModel
}

// buildBench wires CATG components around the given DUT ports (Figure 2).
func buildBench(sm *sim.Simulator, cfg nodespec.Config, tc TrafficConfig, seed int64,
	initPorts, tgtPorts []*stbus.Port) *bench {
	b := &bench{sm: sm}
	for i, p := range initPorts {
		ops := GenerateOps(cfg, tc, i, seed)
		b.bfms = append(b.bfms, NewInitiatorBFM(sm, p, ops))
		b.initMons = append(b.initMons, NewMonitor(sm, p, i, true, NodeRouter(cfg, i)))
		b.checkers = append(b.checkers, NewChecker(sm, p, cfg, true, NodeRouter(cfg, i)))
	}
	for t, p := range tgtPorts {
		NewTargetBFM(sm, p, TargetConfig{MinLatency: 1, MaxLatency: 6, GntGapPct: 20}, seed*31+int64(t))
		b.tgtMons = append(b.tgtMons, NewMonitor(sm, p, t, false, nil))
		b.checkers = append(b.checkers, NewChecker(sm, p, cfg, false, nil))
	}
	b.sb = NewScoreboard(cfg, b.initMons, b.tgtMons)
	b.cov = NewCoverageModel(cfg, tc)
	b.cov.SubscribeMonitors(sm, b.initMons)
	return b
}

func (b *bench) run(t *testing.T, limit int) {
	t.Helper()
	done := func() bool {
		for _, bfm := range b.bfms {
			if !bfm.Done() {
				return false
			}
		}
		return true
	}
	if err := b.sm.RunUntil(done, limit); err != nil {
		t.Fatalf("bench did not drain: %v", err)
	}
	if err := b.sm.Run(10); err != nil { // settle tail
		t.Fatal(err)
	}
}

func (b *bench) violations() []Violation {
	var out []Violation
	for _, c := range b.checkers {
		out = append(out, c.Violations...)
	}
	return out
}

func TestGenerateOpsDeterministic(t *testing.T) {
	cfg := nodeCfg(2, 2)
	tc := TrafficConfig{Ops: 40, UnmappedPct: 5, ChunkPct: 10, IdlePct: 20}
	a := GenerateOps(cfg, tc, 0, 99)
	b := GenerateOps(cfg, tc, 0, 99)
	if len(a) != len(b) || len(a) != 40 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Cells) != len(b[i].Cells) || a[i].IdleBefore != b[i].IdleBefore {
			t.Fatalf("op %d differs", i)
		}
		for j := range a[i].Cells {
			if a[i].Cells[j] != b[i].Cells[j] {
				t.Fatalf("op %d cell %d differs", i, j)
			}
		}
	}
	c := GenerateOps(cfg, tc, 0, 100)
	same := true
	for i := range a {
		if len(a[i].Cells) != len(c[i].Cells) || a[i].Cells[0] != c[i].Cells[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different traffic")
	}
}

func TestGenerateOpsRespectConstraints(t *testing.T) {
	cfg := nodeCfg(2, 3)
	tc := TrafficConfig{Ops: 60, Targets: []int{1}, Sizes: []int{4}, Kinds: []stbus.OpKind{stbus.KindStore}}
	ops := GenerateOps(cfg, tc, 0, 5)
	for _, o := range ops {
		first := o.Cells[0]
		if first.Opc != stbus.ST4 {
			t.Fatalf("opcode %v, want ST4", first.Opc)
		}
		if r := cfg.Map.Route(first.Addr); r != 1 {
			t.Fatalf("address %#x routed to %d, want 1", first.Addr, r)
		}
	}
}

func TestGenerateOpsChunksStayOnOneTarget(t *testing.T) {
	cfg := nodeCfg(1, 4)
	tc := TrafficConfig{Ops: 50, ChunkPct: 100}
	ops := GenerateOps(cfg, tc, 0, 3)
	for i := 0; i < len(ops); i++ {
		if !ops[i].Cells[len(ops[i].Cells)-1].Lck {
			continue
		}
		if i+1 >= len(ops) {
			t.Fatal("dangling chunk at end of stream")
		}
		t1 := cfg.Map.Route(ops[i].Cells[0].Addr)
		t2 := cfg.Map.Route(ops[i+1].Cells[0].Addr)
		if t1 != t2 {
			t.Fatalf("chunk spans targets %d and %d", t1, t2)
		}
	}
}

func TestBenchRTLCleanRun(t *testing.T) {
	cfg := nodeCfg(3, 2)
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := TrafficConfig{Ops: 40, UnmappedPct: 5, ChunkPct: 10, IdlePct: 15, PriMax: 7}
	b := buildBench(sm, cfg, tc, 1234, n.Init, n.Tgt)
	b.run(t, 40000)
	if vs := b.violations(); len(vs) != 0 {
		t.Fatalf("protocol violations on clean RTL run: %v", vs[0])
	}
	if errs := b.sb.Check(); len(errs) != 0 {
		t.Fatalf("scoreboard errors: %s", errs[0])
	}
	if pct := b.cov.Group.Percent(); pct < 80 {
		t.Errorf("coverage only %.1f%%\n%s", pct, b.cov.Group.Report())
	}
}

func TestBenchBCACleanRun(t *testing.T) {
	cfg := nodeCfg(3, 2)
	sm := sim.New()
	n, err := bca.NewNode(sim.Root(sm), cfg, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	tc := TrafficConfig{Ops: 40, UnmappedPct: 5, ChunkPct: 10, IdlePct: 15, PriMax: 7}
	b := buildBench(sm, cfg, tc, 1234, n.Init, n.Tgt)
	b.run(t, 40000)
	if vs := b.violations(); len(vs) != 0 {
		t.Fatalf("protocol violations on clean BCA run: %v", vs[0])
	}
	if errs := b.sb.Check(); len(errs) != 0 {
		t.Fatalf("scoreboard errors: %s", errs[0])
	}
}

func TestBenchCoverageEqualAcrossViews(t *testing.T) {
	cfg := nodeCfg(2, 2)
	tc := TrafficConfig{Ops: 50, UnmappedPct: 5, ChunkPct: 10, IdlePct: 10}
	runView := func(build func(sm *sim.Simulator) ([]*stbus.Port, []*stbus.Port, error)) *CoverageModel {
		sm := sim.New()
		initP, tgtP, err := build(sm)
		if err != nil {
			t.Fatal(err)
		}
		b := buildBench(sm, cfg, tc, 777, initP, tgtP)
		b.run(t, 40000)
		return b.cov
	}
	covR := runView(func(sm *sim.Simulator) ([]*stbus.Port, []*stbus.Port, error) {
		n, err := rtl.NewNode(sim.Root(sm), cfg)
		if err != nil {
			return nil, nil, err
		}
		return n.Init, n.Tgt, nil
	})
	covB := runView(func(sm *sim.Simulator) ([]*stbus.Port, []*stbus.Port, error) {
		n, err := bca.NewNode(sim.Root(sm), cfg, bca.Bugs{})
		if err != nil {
			return nil, nil, err
		}
		return n.Init, n.Tgt, nil
	})
	if eq, why := covR.Group.EqualHits(covB.Group); !eq {
		t.Errorf("coverage differs between views: %s", why)
	}
}

func TestCheckersCatchSeededBugs(t *testing.T) {
	// Bugs detectable by port-level checkers and the scoreboard alone
	// (without the alignment comparison): pipe overflow, error-tid, chunk
	// interleave, T2 ordering.
	cases := []struct {
		name string
		bugs bca.Bugs
		cfg  nodespec.Config
		tc   TrafficConfig
		rule string
	}{
		{
			name: "pipe-off-by-one",
			bugs: bca.Bugs{PipeOffByOne: true},
			cfg: func() nodespec.Config {
				c := nodeCfg(1, 1)
				c.PipeSize = 2
				return c
			}(),
			tc:   TrafficConfig{Ops: 40},
			rule: "pipe-overflow",
		},
		{
			name: "err-resp-tid-zero",
			bugs: bca.Bugs{ErrRespTIDZero: true},
			cfg:  nodeCfg(1, 1),
			tc:   TrafficConfig{Ops: 40, UnmappedPct: 40},
			rule: "resp-unknown-tag",
		},
		{
			name: "t2-order-ignored",
			bugs: bca.Bugs{T2OrderIgnored: true},
			cfg: func() nodespec.Config {
				c := nodeCfg(1, 2)
				c.Port.Type = stbus.Type2
				return c
			}(),
			tc:   TrafficConfig{Ops: 60},
			rule: "order",
		},
		{
			name: "chunk-lck-ignored",
			bugs: bca.Bugs{ChunkLckIgnored: true},
			cfg: func() nodespec.Config {
				c := nodeCfg(3, 1)
				c.ReqArb = arb.RoundRobin
				return c
			}(),
			tc:   TrafficConfig{Ops: 60, ChunkPct: 50},
			rule: "chunk-interleave",
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sm := sim.New()
			n, err := bca.NewNode(sim.Root(sm), c.cfg, c.bugs)
			if err != nil {
				t.Fatal(err)
			}
			b := buildBench(sm, c.cfg, c.tc, 31, n.Init, n.Tgt)
			// A bugged DUT may stall or misbehave; run bounded and don't
			// require drain.
			done := func() bool {
				for _, bfm := range b.bfms {
					if !bfm.Done() {
						return false
					}
				}
				return true
			}
			_ = sm.RunUntil(done, 30000)
			found := false
			for _, v := range b.violations() {
				if v.Rule == c.rule {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("rule %q not triggered; violations: %v", c.rule, b.violations())
			}
		})
	}
}

func TestOOOCoverageBinHit(t *testing.T) {
	cfg := nodeCfg(1, 2)
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different-speed targets force out-of-order completion (paper §5).
	b := &bench{sm: sm}
	tc := TrafficConfig{Ops: 60}
	ops := GenerateOps(cfg, tc, 0, 12)
	b.bfms = append(b.bfms, NewInitiatorBFM(sm, n.Init[0], ops))
	b.initMons = append(b.initMons, NewMonitor(sm, n.Init[0], 0, true, NodeRouter(cfg, 0)))
	NewTargetBFM(sm, n.Tgt[0], TargetConfig{MinLatency: 25, MaxLatency: 25}, 1)
	NewTargetBFM(sm, n.Tgt[1], TargetConfig{MinLatency: 0, MaxLatency: 0}, 2)
	b.cov = NewCoverageModel(cfg, tc)
	b.cov.SubscribeMonitors(sm, b.initMons)
	b.run(t, 30000)
	if b.cov.Group.MustItem("completion_order").Hits("reordered") == 0 {
		t.Error("reordered bin never hit despite different-speed targets")
	}
}

func TestMonitorReconstructsTransaction(t *testing.T) {
	cfg := nodeCfg(1, 1)
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(sm, n.Init[0], 0, true, NodeRouter(cfg, 0))
	NewTargetBFM(sm, n.Tgt[0], TargetConfig{MinLatency: 3, MaxLatency: 3}, 1)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	cells, err := stbus.BuildRequest(stbus.Type3, stbus.LittleEndian, stbus.ST8, 0x1008,
		payload, 4, 9, 0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	bfm := NewInitiatorBFM(sm, n.Init[0], []Op{{Cells: cells}})
	if err := sm.RunUntil(bfm.Done, 300); err != nil {
		t.Fatal(err)
	}
	if len(mon.CompletedTxs()) != 1 {
		t.Fatalf("%d transactions", len(mon.CompletedTxs()))
	}
	tr := mon.CompletedTxs()[0]
	if tr.Opc != stbus.ST8 || tr.Addr != 0x1008 || tr.TID != 9 || tr.Target != 0 || tr.Initiator != 0 {
		t.Errorf("transaction %v", tr)
	}
	if string(tr.WriteData) != string(payload) {
		t.Errorf("write data %x", tr.WriteData)
	}
	if tr.Err {
		t.Error("unexpected error flag")
	}
	if tr.EndCycle <= tr.StartCycle {
		t.Error("cycle stamps wrong")
	}
}

func TestCheckerCleanOnDirectedTraffic(t *testing.T) {
	cfg := nodeCfg(1, 1)
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewChecker(sm, n.Init[0], cfg, true, NodeRouter(cfg, 0))
	NewTargetBFM(sm, n.Tgt[0], TargetConfig{}, 1)
	ops := GenerateOps(cfg, TrafficConfig{Ops: 20}, 0, 4)
	bfm := NewInitiatorBFM(sm, n.Init[0], ops)
	if err := sm.RunUntil(bfm.Done, 5000); err != nil {
		t.Fatal(err)
	}
	if !ck.Passed() {
		t.Fatalf("violations: %v", ck.Violations)
	}
	if ck.OutstandingCount() != 0 {
		t.Errorf("checker still tracks %d outstanding", ck.OutstandingCount())
	}
}
