package stba

import (
	"fmt"

	"crve/internal/stbus"
	"crve/internal/vcd"
)

// PortTrace is the cycle-sampled signal view of one STBus port inside a VCD
// dump.
type PortTrace struct {
	f      *vcd.File
	prefix string
	idx    map[string]int
}

// OpenPort binds the named port prefix inside a dump.
func OpenPort(f *vcd.File, prefix string) (*PortTrace, error) {
	pt := &PortTrace{f: f, prefix: prefix, idx: map[string]int{}}
	for _, leaf := range []string{"req", "gnt", "opc", "add", "data", "be", "eop", "lck",
		"tid", "src", "pri", "r_req", "r_gnt", "r_opc", "r_data", "r_eop", "r_tid", "r_src"} {
		i := f.VarIndex(prefix + "." + leaf)
		if i < 0 {
			return nil, fmt.Errorf("stba: port %q lacks signal %q", prefix, leaf)
		}
		pt.idx[leaf] = i
	}
	return pt, nil
}

func (pt *PortTrace) at(leaf string, cyc uint64) uint64 {
	return pt.f.ValueAt(pt.idx[leaf], cyc*vcd.TimePerCycle).Uint64()
}

func (pt *PortTrace) bitsAt(leaf string, cyc uint64) (v uint64, b bool) {
	x := pt.f.ValueAt(pt.idx[leaf], cyc*vcd.TimePerCycle)
	return x.Uint64(), x.Bool()
}

// ExtractTransactions reconstructs the transaction stream observed at a port
// from a waveform dump — the "STBus transaction information" the paper's
// analyzer extracts. typ selects the protocol rules used to pair responses
// with requests.
func ExtractTransactions(f *vcd.File, prefix string, typ stbus.Type) ([]*stbus.Transaction, error) {
	pt, err := OpenPort(f, prefix)
	if err != nil {
		return nil, err
	}
	type pend struct {
		tr *stbus.Transaction
	}
	var pending []*pend
	var out []*stbus.Transaction
	var reqStart uint64
	inReq := false
	var reqFirstOpc stbus.Opcode
	var reqFirstAddr uint64
	var reqFirstTID, reqFirstSrc, reqFirstPri uint8
	var reqLck bool
	inResp := false
	var respErr bool
	var respTID, respSrc uint8

	cycles := f.Cycles()
	for cyc := uint64(0); cyc < cycles; cyc++ {
		reqFire := pt.at("req", cyc) != 0 && pt.at("gnt", cyc) != 0
		if reqFire {
			if !inReq {
				inReq = true
				reqStart = cyc
				reqFirstOpc = stbus.Opcode(pt.at("opc", cyc))
				reqFirstAddr = pt.at("add", cyc)
				reqFirstTID = uint8(pt.at("tid", cyc))
				reqFirstSrc = uint8(pt.at("src", cyc))
				reqFirstPri = uint8(pt.at("pri", cyc))
			}
			if _, lck := pt.bitsAt("lck", cyc); lck {
				reqLck = true
			}
			if _, eop := pt.bitsAt("eop", cyc); eop {
				tr := &stbus.Transaction{
					Initiator: -1, Target: -1,
					Opc: reqFirstOpc, Addr: reqFirstAddr,
					TID: reqFirstTID, Src: reqFirstSrc, Pri: reqFirstPri,
					Lck: reqLck, StartCycle: reqStart, ReqEndCycle: cyc,
				}
				pending = append(pending, &pend{tr: tr})
				inReq = false
				reqLck = false
			}
		}
		respFire := pt.at("r_req", cyc) != 0 && pt.at("r_gnt", cyc) != 0
		if respFire {
			if !inResp {
				inResp = true
				respErr = false
				respTID = uint8(pt.at("r_tid", cyc))
				respSrc = uint8(pt.at("r_src", cyc))
			}
			if stbus.IsErrorResp(uint8(pt.at("r_opc", cyc))) {
				respErr = true
			}
			if _, eop := pt.bitsAt("r_eop", cyc); eop {
				inResp = false
				idx := -1
				if typ == stbus.Type3 {
					for k, pd := range pending {
						if pd.tr.Src == respSrc && pd.tr.TID == respTID {
							idx = k
							break
						}
					}
				} else if len(pending) > 0 {
					idx = 0
				}
				if idx >= 0 {
					pd := pending[idx]
					pending = append(pending[:idx], pending[idx+1:]...)
					pd.tr.EndCycle = cyc
					pd.tr.Err = respErr
					out = append(out, pd.tr)
				}
			}
		}
	}
	return out, nil
}
