package stba

import (
	"bytes"
	"encoding/json"
	"testing"

	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
	"crve/internal/vcd"
)

// runViewObserved runs one DUT view under the shared CATG bench with a text
// Writer, a compact Recorder, and — when ref is non-nil — a streaming
// Observer all attached to the same sampling points. It returns the parsed
// dump, the recording, and the observer.
func runViewObserved(t *testing.T, cfg nodespec.Config, bugs *bca.Bugs, seed int64, cycles int, ref *vcd.Recording) (*vcd.File, *vcd.Recording, *Observer) {
	t.Helper()
	sm := sim.New()
	var initPorts, tgtPorts []*stbus.Port
	if bugs == nil {
		n, err := rtl.NewNode(sim.Root(sm), cfg)
		if err != nil {
			t.Fatal(err)
		}
		initPorts, tgtPorts = n.Init, n.Tgt
	} else {
		n, err := bca.NewNode(sim.Root(sm), cfg, *bugs)
		if err != nil {
			t.Fatal(err)
		}
		initPorts, tgtPorts = n.Init, n.Tgt
	}
	var buf bytes.Buffer
	wr := vcd.NewWriter(&buf, "tb")
	rc := vcd.NewRecorder("tb")
	var sigs []*sim.Signal
	for i, p := range initPorts {
		ops := catg.GenerateOps(cfg, catg.TrafficConfig{Ops: 25, UnmappedPct: 4, IdlePct: 10}, i, seed)
		catg.NewInitiatorBFM(sm, p, ops)
		sigs = append(sigs, p.Signals()...)
	}
	for ti, p := range tgtPorts {
		catg.NewTargetBFM(sm, p, catg.TargetConfig{MinLatency: 1, MaxLatency: 5, GntGapPct: 15},
			seed*17+int64(ti))
		sigs = append(sigs, p.Signals()...)
	}
	for _, s := range sigs {
		wr.Declare(s)
		rc.Declare(s)
	}
	wr.Attach(sm)
	rc.Attach(sm)
	var obs *Observer
	if ref != nil {
		var err error
		if obs, err = NewObserver(ref, sigs); err != nil {
			t.Fatal(err)
		}
		obs.Attach(sm)
	}
	if err := sm.Run(cycles); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := vcd.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return f, rc.Recording(), obs
}

// checkObserverMatchesCompare asserts the streaming report is JSON-identical
// to the legacy VCD round-trip report for the given scenario.
func checkObserverMatchesCompare(t *testing.T, bugs bca.Bugs, seed int64, rtlCycles, bcaCycles int) {
	t.Helper()
	cfg := nodeCfg()
	fr, rec, _ := runViewObserved(t, cfg, nil, seed, rtlCycles, nil)
	fb, _, obs := runViewObserved(t, cfg, &bugs, seed, bcaCycles, rec)

	want, err := Compare(fr, fb, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := obs.Report()
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Errorf("observer report differs from legacy Compare:\n legacy: %s\nstream: %s", wj, gj)
	}
	if got.String() != want.String() {
		t.Errorf("rendered reports differ:\n--- legacy ---\n%s--- stream ---\n%s", want.String(), got.String())
	}
}

func TestObserverMatchesCompareBugFree(t *testing.T) {
	checkObserverMatchesCompare(t, bca.Bugs{}, 5, 1500, 1500)
}

func TestObserverMatchesCompareBugged(t *testing.T) {
	checkObserverMatchesCompare(t, bca.Bugs{LRUInit: true}, 5, 1500, 1500)
}

func TestObserverMatchesCompareShortRun(t *testing.T) {
	// The live run stops early: the tail must be charged exactly as Compare
	// charges a short dump.
	checkObserverMatchesCompare(t, bca.Bugs{}, 7, 1500, 900)
	// And the reference can be the short side too.
	checkObserverMatchesCompare(t, bca.Bugs{LRUInit: true}, 7, 900, 1500)
}

func TestObserverRecordingRoundTripVCD(t *testing.T) {
	// The recording captured alongside the observer re-serves the exact VCD
	// text the Writer produced, so the compact artifact loses nothing.
	cfg := nodeCfg()
	sm := sim.New()
	n, err := rtl.NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wr := vcd.NewWriter(&buf, "tb")
	rc := vcd.NewRecorder("tb")
	for i, p := range n.Init {
		ops := catg.GenerateOps(cfg, catg.TrafficConfig{Ops: 10, IdlePct: 10}, i, 3)
		catg.NewInitiatorBFM(sm, p, ops)
	}
	for ti, p := range n.Tgt {
		catg.NewTargetBFM(sm, p, catg.TargetConfig{MinLatency: 1, MaxLatency: 4}, int64(ti))
	}
	for _, p := range append(append([]*stbus.Port{}, n.Init...), n.Tgt...) {
		for _, s := range p.Signals() {
			wr.Declare(s)
			rc.Declare(s)
		}
	}
	wr.Attach(sm)
	rc.Attach(sm)
	if err := sm.Run(600); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rc.Recording().VCD(); !bytes.Equal(got, buf.Bytes()) {
		t.Error("Recording.VCD differs from Writer output on a DUT run")
	}
}

func TestObserverErrors(t *testing.T) {
	empty := vcd.NewRecorder("tb").Recording()
	if _, err := NewObserver(empty, nil); err == nil {
		t.Error("no ports should fail")
	}
	sm := sim.New()
	req := sm.Signal("p.req", 1)
	gnt := sm.Signal("p.gnt", 1)
	extra := sm.Signal("p.extra", 8)
	rc := vcd.NewRecorder("tb")
	rc.Declare(req)
	rc.Declare(gnt)
	rc.Sample(0)
	rec := rc.Recording()
	if _, err := NewObserver(rec, []*sim.Signal{req, gnt, extra}); err == nil {
		t.Error("live-only signal should fail (missing from first dump)")
	}
	if _, err := NewObserver(rec, []*sim.Signal{req}); err == nil {
		t.Error("recording-only signal should fail (missing from second dump)")
	}
	if obs, err := NewObserver(rec, []*sim.Signal{req, gnt}); err != nil {
		t.Errorf("symmetric signal sets must construct: %v", err)
	} else if rep := obs.Report(); rep.AllPass() {
		// Zero samples: one virtual all-zero live cycle against a one-cycle
		// recording; rates are defined, and nothing passes vacuously here
		// because both sides are all-zero and aligned — the report has ports.
		if len(rep.Ports) != 1 || rep.Ports[0].Cycles != 1 {
			t.Errorf("unexpected zero-sample report: %+v", rep.Ports)
		}
	}
}
