package stba

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"crve/internal/sim"
	"crve/internal/vcd"
)

// Observer is the streaming STBus Analyzer: it attaches to the second
// (typically BCA) simulation at the same cycle boundaries as vcd.Writer and
// compares live signal values against a compact Recording captured from the
// first (RTL) run — no VCD text, no parsing, no per-cycle value searches.
// After the run, Report returns the same *Report the legacy pipeline
// (write two VCDs, Parse both, Compare) produces, byte for byte.
//
// The comparison window is min of the two sides' cycle counts, each defined
// by its last signal activity exactly like File.Cycles on a parsed dump; the
// window is therefore only known once the live run ends, so per-port
// mismatches are kept as cycle bitsets and accounted at Report time (cycles
// at or past the window are discarded, the uncovered tail is charged as
// misaligned).
type Observer struct {
	rec    *vcd.Recording
	cursor *vcd.Cursor
	ports  []obsPort

	// sigs/prev track every observed live signal so the live side's cycle
	// count is derived from its last change, mirroring the dump's EndTime.
	sigs    []*sim.Signal
	prev    []sim.Bits
	started bool
	samples uint64
	liveEnd uint64
}

// obsPort is the per-port comparison state.
type obsPort struct {
	name   string
	names  []string      // signal names, sorted — legacy pair order
	recIdx []int         // recording index per signal
	live   []*sim.Signal // live signal per name

	mismatch   []uint64 // bitset of mismatching cycles
	firstCycle int64    // first mismatching cycle, or -1
	firstNames []string // all mismatching signals at firstCycle
}

// NewObserver builds an observer comparing the recording (first dump) against
// the given live signals (second dump). Ports are discovered over the union
// of both sides; a port signal present on only one side is an error, exactly
// as in Compare.
func NewObserver(rec *vcd.Recording, sigs []*sim.Signal) (*Observer, error) {
	liveByName := make(map[string]*sim.Signal, len(sigs))
	names := make([]string, 0, len(sigs)+rec.NumSignals())
	for _, s := range sigs {
		liveByName[s.Name()] = s
		names = append(names, s.Name())
	}
	for i := 0; i < rec.NumSignals(); i++ {
		names = append(names, rec.SignalName(i))
	}

	seen := map[string]int{}
	for _, n := range names {
		dot := strings.LastIndexByte(n, '.')
		if dot < 0 {
			continue
		}
		prefix, leaf := n[:dot], n[dot+1:]
		if leaf == "req" {
			seen[prefix] |= 1
		}
		if leaf == "gnt" {
			seen[prefix] |= 2
		}
	}
	ports := portsFrom(seen)
	if len(ports) == 0 {
		return nil, fmt.Errorf("stba: no STBus ports found")
	}

	obs := &Observer{rec: rec, cursor: rec.NewCursor(), sigs: sigs, prev: make([]sim.Bits, len(sigs))}
	for _, port := range ports {
		under := map[string]bool{}
		for _, n := range names {
			if strings.HasPrefix(n, port+".") {
				under[n] = true
			}
		}
		sorted := make([]string, 0, len(under))
		for n := range under {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		p := obsPort{name: port, names: sorted, firstCycle: -1}
		for _, n := range sorted {
			ri := rec.SignalIndex(n)
			if ri < 0 {
				return nil, fmt.Errorf("stba: signal %q missing from first dump", n)
			}
			ls, ok := liveByName[n]
			if !ok {
				return nil, fmt.Errorf("stba: signal %q missing from second dump", n)
			}
			p.recIdx = append(p.recIdx, ri)
			p.live = append(p.live, ls)
		}
		if len(p.names) == 0 {
			return nil, fmt.Errorf("stba: port %q has no signals", port)
		}
		obs.ports = append(obs.ports, p)
	}
	return obs, nil
}

// Attach registers an end-of-cycle hook on the live simulator, sampling at
// the same points as vcd.Writer.Attach.
func (obs *Observer) Attach(sm *sim.Simulator) {
	sm.AtCycleEnd(func() {
		obs.Sample(sm.Cycle() - 1)
	})
}

// Sample compares every port signal's live value against the recording at
// the end of the given cycle. Cycles must be sampled in increasing order.
func (obs *Observer) Sample(cycle uint64) {
	obs.samples++
	obs.cursor.AdvanceTo(cycle)

	// Track the live side's last activity; the first sample counts as a
	// change (the $dumpvars analog), exactly like Writer.
	if !obs.started {
		obs.started = true
		obs.liveEnd = cycle
		for i, s := range obs.sigs {
			obs.prev[i] = s.Get()
		}
	} else {
		for i, s := range obs.sigs {
			if v := s.Get(); !v.Equal(obs.prev[i]) {
				obs.prev[i] = v
				obs.liveEnd = cycle
			}
		}
	}

	for pi := range obs.ports {
		p := &obs.ports[pi]
		ok := true
		for i, ls := range p.live {
			if !ls.Get().Equal(obs.cursor.Value(p.recIdx[i])) {
				ok = false
				if p.firstCycle < 0 {
					p.firstNames = append(p.firstNames, p.names[i])
					continue
				}
				break
			}
		}
		if !ok {
			if p.firstCycle < 0 {
				p.firstCycle = int64(cycle)
			}
			word := cycle / 64
			for uint64(len(p.mismatch)) <= word {
				p.mismatch = append(p.mismatch, 0)
			}
			p.mismatch[word] |= 1 << (cycle % 64)
		}
	}
}

// Report finalizes the comparison: the window both sides cover is now known,
// so mismatches past it are discarded and the uncovered tail is charged as
// misaligned — identical accounting to Compare on the two parsed dumps.
func (obs *Observer) Report() *Report {
	ca := obs.rec.Cycles()
	cb := obs.liveEnd + 1
	if !obs.started {
		// No samples: the live dump would still parse as one all-zero cycle.
		cb = 1
		obs.cursor.AdvanceTo(0)
		for pi := range obs.ports {
			p := &obs.ports[pi]
			var zero sim.Bits
			for i := range p.names {
				if !obs.cursor.Value(p.recIdx[i]).Equal(zero) {
					if p.firstCycle < 0 {
						p.firstCycle = 0
						p.firstNames = append(p.firstNames, p.names[i])
					}
					p.mismatch = []uint64{1}
					break
				}
			}
		}
	}
	shared, span := compareWindow(ca, cb)
	rep := &Report{}
	for pi := range obs.ports {
		p := &obs.ports[pi]
		pa := PortAlignment{
			Port: p.name, Signals: len(p.names),
			Cycles: span, CyclesA: ca, CyclesB: cb,
			Aligned:         shared - popcountBelow(p.mismatch, shared),
			FirstDivergence: -1,
		}
		if p.firstCycle >= 0 && uint64(p.firstCycle) < shared {
			pa.FirstDivergence = p.firstCycle
			pa.FirstDiverging = p.firstNames
		} else if shared < span {
			pa.FirstDivergence = int64(shared)
		}
		rep.Ports = append(rep.Ports, pa)
	}
	return rep
}

// popcountBelow counts set bits at positions strictly below limit.
func popcountBelow(words []uint64, limit uint64) uint64 {
	var n uint64
	full := limit / 64
	for i := uint64(0); i < full && i < uint64(len(words)); i++ {
		n += uint64(bits.OnesCount64(words[i]))
	}
	if rem := limit % 64; rem != 0 && full < uint64(len(words)) {
		n += uint64(bits.OnesCount64(words[full] & (1<<rem - 1)))
	}
	return n
}
