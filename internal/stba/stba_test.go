package stba

import (
	"bytes"
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
	"crve/internal/vcd"
)

func nodeCfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

// runView runs one DUT view under the shared CATG bench, dumping the node's
// ports to a VCD buffer.
func runView(t *testing.T, cfg nodespec.Config, bugs *bca.Bugs, seed int64, cycles int) *vcd.File {
	t.Helper()
	sm := sim.New()
	var initPorts, tgtPorts []*stbus.Port
	if bugs == nil {
		n, err := rtl.NewNode(sim.Root(sm), cfg)
		if err != nil {
			t.Fatal(err)
		}
		initPorts, tgtPorts = n.Init, n.Tgt
	} else {
		n, err := bca.NewNode(sim.Root(sm), cfg, *bugs)
		if err != nil {
			t.Fatal(err)
		}
		initPorts, tgtPorts = n.Init, n.Tgt
	}
	var buf bytes.Buffer
	wr := vcd.NewWriter(&buf, "tb")
	var bfms []*catg.InitiatorBFM
	for i, p := range initPorts {
		ops := catg.GenerateOps(cfg, catg.TrafficConfig{Ops: 25, UnmappedPct: 4, IdlePct: 10}, i, seed)
		bfms = append(bfms, catg.NewInitiatorBFM(sm, p, ops))
		for _, s := range p.Signals() {
			wr.Declare(s)
		}
	}
	for ti, p := range tgtPorts {
		catg.NewTargetBFM(sm, p, catg.TargetConfig{MinLatency: 1, MaxLatency: 5, GntGapPct: 15},
			seed*17+int64(ti))
		for _, s := range p.Signals() {
			wr.Declare(s)
		}
	}
	wr.Attach(sm)
	if err := sm.Run(cycles); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := vcd.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAlignmentBugFreeIs100(t *testing.T) {
	cfg := nodeCfg()
	fr := runView(t, cfg, nil, 5, 1500)
	fb := runView(t, cfg, &bca.Bugs{}, 5, 1500)
	rep, err := Compare(fr, fb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ports) != 4 {
		t.Fatalf("%d ports discovered, want 4\n%s", len(rep.Ports), rep)
	}
	if !rep.AllPass() {
		t.Errorf("bug-free comparison below sign-off:\n%s", rep)
	}
	if rep.MinRate() != 100 {
		t.Errorf("bug-free views should align 100%%, got %.2f\n%s", rep.MinRate(), rep)
	}
}

func TestAlignmentDropsWithBug(t *testing.T) {
	cfg := nodeCfg()
	fr := runView(t, cfg, nil, 5, 1500)
	fb := runView(t, cfg, &bca.Bugs{LRUInit: true}, 5, 1500)
	rep, err := Compare(fr, fb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinRate() == 100 {
		t.Errorf("bugged comparison should diverge:\n%s", rep)
	}
	found := false
	for _, p := range rep.Ports {
		if p.FirstDivergence >= 0 {
			found = true
			if len(p.FirstDiverging) == 0 {
				t.Errorf("port %s diverged at %d but no diverging signals listed",
					p.Port, p.FirstDivergence)
			}
		}
	}
	if !found {
		t.Error("no first-divergence cycle recorded")
	}
}

func TestDiscoverPorts(t *testing.T) {
	f := runView(t, nodeCfg(), nil, 9, 200)
	ports := DiscoverPorts(f)
	want := []string{"node.init0", "node.init1", "node.tgt0", "node.tgt1"}
	if len(ports) != len(want) {
		t.Fatalf("ports = %v", ports)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("ports = %v, want %v", ports, want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	f := runView(t, nodeCfg(), nil, 9, 100)
	empty := &vcd.File{}
	if _, err := Compare(empty, f, nil); err == nil {
		t.Error("comparing empty dump should fail")
	}
	if _, err := Compare(f, empty, []string{"node.init0"}); err == nil {
		t.Error("missing signals in second dump should fail")
	}
	if _, err := Compare(f, f, []string{"nosuch.port"}); err == nil {
		t.Error("unknown port should fail")
	}
}

func TestSelfCompareIsAligned(t *testing.T) {
	f := runView(t, nodeCfg(), nil, 3, 800)
	rep, err := Compare(f, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinRate() != 100 || !rep.AllPass() {
		t.Errorf("self comparison must be 100%%:\n%s", rep)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{Ports: []PortAlignment{
		{Port: "node.init0", Signals: 18, Cycles: 1000, Aligned: 1000, FirstDivergence: -1},
		{Port: "node.init1", Signals: 18, Cycles: 1000, Aligned: 950, FirstDivergence: 77},
	}}
	s := rep.String()
	for _, want := range []string{"PASS", "FAIL", "95.00%", "@77"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if rep.AllPass() {
		t.Error("report with 95% port should not pass")
	}
	if rep.MinRate() != 95 {
		t.Errorf("min rate %f", rep.MinRate())
	}
}

func TestExtractTransactions(t *testing.T) {
	cfg := nodeCfg()
	f := runView(t, cfg, nil, 21, 2000)
	txs, err := ExtractTransactions(f, "node.init0", cfg.Port.Type)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) == 0 {
		t.Fatal("no transactions extracted")
	}
	for _, tr := range txs {
		if !tr.Opc.Valid() {
			t.Errorf("invalid opcode in %v", tr)
		}
		if tr.EndCycle < tr.ReqEndCycle {
			t.Errorf("bad cycle stamps in %v", tr)
		}
	}
	// The waveform-extracted stream must agree with a live monitor: compare
	// against the known op count (25 ops issued, all must complete in 2000
	// cycles).
	if len(txs) != 25 {
		t.Errorf("extracted %d transactions, want 25", len(txs))
	}
	if _, err := ExtractTransactions(f, "nosuch", cfg.Port.Type); err == nil {
		t.Error("unknown port should fail")
	}
}

func TestPortAlignmentRateEdges(t *testing.T) {
	if (PortAlignment{}).Rate() != 100 {
		t.Error("empty alignment should rate 100")
	}
	pa := PortAlignment{Cycles: 100, Aligned: 99}
	if !pa.Pass() {
		t.Error("99% should pass the sign-off")
	}
	pa.Aligned = 98
	if pa.Pass() {
		t.Error("98% should fail the sign-off")
	}
}

func TestSignalRatesDrillDown(t *testing.T) {
	cfg := nodeCfg()
	fr := runView(t, cfg, nil, 5, 1200)
	fb := runView(t, cfg, &bca.Bugs{LRUInit: true}, 5, 1200)
	rates, err := SignalRates(fr, fb, "node.init0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 18 {
		t.Fatalf("%d signal rates, want 18", len(rates))
	}
	// Sorted worst-first, and at least one signal must diverge.
	if rates[0].Rate() > rates[len(rates)-1].Rate() {
		t.Error("rates not sorted ascending")
	}
	if rates[0].Rate() == 100 {
		t.Error("drill-down on a diverging port should show sub-100% signals")
	}
	if _, err := SignalRates(fr, fb, "nosuch"); err == nil {
		t.Error("unknown port should fail")
	}
	if _, err := SignalRates(fr, &vcd.File{}, "node.init0"); err == nil {
		t.Error("missing signals should fail")
	}
}

// parseText parses a hand-written VCD dump used by the regression tests for
// the sign-off holes.
func parseText(t *testing.T, text string) *vcd.File {
	t.Helper()
	f, err := vcd.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// twoPortDefs declares tb.p.{req,gnt} — the minimal discoverable STBus port.
const twoPortDefs = `$scope module tb $end
$scope module p $end
$var wire 1 ! req $end
$var wire 1 " gnt $end
$upscope $end
$upscope $end
$enddefinitions $end
`

// TestCompareChargesShortDumpTail is the regression test for the truncation
// hole: Compare used to clip both dumps to the shared window, so a BCA that
// stalled or drained early looked 100 % aligned. The tail the short dump
// does not cover must now count as misaligned.
func TestCompareChargesShortDumpTail(t *testing.T) {
	// A runs 11 cycles (EndTime 100); B is identical through time 50 but
	// records nothing after — 6 cycles.
	long := parseText(t, twoPortDefs+"#0\n$dumpvars\n0!\n0\"\n$end\n#10\n1!\n#50\n0!\n#100\n1\"\n")
	short := parseText(t, twoPortDefs+"#0\n$dumpvars\n0!\n0\"\n$end\n#10\n1!\n#50\n0!\n")
	if long.Cycles() != 11 || short.Cycles() != 6 {
		t.Fatalf("dump cycles = %d, %d; want 11, 6", long.Cycles(), short.Cycles())
	}
	rep, err := Compare(long, short, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ports) != 1 {
		t.Fatalf("ports: %+v", rep.Ports)
	}
	pa := rep.Ports[0]
	if pa.Cycles != 11 || pa.CyclesA != 11 || pa.CyclesB != 6 {
		t.Errorf("cycles = %d (a %d, b %d), want 11 (11, 6)", pa.Cycles, pa.CyclesA, pa.CyclesB)
	}
	if pa.Aligned != 6 {
		t.Errorf("aligned = %d, want 6 (shared window only)", pa.Aligned)
	}
	if pa.FirstDivergence != 6 || len(pa.FirstDiverging) != 0 {
		t.Errorf("first divergence = %d %v, want 6 (first uncovered cycle, no signal list)",
			pa.FirstDivergence, pa.FirstDiverging)
	}
	if pa.Pass() {
		t.Errorf("short-stopping dump must fail sign-off, got %.2f%%", pa.Rate())
	}
	// Same accounting in both directions and in the drill-down view.
	rev, err := Compare(short, long, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Ports[0].Aligned != 6 || rev.Ports[0].Cycles != 11 {
		t.Errorf("reversed compare: %+v", rev.Ports[0])
	}
	rates, err := SignalRates(long, short, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range rates {
		if sr.Cycles != 11 || sr.Aligned != 6 {
			t.Errorf("signal %s: %d/%d, want 6/11", sr.Signal, sr.Aligned, sr.Cycles)
		}
	}
}

// TestDiscoverPortsUnion is the regression test for asymmetric discovery: a
// port or signal present only in the BCA dump used to be silently ignored.
func TestDiscoverPortsUnion(t *testing.T) {
	onePort := parseText(t, twoPortDefs+"#0\n$dumpvars\n0!\n0\"\n$end\n")
	twoPorts := parseText(t, `$scope module tb $end
$scope module p $end
$var wire 1 ! req $end
$var wire 1 " gnt $end
$upscope $end
$scope module q $end
$var wire 1 # req $end
$var wire 1 $ gnt $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
0"
0#
0$
$end
`)
	if got := DiscoverPorts(onePort); len(got) != 1 || got[0] != "p" {
		t.Fatalf("DiscoverPorts = %v", got)
	}
	for _, pair := range [][2]*vcd.File{{onePort, twoPorts}, {twoPorts, onePort}} {
		got := DiscoverPortsUnion(pair[0], pair[1])
		if len(got) != 2 || got[0] != "p" || got[1] != "q" {
			t.Fatalf("DiscoverPortsUnion = %v, want [p q]", got)
		}
	}
	// With nil ports, Compare now discovers q from the second dump and must
	// report it as one-sided instead of silently comparing only p.
	if _, err := Compare(onePort, twoPorts, nil); err == nil ||
		!strings.Contains(err.Error(), "missing from first dump") {
		t.Errorf("port only in second dump: err = %v", err)
	}
	if _, err := Compare(twoPorts, onePort, nil); err == nil ||
		!strings.Contains(err.Error(), "missing from second dump") {
		t.Errorf("port only in first dump: err = %v", err)
	}
	// An extra signal on a shared port is one-sided in either direction.
	extra := parseText(t, `$scope module tb $end
$scope module p $end
$var wire 1 ! req $end
$var wire 1 " gnt $end
$var wire 8 # data $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
0"
b0 #
$end
`)
	if _, err := Compare(onePort, extra, []string{"p"}); err == nil ||
		!strings.Contains(err.Error(), "missing from first dump") {
		t.Errorf("extra signal in second dump: err = %v", err)
	}
	if _, err := Compare(extra, onePort, []string{"p"}); err == nil ||
		!strings.Contains(err.Error(), "missing from second dump") {
		t.Errorf("extra signal in first dump: err = %v", err)
	}
	if _, err := SignalRates(onePort, extra, "p"); err == nil {
		t.Error("SignalRates must reject one-sided signals too")
	}
}

// TestEmptyReportFailsSignoff is the regression test for the vacuous-pass
// hole: a zero-port report (e.g. rebuilt from a zero-value or truncated JSON
// record) used to return AllPass()==true and MinRate()==100.
func TestEmptyReportFailsSignoff(t *testing.T) {
	for name, rep := range map[string]*Report{"nil": nil, "empty": {}} {
		if rep.AllPass() {
			t.Errorf("%s report must not pass sign-off", name)
		}
		if got := rep.MinRate(); got != 0 {
			t.Errorf("%s report MinRate = %v, want 0", name, got)
		}
	}
}
