// Package stba implements the STBus Analyzer of the paper: the internal tool
// that, after a regression run of both models, "extracts from VCD files ...
// STBus transaction information" and computes, for each port, the alignment
// rate — "the number of cycles RTL and BCA signals port are aligned over
// total number of clock cycles". The sign-off target for a BCA model is a
// rate of at least 99 % on every port (SignoffRate).
package stba

import (
	"fmt"
	"sort"
	"strings"

	"crve/internal/vcd"
)

// SignoffRate is the per-port alignment threshold (percent) the paper uses
// to consider a BCA model signed off.
const SignoffRate = 99.0

// PortAlignment is the comparison result of one port.
type PortAlignment struct {
	Port    string
	Signals int
	// Cycles is the number of clock cycles the comparison spans: the longer
	// of the two dumps. Cycles one dump does not cover count as misaligned —
	// a model that stalls or drains early must not look aligned by omission.
	Cycles uint64
	// CyclesA and CyclesB are the cycle counts of the two dumps; when they
	// differ, the uncovered tail is charged against the alignment rate.
	CyclesA uint64
	CyclesB uint64
	// Aligned counts cycles where every signal of the port matched.
	Aligned uint64
	// FirstDivergence is the first differing cycle, or -1. When the dumps
	// agree over the shared window but one ends early, it is the first
	// uncovered cycle.
	FirstDivergence int64
	// FirstDiverging lists the signal names that differ at FirstDivergence,
	// the analyzer's debugging aid (empty when the divergence is a dump
	// ending early rather than a value mismatch).
	FirstDiverging []string
}

// Rate returns the alignment percentage (100 for an empty comparison).
func (pa PortAlignment) Rate() float64 {
	if pa.Cycles == 0 {
		return 100
	}
	return 100 * float64(pa.Aligned) / float64(pa.Cycles)
}

// Pass reports whether the port meets the sign-off rate.
func (pa PortAlignment) Pass() bool { return pa.Rate() >= SignoffRate }

// Report is a full two-dump comparison.
type Report struct {
	Ports []PortAlignment
}

// AllPass reports whether every port meets the sign-off rate. An empty
// report — nil, zero ports, or one rebuilt from a truncated record — fails:
// alignment that was never measured must not sign off vacuously (the same
// hole as the zero-run regression verdict).
func (r *Report) AllPass() bool {
	if r == nil || len(r.Ports) == 0 {
		return false
	}
	for _, p := range r.Ports {
		if !p.Pass() {
			return false
		}
	}
	return true
}

// MinRate returns the worst per-port rate (0 when no ports were compared,
// so an empty report can never clear the sign-off threshold).
func (r *Report) MinRate() float64 {
	if r == nil || len(r.Ports) == 0 {
		return 0
	}
	min := 100.0
	for _, p := range r.Ports {
		if rate := p.Rate(); rate < min {
			min = rate
		}
	}
	return min
}

// String renders the per-port table the regression tool prints.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("port                              signals  cycles  aligned    rate  verdict\n")
	for _, p := range r.Ports {
		verdict := "PASS"
		if !p.Pass() {
			verdict = "FAIL"
		}
		div := ""
		if p.FirstDivergence >= 0 {
			div = fmt.Sprintf("  (first divergence @%d", p.FirstDivergence)
			if len(p.FirstDiverging) > 0 {
				max := p.FirstDiverging
				if len(max) > 3 {
					max = max[:3]
				}
				div += ": " + strings.Join(max, ",")
			}
			div += ")"
		}
		fmt.Fprintf(&sb, "%-32s %7d %7d %8d %6.2f%%  %s%s\n",
			p.Port, p.Signals, p.Cycles, p.Aligned, p.Rate(), verdict, div)
	}
	return sb.String()
}

// DiscoverPorts finds STBus port prefixes in a dump: every scope that
// contains both a "req" and a "gnt" wire.
func DiscoverPorts(f *vcd.File) []string {
	seen := map[string]int{}
	discoverInto(f, seen)
	return portsFrom(seen)
}

// DiscoverPortsUnion finds STBus port prefixes over the union of both dumps,
// so a port present in only one of them is still discovered (and then
// reported as one-sided by Compare, instead of silently ignored).
func DiscoverPortsUnion(a, b *vcd.File) []string {
	seen := map[string]int{}
	discoverInto(a, seen)
	discoverInto(b, seen)
	return portsFrom(seen)
}

func discoverInto(f *vcd.File, seen map[string]int) {
	for _, v := range f.Vars {
		dot := strings.LastIndexByte(v.Name, '.')
		if dot < 0 {
			continue
		}
		prefix, leaf := v.Name[:dot], v.Name[dot+1:]
		if leaf == "req" {
			seen[prefix] |= 1
		}
		if leaf == "gnt" {
			seen[prefix] |= 2
		}
	}
}

func portsFrom(seen map[string]int) []string {
	var ports []string
	for p, mask := range seen {
		if mask == 3 {
			ports = append(ports, p)
		}
	}
	sort.Strings(ports)
	return ports
}

// portSignals returns the sorted union of signal names under port across
// both dumps, erroring on a signal present in only one of them.
func portSignals(a, b *vcd.File, port string) ([]string, error) {
	seen := map[string]bool{}
	for _, f := range []*vcd.File{a, b} {
		for _, v := range f.Vars {
			if strings.HasPrefix(v.Name, port+".") {
				seen[v.Name] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if a.VarIndex(n) < 0 {
			return nil, fmt.Errorf("stba: signal %q missing from first dump", n)
		}
		if b.VarIndex(n) < 0 {
			return nil, fmt.Errorf("stba: signal %q missing from second dump", n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("stba: port %q has no signals", port)
	}
	return names, nil
}

// compareWindow returns the per-dump cycle counts and the shared window both
// dumps cover; the span beyond the shared window counts as misaligned.
func compareWindow(ca, cb uint64) (shared, span uint64) {
	shared, span = ca, cb
	if shared > span {
		shared, span = span, shared
	}
	return shared, span
}

// Compare computes per-port alignment between two dumps over the given port
// prefixes (discovered over the union of both dumps when nil). The rate
// denominator is the longer dump's cycle count: cycles only one dump covers
// are charged as misaligned, so a model that stops early fails sign-off.
func Compare(a, b *vcd.File, ports []string) (*Report, error) {
	if ports == nil {
		ports = DiscoverPortsUnion(a, b)
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("stba: no STBus ports found")
	}
	ca, cb := a.Cycles(), b.Cycles()
	shared, span := compareWindow(ca, cb)
	rep := &Report{}
	for _, port := range ports {
		names, err := portSignals(a, b, port)
		if err != nil {
			return nil, err
		}
		pairs := make([][2]int, len(names))
		for i, n := range names {
			pairs[i] = [2]int{a.VarIndex(n), b.VarIndex(n)}
		}
		pa := PortAlignment{
			Port: port, Signals: len(pairs),
			Cycles: span, CyclesA: ca, CyclesB: cb,
			FirstDivergence: -1,
		}
		for cyc := uint64(0); cyc < shared; cyc++ {
			time := cyc * vcd.TimePerCycle
			ok := true
			for i, pr := range pairs {
				if !a.ValueAt(pr[0], time).Equal(b.ValueAt(pr[1], time)) {
					ok = false
					if pa.FirstDivergence < 0 {
						pa.FirstDiverging = append(pa.FirstDiverging, names[i])
						continue
					}
					break
				}
			}
			if ok {
				pa.Aligned++
			} else if pa.FirstDivergence < 0 {
				pa.FirstDivergence = int64(cyc)
			}
		}
		if shared < span && pa.FirstDivergence < 0 {
			pa.FirstDivergence = int64(shared)
		}
		rep.Ports = append(rep.Ports, pa)
	}
	return rep, nil
}

// SignalRate is the alignment rate of one signal across a comparison.
type SignalRate struct {
	Signal  string
	Cycles  uint64
	Aligned uint64
}

// Rate returns the per-signal alignment percentage.
func (sr SignalRate) Rate() float64 {
	if sr.Cycles == 0 {
		return 100
	}
	return 100 * float64(sr.Aligned) / float64(sr.Cycles)
}

// SignalRates breaks a port's alignment down signal by signal — the
// analyzer's drill-down view once a port fails the sign-off rate. Like
// Compare, the denominator spans the longer dump; the uncovered tail counts
// as misaligned for every signal.
func SignalRates(a, b *vcd.File, port string) ([]SignalRate, error) {
	shared, span := compareWindow(a.Cycles(), b.Cycles())
	names, err := portSignals(a, b, port)
	if err != nil {
		return nil, err
	}
	out := make([]SignalRate, 0, len(names))
	for _, n := range names {
		ai, bi := a.VarIndex(n), b.VarIndex(n)
		sr := SignalRate{Signal: n, Cycles: span}
		for cyc := uint64(0); cyc < shared; cyc++ {
			time := cyc * vcd.TimePerCycle
			if a.ValueAt(ai, time).Equal(b.ValueAt(bi, time)) {
				sr.Aligned++
			}
		}
		out = append(out, sr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rate() < out[j].Rate() })
	return out, nil
}
