// Package stba implements the STBus Analyzer of the paper: the internal tool
// that, after a regression run of both models, "extracts from VCD files ...
// STBus transaction information" and computes, for each port, the alignment
// rate — "the number of cycles RTL and BCA signals port are aligned over
// total number of clock cycles". The sign-off target for a BCA model is a
// rate of at least 99 % on every port (SignoffRate).
package stba

import (
	"fmt"
	"sort"
	"strings"

	"crve/internal/vcd"
)

// SignoffRate is the per-port alignment threshold (percent) the paper uses
// to consider a BCA model signed off.
const SignoffRate = 99.0

// PortAlignment is the comparison result of one port.
type PortAlignment struct {
	Port    string
	Signals int
	// Cycles is the number of compared clock cycles.
	Cycles uint64
	// Aligned counts cycles where every signal of the port matched.
	Aligned uint64
	// FirstDivergence is the first differing cycle, or -1.
	FirstDivergence int64
	// FirstDiverging lists the signal names that differ at FirstDivergence,
	// the analyzer's debugging aid.
	FirstDiverging []string
}

// Rate returns the alignment percentage (100 for an empty comparison).
func (pa PortAlignment) Rate() float64 {
	if pa.Cycles == 0 {
		return 100
	}
	return 100 * float64(pa.Aligned) / float64(pa.Cycles)
}

// Pass reports whether the port meets the sign-off rate.
func (pa PortAlignment) Pass() bool { return pa.Rate() >= SignoffRate }

// Report is a full two-dump comparison.
type Report struct {
	Ports []PortAlignment
}

// AllPass reports whether every port meets the sign-off rate.
func (r *Report) AllPass() bool {
	for _, p := range r.Ports {
		if !p.Pass() {
			return false
		}
	}
	return true
}

// MinRate returns the worst per-port rate (100 when no ports).
func (r *Report) MinRate() float64 {
	min := 100.0
	for _, p := range r.Ports {
		if rate := p.Rate(); rate < min {
			min = rate
		}
	}
	return min
}

// String renders the per-port table the regression tool prints.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("port                              signals  cycles  aligned    rate  verdict\n")
	for _, p := range r.Ports {
		verdict := "PASS"
		if !p.Pass() {
			verdict = "FAIL"
		}
		div := ""
		if p.FirstDivergence >= 0 {
			div = fmt.Sprintf("  (first divergence @%d", p.FirstDivergence)
			if len(p.FirstDiverging) > 0 {
				max := p.FirstDiverging
				if len(max) > 3 {
					max = max[:3]
				}
				div += ": " + strings.Join(max, ",")
			}
			div += ")"
		}
		fmt.Fprintf(&sb, "%-32s %7d %7d %8d %6.2f%%  %s%s\n",
			p.Port, p.Signals, p.Cycles, p.Aligned, p.Rate(), verdict, div)
	}
	return sb.String()
}

// DiscoverPorts finds STBus port prefixes in a dump: every scope that
// contains both a "req" and a "gnt" wire.
func DiscoverPorts(f *vcd.File) []string {
	seen := map[string]int{}
	for _, v := range f.Vars {
		dot := strings.LastIndexByte(v.Name, '.')
		if dot < 0 {
			continue
		}
		prefix, leaf := v.Name[:dot], v.Name[dot+1:]
		if leaf == "req" {
			seen[prefix] |= 1
		}
		if leaf == "gnt" {
			seen[prefix] |= 2
		}
	}
	var ports []string
	for p, mask := range seen {
		if mask == 3 {
			ports = append(ports, p)
		}
	}
	sort.Strings(ports)
	return ports
}

// Compare computes per-port alignment between two dumps over the given port
// prefixes (DiscoverPorts(a) when nil). Comparison runs for the cycles both
// dumps cover.
func Compare(a, b *vcd.File, ports []string) (*Report, error) {
	if ports == nil {
		ports = DiscoverPorts(a)
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("stba: no STBus ports found")
	}
	cycles := a.Cycles()
	if bc := b.Cycles(); bc < cycles {
		cycles = bc
	}
	rep := &Report{}
	for _, port := range ports {
		var pairs [][2]int
		for ai, v := range a.Vars {
			if !strings.HasPrefix(v.Name, port+".") {
				continue
			}
			bi := b.VarIndex(v.Name)
			if bi < 0 {
				return nil, fmt.Errorf("stba: signal %q missing from second dump", v.Name)
			}
			pairs = append(pairs, [2]int{ai, bi})
		}
		if len(pairs) == 0 {
			return nil, fmt.Errorf("stba: port %q has no signals", port)
		}
		pa := PortAlignment{Port: port, Signals: len(pairs), Cycles: cycles, FirstDivergence: -1}
		for cyc := uint64(0); cyc < cycles; cyc++ {
			time := cyc * vcd.TimePerCycle
			ok := true
			for _, pr := range pairs {
				if !a.ValueAt(pr[0], time).Equal(b.ValueAt(pr[1], time)) {
					ok = false
					if pa.FirstDivergence < 0 {
						pa.FirstDiverging = append(pa.FirstDiverging, a.Vars[pr[0]].Name)
						continue
					}
					break
				}
			}
			if ok {
				pa.Aligned++
			} else if pa.FirstDivergence < 0 {
				pa.FirstDivergence = int64(cyc)
			}
		}
		rep.Ports = append(rep.Ports, pa)
	}
	return rep, nil
}

// SignalRate is the alignment rate of one signal across a comparison.
type SignalRate struct {
	Signal  string
	Cycles  uint64
	Aligned uint64
}

// Rate returns the per-signal alignment percentage.
func (sr SignalRate) Rate() float64 {
	if sr.Cycles == 0 {
		return 100
	}
	return 100 * float64(sr.Aligned) / float64(sr.Cycles)
}

// SignalRates breaks a port's alignment down signal by signal — the
// analyzer's drill-down view once a port fails the sign-off rate.
func SignalRates(a, b *vcd.File, port string) ([]SignalRate, error) {
	cycles := a.Cycles()
	if bc := b.Cycles(); bc < cycles {
		cycles = bc
	}
	var out []SignalRate
	for ai, v := range a.Vars {
		if !strings.HasPrefix(v.Name, port+".") {
			continue
		}
		bi := b.VarIndex(v.Name)
		if bi < 0 {
			return nil, fmt.Errorf("stba: signal %q missing from second dump", v.Name)
		}
		sr := SignalRate{Signal: v.Name, Cycles: cycles}
		for cyc := uint64(0); cyc < cycles; cyc++ {
			time := cyc * vcd.TimePerCycle
			if a.ValueAt(ai, time).Equal(b.ValueAt(bi, time)) {
				sr.Aligned++
			}
		}
		out = append(out, sr)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stba: port %q has no signals", port)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rate() < out[j].Rate() })
	return out, nil
}
