package coverage

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestItemHitAndCovered(t *testing.T) {
	g := NewGroup("g")
	it := g.Item("opcode", "LD4", "ST4", "RMW4")
	it.Hit("LD4")
	it.Hit("LD4")
	it.Hit("ST4")
	h, tot := it.Covered()
	if h != 2 || tot != 3 {
		t.Fatalf("covered %d/%d, want 2/3", h, tot)
	}
	if it.Hits("LD4") != 2 || it.Hits("RMW4") != 0 || it.Hits("nope") != 0 {
		t.Error("hit counts wrong")
	}
	if holes := it.Holes(); len(holes) != 1 || holes[0] != "RMW4" {
		t.Errorf("holes = %v", holes)
	}
}

func TestItemHitUnknownPanics(t *testing.T) {
	g := NewGroup("g")
	it := g.Item("x", "a")
	defer func() {
		if recover() == nil {
			t.Error("Hit on undeclared bin should panic")
		}
	}()
	it.Hit("b")
}

func TestItemHitOK(t *testing.T) {
	g := NewGroup("g")
	it := g.Item("x", "a")
	if !it.HitOK("a") || it.HitOK("b") {
		t.Error("HitOK wrong")
	}
}

// TestGroupHolesDeclarationOrder pins the Holes() contract: unhit bins come
// back in declaration order — items as declared, bins as declared within each
// item — never in map-range order, so hole lists (and everything downstream:
// closure plans, reports, goldens) are deterministic.
func TestGroupHolesDeclarationOrder(t *testing.T) {
	build := func() *Group {
		g := NewGroup("g")
		// Deliberately non-alphabetical declaration order on both levels.
		g.Item("zeta", "m", "a", "k")
		g.Item("alpha", "z", "b")
		g.Item("mid", "q")
		return g
	}
	g := build()
	g.MustItem("zeta").Hit("a")
	g.MustItem("alpha").Hit("z")
	want := []Hole{{"zeta", "m"}, {"zeta", "k"}, {"alpha", "b"}, {"mid", "q"}}
	got := g.Holes()
	if len(got) != len(want) {
		t.Fatalf("holes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hole %d = %v, want %v (declaration order violated)", i, got[i], want[i])
		}
	}
	// Identical groups must produce byte-identical hole lists, run after run.
	h := build()
	h.MustItem("zeta").Hit("a")
	h.MustItem("alpha").Hit("z")
	for i, hole := range h.Holes() {
		if hole != got[i] {
			t.Fatalf("hole order differs between identical groups at %d: %v vs %v", i, hole, got[i])
		}
	}
	if s := (Hole{Item: "a", Bin: "b"}).String(); s != "a/b" {
		t.Errorf("Hole.String = %q", s)
	}
	full := build()
	for _, it := range full.Items() {
		for _, hole := range it.Holes() {
			it.Hit(hole)
		}
	}
	if holes := full.Holes(); len(holes) != 0 {
		t.Errorf("full group has holes: %v", holes)
	}
}

func TestGroupPercentAndFull(t *testing.T) {
	g := NewGroup("g")
	a := g.Item("a", "x", "y")
	b := g.Item("b", "z")
	if g.Full() {
		t.Error("empty hits should not be full")
	}
	a.Hit("x")
	if got := g.Percent(); got < 33 || got > 34 {
		t.Errorf("percent = %f", got)
	}
	a.Hit("y")
	b.Hit("z")
	if !g.Full() || g.Percent() != 100 {
		t.Error("should be full")
	}
	if NewGroup("empty").Percent() != 100 {
		t.Error("empty group percent should be 100")
	}
}

func TestItemIdempotentDeclaration(t *testing.T) {
	g := NewGroup("g")
	a1 := g.Item("a", "x")
	a2 := g.Item("a", "ignored")
	if a1 != a2 {
		t.Error("re-declaring an item should return the same item")
	}
	if len(g.Items()) != 1 {
		t.Error("duplicate item created")
	}
}

func TestCross(t *testing.T) {
	g := NewGroup("g")
	op := g.Item("op", "LD", "ST")
	tgt := g.Item("tgt", "0", "1", "2")
	cr := g.Cross("op_x_tgt", op, tgt)
	if _, tot := cr.Covered(); tot != 6 {
		t.Fatalf("cross bins = %d, want 6", tot)
	}
	g.HitCross("op_x_tgt", "LD", "2")
	if cr.Hits("LD×2") != 1 {
		t.Error("cross hit not recorded")
	}
}

func TestMergeAndEqualHits(t *testing.T) {
	build := func() *Group {
		g := NewGroup("g")
		g.Item("a", "x", "y")
		return g
	}
	g1, g2 := build(), build()
	g1.MustItem("a").Hit("x")
	g2.MustItem("a").Hit("x")
	if eq, why := g1.EqualHits(g2); !eq {
		t.Fatalf("should be equal: %s", why)
	}
	g2.MustItem("a").Hit("y")
	if eq, _ := g1.EqualHits(g2); eq {
		t.Fatal("should differ")
	}
	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	if g1.MustItem("a").Hits("x") != 2 || g1.MustItem("a").Hits("y") != 1 {
		t.Error("merge sums wrong")
	}
	other := NewGroup("g")
	other.Item("b", "z")
	if err := g1.Merge(other); err == nil {
		t.Error("merging mismatched groups should fail")
	}
}

func TestGroupReportAndDump(t *testing.T) {
	g := NewGroup("stbus")
	it := g.Item("op", "LD", "ST")
	it.Hit("LD")
	r := g.Report()
	if !strings.Contains(r, "stbus") || !strings.Contains(r, "holes: ST") {
		t.Errorf("report missing content:\n%s", r)
	}
	d := g.SortedBinDump()
	if !strings.Contains(d, "op/LD=1") || !strings.Contains(d, "op/ST=0") {
		t.Errorf("dump = %q", d)
	}
}

// Property: merging two copies of the same sampling doubles every hit count
// and preserves equality structure.
func TestMergeDoublesProperty(t *testing.T) {
	f := func(hits []uint8) bool {
		g1 := NewGroup("g")
		g2 := NewGroup("g")
		i1 := g1.Item("it", "a", "b", "c")
		i2 := g2.Item("it", "a", "b", "c")
		bins := []string{"a", "b", "c"}
		for _, h := range hits {
			i1.Hit(bins[int(h)%3])
			i2.Hit(bins[int(h)%3])
		}
		if err := g1.Merge(g2); err != nil {
			return false
		}
		for _, b := range bins {
			if i1.Hits(b) != 2*i2.Hits(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeMapMetrics(t *testing.T) {
	m := NewCodeMap()
	m.Line("l1")
	m.Declare(LinePoint, "l2") // declared, never hit
	m.Stmt("s1")
	m.Branch("b1", true)
	if got := m.Percent(LinePoint); got != 50 {
		t.Errorf("line %% = %f", got)
	}
	if got := m.Percent(StmtPoint); got != 100 {
		t.Errorf("stmt %% = %f", got)
	}
	// branch needs both directions.
	if got := m.Percent(BranchPoint); got != 0 {
		t.Errorf("branch %% = %f, want 0 (one-sided)", got)
	}
	m.Branch("b1", false)
	if got := m.Percent(BranchPoint); got != 100 {
		t.Errorf("branch %% = %f", got)
	}
	if holes := m.Holes(LinePoint); len(holes) != 1 || holes[0] != "l2" {
		t.Errorf("holes = %v", holes)
	}
}

func TestCodeMapJustify(t *testing.T) {
	m := NewCodeMap()
	m.Declare(LinePoint, "dead")
	if m.Percent(LinePoint) != 0 {
		t.Fatal("unjustified dead line should not be covered")
	}
	if err := m.Justify("dead"); err != nil {
		t.Fatal(err)
	}
	if m.Percent(LinePoint) != 100 {
		t.Error("justified line should count as covered")
	}
	if err := m.Justify("missing"); err == nil {
		t.Error("justifying unknown point should fail")
	}
}

func TestCodeMapResetKeepsDeclarations(t *testing.T) {
	m := NewCodeMap()
	m.Line("l1")
	m.Branch("b1", true)
	m.ResetHits()
	if m.Percent(LinePoint) != 0 {
		t.Error("reset should clear hits")
	}
	if m.Points(LinePoint) != 1 || m.Points(BranchPoint) != 1 {
		t.Error("reset should keep declarations")
	}
}

func TestCodeMapEmptyIs100(t *testing.T) {
	m := NewCodeMap()
	for _, k := range []PointKind{LinePoint, StmtPoint, BranchPoint} {
		if m.Percent(k) != 100 {
			t.Errorf("%v empty %% = %f", k, m.Percent(k))
		}
	}
}

func TestCodeMapReport(t *testing.T) {
	m := NewCodeMap()
	m.Line("covered")
	m.Declare(BranchPoint, "never")
	r := m.Report()
	for _, want := range []string{"line", "branch", "statement", "never"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestPointKindString(t *testing.T) {
	if LinePoint.String() != "line" || BranchPoint.String() != "branch" || StmtPoint.String() != "statement" {
		t.Error("kind strings wrong")
	}
}
