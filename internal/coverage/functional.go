// Package coverage implements the two quality metrics the paper's flow is
// gated on:
//
//   - functional coverage — declared items with bins (and crosses of items),
//     sampled by the verification environment, obtainable on BOTH the RTL
//     and the BCA model and required to be identical when the same tests and
//     seeds run on the two views;
//   - code coverage — line, branch and statement coverage, obtained by
//     instrumenting the RTL model only (the paper: "no tool is able to
//     generate this metrics for SystemC"), with support for justifying
//     unreachable points ("100 % of justified code for the line coverage").
package coverage

import (
	"fmt"
	"sort"
	"strings"
)

// Bin is one bucket of a coverage item.
type Bin struct {
	Name string
	Hits uint64
}

// Item is a named coverage point with a declared set of bins.
type Item struct {
	Name string
	bins map[string]*Bin
	// order preserves declaration order for reports.
	order []string
}

// newItem builds an item with the given declared bins.
func newItem(name string, bins []string) *Item {
	it := &Item{Name: name, bins: make(map[string]*Bin, len(bins))}
	for _, b := range bins {
		if _, dup := it.bins[b]; dup {
			panic(fmt.Sprintf("coverage: duplicate bin %q in item %q", b, name))
		}
		it.bins[b] = &Bin{Name: b}
		it.order = append(it.order, b)
	}
	return it
}

// Hit samples bin name. Hitting an undeclared bin panics: the coverage model
// is the specification of legal behaviour, so an unexpected value is a
// verification-environment bug the paper says must be caught early.
func (it *Item) Hit(name string) {
	b, ok := it.bins[name]
	if !ok {
		panic(fmt.Sprintf("coverage: item %q has no bin %q", it.Name, name))
	}
	b.Hits++
}

// HitOK samples bin name if declared and reports whether it was.
func (it *Item) HitOK(name string) bool {
	b, ok := it.bins[name]
	if ok {
		b.Hits++
	}
	return ok
}

// Counter returns the declared bin's counter, or nil when the bin is
// undeclared — the preresolved form of HitOK for samplers hot enough that
// per-event name formatting and map lookups matter. The pointer stays valid
// for the item's lifetime: Merge, ResetHits-style loops and reports all
// mutate counts in place, never replace the Bin.
func (it *Item) Counter(name string) *Bin { return it.bins[name] }

// Inc samples the bin. Inc on a nil receiver is a no-op, mirroring HitOK's
// tolerance of undeclared bins so callers can hold nil handles for bins a
// configuration never declares.
func (b *Bin) Inc() {
	if b != nil {
		b.Hits++
	}
}

// Hits returns the hit count of bin name (0 if undeclared).
func (it *Item) Hits(name string) uint64 {
	if b, ok := it.bins[name]; ok {
		return b.Hits
	}
	return 0
}

// Covered returns hit and total bin counts.
func (it *Item) Covered() (hit, total int) {
	for _, b := range it.bins {
		if b.Hits > 0 {
			hit++
		}
	}
	return hit, len(it.bins)
}

// Holes returns the names of unhit bins in declaration order.
func (it *Item) Holes() []string {
	var h []string
	for _, n := range it.order {
		if it.bins[n].Hits == 0 {
			h = append(h, n)
		}
	}
	return h
}

// Hole identifies one declared-but-unhit bin of a group: the input of the
// paper's "coverage not full → add tests" arc, in structured form so closure
// tooling consumes the coverage state directly instead of re-parsing report
// text.
type Hole struct {
	Item string `json:"item"`
	Bin  string `json:"bin"`
}

func (h Hole) String() string { return h.Item + "/" + h.Bin }

// Group is a set of coverage items, the unit reported per DUT configuration.
type Group struct {
	Name  string
	items map[string]*Item
	order []string
}

// NewGroup returns an empty coverage group.
func NewGroup(name string) *Group {
	return &Group{Name: name, items: make(map[string]*Item)}
}

// Item declares (or returns the existing) item with the given bins.
func (g *Group) Item(name string, bins ...string) *Item {
	if it, ok := g.items[name]; ok {
		return it
	}
	it := newItem(name, bins)
	g.items[name] = it
	g.order = append(g.order, name)
	return it
}

// Cross declares an item whose bins are the cartesian product of the bins of
// a and b, named "abin×bbin". Sample it with HitCross.
func (g *Group) Cross(name string, a, b *Item) *Item {
	var bins []string
	for _, an := range a.order {
		for _, bn := range b.order {
			bins = append(bins, an+"×"+bn)
		}
	}
	return g.Item(name, bins...)
}

// HitCross samples the cross bin for the pair (abin, bbin) on item name.
func (g *Group) HitCross(name, abin, bbin string) {
	g.MustItem(name).Hit(abin + "×" + bbin)
}

// MustItem returns a declared item, panicking if absent.
func (g *Group) MustItem(name string) *Item {
	it, ok := g.items[name]
	if !ok {
		panic(fmt.Sprintf("coverage: group %q has no item %q", g.Name, name))
	}
	return it
}

// Items returns the items in declaration order.
func (g *Group) Items() []*Item {
	out := make([]*Item, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.items[n])
	}
	return out
}

// Holes returns every unhit bin of the group in declaration order: items in
// the order they were declared, bins in declaration order within each item.
// The ordering is part of the contract — closure planning, reports and their
// golden tests all depend on two identical groups producing byte-identical
// hole lists — so the implementation walks the declaration-order slices, never
// a Go map.
func (g *Group) Holes() []Hole {
	var holes []Hole
	for _, name := range g.order {
		it := g.items[name]
		for _, bn := range it.order {
			if it.bins[bn].Hits == 0 {
				holes = append(holes, Hole{Item: name, Bin: bn})
			}
		}
	}
	return holes
}

// Covered returns hit and total bin counts over all items.
func (g *Group) Covered() (hit, total int) {
	for _, it := range g.items {
		h, t := it.Covered()
		hit += h
		total += t
	}
	return hit, total
}

// Percent returns the functional coverage percentage (100 for an empty
// group).
func (g *Group) Percent() float64 {
	h, t := g.Covered()
	if t == 0 {
		return 100
	}
	return 100 * float64(h) / float64(t)
}

// Full reports whether every declared bin has been hit.
func (g *Group) Full() bool {
	h, t := g.Covered()
	return h == t
}

// Merge accumulates the hit counts of o (which must declare the same items
// and bins) into g.
func (g *Group) Merge(o *Group) error {
	for _, name := range o.order {
		oit := o.items[name]
		it, ok := g.items[name]
		if !ok {
			return fmt.Errorf("coverage: merge: item %q missing from %q", name, g.Name)
		}
		for _, bn := range oit.order {
			b, ok := it.bins[bn]
			if !ok {
				return fmt.Errorf("coverage: merge: bin %q missing from item %q", bn, name)
			}
			b.Hits += oit.bins[bn].Hits
		}
	}
	return nil
}

// EqualHits reports whether g and o declare the same bins with identical hit
// counts — the paper's requirement that functional coverage "must be equal
// running the same tests" on the two views. The first difference found is
// described in detail.
func (g *Group) EqualHits(o *Group) (bool, string) {
	if len(g.items) != len(o.items) {
		return false, fmt.Sprintf("item count %d vs %d", len(g.items), len(o.items))
	}
	for _, name := range g.order {
		it := g.items[name]
		oit, ok := o.items[name]
		if !ok {
			return false, fmt.Sprintf("item %q missing", name)
		}
		if len(it.bins) != len(oit.bins) {
			return false, fmt.Sprintf("item %q bin count %d vs %d", name, len(it.bins), len(oit.bins))
		}
		// Walk bins in declaration order so the reported first difference
		// is deterministic even when several bins disagree.
		for _, bn := range it.order {
			b := it.bins[bn]
			ob, ok := oit.bins[bn]
			if !ok {
				return false, fmt.Sprintf("item %q bin %q missing", name, bn)
			}
			if b.Hits != ob.Hits {
				return false, fmt.Sprintf("item %q bin %q hits %d vs %d", name, bn, b.Hits, ob.Hits)
			}
		}
	}
	return true, ""
}

// Report renders the group as the functional-coverage report of a regression
// run.
func (g *Group) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "functional coverage group %q: %.1f%%\n", g.Name, g.Percent())
	for _, it := range g.Items() {
		h, t := it.Covered()
		fmt.Fprintf(&sb, "  item %-28s %3d/%3d bins", it.Name, h, t)
		if holes := it.Holes(); len(holes) > 0 {
			max := holes
			if len(max) > 6 {
				max = max[:6]
			}
			fmt.Fprintf(&sb, "  holes: %s", strings.Join(max, ","))
			if len(holes) > 6 {
				fmt.Fprintf(&sb, ",… (%d)", len(holes))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortedBinDump renders every bin and hit count deterministically, used by
// the coverage-equality experiment to diff the two views textually.
func (g *Group) SortedBinDump() string {
	var lines []string
	for _, it := range g.Items() {
		for _, bn := range it.order {
			lines = append(lines, fmt.Sprintf("%s/%s=%d", it.Name, bn, it.bins[bn].Hits))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
