package coverage

import (
	"fmt"
	"sort"
	"strings"
)

// PointKind distinguishes the three code-coverage metrics the paper uses:
// "The code coverage metrics we use are line, branch and statement
// coverage."
type PointKind int

const (
	// LinePoint marks an executable line.
	LinePoint PointKind = iota
	// StmtPoint marks a statement (several may share a line).
	StmtPoint
	// BranchPoint marks a two-way decision; both directions must be seen.
	BranchPoint
)

func (k PointKind) String() string {
	switch k {
	case LinePoint:
		return "line"
	case StmtPoint:
		return "statement"
	case BranchPoint:
		return "branch"
	default:
		return fmt.Sprintf("kind?%d", int(k))
	}
}

type codePoint struct {
	kind      PointKind
	hits      uint64 // line/stmt hits, or branch taken-count
	missHits  uint64 // branch not-taken count
	justified bool
}

// CodeMap is the code-coverage instrumentation of one RTL model. RTL
// processes declare points during elaboration and hit them during
// simulation; the regression tool reads the report after each run.
//
// The BCA view deliberately has no CodeMap: reproducing the paper's
// asymmetry that code coverage "can be applied only in the RTL
// verification".
type CodeMap struct {
	points map[string]*codePoint
	order  []string
}

// NewCodeMap returns an empty instrumentation map.
func NewCodeMap() *CodeMap {
	return &CodeMap{points: make(map[string]*codePoint)}
}

// Declare registers a coverage point. Declaring the same name twice is a
// no-op so elaboration loops stay simple.
func (m *CodeMap) Declare(kind PointKind, name string) {
	if _, ok := m.points[name]; ok {
		return
	}
	m.points[name] = &codePoint{kind: kind}
	m.order = append(m.order, name)
}

// Line declares-and-hits a line point.
func (m *CodeMap) Line(name string) {
	m.Declare(LinePoint, name)
	m.points[name].hits++
}

// Stmt declares-and-hits a statement point.
func (m *CodeMap) Stmt(name string) {
	m.Declare(StmtPoint, name)
	m.points[name].hits++
}

// Branch declares-and-hits one direction of a branch point.
func (m *CodeMap) Branch(name string, taken bool) {
	m.Declare(BranchPoint, name)
	p := m.points[name]
	if taken {
		p.hits++
	} else {
		p.missHits++
	}
}

// Point is a preresolved handle to one declared code-coverage point.
// Instrumentation hot enough that the per-hit map lookup matters resolves its
// handles once at elaboration and hits through them during simulation — a
// counter increment instead of a string hash. Handles stay valid for the
// map's lifetime: Merge and ResetHits mutate the points in place.
type Point struct{ p *codePoint }

// Point declares the coverage point (a no-op when already declared) and
// returns its preresolved handle.
func (m *CodeMap) Point(kind PointKind, name string) Point {
	m.Declare(kind, name)
	return Point{m.points[name]}
}

// Hit records one execution of a line or statement point.
func (pt Point) Hit() { pt.p.hits++ }

// Branch records one evaluation of a branch point's direction.
func (pt Point) Branch(taken bool) {
	if taken {
		pt.p.hits++
	} else {
		pt.p.missHits++
	}
}

// Justify marks a point as analysed-unreachable for this configuration, so
// it counts as covered in the "justified" metric (the paper's goal is
// "100 % of justified code for the line coverage").
func (m *CodeMap) Justify(name string) error {
	p, ok := m.points[name]
	if !ok {
		return fmt.Errorf("coverage: cannot justify unknown point %q", name)
	}
	p.justified = true
	return nil
}

// covered reports whether a point is fully exercised.
func (p *codePoint) covered() bool {
	if p.justified {
		return true
	}
	if p.kind == BranchPoint {
		return p.hits > 0 && p.missHits > 0
	}
	return p.hits > 0
}

// Percent returns the coverage percentage for one metric kind (100 when no
// points of that kind exist).
func (m *CodeMap) Percent(kind PointKind) float64 {
	hit, total := 0, 0
	for _, p := range m.points {
		if p.kind != kind {
			continue
		}
		total++
		if p.covered() {
			hit++
		}
	}
	if total == 0 {
		return 100
	}
	return 100 * float64(hit) / float64(total)
}

// Holes returns the unexercised, unjustified points of a kind, sorted.
func (m *CodeMap) Holes(kind PointKind) []string {
	var h []string
	for name, p := range m.points {
		if p.kind == kind && !p.covered() {
			h = append(h, name)
		}
	}
	sort.Strings(h)
	return h
}

// Merge accumulates another map's hits (and justifications) into m,
// declaring any missing points. The regression tool uses it to fold the
// per-run RTL code coverage of a whole test suite into one report.
func (m *CodeMap) Merge(o *CodeMap) {
	for _, name := range o.order {
		op := o.points[name]
		m.Declare(op.kind, name)
		p := m.points[name]
		p.hits += op.hits
		p.missHits += op.missHits
		if op.justified {
			p.justified = true
		}
	}
}

// ResetHits clears hit counts but keeps declarations and justifications, so
// one elaborated model can run several tests with separate reports.
func (m *CodeMap) ResetHits() {
	for _, p := range m.points {
		p.hits, p.missHits = 0, 0
	}
}

// Points returns the number of declared points of a kind.
func (m *CodeMap) Points(kind PointKind) int {
	n := 0
	for _, p := range m.points {
		if p.kind == kind {
			n++
		}
	}
	return n
}

// Report renders the code-coverage report of a run.
func (m *CodeMap) Report() string {
	var sb strings.Builder
	sb.WriteString("code coverage (RTL only):\n")
	for _, k := range []PointKind{LinePoint, BranchPoint, StmtPoint} {
		fmt.Fprintf(&sb, "  %-9s %6.1f%%  (%d points", k, m.Percent(k), m.Points(k))
		if holes := m.Holes(k); len(holes) > 0 {
			max := holes
			if len(max) > 4 {
				max = max[:4]
			}
			fmt.Fprintf(&sb, ", holes: %s", strings.Join(max, ","))
			if len(holes) > 4 {
				fmt.Fprintf(&sb, ",… %d total", len(holes))
			}
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}
