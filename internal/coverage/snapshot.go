package coverage

import (
	"encoding/json"
	"fmt"
)

// This file gives both coverage structures a stable JSON form so the
// regression result cache (internal/regress) can persist per-run coverage
// and rebuild it bit-for-bit: declaration order, bin hit counts and
// justifications all round-trip, which is what keeps a cache-served run
// indistinguishable from a fresh simulation in every report.

type binJSON struct {
	Name string `json:"name"`
	Hits uint64 `json:"hits"`
}

type itemJSON struct {
	Name string    `json:"name"`
	Bins []binJSON `json:"bins"`
}

type groupJSON struct {
	Name  string     `json:"name"`
	Items []itemJSON `json:"items"`
}

// MarshalJSON renders the group with items and bins in declaration order.
func (g *Group) MarshalJSON() ([]byte, error) {
	gj := groupJSON{Name: g.Name, Items: make([]itemJSON, 0, len(g.order))}
	for _, it := range g.Items() {
		ij := itemJSON{Name: it.Name, Bins: make([]binJSON, 0, len(it.order))}
		for _, bn := range it.order {
			ij.Bins = append(ij.Bins, binJSON{Name: bn, Hits: it.bins[bn].Hits})
		}
		gj.Items = append(gj.Items, ij)
	}
	return json.Marshal(gj)
}

// UnmarshalJSON rebuilds a group, preserving declaration order and hits.
func (g *Group) UnmarshalJSON(data []byte) error {
	var gj groupJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return err
	}
	*g = *NewGroup(gj.Name)
	for _, ij := range gj.Items {
		bins := make([]string, len(ij.Bins))
		for i, b := range ij.Bins {
			bins[i] = b.Name
		}
		it := g.Item(ij.Name, bins...)
		for _, b := range ij.Bins {
			it.bins[b.Name].Hits = b.Hits
		}
	}
	return nil
}

type pointJSON struct {
	Name      string    `json:"name"`
	Kind      PointKind `json:"kind"`
	Hits      uint64    `json:"hits"`
	MissHits  uint64    `json:"miss_hits,omitempty"`
	Justified bool      `json:"justified,omitempty"`
}

// MarshalJSON renders the instrumentation map in declaration order.
func (m *CodeMap) MarshalJSON() ([]byte, error) {
	pts := make([]pointJSON, 0, len(m.order))
	for _, name := range m.order {
		p := m.points[name]
		pts = append(pts, pointJSON{
			Name: name, Kind: p.kind,
			Hits: p.hits, MissHits: p.missHits, Justified: p.justified,
		})
	}
	return json.Marshal(pts)
}

// UnmarshalJSON rebuilds the map, preserving declaration order, counts and
// justifications.
func (m *CodeMap) UnmarshalJSON(data []byte) error {
	var pts []pointJSON
	if err := json.Unmarshal(data, &pts); err != nil {
		return err
	}
	*m = *NewCodeMap()
	for _, pj := range pts {
		switch pj.Kind {
		case LinePoint, StmtPoint, BranchPoint:
		default:
			return fmt.Errorf("coverage: unknown point kind %d for %q", int(pj.Kind), pj.Name)
		}
		m.Declare(pj.Kind, pj.Name)
		p := m.points[pj.Name]
		p.hits, p.missHits, p.justified = pj.Hits, pj.MissHits, pj.Justified
	}
	return nil
}
