package coverage

import (
	"encoding/json"
	"testing"
)

func TestGroupJSONRoundTrip(t *testing.T) {
	g := NewGroup("node")
	kind := g.Item("kind", "load", "store", "rmw")
	size := g.Item("size", "1", "4")
	g.Cross("kind×size", kind, size)
	kind.Hit("load")
	kind.Hit("load")
	kind.Hit("store")
	size.Hit("4")
	g.HitCross("kind×size", "load", "4")

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back := &Group{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if eq, diff := g.EqualHits(back); !eq {
		t.Fatalf("round trip changed hits: %s", diff)
	}
	if back.SortedBinDump() != g.SortedBinDump() {
		t.Errorf("bin dump changed:\n%s\nvs\n%s", g.SortedBinDump(), back.SortedBinDump())
	}
	// Declaration order (reports) must survive, not just the set of bins.
	if back.Report() != g.Report() {
		t.Errorf("report changed:\n%s\nvs\n%s", g.Report(), back.Report())
	}
	// The restored group must accept merges from the original's items.
	if err := back.Merge(g); err != nil {
		t.Errorf("merge into restored group: %v", err)
	}
}

func TestCodeMapJSONRoundTrip(t *testing.T) {
	m := NewCodeMap()
	m.Line("arb.go:10")
	m.Line("arb.go:11")
	m.Stmt("arb.go:11#s0")
	m.Branch("arb.go:12?", true)
	m.Branch("arb.go:13?", true)
	m.Branch("arb.go:13?", false)
	m.Declare(LinePoint, "dead.go:1")
	if err := m.Justify("dead.go:1"); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back := NewCodeMap()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Report() != m.Report() {
		t.Errorf("report changed:\n%s\nvs\n%s", m.Report(), back.Report())
	}
	for _, k := range []PointKind{LinePoint, StmtPoint, BranchPoint} {
		if back.Percent(k) != m.Percent(k) {
			t.Errorf("%v percent %.1f vs %.1f", k, m.Percent(k), back.Percent(k))
		}
	}
	// A half-taken branch must still be a hole after the round trip.
	if holes := back.Holes(BranchPoint); len(holes) != 1 || holes[0] != "arb.go:12?" {
		t.Errorf("branch holes %v", holes)
	}
}

func TestCodeMapJSONRejectsUnknownKind(t *testing.T) {
	back := NewCodeMap()
	if err := json.Unmarshal([]byte(`[{"name":"x","kind":9}]`), back); err == nil {
		t.Error("unknown point kind must fail to unmarshal")
	}
}
