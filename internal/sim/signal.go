package sim

import "fmt"

// Signal is a named, width-checked wire with SystemC signal semantics:
// reads observe the value committed at the previous delta, and writes take
// effect at the next delta boundary. Signals are created by
// (*Simulator).Signal and are owned by exactly one Simulator.
type Signal struct {
	sim   *Simulator
	id    int
	name  string
	width int

	cur     Bits
	next    Bits
	pending bool
	// mask points at the maskTab entry for width, letting Set mask
	// without a (non-inlinable) Bits.Mask call.
	mask *Bits

	// ls is the widened lane-parallel storage (nil in scalar mode). When
	// set, cur/next are unused and every access resolves against the
	// simulator's current lane context.
	ls *laneSig

	// sensitive holds the combinational processes to wake when the
	// committed value changes.
	sensitive []*process
}

// Name returns the hierarchical signal name.
func (s *Signal) Name() string { return s.name }

// Width returns the signal width in bits.
func (s *Signal) Width() int { return s.width }

// ID returns the simulator-unique dense signal index, usable as a slice key
// by tracers and monitors.
func (s *Signal) ID() int { return s.id }

// strictCheck panics when the currently evaluating combinational process
// reads a signal outside its sensitivity list: such a process would not be
// re-run when the signal changes, and the levelized scheduler would rank it
// against an incomplete input set. Sequential processes and cycle-end hooks
// read freely.
func (s *Signal) strictCheck() {
	p := s.sim.cur
	if p == nil || p.seq || p.sensHas(s.id) {
		return
	}
	panic(fmt.Sprintf("sim: strict sensitivity: process %q read signal %q outside its sensitivity list",
		p.name, s.name))
}

// Get returns the current committed value — of the current lane under
// lane-parallel execution.
func (s *Signal) Get() Bits {
	if s.sim.Strict {
		s.strictCheck()
	}
	if s.ls != nil {
		return s.laneGet(s.sim.curLane)
	}
	return s.cur
}

// U64 returns the low 64 bits of the current committed value.
func (s *Signal) U64() uint64 {
	if s.sim.Strict {
		s.strictCheck()
	}
	if s.ls != nil {
		return s.lanePeek(s.sim.curLane).v[0]
	}
	return s.cur.Uint64()
}

// Bool reports whether the current committed value is non-zero.
func (s *Signal) Bool() bool {
	if s.sim.Strict {
		s.strictCheck()
	}
	if s.ls != nil {
		v := s.lanePeek(s.sim.curLane)
		return v.v[0]|v.v[1]|v.v[2]|v.v[3] != 0
	}
	return s.cur.Bool()
}

// Set schedules v (masked to the signal width) to be committed at the next
// delta boundary. Writing the current value cancels any pending change, like
// a SystemC sc_signal write of an equal value.
//
// Before the elaboration freeze, writes performed by a combinational process
// that did not declare its outputs (legacy Comb) are recorded as its driven
// signals — the learning fallback behind levelization. A write of the
// current value still identifies the signal as an output.
func (s *Signal) Set(v Bits) {
	sm := s.sim
	if !sm.frozen {
		if p := sm.cur; p != nil && !p.seq && !p.declared {
			p.noteOut(s)
		}
	}
	m := s.mask
	v.v[0] &= m.v[0]
	v.v[1] &= m.v[1]
	v.v[2] &= m.v[2]
	v.v[3] &= m.v[3]
	if s.ls != nil {
		s.laneSet(sm.curLane, v)
		return
	}
	if !s.pending {
		if v.Equal(s.cur) {
			return
		}
		s.pending = true
		sm.pending = append(sm.pending, s)
	}
	s.next = v
}

// SetU64 schedules the low 64 bits.
func (s *Signal) SetU64(v uint64) { s.Set(B64(v)) }

// SetBool schedules a single-bit value.
func (s *Signal) SetBool(v bool) { s.Set(BBool(v)) }

// force installs a value immediately, bypassing delta semantics. It is only
// used by the kernel for initialisation before time starts; in lane mode it
// applies to every lane.
func (s *Signal) force(v Bits) {
	if ls := s.ls; ls != nil {
		v = v.Mask(s.width)
		for l := range ls.lv {
			ls.lv[l] = v
		}
		ls.lvOK = true
		ls.plOK = false
		return
	}
	s.cur = v.Mask(s.width)
}

func (s *Signal) String() string {
	return fmt.Sprintf("%s[%d]=%s", s.name, s.width, s.cur)
}
