package sim

import "fmt"

// Signal is a named, width-checked wire with SystemC signal semantics:
// reads observe the value committed at the previous delta, and writes take
// effect at the next delta boundary. Signals are created by
// (*Simulator).Signal and are owned by exactly one Simulator.
type Signal struct {
	sim   *Simulator
	id    int
	name  string
	width int

	cur     Bits
	next    Bits
	pending bool

	// sensitive holds the combinational processes to wake when the
	// committed value changes.
	sensitive []*process
}

// Name returns the hierarchical signal name.
func (s *Signal) Name() string { return s.name }

// Width returns the signal width in bits.
func (s *Signal) Width() int { return s.width }

// ID returns the simulator-unique dense signal index, usable as a slice key
// by tracers and monitors.
func (s *Signal) ID() int { return s.id }

// Get returns the current committed value.
func (s *Signal) Get() Bits { return s.cur }

// U64 returns the low 64 bits of the current committed value.
func (s *Signal) U64() uint64 { return s.cur.Uint64() }

// Bool reports whether the current committed value is non-zero.
func (s *Signal) Bool() bool { return s.cur.Bool() }

// Set schedules v (masked to the signal width) to be committed at the next
// delta boundary. Writing the current value cancels any pending change, like
// a SystemC sc_signal write of an equal value.
func (s *Signal) Set(v Bits) {
	v = v.Mask(s.width)
	if !s.pending {
		if v.Equal(s.cur) {
			return
		}
		s.pending = true
		s.sim.pending = append(s.sim.pending, s)
	}
	s.next = v
}

// SetU64 schedules the low 64 bits.
func (s *Signal) SetU64(v uint64) { s.Set(B64(v)) }

// SetBool schedules a single-bit value.
func (s *Signal) SetBool(v bool) { s.Set(BBool(v)) }

// force installs a value immediately, bypassing delta semantics. It is only
// used by the kernel for initialisation before time starts.
func (s *Signal) force(v Bits) { s.cur = v.Mask(s.width) }

func (s *Signal) String() string {
	return fmt.Sprintf("%s[%d]=%s", s.name, s.width, s.cur)
}
