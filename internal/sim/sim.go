package sim

import (
	"errors"
	"fmt"
)

// DefaultMaxDeltas bounds the number of delta cycles the kernel will run
// within a single clock cycle before declaring combinational oscillation.
const DefaultMaxDeltas = 1000

// ErrOscillation is returned by Step and Run when combinational processes
// fail to reach a fixed point within MaxDeltas delta cycles, i.e. the design
// contains an unstable combinational loop.
var ErrOscillation = errors.New("sim: combinational logic did not settle (oscillation)")

// ForceDeltaLoop, when set before New, makes new simulators settle with the
// legacy iterate-to-fixpoint delta loop instead of the levelized scheduler.
// It exists for the kernel-equivalence property tests and for the ablation
// benchmarks; production callers leave it false.
var ForceDeltaLoop bool

// StrictSensitivity, when set before New, makes new simulators panic when a
// combinational process reads a signal outside its sensitivity list. Such a
// process is undersensitized: it would not be re-run when the signal
// changes, and the levelized scheduler would rank it against an incomplete
// input set. Test suites enable this; production callers leave it false.
var StrictSensitivity bool

type process struct {
	name string
	fn   func()
	seq  bool
	inQ  bool

	// id is the dense registration index among combinational processes,
	// assigned at levelization; it doubles as the deterministic tiebreaker.
	id int
	// evals counts evaluations, for the kernel profiling surface.
	evals uint64
	// sampleNS accumulates 1-in-8 sampled evaluation wall time when the
	// simulator's Timing flag is set.
	sampleNS int64

	// ir is the dataflow description of CombExpr/SeqExpr processes; nil for
	// closure processes. The compiled backend fuses acyclic IR processes;
	// every other backend runs them through the fallback closure fn.
	ir []Assign
	// fused marks a process absorbed into the fused bytecode program; a wake
	// only marks its segment dirty so the sweep re-runs it. seg is that
	// segment and segEnt its schedule index.
	fused  bool
	seg    *progSeg
	segEnt int
	// seqCode is the compiled body of an IR-declared sequential process,
	// run in place of fn while a program is active.
	seqCode []kinstr

	// lane is the lane the process belongs to under lane-parallel execution
	// (-1: scalar mode or a lane-less global process). ord is its
	// registration ordinal within its lane's construction sequence — equal
	// ordinals across lanes identify the per-lane copies of one process, the
	// grouping key of transposed fusion.
	lane int
	ord  int
	// lseqCode is the transposed program of a sequential lane group,
	// compiled onto the lane-0 member; laneDup marks the sibling members
	// Step skips. laneSibs links lane 0 to its duplicates for eval-count
	// reconciliation at dropProgram.
	lseqCode []linstr
	laneDup  bool
	laneSibs []*process

	// declared reports that outs came from CombOut rather than from the
	// time-zero write-recording fallback.
	declared bool
	// outs holds the signals this process drives (declared or learned).
	outs []*Signal
	// sens is the sensitivity list as registered.
	sens []*Signal
	// sensBits is a bitset over signal IDs backing the strict-sensitivity
	// check.
	sensBits []uint64

	// unit/rank/cyclic are the levelization results (valid when frozen).
	unit   int
	rank   int
	cyclic bool
}

// noteOut records s as a driven signal of p (learning fallback for legacy
// Comb registrations). Output lists are short, so a linear scan beats a map.
func (p *process) noteOut(s *Signal) {
	for _, o := range p.outs {
		if o == s {
			return
		}
	}
	p.outs = append(p.outs, s)
}

func (p *process) setSensBit(id int) {
	w := id >> 6
	for len(p.sensBits) <= w {
		p.sensBits = append(p.sensBits, 0)
	}
	p.sensBits[w] |= 1 << (uint(id) & 63)
}

func (p *process) sensHas(id int) bool {
	w := id >> 6
	return w < len(p.sensBits) && p.sensBits[w]&(1<<(uint(id)&63)) != 0
}

// sccUnit is one strongly connected component of the combinational process
// graph, the scheduling unit of the levelized settler. Units are kept in
// topological order of the condensation (ties within a rank break by
// registration order).
type sccUnit struct {
	procs  []*process // members, in registration order
	rank   int
	cyclic bool
	queued int // members currently woken
}

// Simulator owns a set of signals and processes and advances them under a
// single implicit synchronous clock. Cycle numbering starts at 0; within each
// cycle the kernel:
//
//  1. runs every sequential process once (they observe values settled at the
//     end of the previous cycle),
//  2. commits scheduled signal updates and settles combinational processes —
//     by default with the levelized scheduler (one ranked sweep over the
//     SCC condensation of the process graph, iterating to a fixed point only
//     inside cyclic components), or with the bounded iterate-to-fixpoint
//     delta loop when ForceDeltaLoop is set,
//  3. invokes end-of-cycle hooks (monitors, tracers) which observe the fully
//     settled cycle.
//
// Both settling strategies reach the same fixed point on acyclic logic (the
// fixed point is unique) and iterate deterministically inside cyclic
// components, so waveforms are identical either way.
type Simulator struct {
	signals []*Signal
	seqs    []*process
	combs   []*process
	hooks   []cycHook

	// Lane-parallel execution state (see lane.go): lanes is the lane count
	// (0: scalar), laneAll the mask of all lanes, activeMask the live subset.
	// buildLane is the lane under construction (-1 outside BeginLane) with
	// laneSigOrd/laneProcOrd its ordinal counters; laneSigs is lane 0's
	// signal creation sequence, the aliasing table for later lanes. curLane
	// is the lane context of the running closure or hook, the implicit lane
	// every Signal read/write resolves against.
	lanes       int
	laneAll     uint64
	activeMask  uint64
	buildLane   int
	curLane     int
	laneSigOrd  int
	laneProcOrd int
	laneSigs    []*Signal

	// pending/runQ and their spares are double-buffered so the settle hot
	// loop is allocation-free in steady state.
	pending   []*Signal
	pendSpare []*Signal
	runQ      []*process
	runQSpare []*process

	// units is the topologically ordered SCC condensation, built at the
	// Step-time elaboration freeze; nil when levelization is disabled.
	units       []*sccUnit
	totalQueued int
	maxRank     int

	// prog is the fused bytecode program of the compiled backend, built at
	// the freeze when Kernel is KernelCompiled; nil otherwise.
	prog *program
	// sweepPos is the schedule index the compiled settle is executing (-1
	// outside a sweep); with fusedStale it detects undeclared writes that
	// fed an already-executed segment, forcing a mop-up pass.
	sweepPos   int
	fusedStale bool

	// compiledEvals/closureEvals split process evaluations by dispatch
	// mechanism for the kernel profiling surface. fusedLaneEvals counts
	// lane-equivalent evaluations of transposed segments (one segment pass
	// times the active lane count) — the numerator complement of the lane
	// divergence rate.
	compiledEvals  uint64
	closureEvals   uint64
	fusedLaneEvals uint64

	cycle  uint64
	frozen bool

	// cur is the process currently evaluating (nil outside evaluations);
	// it anchors the strict-sensitivity check and output learning.
	cur *process

	MaxDeltas int

	// Kernel selects the settling backend; it must be set before the first
	// Step. ForceDeltaLoop overrides it.
	Kernel Kernel

	// Timing enables 1-in-8 sampled per-process wall-time collection for
	// Stats. Off by default: the hot loop pays only a flag check.
	Timing bool

	// ForceDeltaLoop disables the levelized scheduler on this simulator;
	// it must be set before the first Step. Initialized from the package
	// variable of the same name.
	ForceDeltaLoop bool

	// Strict enables the strict-sensitivity debug check on this simulator.
	// Initialized from the package variable StrictSensitivity.
	Strict bool

	// DeltaCount accumulates the total number of delta iterations executed,
	// exposed for the kernel-convergence ablation benchmarks. The levelized
	// scheduler charges one delta per settle plus one per extra fixpoint
	// iteration inside cyclic components (and per mop-up pass after an
	// undeclared write fed an already-swept rank).
	DeltaCount uint64

	// settles/settleHist back the Stats settle-depth histogram.
	settles    uint64
	settleHist [settleHistBuckets]uint64
}

// New returns an empty simulator.
func New() *Simulator {
	return &Simulator{
		MaxDeltas:      DefaultMaxDeltas,
		ForceDeltaLoop: ForceDeltaLoop,
		Strict:         StrictSensitivity,
		sweepPos:       -1,
		buildLane:      -1,
		curLane:        -1,
	}
}

// cycHook is one registered cycle-end hook and the lane it observes (-1:
// lane-less, runs regardless of lane liveness).
type cycHook struct {
	fn   func()
	lane int
}

// Signal creates a new signal with the given hierarchical name and bit width.
// Under lane construction, lane 0 creates and later lanes alias the
// ordinal-matched signal, so all lanes share one graph.
func (sm *Simulator) Signal(name string, width int) *Signal {
	if width <= 0 || width > MaxBitsWidth {
		panic(fmt.Sprintf("sim: signal %q width %d out of range 1..%d", name, width, MaxBitsWidth))
	}
	if sm.lanes > 0 {
		return sm.laneAlias(name, width)
	}
	s := &Signal{sim: sm, id: len(sm.signals), name: name, width: width, mask: &maskTab[width]}
	sm.signals = append(sm.signals, s)
	return s
}

// Bool creates a 1-bit signal.
func (sm *Simulator) Bool(name string) *Signal { return sm.Signal(name, 1) }

// Signals returns all signals in creation order. The returned slice is owned
// by the simulator and must not be mutated.
func (sm *Simulator) Signals() []*Signal { return sm.signals }

// Cycle returns the number of completed clock cycles.
func (sm *Simulator) Cycle() uint64 { return sm.cycle }

// Seq registers a sequential (clocked) process, run once per cycle in
// registration order.
func (sm *Simulator) Seq(name string, fn func()) {
	p := &process{name: name, fn: fn, seq: true, unit: -1, lane: sm.buildLane}
	if sm.buildLane >= 0 {
		p.ord = sm.laneProcOrd
		sm.laneProcOrd++
	}
	sm.seqs = append(sm.seqs, p)
}

// Comb registers a combinational process sensitive to the given signals. The
// process runs whenever any of them changes, and once at the start of
// simulation to establish initial outputs. Its driven signals are learned by
// recording its writes on that mandatory time-zero evaluation; processes
// whose writes are conditional should declare them with CombOut instead so
// the levelized scheduler ranks them exactly.
func (sm *Simulator) Comb(name string, fn func(), sensitivity ...*Signal) {
	sm.addComb(name, fn, nil, false, sensitivity)
}

// CombOut registers a combinational process that declares the signals it
// drives. Sensitivity (inputs) plus outputs give the levelized scheduler the
// exact dependency edges of the process, with no reliance on the time-zero
// learning fallback.
func (sm *Simulator) CombOut(name string, fn func(), outputs []*Signal, sensitivity ...*Signal) {
	sm.addComb(name, fn, outputs, true, sensitivity)
}

func (sm *Simulator) addComb(name string, fn func(), outs []*Signal, declared bool, sens []*Signal) {
	p := &process{name: name, fn: fn, declared: declared, unit: -1, lane: sm.buildLane}
	if sm.buildLane >= 0 {
		p.ord = sm.laneProcOrd
		sm.laneProcOrd++
	}
	for _, s := range sens {
		if s.sim != sm {
			panic(fmt.Sprintf("sim: process %q sensitive to foreign signal %q", name, s.name))
		}
		s.sensitive = append(s.sensitive, p)
		p.setSensBit(s.id)
	}
	p.sens = append(p.sens, sens...)
	for _, s := range outs {
		if s.sim != sm {
			panic(fmt.Sprintf("sim: process %q declares foreign output %q", name, s.name))
		}
		p.noteOut(s)
	}
	sm.combs = append(sm.combs, p)
	// Any new combinational process invalidates the levelization; the next
	// Step re-freezes (and runs the new process's time-zero evaluation).
	sm.unfreeze()
	sm.wake(p)
}

// unfreeze drops the levelized schedule so the next Step re-elaborates.
// Queued wakes are re-homed onto the legacy run queue.
func (sm *Simulator) unfreeze() {
	if !sm.frozen && sm.units == nil {
		return
	}
	sm.frozen = false
	sm.dropProgram()
	if sm.units != nil {
		for _, u := range sm.units {
			if u.queued == 0 {
				continue
			}
			for _, p := range u.procs {
				if p.inQ {
					sm.runQ = append(sm.runQ, p)
					u.queued--
				}
			}
		}
		sm.units = nil
		sm.totalQueued = 0
	}
}

// AtCycleEnd registers a read-only observer hook invoked after each cycle
// fully settles (monitors, tracers, checkers). Hooks must not drive signals:
// a hook write would re-settle combinational logic after other observers
// already sampled it, making "the value of the cycle" ambiguous. Anything
// that drives signals — bus functional models included — belongs in a Seq
// process.
func (sm *Simulator) AtCycleEnd(fn func()) {
	sm.hooks = append(sm.hooks, cycHook{fn: fn, lane: sm.buildLane})
}

func (sm *Simulator) wake(p *process) {
	if p.fused {
		// A fused process's wake marks its segment dirty so the sweep re-runs
		// it — unless the wake comes from a store inside that very segment
		// (sweepPos equal), where rank order guarantees the reader's loads
		// execute after the store and already see the fresh value. A wake
		// arriving after the segment already executed this sweep (an
		// undeclared back edge) additionally forces a mop-up pass.
		if p.segEnt != sm.sweepPos {
			p.seg.dirty = true
		}
		if p.segEnt < sm.sweepPos {
			sm.fusedStale = true
		}
		return
	}
	if p.inQ {
		return
	}
	p.inQ = true
	if sm.units != nil {
		sm.units[p.unit].queued++
		sm.totalQueued++
	} else {
		sm.runQ = append(sm.runQ, p)
	}
}

// eval runs one process evaluation with the current-process context set for
// strict-sensitivity checking and output learning. With Timing set, one in
// eight evaluations per process is wall-clock sampled for the profile.
func (sm *Simulator) eval(p *process) {
	sm.cur = p
	sm.curLane = p.lane
	p.evals++
	sm.closureEvals++
	if sm.Timing && p.evals&7 == 1 {
		t0 := nowNS()
		p.fn()
		p.sampleNS += nowNS() - t0
	} else {
		p.fn()
	}
	sm.cur = nil
}

// commit applies every pending signal write and wakes the processes
// sensitive to the ones that changed, reporting whether any did. The pending
// list is double-buffered, not reallocated.
func (sm *Simulator) commit() bool {
	pend := sm.pending
	sm.pending = sm.pendSpare[:0]
	changed := false
	for _, s := range pend {
		s.pending = false
		if s.ls != nil {
			if sm.commitLane(s) {
				changed = true
			}
			continue
		}
		if s.next.Equal(s.cur) {
			continue
		}
		s.cur = s.next
		changed = true
		for _, p := range s.sensitive {
			sm.wake(p)
		}
	}
	sm.pendSpare = pend[:0]
	return changed
}

// settle commits pending writes and runs woken combinational processes until
// a fixed point, dispatching to the levelized scheduler when a schedule is
// in place and recording the settle-depth histogram.
func (sm *Simulator) settle() error {
	sm.settles++
	start := sm.DeltaCount
	var err error
	switch {
	case sm.prog != nil:
		err = sm.settleCompiled()
	case sm.units != nil:
		err = sm.settleLevelized()
	default:
		err = sm.settleLoop()
	}
	d := sm.DeltaCount - start
	if d >= settleHistBuckets {
		d = settleHistBuckets - 1
	}
	sm.settleHist[d]++
	return err
}

// settleLoop is the legacy bounded iterate-to-fixpoint delta loop: evaluate
// every woken process, commit, repeat until nothing changes. Its run queue
// is double-buffered so steady-state settling does not allocate.
func (sm *Simulator) settleLoop() error {
	for delta := 0; ; delta++ {
		if delta > sm.MaxDeltas {
			return fmt.Errorf("%w after %d deltas at cycle %d", ErrOscillation, delta, sm.cycle)
		}
		// Evaluate phase: run every queued process.
		q := sm.runQ
		sm.runQ = sm.runQSpare[:0]
		for _, p := range q {
			p.inQ = false
			sm.eval(p)
		}
		sm.runQSpare = q[:0]
		// Update phase: commit writes, wake sensitive processes.
		changed := sm.commit()
		sm.DeltaCount++
		if !changed && len(sm.runQ) == 0 {
			return nil
		}
	}
}

// freeze is the Step-time elaboration freeze: it runs the time-zero settle
// under the legacy loop — during which legacy Comb processes have their
// writes recorded as outputs — then levelizes the process graph (unless
// ForceDeltaLoop is set).
func (sm *Simulator) freeze() error {
	if err := sm.settle(); err != nil {
		return err
	}
	if !sm.ForceDeltaLoop {
		sm.buildLevels()
		if sm.Kernel == KernelCompiled {
			sm.buildProgram()
		}
	}
	sm.frozen = true
	return nil
}

// Step advances the simulation by one clock cycle.
func (sm *Simulator) Step() error {
	if !sm.frozen {
		if err := sm.freeze(); err != nil {
			return err
		}
	}
	for _, p := range sm.seqs {
		switch {
		case p.laneDup:
			// Covered by its group's transposed program in the lane-0 slot.
		case p.seqCode != nil:
			sm.runSeqProg(p)
		case p.lseqCode != nil:
			sm.runLaneSeqProg(p)
		case p.lane >= 0 && sm.activeMask>>uint(p.lane)&1 == 0:
			// Retired lane: its closures stop running.
		default:
			sm.eval(p)
		}
	}
	if err := sm.settle(); err != nil {
		return err
	}
	sm.cycle++
	for i := range sm.hooks {
		h := &sm.hooks[i]
		if h.lane >= 0 && sm.activeMask>>uint(h.lane)&1 == 0 {
			continue
		}
		sm.curLane = h.lane
		h.fn()
	}
	sm.curLane = -1
	if len(sm.pending) > 0 {
		return fmt.Errorf("sim: cycle-end hook drove signal %q; hooks are read-only observers, use a Seq process", sm.pending[0].name)
	}
	return nil
}

// Run advances the simulation n cycles, stopping early on error.
func (sm *Simulator) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := sm.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances the simulation until done reports true or the cycle
// limit is hit, returning an error in the latter case.
func (sm *Simulator) RunUntil(done func() bool, limit int) error {
	for i := 0; i < limit; i++ {
		if done() {
			return nil
		}
		if err := sm.Step(); err != nil {
			return err
		}
	}
	if done() {
		return nil
	}
	return fmt.Errorf("sim: condition not reached within %d cycles", limit)
}
