package sim

import (
	"errors"
	"fmt"
)

// DefaultMaxDeltas bounds the number of delta cycles the kernel will run
// within a single clock cycle before declaring combinational oscillation.
const DefaultMaxDeltas = 1000

// ErrOscillation is returned by Step and Run when combinational processes
// fail to reach a fixed point within MaxDeltas delta cycles, i.e. the design
// contains an unstable combinational loop.
var ErrOscillation = errors.New("sim: combinational logic did not settle (oscillation)")

type process struct {
	name string
	fn   func()
	seq  bool
	inQ  bool
}

// Simulator owns a set of signals and processes and advances them under a
// single implicit synchronous clock. Cycle numbering starts at 0; within each
// cycle the kernel:
//
//  1. runs every sequential process once (they observe values settled at the
//     end of the previous cycle),
//  2. commits scheduled signal updates and wakes sensitive combinational
//     processes, repeating until no signal changes (delta loop),
//  3. invokes end-of-cycle hooks (monitors, tracers) which observe the fully
//     settled cycle.
type Simulator struct {
	signals []*Signal
	seqs    []*process
	pending []*Signal
	runQ    []*process
	hooks   []func()

	cycle     uint64
	started   bool
	MaxDeltas int

	// DeltaCount accumulates the total number of delta iterations executed,
	// exposed for the kernel-convergence ablation benchmarks.
	DeltaCount uint64
}

// New returns an empty simulator.
func New() *Simulator {
	return &Simulator{MaxDeltas: DefaultMaxDeltas}
}

// Signal creates a new signal with the given hierarchical name and bit width.
func (sm *Simulator) Signal(name string, width int) *Signal {
	if width <= 0 || width > MaxBitsWidth {
		panic(fmt.Sprintf("sim: signal %q width %d out of range 1..%d", name, width, MaxBitsWidth))
	}
	s := &Signal{sim: sm, id: len(sm.signals), name: name, width: width}
	sm.signals = append(sm.signals, s)
	return s
}

// Bool creates a 1-bit signal.
func (sm *Simulator) Bool(name string) *Signal { return sm.Signal(name, 1) }

// Signals returns all signals in creation order. The returned slice is owned
// by the simulator and must not be mutated.
func (sm *Simulator) Signals() []*Signal { return sm.signals }

// Cycle returns the number of completed clock cycles.
func (sm *Simulator) Cycle() uint64 { return sm.cycle }

// Seq registers a sequential (clocked) process, run once per cycle in
// registration order.
func (sm *Simulator) Seq(name string, fn func()) {
	sm.seqs = append(sm.seqs, &process{name: name, fn: fn, seq: true})
}

// Comb registers a combinational process sensitive to the given signals. The
// process runs whenever any of them changes, and once at the start of
// simulation to establish initial outputs.
func (sm *Simulator) Comb(name string, fn func(), sensitivity ...*Signal) {
	p := &process{name: name, fn: fn}
	for _, s := range sensitivity {
		if s.sim != sm {
			panic(fmt.Sprintf("sim: process %q sensitive to foreign signal %q", name, s.name))
		}
		s.sensitive = append(s.sensitive, p)
	}
	// Run once at time zero so outputs are defined before the first cycle.
	sm.wake(p)
}

// AtCycleEnd registers a read-only observer hook invoked after each cycle
// fully settles (monitors, tracers, checkers). Hooks must not drive signals:
// a hook write would re-settle combinational logic after other observers
// already sampled it, making "the value of the cycle" ambiguous. Anything
// that drives signals — bus functional models included — belongs in a Seq
// process.
func (sm *Simulator) AtCycleEnd(fn func()) {
	sm.hooks = append(sm.hooks, fn)
}

func (sm *Simulator) wake(p *process) {
	if !p.inQ {
		p.inQ = true
		sm.runQ = append(sm.runQ, p)
	}
}

// settle commits pending writes and runs woken combinational processes until
// a fixed point.
func (sm *Simulator) settle() error {
	for delta := 0; ; delta++ {
		if delta > sm.MaxDeltas {
			return fmt.Errorf("%w after %d deltas at cycle %d", ErrOscillation, delta, sm.cycle)
		}
		// Evaluate phase: run every queued process.
		q := sm.runQ
		sm.runQ = nil
		for _, p := range q {
			p.inQ = false
			p.fn()
		}
		// Update phase: commit writes, wake sensitive processes.
		pend := sm.pending
		sm.pending = nil
		changed := false
		for _, s := range pend {
			s.pending = false
			if s.next.Equal(s.cur) {
				continue
			}
			s.cur = s.next
			changed = true
			for _, p := range s.sensitive {
				sm.wake(p)
			}
		}
		sm.DeltaCount++
		if !changed && len(sm.runQ) == 0 {
			return nil
		}
	}
}

// Step advances the simulation by one clock cycle.
func (sm *Simulator) Step() error {
	if !sm.started {
		sm.started = true
		// Settle initial combinational state before the first edge.
		if err := sm.settle(); err != nil {
			return err
		}
	}
	for _, p := range sm.seqs {
		p.fn()
	}
	if err := sm.settle(); err != nil {
		return err
	}
	sm.cycle++
	for _, h := range sm.hooks {
		h()
	}
	if len(sm.pending) > 0 {
		return fmt.Errorf("sim: cycle-end hook drove signal %q; hooks are read-only observers, use a Seq process", sm.pending[0].name)
	}
	return nil
}

// Run advances the simulation n cycles, stopping early on error.
func (sm *Simulator) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := sm.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances the simulation until done reports true or the cycle
// limit is hit, returning an error in the latter case.
func (sm *Simulator) RunUntil(done func() bool, limit int) error {
	for i := 0; i < limit; i++ {
		if done() {
			return nil
		}
		if err := sm.Step(); err != nil {
			return err
		}
	}
	if done() {
		return nil
	}
	return fmt.Errorf("sim: condition not reached within %d cycles", limit)
}
