package sim

import (
	"os"
	"strings"
	"testing"
)

// TestMain enables the strict-sensitivity debug check for the whole package
// suite: any test process reading a signal outside its sensitivity list is a
// bug in the test, not a scenario to tolerate.
func TestMain(m *testing.M) {
	StrictSensitivity = true
	os.Exit(m.Run())
}

// buildChain wires a depth-n CombOut chain s[0] -> s[1] -> ... -> s[n] with a
// Seq driver incrementing s[0].
func buildChain(sm *Simulator, depth int) []*Signal {
	sigs := make([]*Signal, depth+1)
	for i := range sigs {
		sigs[i] = sm.Signal("s", 16)
	}
	for i := 0; i < depth; i++ {
		i := i
		sm.CombOut("chain", func() { sigs[i+1].SetU64(sigs[i].U64() + 1) }, []*Signal{sigs[i+1]}, sigs[i])
	}
	sm.Seq("drive", func() { sigs[0].SetU64(sigs[0].U64() + 1) })
	return sigs
}

func TestLevelizedChainSettlesInOneDelta(t *testing.T) {
	// A depth-16 declared chain needs ~17 deltas per cycle under the legacy
	// loop but exactly one ranked sweep (one delta) once levelized.
	const depth = 16
	sm := New()
	sigs := buildChain(sm, depth)
	if err := sm.Step(); err != nil { // freeze + time-zero legacy settle
		t.Fatal(err)
	}
	before := sm.DeltaCount
	const cycles = 10
	for i := 0; i < cycles; i++ {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sm.DeltaCount - before; got != cycles {
		t.Errorf("levelized chain used %d deltas over %d cycles, want %d", got, cycles, cycles)
	}
	if want := uint64(1+cycles) + depth; sigs[depth].U64() != want {
		t.Errorf("chain output %d, want %d", sigs[depth].U64(), want)
	}
	ks := sm.Stats()
	if !ks.Levelized || ks.Ranks != depth {
		t.Errorf("stats: levelized=%v ranks=%d, want true %d", ks.Levelized, ks.Ranks, depth)
	}
	if len(ks.CyclicSCCs) != 0 {
		t.Errorf("acyclic chain reported %d cyclic SCCs", len(ks.CyclicSCCs))
	}
}

func TestLegacyChainLearnsOutputs(t *testing.T) {
	// The same chain registered with legacy Comb must learn its outputs on
	// the time-zero evaluation and levelize identically.
	const depth = 8
	sm := New()
	sigs := make([]*Signal, depth+1)
	for i := range sigs {
		sigs[i] = sm.Signal("s", 16)
	}
	for i := 0; i < depth; i++ {
		i := i
		sm.Comb("chain", func() { sigs[i+1].SetU64(sigs[i].U64() + 1) }, sigs[i])
	}
	sm.Seq("drive", func() { sigs[0].SetU64(sigs[0].U64() + 1) })
	if err := sm.Run(5); err != nil {
		t.Fatal(err)
	}
	ks := sm.Stats()
	if !ks.Levelized || ks.Ranks != depth {
		t.Errorf("learned chain: levelized=%v ranks=%d, want true %d", ks.Levelized, ks.Ranks, depth)
	}
	if want := uint64(5 + depth); sigs[depth].U64() != want {
		t.Errorf("chain output %d, want %d", sigs[depth].U64(), want)
	}
}

// buildCyclic wires a converging two-process combinational loop:
// x = in | y, y = x. Monotone, so it reaches a fixed point in two
// iterations; the loop is a genuine 2-process SCC.
func buildCyclic(sm *Simulator) (in, x, y *Signal) {
	in = sm.Signal("in", 8)
	x = sm.Signal("x", 8)
	y = sm.Signal("y", 8)
	sm.CombOut("x=in|y", func() { x.SetU64(in.U64() | y.U64()) }, []*Signal{x}, in, y)
	sm.CombOut("y=x", func() { y.SetU64(x.U64()) }, []*Signal{y}, x)
	sm.Seq("feed", func() { in.SetU64(in.U64()<<1 | 1) })
	return
}

func TestCyclicSCCConvergesAndMatchesLegacy(t *testing.T) {
	run := func(force bool) ([]uint64, *KernelStats) {
		sm := New()
		sm.ForceDeltaLoop = force
		_, _, y := buildCyclic(sm)
		var trace []uint64
		sm.AtCycleEnd(func() { trace = append(trace, y.U64()) })
		if err := sm.Run(6); err != nil {
			t.Fatal(err)
		}
		return trace, sm.Stats()
	}
	lvl, lks := run(false)
	leg, _ := run(true)
	for i := range lvl {
		if lvl[i] != leg[i] {
			t.Fatalf("cycle %d: levelized %d != legacy %d", i, lvl[i], leg[i])
		}
	}
	if !lks.Levelized {
		t.Fatal("levelized run reported Levelized=false")
	}
	if len(lks.CyclicSCCs) != 1 || lks.CyclicSCCs[0].Size != 2 {
		t.Fatalf("cyclic SCC inventory %+v, want one SCC of size 2", lks.CyclicSCCs)
	}
	names := strings.Join(lks.CyclicSCCs[0].Procs, ",")
	if !strings.Contains(names, "x=in|y") || !strings.Contains(names, "y=x") {
		t.Errorf("SCC members %q missing loop processes", names)
	}
}

func TestUndeclaredLateWriteMopUp(t *testing.T) {
	// A legacy Comb whose write is conditional stays silent on the time-zero
	// evaluation, so levelization learns no output edge for it. When the
	// write fires later and feeds logic in an already-swept rank, the
	// scheduler's mop-up pass must still reach the fixed point.
	sm := New()
	sel := sm.Signal("sel", 1)
	a := sm.Signal("a", 8)
	out := sm.Signal("out", 8)
	dbl := sm.Signal("dbl", 8)
	sm.Comb("cond", func() {
		if sel.Bool() {
			out.SetU64(a.U64())
		}
	}, sel, a)
	sm.CombOut("dbl", func() { dbl.SetU64(out.U64() * 2) }, []*Signal{dbl}, out)
	cycle := 0
	sm.Seq("drive", func() {
		cycle++
		a.SetU64(uint64(10 * cycle))
		sel.SetBool(cycle >= 2)
	})
	if err := sm.Run(3); err != nil {
		t.Fatal(err)
	}
	// cycle 3: sel held, out follows a (=30), dbl must have re-settled.
	if out.U64() != 30 || dbl.U64() != 60 {
		t.Fatalf("out=%d dbl=%d, want 30 60 (mop-up pass missed the late write)", out.U64(), dbl.U64())
	}
}

func TestStrictSensitivityPanics(t *testing.T) {
	sm := New()
	seen := sm.Signal("seen", 8)
	hidden := sm.Signal("hidden", 8)
	out := sm.Signal("out", 8)
	sm.CombOut("leaky", func() { out.SetU64(seen.U64() + hidden.U64()) }, []*Signal{out}, seen)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reading outside the sensitivity list should panic under StrictSensitivity")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "leaky") || !strings.Contains(msg, "hidden") {
			t.Fatalf("panic %v should name both the process and the signal", r)
		}
	}()
	_ = sm.Step()
}

func TestStrictSensitivityAllowsSeqAndHooks(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 8)
	b := sm.Signal("b", 8)
	sm.Seq("free", func() { b.Set(a.Get()) }) // Seq reads anything
	sm.AtCycleEnd(func() { _ = b.U64() })     // hooks read anything
	if err := sm.Run(2); err != nil {
		t.Fatal(err)
	}
}

func TestCombRegisteredAfterFreezeReElaborates(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 8)
	b := sm.Signal("b", 8)
	sm.CombOut("b=a+1", func() { b.SetU64(a.U64() + 1) }, []*Signal{b}, a)
	sm.Seq("drive", func() { a.SetU64(a.U64() + 1) })
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	// Late registration must unfreeze, re-run elaboration and include the
	// new process in the schedule.
	c := sm.Signal("c", 8)
	sm.CombOut("c=b*2", func() { c.SetU64(b.U64() * 2) }, []*Signal{c}, b)
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if c.U64() != (a.U64()+1)*2 {
		t.Fatalf("late comb not scheduled: a=%d c=%d", a.U64(), c.U64())
	}
	ks := sm.Stats()
	if !ks.Levelized || ks.Ranks != 2 {
		t.Errorf("re-elaborated stats: levelized=%v ranks=%d, want true 2", ks.Levelized, ks.Ranks)
	}
}

func TestStatsContents(t *testing.T) {
	sm := New()
	sigs := buildChain(sm, 4)
	_ = sigs
	if err := sm.Run(5); err != nil {
		t.Fatal(err)
	}
	ks := sm.Stats()
	if ks.Cycles != 5 {
		t.Errorf("Cycles=%d, want 5", ks.Cycles)
	}
	if ks.Settles != 6 { // time-zero + 5 cycles
		t.Errorf("Settles=%d, want 6", ks.Settles)
	}
	if len(ks.Procs) != 5 { // 4 combs + 1 seq
		t.Fatalf("Procs len=%d, want 5", len(ks.Procs))
	}
	var seqs int
	for _, p := range ks.Procs {
		if p.Seq {
			seqs++
			if p.Evals != 5 {
				t.Errorf("seq %q evals=%d, want 5", p.Name, p.Evals)
			}
		} else if p.Evals == 0 {
			t.Errorf("comb %q never evaluated", p.Name)
		}
	}
	if seqs != 1 {
		t.Errorf("seq count %d, want 1", seqs)
	}
	if dpc := ks.DeltasPerCycle(); dpc <= 0 {
		t.Errorf("DeltasPerCycle=%v, want > 0", dpc)
	}
	top := ks.TopProcs(2)
	if len(top) != 2 || top[0].Evals < top[1].Evals {
		t.Errorf("TopProcs not sorted by evals: %+v", top)
	}
	if len(ks.SettleDepth) == 0 {
		t.Error("settle-depth histogram empty")
	}

	// Merge doubles every counter and keeps the schedule shape.
	other := sm.Stats()
	ks.Merge(other)
	if ks.Cycles != 10 || ks.Settles != 12 {
		t.Errorf("after merge: cycles=%d settles=%d, want 10 12", ks.Cycles, ks.Settles)
	}
	for _, p := range ks.Procs {
		if p.Seq && p.Evals != 10 {
			t.Errorf("merged seq evals=%d, want 10", p.Evals)
		}
	}
}

func TestStepSteadyStateZeroAlloc(t *testing.T) {
	sm := New()
	buildChain(sm, 8)
	if err := sm.Run(3); err != nil { // warm up: freeze + buffer growth
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Step allocates %.1f times per cycle, want 0", avg)
	}
}

func TestLevelizedDeterminismMatchesLegacy(t *testing.T) {
	// Same mixed design (chain + cyclic loop + xor mixer), both kernels,
	// byte-identical traces.
	build := func(force bool) []uint64 {
		sm := New()
		sm.ForceDeltaLoop = force
		a := sm.Signal("a", 32)
		b := sm.Signal("b", 32)
		c := sm.Signal("c", 32)
		x := sm.Signal("x", 32)
		y := sm.Signal("y", 32)
		sm.CombOut("b", func() { b.SetU64(a.U64() + 3) }, []*Signal{b}, a)
		sm.CombOut("c", func() { c.SetU64(b.U64() ^ y.U64()) }, []*Signal{c}, b, y)
		sm.CombOut("x", func() { x.SetU64(a.U64() | y.U64()) }, []*Signal{x}, a, y)
		sm.CombOut("y", func() { y.SetU64(x.U64()) }, []*Signal{y}, x)
		sm.Seq("a", func() { a.SetU64(a.U64()*1103515245 + 12345) })
		var trace []uint64
		sm.AtCycleEnd(func() { trace = append(trace, c.U64()) })
		if err := sm.Run(40); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	lvl, leg := build(false), build(true)
	for i := range lvl {
		if lvl[i] != leg[i] {
			t.Fatalf("cycle %d: levelized %#x != legacy %#x", i, lvl[i], leg[i])
		}
	}
}
