package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// timeBase anchors the monotonic clock the sampled-timing profile reads.
var timeBase = time.Now()

// nowNS returns monotonic nanoseconds since process start.
func nowNS() int64 { return int64(time.Since(timeBase)) }

// settleHistBuckets sizes the settle-depth histogram: bucket i counts
// settles that took i deltas, with the last bucket absorbing deeper ones.
const settleHistBuckets = 17

// ProcStat is the profile of one process: how often the kernel evaluated it,
// and where levelization placed it.
type ProcStat struct {
	Name  string `json:"name"`
	Seq   bool   `json:"seq,omitempty"`
	Evals uint64 `json:"evals"`
	// Rank is the levelized rank of the process's SCC (-1 for sequential
	// processes and when levelization is off).
	Rank   int  `json:"rank"`
	Cyclic bool `json:"cyclic,omitempty"`
	// Fused marks a process executing inside the compiled backend's fused
	// bytecode program rather than as a Go closure.
	Fused bool `json:"fused,omitempty"`
	// TimeNS is the extrapolated evaluation wall time (1-in-8 sampling,
	// scaled), collected when the simulator's Timing flag is set. Segment
	// time of fused processes is apportioned by op count.
	TimeNS int64 `json:"time_ns,omitempty"`
}

// SCCStat describes one cyclic strongly connected component of the process
// graph — the part of the design where the kernel still iterates to a fixed
// point.
type SCCStat struct {
	Rank  int      `json:"rank"`
	Size  int      `json:"size"`
	Procs []string `json:"procs"`
}

// KernelStats is the kernel profiling surface: per-process evaluation
// counts, the settle-depth histogram, and the SCC inventory of the levelized
// schedule. Collected by (*Simulator).Stats.
type KernelStats struct {
	Cycles    uint64 `json:"cycles"`
	Deltas    uint64 `json:"deltas"`
	Settles   uint64 `json:"settles"`
	Levelized bool   `json:"levelized"`
	// Compiled reports the compiled backend was active; FusedProcs and
	// FusedOps size the fused bytecode program (processes absorbed and
	// total instructions), and CompiledEvals/ClosureEvals split process
	// evaluations by dispatch mechanism.
	Compiled      bool   `json:"compiled,omitempty"`
	FusedProcs    int    `json:"fused_procs,omitempty"`
	FusedOps      int    `json:"fused_ops,omitempty"`
	CompiledEvals uint64 `json:"compiled_evals,omitempty"`
	ClosureEvals  uint64 `json:"closure_evals,omitempty"`
	// Lanes is the lane count under lane-parallel execution (0: scalar).
	// FusedLaneEvals counts lane-equivalent evaluations retired by
	// transposed segments (one segment pass times the active lane count);
	// against ClosureEvals it yields the lane divergence rate — the share of
	// per-lane work that fell back to scalar closures.
	Lanes          int    `json:"lanes,omitempty"`
	FusedLaneEvals uint64 `json:"fused_lane_evals,omitempty"`
	// Ranks is the number of topological ranks (0 when levelization is off).
	Ranks int `json:"ranks,omitempty"`
	// Units counts SCC scheduling units; CyclicSCCs inventories the cyclic
	// ones (empty for a fully acyclic design).
	Units      int       `json:"units,omitempty"`
	CyclicSCCs []SCCStat `json:"cyclic_sccs,omitempty"`
	// SettleDepth is the settle-depth histogram: SettleDepth[i] settles took
	// i deltas (last bucket: that many or more).
	SettleDepth []uint64   `json:"settle_depth,omitempty"`
	Procs       []ProcStat `json:"procs,omitempty"`
}

// Stats snapshots the kernel profile: combinational processes first (in
// registration order), then sequential ones.
func (sm *Simulator) Stats() *KernelStats {
	ks := &KernelStats{
		Cycles:         sm.cycle,
		Deltas:         sm.DeltaCount,
		Settles:        sm.settles,
		Levelized:      sm.units != nil,
		Compiled:       sm.prog != nil,
		CompiledEvals:  sm.compiledEvals,
		ClosureEvals:   sm.closureEvals,
		Lanes:          sm.lanes,
		FusedLaneEvals: sm.fusedLaneEvals,
	}
	// Fused processes never evaluate through eval() after the freeze; their
	// counts and sampled time derive from their segment (time apportioned by
	// op share).
	segEvals := make(map[*process]uint64)
	segTime := make(map[*process]int64)
	if sm.prog != nil {
		ks.FusedProcs = sm.prog.fusedProcs
		ks.FusedOps = sm.prog.fusedOps
		for _, seg := range sm.prog.segs {
			for _, p := range seg.procs {
				segEvals[p] = seg.runs
				segTime[p] = seg.sampleNS * 8 / int64(len(seg.procs))
			}
		}
	}
	if sm.units != nil {
		ks.Ranks = sm.maxRank + 1
		ks.Units = len(sm.units)
		for _, u := range sm.units {
			if !u.cyclic {
				continue
			}
			sc := SCCStat{Rank: u.rank, Size: len(u.procs)}
			for _, p := range u.procs {
				sc.Procs = append(sc.Procs, p.name)
			}
			ks.CyclicSCCs = append(ks.CyclicSCCs, sc)
		}
	}
	hist := sm.settleHist
	last := -1
	for i, v := range hist {
		if v != 0 {
			last = i
		}
	}
	if last >= 0 {
		ks.SettleDepth = append([]uint64(nil), hist[:last+1]...)
	}
	for _, p := range sm.combs {
		st := ProcStat{Name: p.name, Evals: p.evals, Rank: -1, TimeNS: p.sampleNS * 8}
		if sm.units != nil {
			st.Rank, st.Cyclic = p.rank, p.cyclic
		}
		if p.fused {
			st.Fused = true
			st.Evals += segEvals[p]
			st.TimeNS += segTime[p]
		}
		ks.Procs = append(ks.Procs, st)
	}
	for _, p := range sm.seqs {
		if p.laneDup {
			// Covered by its group's transposed program in the lane-0 slot.
			continue
		}
		st := ProcStat{Name: p.name, Seq: true, Evals: p.evals, Rank: -1, TimeNS: p.sampleNS * 8}
		if p.seqCode != nil || p.lseqCode != nil {
			st.Fused = true
		}
		ks.Procs = append(ks.Procs, st)
	}
	return ks
}

// DivergenceRate is the share of per-lane process work that fell back to
// scalar closure execution under lane-parallel execution: closure
// evaluations over closure plus lane-equivalent fused evaluations. Zero when
// no lane work was retired.
func (ks *KernelStats) DivergenceRate() float64 {
	total := ks.ClosureEvals + ks.FusedLaneEvals
	if total == 0 {
		return 0
	}
	return float64(ks.ClosureEvals) / float64(total)
}

// DeltasPerCycle returns the headline convergence metric.
func (ks *KernelStats) DeltasPerCycle() float64 {
	if ks.Cycles == 0 {
		return 0
	}
	return float64(ks.Deltas) / float64(ks.Cycles)
}

// TopProcs returns the n hottest processes. When the profile carries sampled
// wall time (the simulator ran with Timing set) processes rank by time —
// the adoption list for the IR should be measured, not guessed — otherwise
// by evaluation count. Ties break by evals, then name.
func (ks *KernelStats) TopProcs(n int) []ProcStat {
	procs := append([]ProcStat(nil), ks.Procs...)
	timed := false
	for _, p := range procs {
		if p.TimeNS > 0 {
			timed = true
			break
		}
	}
	sort.Slice(procs, func(a, b int) bool {
		if timed && procs[a].TimeNS != procs[b].TimeNS {
			return procs[a].TimeNS > procs[b].TimeNS
		}
		if procs[a].Evals != procs[b].Evals {
			return procs[a].Evals > procs[b].Evals
		}
		return procs[a].Name < procs[b].Name
	})
	if n > 0 && len(procs) > n {
		procs = procs[:n]
	}
	return procs
}

// Merge folds another profile into ks (same design, more runs): counters
// add, schedule shape fields keep the receiver's (or adopt o's when the
// receiver has none).
func (ks *KernelStats) Merge(o *KernelStats) {
	if o == nil {
		return
	}
	ks.Cycles += o.Cycles
	ks.Deltas += o.Deltas
	ks.Settles += o.Settles
	ks.CompiledEvals += o.CompiledEvals
	ks.ClosureEvals += o.ClosureEvals
	ks.FusedLaneEvals += o.FusedLaneEvals
	if ks.Lanes == 0 {
		ks.Lanes = o.Lanes
	}
	if len(ks.Procs) == 0 {
		ks.Levelized = o.Levelized
		ks.Ranks, ks.Units = o.Ranks, o.Units
		ks.CyclicSCCs = o.CyclicSCCs
		ks.Compiled = o.Compiled
		ks.FusedProcs, ks.FusedOps = o.FusedProcs, o.FusedOps
	}
	for len(ks.SettleDepth) < len(o.SettleDepth) {
		ks.SettleDepth = append(ks.SettleDepth, 0)
	}
	for i, v := range o.SettleDepth {
		ks.SettleDepth[i] += v
	}
	byName := make(map[string]int, len(ks.Procs))
	for i := range ks.Procs {
		byName[ks.Procs[i].Name] = i
	}
	for _, p := range o.Procs {
		if i, ok := byName[p.Name]; ok {
			ks.Procs[i].Evals += p.Evals
			ks.Procs[i].TimeNS += p.TimeNS
		} else {
			ks.Procs = append(ks.Procs, p)
		}
	}
}

// Text renders the profile for humans: the summary line, the settle-depth
// histogram, the cyclic-SCC inventory and the top-N processes by
// evaluations.
func (ks *KernelStats) Text(w io.Writer, topN int) {
	mode := "delta-loop"
	if ks.Levelized {
		mode = fmt.Sprintf("levelized (%d ranks, %d units, %d cyclic)", ks.Ranks, ks.Units, len(ks.CyclicSCCs))
	}
	if ks.Compiled {
		mode = fmt.Sprintf("compiled (%d fused procs, %d ops) over %s", ks.FusedProcs, ks.FusedOps, mode)
	}
	fmt.Fprintf(w, "kernel: %d cycles, %d deltas (%.3f deltas/cycle), %d settles, %s\n",
		ks.Cycles, ks.Deltas, ks.DeltasPerCycle(), ks.Settles, mode)
	if ks.CompiledEvals > 0 {
		fmt.Fprintf(w, "evals: %d compiled, %d closure\n", ks.CompiledEvals, ks.ClosureEvals)
	}
	if ks.Lanes > 0 {
		fmt.Fprintf(w, "lanes: %d, %d fused lane evals, divergence %.1f%% (closure share of per-lane work)\n",
			ks.Lanes, ks.FusedLaneEvals, ks.DivergenceRate()*100)
	}
	if len(ks.SettleDepth) > 0 {
		fmt.Fprintf(w, "settle depth:")
		for i, v := range ks.SettleDepth {
			if v == 0 {
				continue
			}
			suffix := ""
			if i == settleHistBuckets-1 {
				suffix = "+"
			}
			fmt.Fprintf(w, " %d%s:%d", i, suffix, v)
		}
		fmt.Fprintln(w)
	}
	for _, sc := range ks.CyclicSCCs {
		fmt.Fprintf(w, "cyclic scc rank %d: %s\n", sc.Rank, strings.Join(sc.Procs, ", "))
	}
	top := ks.TopProcs(topN)
	if len(top) > 0 {
		timed := false
		for _, p := range top {
			if p.TimeNS > 0 {
				timed = true
				break
			}
		}
		metric := "evaluations"
		if timed {
			metric = "sampled wall time"
		}
		fmt.Fprintf(w, "top processes by %s:\n", metric)
		for i, p := range top {
			kind := "comb"
			if p.Seq {
				kind = "seq"
			}
			rank := ""
			if !p.Seq && p.Rank >= 0 {
				rank = fmt.Sprintf("  rank %d", p.Rank)
				if p.Cyclic {
					rank += " (cyclic)"
				}
			}
			if p.Fused {
				rank += "  fused"
			}
			t := ""
			if timed {
				t = fmt.Sprintf("  %8.3fms", float64(p.TimeNS)/1e6)
			}
			fmt.Fprintf(w, "  %2d. %-40s %-4s %10d evals%s%s\n", i+1, p.Name, kind, p.Evals, t, rank)
		}
	}
}
