package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// settleHistBuckets sizes the settle-depth histogram: bucket i counts
// settles that took i deltas, with the last bucket absorbing deeper ones.
const settleHistBuckets = 17

// ProcStat is the profile of one process: how often the kernel evaluated it,
// and where levelization placed it.
type ProcStat struct {
	Name  string `json:"name"`
	Seq   bool   `json:"seq,omitempty"`
	Evals uint64 `json:"evals"`
	// Rank is the levelized rank of the process's SCC (-1 for sequential
	// processes and when levelization is off).
	Rank   int  `json:"rank"`
	Cyclic bool `json:"cyclic,omitempty"`
}

// SCCStat describes one cyclic strongly connected component of the process
// graph — the part of the design where the kernel still iterates to a fixed
// point.
type SCCStat struct {
	Rank  int      `json:"rank"`
	Size  int      `json:"size"`
	Procs []string `json:"procs"`
}

// KernelStats is the kernel profiling surface: per-process evaluation
// counts, the settle-depth histogram, and the SCC inventory of the levelized
// schedule. Collected by (*Simulator).Stats.
type KernelStats struct {
	Cycles    uint64 `json:"cycles"`
	Deltas    uint64 `json:"deltas"`
	Settles   uint64 `json:"settles"`
	Levelized bool   `json:"levelized"`
	// Ranks is the number of topological ranks (0 when levelization is off).
	Ranks int `json:"ranks,omitempty"`
	// Units counts SCC scheduling units; CyclicSCCs inventories the cyclic
	// ones (empty for a fully acyclic design).
	Units      int       `json:"units,omitempty"`
	CyclicSCCs []SCCStat `json:"cyclic_sccs,omitempty"`
	// SettleDepth is the settle-depth histogram: SettleDepth[i] settles took
	// i deltas (last bucket: that many or more).
	SettleDepth []uint64   `json:"settle_depth,omitempty"`
	Procs       []ProcStat `json:"procs,omitempty"`
}

// Stats snapshots the kernel profile: combinational processes first (in
// registration order), then sequential ones.
func (sm *Simulator) Stats() *KernelStats {
	ks := &KernelStats{
		Cycles:    sm.cycle,
		Deltas:    sm.DeltaCount,
		Settles:   sm.settles,
		Levelized: sm.units != nil,
	}
	if sm.units != nil {
		ks.Ranks = sm.maxRank + 1
		ks.Units = len(sm.units)
		for _, u := range sm.units {
			if !u.cyclic {
				continue
			}
			sc := SCCStat{Rank: u.rank, Size: len(u.procs)}
			for _, p := range u.procs {
				sc.Procs = append(sc.Procs, p.name)
			}
			ks.CyclicSCCs = append(ks.CyclicSCCs, sc)
		}
	}
	hist := sm.settleHist
	last := -1
	for i, v := range hist {
		if v != 0 {
			last = i
		}
	}
	if last >= 0 {
		ks.SettleDepth = append([]uint64(nil), hist[:last+1]...)
	}
	for _, p := range sm.combs {
		st := ProcStat{Name: p.name, Evals: p.evals, Rank: -1}
		if sm.units != nil {
			st.Rank, st.Cyclic = p.rank, p.cyclic
		}
		ks.Procs = append(ks.Procs, st)
	}
	for _, p := range sm.seqs {
		ks.Procs = append(ks.Procs, ProcStat{Name: p.name, Seq: true, Evals: p.evals, Rank: -1})
	}
	return ks
}

// DeltasPerCycle returns the headline convergence metric.
func (ks *KernelStats) DeltasPerCycle() float64 {
	if ks.Cycles == 0 {
		return 0
	}
	return float64(ks.Deltas) / float64(ks.Cycles)
}

// TopProcs returns the n most-evaluated processes (ties break by name).
func (ks *KernelStats) TopProcs(n int) []ProcStat {
	procs := append([]ProcStat(nil), ks.Procs...)
	sort.Slice(procs, func(a, b int) bool {
		if procs[a].Evals != procs[b].Evals {
			return procs[a].Evals > procs[b].Evals
		}
		return procs[a].Name < procs[b].Name
	})
	if n > 0 && len(procs) > n {
		procs = procs[:n]
	}
	return procs
}

// Merge folds another profile into ks (same design, more runs): counters
// add, schedule shape fields keep the receiver's (or adopt o's when the
// receiver has none).
func (ks *KernelStats) Merge(o *KernelStats) {
	if o == nil {
		return
	}
	ks.Cycles += o.Cycles
	ks.Deltas += o.Deltas
	ks.Settles += o.Settles
	if len(ks.Procs) == 0 {
		ks.Levelized = o.Levelized
		ks.Ranks, ks.Units = o.Ranks, o.Units
		ks.CyclicSCCs = o.CyclicSCCs
	}
	for len(ks.SettleDepth) < len(o.SettleDepth) {
		ks.SettleDepth = append(ks.SettleDepth, 0)
	}
	for i, v := range o.SettleDepth {
		ks.SettleDepth[i] += v
	}
	byName := make(map[string]int, len(ks.Procs))
	for i := range ks.Procs {
		byName[ks.Procs[i].Name] = i
	}
	for _, p := range o.Procs {
		if i, ok := byName[p.Name]; ok {
			ks.Procs[i].Evals += p.Evals
		} else {
			ks.Procs = append(ks.Procs, p)
		}
	}
}

// Text renders the profile for humans: the summary line, the settle-depth
// histogram, the cyclic-SCC inventory and the top-N processes by
// evaluations.
func (ks *KernelStats) Text(w io.Writer, topN int) {
	mode := "delta-loop"
	if ks.Levelized {
		mode = fmt.Sprintf("levelized (%d ranks, %d units, %d cyclic)", ks.Ranks, ks.Units, len(ks.CyclicSCCs))
	}
	fmt.Fprintf(w, "kernel: %d cycles, %d deltas (%.3f deltas/cycle), %d settles, %s\n",
		ks.Cycles, ks.Deltas, ks.DeltasPerCycle(), ks.Settles, mode)
	if len(ks.SettleDepth) > 0 {
		fmt.Fprintf(w, "settle depth:")
		for i, v := range ks.SettleDepth {
			if v == 0 {
				continue
			}
			suffix := ""
			if i == settleHistBuckets-1 {
				suffix = "+"
			}
			fmt.Fprintf(w, " %d%s:%d", i, suffix, v)
		}
		fmt.Fprintln(w)
	}
	for _, sc := range ks.CyclicSCCs {
		fmt.Fprintf(w, "cyclic scc rank %d: %s\n", sc.Rank, strings.Join(sc.Procs, ", "))
	}
	top := ks.TopProcs(topN)
	if len(top) > 0 {
		fmt.Fprintf(w, "top processes by evaluations:\n")
		for i, p := range top {
			kind := "comb"
			if p.Seq {
				kind = "seq"
			}
			rank := ""
			if !p.Seq && p.Rank >= 0 {
				rank = fmt.Sprintf("  rank %d", p.Rank)
				if p.Cyclic {
					rank += " (cyclic)"
				}
			}
			fmt.Fprintf(w, "  %2d. %-40s %-4s %10d evals%s\n", i+1, p.Name, kind, p.Evals, rank)
		}
	}
}
