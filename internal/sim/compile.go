// The compiled execution tier: at the elaboration freeze, after Tarjan
// ranking, every IR-declared acyclic combinational process is fused into one
// flat bytecode program over preresolved dense signal slots — no maps, no
// interface calls, no per-process closure dispatch — executed by a
// threaded-switch interpreter. The program is cut into segments wherever a
// closure process or a cyclic SCC interrupts the rank order, and the settle
// sweep interleaves segments with the PR 5 levelized units, preserving the
// exact dataflow order of the ranked schedule.
//
// Correctness argument: fused processes are acyclic pure functions of their
// declared reads, so the combinational fixed point restricted to them is
// unique and re-running a segment is idempotent on unchanged inputs. The
// settle sweep runs a segment only when a slot some member reads changed
// since its last run (the segment's dirty bit, set by the same wake path
// that queues closure processes); a clean segment would store exactly the
// values its outputs already hold, so skipping it cannot change the fixed
// point. The result is byte-identical waveforms, coverage and alignment with
// the levelized scheduler — the property TestLevelizedKernelEquivalence
// asserts across the standard matrix.

package sim

import "fmt"

// Kernel selects the combinational settling backend of a Simulator. It must
// be chosen before the first Step; ForceDeltaLoop overrides it.
type Kernel uint8

const (
	// KernelLevelized is the default backend: the PR 5 levelized scheduler
	// (one ranked sweep over the SCC condensation, closures throughout).
	KernelLevelized Kernel = iota
	// KernelCompiled layers the compiled tier on the levelized schedule:
	// IR-declared acyclic processes fuse into the flat bytecode program,
	// everything else keeps the levelized path, interleaved by rank.
	KernelCompiled
)

func (k Kernel) String() string {
	if k == KernelCompiled {
		return "compiled"
	}
	return "levelized"
}

// ParseKernel parses a backend name as accepted by -kernel flags. The empty
// string selects the default levelized backend.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "levelized":
		return KernelLevelized, nil
	case "compiled":
		return KernelCompiled, nil
	default:
		return KernelLevelized, fmt.Errorf("sim: unknown kernel %q (want levelized or compiled)", s)
	}
}

// kop enumerates the bytecode operations. Operands index the program's
// dense register file (regs), constant pool (consts) or signal slot table
// (sigs).
type kop uint8

const (
	kLoad      kop = iota // regs[dst] = sigs[a].cur
	kConst                // regs[dst] = consts[a]
	kAnd                  // regs[dst] = regs[a] & regs[b]
	kOr                   // regs[dst] = regs[a] | regs[b]
	kXor                  // regs[dst] = regs[a] ^ regs[b]
	kNot                  // regs[dst] = ^regs[a] masked to w
	kField                // regs[dst] = regs[a].Field(lo, w)
	kWithField            // regs[dst] = regs[a].WithField(lo, w, regs[b])
	kMux                  // regs[dst] = regs[a] != 0 ? regs[b] : regs[c]
	kEq                   // regs[dst] = regs[a] == regs[b]
	kLt                   // regs[dst] = regs[a] < regs[b] (unsigned)
	kAdd                  // regs[dst] = (regs[a] + regs[b]) masked to w
	kStore                // comb store: sigs[a] <- regs[b], immediate commit
	kCopy                 // comb copy: sigs[a] <- sigs[b].cur, immediate commit
	kStoreSeq             // seq store: sigs[a].Set(regs[b]) (delta semantics)
)

// kinstr is one bytecode instruction. Register and slot indices are dense
// 16-bit values resolved at compile time; a process whose translation would
// overflow them falls back to its closure.
type kinstr struct {
	op      kop
	dst     uint16
	a, b, c uint16
	lo, w   uint16
}

// progSeg is a maximal run of fused processes contiguous in the ranked unit
// order. The settle sweep executes segments in place of their members.
type progSeg struct {
	code  []kinstr
	procs []*process
	// entIdx is the segment's position in the schedule, used to detect
	// undeclared late writes that feed an already-executed segment.
	entIdx int
	// dirty marks that a slot some member reads changed since the segment
	// last ran; the sweep skips clean segments. Because fused processes are
	// pure functions of their declared reads, a clean segment would store
	// exactly the values its outputs already hold.
	dirty bool
	// runs counts executions; member processes inherit it as their
	// evaluation count. sampleNS accumulates 1-in-8 sampled wall time.
	runs     uint64
	sampleNS int64

	// lcode is the transposed bytecode of a lane-mode segment (nil under
	// scalar execution); procs then holds every lane's members while lprocs0
	// counts the lane-0 members, the per-pass machine-eval unit.
	lcode   []linstr
	lprocs0 int
}

// schedEnt is one entry of the compiled settle schedule: either a fused
// segment or a levelized SCC unit.
type schedEnt struct {
	seg  *progSeg
	unit *sccUnit
}

// program is the compiled form of the process graph: the fused combinational
// segments, the interleaved schedule, and the per-process programs of
// IR-declared sequential processes.
type program struct {
	consts []Bits
	sigs   []*Signal
	regs   []Bits
	segs   []*progSeg
	sched  []schedEnt

	// laneArena/laneConsts back the transposed interpreter in lane mode: the
	// shared plane scratch arena and the broadcast constant-plane pool.
	laneArena  []uint64
	laneConsts []uint64

	fusedProcs int
	fusedOps   int
}

// compiler translates Expr trees of one process at a time into bytecode,
// interning constants and signal slots program-wide and reusing the register
// file across processes (segments run sequentially).
type compiler struct {
	pr       *program
	constIdx map[Bits]uint16
	sigIdx   map[*Signal]uint16

	// per-process state
	nreg    int
	maxReg  int
	loadReg map[*Signal]uint16
	code    []kinstr
	ok      bool
}

func newCompiler(pr *program) *compiler {
	return &compiler{
		pr:       pr,
		constIdx: make(map[Bits]uint16),
		sigIdx:   make(map[*Signal]uint16),
	}
}

const kMaxIdx = 1<<16 - 1

func (c *compiler) reg() uint16 {
	if c.nreg >= kMaxIdx {
		c.ok = false
		return 0
	}
	r := uint16(c.nreg)
	c.nreg++
	if c.nreg > c.maxReg {
		c.maxReg = c.nreg
	}
	return r
}

func (c *compiler) slot(s *Signal) uint16 {
	if i, hit := c.sigIdx[s]; hit {
		return i
	}
	if len(c.pr.sigs) >= kMaxIdx {
		c.ok = false
		return 0
	}
	i := uint16(len(c.pr.sigs))
	c.pr.sigs = append(c.pr.sigs, s)
	c.sigIdx[s] = i
	return i
}

func (c *compiler) constant(v Bits) uint16 {
	if i, hit := c.constIdx[v]; hit {
		return i
	}
	if len(c.pr.consts) >= kMaxIdx {
		c.ok = false
		return 0
	}
	i := uint16(len(c.pr.consts))
	c.pr.consts = append(c.pr.consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) emit(in kinstr) { c.code = append(c.code, in) }

// expr translates e and returns the register holding its value.
func (c *compiler) expr(e *Expr) uint16 {
	if !c.ok {
		return 0
	}
	switch e.op {
	case exRead:
		if r, hit := c.loadReg[e.sig]; hit {
			return r
		}
		r := c.reg()
		c.emit(kinstr{op: kLoad, dst: r, a: c.slot(e.sig)})
		c.loadReg[e.sig] = r
		return r
	case exConst:
		r := c.reg()
		c.emit(kinstr{op: kConst, dst: r, a: c.constant(e.k)})
		return r
	case exAnd, exOr, exXor, exEq, exLt, exAdd:
		a, b := c.expr(e.a), c.expr(e.b)
		r := c.reg()
		var op kop
		switch e.op {
		case exAnd:
			op = kAnd
		case exOr:
			op = kOr
		case exXor:
			op = kXor
		case exEq:
			op = kEq
		case exLt:
			op = kLt
		case exAdd:
			op = kAdd
		}
		c.emit(kinstr{op: op, dst: r, a: a, b: b, w: uint16(e.w)})
		return r
	case exNot:
		a := c.expr(e.a)
		r := c.reg()
		c.emit(kinstr{op: kNot, dst: r, a: a, w: uint16(e.w)})
		return r
	case exField:
		a := c.expr(e.a)
		r := c.reg()
		c.emit(kinstr{op: kField, dst: r, a: a, lo: uint16(e.lo), w: uint16(e.w)})
		return r
	case exWithField:
		a, b := c.expr(e.a), c.expr(e.b)
		r := c.reg()
		c.emit(kinstr{op: kWithField, dst: r, a: a, b: b, lo: uint16(e.lo), w: uint16(e.b.w)})
		return r
	case exMux:
		s, t, f := c.expr(e.a), c.expr(e.b), c.expr(e.c)
		r := c.reg()
		c.emit(kinstr{op: kMux, dst: r, a: s, b: t, c: f})
		return r
	default:
		panic(fmt.Sprintf("sim: bad expr op %d", e.op))
	}
}

// proc translates one IR-declared process, returning its code and whether
// the translation fit the bytecode's index space. seq selects delta-
// semantics stores.
func (c *compiler) proc(p *process, seq bool) ([]kinstr, bool) {
	c.nreg = 0
	c.loadReg = make(map[*Signal]uint16)
	c.code = nil
	c.ok = true
	for _, a := range p.ir {
		if !seq && a.Src.op == exRead {
			// Peephole: a pure slot-to-slot copy (the stbus.Bind shape)
			// needs no register round trip.
			c.emit(kinstr{op: kCopy, a: c.slot(a.Dst), b: c.slot(a.Src.sig)})
			continue
		}
		r := c.expr(a.Src)
		op := kStore
		if seq {
			op = kStoreSeq
		}
		c.emit(kinstr{op: op, a: c.slot(a.Dst), b: r})
	}
	if !c.ok {
		return nil, false
	}
	return c.code, true
}

// buildProgram compiles the frozen, levelized process graph into the fused
// program and the interleaved schedule. Only acyclic IR-declared processes
// fuse; cyclic SCCs and closure processes keep their levelized units, in
// rank order. Queued wakes of fused processes fold into their segment's
// dirty bit (segments start dirty, covering the time-zero evaluation).
func (sm *Simulator) buildProgram() {
	if sm.lanes > 0 {
		sm.buildLaneProgram()
		return
	}
	pr := &program{}
	c := newCompiler(pr)
	var cur *progSeg
	flush := func() {
		if cur != nil {
			pr.segs = append(pr.segs, cur)
			cur = nil
		}
	}
	for _, u := range sm.units {
		var code []kinstr
		ok := false
		if !u.cyclic && len(u.procs) == 1 && u.procs[0].ir != nil {
			code, ok = c.proc(u.procs[0], false)
		}
		if !ok {
			flush()
			pr.sched = append(pr.sched, schedEnt{unit: u})
			continue
		}
		p := u.procs[0]
		if cur == nil {
			cur = &progSeg{entIdx: len(pr.sched), dirty: true}
			pr.sched = append(pr.sched, schedEnt{seg: cur})
		}
		cur.code = append(cur.code, code...)
		cur.procs = append(cur.procs, p)
		p.fused = true
		p.seg = cur
		p.segEnt = cur.entIdx
		pr.fusedProcs++
		pr.fusedOps += len(code)
		// The segment supersedes any queued wake of the process.
		if p.inQ {
			p.inQ = false
			sm.units[p.unit].queued--
			sm.totalQueued--
		}
	}
	flush()
	// IR-declared sequential processes compile to per-process programs run
	// in their registration slot of the sequential phase.
	for _, p := range sm.seqs {
		if p.ir == nil {
			continue
		}
		if code, ok := c.proc(p, true); ok {
			p.seqCode = code
			pr.fusedProcs++
			pr.fusedOps += len(code)
		}
	}
	pr.regs = make([]Bits, c.maxReg)
	sm.prog = pr
}

// dropProgram discards the compiled schedule at unfreeze, returning fused
// processes to closure dispatch. Their evaluation counts absorb the segment
// runs so the profile stays monotonic across re-elaborations.
func (sm *Simulator) dropProgram() {
	if sm.prog == nil {
		return
	}
	for _, seg := range sm.prog.segs {
		for _, p := range seg.procs {
			p.fused = false
			p.seg = nil
			p.evals += seg.runs
		}
	}
	for _, p := range sm.seqs {
		if p.lseqCode != nil {
			// Lane duplicates ran through the lane-0 slot; reconcile their
			// per-process counts before returning everyone to closures.
			for _, q := range p.laneSibs {
				q.evals = p.evals
				q.laneDup = false
			}
			p.laneSibs = nil
			p.lseqCode = nil
		}
		p.seqCode = nil
	}
	sm.prog = nil
}

// exec interprets code against the program's register file and slot tables.
// It is the threaded-switch inner loop of the compiled tier: local slice
// headers hoist the bounds checks, and every operand access is a dense
// index — no maps, no interface calls, no closure dispatch.
func (sm *Simulator) exec(code []kinstr) {
	pr := sm.prog
	regs := pr.regs
	sigs := pr.sigs
	consts := pr.consts
	for i := range code {
		in := &code[i]
		switch in.op {
		case kLoad:
			regs[in.dst] = sigs[in.a].cur
		case kConst:
			regs[in.dst] = consts[in.a]
		case kAnd:
			regs[in.dst] = regs[in.a].And(regs[in.b])
		case kOr:
			regs[in.dst] = regs[in.a].Or(regs[in.b])
		case kXor:
			regs[in.dst] = regs[in.a].Xor(regs[in.b])
		case kNot:
			regs[in.dst] = regs[in.a].Not(int(in.w))
		case kField:
			regs[in.dst] = regs[in.a].Field(int(in.lo), int(in.w))
		case kWithField:
			regs[in.dst] = regs[in.a].WithField(int(in.lo), int(in.w), regs[in.b])
		case kMux:
			if regs[in.a].Bool() {
				regs[in.dst] = regs[in.b]
			} else {
				regs[in.dst] = regs[in.c]
			}
		case kEq:
			regs[in.dst] = BBool(regs[in.a].Equal(regs[in.b]))
		case kLt:
			regs[in.dst] = BBool(regs[in.a].Ult(regs[in.b]))
		case kAdd:
			regs[in.dst] = regs[in.a].Add(regs[in.b]).Mask(int(in.w))
		case kStore:
			sm.storeComb(sigs[in.a], regs[in.b])
		case kCopy:
			sm.storeComb(sigs[in.a], sigs[in.b].cur)
		case kStoreSeq:
			sigs[in.a].Set(regs[in.b])
		}
	}
}

// storeComb commits v to s immediately — the compiled equivalent of a
// combinational Set followed by its commit. The value is masked to the
// signal width; an unchanged value is a no-op; a change wakes the processes
// sensitive to s (queueing closures, dirtying fused readers' segments; a
// fused reader whose segment already executed this sweep — an undeclared
// back edge — additionally flags a mop-up pass).
func (sm *Simulator) storeComb(s *Signal, v Bits) {
	m := s.mask
	v.v[0] &= m.v[0]
	v.v[1] &= m.v[1]
	v.v[2] &= m.v[2]
	v.v[3] &= m.v[3]
	if v.Equal(s.cur) {
		return
	}
	s.cur = v
	for _, p := range s.sensitive {
		sm.wake(p)
	}
}

// runSeg executes one fused segment of the settle sweep.
func (sm *Simulator) runSeg(seg *progSeg) {
	if seg.lcode != nil {
		sm.runLaneSeg(seg)
		return
	}
	if sm.Timing && seg.runs&7 == 0 {
		t0 := nowNS()
		sm.exec(seg.code)
		seg.sampleNS += nowNS() - t0
	} else {
		sm.exec(seg.code)
	}
	seg.runs++
	sm.compiledEvals += uint64(len(seg.procs))
}

// runSeqProg executes the compiled form of an IR-declared sequential
// process in its registration slot.
func (sm *Simulator) runSeqProg(p *process) {
	p.evals++
	sm.compiledEvals++
	if sm.Timing && p.evals&7 == 1 {
		t0 := nowNS()
		sm.exec(p.seqCode)
		p.sampleNS += nowNS() - t0
		return
	}
	sm.exec(p.seqCode)
}

// settleCompiled settles one cycle under the compiled backend: commit the
// sequential phase's writes, then walk the interleaved schedule — dirty
// fused segments execute, levelized units exactly as in settleLevelized.
// The sweep repeats as a mop-up pass while closure wakes remain or an
// undeclared write fed an already-executed segment.
func (sm *Simulator) settleCompiled() error {
	sm.commit()
	deltas := uint64(1)
	for pass := 0; ; pass++ {
		if pass > sm.MaxDeltas {
			sm.DeltaCount += deltas
			return fmt.Errorf("%w after %d mop-up passes at cycle %d", ErrOscillation, pass, sm.cycle)
		}
		sm.fusedStale = false
		for ei, ent := range sm.prog.sched {
			if ent.seg != nil {
				sm.sweepPos = ei
				if ent.seg.dirty {
					ent.seg.dirty = false
					sm.runSeg(ent.seg)
				}
				continue
			}
			sm.sweepPos = ei
			u := ent.unit
			if u.queued == 0 {
				continue
			}
			if !u.cyclic {
				p := u.procs[0]
				p.inQ = false
				u.queued--
				sm.totalQueued--
				sm.eval(p)
				sm.commit()
				continue
			}
			for iter := 0; u.queued > 0; iter++ {
				if iter > sm.MaxDeltas {
					sm.DeltaCount += deltas
					return fmt.Errorf("%w after %d deltas in cyclic component %q at cycle %d",
						ErrOscillation, iter, u.procs[0].name, sm.cycle)
				}
				for _, p := range u.procs {
					if p.inQ {
						p.inQ = false
						u.queued--
						sm.totalQueued--
						sm.eval(p)
					}
				}
				sm.commit()
				if iter > 0 {
					deltas++
				}
			}
		}
		sm.sweepPos = -1
		if sm.totalQueued == 0 && !sm.fusedStale {
			break
		}
		deltas++ // mop-up pass for an undeclared back-edge
	}
	sm.DeltaCount += deltas
	return nil
}
