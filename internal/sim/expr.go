// The dataflow IR of the compiled execution tier.
//
// A process whose logic is a pure function of its input signals — no Go-side
// state, no control flow beyond muxing — can describe that function as an
// Expr tree instead of a closure. IR-declared processes still work under
// every backend: the levelized scheduler and the legacy delta loop evaluate
// them through a reference interpreter (Eval) that reads signals exactly like
// handwritten process code would, while the compiled backend (compile.go)
// fuses them into one flat bytecode program over preresolved signal slots at
// the elaboration freeze.
//
// Width discipline: every Expr node has a fixed result width, and every value
// flowing out of a node is masked to that width. The bytecode interpreter and
// the reference evaluator share these rules, which is what FuzzExprEval
// cross-checks.

package sim

import "fmt"

// exprOp enumerates the IR node kinds.
type exprOp uint8

const (
	exRead exprOp = iota
	exConst
	exAnd
	exOr
	exXor
	exNot
	exField
	exWithField
	exMux
	exEq
	exLt
	exAdd
)

// Expr is one node of the dataflow IR: a slot read, a constant, or a
// combinational operator over subexpressions. Expr trees are built once at
// elaboration and registered with CombExpr/SeqExpr; they are immutable
// afterwards.
type Expr struct {
	op      exprOp
	a, b, c *Expr
	sig     *Signal
	k       Bits
	// lo is the field offset of exField/exWithField nodes.
	lo int
	// w is the result width of the node in bits; every value produced by the
	// node is masked to w.
	w int
}

// Width returns the result width of the expression in bits.
func (e *Expr) Width() int { return e.w }

// Read returns an expression reading signal s. The result width is the
// signal width.
func Read(s *Signal) *Expr {
	if s == nil {
		panic("sim: Read of nil signal")
	}
	return &Expr{op: exRead, sig: s, w: s.width}
}

// Const returns a w-bit constant expression holding v masked to w.
func Const(v Bits, w int) *Expr {
	if w <= 0 || w > MaxBitsWidth {
		panic(fmt.Sprintf("sim: const width %d out of range 1..%d", w, MaxBitsWidth))
	}
	return &Expr{op: exConst, k: v.Mask(w), w: w}
}

// ConstU64 returns a w-bit constant expression from a 64-bit value.
func ConstU64(v uint64, w int) *Expr { return Const(B64(v), w) }

// ConstBool returns a 1-bit constant expression.
func ConstBool(v bool) *Expr { return Const(BBool(v), 1) }

func maxw(a, b *Expr) int {
	if a.w >= b.w {
		return a.w
	}
	return b.w
}

// And returns the bitwise and of e and o (width: the wider operand).
func (e *Expr) And(o *Expr) *Expr { return &Expr{op: exAnd, a: e, b: o, w: maxw(e, o)} }

// Or returns the bitwise or of e and o (width: the wider operand).
func (e *Expr) Or(o *Expr) *Expr { return &Expr{op: exOr, a: e, b: o, w: maxw(e, o)} }

// Xor returns the bitwise exclusive-or of e and o (width: the wider operand).
func (e *Expr) Xor(o *Expr) *Expr { return &Expr{op: exXor, a: e, b: o, w: maxw(e, o)} }

// Not returns the bitwise complement of e within its own width.
func (e *Expr) Not() *Expr { return &Expr{op: exNot, a: e, w: e.w} }

// Field extracts w bits of e starting at bit lo.
func (e *Expr) Field(lo, w int) *Expr {
	if lo < 0 || w < 0 || lo+w > MaxBitsWidth {
		panic(fmt.Sprintf("sim: expr field [%d +%d] out of range", lo, w))
	}
	return &Expr{op: exField, a: e, lo: lo, w: w}
}

// WithField returns e with w bits starting at lo replaced by the low w bits
// of val. The field must lie inside e's width.
func (e *Expr) WithField(lo, w int, val *Expr) *Expr {
	if lo < 0 || w < 0 || lo+w > e.w {
		panic(fmt.Sprintf("sim: expr with-field [%d +%d] outside width %d", lo, w, e.w))
	}
	if val.w != w {
		// Normalize the value to exactly the field width: evaluation inserts
		// e.b.w bits, so a wider value must truncate and a narrower one must
		// zero-extend over the whole field.
		val = &Expr{op: exField, a: val, w: w}
	}
	return &Expr{op: exWithField, a: e, b: val, lo: lo, w: e.w}
}

// Mux returns then when e is non-zero, els otherwise (width: the wider of
// the two arms).
func (e *Expr) Mux(then, els *Expr) *Expr {
	return &Expr{op: exMux, a: e, b: then, c: els, w: maxw(then, els)}
}

// Eq returns a 1-bit expression reporting equality of e and o.
func (e *Expr) Eq(o *Expr) *Expr { return &Expr{op: exEq, a: e, b: o, w: 1} }

// Lt returns a 1-bit expression reporting e < o as unsigned integers.
func (e *Expr) Lt(o *Expr) *Expr { return &Expr{op: exLt, a: e, b: o, w: 1} }

// Add returns the sum of e and o. The result width is one bit wider than the
// wider operand (the carry out), capped at the vector capacity.
func (e *Expr) Add(o *Expr) *Expr {
	w := maxw(e, o) + 1
	if w > MaxBitsWidth {
		w = MaxBitsWidth
	}
	return &Expr{op: exAdd, a: e, b: o, w: w}
}

// Eval evaluates the expression against the current committed signal values,
// reading through Signal.Get so strict-sensitivity checking applies. This is
// the reference interpreter: the levelized and delta-loop backends run
// IR-declared processes through it, and the fuzz harness cross-checks the
// bytecode interpreter against it.
func (e *Expr) Eval() Bits {
	switch e.op {
	case exRead:
		return e.sig.Get()
	case exConst:
		return e.k
	case exAnd:
		return e.a.Eval().And(e.b.Eval())
	case exOr:
		return e.a.Eval().Or(e.b.Eval())
	case exXor:
		return e.a.Eval().Xor(e.b.Eval())
	case exNot:
		return e.a.Eval().Not(e.w)
	case exField:
		return e.a.Eval().Field(e.lo, e.w)
	case exWithField:
		return e.a.Eval().WithField(e.lo, e.b.w, e.b.Eval())
	case exMux:
		if e.a.Eval().Bool() {
			return e.b.Eval()
		}
		return e.c.Eval()
	case exEq:
		return BBool(e.a.Eval().Equal(e.b.Eval()))
	case exLt:
		return BBool(e.a.Eval().Ult(e.b.Eval()))
	case exAdd:
		return e.a.Eval().Add(e.b.Eval()).Mask(e.w)
	default:
		panic(fmt.Sprintf("sim: bad expr op %d", e.op))
	}
}

// reads appends every distinct signal the expression reads, in first-
// appearance order, to dst (using seen for dedup) and returns dst.
func (e *Expr) reads(dst []*Signal, seen map[*Signal]bool) []*Signal {
	if e == nil {
		return dst
	}
	if e.op == exRead {
		if !seen[e.sig] {
			seen[e.sig] = true
			dst = append(dst, e.sig)
		}
		return dst
	}
	if e.a != nil {
		dst = e.a.reads(dst, seen)
	}
	if e.b != nil {
		dst = e.b.reads(dst, seen)
	}
	if e.c != nil {
		dst = e.c.reads(dst, seen)
	}
	return dst
}

// Assign binds a destination signal to the expression driving it.
type Assign struct {
	Dst *Signal
	Src *Expr
}

// irSens derives the deduplicated input-signal list of a set of assignments
// in first-appearance order — the exact sensitivity list of the process.
func irSens(assigns []Assign) []*Signal {
	seen := make(map[*Signal]bool)
	var sens []*Signal
	for _, a := range assigns {
		sens = a.Src.reads(sens, seen)
	}
	return sens
}

// irFallback builds the closure the non-compiled backends run for an
// IR-declared process: evaluate each assignment through the reference
// interpreter and schedule the writes like handwritten process code.
func irFallback(assigns []Assign) func() {
	return func() {
		for _, a := range assigns {
			a.Dst.Set(a.Src.Eval())
		}
	}
}

func (sm *Simulator) checkAssigns(name string, assigns []Assign) {
	if len(assigns) == 0 {
		panic(fmt.Sprintf("sim: process %q declares no assignments", name))
	}
	for _, a := range assigns {
		if a.Dst == nil || a.Src == nil {
			panic(fmt.Sprintf("sim: process %q has a nil assignment", name))
		}
		if a.Dst.sim != sm {
			panic(fmt.Sprintf("sim: process %q assigns foreign signal %q", name, a.Dst.name))
		}
	}
}

// CombExpr registers a combinational process described entirely by the IR:
// each assignment drives its destination with its expression. Sensitivity
// (the signals the expressions read) and outputs are derived exactly, so the
// levelized scheduler ranks the process with no learning fallback — and the
// compiled backend fuses it into the flat bytecode program at the
// elaboration freeze.
func (sm *Simulator) CombExpr(name string, assigns ...Assign) {
	sm.checkAssigns(name, assigns)
	sens := irSens(assigns)
	for _, s := range sens {
		if s.sim != sm {
			panic(fmt.Sprintf("sim: process %q reads foreign signal %q", name, s.name))
		}
	}
	outs := make([]*Signal, 0, len(assigns))
	for _, a := range assigns {
		outs = append(outs, a.Dst)
	}
	sm.addComb(name, irFallback(assigns), outs, true, sens)
	sm.combs[len(sm.combs)-1].ir = assigns
}

// SeqExpr registers a sequential process described by the IR: once per cycle
// each assignment schedules its expression's value onto its destination,
// observing the values settled at the end of the previous cycle. Under the
// compiled backend the process executes as a small bytecode program instead
// of the reference interpreter.
func (sm *Simulator) SeqExpr(name string, assigns ...Assign) {
	sm.checkAssigns(name, assigns)
	sm.Seq(name, irFallback(assigns))
	sm.seqs[len(sm.seqs)-1].ir = assigns
}

// CombExpr registers an IR-declared combinational process named under this
// scope.
func (sc Scope) CombExpr(name string, assigns ...Assign) {
	sc.sim.CombExpr(sc.join(name), assigns...)
}

// SeqExpr registers an IR-declared sequential process named under this scope.
func (sc Scope) SeqExpr(name string, assigns ...Assign) {
	sc.sim.SeqExpr(sc.join(name), assigns...)
}
