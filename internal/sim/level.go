// Static levelization of the combinational process graph.
//
// The graph has one node per combinational process and an edge P→Q whenever
// P drives a signal Q is sensitive to (sensitivity = inputs, driven signals
// = outputs). The graph is condensed into strongly connected components
// with Tarjan's algorithm, and the condensation — a DAG by construction —
// is ranked by longest path from the sources. settle() then evaluates the
// units in topological order: acyclic logic settles in a single ordered
// sweep, one delta regardless of combinational depth, while the bounded
// iterate-to-fixpoint loop survives only *inside* cyclic components (e.g.
// cross-coupled arbitration grant trees). Determinism is preserved: the
// unit order is a pure function of the registered processes (ties within a
// rank break by registration order), and members of a cyclic component
// evaluate in registration order each iteration.

package sim

import (
	"fmt"
	"sort"
)

// buildLevels computes the SCC condensation and rank order of the
// combinational process graph. Called once, at the Step-time elaboration
// freeze, after the time-zero settle has learned the outputs of legacy Comb
// processes.
func (sm *Simulator) buildLevels() {
	n := len(sm.combs)
	for i, p := range sm.combs {
		p.id = i
	}
	// Adjacency: p -> q when p drives a signal q is sensitive to.
	adj := make([][]int, n)
	for i, p := range sm.combs {
		for _, s := range p.outs {
			for _, q := range s.sensitive {
				adj[i] = append(adj[i], q.id)
			}
		}
	}

	comp, comps := tarjanSCC(n, adj)

	// Tarjan emits a component only after every component reachable from it,
	// so reversing the emission order yields a topological order (sources
	// first). Rank by longest path over the condensation in that order.
	nc := len(comps)
	rank := make([]int, nc)
	cyclic := make([]bool, nc)
	for ci := range comps {
		if len(comps[ci]) > 1 {
			cyclic[ci] = true
		}
	}
	for ti := nc - 1; ti >= 0; ti-- {
		ci := ti
		for _, v := range comps[ci] {
			for _, w := range adj[v] {
				cw := comp[w]
				if cw == ci {
					cyclic[ci] = true // self-loop or intra-component edge
					continue
				}
				if rank[ci]+1 > rank[cw] {
					rank[cw] = rank[ci] + 1
				}
			}
		}
	}
	// Iterate components in reverse emission order (topological), which the
	// sort below only refines within equal ranks.
	units := make([]*sccUnit, 0, nc)
	sm.maxRank = 0
	for ti := nc - 1; ti >= 0; ti-- {
		members := comps[ti]
		sort.Ints(members)
		u := &sccUnit{rank: rank[ti], cyclic: cyclic[ti]}
		for _, v := range members {
			u.procs = append(u.procs, sm.combs[v])
		}
		units = append(units, u)
		if rank[ti] > sm.maxRank {
			sm.maxRank = rank[ti]
		}
	}
	// Deterministic schedule: by rank, then by first (registration-order)
	// member. Edges only go from lower to strictly higher ranks, so sorting
	// by rank preserves topological order.
	sort.SliceStable(units, func(a, b int) bool {
		if units[a].rank != units[b].rank {
			return units[a].rank < units[b].rank
		}
		return units[a].procs[0].id < units[b].procs[0].id
	})
	for ui, u := range units {
		for _, p := range u.procs {
			p.unit = ui
			p.rank = u.rank
			p.cyclic = u.cyclic
		}
	}
	// Re-home any processes already woken (e.g. a signal poked between
	// cycles commits at the next settle; process wakes queued before the
	// freeze live on runQ).
	sm.units = units
	sm.totalQueued = 0
	q := sm.runQ
	sm.runQ = sm.runQ[:0]
	for _, p := range q {
		if p.inQ {
			p.inQ = false
			sm.wake(p)
		}
	}
}

// tarjanSCC runs an iterative Tarjan over n nodes with adjacency adj,
// returning the component index of every node and the member lists in
// emission order (reverse topological).
func tarjanSCC(n int, adj [][]int) (comp []int, comps [][]int) {
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n) // 0 = unvisited, else discovery index + 1
	low := make([]int, n)
	onStack := make([]bool, n)
	var stack []int
	next := 0

	type frame struct{ v, ei int }
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		next++
		index[root], low[root] = next, next
		stack = append(stack, root)
		onStack[root] = true
		frames = append(frames[:0], frame{root, 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == 0 {
					next++
					index[w], low[w] = next, next
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if pv := frames[len(frames)-1].v; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(comps)
					members = append(members, w)
					if w == v {
						break
					}
				}
				comps = append(comps, members)
			}
		}
	}
	return comp, comps
}

// settleLevelized settles one cycle with the levelized schedule: commit the
// sequential phase's writes, then sweep the SCC units in topological order.
// An acyclic unit evaluates exactly once; a cyclic unit iterates its members
// (registration order) to a local fixed point, bounded by MaxDeltas. A
// write that feeds an already-swept rank — possible only when a process
// drives a signal it neither declared nor wrote at time zero — leaves its
// reader woken, and the sweep repeats as a mop-up pass, preserving
// correctness at the price of extra deltas.
func (sm *Simulator) settleLevelized() error {
	sm.commit()
	deltas := uint64(1)
	for pass := 0; ; pass++ {
		if pass > sm.MaxDeltas {
			sm.DeltaCount += deltas
			return fmt.Errorf("%w after %d mop-up passes at cycle %d", ErrOscillation, pass, sm.cycle)
		}
		for _, u := range sm.units {
			if u.queued == 0 {
				continue
			}
			if !u.cyclic {
				p := u.procs[0]
				p.inQ = false
				u.queued--
				sm.totalQueued--
				sm.eval(p)
				sm.commit()
				continue
			}
			for iter := 0; u.queued > 0; iter++ {
				if iter > sm.MaxDeltas {
					sm.DeltaCount += deltas
					return fmt.Errorf("%w after %d deltas in cyclic component %q at cycle %d",
						ErrOscillation, iter, u.procs[0].name, sm.cycle)
				}
				for _, p := range u.procs {
					if p.inQ {
						p.inQ = false
						u.queued--
						sm.totalQueued--
						sm.eval(p)
					}
				}
				sm.commit()
				if iter > 0 {
					deltas++
				}
			}
		}
		if sm.totalQueued == 0 {
			break
		}
		deltas++ // mop-up pass for an undeclared back-edge
	}
	sm.DeltaCount += deltas
	return nil
}
