package sim

import (
	"testing"
)

// buildExprChain wires a depth-n IR chain s[i+1] = s[i] + 1 with a Seq
// driver incrementing s[0] — the IR twin of buildChain.
func buildExprChain(sm *Simulator, depth int) []*Signal {
	sigs := make([]*Signal, depth+1)
	for i := range sigs {
		sigs[i] = sm.Signal("s", 16)
	}
	for i := 0; i < depth; i++ {
		sm.CombExpr("chain", Assign{Dst: sigs[i+1], Src: Read(sigs[i]).Add(ConstU64(1, 16))})
	}
	sm.SeqExpr("drive", Assign{Dst: sigs[0], Src: Read(sigs[0]).Add(ConstU64(1, 16))})
	return sigs
}

func TestCompiledChainMatchesLevelized(t *testing.T) {
	const depth, cycles = 16, 10
	run := func(k Kernel) (uint64, *KernelStats) {
		sm := New()
		sm.Kernel = k
		sigs := buildExprChain(sm, depth)
		for i := 0; i <= cycles; i++ {
			if err := sm.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return sigs[depth].U64(), sm.Stats()
	}
	lv, lks := run(KernelLevelized)
	cv, cks := run(KernelCompiled)
	if lv != cv {
		t.Fatalf("chain output: levelized %d, compiled %d", lv, cv)
	}
	if lks.Compiled || lks.FusedProcs != 0 {
		t.Errorf("levelized run reported compiled stats: %+v", lks)
	}
	if !cks.Compiled || cks.FusedProcs != depth+1 {
		t.Errorf("compiled run fused %d procs (compiled=%v), want %d", cks.FusedProcs, cks.Compiled, depth+1)
	}
	if cks.FusedOps == 0 || cks.CompiledEvals == 0 {
		t.Errorf("compiled run reported fused_ops=%d compiled_evals=%d", cks.FusedOps, cks.CompiledEvals)
	}
	// The whole comb chain is one fused segment: one delta per settle, same
	// as levelized.
	if lks.Deltas != cks.Deltas {
		t.Errorf("deltas: levelized %d, compiled %d", lks.Deltas, cks.Deltas)
	}
}

func TestCompiledStepIsAllocationFree(t *testing.T) {
	sm := New()
	sm.Kernel = KernelCompiled
	buildExprChain(sm, 8)
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("compiled Step allocates %.1f times per cycle, want 0", avg)
	}
}

// TestCompiledMixedClosureAndFused interleaves closure processes with IR
// processes in one dependency chain, so the schedule alternates segments and
// levelized units and the cross-boundary dataflow must still settle in rank
// order.
func TestCompiledMixedClosureAndFused(t *testing.T) {
	run := func(k Kernel) []uint64 {
		sm := New()
		sm.Kernel = k
		a := sm.Signal("a", 8)
		b := sm.Signal("b", 8)
		c := sm.Signal("c", 8)
		d := sm.Signal("d", 8)
		e := sm.Signal("e", 8)
		sm.CombExpr("b=a+1", Assign{Dst: b, Src: Read(a).Add(ConstU64(1, 8))})
		sm.CombOut("c=b*2", func() { c.SetU64(b.U64() * 2) }, []*Signal{c}, b)
		sm.CombExpr("d=c^5", Assign{Dst: d, Src: Read(c).Xor(ConstU64(5, 8))})
		sm.CombExpr("e=mux", Assign{Dst: e, Src: Read(d).Field(0, 1).Mux(Read(b), Read(c))})
		sm.Seq("drv", func() { a.SetU64(a.U64() + 3) })
		var got []uint64
		for i := 0; i < 6; i++ {
			if err := sm.Step(); err != nil {
				t.Fatal(err)
			}
			got = append(got, b.U64(), c.U64(), d.U64(), e.U64())
		}
		return got
	}
	lv := run(KernelLevelized)
	cv := run(KernelCompiled)
	for i := range lv {
		if lv[i] != cv[i] {
			t.Fatalf("value %d: levelized %d, compiled %d (lv=%v cv=%v)", i, lv[i], cv[i], lv, cv)
		}
	}
}

// TestCompiledCyclicSCCStaysClosure asserts a cyclic component keeps the
// levelized fixpoint path under the compiled backend even when its members
// are IR-declared, and still converges identically.
func TestCompiledCyclicSCCStaysClosure(t *testing.T) {
	run := func(k Kernel) (uint64, *KernelStats) {
		sm := New()
		sm.Kernel = k
		set := sm.Bool("set")
		rst := sm.Bool("rst")
		q := sm.Bool("q")
		// SR latch: q = set | (q & !rst) — a self-loop (cyclic SCC of one)
		// that converges in a bounded number of fixpoint iterations.
		sm.CombExpr("latch", Assign{Dst: q, Src: Read(set).Or(Read(q).And(Read(rst).Not()))})
		cyc := 0
		sm.Seq("drv", func() {
			cyc++
			set.SetBool(cyc == 1)
			rst.SetBool(cyc == 3)
		})
		var err error
		for i := 0; i < 5 && err == nil; i++ {
			err = sm.Step()
		}
		if err != nil {
			t.Fatal(err)
		}
		return q.U64(), sm.Stats()
	}
	lq, _ := run(KernelLevelized)
	cq, cks := run(KernelCompiled)
	if lq != cq {
		t.Fatalf("latch: levelized %d, compiled %d", lq, cq)
	}
	if cks.FusedProcs != 0 {
		t.Errorf("cyclic SCC fused %d procs, want 0", cks.FusedProcs)
	}
	if !cks.Compiled {
		t.Errorf("compiled backend inactive")
	}
}

// TestCompiledUndeclaredBackEdgeMopsUp plants a closure process that writes
// a signal feeding an already-executed fused segment without declaring it —
// the mop-up case the fusedStale flag exists for.
func TestCompiledUndeclaredBackEdgeMopsUp(t *testing.T) {
	restore := StrictSensitivity
	StrictSensitivity = false // the test process reads outside its list by design
	defer func() { StrictSensitivity = restore }()

	run := func(k Kernel) []uint64 {
		sm := New()
		sm.Kernel = k
		early := sm.Signal("early", 8)
		out := sm.Signal("out", 8)
		trig := sm.Signal("trig", 8)
		late := sm.Signal("late", 8)
		// Fused segment at low rank: out = early + 1.
		sm.CombExpr("out", Assign{Dst: out, Src: Read(early).Add(ConstU64(1, 8))})
		// Closure at higher rank (fed by trig -> late chain) that ALSO
		// writes early without declaring it.
		sm.CombOut("late", func() { late.SetU64(trig.U64() * 2) }, []*Signal{late}, trig)
		sm.Comb("sneaky", func() {
			if late.U64() > 4 {
				early.SetU64(late.U64())
			}
		}, late)
		sm.Seq("drv", func() { trig.SetU64(trig.U64() + 1) })
		var got []uint64
		for i := 0; i < 8; i++ {
			if err := sm.Step(); err != nil {
				t.Fatal(err)
			}
			got = append(got, out.U64(), early.U64(), late.U64())
		}
		return got
	}
	lv := run(KernelLevelized)
	cv := run(KernelCompiled)
	for i := range lv {
		if lv[i] != cv[i] {
			t.Fatalf("value %d: levelized %d, compiled %d (lv=%v cv=%v)", i, lv[i], cv[i], lv, cv)
		}
	}
}

// TestCompiledReelaboration registers a new process mid-run: the program is
// dropped, the next Step re-freezes and re-fuses, and values stay coherent.
func TestCompiledReelaboration(t *testing.T) {
	sm := New()
	sm.Kernel = KernelCompiled
	a := sm.Signal("a", 8)
	b := sm.Signal("b", 8)
	sm.CombExpr("b=a+1", Assign{Dst: b, Src: Read(a).Add(ConstU64(1, 8))})
	sm.Seq("drv", func() { a.SetU64(a.U64() + 1) })
	for i := 0; i < 3; i++ {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	c := sm.Signal("c", 8)
	sm.CombExpr("c=b+b", Assign{Dst: c, Src: Read(b).Add(Read(b))})
	for i := 0; i < 3; i++ {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if want := a.U64() + 1; b.U64() != want {
		t.Errorf("b = %d, want %d", b.U64(), want)
	}
	if want := 2 * b.U64(); c.U64() != want {
		t.Errorf("c = %d, want %d", c.U64(), want)
	}
	ks := sm.Stats()
	if ks.FusedProcs != 2 { // both comb IR procs; the Seq driver is a closure
		t.Errorf("re-elaborated run fused %d procs, want 2", ks.FusedProcs)
	}
}

// TestForceDeltaLoopOverridesCompiled keeps the ablation contract: with
// ForceDeltaLoop set, the compiled backend never engages.
func TestForceDeltaLoopOverridesCompiled(t *testing.T) {
	sm := New()
	sm.Kernel = KernelCompiled
	sm.ForceDeltaLoop = true
	buildExprChain(sm, 4)
	for i := 0; i < 3; i++ {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ks := sm.Stats()
	if ks.Compiled || ks.Levelized || ks.FusedProcs != 0 {
		t.Errorf("ForceDeltaLoop run reported compiled=%v levelized=%v fused=%d",
			ks.Compiled, ks.Levelized, ks.FusedProcs)
	}
}

func TestParseKernel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
		err  bool
	}{
		{"", KernelLevelized, false},
		{"levelized", KernelLevelized, false},
		{"compiled", KernelCompiled, false},
		{"turbo", KernelLevelized, true},
	} {
		got, err := ParseKernel(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	if KernelCompiled.String() != "compiled" || KernelLevelized.String() != "levelized" {
		t.Errorf("Kernel.String broken: %q %q", KernelCompiled, KernelLevelized)
	}
}

// TestSeqExprDeltaSemantics: a SeqExpr write observes previous-cycle values
// and commits at the settle boundary, like a handwritten Seq process.
func TestSeqExprDeltaSemantics(t *testing.T) {
	for _, k := range []Kernel{KernelLevelized, KernelCompiled} {
		sm := New()
		sm.Kernel = k
		cnt := sm.Signal("cnt", 32)
		shadow := sm.Signal("shadow", 32)
		sm.SeqExpr("count", Assign{Dst: cnt, Src: Read(cnt).Add(ConstU64(1, 32))})
		// shadow captures cnt's previous value: both seq procs read the same
		// committed cnt regardless of registration order.
		sm.SeqExpr("shadow", Assign{Dst: shadow, Src: Read(cnt)})
		for i := 0; i < 5; i++ {
			if err := sm.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if cnt.U64() != 5 || shadow.U64() != 4 {
			t.Errorf("kernel %v: cnt=%d shadow=%d, want 5, 4", k, cnt.U64(), shadow.U64())
		}
	}
}

func TestStatsTimingSampled(t *testing.T) {
	sm := New()
	sm.Kernel = KernelCompiled
	sm.Timing = true
	sigs := buildExprChain(sm, 4)
	work := sm.Signal("work", 32)
	sm.CombOut("busy", func() {
		v := uint64(0)
		for i := 0; i < 1000; i++ {
			v += sigs[4].U64()
		}
		work.SetU64(v)
	}, []*Signal{work}, sigs[4])
	for i := 0; i < 200; i++ {
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ks := sm.Stats()
	var busy ProcStat
	for _, p := range ks.Procs {
		if p.Name == "busy" {
			busy = p
		}
	}
	if busy.TimeNS == 0 {
		t.Errorf("timed run recorded no wall time for the busy process")
	}
	top := ks.TopProcs(1)
	if len(top) == 0 || top[0].TimeNS == 0 {
		t.Errorf("TopProcs did not rank by time: %+v", top)
	}
}
