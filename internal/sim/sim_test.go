package sim

import (
	"errors"
	"testing"
)

func TestSeqRegisterSemantics(t *testing.T) {
	sm := New()
	d := sm.Signal("d", 8)
	q := sm.Signal("q", 8)
	sm.Seq("reg", func() { q.Set(d.Get()) })

	d.force(B64(7))
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if q.U64() != 7 {
		t.Fatalf("after 1 cycle q=%d, want 7", q.U64())
	}
}

func TestSeqReadsPreviousCycleValue(t *testing.T) {
	// Two back-to-back registers form a 2-stage shift: both Seq processes
	// must observe pre-edge values regardless of registration order.
	sm := New()
	d := sm.Signal("d", 8)
	q1 := sm.Signal("q1", 8)
	q2 := sm.Signal("q2", 8)
	sm.Seq("s2", func() { q2.Set(q1.Get()) }) // registered before s1 on purpose
	sm.Seq("s1", func() { q1.Set(d.Get()) })

	d.force(B64(5))
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if q1.U64() != 5 || q2.U64() != 0 {
		t.Fatalf("cycle 1: q1=%d q2=%d, want 5 0", q1.U64(), q2.U64())
	}
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if q2.U64() != 5 {
		t.Fatalf("cycle 2: q2=%d, want 5", q2.U64())
	}
}

func TestCombSettlesChain(t *testing.T) {
	// a -> b -> c combinational chain must settle within one cycle.
	sm := New()
	a := sm.Signal("a", 8)
	b := sm.Signal("b", 8)
	c := sm.Signal("c", 8)
	sm.Comb("b=a+1", func() { b.SetU64(a.U64() + 1) }, a)
	sm.Comb("c=b*2", func() { c.SetU64(b.U64() * 2) }, b)
	sm.Seq("drive", func() { a.SetU64(a.U64() + 1) })

	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if a.U64() != 1 || b.U64() != 2 || c.U64() != 4 {
		t.Fatalf("a=%d b=%d c=%d, want 1 2 4", a.U64(), b.U64(), c.U64())
	}
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if c.U64() != 6 {
		t.Fatalf("c=%d, want 6", c.U64())
	}
}

func TestCombInitialSettle(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 4)
	inv := sm.Signal("inv", 4)
	sm.Comb("inv", func() { inv.Set(a.Get().Not(4)) }, a)
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if inv.U64() != 0xf {
		t.Fatalf("inv=%#x, want 0xf (comb must run at time 0)", inv.U64())
	}
}

func TestOscillationDetected(t *testing.T) {
	sm := New()
	a := sm.Bool("a")
	sm.Comb("not-a", func() { a.SetBool(!a.Bool()) }, a)
	sm.Seq("kick", func() { a.SetBool(true) })
	err := sm.Step()
	if !errors.Is(err, ErrOscillation) {
		t.Fatalf("err = %v, want ErrOscillation", err)
	}
}

func TestSetEqualValueCancelsPending(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 8)
	fired := 0
	sm.Comb("watch", func() { fired++ }, a)
	sm.Seq("noop", func() {
		a.SetU64(1)
		a.SetU64(0) // back to current value: no net change
	})
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	// fired==1 from the initial time-zero evaluation only.
	if fired != 1 {
		t.Fatalf("comb fired %d times, want 1 (no change committed)", fired)
	}
}

func TestAtCycleEndObservesSettledValues(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 8)
	dbl := sm.Signal("dbl", 8)
	sm.Comb("dbl", func() { dbl.SetU64(a.U64() * 2) }, a)
	sm.Seq("count", func() { a.SetU64(a.U64() + 1) })
	var seen []uint64
	sm.AtCycleEnd(func() { seen = append(seen, dbl.U64()) })
	if err := sm.Run(3); err != nil {
		t.Fatal(err)
	}
	want := []uint64{2, 4, 6}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", seen, want)
		}
	}
}

func TestHookDrivingSignalIsRejected(t *testing.T) {
	// Cycle-end hooks are read-only observers: a hook that drives a signal
	// would re-settle combinational logic after other observers sampled it.
	sm := New()
	stim := sm.Signal("stim", 8)
	sm.AtCycleEnd(func() { stim.SetU64(1) })
	if err := sm.Step(); err == nil {
		t.Fatal("driving from a hook should be an error")
	}
}

func TestSeqDriverVisibleSameCycleToComb(t *testing.T) {
	// A Seq BFM drive settles within the same cycle, so combinational logic
	// (e.g. a grant tree) responds in that cycle.
	sm := New()
	req := sm.Bool("req")
	gnt := sm.Bool("gnt")
	sm.Comb("grant", func() { gnt.SetBool(req.Bool()) }, req)
	sm.Seq("bfm", func() { req.SetBool(true) })
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if !gnt.Bool() {
		t.Fatal("comb grant must settle in the drive cycle")
	}
}

func TestRunUntil(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 16)
	sm.Seq("count", func() { a.SetU64(a.U64() + 1) })
	if err := sm.RunUntil(func() bool { return a.U64() == 5 }, 100); err != nil {
		t.Fatal(err)
	}
	if a.U64() != 5 || sm.Cycle() != 5 {
		t.Fatalf("a=%d cycle=%d, want 5 5", a.U64(), sm.Cycle())
	}
	if err := sm.RunUntil(func() bool { return false }, 3); err == nil {
		t.Fatal("RunUntil should fail when limit hit")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		sm := New()
		a := sm.Signal("a", 32)
		b := sm.Signal("b", 32)
		c := sm.Signal("c", 32)
		sm.Comb("c", func() { c.SetU64(a.U64() ^ b.U64()) }, a, b)
		sm.Seq("a", func() { a.SetU64(a.U64()*1103515245 + 12345) })
		sm.Seq("b", func() { b.SetU64(b.U64() + c.U64() + 1) })
		var trace []uint64
		sm.AtCycleEnd(func() { trace = append(trace, c.U64()) })
		if err := sm.Run(50); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	t1, t2 := run(), run()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("non-deterministic at cycle %d: %d vs %d", i, t1[i], t2[i])
		}
	}
}

func TestScopeNaming(t *testing.T) {
	sm := New()
	top := Root(sm)
	node := top.Sub("node")
	p0 := node.Sub("init0")
	s := p0.Signal("req", 1)
	if s.Name() != "node.init0.req" {
		t.Fatalf("name = %q", s.Name())
	}
	if p0.Path() != "node.init0" {
		t.Fatalf("path = %q", p0.Path())
	}
	if node.Sim() != sm {
		t.Fatal("scope lost simulator")
	}
}

func TestSignalWidthValidation(t *testing.T) {
	sm := New()
	for _, w := range []int{0, -1, MaxBitsWidth + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d should panic", w)
				}
			}()
			sm.Signal("bad", w)
		}()
	}
}

func TestSignalIDsDense(t *testing.T) {
	sm := New()
	for i := 0; i < 10; i++ {
		s := sm.Signal("s", 1)
		if s.ID() != i {
			t.Fatalf("signal %d has id %d", i, s.ID())
		}
	}
	if len(sm.Signals()) != 10 {
		t.Fatalf("Signals() len = %d", len(sm.Signals()))
	}
}

func TestMaxDeltasBoundary(t *testing.T) {
	// A comb chain of depth n settles in <= n+1 deltas; MaxDeltas just above
	// the chain depth must succeed, just below must fail.
	build := func(maxDeltas int) error {
		sm := New()
		sm.MaxDeltas = maxDeltas
		const depth = 20
		sigs := make([]*Signal, depth+1)
		for i := range sigs {
			sigs[i] = sm.Signal("s", 16)
		}
		for i := 0; i < depth; i++ {
			i := i
			sm.Comb("chain", func() { sigs[i+1].SetU64(sigs[i].U64() + 1) }, sigs[i])
		}
		sm.Seq("drive", func() { sigs[0].SetU64(sigs[0].U64() + 1) })
		return sm.Step()
	}
	if err := build(depth25); err != nil {
		t.Errorf("deep-enough delta budget failed: %v", err)
	}
	if err := build(3); err == nil {
		t.Error("tiny delta budget should hit the oscillation guard")
	}
}

const depth25 = 25

func TestManySignalsStress(t *testing.T) {
	sm := New()
	const n = 500
	var prev *Signal
	first := sm.Signal("s0", 32)
	prev = first
	for i := 1; i < n; i++ {
		cur := sm.Signal("s", 32)
		p := prev
		sm.Seq("shift", func() { cur.Set(p.Get()) })
		prev = cur
	}
	sm.Seq("feed", func() { first.SetU64(first.U64() + 1) })
	if err := sm.Run(n + 5); err != nil {
		t.Fatal(err)
	}
	if prev.U64() == 0 {
		t.Error("value never propagated through the 500-stage shift chain")
	}
}

func TestRunStopsOnError(t *testing.T) {
	sm := New()
	a := sm.Bool("a")
	sm.Comb("osc", func() { a.SetBool(!a.Bool()) }, a)
	sm.Seq("kick", func() { a.SetBool(true) })
	if err := sm.Run(10); err == nil {
		t.Fatal("Run should propagate the oscillation error")
	}
	if sm.Cycle() > 1 {
		t.Errorf("Run continued after error (cycle %d)", sm.Cycle())
	}
}

func TestDeltaCountAccumulates(t *testing.T) {
	sm := New()
	a := sm.Signal("a", 8)
	b := sm.Signal("b", 8)
	sm.Comb("b", func() { b.SetU64(a.U64() + 1) }, a)
	sm.Seq("a", func() { a.SetU64(a.U64() + 1) })
	if err := sm.Run(10); err != nil {
		t.Fatal(err)
	}
	if sm.DeltaCount == 0 {
		t.Error("DeltaCount not accumulating")
	}
}
