package sim

import (
	"testing"
)

// xorshift64 is the deterministic value stream of the lane tests.
func xorshift64(s *uint64) uint64 {
	*s ^= *s << 13
	*s ^= *s >> 7
	*s ^= *s << 17
	return *s
}

func randomBits(s *uint64, width int) Bits {
	var w [BitsWords]uint64
	for i := range w {
		w[i] = xorshift64(s)
	}
	return BWords(w[:]...).Mask(width)
}

// TestTranspose64 checks the transpose orientation bit by bit against the
// definition — bit j of word i moves to bit i of word j — and that the
// routine is an involution.
func TestTranspose64(t *testing.T) {
	rng := uint64(0x0123456789abcdef)
	for trial := 0; trial < 4; trial++ {
		var a, orig [64]uint64
		for i := range a {
			a[i] = xorshift64(&rng)
		}
		orig = a
		transpose64(&a)
		for i := 0; i < 64; i++ {
			for j := 0; j < 64; j++ {
				if a[j]>>uint(i)&1 != orig[i]>>uint(j)&1 {
					t.Fatalf("trial %d: transposed[%d] bit %d = %d, want original[%d] bit %d = %d",
						trial, j, i, a[j]>>uint(i)&1, i, j, orig[i]>>uint(j)&1)
				}
			}
		}
		transpose64(&a)
		if a != orig {
			t.Fatalf("trial %d: transpose64 is not an involution", trial)
		}
	}
}

// TestPackUnpackLanes drives the storage transform across the word-boundary
// width classes and asserts the plane definition directly: plane b bit l ==
// bit b of lane l's value, zero for lanes beyond the packed set.
func TestPackUnpackLanes(t *testing.T) {
	rng := uint64(0xfeedface12345678)
	for _, width := range []int{1, 7, 63, 64, 65, 128, 191, 255, 256} {
		for _, lanes := range []int{1, 2, 63, 64} {
			vals := make([]Bits, lanes)
			for l := range vals {
				vals[l] = randomBits(&rng, width)
			}
			planes := PackLanes(vals, width)
			if len(planes) != width {
				t.Fatalf("w=%d lanes=%d: PackLanes returned %d planes", width, lanes, len(planes))
			}
			for b := 0; b < width; b++ {
				for l := 0; l < lanes; l++ {
					if planes[b]>>uint(l)&1 == 1 != vals[l].Bit(b) {
						t.Fatalf("w=%d lanes=%d: plane %d bit %d = %d, lane value bit = %v",
							width, lanes, b, l, planes[b]>>uint(l)&1, vals[l].Bit(b))
					}
				}
				if lanes < 64 && planes[b]>>uint(lanes) != 0 {
					t.Fatalf("w=%d lanes=%d: plane %d has bits above the lane count: %#x",
						width, lanes, b, planes[b])
				}
			}
			back := UnpackLanes(planes, width, lanes)
			for l := range back {
				if !back[l].Equal(vals[l]) {
					t.Fatalf("w=%d lanes=%d: lane %d roundtrip %v != %v", width, lanes, l, back[l], vals[l])
				}
			}
		}
	}
}

// laneObs records what one lane's testbench observes: per-cycle sampled
// values via a cycle-end hook, and the evaluation count of its comb closure.
// Identical scalar and lane-mode observations are the per-lane equivalence
// the lane runner promises.
type laneObs struct {
	out   []uint64
	acc   []uint64
	bind  []uint64
	evals int
}

// buildMixedBench constructs one lane (or scalar) copy of a small design that
// crosses every execution form: a per-lane closure Seq driver, a fusable IR
// comb, the plane-copy bind shape, a closure comb, a fusable IR seq
// accumulator, and a cycle-end observation hook.
func buildMixedBench(sm *Simulator, seed uint64, obs *laneObs) {
	a := sm.Signal("a", 8)
	b := sm.Signal("b", 8)
	bind := sm.Signal("bind", 8)
	out := sm.Signal("out", 8)
	acc := sm.Signal("acc", 16)
	rng := seed
	sm.Seq("drv", func() {
		a.SetU64(xorshift64(&rng))
	})
	sm.CombExpr("b", Assign{Dst: b, Src: Read(a).Xor(ConstU64(0x5a, 8))})
	sm.CombExpr("bind", Assign{Dst: bind, Src: Read(b)})
	sm.CombOut("oc", func() {
		obs.evals++
		out.SetU64(b.U64()&0x3f | 1)
	}, []*Signal{out}, b)
	sm.SeqExpr("acc", Assign{Dst: acc, Src: Read(acc).Add(Read(out)).Field(0, 16)})
	sm.AtCycleEnd(func() {
		obs.out = append(obs.out, out.U64())
		obs.acc = append(obs.acc, acc.U64())
		obs.bind = append(obs.bind, bind.U64())
	})
}

func (o *laneObs) diff(ref *laneObs) string {
	if o.evals != ref.evals {
		return "comb closure eval count"
	}
	if len(o.out) != len(ref.out) {
		return "observation count"
	}
	for i := range o.out {
		if o.out[i] != ref.out[i] || o.acc[i] != ref.acc[i] || o.bind[i] != ref.bind[i] {
			return "sampled values"
		}
	}
	return ""
}

// TestLaneMatchesScalar is the per-lane equivalence property at the sim
// layer: every lane of a lane-parallel run observes — through hooks, closure
// reads, and closure evaluation counts — exactly what a scalar run of the
// same seed observes, under both kernels.
func TestLaneMatchesScalar(t *testing.T) {
	const cycles = 50
	for _, k := range []Kernel{KernelLevelized, KernelCompiled} {
		for _, lanes := range []int{2, 7, 64} {
			lsm := New()
			lsm.Kernel = k
			lsm.SetLanes(lanes)
			lobs := make([]laneObs, lanes)
			for l := 0; l < lanes; l++ {
				lsm.BeginLane(l)
				buildMixedBench(lsm, uint64(l)*0x9e3779b9+1, &lobs[l])
			}
			lsm.EndBuild()
			for c := 0; c < cycles; c++ {
				if err := lsm.Step(); err != nil {
					t.Fatal(err)
				}
			}
			for l := 0; l < lanes; l++ {
				ssm := New()
				ssm.Kernel = k
				var sobs laneObs
				buildMixedBench(ssm, uint64(l)*0x9e3779b9+1, &sobs)
				for c := 0; c < cycles; c++ {
					if err := ssm.Step(); err != nil {
						t.Fatal(err)
					}
				}
				if d := lobs[l].diff(&sobs); d != "" {
					t.Fatalf("kernel %v lanes %d: lane %d diverges from scalar run: %s", k, lanes, l, d)
				}
			}
			ks := lsm.Stats()
			if ks.Lanes != lanes {
				t.Errorf("kernel %v: stats lanes = %d, want %d", k, ks.Lanes, lanes)
			}
			if k == KernelCompiled {
				if ks.FusedLaneEvals == 0 {
					t.Errorf("compiled lane run fused no lane evals: %+v", ks)
				}
				if dr := ks.DivergenceRate(); dr <= 0 || dr >= 1 {
					t.Errorf("divergence rate %v outside (0,1) for a mixed closure/IR bench", dr)
				}
			} else if ks.FusedLaneEvals != 0 {
				t.Errorf("levelized lane run reported fused lane evals: %+v", ks)
			}
		}
	}
}

// TestLaneRetire retires one lane mid-run: its closures and hooks stop, its
// observations freeze, and the surviving lanes keep matching their scalar
// references — lane independence under a partially active mask.
func TestLaneRetire(t *testing.T) {
	const lanes, cutover, cycles = 4, 20, 50
	lsm := New()
	lsm.Kernel = KernelCompiled
	lsm.SetLanes(lanes)
	lobs := make([]laneObs, lanes)
	for l := 0; l < lanes; l++ {
		lsm.BeginLane(l)
		buildMixedBench(lsm, uint64(l)+11, &lobs[l])
	}
	lsm.EndBuild()
	for c := 0; c < cycles; c++ {
		if c == cutover {
			lsm.SetLaneActive(1, false)
			if lsm.LaneActive(1) || lsm.ActiveMask() != 0b1101 {
				t.Fatalf("retire bookkeeping: active(1)=%v mask=%#b", lsm.LaneActive(1), lsm.ActiveMask())
			}
		}
		if err := lsm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(lobs[1].out); got != cutover {
		t.Errorf("retired lane kept observing: %d samples, want %d", got, cutover)
	}
	for _, l := range []int{0, 2, 3} {
		ssm := New()
		ssm.Kernel = KernelCompiled
		var sobs laneObs
		buildMixedBench(ssm, uint64(l)+11, &sobs)
		for c := 0; c < cycles; c++ {
			if err := ssm.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if d := lobs[l].diff(&sobs); d != "" {
			t.Fatalf("surviving lane %d diverges from scalar after a sibling retired: %s", l, d)
		}
	}
}

// TestLaneConstructionChecks pins the construction-protocol panics: lane
// counts outside 2..64, enabling lanes after construction began, and a lane
// whose build diverges from lane 0's.
func TestLaneConstructionChecks(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("SetLanes(1)", func() { New().SetLanes(1) })
	expectPanic("SetLanes(65)", func() { New().SetLanes(65) })
	expectPanic("SetLanes after signal", func() {
		sm := New()
		sm.Signal("x", 1)
		sm.SetLanes(2)
	})
	expectPanic("diverging lane build", func() {
		sm := New()
		sm.SetLanes(2)
		sm.BeginLane(0)
		sm.Signal("x", 8)
		sm.BeginLane(1)
		sm.Signal("y", 8)
	})
	expectPanic("diverging width", func() {
		sm := New()
		sm.SetLanes(2)
		sm.BeginLane(0)
		sm.Signal("x", 8)
		sm.BeginLane(1)
		sm.Signal("x", 9)
	})
	expectPanic("extra lane signal", func() {
		sm := New()
		sm.SetLanes(2)
		sm.BeginLane(0)
		sm.Signal("x", 8)
		sm.BeginLane(1)
		sm.Signal("x", 8)
		sm.Signal("z", 8)
	})
}

// FuzzLaneEval cross-checks the transposed bytecode interpreter against the
// scalar backends: a random expression evaluated for every lane at once over
// per-lane random inputs must match, lane for lane, a scalar simulation fed
// the same values.
func FuzzLaneEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 1, 11, 0, 1})
	f.Add([]byte{7, 5, 0, 200, 40, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{63, 11, 11, 0, 0, 255, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nin = 3
		hdr := &fuzzCursor{data: data}
		lanes := 2 + hdr.intn(63)
		var widths [nin]int
		for i := range widths {
			widths[i] = fuzzWidths[hdr.intn(len(fuzzWidths))]
		}
		rng := uint64(1)
		for i := 0; i < 8; i++ {
			rng = rng<<8 | uint64(hdr.byte())
		}
		rng |= 1
		laneVals := make([][nin]Bits, lanes)
		for l := range laneVals {
			for i := 0; i < nin; i++ {
				laneVals[l][i] = randomBits(&rng, widths[i])
			}
		}
		body := data[hdr.pos:]

		sm := New()
		sm.Kernel = KernelCompiled
		sm.SetLanes(lanes)
		var out *Signal
		for l := 0; l < lanes; l++ {
			sm.BeginLane(l)
			sigs := make([]*Signal, nin)
			for i := range sigs {
				sigs[i] = sm.Signal("in", widths[i])
			}
			e := genExpr(&fuzzCursor{data: body}, sigs, 4)
			out = sm.Signal("out", e.Width())
			sm.CombExpr("dut", Assign{Dst: out, Src: e})
			vals := laneVals[l]
			sm.Seq("drv", func() {
				for i, s := range sigs {
					s.Set(vals[i])
				}
			})
		}
		sm.EndBuild()
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}

		for l := 0; l < lanes; l++ {
			ssm := New()
			ssm.Kernel = KernelLevelized
			sigs := make([]*Signal, nin)
			for i := range sigs {
				sigs[i] = ssm.Signal("in", widths[i])
			}
			se := genExpr(&fuzzCursor{data: body}, sigs, 4)
			sout := ssm.Signal("out", se.Width())
			ssm.CombExpr("dut", Assign{Dst: sout, Src: se})
			vals := laneVals[l]
			ssm.Seq("drv", func() {
				for i, s := range sigs {
					s.Set(vals[i])
				}
			})
			if err := ssm.Step(); err != nil {
				t.Fatal(err)
			}
			if got, want := out.GetLane(l), sout.Get(); !got.Equal(want) {
				t.Errorf("lane %d/%d: transposed eval = %v, scalar reference = %v", l, lanes, got, want)
			}
		}
		if ks := sm.Stats(); ks.FusedLaneEvals == 0 || ks.Lanes != lanes {
			t.Errorf("expression group did not fuse across lanes: %+v", ks)
		}
	})
}
