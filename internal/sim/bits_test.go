package sim

import (
	"testing"
	"testing/quick"
)

func TestB64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		if got := B64(v).Uint64(); got != v {
			t.Errorf("B64(%#x).Uint64() = %#x", v, got)
		}
	}
}

func TestBBool(t *testing.T) {
	if !BBool(true).Bool() {
		t.Error("BBool(true) should be non-zero")
	}
	if BBool(false).Bool() {
		t.Error("BBool(false) should be zero")
	}
}

func TestMaskTruncates(t *testing.T) {
	b := B64(0xff)
	if got := b.Mask(4).Uint64(); got != 0xf {
		t.Errorf("Mask(4) = %#x, want 0xf", got)
	}
	if got := b.Mask(8).Uint64(); got != 0xff {
		t.Errorf("Mask(8) = %#x, want 0xff", got)
	}
	if got := b.Mask(0); !got.IsZero() {
		t.Errorf("Mask(0) = %v, want zero", got)
	}
}

func TestMaskWide(t *testing.T) {
	b := BWords(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	m := b.Mask(200)
	if m.Word(3) != (^uint64(0))>>(256-200) {
		t.Errorf("Mask(200) high word = %#x", m.Word(3))
	}
	if m.Word(0) != ^uint64(0) || m.Word(1) != ^uint64(0) || m.Word(2) != ^uint64(0) {
		t.Error("Mask(200) should keep low words intact")
	}
}

func TestBitAndSetBit(t *testing.T) {
	var b Bits
	b = b.SetBit(0, true).SetBit(63, true).SetBit(64, true).SetBit(255, true)
	for _, i := range []int{0, 63, 64, 255} {
		if !b.Bit(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Bit(1) || b.Bit(128) {
		t.Error("unexpected bits set")
	}
	b = b.SetBit(63, false)
	if b.Bit(63) {
		t.Error("bit 63 should be cleared")
	}
}

func TestFieldRoundTrip(t *testing.T) {
	b := B64(0).WithField(8, 8, B64(0xab)).WithField(100, 12, B64(0x5a5))
	if got := b.Field(8, 8).Uint64(); got != 0xab {
		t.Errorf("Field(8,8) = %#x", got)
	}
	if got := b.Field(100, 12).Uint64(); got != 0x5a5 {
		t.Errorf("Field(100,12) = %#x", got)
	}
	if got := b.Field(0, 8).Uint64(); got != 0 {
		t.Errorf("Field(0,8) = %#x, want 0", got)
	}
}

func TestBinaryStringAndParse(t *testing.T) {
	b := B64(0b1011)
	if got := b.BinaryString(4); got != "1011" {
		t.Errorf("BinaryString(4) = %q", got)
	}
	if got := b.BinaryString(6); got != "001011" {
		t.Errorf("BinaryString(6) = %q", got)
	}
	p, err := ParseBinary("1011")
	if err != nil {
		t.Fatal(err)
	}
	if p.Uint64() != 0b1011 {
		t.Errorf("ParseBinary = %#x", p.Uint64())
	}
	if _, err := ParseBinary("10a1"); err == nil {
		t.Error("ParseBinary should reject bad digits")
	}
	if _, err := ParseBinary(""); err == nil {
		t.Error("ParseBinary should reject empty input")
	}
	// x/z digits collapse to zero.
	p, err = ParseBinary("1x0z")
	if err != nil {
		t.Fatal(err)
	}
	if p.Uint64() != 0b1000 {
		t.Errorf("ParseBinary(1x0z) = %#x, want 0b1000", p.Uint64())
	}
}

func TestBinaryStringParseRoundTripProperty(t *testing.T) {
	f := func(w0, w1, w2, w3 uint64, width uint8) bool {
		w := int(width)%MaxBitsWidth + 1
		b := BWords(w0, w1, w2, w3).Mask(w)
		p, err := ParseBinary(b.BinaryString(w))
		return err == nil && p.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorOrAndNotProperties(t *testing.T) {
	selfInverse := func(a0, a1, b0, b1 uint64) bool {
		a, b := BWords(a0, a1), BWords(b0, b1)
		return a.Xor(b).Xor(b).Equal(a)
	}
	if err := quick.Check(selfInverse, nil); err != nil {
		t.Errorf("xor self-inverse: %v", err)
	}
	deMorgan := func(a0, b0 uint64) bool {
		a, b := B64(a0), B64(b0)
		lhs := a.And(b).Not(64)
		rhs := a.Not(64).Or(b.Not(64))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Errorf("de morgan: %v", err)
	}
}

func TestFieldWithFieldProperty(t *testing.T) {
	f := func(base0, base1, val uint64, loRaw, wRaw uint8) bool {
		lo := int(loRaw) % 200
		w := int(wRaw)%56 + 1
		b := BWords(base0, base1).WithField(lo, w, B64(val))
		return b.Field(lo, w).Equal(B64(val).Mask(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	if got := B64(0x1f).String(); got != "0x1f" {
		t.Errorf("String() = %q", got)
	}
	wide := BWords(1, 0, 0, 2)
	if got := wide.String(); got == "" || got == "0x1" {
		t.Errorf("wide String() = %q", got)
	}
}

func TestFieldWordBoundaries(t *testing.T) {
	// A recognizable 256-bit pattern: word i holds 0x…(i)…
	b := BWords(0x1111111122222222, 0x3333333344444444, 0x5555555566666666, 0x7777777788888888)
	cases := []struct {
		lo, w int
		want  Bits
	}{
		// Straddling the 64-bit word boundary: 16 bits from 56..72.
		{56, 16, B64(0x4411)},
		// Straddling 128: 32 bits from 112..144.
		{112, 32, B64(0x66663333)},
		// Straddling 192: 24 bits from 180..204.
		{180, 24, B64(0x888555)},
		// Exactly one full word, aligned.
		{64, 64, B64(0x3333333344444444)},
		// Zero width is empty regardless of offset.
		{0, 0, Bits{}},
		{63, 0, Bits{}},
		{255, 0, Bits{}},
		// Full vector width.
		{0, 256, b},
		// Top bit alone.
		{255, 1, B64(0)},
	}
	for _, tc := range cases {
		if got := b.Field(tc.lo, tc.w); !got.Equal(tc.want) {
			t.Errorf("Field(%d,%d) = %v, want %v", tc.lo, tc.w, got, tc.want)
		}
	}
}

func TestWithFieldWordBoundaries(t *testing.T) {
	base := BWords(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	// Clear 16 bits straddling the first word boundary.
	b := base.WithField(56, 16, B64(0))
	if got := b.Field(56, 16).Uint64(); got != 0 {
		t.Errorf("straddling clear: Field(56,16) = %#x, want 0", got)
	}
	if got := b.Field(0, 56); !got.Equal(B64(0).Not(56)) {
		t.Errorf("straddling clear disturbed low bits: %v", got)
	}
	if got := b.Field(72, 56); !got.Equal(B64(0).Not(56)) {
		t.Errorf("straddling clear disturbed high bits: %v", got)
	}
	// Round trip straddling the 192 boundary.
	b = Bits{}.WithField(190, 10, B64(0x3ff))
	if got := b.Field(190, 10).Uint64(); got != 0x3ff {
		t.Errorf("Field(190,10) = %#x, want 0x3ff", got)
	}
	if b.Field(0, 190).IsZero() != true || !b.Field(200, 56).IsZero() {
		t.Error("WithField(190,10) disturbed bits outside the field")
	}
	// Zero-width insert is the identity.
	if got := base.WithField(100, 0, B64(0xffff)); !got.Equal(base) {
		t.Errorf("zero-width WithField changed the value: %v", got)
	}
	// Full-width replace.
	repl := BWords(1, 2, 3, 4)
	if got := base.WithField(0, 256, repl); !got.Equal(repl) {
		t.Errorf("full-width WithField = %v, want %v", got, repl)
	}
}

func TestAddCarryChain(t *testing.T) {
	one := B64(1)
	allOnes64 := B64(^uint64(0))
	// Carry out of word 0 into word 1.
	if got := allOnes64.Add(one); got.Word(0) != 0 || got.Word(1) != 1 {
		t.Errorf("2^64-1 + 1 = %v", got)
	}
	// Carry rippling through all four words.
	max := BWords(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	if got := max.Add(one); !got.IsZero() {
		t.Errorf("2^256-1 + 1 = %v, want wraparound to zero", got)
	}
	commutes := func(a0, a1, b0, b1 uint64) bool {
		a, b := BWords(a0, a1), BWords(b0, b1)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Errorf("add commutativity: %v", err)
	}
}

func TestUlt(t *testing.T) {
	lo := BWords(^uint64(0), 0) // 2^64-1
	hi := BWords(0, 1)          // 2^64
	if !lo.Ult(hi) || hi.Ult(lo) {
		t.Error("Ult misorders values differing in word 1")
	}
	if lo.Ult(lo) {
		t.Error("Ult should be irreflexive")
	}
	agrees := func(a, b uint64) bool {
		return B64(a).Ult(B64(b)) == (a < b)
	}
	if err := quick.Check(agrees, nil); err != nil {
		t.Errorf("Ult vs uint64 <: %v", err)
	}
}

func TestBWordsPanicsOnTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BWords with 5 words should panic")
		}
	}()
	BWords(1, 2, 3, 4, 5)
}
