package sim

// Scope is a naming helper that prefixes signal and process names with a
// hierarchical path, mirroring module instantiation in an HDL. Scopes carry
// no simulation state of their own.
type Scope struct {
	sim    *Simulator
	prefix string
}

// Root returns the top-level scope of a simulator.
func Root(sm *Simulator) Scope { return Scope{sim: sm} }

// Sub returns a child scope named name.
func (sc Scope) Sub(name string) Scope {
	return Scope{sim: sc.sim, prefix: sc.join(name)}
}

// Path returns the scope's full hierarchical prefix ("" at the root).
func (sc Scope) Path() string { return sc.prefix }

// Sim returns the underlying simulator.
func (sc Scope) Sim() *Simulator { return sc.sim }

func (sc Scope) join(name string) string {
	if sc.prefix == "" {
		return name
	}
	return sc.prefix + "." + name
}

// Signal creates a signal named under this scope.
func (sc Scope) Signal(name string, width int) *Signal {
	return sc.sim.Signal(sc.join(name), width)
}

// Bool creates a 1-bit signal named under this scope.
func (sc Scope) Bool(name string) *Signal { return sc.sim.Bool(sc.join(name)) }

// Seq registers a sequential process named under this scope.
func (sc Scope) Seq(name string, fn func()) { sc.sim.Seq(sc.join(name), fn) }

// Comb registers a combinational process named under this scope.
func (sc Scope) Comb(name string, fn func(), sensitivity ...*Signal) {
	sc.sim.Comb(sc.join(name), fn, sensitivity...)
}

// CombOut registers a combinational process with declared outputs named
// under this scope.
func (sc Scope) CombOut(name string, fn func(), outputs []*Signal, sensitivity ...*Signal) {
	sc.sim.CombOut(sc.join(name), fn, outputs, sensitivity...)
}
