package sim

import (
	"testing"
)

// fuzzCursor deals bytes from the fuzz input; exhausted input yields zeros,
// which steers the generator toward leaves.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) byte() byte {
	if c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

func (c *fuzzCursor) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(c.byte()) % n
}

func (c *fuzzCursor) bits() Bits {
	var w [BitsWords]uint64
	for i := range w {
		for j := 0; j < 8; j++ {
			w[i] = w[i]<<8 | uint64(c.byte())
		}
	}
	return BWords(w[:]...)
}

// fuzzWidths samples the interesting width classes: sub-word, word-boundary
// straddlers, exactly one word, and multi-word vectors.
var fuzzWidths = []int{1, 3, 8, 16, 17, 31, 63, 64, 65, 100, 127, 128, 129, 200, 255, 256}

// genExpr builds a random expression over sigs, deterministically from the
// cursor. Exhausted input degenerates to Read(sigs[0]).
func genExpr(c *fuzzCursor, sigs []*Signal, depth int) *Expr {
	if depth <= 0 {
		if c.byte()%2 == 0 {
			return Read(sigs[c.intn(len(sigs))])
		}
		return Const(c.bits(), fuzzWidths[c.intn(len(fuzzWidths))])
	}
	switch c.byte() % 12 {
	case 0:
		return Read(sigs[c.intn(len(sigs))])
	case 1:
		return Const(c.bits(), fuzzWidths[c.intn(len(fuzzWidths))])
	case 2:
		return genExpr(c, sigs, depth-1).And(genExpr(c, sigs, depth-1))
	case 3:
		return genExpr(c, sigs, depth-1).Or(genExpr(c, sigs, depth-1))
	case 4:
		return genExpr(c, sigs, depth-1).Xor(genExpr(c, sigs, depth-1))
	case 5:
		return genExpr(c, sigs, depth-1).Not()
	case 6:
		a := genExpr(c, sigs, depth-1)
		lo := c.intn(a.Width())
		w := 1 + c.intn(a.Width()-lo)
		return a.Field(lo, w)
	case 7:
		a := genExpr(c, sigs, depth-1)
		lo := c.intn(a.Width())
		w := 1 + c.intn(a.Width()-lo)
		return a.WithField(lo, w, genExpr(c, sigs, depth-1))
	case 8:
		return genExpr(c, sigs, depth-1).Mux(genExpr(c, sigs, depth-1), genExpr(c, sigs, depth-1))
	case 9:
		return genExpr(c, sigs, depth-1).Eq(genExpr(c, sigs, depth-1))
	case 10:
		return genExpr(c, sigs, depth-1).Lt(genExpr(c, sigs, depth-1))
	default:
		return genExpr(c, sigs, depth-1).Add(genExpr(c, sigs, depth-1))
	}
}

// FuzzExprEval cross-checks the compiled backend's bytecode interpreter
// against the reference evaluator: the same random expression over the same
// random slot values must produce identical results through the fused
// program (KernelCompiled), the levelized closure fallback, and a direct
// Eval of the tree.
func FuzzExprEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 1, 11, 0, 1})
	f.Add([]byte{7, 5, 0, 200, 40, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{11, 11, 11, 0, 0, 255, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nin = 4
		// Deal the input widths and values once, then replay the identical
		// tree under each backend.
		hdr := &fuzzCursor{data: data}
		var widths [nin]int
		var vals [nin]Bits
		for i := 0; i < nin; i++ {
			widths[i] = fuzzWidths[hdr.intn(len(fuzzWidths))]
			vals[i] = hdr.bits().Mask(widths[i])
		}
		body := data[hdr.pos:]

		build := func(k Kernel) (*Simulator, *Signal, *Expr) {
			sm := New()
			sm.Kernel = k
			sigs := make([]*Signal, nin)
			for i := range sigs {
				sigs[i] = sm.Signal("in", widths[i])
			}
			e := genExpr(&fuzzCursor{data: body}, sigs, 4)
			out := sm.Signal("out", e.Width())
			sm.CombExpr("dut", Assign{Dst: out, Src: e})
			sm.Seq("drv", func() {
				for i, s := range sigs {
					s.Set(vals[i])
				}
			})
			return sm, out, e
		}

		smC, outC, eC := build(KernelCompiled)
		if err := smC.Step(); err != nil {
			t.Fatal(err)
		}
		smL, outL, _ := build(KernelLevelized)
		if err := smL.Step(); err != nil {
			t.Fatal(err)
		}

		got := outC.Get()
		ref := eC.Eval() // inputs are committed now; Eval sees the same slots
		if !got.Equal(ref) {
			t.Errorf("compiled exec = %v, reference Eval = %v", got, ref)
		}
		if lv := outL.Get(); !lv.Equal(got) {
			t.Errorf("compiled exec = %v, levelized fallback = %v", got, lv)
		}
		if ks := smC.Stats(); !ks.Compiled || ks.FusedProcs != 1 {
			t.Errorf("expression process did not fuse: %+v", ks)
		}
	})
}
