// Lane-parallel execution: up to 64 independent simulations — "lanes",
// typically the seed axis of a regression — share one Simulator and one
// elaborated signal graph. Signal storage widens to one uint64 plane word per
// bit position, bit l of plane b holding lane l's value of bit b, so a single
// word-wise operation evaluates a gate for every lane at once (classic
// bit-sliced event simulation). The compiled backend fuses the per-lane
// copies of each IR-declared process into one transposed bytecode program;
// everything with divergent control flow — BFMs, monitors, checkers, the BCA
// queues — stays a per-lane closure, dispatched through the lane context so
// unmodified testbench code reads and writes its own lane.
//
// Construction protocol: SetLanes(n) on a fresh simulator, then build the
// identical bench+DUT once per lane under BeginLane(l)/EndBuild. Lane 0's
// build creates the signals; every later lane's Signal calls alias the
// ordinal-matched lane-0 signal (name and width asserted), so the lanes share
// one graph while each keeps its own process closures and cycle-end hooks.
// Per-lane liveness is governed by SetLaneActive: a retired lane's closures
// and hooks stop running and changes confined to it wake nobody, while the
// transposed segments keep computing its (unobserved) planes.
//
// Equivalence argument: per-lane wake criteria are exactly the scalar ones —
// a process is woken iff a signal it is sensitive to changed in its lane — so
// every closure runs in the same cycles with the same visible values as in a
// scalar run of that seed, and fused processes are pure functions whose early
// or extra evaluation is unobservable. Reports therefore demultiplex
// byte-identical to scalar runs, the property TestLaneScalarEquivalence
// asserts across the standard matrix.

package sim

import (
	"fmt"
	"math/bits"
)

// transpose64 transposes a 64×64 bit matrix in place: bit j of word i moves
// to bit i of word j (LSB-first in both dimensions). It is an involution; the
// same routine converts lane values to bit planes and back.
func transpose64(a *[64]uint64) {
	for j, m := 32, uint64(0x00000000FFFFFFFF); j != 0; j, m = j>>1, m^(m<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
	}
}

// PackLanes transposes per-lane values into bit planes: plane b (for b below
// width) has bit l set iff vals[l] has bit b set. Lanes beyond len(vals) read
// zero. It is the storage transform of lane-parallel execution, exported for
// the word-boundary tests.
func PackLanes(vals []Bits, width int) []uint64 {
	if len(vals) > 64 {
		panic("sim: PackLanes: more than 64 lanes")
	}
	planes := make([]uint64, width)
	var a [64]uint64
	for g := 0; g*64 < width; g++ {
		for l := range a {
			a[l] = 0
		}
		for l, v := range vals {
			a[l] = v.v[g]
		}
		transpose64(&a)
		n := width - g*64
		if n > 64 {
			n = 64
		}
		copy(planes[g*64:g*64+n], a[:n])
	}
	return planes
}

// UnpackLanes is the inverse of PackLanes: it gathers lane l's value from bit
// l of every plane, for lanes lanes.
func UnpackLanes(planes []uint64, width, lanes int) []Bits {
	if lanes > 64 {
		panic("sim: UnpackLanes: more than 64 lanes")
	}
	vals := make([]Bits, lanes)
	var a [64]uint64
	for g := 0; g*64 < width; g++ {
		for b := range a {
			a[b] = 0
		}
		n := width - g*64
		if n > 64 {
			n = 64
		}
		copy(a[:n], planes[g*64:g*64+n])
		transpose64(&a)
		for l := 0; l < lanes; l++ {
			vals[l].v[g] = a[l]
		}
	}
	return vals
}

// laneSig is the widened storage of one signal under lane mode. The
// committed state lives in two interchangeable representations — per-lane
// values (lv) for the closure path and bit planes for the transposed bytecode
// — each lazily rebuilt from the other via the 64×64 transpose when its
// validity flag is down. Pending writes are likewise split: per-lane values
// scheduled by closures (next/pend) and whole planes scheduled by transposed
// sequential code (nextPlanes/planePend).
type laneSig struct {
	lanes int

	lv   []Bits // per-lane committed values, valid iff lvOK
	lvOK bool

	planes []uint64 // one word per bit position, valid iff plOK
	plOK   bool

	next []Bits // per-lane pending values (closure writes)
	pend uint64 // lanes with a pending closure write

	nextPlanes []uint64 // pending planes (transposed seq stores)
	planePend  bool
}

func newLaneSig(lanes, width int) *laneSig {
	return &laneSig{
		lanes:  lanes,
		lv:     make([]Bits, lanes),
		lvOK:   true,
		planes: make([]uint64, width),
		plOK:   true,
		next:   make([]Bits, lanes),
	}
}

// gather rebuilds the per-lane values from the planes.
func (ls *laneSig) gather(width int) {
	var a [64]uint64
	for g := 0; g*64 < width; g++ {
		for b := range a {
			a[b] = 0
		}
		n := width - g*64
		if n > 64 {
			n = 64
		}
		copy(a[:n], ls.planes[g*64:g*64+n])
		transpose64(&a)
		for l := 0; l < ls.lanes; l++ {
			ls.lv[l].v[g] = a[l]
		}
	}
	lv := ls.lv
	for l := range lv {
		for g := (width + 63) / 64; g < BitsWords; g++ {
			lv[l].v[g] = 0
		}
	}
	ls.lvOK = true
}

// scatter rebuilds the planes from the per-lane values. Plane bits at or
// above the lane count are zeroed; they are unspecified everywhere else and
// every reader masks them off.
func (ls *laneSig) scatter(width int) {
	var a [64]uint64
	for g := 0; g*64 < width; g++ {
		for l := range a {
			a[l] = 0
		}
		for l := 0; l < ls.lanes; l++ {
			a[l] = ls.lv[l].v[g]
		}
		transpose64(&a)
		n := width - g*64
		if n > 64 {
			n = 64
		}
		copy(ls.planes[g*64:g*64+n], a[:n])
	}
	ls.plOK = true
}

// SetLanes switches a fresh simulator into lane-parallel mode with n
// independent lanes. It must be called before any signal or process is
// created.
func (sm *Simulator) SetLanes(n int) {
	if n < 2 || n > 64 {
		panic(fmt.Sprintf("sim: SetLanes(%d) out of range 2..64", n))
	}
	if len(sm.signals) > 0 || len(sm.seqs) > 0 || len(sm.combs) > 0 || sm.frozen {
		panic("sim: SetLanes after construction began")
	}
	sm.lanes = n
	if n == 64 {
		sm.laneAll = ^uint64(0)
	} else {
		sm.laneAll = 1<<uint(n) - 1
	}
	sm.activeMask = sm.laneAll
}

// Lanes returns the lane count (0 when the simulator is scalar).
func (sm *Simulator) Lanes() int { return sm.lanes }

// BeginLane enters lane l's construction context: processes and hooks
// registered until the next BeginLane/EndBuild belong to lane l, and Signal
// calls create (lane 0) or alias (later lanes) the shared signal graph.
func (sm *Simulator) BeginLane(l int) {
	if sm.lanes == 0 {
		panic("sim: BeginLane without SetLanes")
	}
	if l < 0 || l >= sm.lanes {
		panic(fmt.Sprintf("sim: BeginLane(%d) out of range 0..%d", l, sm.lanes-1))
	}
	sm.buildLane = l
	sm.curLane = l
	sm.laneSigOrd = 0
	sm.laneProcOrd = 0
}

// EndBuild leaves lane construction context.
func (sm *Simulator) EndBuild() {
	sm.buildLane = -1
	sm.curLane = -1
}

// SetLaneActive retires (or revives) lane l. An inactive lane's sequential
// closures and cycle-end hooks stop running, and signal changes confined to
// it wake no processes; the transposed segments keep computing its planes,
// which nothing observes.
func (sm *Simulator) SetLaneActive(l int, active bool) {
	if l < 0 || l >= sm.lanes {
		panic(fmt.Sprintf("sim: SetLaneActive(%d) out of range", l))
	}
	if active {
		sm.activeMask |= 1 << uint(l)
	} else {
		sm.activeMask &^= 1 << uint(l)
	}
}

// LaneActive reports whether lane l is active.
func (sm *Simulator) LaneActive(l int) bool { return sm.activeMask>>uint(l)&1 != 0 }

// ActiveMask returns the bitmask of active lanes.
func (sm *Simulator) ActiveMask() uint64 { return sm.activeMask }

// laneAlias resolves a Signal call under lane construction: lane 0 creates,
// later lanes alias by creation ordinal so all lanes share one graph.
func (sm *Simulator) laneAlias(name string, width int) *Signal {
	if sm.buildLane > 0 {
		if sm.laneSigOrd >= len(sm.laneSigs) {
			panic(fmt.Sprintf("sim: lane %d created extra signal %q; lanes must construct identically", sm.buildLane, name))
		}
		s := sm.laneSigs[sm.laneSigOrd]
		sm.laneSigOrd++
		if s.name != name || s.width != width {
			panic(fmt.Sprintf("sim: lane %d signal %q[%d] diverges from lane 0's %q[%d]; lanes must construct identically",
				sm.buildLane, name, width, s.name, s.width))
		}
		return s
	}
	s := &Signal{sim: sm, id: len(sm.signals), name: name, width: width, mask: &maskTab[width]}
	s.ls = newLaneSig(sm.lanes, width)
	sm.signals = append(sm.signals, s)
	if sm.buildLane == 0 {
		sm.laneSigs = append(sm.laneSigs, s)
	}
	return s
}

// laneGet returns lane l's committed value.
func (s *Signal) laneGet(l int) Bits {
	return *s.lanePeek(l)
}

// lanePeek is the copy-free read behind the hot scalar accessors (Bool, U64):
// it returns a pointer into the lane-value store, valid until the next
// commit. Callers must not retain or mutate it.
func (s *Signal) lanePeek(l int) *Bits {
	if l < 0 {
		panic(fmt.Sprintf("sim: lane-mode read of %q outside lane context", s.name))
	}
	ls := s.ls
	if !ls.lvOK {
		ls.gather(s.width)
	}
	return &ls.lv[l]
}

// laneSet schedules v (already width-masked) for lane l with the scalar Set
// semantics: a first write equal to the committed value is a no-op, later
// writes in the same delta overwrite the scheduled value.
func (s *Signal) laneSet(l int, v Bits) {
	if l < 0 {
		panic(fmt.Sprintf("sim: lane-mode write of %q outside lane context", s.name))
	}
	sm := s.sim
	ls := s.ls
	if ls.pend>>uint(l)&1 == 0 {
		if !ls.lvOK {
			ls.gather(s.width)
		}
		if v.Equal(ls.lv[l]) {
			return
		}
		ls.pend |= 1 << uint(l)
		if !s.pending {
			s.pending = true
			sm.pending = append(sm.pending, s)
		}
	}
	ls.next[l] = v
}

// GetLane returns lane l's committed value regardless of the current lane
// context (tests and demultiplexers).
func (s *Signal) GetLane(l int) Bits { return s.laneGet(l) }

// SetLane schedules a value for lane l regardless of the current lane
// context.
func (s *Signal) SetLane(l int, v Bits) {
	m := s.mask
	v.v[0] &= m.v[0]
	v.v[1] &= m.v[1]
	v.v[2] &= m.v[2]
	v.v[3] &= m.v[3]
	s.laneSet(l, v)
}

// commitLane applies a lane signal's pending writes — transposed plane
// stores first, then per-lane closure writes — and wakes sensitive processes
// of the lanes that changed. Fused processes and lane-less (global) processes
// wake on any active-lane change; a lane-tagged closure wakes only when its
// own lane changed, preserving the scalar wake criteria per lane. Returns
// whether any active lane changed.
func (sm *Simulator) commitLane(s *Signal) bool {
	ls := s.ls
	var diff uint64
	if ls.planePend {
		ls.planePend = false
		if !ls.plOK {
			ls.scatter(s.width)
		}
		planes, next := ls.planes, ls.nextPlanes
		for b := 0; b < s.width; b++ {
			if d := planes[b] ^ next[b]; d != 0 {
				planes[b] = next[b]
				diff |= d
			}
		}
		diff &= sm.laneAll
		if diff != 0 {
			ls.lvOK = false
		}
	}
	if ls.pend != 0 {
		if !ls.lvOK {
			ls.gather(s.width)
		}
		for m := ls.pend; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if !ls.next[l].Equal(ls.lv[l]) {
				ls.lv[l] = ls.next[l]
				ls.plOK = false
				diff |= 1 << uint(l)
			}
		}
		ls.pend = 0
	}
	diff &= sm.activeMask
	if diff == 0 {
		return false
	}
	for _, p := range s.sensitive {
		if p.fused || p.lane < 0 || diff>>uint(p.lane)&1 != 0 {
			sm.wake(p)
		}
	}
	return true
}

// linstr is one transposed bytecode instruction. Operand offsets index the
// plane arena; negative offsets (-1-i) index the constant-plane pool. Each
// operand carries its width: a plane read at or above it yields zero, the
// transposed form of zero-extension.
type linstr struct {
	op         kop
	sig, sig2  int32 // signal table indices (load/store/copy)
	dst        int32 // arena offset of the result planes
	a, b, c    int32 // operand offsets (negative: constant pool)
	lo         uint16
	w          uint16 // result width in planes
	wa, wb, wc uint16 // operand widths
}

// lw reads plane b of an operand: zero beyond the operand width, arena for
// non-negative offsets, the constant pool otherwise.
func lw(arena, consts []uint64, off int32, b int, w uint16) uint64 {
	if uint(b) >= uint(w) {
		return 0
	}
	if off >= 0 {
		return arena[int(off)+b]
	}
	return consts[int(-1-off)+b]
}

// lconstKey interns constant planes by value and width.
type lconstKey struct {
	v Bits
	w int
}

// laneCompiler translates Expr trees into transposed bytecode, one process
// at a time, sharing the signal table and constant-plane pool program-wide
// and the arena across processes (segments run sequentially; every process's
// code begins with its own loads).
type laneCompiler struct {
	pr       *program
	sigIdx   map[*Signal]int32
	constOff map[lconstKey]int32

	// per-process state
	narena   int
	maxArena int
	loadOff  map[*Signal]int32
	code     []linstr
	ok       bool
}

func newLaneCompiler(pr *program) *laneCompiler {
	return &laneCompiler{pr: pr, sigIdx: map[*Signal]int32{}, constOff: map[lconstKey]int32{}}
}

// lMaxArena bounds the shared plane arena; a process whose translation would
// overflow it falls back to its closure, like the scalar compiler's kMaxIdx.
const lMaxArena = 1 << 24

func (lc *laneCompiler) alloc(w int) int32 {
	off := lc.narena
	lc.narena += w
	if lc.narena > lMaxArena {
		lc.ok = false
		return 0
	}
	if lc.narena > lc.maxArena {
		lc.maxArena = lc.narena
	}
	return int32(off)
}

func (lc *laneCompiler) slot(s *Signal) int32 {
	if i, hit := lc.sigIdx[s]; hit {
		return i
	}
	i := int32(len(lc.pr.sigs))
	lc.pr.sigs = append(lc.pr.sigs, s)
	lc.sigIdx[s] = i
	return i
}

// constPlanes materialises a width-masked constant as broadcast planes: a set
// constant bit is all-ones across lanes. The pool is filled at compile time;
// constants cost no runtime instructions.
func (lc *laneCompiler) constPlanes(k Bits, w int) int32 {
	key := lconstKey{k, w}
	if off, hit := lc.constOff[key]; hit {
		return off
	}
	base := len(lc.pr.laneConsts)
	for b := 0; b < w; b++ {
		word := uint64(0)
		if k.Bit(b) {
			word = ^uint64(0)
		}
		lc.pr.laneConsts = append(lc.pr.laneConsts, word)
	}
	off := int32(-1 - base)
	lc.constOff[key] = off
	return off
}

func (lc *laneCompiler) emit(in linstr) { lc.code = append(lc.code, in) }

// expr translates e and returns the arena (or constant-pool) offset of its
// plane value.
func (lc *laneCompiler) expr(e *Expr) int32 {
	if !lc.ok {
		return 0
	}
	switch e.op {
	case exRead:
		if off, hit := lc.loadOff[e.sig]; hit {
			return off
		}
		off := lc.alloc(e.sig.width)
		lc.emit(linstr{op: kLoad, sig: lc.slot(e.sig), dst: off})
		lc.loadOff[e.sig] = off
		return off
	case exConst:
		return lc.constPlanes(e.k, e.w)
	case exAnd, exOr, exXor:
		a, b := lc.expr(e.a), lc.expr(e.b)
		off := lc.alloc(e.w)
		var op kop
		switch e.op {
		case exAnd:
			op = kAnd
		case exOr:
			op = kOr
		default:
			op = kXor
		}
		lc.emit(linstr{op: op, dst: off, a: a, b: b, w: uint16(e.w), wa: uint16(e.a.w), wb: uint16(e.b.w)})
		return off
	case exNot:
		a := lc.expr(e.a)
		off := lc.alloc(e.w)
		lc.emit(linstr{op: kNot, dst: off, a: a, w: uint16(e.w), wa: uint16(e.a.w)})
		return off
	case exField:
		a := lc.expr(e.a)
		off := lc.alloc(e.w)
		lc.emit(linstr{op: kField, dst: off, a: a, lo: uint16(e.lo), w: uint16(e.w), wa: uint16(e.a.w)})
		return off
	case exWithField:
		a, b := lc.expr(e.a), lc.expr(e.b)
		off := lc.alloc(e.w)
		lc.emit(linstr{op: kWithField, dst: off, a: a, b: b, lo: uint16(e.lo), w: uint16(e.w), wa: uint16(e.a.w), wb: uint16(e.b.w)})
		return off
	case exMux:
		s, t, f := lc.expr(e.a), lc.expr(e.b), lc.expr(e.c)
		off := lc.alloc(e.w)
		lc.emit(linstr{op: kMux, dst: off, a: s, b: t, c: f, w: uint16(e.w), wa: uint16(e.a.w), wb: uint16(e.b.w), wc: uint16(e.c.w)})
		return off
	case exEq, exLt:
		a, b := lc.expr(e.a), lc.expr(e.b)
		off := lc.alloc(1)
		op := kEq
		if e.op == exLt {
			op = kLt
		}
		lc.emit(linstr{op: op, dst: off, a: a, b: b, w: 1, wa: uint16(e.a.w), wb: uint16(e.b.w)})
		return off
	case exAdd:
		a, b := lc.expr(e.a), lc.expr(e.b)
		off := lc.alloc(e.w)
		lc.emit(linstr{op: kAdd, dst: off, a: a, b: b, w: uint16(e.w), wa: uint16(e.a.w), wb: uint16(e.b.w)})
		return off
	default:
		panic(fmt.Sprintf("sim: bad expr op %d", e.op))
	}
}

// proc translates one IR-declared process into transposed bytecode. seq
// selects delta-semantics plane stores.
func (lc *laneCompiler) proc(p *process, seq bool) ([]linstr, bool) {
	lc.narena = 0
	lc.loadOff = map[*Signal]int32{}
	lc.code = nil
	lc.ok = true
	for _, a := range p.ir {
		if !seq && a.Src.op == exRead {
			// Peephole: a pure plane-to-plane copy (the stbus.Bind shape).
			lc.emit(linstr{op: kCopy, sig: lc.slot(a.Dst), sig2: lc.slot(a.Src.sig)})
			continue
		}
		off := lc.expr(a.Src)
		op := kStore
		if seq {
			op = kStoreSeq
		}
		lc.emit(linstr{op: op, sig: lc.slot(a.Dst), a: off, wa: uint16(a.Src.w)})
	}
	if !lc.ok {
		return nil, false
	}
	return lc.code, true
}

// lexec interprets transposed bytecode: every operation is a loop of plain
// word ops over the result planes, evaluating all lanes at once.
func (sm *Simulator) lexec(code []linstr) {
	pr := sm.prog
	arena := pr.laneArena
	consts := pr.laneConsts
	sigs := pr.sigs
	for i := range code {
		in := &code[i]
		switch in.op {
		case kLoad:
			s := sigs[in.sig]
			ls := s.ls
			if !ls.plOK {
				ls.scatter(s.width)
			}
			copy(arena[in.dst:int(in.dst)+s.width], ls.planes[:s.width])
		case kAnd:
			for b := 0; b < int(in.w); b++ {
				arena[int(in.dst)+b] = lw(arena, consts, in.a, b, in.wa) & lw(arena, consts, in.b, b, in.wb)
			}
		case kOr:
			for b := 0; b < int(in.w); b++ {
				arena[int(in.dst)+b] = lw(arena, consts, in.a, b, in.wa) | lw(arena, consts, in.b, b, in.wb)
			}
		case kXor:
			for b := 0; b < int(in.w); b++ {
				arena[int(in.dst)+b] = lw(arena, consts, in.a, b, in.wa) ^ lw(arena, consts, in.b, b, in.wb)
			}
		case kNot:
			for b := 0; b < int(in.w); b++ {
				arena[int(in.dst)+b] = ^lw(arena, consts, in.a, b, in.wa)
			}
		case kField:
			for b := 0; b < int(in.w); b++ {
				arena[int(in.dst)+b] = lw(arena, consts, in.a, int(in.lo)+b, in.wa)
			}
		case kWithField:
			// Field width is operand b's width, as in the scalar form.
			for b := 0; b < int(in.w); b++ {
				if b >= int(in.lo) && b < int(in.lo)+int(in.wb) {
					arena[int(in.dst)+b] = lw(arena, consts, in.b, b-int(in.lo), in.wb)
				} else {
					arena[int(in.dst)+b] = lw(arena, consts, in.a, b, in.wa)
				}
			}
		case kMux:
			var sel uint64
			for j := 0; j < int(in.wa); j++ {
				sel |= lw(arena, consts, in.a, j, in.wa)
			}
			for b := 0; b < int(in.w); b++ {
				t := lw(arena, consts, in.b, b, in.wb)
				f := lw(arena, consts, in.c, b, in.wc)
				arena[int(in.dst)+b] = t&sel | f&^sel
			}
		case kEq:
			mw := int(in.wa)
			if int(in.wb) > mw {
				mw = int(in.wb)
			}
			acc := ^uint64(0)
			for j := 0; j < mw; j++ {
				acc &^= lw(arena, consts, in.a, j, in.wa) ^ lw(arena, consts, in.b, j, in.wb)
			}
			arena[in.dst] = acc
		case kLt:
			// LSB-first unsigned ripple compare: at each plane,
			// a<b there overrides, equality carries the verdict up.
			mw := int(in.wa)
			if int(in.wb) > mw {
				mw = int(in.wb)
			}
			var lt uint64
			for j := 0; j < mw; j++ {
				va := lw(arena, consts, in.a, j, in.wa)
				vb := lw(arena, consts, in.b, j, in.wb)
				lt = ^va&vb | ^(va^vb)&lt
			}
			arena[in.dst] = lt
		case kAdd:
			// Ripple-carry over the result width; planes beyond it are the
			// scalar form's mask.
			var carry uint64
			for b := 0; b < int(in.w); b++ {
				va := lw(arena, consts, in.a, b, in.wa)
				vb := lw(arena, consts, in.b, b, in.wb)
				arena[int(in.dst)+b] = va ^ vb ^ carry
				carry = va&vb | carry&(va^vb)
			}
		case kStore:
			sm.storeLaneComb(sigs[in.sig], arena, consts, in.a, in.wa)
		case kCopy:
			src := sigs[in.sig2]
			if !src.ls.plOK {
				src.ls.scatter(src.width)
			}
			sm.storeLaneComb(sigs[in.sig], src.ls.planes, nil, 0, uint16(src.width))
		case kStoreSeq:
			s := sigs[in.sig]
			ls := s.ls
			if ls.nextPlanes == nil {
				ls.nextPlanes = make([]uint64, s.width)
			}
			for b := 0; b < s.width; b++ {
				ls.nextPlanes[b] = lw(arena, consts, in.a, b, in.wa)
			}
			if !ls.planePend {
				ls.planePend = true
				if !s.pending {
					s.pending = true
					sm.pending = append(sm.pending, s)
				}
			}
		}
	}
}

// storeLaneComb commits source planes to s immediately — the transposed form
// of storeComb. Planes beyond the source width store zero (width masking is
// structural: only s.width planes exist). Wakes follow the per-lane changed
// mask, so per-lane evaluation counts match scalar runs exactly.
func (sm *Simulator) storeLaneComb(s *Signal, arena, consts []uint64, off int32, srcW uint16) {
	ls := s.ls
	if !ls.plOK {
		ls.scatter(s.width)
	}
	var diff uint64
	planes := ls.planes
	for b := 0; b < s.width; b++ {
		nv := lw(arena, consts, off, b, srcW)
		if d := planes[b] ^ nv; d != 0 {
			planes[b] = nv
			diff |= d
		}
	}
	diff &= sm.laneAll
	if diff == 0 {
		return
	}
	ls.lvOK = false
	diff &= sm.activeMask
	if diff == 0 {
		return
	}
	for _, p := range s.sensitive {
		if p.fused || p.lane < 0 || diff>>uint(p.lane)&1 != 0 {
			sm.wake(p)
		}
	}
}

// buildLaneProgram is the lane-mode elaboration of the compiled backend: the
// per-lane copies of each IR-declared process — grouped by registration
// ordinal, the position the process holds in its lane's construction sequence
// — fuse into ONE transposed segment entry compiled from lane 0's IR. The
// sibling lanes' units are consumed by that entry; closure processes and
// cyclic SCCs keep their levelized units per lane. Rank order puts lane 0's
// unit first within each group (lanes register in ascending id order and the
// per-lane graphs are isomorphic), so a group is always compiled before its
// siblings are encountered.
func (sm *Simulator) buildLaneProgram() {
	pr := &program{}
	lc := newLaneCompiler(pr)

	combG := map[int][]*process{}
	for _, p := range sm.combs {
		if p.lane >= 0 && p.ir != nil {
			combG[p.ord] = append(combG[p.ord], p)
		}
	}
	// A group fuses when it is complete across lanes and every member is a
	// singleton acyclic IR unit.
	fuse := map[*process][]*process{}
	inFuse := map[*process]bool{}
	for _, p := range sm.combs {
		if p.lane != 0 || p.ir == nil {
			continue
		}
		g := combG[p.ord]
		if len(g) != sm.lanes {
			continue
		}
		ok := true
		for _, q := range g {
			u := sm.units[q.unit]
			if u.cyclic || len(u.procs) != 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		fuse[p] = g
		for _, q := range g {
			inFuse[q] = true
		}
	}

	var cur *progSeg
	flush := func() {
		if cur != nil {
			pr.segs = append(pr.segs, cur)
			cur = nil
		}
	}
	unqueue := func(p *process) {
		if p.inQ {
			p.inQ = false
			sm.units[p.unit].queued--
			sm.totalQueued--
		}
	}
	for _, u := range sm.units {
		if len(u.procs) == 1 && inFuse[u.procs[0]] {
			p := u.procs[0]
			if p.lane != 0 {
				// Sibling of an already-compiled group: its segment entry
				// covers it.
				unqueue(p)
				continue
			}
			code, ok := lc.proc(p, false)
			if ok {
				g := fuse[p]
				if cur == nil {
					cur = &progSeg{entIdx: len(pr.sched), dirty: true}
					pr.sched = append(pr.sched, schedEnt{seg: cur})
				}
				cur.lcode = append(cur.lcode, code...)
				cur.lprocs0++
				for _, q := range g {
					cur.procs = append(cur.procs, q)
					q.fused = true
					q.seg = cur
					q.segEnt = cur.entIdx
					unqueue(q)
				}
				pr.fusedProcs += len(g)
				pr.fusedOps += len(code)
				continue
			}
			// Translation overflow: the whole group falls back to closures.
			for _, q := range fuse[p] {
				delete(inFuse, q)
			}
			delete(fuse, p)
		}
		flush()
		pr.sched = append(pr.sched, schedEnt{unit: u})
	}
	flush()

	// Sequential groups compile to one transposed program on the lane-0
	// process; the siblings are marked as lane duplicates and skipped by Step.
	seqG := map[int][]*process{}
	for _, p := range sm.seqs {
		if p.lane >= 0 && p.ir != nil {
			seqG[p.ord] = append(seqG[p.ord], p)
		}
	}
	for _, p := range sm.seqs {
		if p.lane != 0 || p.ir == nil {
			continue
		}
		g := seqG[p.ord]
		if len(g) != sm.lanes {
			continue
		}
		code, ok := lc.proc(p, true)
		if !ok {
			continue
		}
		p.lseqCode = code
		for _, q := range g {
			if q != p {
				q.laneDup = true
				p.laneSibs = append(p.laneSibs, q)
			}
		}
		pr.fusedProcs += len(g)
		pr.fusedOps += len(code)
	}

	pr.laneArena = make([]uint64, lc.maxArena)
	sm.prog = pr
}

// runLaneSeg executes one transposed segment: one pass evaluates every
// member process for every lane. Eval accounting splits machine work
// (compiledEvals, one per lane-0 process) from lane-equivalent work
// (fusedLaneEvals, times the active lane count) — their ratio against
// closureEvals is the divergence rate of Stats.
func (sm *Simulator) runLaneSeg(seg *progSeg) {
	if sm.Timing && seg.runs&7 == 0 {
		t0 := nowNS()
		sm.lexec(seg.lcode)
		seg.sampleNS += nowNS() - t0
	} else {
		sm.lexec(seg.lcode)
	}
	seg.runs++
	sm.compiledEvals += uint64(seg.lprocs0)
	sm.fusedLaneEvals += uint64(seg.lprocs0) * uint64(bits.OnesCount64(sm.activeMask))
}

// runLaneSeqProg executes the transposed program of a sequential group in
// lane 0's registration slot; the sibling slots are skipped.
func (sm *Simulator) runLaneSeqProg(p *process) {
	p.evals++
	sm.compiledEvals++
	sm.fusedLaneEvals += uint64(bits.OnesCount64(sm.activeMask))
	if sm.Timing && p.evals&7 == 1 {
		t0 := nowNS()
		sm.lexec(p.lseqCode)
		p.sampleNS += nowNS() - t0
		return
	}
	sm.lexec(p.lseqCode)
}
