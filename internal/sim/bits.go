// Package sim implements a small deterministic discrete-event simulation
// kernel with SystemC-like evaluate/update (delta cycle) semantics.
//
// The kernel is the substrate that replaces the SystemC + NCSim stack used by
// the paper: both the RTL view and the BCA view of an IP are modelled as
// processes reading and writing Signals, driven by a single synchronous clock
// owned by the Simulator. Two kinds of processes exist:
//
//   - sequential processes (Seq) run once per rising clock edge and model
//     registered logic;
//   - combinational processes (Comb) are sensitive to a set of signals and
//     re-run, within the same cycle, until every signal is stable ("delta
//     cycles"), modelling zero-delay combinational logic such as arbitration
//     grant trees.
//
// All scheduling is deterministic: processes run in registration order, so a
// given testbench and seed always produce the same waveforms — a property the
// paper's alignment methodology (same tests, same seeds, two models) depends
// on.
package sim

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// BitsWords is the number of 64-bit words backing a Bits value. STBus data
// ports range from 8 to 256 bits, so four words suffice for every signal in
// the system.
const BitsWords = 4

// MaxBitsWidth is the widest representable vector.
const MaxBitsWidth = 64 * BitsWords

// Bits is a fixed-capacity bit vector of up to 256 bits, the value type
// carried by every Signal. The zero value is a zero-valued vector of width 0;
// widths are carried by signals, and Bits values are normalised (masked) to
// the width of wherever they are stored.
type Bits struct {
	v [BitsWords]uint64
}

// B64 builds a Bits from a single 64-bit value.
func B64(v uint64) Bits {
	var b Bits
	b.v[0] = v
	return b
}

// BBool builds a single-bit Bits from a bool.
func BBool(v bool) Bits {
	if v {
		return B64(1)
	}
	return Bits{}
}

// BWords builds a Bits from up to four little-endian 64-bit words.
func BWords(words ...uint64) Bits {
	var b Bits
	if len(words) > BitsWords {
		panic(fmt.Sprintf("sim: BWords given %d words, max %d", len(words), BitsWords))
	}
	copy(b.v[:], words)
	return b
}

// Uint64 returns the low 64 bits of the vector.
func (b Bits) Uint64() uint64 { return b.v[0] }

// Bool reports whether the vector is non-zero.
func (b Bits) Bool() bool {
	return b.v[0]|b.v[1]|b.v[2]|b.v[3] != 0
}

// Word returns the i-th little-endian 64-bit word.
func (b Bits) Word(i int) uint64 { return b.v[i] }

// Equal reports exact equality of two vectors.
func (b Bits) Equal(o Bits) bool { return b.v == o.v }

// IsZero reports whether every bit is clear.
func (b Bits) IsZero() bool { return !b.Bool() }

// maskTab[w] has the low w bits set; Mask is on the kernel's hottest path
// (every Signal write masks to the signal width), so the masks are built
// once and applied branch-free.
var maskTab = func() [MaxBitsWidth + 1]Bits {
	var t [MaxBitsWidth + 1]Bits
	for w := 1; w <= MaxBitsWidth; w++ {
		t[w] = t[w-1].SetBit(w-1, true)
	}
	return t
}()

//go:noinline
func panicMaskWidth(w int) {
	panic(fmt.Sprintf("sim: mask width %d out of range", w))
}

// Mask returns b truncated to width w bits.
func (b Bits) Mask(w int) Bits {
	if uint(w) > MaxBitsWidth {
		panicMaskWidth(w)
	}
	m := &maskTab[w]
	b.v[0] &= m.v[0]
	b.v[1] &= m.v[1]
	b.v[2] &= m.v[2]
	b.v[3] &= m.v[3]
	return b
}

// Bit returns bit i as a bool.
func (b Bits) Bit(i int) bool {
	if i < 0 || i >= MaxBitsWidth {
		panic(fmt.Sprintf("sim: bit index %d out of range", i))
	}
	return b.v[i/64]>>(uint(i)%64)&1 == 1
}

// SetBit returns a copy of b with bit i set to v.
func (b Bits) SetBit(i int, v bool) Bits {
	if i < 0 || i >= MaxBitsWidth {
		panic(fmt.Sprintf("sim: bit index %d out of range", i))
	}
	if v {
		b.v[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.v[i/64] &^= 1 << (uint(i) % 64)
	}
	return b
}

// ones returns a Bits with the low w bits set.
func ones(w int) Bits {
	var r Bits
	full := w / 64
	for i := 0; i < full; i++ {
		r.v[i] = ^uint64(0)
	}
	if rem := w % 64; rem != 0 {
		r.v[full] = ^uint64(0) >> (64 - rem)
	}
	return r
}

// shl returns b shifted left by n bits (n in 0..MaxBitsWidth).
func (b Bits) shl(n int) Bits {
	word, off := n/64, uint(n)%64
	var r Bits
	for i := BitsWords - 1; i >= word; i-- {
		r.v[i] = b.v[i-word] << off
		if off != 0 && i-word-1 >= 0 {
			r.v[i] |= b.v[i-word-1] >> (64 - off)
		}
	}
	return r
}

// shr returns b shifted right by n bits (n in 0..MaxBitsWidth).
func (b Bits) shr(n int) Bits {
	word, off := n/64, uint(n)%64
	var r Bits
	for i := 0; i+word < BitsWords; i++ {
		r.v[i] = b.v[i+word] >> off
		if off != 0 && i+word+1 < BitsWords {
			r.v[i] |= b.v[i+word+1] << (64 - off)
		}
	}
	return r
}

// Byte returns byte i of the vector (byte 0 is bits 7..0). It is the
// byte-aligned special case of Field(i*8, 8), cheap enough for the per-byte
// lane packing the STBus data path performs on every cell.
func (b Bits) Byte(i int) byte {
	if i < 0 || i >= BitsWords*8 {
		panic(fmt.Sprintf("sim: byte %d out of range", i))
	}
	return byte(b.v[i>>3] >> (uint(i&7) * 8))
}

// WithByte returns a copy of b with byte i replaced — the byte-aligned
// special case of WithField(i*8, 8, val).
func (b Bits) WithByte(i int, val byte) Bits {
	if i < 0 || i >= BitsWords*8 {
		panic(fmt.Sprintf("sim: byte %d out of range", i))
	}
	sh := uint(i&7) * 8
	b.v[i>>3] = b.v[i>>3]&^(uint64(0xff)<<sh) | uint64(val)<<sh
	return b
}

// Field extracts w bits starting at bit lo as the low bits of the result.
// It panics if the field crosses the 256-bit capacity.
func (b Bits) Field(lo, w int) Bits {
	if lo < 0 || w < 0 || lo+w > MaxBitsWidth {
		panic(fmt.Sprintf("sim: field [%d +%d] out of range", lo, w))
	}
	return b.shr(lo).Mask(w)
}

// WithField returns a copy of b with w bits starting at lo replaced by the
// low w bits of val.
func (b Bits) WithField(lo, w int, val Bits) Bits {
	if lo < 0 || w < 0 || lo+w > MaxBitsWidth {
		panic(fmt.Sprintf("sim: field [%d +%d] out of range", lo, w))
	}
	m := ones(w).shl(lo)
	v := val.Mask(w).shl(lo)
	for i := range b.v {
		b.v[i] = b.v[i]&^m.v[i] | v.v[i]
	}
	return b
}

// Add returns the multi-word sum of two vectors, wrapping at 256 bits.
// Callers model a w-bit hardware adder by masking the result to w.
func (b Bits) Add(o Bits) Bits {
	var r Bits
	var c uint64
	for i := range r.v {
		r.v[i], c = mathbits.Add64(b.v[i], o.v[i], c)
	}
	return r
}

// Ult reports whether b is less than o as unsigned 256-bit integers.
func (b Bits) Ult(o Bits) bool {
	for i := BitsWords - 1; i >= 0; i-- {
		if b.v[i] != o.v[i] {
			return b.v[i] < o.v[i]
		}
	}
	return false
}

// Xor returns the bitwise exclusive-or of two vectors.
func (b Bits) Xor(o Bits) Bits {
	var r Bits
	for i := range r.v {
		r.v[i] = b.v[i] ^ o.v[i]
	}
	return r
}

// Or returns the bitwise or of two vectors.
func (b Bits) Or(o Bits) Bits {
	var r Bits
	for i := range r.v {
		r.v[i] = b.v[i] | o.v[i]
	}
	return r
}

// And returns the bitwise and of two vectors.
func (b Bits) And(o Bits) Bits {
	var r Bits
	for i := range r.v {
		r.v[i] = b.v[i] & o.v[i]
	}
	return r
}

// Not returns the bitwise complement of b truncated to width w.
func (b Bits) Not(w int) Bits {
	var r Bits
	for i := range r.v {
		r.v[i] = ^b.v[i]
	}
	return r.Mask(w)
}

// BinaryString renders the low w bits most-significant-first, the form VCD
// value changes use.
func (b Bits) BinaryString(w int) string {
	if w <= 0 {
		return "0"
	}
	var sb strings.Builder
	sb.Grow(w)
	for i := w - 1; i >= 0; i-- {
		if b.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// String renders the vector as a compact hexadecimal literal.
func (b Bits) String() string {
	if b.v[1] == 0 && b.v[2] == 0 && b.v[3] == 0 {
		return fmt.Sprintf("0x%x", b.v[0])
	}
	return fmt.Sprintf("0x%x_%016x_%016x_%016x", b.v[3], b.v[2], b.v[1], b.v[0])
}

// ParseBinary parses a most-significant-first binary string, as found in VCD
// value-change records.
func ParseBinary(s string) (Bits, error) {
	if len(s) == 0 {
		return Bits{}, fmt.Errorf("sim: empty binary string")
	}
	if len(s) > MaxBitsWidth {
		return Bits{}, fmt.Errorf("sim: binary string %d bits exceeds capacity %d", len(s), MaxBitsWidth)
	}
	var b Bits
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			b = b.SetBit(len(s)-1-i, true)
		case '0', 'x', 'X', 'z', 'Z':
			// x/z collapse to 0, as the kernel is two-valued.
		default:
			return Bits{}, fmt.Errorf("sim: bad binary digit %q", s[i])
		}
	}
	return b, nil
}
