// Package fabric is the whole-topology static-analysis layer: where
// internal/lint judges one node configuration at a time, fabric elaborates a
// multi-node bind/port graph — nodes, converters, memories, register
// decoders and external initiators wired back to back like the paper's
// Figure 1 — without constructing a simulator, and checks the graph as a
// whole. It is the admissibility oracle for generated fabrics (ROADMAP item
// 4): a topology that passes has compatible port configurations on every
// bind edge, no black-holed or shadowed address windows across hops, no
// dangling or doubly-driven port bundles, distinguishable source IDs on
// every return path, and an acyclic (therefore levelizable) bind graph.
//
// Topologies are described in a line-oriented *.fab file:
//
//	# instances
//	node  nodeA  nodeA.cfg            # config path, relative to the .fab file
//	conv  sz     t3/64/little t3/32/little
//	init  cpu    t3/64/little src=0
//	mem   ram    t3/32/little 0x1000:0x1000
//	regdec regs  t2/32/little 0x2000:8  # base:num_regs (4 bytes per register)
//
//	# edges: bind FROM TO, request flow left to right
//	bind  cpu      sz.up
//	bind  sz.down  nodeA.init0
//	bind  nodeA.tgt0 ram
//
// A port spec is type/data_bits/endian with an optional /addr_bits
// (default 32): t3/64/little, t2/32/big/40. Port references are
// instance.port (node: init0..initN-1, tgt0..tgtN-1; converter: up, down);
// single-port endpoints (init, mem, regdec) are referenced by bare instance
// name. bind's FROM must be a port where the component drives requests
// (init, conv.down, node.tgtK) and TO one where it receives them (mem,
// regdec, conv.up, node.initK).
package fabric

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"crve/internal/lint"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Role is the request-flow direction of a port bundle.
type Role int

const (
	// RoleInit marks a port where the owning component drives requests
	// (external initiator, converter down side, node target port).
	RoleInit Role = iota
	// RoleTgt marks a port where the owning component receives requests
	// (memory, register decoder, converter up side, node initiator port).
	RoleTgt
)

func (r Role) String() string {
	if r == RoleInit {
		return "request-driving"
	}
	return "request-receiving"
}

// Kind discriminates the instance types of a topology.
type Kind int

const (
	KindNode Kind = iota
	KindConv
	KindInit
	KindMem
	KindRegDec
)

func (k Kind) String() string {
	switch k {
	case KindNode:
		return "node"
	case KindConv:
		return "conv"
	case KindInit:
		return "init"
	case KindMem:
		return "mem"
	case KindRegDec:
		return "regdec"
	default:
		return fmt.Sprintf("kind?%d", int(k))
	}
}

// Port is one port bundle of an instance in the elaborated graph. Bound is
// set during bind resolution; nil means the bundle is dangling.
type Port struct {
	Inst *Instance
	Name string // local port name: "init0", "tgt1", "up", "down", "port"
	// Idx is the port index within its role on the owning node (init2 ->
	// 2); 0 for converter and endpoint ports.
	Idx  int
	Role Role
	Cfg  stbus.PortConfig
	// Bound is the bind edge this port participates in (at most one; a
	// second bind of the same bundle is CRVE021).
	Bound *Bind
}

// Path returns instance.port, the reference syntax of the .fab file.
func (p *Port) Path() string {
	if p.Inst.Kind == KindNode || p.Inst.Kind == KindConv {
		return p.Inst.Name + "." + p.Name
	}
	return p.Inst.Name
}

// Bind is one edge of the graph: From drives requests into To.
type Bind struct {
	Line     int
	From, To *Port
}

// Instance is one component of the topology.
type Instance struct {
	Kind Kind
	Name string
	Line int // declaration line in the .fab file

	// KindNode only.
	CfgFile string          // as resolved (joined with the .fab directory)
	Cfg     nodespec.Config // defaults applied; zero when the config failed to load
	CfgOK   bool            // config loaded, parsed and lints without errors

	// KindConv only.
	Up, Down stbus.PortConfig

	// KindInit only.
	Src int // source ID driven on the src wires (default: declaration order)

	// KindInit, KindMem, KindRegDec.
	Port stbus.PortConfig

	// KindMem, KindRegDec: the address window the endpoint serves
	// ([Base, Base+Size), regdec: Size = 4 * num_regs).
	Base, Size uint64

	// Ports are the instance's bundles in declaration order: nodes have
	// init0..initN-1 then tgt0..tgtN-1, converters up then down, endpoints a
	// single bundle.
	Ports []*Port
}

// PortByName resolves a local port name ("" for single-port endpoints).
func (in *Instance) PortByName(name string) *Port {
	for _, p := range in.Ports {
		if p.Name == name {
			return p
		}
	}
	if name == "" && len(in.Ports) == 1 {
		return in.Ports[0]
	}
	return nil
}

// Topology is the elaborated bind/port graph of one .fab file plus the
// diagnostics accumulated while building it.
type Topology struct {
	File   string
	Insts  []*Instance
	Binds  []*Bind
	byName map[string]*Instance

	// Configs are the node configuration sources referenced by the topology,
	// deduplicated by path, in first-reference order. Check lints each of
	// them, so a fabric report covers the per-node rules too.
	Configs []lint.Source

	// Diags holds the parse- and elaboration-stage diagnostics (CRVE000:
	// syntax, unknown references, unreadable configs). Check prepends them
	// to its report.
	Diags []lint.Diagnostic
}

// ConfigLoader loads one node configuration file into a lint source. It is
// a parameter (rather than a direct call into internal/regress) so regress
// can depend on fabric for its gate without an import cycle; callers outside
// regress use regress.CheckFabric, which supplies the standard loader.
type ConfigLoader func(path string) (lint.Source, error)

// LoadFile parses the topology file at path, loading referenced node
// configurations through load. Only I/O failures on the .fab file itself are
// returned as errors; everything else — syntax, unknown references,
// unreadable configs — becomes a CRVE000 diagnostic on the topology, so a
// directory of topologies lints in one pass like a directory of configs.
func LoadFile(path string, load ConfigLoader) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(path, f, load), nil
}

// CheckFile is the LoadFile + Check convenience used by the CLI gates.
func CheckFile(path string, load ConfigLoader) (*lint.Report, error) {
	t, err := LoadFile(path, load)
	if err != nil {
		return nil, err
	}
	return t.Check(), nil
}

// Parse reads a topology description from r. file names the source for
// diagnostic positions and anchors relative config paths.
func Parse(file string, r io.Reader, load ConfigLoader) *Topology {
	t := &Topology{File: file, byName: map[string]*Instance{}}
	loaded := map[string]lint.Source{}
	numInits := 0
	type pendingBind struct {
		line     int
		from, to string
	}
	var pending []pendingBind

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		kw, args := fields[0], fields[1:]
		switch kw {
		case "node":
			if !t.wantArgs(line, kw, args, 2, "node NAME CONFIG_PATH") {
				continue
			}
			in := t.declare(line, KindNode, args[0])
			if in == nil {
				continue
			}
			in.CfgFile = args[1]
			if dir := filepath.Dir(file); dir != "." && !filepath.IsAbs(in.CfgFile) {
				in.CfgFile = filepath.Join(dir, in.CfgFile)
			}
			src, ok := loaded[in.CfgFile]
			if !ok {
				var err error
				src, err = load(in.CfgFile)
				if err != nil {
					t.errf(line, "node %s: cannot load config: %v", in.Name, err)
					continue
				}
				loaded[in.CfgFile] = src
				t.Configs = append(t.Configs, src)
			}
			in.Cfg = src.Cfg.WithDefaults()
			in.CfgOK = true // demoted by Check when the config lints with errors
			t.nodePorts(in)
		case "conv":
			if !t.wantArgs(line, kw, args, 3, "conv NAME UP_SPEC DOWN_SPEC") {
				continue
			}
			up, err := ParsePortSpec(args[1])
			if err != nil {
				t.errf(line, "conv %s: %v", args[0], err)
				continue
			}
			down, err := ParsePortSpec(args[2])
			if err != nil {
				t.errf(line, "conv %s: %v", args[0], err)
				continue
			}
			in := t.declare(line, KindConv, args[0])
			if in == nil {
				continue
			}
			in.Up, in.Down = up, down
			in.Ports = []*Port{
				{Inst: in, Name: "up", Role: RoleTgt, Cfg: up},
				{Inst: in, Name: "down", Role: RoleInit, Cfg: down},
			}
		case "init":
			if len(args) != 2 && len(args) != 3 {
				t.errf(line, "init takes 2 or 3 arguments (init NAME SPEC [src=N]), got %d", len(args))
				continue
			}
			cfg, err := ParsePortSpec(args[1])
			if err != nil {
				t.errf(line, "init %s: %v", args[0], err)
				continue
			}
			src := numInits
			if len(args) == 3 {
				val, ok := strings.CutPrefix(args[2], "src=")
				if !ok {
					t.errf(line, "init %s: expected src=N, got %q", args[0], args[2])
					continue
				}
				src, err = strconv.Atoi(val)
				if err != nil {
					t.errf(line, "init %s: bad src %q", args[0], val)
					continue
				}
			}
			in := t.declare(line, KindInit, args[0])
			if in == nil {
				continue
			}
			numInits++
			in.Port, in.Src = cfg, src
			in.Ports = []*Port{{Inst: in, Name: "port", Role: RoleInit, Cfg: cfg}}
		case "mem", "regdec":
			usage := kw + " NAME SPEC BASE:SIZE"
			if kw == "regdec" {
				usage = "regdec NAME SPEC BASE:NUM_REGS"
			}
			if !t.wantArgs(line, kw, args, 3, usage) {
				continue
			}
			cfg, err := ParsePortSpec(args[1])
			if err != nil {
				t.errf(line, "%s %s: %v", kw, args[0], err)
				continue
			}
			base, size, err := parseWindow(args[2])
			if err != nil {
				t.errf(line, "%s %s: %v", kw, args[0], err)
				continue
			}
			kind := KindMem
			if kw == "regdec" {
				kind = KindRegDec
				size *= 4 // the decoder serves 4 bytes per register
			}
			in := t.declare(line, kind, args[0])
			if in == nil {
				continue
			}
			in.Port, in.Base, in.Size = cfg, base, size
			in.Ports = []*Port{{Inst: in, Name: "port", Role: RoleTgt, Cfg: cfg}}
		case "bind":
			if !t.wantArgs(line, kw, args, 2, "bind FROM TO") {
				continue
			}
			pending = append(pending, pendingBind{line, args[0], args[1]})
		default:
			t.errf(line, "unknown directive %q", kw)
		}
	}
	if err := sc.Err(); err != nil {
		t.errf(line, "%v", err)
	}

	// Binds resolve in a second pass so edges may reference instances
	// declared later in the file.
	for _, pb := range pending {
		from := t.resolvePort(pb.line, pb.from)
		to := t.resolvePort(pb.line, pb.to)
		if from == nil || to == nil {
			continue
		}
		t.Binds = append(t.Binds, &Bind{Line: pb.line, From: from, To: to})
	}
	return t
}

// declare registers a new instance, rejecting duplicate names.
func (t *Topology) declare(line int, kind Kind, name string) *Instance {
	if strings.ContainsAny(name, ".=") || name == "" {
		t.errf(line, "bad instance name %q", name)
		return nil
	}
	if prev, ok := t.byName[name]; ok {
		t.errf(line, "instance %s already declared on line %d", name, prev.Line)
		return nil
	}
	in := &Instance{Kind: kind, Name: name, Line: line}
	t.byName[name] = in
	t.Insts = append(t.Insts, in)
	return in
}

// nodePorts builds a node's port bundles from its configuration. A config
// with insane port counts gets no bundles: every bind referencing them then
// fails to resolve, which is the right cascade (the count itself is already
// a CRVE014 on the config).
func (t *Topology) nodePorts(in *Instance) {
	if in.Cfg.NumInit < 1 || in.Cfg.NumInit > nodespec.MaxPorts ||
		in.Cfg.NumTgt < 1 || in.Cfg.NumTgt > nodespec.MaxPorts {
		return
	}
	for i := 0; i < in.Cfg.NumInit; i++ {
		in.Ports = append(in.Ports, &Port{
			Inst: in, Name: fmt.Sprintf("init%d", i), Idx: i, Role: RoleTgt, Cfg: in.Cfg.Port,
		})
	}
	for i := 0; i < in.Cfg.NumTgt; i++ {
		in.Ports = append(in.Ports, &Port{
			Inst: in, Name: fmt.Sprintf("tgt%d", i), Idx: i, Role: RoleInit, Cfg: in.Cfg.Port,
		})
	}
}

// resolvePort resolves an instance.port (or bare endpoint) reference.
func (t *Topology) resolvePort(line int, ref string) *Port {
	instName, portName, _ := strings.Cut(ref, ".")
	in, ok := t.byName[instName]
	if !ok {
		t.errf(line, "bind references unknown instance %q", instName)
		return nil
	}
	p := in.PortByName(portName)
	if p == nil {
		t.errf(line, "instance %s (%v) has no port %q", instName, in.Kind, portName)
		return nil
	}
	return p
}

func (t *Topology) wantArgs(line int, kw string, args []string, n int, usage string) bool {
	if len(args) != n {
		t.errf(line, "%s takes %d arguments (%s), got %d", kw, n, usage, len(args))
		return false
	}
	return true
}

// errf records a parse/elaboration failure as a CRVE000 diagnostic.
func (t *Topology) errf(line int, format string, args ...any) {
	t.Diags = append(t.Diags, lint.Diagnostic{
		Pos:      lint.Position{File: t.File, Line: line},
		Code:     lint.CodeParse,
		Severity: lint.Error,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// ParsePortSpec parses the type/data_bits/endian[/addr_bits] port syntax of
// topology files, e.g. "t3/64/little" or "t2/32/big/40".
func ParsePortSpec(spec string) (stbus.PortConfig, error) {
	var cfg stbus.PortConfig
	parts := strings.Split(spec, "/")
	if len(parts) != 3 && len(parts) != 4 {
		return cfg, fmt.Errorf("bad port spec %q (want type/data_bits/endian[/addr_bits])", spec)
	}
	switch parts[0] {
	case "t1":
		cfg.Type = stbus.Type1
	case "t2":
		cfg.Type = stbus.Type2
	case "t3":
		cfg.Type = stbus.Type3
	default:
		return cfg, fmt.Errorf("bad protocol type %q in port spec", parts[0])
	}
	bits, err := strconv.Atoi(parts[1])
	if err != nil {
		return cfg, fmt.Errorf("bad data width %q in port spec", parts[1])
	}
	cfg.DataBits = bits
	switch parts[2] {
	case "little":
		cfg.Endian = stbus.LittleEndian
	case "big":
		cfg.Endian = stbus.BigEndian
	default:
		return cfg, fmt.Errorf("bad endianness %q in port spec", parts[2])
	}
	if len(parts) == 4 {
		ab, err := strconv.Atoi(parts[3])
		if err != nil {
			return cfg, fmt.Errorf("bad address width %q in port spec", parts[3])
		}
		cfg.AddrBits = ab
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// parseWindow parses BASE:SIZE with 0x-prefixed or decimal numbers.
func parseWindow(s string) (base, size uint64, err error) {
	bs, ss, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad window %q (want base:size)", s)
	}
	if base, err = strconv.ParseUint(bs, 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad window base %q", bs)
	}
	if size, err = strconv.ParseUint(ss, 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad window size %q", ss)
	}
	return base, size, nil
}
