package fabric

import (
	"fmt"
	"sort"
	"strings"

	"crve/internal/lint"
)

// Check analyzes the elaborated topology as a whole and returns the full
// report: the parse/elaboration diagnostics, the per-configuration lint of
// every referenced config, and the fabric-level rules CRVE018–CRVE023.
func (t *Topology) Check() *lint.Report {
	r := &lint.Report{}
	r.Diags = append(r.Diags, t.Diags...)

	// Per-config lint of every referenced configuration, once per file. A
	// config that lints with errors demotes its nodes to CfgOK=false: the
	// address-window math below would only cascade on a broken map.
	badCfg := map[string]bool{}
	for _, src := range t.Configs {
		cr := lint.Check(src)
		r.Diags = append(r.Diags, cr.Diags...)
		if cr.HasErrors() {
			badCfg[src.File] = true
		}
	}
	for _, in := range t.Insts {
		if in.Kind == KindNode && badCfg[in.CfgFile] {
			in.CfgOK = false
		}
	}

	valid := t.checkBinds(r)
	t.checkDangling(r)
	t.checkSrcRange(r)
	// Cycle-free is the precondition for the window walks: on a cyclic graph
	// the recursion below would not terminate, and reachability through a
	// combinational loop is meaningless anyway.
	if t.checkCycles(r, valid) {
		t.checkServed(r)
		t.checkReach(r)
	}
	r.Sort()
	return r
}

// checkBinds validates every edge — role direction, single-binding, port
// configuration compatibility (CRVE018/CRVE021) — plus each converter's own
// up/down address-width coupling, and returns the structurally usable edges.
func (t *Topology) checkBinds(r *lint.Report) []*Bind {
	var valid []*Bind
	for _, b := range t.Binds {
		pos := lint.Position{File: t.File, Line: b.Line}
		if b.From.Role != RoleInit || b.To.Role != RoleTgt {
			bad := b.From
			if b.From.Role == RoleInit {
				bad = b.To
			}
			r.Addf(pos, lint.CodeFabricDangling, lint.Error,
				"bind %s -> %s: %s is a %v port (requests must flow from a request-driving port into a request-receiving one)",
				b.From.Path(), b.To.Path(), bad.Path(), bad.Role)
			continue
		}
		double := false
		for _, p := range []*Port{b.From, b.To} {
			if p.Bound != nil {
				r.Addf(pos, lint.CodeFabricDangling, lint.Error,
					"port %s is already bound on line %d: a bundle drives exactly one bind edge",
					p.Path(), p.Bound.Line)
				double = true
			}
		}
		if double {
			continue
		}
		b.From.Bound, b.To.Bound = b, b
		valid = append(valid, b)
		if b.From.Cfg != b.To.Cfg {
			r.Addf(pos, lint.CodeBindMismatch, lint.Error,
				"bind %s (%v) -> %s (%v): port configurations differ: %s",
				b.From.Path(), b.From.Cfg, b.To.Path(), b.To.Cfg,
				strings.Join(b.From.Cfg.Diff(b.To.Cfg), ", "))
		}
	}
	for _, in := range t.Insts {
		if in.Kind == KindConv && in.Up.AddrBits != in.Down.AddrBits {
			r.Addf(lint.Position{File: t.File, Line: in.Line}, lint.CodeBindMismatch, lint.Error,
				"converter %s translates width and protocol but not addresses: up/down address widths differ (%d vs %d)",
				in.Name, in.Up.AddrBits, in.Down.AddrBits)
		}
	}
	return valid
}

// checkDangling reports every port bundle that ended up in no bind edge.
func (t *Topology) checkDangling(r *lint.Report) {
	for _, in := range t.Insts {
		for _, p := range in.Ports {
			if p.Bound == nil {
				r.Addf(lint.Position{File: t.File, Line: in.Line}, lint.CodeFabricDangling, lint.Error,
					"port %s is dangling: the bundle is bound to nothing", p.Path())
			}
		}
	}
}

// checkSrcRange reports initiators whose source ID cannot be driven on the
// 8-bit src wires.
func (t *Topology) checkSrcRange(r *lint.Report) {
	for _, in := range t.Insts {
		if in.Kind == KindInit && (in.Src < 0 || in.Src > 255) {
			r.Addf(lint.Position{File: t.File, Line: in.Line}, lint.CodeFabricSrcID, lint.Error,
				"initiator %s source ID %d does not fit the 8-bit src field", in.Name, in.Src)
		}
	}
}

// checkCycles detects cycles in the instance digraph induced by the bind
// edges (requests flow From -> To). The gnt/r_gnt chains of bound components
// are combinational, so any topological loop is a combinational cycle
// regardless of address routing. Returns whether the graph is acyclic.
func (t *Topology) checkCycles(r *lint.Report, valid []*Bind) bool {
	adj := map[*Instance][]*Bind{}
	for _, b := range valid {
		adj[b.From.Inst] = append(adj[b.From.Inst], b)
	}
	const (
		white = iota
		gray
		black
	)
	color := map[*Instance]int{}
	acyclic := true
	var stack []*Instance
	var dfs func(in *Instance)
	dfs = func(in *Instance) {
		color[in] = gray
		stack = append(stack, in)
		for _, b := range adj[in] {
			switch v := b.To.Inst; color[v] {
			case white:
				dfs(v)
			case gray:
				acyclic = false
				start := 0
				for i, s := range stack {
					if s == v {
						start = i
						break
					}
				}
				names := make([]string, 0, len(stack)-start+1)
				for _, s := range stack[start:] {
					names = append(names, s.Name)
				}
				names = append(names, v.Name)
				r.Addf(lint.Position{File: t.File, Line: b.Line}, lint.CodeFabricCycle, lint.Error,
					"combinational cycle in the bind graph: %s", strings.Join(names, " -> "))
			}
		}
		stack = stack[:len(stack)-1]
		color[in] = black
	}
	for _, in := range t.Insts {
		if color[in] == white {
			dfs(in)
		}
	}
	return acyclic
}

// window is an inclusive address interval [lo, hi]; the inclusive form
// avoids 2^64 overflow for full 64-bit spaces.
type window struct{ lo, hi uint64 }

func (w window) String() string { return fmt.Sprintf("%#x..%#x", w.lo, w.hi) }

// winFrom builds the window of a base:size range, clamping a wrap past the
// 64-bit space (the per-config lint already errors on wrapping regions).
func winFrom(base, size uint64) (window, bool) {
	if size == 0 {
		return window{}, false
	}
	if end := base + size; end > base {
		return window{base, end - 1}, true
	}
	return window{base, ^uint64(0)}, true
}

// fullWindow is the entire address space of an addrBits-wide port.
func fullWindow(addrBits int) window {
	if addrBits >= 64 {
		return window{0, ^uint64(0)}
	}
	return window{0, uint64(1)<<addrBits - 1}
}

func intersect(a, b window) (window, bool) {
	lo, hi := max(a.lo, b.lo), min(a.hi, b.hi)
	if lo > hi {
		return window{}, false
	}
	return window{lo, hi}, true
}

// normalize sorts and merges overlapping or adjacent windows.
func normalize(ws []window) []window {
	if len(ws) == 0 {
		return nil
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].lo < ws[j].lo })
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if last.hi == ^uint64(0) || w.lo <= last.hi+1 {
			last.hi = max(last.hi, w.hi)
			continue
		}
		out = append(out, w)
	}
	return out
}

// subtract returns the parts of target not covered by the normalized served
// set.
func subtract(target window, served []window) []window {
	var gaps []window
	lo := target.lo
	for _, s := range served {
		if s.hi < target.lo || s.lo > target.hi {
			continue
		}
		if s.lo > lo {
			gaps = append(gaps, window{lo, s.lo - 1})
		}
		if s.hi == ^uint64(0) || s.hi+1 > target.hi {
			return gaps
		}
		lo = max(lo, s.hi+1)
	}
	if lo <= target.hi {
		gaps = append(gaps, window{lo, target.hi})
	}
	return gaps
}

func fmtWindows(ws []window) string {
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = w.String()
	}
	return strings.Join(parts, ", ")
}

// serve computes which parts of win the fabric hanging below target-role
// port p actually answers: endpoints clip to their own range, converters
// pass through, nodes route per address-map region (respecting the partial
// crossbar as seen from the arrival port) and serve their programming
// window internally. A node whose config lints with errors optimistically
// serves everything — its map is already diagnosed and would only cascade.
func serve(p *Port, win window) []window {
	in := p.Inst
	switch in.Kind {
	case KindMem, KindRegDec:
		if w, ok := winFrom(in.Base, in.Size); ok {
			if hit, ok := intersect(win, w); ok {
				return []window{hit}
			}
		}
		return nil
	case KindConv:
		down := in.PortByName("down")
		if down == nil || down.Bound == nil {
			return nil
		}
		return serve(down.Bound.To, win)
	case KindNode:
		if !in.CfgOK {
			return []window{win}
		}
		var out []window
		cfg := in.Cfg
		for _, reg := range cfg.Map {
			rw, ok := winFrom(reg.Base, reg.Size)
			if !ok {
				continue
			}
			hit, ok := intersect(win, rw)
			if !ok || !cfg.Connected(p.Idx, reg.Target) {
				continue
			}
			tp := in.PortByName(fmt.Sprintf("tgt%d", reg.Target))
			if tp == nil || tp.Bound == nil {
				continue
			}
			out = append(out, serve(tp.Bound.To, hit)...)
		}
		if cfg.ProgPort {
			if pw, ok := winFrom(cfg.ProgBase, uint64(4*cfg.NumInit)); ok {
				if hit, ok := intersect(win, pw); ok {
					out = append(out, hit)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// checkServed verifies, node by node, that every address-map region is
// actually answered by the fabric downstream of its target port: a region
// none of which is served is black-holed (CRVE019), a region only part of
// which is served is shadowed (CRVE020). The check is initiator-independent,
// so it fires even for windows no current initiator happens to address.
func (t *Topology) checkServed(r *lint.Report) {
	for _, in := range t.Insts {
		if in.Kind != KindNode || !in.CfgOK {
			continue
		}
		pos := lint.Position{File: t.File, Line: in.Line}
		for _, reg := range in.Cfg.Map {
			rw, ok := winFrom(reg.Base, reg.Size)
			if !ok {
				continue
			}
			tp := in.PortByName(fmt.Sprintf("tgt%d", reg.Target))
			if tp == nil || tp.Bound == nil {
				continue // the dangling port is already CRVE021
			}
			served := normalize(serve(tp.Bound.To, rw))
			if len(served) == 0 {
				r.Addf(pos, lint.CodeFabricUnreachable, lint.Error,
					"node %s map region %s (-> tgt%d) is black-holed: nothing downstream serves any of it",
					in.Name, rw, reg.Target)
				continue
			}
			if gaps := subtract(rw, served); len(gaps) > 0 {
				r.Addf(pos, lint.CodeFabricShadow, lint.Warning,
					"node %s map region %s (-> tgt%d) is only partially served downstream: %s unserved",
					in.Name, rw, reg.Target, fmtWindows(gaps))
			}
		}
	}
}

// checkReach walks the fabric from every external initiator, marking which
// (node, region) pairs its requests can touch given the crossbar matrices
// along the way, and which node initiator-ports it arrives through. Regions
// no initiator touches are CRVE019; two initiators (or one initiator via two
// different arrival ports) presenting the same source ID at one node are
// CRVE022 — the node's learned src->port response routing cannot tell their
// responses apart.
func (t *Topology) checkReach(r *lint.Report) {
	touched := map[*Instance]map[int]bool{}
	visits := map[*Instance]map[int]map[*Instance]bool{}
	type memoKey struct {
		p   *Port
		ext *Instance
		win window
	}
	seen := map[memoKey]bool{}

	var walk func(p *Port, win window, ext *Instance)
	walk = func(p *Port, win window, ext *Instance) {
		key := memoKey{p, ext, win}
		if seen[key] {
			return
		}
		seen[key] = true
		in := p.Inst
		switch in.Kind {
		case KindConv:
			down := in.PortByName("down")
			if down != nil && down.Bound != nil {
				walk(down.Bound.To, win, ext)
			}
		case KindNode:
			if visits[in] == nil {
				visits[in] = map[int]map[*Instance]bool{}
			}
			if visits[in][p.Idx] == nil {
				visits[in][p.Idx] = map[*Instance]bool{}
			}
			visits[in][p.Idx][ext] = true
			if !in.CfgOK {
				return
			}
			if touched[in] == nil {
				touched[in] = map[int]bool{}
			}
			for ri, reg := range in.Cfg.Map {
				rw, ok := winFrom(reg.Base, reg.Size)
				if !ok {
					continue
				}
				hit, ok := intersect(win, rw)
				if !ok || !in.Cfg.Connected(p.Idx, reg.Target) {
					continue
				}
				touched[in][ri] = true
				tp := in.PortByName(fmt.Sprintf("tgt%d", reg.Target))
				if tp != nil && tp.Bound != nil {
					walk(tp.Bound.To, hit, ext)
				}
			}
		}
	}
	for _, in := range t.Insts {
		if in.Kind != KindInit || in.Ports[0].Bound == nil {
			continue
		}
		walk(in.Ports[0].Bound.To, fullWindow(in.Port.AddrBits), in)
	}

	for _, in := range t.Insts {
		if in.Kind != KindNode || !in.CfgOK {
			continue
		}
		pos := lint.Position{File: t.File, Line: in.Line}
		for ri, reg := range in.Cfg.Map {
			rw, ok := winFrom(reg.Base, reg.Size)
			if ok && !touched[in][ri] {
				r.Addf(pos, lint.CodeFabricUnreachable, lint.Error,
					"node %s map region %s (-> tgt%d) is reachable by no external initiator",
					in.Name, rw, reg.Target)
			}
		}

		// Source-ID convergence: group the external initiators arriving at
		// this node by the source ID they present; the same ID through two
		// different arrival ports is ambiguous on the return path.
		type arrival struct {
			port int
			ext  *Instance
		}
		bySrc := map[int][]arrival{}
		for port := 0; port < in.Cfg.NumInit; port++ {
			for _, ext := range t.Insts { // declaration order, deterministic
				if ext.Kind == KindInit && visits[in][port][ext] {
					bySrc[ext.Src] = append(bySrc[ext.Src], arrival{port, ext})
				}
			}
		}
		srcs := make([]int, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, s := range srcs {
			arr := bySrc[s]
			for _, a := range arr[1:] {
				if a.port != arr[0].port {
					r.Addf(pos, lint.CodeFabricSrcID, lint.Error,
						"source ID %d arrives at node %s through both init%d (from %s) and init%d (from %s): response routing is ambiguous",
						s, in.Name, arr[0].port, arr[0].ext.Name, a.port, a.ext.Name)
					break
				}
			}
		}
	}
}
