package fabric_test

import (
	"fmt"
	"strings"
	"testing"

	"crve/internal/fabric"
	"crve/internal/lint"
	"crve/internal/regress"
)

// mapLoader serves node configs from an in-memory map, mirroring the
// ConfigLoader regress supplies from disk.
func mapLoader(files map[string]string) fabric.ConfigLoader {
	return func(path string) (lint.Source, error) {
		text, ok := files[path]
		if !ok {
			return lint.Source{}, fmt.Errorf("no such config %s", path)
		}
		return regress.ParseSource(path, strings.NewReader(text)), nil
	}
}

const n2x2 = `
name      = n2x2
type      = t3
data_bits = 32
num_init  = 2
num_tgt   = 2
arch      = full
map       = 0x1000:0x1000:0, 0x2000:0x1000:1
`

const n1x1 = `
name      = n1x1
type      = t3
data_bits = 32
num_init  = 1
num_tgt   = 1
map       = 0x1000:0x1000:0
`

var testCfgs = map[string]string{"n2x2.cfg": n2x2, "n1x1.cfg": n1x1}

// check parses a topology from source text and runs the whole-fabric check.
func check(t *testing.T, fab string) *lint.Report {
	t.Helper()
	top := fabric.Parse("test.fab", strings.NewReader(fab), mapLoader(testCfgs))
	return top.Check()
}

func codeStrings(r *lint.Report) []string {
	var out []string
	for _, d := range r.Diags {
		out = append(out, string(d.Code))
	}
	return out
}

func wantCode(t *testing.T, r *lint.Report, code lint.Code) lint.Diagnostic {
	t.Helper()
	ds := r.ByCode(code)
	if len(ds) == 0 {
		t.Fatalf("no %s diagnostic; got %v", code, codeStrings(r))
	}
	return ds[0]
}

func wantNoCode(t *testing.T, r *lint.Report, code lint.Code) {
	t.Helper()
	if ds := r.ByCode(code); len(ds) > 0 {
		t.Fatalf("unexpected %s: %v", code, ds)
	}
}

const goodFab = `
node n    n2x2.cfg
init cpu0 t3/32/little
init cpu1 t3/32/little
mem  m0   t3/32/little 0x1000:0x1000
mem  m1   t3/32/little 0x2000:0x1000
bind cpu0   n.init0
bind cpu1   n.init1
bind n.tgt0 m0
bind n.tgt1 m1
`

func TestGoodTopologyIsClean(t *testing.T) {
	r := check(t, goodFab)
	if len(r.Diags) != 0 {
		t.Fatalf("good topology not clean:\n%v", r.Diags)
	}
}

func TestBindMismatch(t *testing.T) {
	fab := strings.Replace(goodFab, "init cpu0 t3/32/little", "init cpu0 t3/64/little", 1)
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeBindMismatch)
	if !strings.Contains(d.Msg, "data_bits 64 vs 32") {
		t.Errorf("CRVE018 message lacks the field diff: %s", d.Msg)
	}
	if d.Pos.File != "test.fab" || d.Pos.Line == 0 {
		t.Errorf("CRVE018 not positioned at the bind line: %v", d.Pos)
	}
}

func TestConverterAddrWidthMismatch(t *testing.T) {
	fab := `
conv c t3/64/little/40 t3/32/little/32
init cpu t3/64/little/40
mem  m   t3/32/little 0x1000:0x1000
bind cpu    c.up
bind c.down m
`
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeBindMismatch)
	if !strings.Contains(d.Msg, "address widths differ (40 vs 32)") {
		t.Errorf("converter CRVE018 message: %s", d.Msg)
	}
}

func TestConverterChainIsClean(t *testing.T) {
	fab := `
node n    n1x1.cfg
init cpu  t3/64/little
conv sz   t3/64/little t3/32/little
mem  m    t3/32/little 0x1000:0x1000
bind cpu     sz.up
bind sz.down n.init0
bind n.tgt0  m
`
	r := check(t, fab)
	if len(r.Diags) != 0 {
		t.Fatalf("converter chain not clean:\n%v", r.Diags)
	}
}

func TestBlackholedWindow(t *testing.T) {
	// m1 serves 0x8000.. but the node routes 0x2000..0x2fff at it.
	fab := strings.Replace(goodFab, "mem  m1   t3/32/little 0x2000:0x1000", "mem  m1   t3/32/little 0x8000:0x1000", 1)
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeFabricUnreachable)
	if !strings.Contains(d.Msg, "black-holed") {
		t.Errorf("CRVE019 message: %s", d.Msg)
	}
	wantNoCode(t, r, lint.CodeFabricShadow)
}

func TestShadowedWindow(t *testing.T) {
	// m1 serves only the second half of the node's 0x2000..0x2fff region.
	fab := strings.Replace(goodFab, "mem  m1   t3/32/little 0x2000:0x1000", "mem  m1   t3/32/little 0x2800:0x800", 1)
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeFabricShadow)
	if !strings.Contains(d.Msg, "0x2000..0x27ff unserved") {
		t.Errorf("CRVE020 message lacks the gap: %s", d.Msg)
	}
	if d.Severity != lint.Warning {
		t.Errorf("CRVE020 severity = %v, want warning", d.Severity)
	}
}

func TestTwoHopChainClean(t *testing.T) {
	// cpu0 reaches m0 through two cascaded nodes; cpu1 attaches to the
	// downstream node directly, covering its second region.
	fab := `
node up   n1x1.cfg
node down n2x2.cfg
init cpu0 t3/32/little
init cpu1 t3/32/little
mem  m0   t3/32/little 0x1000:0x1000
mem  m1   t3/32/little 0x2000:0x1000
bind cpu0      up.init0
bind up.tgt0   down.init0
bind cpu1      down.init1
bind down.tgt0 m0
bind down.tgt1 m1
`
	r := check(t, fab)
	if len(r.Diags) != 0 {
		t.Fatalf("two-hop fabric not clean:\n%v", r.Diags)
	}
}

func TestShadowAcrossHops(t *testing.T) {
	// The upstream node claims 0x1000..0x2fff in one region, but the
	// downstream node only maps (and its memory only serves) 0x1000..0x1fff:
	// the upper half is shadowed two hops up.
	cfgs := map[string]string{
		"n1x1.cfg": n1x1,
		"wide.cfg": `
name      = wide
type      = t3
data_bits = 32
num_init  = 1
num_tgt   = 1
map       = 0x1000:0x2000:0
`,
	}
	fab := `
node up   wide.cfg
node down n1x1.cfg
init cpu  t3/32/little
mem  m    t3/32/little 0x1000:0x1000
bind cpu       up.init0
bind up.tgt0   down.init0
bind down.tgt0 m
`
	top := fabric.Parse("test.fab", strings.NewReader(fab), mapLoader(cfgs))
	r := top.Check()
	d := wantCode(t, r, lint.CodeFabricShadow)
	if !strings.Contains(d.Msg, "0x2000..0x2fff unserved") {
		t.Errorf("across-hop CRVE020 message: %s", d.Msg)
	}
}

func TestDanglingPort(t *testing.T) {
	fab := strings.Replace(goodFab, "bind cpu1   n.init1\n", "", 1)
	fab = strings.Replace(fab, "init cpu1 t3/32/little\n", "", 1)
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeFabricDangling)
	if !strings.Contains(d.Msg, "n.init1") || !strings.Contains(d.Msg, "dangling") {
		t.Errorf("CRVE021 message: %s", d.Msg)
	}
	// The full crossbar still reaches every region via cpu0: no CRVE019.
	wantNoCode(t, r, lint.CodeFabricUnreachable)
}

func TestDoublyBoundPort(t *testing.T) {
	fab := goodFab + "bind cpu0 n.init1\n"
	r := check(t, fab)
	found := false
	for _, d := range r.ByCode(lint.CodeFabricDangling) {
		if strings.Contains(d.Msg, "already bound") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no doubly-bound CRVE021: %v", r.Diags)
	}
}

func TestRoleMismatchedBind(t *testing.T) {
	fab := strings.Replace(goodFab, "bind n.tgt0 m0", "bind m0 n.tgt0", 1)
	r := check(t, fab)
	found := false
	for _, d := range r.ByCode(lint.CodeFabricDangling) {
		if strings.Contains(d.Msg, "request-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no role-mismatch CRVE021: %v", r.Diags)
	}
}

func TestSrcCollision(t *testing.T) {
	fab := strings.Replace(goodFab, "init cpu1 t3/32/little", "init cpu1 t3/32/little src=0", 1)
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeFabricSrcID)
	for _, want := range []string{"source ID 0", "cpu0", "cpu1", "ambiguous"} {
		if !strings.Contains(d.Msg, want) {
			t.Errorf("CRVE022 message missing %q: %s", want, d.Msg)
		}
	}
}

func TestSrcOverflow(t *testing.T) {
	fab := strings.Replace(goodFab, "init cpu1 t3/32/little", "init cpu1 t3/32/little src=256", 1)
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeFabricSrcID)
	if !strings.Contains(d.Msg, "8-bit") {
		t.Errorf("CRVE022 overflow message: %s", d.Msg)
	}
}

func TestCombinationalCycle(t *testing.T) {
	fab := `
node a n2x2.cfg
node b n2x2.cfg
init cpu0 t3/32/little
init cpu1 t3/32/little
mem  m0 t3/32/little 0x1000:0x1000
mem  m1 t3/32/little 0x1000:0x1000
bind cpu0   a.init0
bind cpu1   b.init0
bind a.tgt0 m0
bind b.tgt0 m1
bind a.tgt1 b.init1
bind b.tgt1 a.init1
`
	r := check(t, fab)
	d := wantCode(t, r, lint.CodeFabricCycle)
	if !strings.Contains(d.Msg, " -> ") {
		t.Errorf("CRVE023 message lacks the cycle path: %s", d.Msg)
	}
	// With a cyclic graph the window walks are skipped: no cascade.
	wantNoCode(t, r, lint.CodeFabricUnreachable)
}

func TestCrossbarBlocksRegion(t *testing.T) {
	// A partial crossbar whose only initiator rows reach target 0: the
	// region routed at target 1 is reachable by no initiator.
	partial := `
name      = part
type      = t3
data_bits = 32
num_init  = 2
num_tgt   = 2
arch      = partial
allowed   = 10,10
map       = 0x1000:0x1000:0, 0x2000:0x1000:1
`
	cfgs := map[string]string{"part.cfg": partial}
	fab := `
node n    part.cfg
init cpu0 t3/32/little
init cpu1 t3/32/little
mem  m0   t3/32/little 0x1000:0x1000
mem  m1   t3/32/little 0x2000:0x1000
bind cpu0   n.init0
bind cpu1   n.init1
bind n.tgt0 m0
bind n.tgt1 m1
`
	top := fabric.Parse("test.fab", strings.NewReader(fab), mapLoader(cfgs))
	r := top.Check()
	// The config itself warns (CRVE010 isolated target); the fabric check
	// must flag the unreachable region too.
	d := wantCode(t, r, lint.CodeFabricUnreachable)
	if !strings.Contains(d.Msg, "reachable by no external initiator") {
		t.Errorf("CRVE019 message: %s", d.Msg)
	}
}

func TestBrokenConfigDoesNotCascade(t *testing.T) {
	bad := map[string]string{"bad.cfg": "type = t9\n"}
	fab := `
node n   bad.cfg
init cpu t3/32/little
bind cpu n.init0
`
	top := fabric.Parse("test.fab", strings.NewReader(fab), mapLoader(bad))
	r := top.Check()
	if !r.HasErrors() {
		t.Fatal("broken config produced no errors")
	}
	wantNoCode(t, r, lint.CodeFabricUnreachable)
	wantNoCode(t, r, lint.CodeFabricShadow)
}

func TestParseDiagnostics(t *testing.T) {
	fab := `
widget w
node n nope.cfg
init cpu t3/99/little
bind cpu ghost.init0
`
	top := fabric.Parse("test.fab", strings.NewReader(fab), mapLoader(nil))
	r := top.Check()
	parse := r.ByCode(lint.CodeParse)
	if len(parse) < 4 {
		t.Fatalf("want >=4 CRVE000 (unknown directive, unloadable config, bad spec, unknown ref), got %v", parse)
	}
	for _, d := range parse {
		if d.Pos.Line == 0 {
			t.Errorf("parse diagnostic without a line: %v", d)
		}
	}
}

func TestProgWindowServedInternally(t *testing.T) {
	prog := `
name      = prog
type      = t3
data_bits = 32
num_init  = 1
num_tgt   = 1
req_arb   = programmable
map       = 0x1000:0x1000:0
prog_port = true
prog_base = 0x4000
`
	cfgs := map[string]string{"prog.cfg": prog, "n1x1.cfg": n1x1}
	// Upstream node routes 0x4000..0x4003 (the 4-byte priority register of
	// the downstream 1-init node) downstream; the prog window serves it.
	up := `
name      = up
type      = t3
data_bits = 32
num_init  = 1
num_tgt   = 1
map       = 0x1000:0x1000:0, 0x4000:4:0
`
	cfgs["up.cfg"] = up
	fab := `
node u   up.cfg
node n   prog.cfg
init cpu t3/32/little
mem  m   t3/32/little 0x1000:0x1000
bind cpu    u.init0
bind u.tgt0 n.init0
bind n.tgt0 m
`
	top := fabric.Parse("test.fab", strings.NewReader(fab), mapLoader(cfgs))
	r := top.Check()
	if r.HasErrors() {
		t.Fatalf("prog-window fabric has errors:\n%v", r.Diags)
	}
}
