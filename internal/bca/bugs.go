// Package bca implements the bus-cycle-accurate (BCA) view of the STBus
// node: the "SystemC model" of the paper. It implements NODE-SPEC.md
// independently of internal/rtl — the two packages share only the protocol
// vocabulary (internal/stbus), the parameter set (internal/nodespec) and the
// arbitration policy specification (internal/arb), mirroring the paper's
// situation where the BCA and RTL models were written by different teams
// against the same functional specification.
//
// The package offers the model in two forms:
//
//   - Node — the model wrapped for the common verification environment: it
//     drives and samples real signals on a sim.Simulator, exactly like the
//     RTL view (the paper's Figure 3 wrapper stack). In this form the fast
//     transaction-level engine pays full signal-level cost, reproducing the
//     paper's observation that "the advantage of having fast SystemC
//     simulator is lost" when the model is plugged through the wrapper.
//
//   - Standalone — the engine driven by plain function calls, no simulator,
//     the way the model owner originally ran it. This is the fast form the
//     paper's Section 1 motivates, benchmarked in experiment E5.
//
// Bugs reproduces the paper's headline result ("The verification environment
// permitted to find five bugs on BCA models, not found using old
// environment"): five seedable, historically plausible model bugs that the
// common environment catches and the past flow does not.
package bca

// Bugs selects which of the five seeded BCA model bugs are active. The zero
// value is the fixed (signed-off) model.
type Bugs struct {
	// LRUInit mis-initialises the LRU arbitration state at reset, so the
	// first grants under contention go to the wrong initiator. Invisible to
	// single-initiator directed tests; caught by the alignment comparison
	// and by arbitration-order checkers under random multi-initiator
	// traffic.
	LRUInit bool
	// ChunkLckIgnored releases the target allocation at every end-of-packet,
	// ignoring a high lck: chunked transactions can be interleaved by other
	// initiators. Caught by the chunk-atomicity protocol checker.
	ChunkLckIgnored bool
	// PipeOffByOne accepts PipeSize+1 outstanding packets before
	// back-pressuring. Invisible with the old write-then-read harness (one
	// outstanding at a time); caught by the pipe-occupancy checker and by
	// alignment divergence under saturating random traffic.
	PipeOffByOne bool
	// ErrRespTIDZero builds error responses with tid 0 instead of echoing
	// the request tid, breaking Type III out-of-order matching on error
	// paths. The old flow never generated unmapped addresses.
	ErrRespTIDZero bool
	// T2OrderIgnored skips the Type II same-target ordering rule, letting
	// responses from targets of different speed return out of order on an
	// ordered protocol. Caught by the ordering protocol checker and the
	// scoreboard.
	T2OrderIgnored bool
}

// Any reports whether at least one bug is enabled.
func (b Bugs) Any() bool {
	return b.LRUInit || b.ChunkLckIgnored || b.PipeOffByOne || b.ErrRespTIDZero || b.T2OrderIgnored
}

// List returns the names of the enabled bugs.
func (b Bugs) List() []string {
	var out []string
	if b.LRUInit {
		out = append(out, "lru-init")
	}
	if b.ChunkLckIgnored {
		out = append(out, "chunk-lck-ignored")
	}
	if b.PipeOffByOne {
		out = append(out, "pipe-off-by-one")
	}
	if b.ErrRespTIDZero {
		out = append(out, "err-resp-tid-zero")
	}
	if b.T2OrderIgnored {
		out = append(out, "t2-order-ignored")
	}
	return out
}

// AllBugs enumerates each bug individually, for the E2 detection matrix.
func AllBugs() []Bugs {
	return []Bugs{
		{LRUInit: true},
		{ChunkLckIgnored: true},
		{PipeOffByOne: true},
		{ErrRespTIDZero: true},
		{T2OrderIgnored: true},
	}
}

// BugNames lists the bug identifiers in the same order as AllBugs.
func BugNames() []string {
	return []string{"lru-init", "chunk-lck-ignored", "pipe-off-by-one", "err-resp-tid-zero", "t2-order-ignored"}
}
