package bca

import (
	"fmt"
	"math/rand"

	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// StandaloneConfig parameterises a standalone BCA run: the engine driven by
// plain function calls with built-in traffic generators and memory targets,
// no signal kernel — the fast simulation mode the paper's introduction
// motivates.
type StandaloneConfig struct {
	Node nodespec.Config
	// Seed drives the per-initiator traffic generators.
	Seed int64
	// OpsPerInit is the number of operations each initiator issues.
	OpsPerInit int
	// MemLatency is the response latency of every standalone memory target.
	MemLatency int
	// MaxCycles aborts a run that fails to drain (0 = generous default).
	MaxCycles uint64
}

// StandaloneResult summarises a standalone run.
type StandaloneResult struct {
	Cycles    uint64
	Completed int
	Errors    int
}

// standalone target: a plain-Go memory model with fixed latency.
type saMem struct {
	lat   int
	cyc   uint64
	cur   []stbus.Cell
	queue []struct {
		resp    []stbus.RespCell
		readyAt uint64
		idx     int
	}
	mem map[uint64]byte
}

func (m *saMem) canAccept() bool { return len(m.queue) < 4 }

func (m *saMem) capture(cfg stbus.PortConfig, c stbus.Cell) {
	m.cur = append(m.cur, c)
	if !c.EOP {
		return
	}
	head := m.cur[0]
	var rd []byte
	if head.Opc.IsLoad() {
		rd = make([]byte, head.Opc.SizeBytes())
		for i := range rd {
			rd[i] = m.mem[head.Addr+uint64(i)]
		}
	}
	if head.Opc.HasWriteData() {
		for i, b := range stbus.ExtractWriteData(cfg.Endian, m.cur, cfg.BusBytes()) {
			m.mem[head.Addr+uint64(i)] = b
		}
	}
	resp, err := stbus.BuildResponse(cfg.Type, cfg.Endian, head.Opc, head.Addr, rd,
		cfg.BusBytes(), head.TID, head.Src, false)
	if err != nil {
		resp = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: head.TID, Src: head.Src}}
	}
	m.queue = append(m.queue, struct {
		resp    []stbus.RespCell
		readyAt uint64
		idx     int
	}{resp: resp, readyAt: m.cyc + uint64(m.lat)})
	m.cur = nil
}

func (m *saMem) offering() (stbus.RespCell, bool) {
	if len(m.queue) == 0 || m.cyc < m.queue[0].readyAt {
		return stbus.RespCell{}, false
	}
	return m.queue[0].resp[m.queue[0].idx], true
}

func (m *saMem) pop() {
	m.queue[0].idx++
	if m.queue[0].idx == len(m.queue[0].resp) {
		m.queue = m.queue[1:]
	}
}

// saDriver generates and streams seeded random packets for one initiator.
type saDriver struct {
	cells []stbus.Cell
	idx   int
}

// genTraffic builds the request stream of initiator i.
func genTraffic(cfg nodespec.Config, rng *rand.Rand, i, ops int) []stbus.Cell {
	sizes := []int{1, 2, 4, 8, 16, 32}
	var out []stbus.Cell
	for k := 0; k < ops; k++ {
		region := cfg.Map[rng.Intn(len(cfg.Map))]
		size := sizes[rng.Intn(len(sizes))]
		kind := stbus.KindLoad
		if rng.Intn(2) == 1 {
			kind = stbus.KindStore
		}
		op := stbus.Op(kind, size)
		span := region.Size - uint64(size)
		addr := region.Base + (uint64(rng.Int63())%(span/uint64(size)+1))*uint64(size)
		var payload []byte
		if op.HasWriteData() {
			payload = make([]byte, size)
			rng.Read(payload)
		}
		cells, err := stbus.BuildRequest(cfg.Port.Type, cfg.Port.Endian, op, addr, payload,
			cfg.Port.BusBytes(), uint8(k), uint8(i), 0, false)
		if err != nil {
			continue
		}
		out = append(out, cells...)
	}
	return out
}

// RunStandalone drives the BCA engine with function-call harnesses and
// returns the run summary. It performs the same per-cycle handshakes as the
// wrapped co-simulation, without any signal kernel — this is what makes the
// standalone BCA fast (experiment E5).
func RunStandalone(cfg StandaloneConfig) (StandaloneResult, error) {
	eng, err := newEngine(cfg.Node, Bugs{})
	if err != nil {
		return StandaloneResult{}, err
	}
	nc := eng.cfg
	if cfg.OpsPerInit == 0 {
		cfg.OpsPerInit = 100
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = uint64(cfg.OpsPerInit) * uint64(nc.NumInit) * 1000
	}
	drivers := make([]*saDriver, nc.NumInit)
	expected := 0
	for i := range drivers {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		drivers[i] = &saDriver{cells: genTraffic(nc, rng, i, cfg.OpsPerInit)}
		for _, c := range drivers[i].cells {
			if c.EOP {
				expected++
			}
		}
	}
	mems := make([]*saMem, nc.NumTgt)
	for t := range mems {
		mems[t] = &saMem{lat: cfg.MemLatency, mem: map[uint64]byte{}}
	}
	in := NewInputs(nc)
	curTgtReq := make([]bool, nc.NumTgt)
	curTgtCell := make([]stbus.Cell, nc.NumTgt)
	curInitRsp := make([]bool, nc.NumInit)
	curInitRC := make([]stbus.RespCell, nc.NumInit)
	gnt := make([]bool, nc.NumInit)
	rgnt := make([]bool, nc.NumTgt)

	res := StandaloneResult{}
	for cyc := uint64(0); res.Completed < expected; cyc++ {
		if cyc > cfg.MaxCycles {
			return res, fmt.Errorf("bca: standalone run stalled after %d cycles (%d/%d responses)",
				cyc, res.Completed, expected)
		}
		// Snapshot the engine drives visible this cycle.
		copy(curTgtReq, eng.out.TgtReq)
		copy(curTgtCell, eng.out.TgtCell)
		copy(curInitRsp, eng.out.InitRsp)
		copy(curInitRC, eng.out.InitRC)
		// Build the cycle's inputs.
		for i, d := range drivers {
			if d.idx < len(d.cells) {
				c := d.cells[d.idx]
				in.Req[i] = true
				in.Addr[i] = c.Addr
				in.EOP[i] = c.EOP
				in.Lck[i] = c.Lck
				in.Pri[i] = c.Pri
			} else {
				in.Req[i] = false
				in.Addr[i], in.EOP[i], in.Lck[i], in.Pri[i] = 0, false, false, 0
			}
			in.RGnt[i] = true
		}
		for t, m := range mems {
			m.cyc = cyc
			in.TgtGnt[t] = m.canAccept()
			cell, ok := m.offering()
			in.TgtRResp[t] = ok
			in.TgtRSrc[t] = cell.Src
		}
		eng.Plan(in)
		copy(gnt, eng.out.Gnt)
		copy(rgnt, eng.out.RGnt)
		eng.Commit(in,
			func(i int) stbus.Cell { return drivers[i].cells[drivers[i].idx] },
			func(t int) stbus.RespCell { c, _ := mems[t].offering(); return c })
		// Harness bookkeeping for the completed cycle.
		for i, d := range drivers {
			if gnt[i] && d.idx < len(d.cells) {
				d.idx++
			}
			if curInitRsp[i] && in.RGnt[i] && curInitRC[i].EOP {
				res.Completed++
				if curInitRC[i].Err() {
					res.Errors++
				}
			}
		}
		for t, m := range mems {
			if curTgtReq[t] && in.TgtGnt[t] {
				m.capture(nc.Port, curTgtCell[t])
			}
			if rgnt[t] {
				if _, ok := m.offering(); ok {
					m.pop()
				}
			}
		}
		res.Cycles = cyc + 1
	}
	return res, nil
}
