package bca

import (
	"testing"

	"crve/internal/stbus"
)

func TestEngineFacadeBasicGrant(t *testing.T) {
	cfg := cfg3(2, 1)
	eng, err := NewEngine(cfg, Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInputs(cfg.WithDefaults())
	// Both initiators request target 0; priority policy grants initiator 0.
	in.Req[0], in.Req[1] = true, true
	in.Addr[0], in.Addr[1] = 0x1000, 0x1004
	in.EOP[0], in.EOP[1] = true, true
	in.RGnt[0], in.RGnt[1] = true, true
	in.TgtGnt[0] = true
	eng.Plan(in)
	out := eng.Out()
	if !out.Gnt[0] || out.Gnt[1] {
		t.Fatalf("grants = %v, want initiator 0 only", out.Gnt)
	}
	cell := stbus.Cell{Opc: stbus.LD4, Addr: 0x1000, BE: 0xf, EOP: true, TID: 1, Src: 0}
	eng.Commit(in,
		func(int) stbus.Cell { return cell },
		func(int) stbus.RespCell { return stbus.RespCell{} })
	if eng.Inflight(0) != 1 || eng.Inflight(1) != 0 {
		t.Errorf("inflight %d/%d", eng.Inflight(0), eng.Inflight(1))
	}
	if !out.TgtReq[0] || out.TgtCell[0] != cell {
		t.Errorf("forwarding stage not loaded: %v %v", out.TgtReq[0], out.TgtCell[0])
	}
}

func TestEngineFacadeNoGrantWithoutRequest(t *testing.T) {
	cfg := cfg3(2, 2)
	eng, err := NewEngine(cfg, Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInputs(cfg.WithDefaults())
	eng.Plan(in)
	for i, g := range eng.Out().Gnt {
		if g {
			t.Errorf("grant to idle initiator %d", i)
		}
	}
}

func TestEngineFacadeRejectsBadConfig(t *testing.T) {
	cfg := cfg3(0, 1)
	if _, err := NewEngine(cfg, Bugs{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEngineStringAndWrappedString(t *testing.T) {
	eng, err := newEngine(cfg3(1, 1), Bugs{LRUInit: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.String() == "" {
		t.Error("engine String empty")
	}
}
