package bca

import (
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Engine exposes the transaction-level node model for direct integration —
// the "ports approach" of the paper's future work (internal/tlm). The
// wrapped Node and the standalone runner are built on the same engine.
type Engine struct {
	e *engine
}

// NewEngine builds a transaction-level node model.
func NewEngine(cfg nodespec.Config, bugs Bugs) (*Engine, error) {
	e, err := newEngine(cfg, bugs)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// Plan computes the cycle's grants from the settled inputs (pure; callable
// repeatedly until inputs settle).
func (en *Engine) Plan(in *Inputs) { en.e.Plan(in) }

// Commit advances the model by one clock edge; reqCell/respCell fetch the
// payloads of the transfers the final Plan granted.
func (en *Engine) Commit(in *Inputs, reqCell func(i int) stbus.Cell, respCell func(t int) stbus.RespCell) {
	en.e.Commit(in, reqCell, respCell)
}

// Out returns the engine's live output record: grants from the last Plan and
// registered drives from the last Commit.
func (en *Engine) Out() *Outputs { return &en.e.out }

// Inflight returns the outstanding-packet count of initiator i.
func (en *Engine) Inflight(i int) int { return en.e.Inflight(i) }
