package bca

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// ---- shared deterministic testbench pieces (driver + memory model) ----

type tbInit struct {
	p      *stbus.Port
	toSend []stbus.Cell
	idx    int
	resp   []stbus.RespCell
}

func attachInit(sm *sim.Simulator, p *stbus.Port) *tbInit {
	tb := &tbInit{p: p}
	sm.Seq(p.Name+".drv", func() {
		if tb.idx < len(tb.toSend) && p.ReqFire() {
			tb.idx++
		}
		if tb.idx < len(tb.toSend) {
			p.DriveCell(tb.toSend[tb.idx])
		} else {
			p.IdleReq()
		}
		if p.RespFire() {
			tb.resp = append(tb.resp, p.SampleResp())
		}
		p.RGnt.SetBool(true)
	})
	return tb
}

func (tb *tbInit) send(cells []stbus.Cell) { tb.toSend = append(tb.toSend, cells...) }

func (tb *tbInit) respPackets() [][]stbus.RespCell {
	var out [][]stbus.RespCell
	var cur []stbus.RespCell
	for _, c := range tb.resp {
		cur = append(cur, c)
		if c.EOP {
			out = append(out, cur)
			cur = nil
		}
	}
	return out
}

type tbMem struct {
	mem map[uint64]byte
	cur []stbus.Cell
	q   []*tbPkt
	cyc uint64
	lat uint64
}

type tbPkt struct {
	resp    []stbus.RespCell
	readyAt uint64
	idx     int
}

func attachMem(sm *sim.Simulator, p *stbus.Port, lat uint64) *tbMem {
	b := &tbMem{mem: map[uint64]byte{}, lat: lat}
	cfg := p.Cfg
	sm.Seq(p.Name+".mem", func() {
		b.cyc++
		if p.ReqFire() {
			b.cur = append(b.cur, p.SampleCell())
			if b.cur[len(b.cur)-1].EOP {
				first := b.cur[0]
				var rd []byte
				if first.Opc.IsLoad() {
					rd = make([]byte, first.Opc.SizeBytes())
					for i := range rd {
						rd[i] = b.mem[first.Addr+uint64(i)]
					}
				}
				if first.Opc.HasWriteData() {
					for i, v := range stbus.ExtractWriteData(cfg.Endian, b.cur, cfg.BusBytes()) {
						b.mem[first.Addr+uint64(i)] = v
					}
				}
				resp, err := stbus.BuildResponse(cfg.Type, cfg.Endian, first.Opc, first.Addr, rd,
					cfg.BusBytes(), first.TID, first.Src, false)
				if err != nil {
					panic(err)
				}
				b.q = append(b.q, &tbPkt{resp: resp, readyAt: b.cyc + b.lat})
				b.cur = nil
			}
		}
		if p.RespFire() {
			h := b.q[0]
			h.idx++
			if h.idx == len(h.resp) {
				b.q = b.q[1:]
			}
		}
		if len(b.q) > 0 && b.cyc >= b.q[0].readyAt {
			p.DriveResp(b.q[0].resp[b.q[0].idx])
		} else {
			p.IdleResp()
		}
		p.Gnt.SetBool(len(b.q) < 4)
	})
	return b
}

func cells(t *testing.T, ty stbus.Type, op stbus.Opcode, addr uint64, payload []byte,
	busBytes int, tid, src uint8) []stbus.Cell {
	t.Helper()
	out, err := stbus.BuildRequest(ty, stbus.LittleEndian, op, addr, payload, busBytes, tid, src, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func cfg3(nInit, nTgt int) nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: nInit, NumTgt: nTgt,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Priority, RespArb: arb.Priority,
		Map: stbus.UniformMap(nTgt, 0x1000, 0x1000),
	}
}

// ---- wrapped-model functional tests ----

func TestBCAWriteReadRoundTrip(t *testing.T) {
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg3(1, 1), Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	drv := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 2)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	drv.send(cells(t, stbus.Type3, stbus.ST8, 0x1000, payload, 4, 1, 0))
	drv.send(cells(t, stbus.Type3, stbus.LD8, 0x1000, nil, 4, 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 300); err != nil {
		t.Fatal(err)
	}
	rd := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD8, 0x1000, drv.respPackets()[1], 4)
	if !bytes.Equal(rd, payload) {
		t.Errorf("read %x want %x", rd, payload)
	}
	if n.Outstanding(0) != 0 {
		t.Errorf("outstanding = %d", n.Outstanding(0))
	}
}

func TestBCAUnmappedError(t *testing.T) {
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg3(1, 1), Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	drv := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 0)
	drv.send(cells(t, stbus.Type3, stbus.LD4, 0x9000, nil, 4, 7, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 200); err != nil {
		t.Fatal(err)
	}
	pk := drv.respPackets()[0]
	if !pk[0].Err() || pk[0].TID != 7 {
		t.Errorf("error response %+v", pk[0])
	}
}

func TestBCAProgrammingPort(t *testing.T) {
	cfg := cfg3(2, 1)
	cfg.ReqArb = arb.Programmable
	cfg.ProgPort = true
	cfg.ProgBase = 0x8000
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg, Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	drv := attachInit(sm, n.Init[0])
	attachInit(sm, n.Init[1])
	attachMem(sm, n.Tgt[0], 0)
	drv.send(cells(t, stbus.Type3, stbus.ST4, 0x8000, []byte{0x3, 0, 0, 0}, 4, 1, 0))
	drv.send(cells(t, stbus.Type3, stbus.LD4, 0x8000, nil, 4, 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 300); err != nil {
		t.Fatal(err)
	}
	rd := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD4, 0x8000, drv.respPackets()[1], 4)
	if rd[0] != 3 || n.PriorityRegs()[0] != 3 {
		t.Errorf("prog readback %v regs %v", rd, n.PriorityRegs())
	}
}

// ---- RTL/BCA lockstep equivalence (the in-repo alignment property) ----

// lockstep builds the same testbench around an RTL node and a (possibly
// bugged) BCA node in two separate simulators, runs them in lockstep and
// returns the first cycle at which any port signal differs (-1 if aligned
// for the whole run).
func lockstep(t *testing.T, cfg nodespec.Config, bugs Bugs, traffic func(i int) []stbus.Cell,
	memLat func(tg int) uint64, cyclesAfter int) int {
	t.Helper()
	smR := sim.New()
	smB := sim.New()
	rn, err := rtl.NewNode(sim.Root(smR), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewNode(sim.Root(smB), cfg, bugs)
	if err != nil {
		t.Fatal(err)
	}
	var rIn, bIn []*tbInit
	for i := 0; i < cfg.NumInit; i++ {
		r := attachInit(smR, rn.Init[i])
		b := attachInit(smB, bn.Init[i])
		r.send(traffic(i))
		b.send(traffic(i))
		rIn = append(rIn, r)
		bIn = append(bIn, b)
	}
	for tg := 0; tg < cfg.NumTgt; tg++ {
		attachMem(smR, rn.Tgt[tg], memLat(tg))
		attachMem(smB, bn.Tgt[tg], memLat(tg))
	}
	rPorts, bPorts := rn.Ports(), bn.Ports()
	idle := 0
	for cyc := 0; idle < cyclesAfter; cyc++ {
		if cyc > 100000 {
			t.Fatal("lockstep run did not drain")
		}
		if err := smR.Step(); err != nil {
			t.Fatal(err)
		}
		if err := smB.Step(); err != nil {
			t.Fatal(err)
		}
		for pi := range rPorts {
			rs, bs := rPorts[pi].Signals(), bPorts[pi].Signals()
			for si := range rs {
				if !rs[si].Get().Equal(bs[si].Get()) {
					return cyc
				}
			}
		}
		done := true
		for i := range rIn {
			if rIn[i].idx < len(rIn[i].toSend) || bIn[i].idx < len(bIn[i].toSend) {
				done = false
			}
		}
		if done {
			idle++
		} else {
			idle = 0
		}
	}
	return -1
}

// randomTraffic builds a deterministic random cell stream per initiator.
func randomTraffic(cfg nodespec.Config, seed int64, ops int) func(i int) []stbus.Cell {
	return func(i int) []stbus.Cell {
		rng := rand.New(rand.NewSource(seed + int64(i)*977))
		return genTraffic(cfg, rng, i, ops)
	}
}

func TestLockstepAlignmentBugFree(t *testing.T) {
	cfgs := []nodespec.Config{
		cfg3(2, 2),
		func() nodespec.Config {
			c := cfg3(3, 2)
			c.Arch = nodespec.SharedBus
			c.ReqArb, c.RespArb = arb.RoundRobin, arb.RoundRobin
			return c
		}(),
		func() nodespec.Config {
			c := cfg3(2, 2)
			c.Port.Type = stbus.Type2
			c.ReqArb = arb.LRU
			return c
		}(),
		func() nodespec.Config {
			c := cfg3(4, 3)
			c.ReqArb, c.RespArb = arb.Latency, arb.Bandwidth
			return c
		}(),
		func() nodespec.Config {
			c := cfg3(2, 2)
			c.Arch = nodespec.PartialCrossbar
			c.Allowed = [][]bool{{true, true}, {true, false}}
			return c
		}(),
		func() nodespec.Config {
			c := cfg3(2, 2)
			c.Port.DataBits = 256
			c.Port.Endian = stbus.BigEndian
			return c
		}(),
		func() nodespec.Config {
			c := cfg3(3, 3)
			c.Port.DataBits = 8
			c.PipeSize = 2
			c.ReqArb = arb.Bandwidth
			return c
		}(),
	}
	for ci, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			div := lockstep(t, cfg, Bugs{}, randomTraffic(cfg, int64(42+ci), 30),
				func(tg int) uint64 { return uint64(tg * 3) }, 20)
			if div >= 0 {
				t.Errorf("bug-free views diverged at cycle %d (config %v)", div, cfg)
			}
		})
	}
}

func TestLockstepDivergesWithBugs(t *testing.T) {
	// Each seeded bug must produce an observable signal-level divergence
	// under a workload that exercises it.
	t.Run("lru-init", func(t *testing.T) {
		cfg := cfg3(3, 1)
		cfg.ReqArb = arb.LRU
		div := lockstep(t, cfg, Bugs{LRUInit: true}, randomTraffic(cfg, 7, 20),
			func(int) uint64 { return 2 }, 20)
		if div < 0 {
			t.Error("LRU-init bug did not diverge under contention")
		}
	})
	t.Run("pipe-off-by-one", func(t *testing.T) {
		cfg := cfg3(1, 1)
		cfg.PipeSize = 2
		div := lockstep(t, cfg, Bugs{PipeOffByOne: true}, randomTraffic(cfg, 9, 30),
			func(int) uint64 { return 8 }, 20)
		if div < 0 {
			t.Error("pipe bug did not diverge under saturating traffic")
		}
	})
	t.Run("err-resp-tid-zero", func(t *testing.T) {
		cfg := cfg3(1, 1)
		traffic := func(int) []stbus.Cell {
			return cells(t, stbus.Type3, stbus.LD4, 0x9000, nil, 4, 5, 0) // unmapped, tid 5
		}
		div := lockstep(t, cfg, Bugs{ErrRespTIDZero: true}, traffic,
			func(int) uint64 { return 0 }, 20)
		if div < 0 {
			t.Error("error-tid bug did not diverge")
		}
	})
	t.Run("t2-order-ignored", func(t *testing.T) {
		cfg := cfg3(1, 2)
		cfg.Port.Type = stbus.Type2
		traffic := func(int) []stbus.Cell {
			var out []stbus.Cell
			out = append(out, cells(t, stbus.Type2, stbus.LD4, 0x1000, nil, 4, 0, 0)...)
			out = append(out, cells(t, stbus.Type2, stbus.LD4, 0x2000, nil, 4, 1, 0)...)
			return out
		}
		div := lockstep(t, cfg, Bugs{T2OrderIgnored: true}, traffic,
			func(tg int) uint64 { return uint64(30 - 28*tg) }, 20)
		if div < 0 {
			t.Error("T2-order bug did not diverge")
		}
	})
	t.Run("chunk-lck-ignored", func(t *testing.T) {
		cfg := cfg3(2, 1)
		cfg.ReqArb = arb.RoundRobin
		traffic := func(i int) []stbus.Cell {
			if i == 0 {
				chunk1, err := stbus.BuildRequest(stbus.Type3, stbus.LittleEndian, stbus.ST4,
					0x1000, []byte{1, 2, 3, 4}, 4, 0, 0, 0, true)
				if err != nil {
					t.Fatal(err)
				}
				return append(chunk1, cells(t, stbus.Type3, stbus.ST4, 0x1004, []byte{5, 6, 7, 8}, 4, 1, 0)...)
			}
			return cells(t, stbus.Type3, stbus.LD4, 0x1000, nil, 4, 0, 1)
		}
		div := lockstep(t, cfg, Bugs{ChunkLckIgnored: true}, traffic,
			func(int) uint64 { return 1 }, 20)
		if div < 0 {
			t.Error("chunk bug did not diverge")
		}
	})
}

// ---- standalone engine ----

func TestStandaloneRunDrains(t *testing.T) {
	res, err := RunStandalone(StandaloneConfig{
		Node:       cfg3(3, 2),
		Seed:       11,
		OpsPerInit: 50,
		MemLatency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3*50 {
		t.Errorf("completed %d, want 150", res.Completed)
	}
	if res.Errors != 0 {
		t.Errorf("%d unexpected error responses", res.Errors)
	}
	if res.Cycles == 0 {
		t.Error("cycle count missing")
	}
}

func TestStandaloneDeterministic(t *testing.T) {
	run := func() StandaloneResult {
		res, err := RunStandalone(StandaloneConfig{
			Node: cfg3(2, 2), Seed: 3, OpsPerInit: 40, MemLatency: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("standalone runs differ: %+v vs %+v", a, b)
	}
}

func TestStandaloneSharedSlowerThanCrossbar(t *testing.T) {
	base := cfg3(4, 4)
	shared := base
	shared.Arch = nodespec.SharedBus
	runCfg := func(nc nodespec.Config) uint64 {
		res, err := RunStandalone(StandaloneConfig{Node: nc, Seed: 5, OpsPerInit: 60, MemLatency: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	xbar, sh := runCfg(base), runCfg(shared)
	if sh <= xbar {
		t.Errorf("shared bus (%d cycles) should be slower than crossbar (%d)", sh, xbar)
	}
}

func TestBugsHelpers(t *testing.T) {
	if (Bugs{}).Any() {
		t.Error("zero Bugs should be Any()==false")
	}
	all := AllBugs()
	names := BugNames()
	if len(all) != 5 || len(names) != 5 {
		t.Fatal("five bugs expected")
	}
	for i, b := range all {
		if !b.Any() {
			t.Errorf("bug %d not set", i)
		}
		l := b.List()
		if len(l) != 1 || l[0] != names[i] {
			t.Errorf("bug %d list %v, want [%s]", i, l, names[i])
		}
	}
}
