package bca

import (
	"fmt"

	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// Node is the BCA model wrapped for the common verification environment: a
// signal-level shell around the transaction engine, playing the role of the
// paper's SystemC-top + VHDL-wrapper stack (Figure 3). Its port interface is
// identical to the RTL view's, so the same testbench plugs into either.
type Node struct {
	Cfg  nodespec.Config
	Bugs Bugs
	Init []*stbus.Port
	Tgt  []*stbus.Port

	eng  *engine
	in   *Inputs
	tick *sim.Signal
}

// NewNode elaborates a wrapped BCA node under scope sc.
func NewNode(sc sim.Scope, cfg nodespec.Config, bugs Bugs) (*Node, error) {
	eng, err := newEngine(cfg, bugs)
	if err != nil {
		return nil, err
	}
	cfg = eng.cfg
	ns := sc.Sub(cfg.Name)
	n := &Node{Cfg: cfg, Bugs: bugs, eng: eng, in: NewInputs(cfg)}
	for i := 0; i < cfg.NumInit; i++ {
		n.Init = append(n.Init, stbus.NewPort(ns, fmt.Sprintf("init%d", i), cfg.Port))
	}
	for t := 0; t < cfg.NumTgt; t++ {
		n.Tgt = append(n.Tgt, stbus.NewPort(ns, fmt.Sprintf("tgt%d", t), cfg.Port))
	}
	n.tick = ns.Signal("tick", 32)
	sens := []*sim.Signal{n.tick}
	var outs []*sim.Signal
	for _, p := range n.Init {
		sens = append(sens, p.Req, p.Add, p.EOP, p.Lck, p.Pri, p.RGnt)
		outs = append(outs, p.Gnt)
	}
	for _, p := range n.Tgt {
		sens = append(sens, p.Gnt, p.RReq, p.RSrc)
		outs = append(outs, p.RGnt)
	}
	ns.CombOut("plan", n.comb, outs, sens...)
	ns.Seq("commit", n.seq)
	return n, nil
}

// Ports returns every external port, initiators first.
func (n *Node) Ports() []*stbus.Port {
	out := append([]*stbus.Port{}, n.Init...)
	return append(out, n.Tgt...)
}

// readInputs refreshes the engine input record from the settled signals.
func (n *Node) readInputs() {
	for i, p := range n.Init {
		n.in.Req[i] = p.Req.Bool()
		n.in.Addr[i] = p.Add.U64()
		n.in.EOP[i] = p.EOP.Bool()
		n.in.Lck[i] = p.Lck.Bool()
		n.in.Pri[i] = uint8(p.Pri.U64())
		n.in.RGnt[i] = p.RGnt.Bool()
	}
	for t, p := range n.Tgt {
		n.in.TgtGnt[t] = p.Gnt.Bool()
		n.in.TgtRResp[t] = p.RReq.Bool()
		n.in.TgtRSrc[t] = uint8(p.RSrc.U64())
	}
}

func (n *Node) comb() {
	n.readInputs()
	n.eng.Plan(n.in)
	for i, p := range n.Init {
		p.Gnt.SetBool(n.eng.out.Gnt[i])
	}
	for t, p := range n.Tgt {
		p.RGnt.SetBool(n.eng.out.RGnt[t])
	}
}

func (n *Node) seq() {
	n.readInputs()
	n.eng.Plan(n.in) // recompute the settled plan against pre-edge inputs
	n.eng.Commit(n.in,
		func(i int) stbus.Cell { return n.Init[i].SampleCell() },
		func(t int) stbus.RespCell { return n.Tgt[t].SampleResp() })
	for t, p := range n.Tgt {
		if n.eng.out.TgtReq[t] {
			p.DriveCell(n.eng.out.TgtCell[t])
		} else {
			p.IdleReq()
		}
	}
	for i, p := range n.Init {
		if n.eng.out.InitRsp[i] {
			p.DriveResp(n.eng.out.InitRC[i])
		} else {
			p.IdleResp()
		}
	}
	n.tick.SetU64(n.tick.U64() + 1)
}

// Outstanding returns the in-flight packet count of initiator i.
func (n *Node) Outstanding(i int) int { return n.eng.Inflight(i) }

// PriorityRegs returns a copy of the programming-port register file.
func (n *Node) PriorityRegs() []uint8 {
	out := make([]uint8, len(n.eng.regs))
	copy(out, n.eng.regs)
	return out
}
