package bca

import (
	"fmt"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Route sentinels. Deliberately different encodings from the RTL view: the
// implementations share the specification, not code.
const (
	routeIdle = -100
	intErr    = -10
	intProg   = -11
)

// Inputs is the engine's view of one cycle's settled port inputs.
type Inputs struct {
	// Per initiator port.
	Req  []bool
	Addr []uint64
	EOP  []bool
	Lck  []bool
	Pri  []uint8
	RGnt []bool
	// Per target port.
	TgtGnt   []bool
	TgtRResp []bool
	TgtRSrc  []uint8
}

// NewInputs allocates an input record sized for cfg.
func NewInputs(cfg nodespec.Config) *Inputs {
	return &Inputs{
		Req: make([]bool, cfg.NumInit), Addr: make([]uint64, cfg.NumInit),
		EOP: make([]bool, cfg.NumInit), Lck: make([]bool, cfg.NumInit),
		Pri: make([]uint8, cfg.NumInit), RGnt: make([]bool, cfg.NumInit),
		TgtGnt: make([]bool, cfg.NumTgt), TgtRResp: make([]bool, cfg.NumTgt),
		TgtRSrc: make([]uint8, cfg.NumTgt),
	}
}

// Outputs is what the engine drives after each cycle.
type Outputs struct {
	Gnt  []bool
	RGnt []bool
	// Registered forwarding stage contents for the next cycle.
	TgtReq  []bool
	TgtCell []stbus.Cell
	InitRsp []bool
	InitRC  []stbus.RespCell
}

// engine is the transaction-level node model: packets are assembled,
// routed and answered as whole units; per-cycle signal behaviour falls out
// of replaying the forwarding-stage slots.
type engine struct {
	cfg  nodespec.Config
	bugs Bugs

	reqArbs  []arb.Policy // per target; index NumTgt = global (shared bus)
	respArbs []arb.Policy // per initiator over NumTgt+1 sources
	respGlob arb.Policy
	prog     *arb.ProgrammablePolicy
	regs     []uint8

	// Per-initiator request-side state.
	pktRoute []int          // routeIdle when between packets
	pktCells [][]stbus.Cell // assembled cells of the open packet
	inflight [][]int        // outstanding source indices, issue order

	// Per-initiator response-side state.
	intQ    [][]stbus.RespCell
	rspBusy []bool
	rspCell []stbus.RespCell
	rspFrom []int
	rspHold []bool

	// srcOwner learns which initiator port issues each src value (responses
	// route back by src, which is system-global in STBus hierarchies).
	srcOwner map[uint8]int

	// Per-target forwarding state.
	fwdBusy  []bool
	fwdCell  []stbus.Cell
	fwdOwner []int

	out Outputs

	// Cycle plan, valid between Plan and Commit.
	granted   []int // route per initiator, routeIdle when not granted
	pickedSrc []int // chosen response source per initiator, -1 none
	scrReq    []arb.Input
	scrResp   []arb.Input
	scrRespG  arb.Input
}

func newEngine(cfg nodespec.Config, bugs Bugs) (*engine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{cfg: cfg, bugs: bugs}
	nI, nT := cfg.NumInit, cfg.NumTgt
	if cfg.ReqArb == arb.Programmable {
		e.prog = arb.NewProgrammable(cfg.DefaultPriorities())
	}
	mkReq := func() arb.Policy {
		if e.prog != nil {
			return e.prog
		}
		p := arb.New(cfg.ReqArb, nI)
		if bugs.LRUInit && cfg.ReqArb == arb.LRU {
			// Seeded bug 1: the reset state marks port 0 as just used.
			p.Tick(arb.Input{Req: make([]bool, nI)}, 0)
		}
		return p
	}
	for t := 0; t <= nT; t++ {
		e.reqArbs = append(e.reqArbs, mkReq())
		e.scrReq = append(e.scrReq, arb.Input{Req: make([]bool, nI), Pri: make([]uint8, nI)})
	}
	for i := 0; i < nI; i++ {
		e.respArbs = append(e.respArbs, arb.New(cfg.RespArb, nT+1))
		e.scrResp = append(e.scrResp, arb.Input{Req: make([]bool, nT+1)})
	}
	e.respGlob = arb.New(cfg.RespArb, nI)
	e.scrRespG = arb.Input{Req: make([]bool, nI)}
	e.regs = cfg.DefaultPriorities()

	e.pktRoute = make([]int, nI)
	e.granted = make([]int, nI)
	e.pickedSrc = make([]int, nI)
	for i := range e.pktRoute {
		e.pktRoute[i] = routeIdle
	}
	e.srcOwner = make(map[uint8]int)
	e.pktCells = make([][]stbus.Cell, nI)
	e.inflight = make([][]int, nI)
	e.intQ = make([][]stbus.RespCell, nI)
	e.rspBusy = make([]bool, nI)
	e.rspCell = make([]stbus.RespCell, nI)
	e.rspFrom = make([]int, nI)
	e.rspHold = make([]bool, nI)
	e.fwdBusy = make([]bool, nT)
	e.fwdCell = make([]stbus.Cell, nT)
	e.fwdOwner = make([]int, nT)
	for t := range e.fwdOwner {
		e.fwdOwner[t] = -1
	}
	e.out = Outputs{
		Gnt: make([]bool, nI), RGnt: make([]bool, nT),
		TgtReq: make([]bool, nT), TgtCell: make([]stbus.Cell, nT),
		InitRsp: make([]bool, nI), InitRC: make([]stbus.RespCell, nI),
	}
	return e, nil
}

// source maps a route to the response-source index used by the response
// path and the ordering rule.
func (e *engine) source(route int) int {
	if route >= 0 {
		return route
	}
	return e.cfg.NumTgt
}

// route decodes the first cell of a packet from initiator i.
func (e *engine) route(i int, addr uint64) int {
	c := &e.cfg
	if c.ProgPort && addr >= c.ProgBase && addr < c.ProgBase+uint64(4*c.NumInit) {
		return intProg
	}
	t := c.Map.Route(addr)
	if t < 0 || !c.Connected(i, t) {
		return intErr
	}
	return t
}

// pipeLimit is the outstanding-packet bound (seeded bug 3 widens it).
func (e *engine) pipeLimit() int {
	if e.bugs.PipeOffByOne {
		return e.cfg.PipeSize + 1
	}
	return e.cfg.PipeSize
}

// mayOpen checks the first-cell conditions shared by every route: ordering
// (Type 2) and the pipe bound.
func (e *engine) mayOpen(i, src int) bool {
	if e.cfg.Port.Type == stbus.Type2 && !e.bugs.T2OrderIgnored {
		for _, s := range e.inflight[i] {
			if s != src {
				return false
			}
		}
	}
	return len(e.inflight[i]) < e.pipeLimit()
}

// fwdFree reports whether target t's forwarding slot can take a cell this
// cycle.
func (e *engine) fwdFree(t int, in *Inputs) bool {
	return !e.fwdBusy[t] || in.TgtGnt[t]
}

// Plan computes the cycle's grants from the settled inputs; it is pure with
// respect to engine state and may be called repeatedly until the inputs
// settle. The final call's plan is consumed by Commit.
func (e *engine) Plan(in *Inputs) {
	nI, nT := e.cfg.NumInit, e.cfg.NumTgt
	// Request side: collect each initiator's wish.
	for i := 0; i < nI; i++ {
		e.granted[i] = routeIdle
		e.out.Gnt[i] = false
		if !in.Req[i] {
			continue
		}
		r := e.pktRoute[i]
		if r == routeIdle { // packet opens this cycle
			r = e.route(i, in.Addr[i])
			if !e.mayOpen(i, e.source(r)) {
				continue
			}
			if r >= 0 && e.fwdOwner[r] != -1 && e.fwdOwner[r] != i {
				continue // target allocated to someone else
			}
		}
		if r >= 0 && !e.fwdFree(r, in) {
			continue
		}
		e.granted[i] = r
	}
	// Request side: arbitrate contenders.
	if e.cfg.Arch == nodespec.SharedBus {
		g := &e.scrReq[nT]
		for i := 0; i < nI; i++ {
			g.Req[i] = e.granted[i] != routeIdle
			g.Pri[i] = in.Pri[i]
		}
		w := e.reqArbs[nT].Pick(*g)
		for i := 0; i < nI; i++ {
			if i != w {
				e.granted[i] = routeIdle
			}
		}
	} else {
		for t := 0; t < nT; t++ {
			sc := &e.scrReq[t]
			for i := 0; i < nI; i++ {
				sc.Req[i] = e.granted[i] == t
				sc.Pri[i] = in.Pri[i]
			}
			w := e.reqArbs[t].Pick(*sc)
			for i := 0; i < nI; i++ {
				if e.granted[i] == t && i != w {
					e.granted[i] = routeIdle
				}
			}
		}
	}
	for i := 0; i < nI; i++ {
		e.out.Gnt[i] = e.granted[i] != routeIdle
	}

	// Response side.
	for t := 0; t < nT; t++ {
		e.out.RGnt[t] = false
	}
	offered := func(i, s int) bool {
		if len(e.inflight[i]) == 0 {
			return false
		}
		if e.rspHold[i] && s != e.rspFrom[i] {
			return false
		}
		if e.cfg.Port.Type == stbus.Type2 && !e.bugs.T2OrderIgnored && s != e.inflight[i][0] {
			return false
		}
		if s == nT {
			return len(e.intQ[i]) > 0
		}
		if !in.TgtRResp[s] {
			return false
		}
		owner, ok := e.srcOwner[in.TgtRSrc[s]]
		return ok && owner == i
	}
	canLoad := func(i int) bool { return !e.rspBusy[i] || in.RGnt[i] }
	pickFor := func(i int) int {
		sc := &e.scrResp[i]
		none := true
		for s := 0; s <= nT; s++ {
			sc.Req[s] = offered(i, s)
			none = none && !sc.Req[s]
		}
		if none {
			return -1
		}
		return e.respArbs[i].Pick(*sc)
	}
	for i := 0; i < nI; i++ {
		e.pickedSrc[i] = -1
	}
	if e.cfg.Arch == nodespec.SharedBus {
		for i := 0; i < nI; i++ {
			e.scrRespG.Req[i] = false
			if !canLoad(i) {
				continue
			}
			for s := 0; s <= nT; s++ {
				if offered(i, s) {
					e.scrRespG.Req[i] = true
					break
				}
			}
		}
		if w := e.respGlob.Pick(e.scrRespG); w >= 0 {
			e.pickedSrc[w] = pickFor(w)
		}
	} else {
		for i := 0; i < nI; i++ {
			if canLoad(i) {
				e.pickedSrc[i] = pickFor(i)
			}
		}
	}
	for i := 0; i < nI; i++ {
		if s := e.pickedSrc[i]; s >= 0 && s < nT {
			e.out.RGnt[s] = true
		}
	}
}

// Commit advances the model by one clock edge. reqCell and respCell fetch
// the full payloads of the cycle's transfers; outputs for the next cycle are
// left in e.out.
func (e *engine) Commit(in *Inputs, reqCell func(i int) stbus.Cell, respCell func(t int) stbus.RespCell) {
	nI, nT := e.cfg.NumInit, e.cfg.NumTgt
	// Forwarding slots drained by targets.
	for t := 0; t < nT; t++ {
		if e.fwdBusy[t] && e.out.TgtReq[t] && in.TgtGnt[t] {
			e.fwdBusy[t] = false
		}
	}
	// Responses delivered to initiators.
	for i := 0; i < nI; i++ {
		if e.rspBusy[i] && e.out.InitRsp[i] && in.RGnt[i] {
			if e.rspCell[i].EOP {
				e.retire(i, e.rspFrom[i])
				e.rspHold[i] = false
			}
			e.rspBusy[i] = false
		}
	}
	// Granted request cells.
	for i := 0; i < nI; i++ {
		r := e.granted[i]
		if r == routeIdle || !in.Req[i] {
			continue
		}
		cell := reqCell(i)
		opening := e.pktRoute[i] == routeIdle
		if opening {
			e.inflight[i] = append(e.inflight[i], e.source(r))
			e.srcOwner[cell.Src] = i
		}
		e.pktCells[i] = append(e.pktCells[i], cell)
		if r >= 0 {
			if opening {
				// Defensive chunk release if the owner went elsewhere.
				for u := 0; u < nT; u++ {
					if u != r && e.fwdOwner[u] == i {
						e.fwdOwner[u] = -1
					}
				}
			}
			e.fwdCell[r] = cell
			e.fwdBusy[r] = true
			e.fwdOwner[r] = i
			if cell.EOP && (!cell.Lck || e.bugs.ChunkLckIgnored) {
				// Seeded bug 2: lck ignored, allocation always released.
				e.fwdOwner[r] = -1
			}
		}
		if cell.EOP {
			if r < 0 {
				e.service(i, r)
			}
			e.pktCells[i] = nil
			e.pktRoute[i] = routeIdle
		} else {
			e.pktRoute[i] = r
		}
	}
	// Accepted response cells.
	for i := 0; i < nI; i++ {
		s := e.pickedSrc[i]
		if s < 0 {
			continue
		}
		var cell stbus.RespCell
		if s < nT {
			if !(in.TgtRResp[s] && e.out.RGnt[s]) {
				continue
			}
			cell = respCell(s)
		} else {
			cell = e.intQ[i][0]
			e.intQ[i] = e.intQ[i][1:]
		}
		e.rspCell[i] = cell
		e.rspBusy[i] = true
		e.rspFrom[i] = s
		e.rspHold[i] = !cell.EOP
	}
	// Arbiter clocks.
	if e.cfg.Arch == nodespec.SharedBus {
		w := -1
		for i := 0; i < nI; i++ {
			if e.out.Gnt[i] {
				w = i
			}
		}
		e.reqArbs[nT].Tick(e.scrReq[nT], w)
		wr := -1
		for i := 0; i < nI; i++ {
			if e.pickedSrc[i] >= 0 {
				wr = i
			}
		}
		e.respGlob.Tick(e.scrRespG, wr)
	} else {
		for t := 0; t < nT; t++ {
			w := -1
			for i := 0; i < nI; i++ {
				if e.out.Gnt[i] && e.granted[i] == t {
					w = i
				}
			}
			e.reqArbs[t].Tick(e.scrReq[t], w)
		}
	}
	for i := 0; i < nI; i++ {
		e.respArbs[i].Tick(e.scrResp[i], e.pickedSrc[i])
	}
	// Next-cycle drives.
	for t := 0; t < nT; t++ {
		e.out.TgtReq[t] = e.fwdBusy[t]
		if e.fwdBusy[t] {
			e.out.TgtCell[t] = e.fwdCell[t]
		} else {
			e.out.TgtCell[t] = stbus.Cell{}
		}
	}
	for i := 0; i < nI; i++ {
		e.out.InitRsp[i] = e.rspBusy[i]
		if e.rspBusy[i] {
			e.out.InitRC[i] = e.rspCell[i]
		} else {
			e.out.InitRC[i] = stbus.RespCell{}
		}
	}
}

// retire pops the oldest inflight entry from the given source.
func (e *engine) retire(i, src int) {
	fl := e.inflight[i]
	for k, s := range fl {
		if s == src {
			e.inflight[i] = append(fl[:k], fl[k+1:]...)
			return
		}
	}
}

// service answers a packet routed to an internal service (error responder or
// register decoder) at the edge completing it.
func (e *engine) service(i, route int) {
	c := &e.cfg
	cells := e.pktCells[i]
	head := cells[0]
	tid := head.TID
	if e.bugs.ErrRespTIDZero {
		tid = 0 // Seeded bug 4: error path loses the transaction tag.
	}
	errPkt := func() []stbus.RespCell {
		pkt, err := stbus.BuildResponse(c.Port.Type, c.Port.Endian, head.Opc, head.Addr, nil,
			c.Port.BusBytes(), tid, head.Src, true)
		if err != nil {
			pkt = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: tid, Src: head.Src}}
		}
		return pkt
	}
	if route == intErr {
		e.intQ[i] = append(e.intQ[i], errPkt()...)
		return
	}
	reg := int(head.Addr-c.ProgBase) / 4
	switch {
	case head.Opc == stbus.ST4 && reg < c.NumInit:
		v := stbus.ExtractWriteData(c.Port.Endian, cells, c.Port.BusBytes())[0] & 0xf
		e.regs[reg] = v
		if e.prog != nil {
			if err := e.prog.SetPriority(reg, v); err != nil {
				e.intQ[i] = append(e.intQ[i], errPkt()...)
				return
			}
		}
		pkt, _ := stbus.BuildResponse(c.Port.Type, c.Port.Endian, head.Opc, head.Addr, nil,
			c.Port.BusBytes(), head.TID, head.Src, false)
		e.intQ[i] = append(e.intQ[i], pkt...)
	case head.Opc == stbus.LD4 && reg < c.NumInit:
		pkt, _ := stbus.BuildResponse(c.Port.Type, c.Port.Endian, head.Opc, head.Addr,
			[]byte{e.regs[reg], 0, 0, 0}, c.Port.BusBytes(), head.TID, head.Src, false)
		e.intQ[i] = append(e.intQ[i], pkt...)
	default:
		e.intQ[i] = append(e.intQ[i], errPkt()...)
	}
}

// Inflight returns the outstanding-packet count of initiator i.
func (e *engine) Inflight(i int) int { return len(e.inflight[i]) }

func (e *engine) String() string {
	return fmt.Sprintf("bca engine %s bugs=%v", e.cfg.Name, e.bugs.List())
}
