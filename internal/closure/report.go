package closure

// Rendering of closure trajectories. Everything here is a pure function of
// the core.ClosureTrajectory record, so a report re-rendered from saved JSON
// is byte-identical to the one printed live — and the -j1/-jN determinism
// property can be asserted on the rendered bytes.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

import "crve/internal/core"

// Summary returns the one-line outcome of a closure run, e.g.
//
//	converged full in 2 iteration(s): 100.0% functional coverage (118/118 bins), 10234 cycles, 7 unit(s) (0 cached, 0 failed)
func Summary(t *core.ClosureTrajectory) string {
	verdict := "converged " + t.Reason
	if !t.Converged {
		verdict = "stopped (" + t.Reason + ")"
	}
	units := t.UnitsRun + t.UnitsCached
	return fmt.Sprintf("%s in %d iteration(s): %.1f%% functional coverage (%d/%d bins), %d cycles, %d unit(s) (%d cached, %d failed)",
		verdict, len(t.Iterations), t.FinalPercent, t.TotalBins-t.HolesEnd, t.TotalBins,
		t.TotalCycles, units, t.UnitsCached, t.Failures)
}

// Text renders the full per-iteration closure report.
func Text(w io.Writer, t *core.ClosureTrajectory) {
	fmt.Fprintf(w, "closure %s: group %s, %d/%d bins after base suite (%.1f%%), %d hole(s)",
		t.Config, t.Group, t.TotalBins-t.HolesStart, t.TotalBins, t.StartPercent, t.HolesStart)
	if len(t.DeadBins) > 0 {
		fmt.Fprintf(w, " (%d statically unreachable: %s)", len(t.DeadBins), strings.Join(t.DeadBins, ", "))
	}
	fmt.Fprintln(w)
	for _, it := range t.Iterations {
		fmt.Fprintf(w, "  iter %d: %d hole(s), %d unit(s), %d cycles, %d cached -> closed %d, %d remaining\n",
			it.Iter, it.HolesBefore, len(it.Units), it.Cycles, it.CacheHits, it.NewBins, it.HolesAfter)
		for _, u := range it.Units {
			status := "pass"
			if !u.Passed {
				status = "FAIL"
			}
			suffix := ""
			if u.Cached {
				suffix = "  (cached)"
			}
			fmt.Fprintf(w, "    %-40s seed=%-8d new=%-3d cycles=%-6d %s  holes=[%s]%s\n",
				u.Test, u.Seed, u.NewBins, u.Cycles, status, strings.Join(u.Holes, " "), suffix)
		}
	}
	fmt.Fprintf(w, "closure %s: %s\n", t.Config, Summary(t))
}

// TextString renders Text into a string.
func TextString(t *core.ClosureTrajectory) string {
	var sb strings.Builder
	Text(&sb, t)
	return sb.String()
}

// JSON renders the trajectory as indented JSON.
func JSON(w io.Writer, t *core.ClosureTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
