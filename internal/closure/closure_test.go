package closure

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// holesConfig is the in-repo twin of configs/closure/regbank.cfg: a node
// whose 16-byte register-bank regions starve the generator of
// large-operation addresses, so the default suite at seed 1 leaves a known
// opcode hole. TestShippedConfigMatches pins the two together.
func holesConfig() nodespec.Config {
	return nodespec.Config{
		Name:     "regbank",
		Port:     stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit:  1,
		NumTgt:   2,
		Arch:     nodespec.SharedBus,
		ReqArb:   arb.Priority,
		RespArb:  arb.RoundRobin,
		Map:      stbus.UniformMap(2, 0x1000, 0x10),
		PipeSize: 4,
	}.WithDefaults()
}

// tinyConfig is a minimal 1x1 node for tests that only need the loop
// mechanics, not interesting coverage.
func tinyConfig() nodespec.Config {
	return nodespec.Config{
		Name:     "tiny",
		Port:     stbus.PortConfig{Type: stbus.Type2, DataBits: 32},
		NumInit:  1,
		NumTgt:   1,
		Arch:     nodespec.SharedBus,
		ReqArb:   arb.Priority,
		RespArb:  arb.RoundRobin,
		Map:      stbus.UniformMap(1, 0x1000, 0x800),
		PipeSize: 2,
	}.WithDefaults()
}

func TestShippedConfigMatches(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "configs", "closure", "regbank.cfg"))
	if err != nil {
		t.Fatalf("shipped closure config missing: %v", err)
	}
	cfg, err := regress.ParseConfig(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	got := regress.FormatConfig(cfg.WithDefaults())
	want := regress.FormatConfig(holesConfig())
	if got != want {
		t.Errorf("configs/closure/regbank.cfg drifted from the test twin:\n--- shipped ---\n%s--- test ---\n%s", got, want)
	}
}

// TestCloseConvergesOnHolesConfig is the headline property: the default
// suite leaves regbank below 100 % functional coverage, and the closure
// engine reaches 100 % within the default budgets.
func TestCloseConvergesOnHolesConfig(t *testing.T) {
	res, err := Close(holesConfig(), Options{Tests: testcases.All(), Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	traj := res.Trajectory
	if traj.StartPercent >= 100 {
		t.Fatalf("base suite already full (%.1f%%): regbank no longer demonstrates closure", traj.StartPercent)
	}
	if !traj.Converged || traj.Reason != core.ClosureFull {
		t.Fatalf("closure did not converge: reason=%s trajectory:\n%s", traj.Reason, TextString(traj))
	}
	if traj.FinalPercent != 100 {
		t.Fatalf("final coverage %.1f%%, want 100", traj.FinalPercent)
	}
	if len(traj.Iterations) == 0 || traj.UnitsRun == 0 {
		t.Fatalf("converged without synthesizing anything: %+v", traj)
	}
	if traj.Failures != 0 {
		t.Fatalf("%d synthesized unit(s) failed checks:\n%s", traj.Failures, TextString(traj))
	}
}

// TestCloseNoOpOnFullGroup: closure on an already-full group synthesizes
// zero units, runs zero iterations and leaves the cache untouched.
func TestCloseNoOpOnFullGroup(t *testing.T) {
	cfg := tinyConfig()
	base, err := regress.RunConfig(cfg, regress.Options{Tests: testcases.All(), Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !base.SuiteCoverage.Full() {
		t.Fatalf("tiny config not full after suite (%.1f%%); pick another fixture", base.SuiteCoverage.Percent())
	}
	dir := t.TempDir()
	cache, err := regress.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CloseGroup(cfg, base.SuiteCoverage, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	traj := res.Trajectory
	if !traj.Converged || traj.Reason != core.ClosureFull {
		t.Errorf("reason=%s converged=%v, want full/true", traj.Reason, traj.Converged)
	}
	if len(traj.Iterations) != 0 || traj.UnitsRun != 0 || traj.UnitsCached != 0 || traj.TotalCycles != 0 {
		t.Errorf("no-op closure did work: %+v", traj)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("closure on a full group touched the cache: %d entries", len(ents))
	}
}

// TestCloseWorkerDeterminism: the rendered closure report is byte-identical
// at -j 1 and -j 4.
func TestCloseWorkerDeterminism(t *testing.T) {
	run := func(workers int) string {
		res, err := Close(holesConfig(), Options{Tests: testcases.All(), Seeds: []int64{1}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		Text(&sb, res.Trajectory)
		if err := JSON(&sb, res.Trajectory); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial, parallel := run(1), run(4)
	if serial != parallel {
		t.Errorf("closure report differs between -j1 and -j4:\n--- j1 ---\n%s--- j4 ---\n%s", serial, parallel)
	}
}

// TestCloseWarmCacheZeroResim: a second closure run against the same cache
// re-simulates nothing and walks the same trajectory.
func TestCloseWarmCacheZeroResim(t *testing.T) {
	cache, err := regress.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Tests: testcases.All(), Seeds: []int64{1}, Cache: cache}
	cold, err := Close(holesConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Close(holesConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Stats(); got.Ran != 0 {
		t.Errorf("warm closure re-simulated %d unit(s), want 0 (stats %v)", got.Ran, got)
	}
	if warm.ClosureStats.Cached != cold.ClosureStats.Ran+cold.ClosureStats.Cached {
		t.Errorf("warm cached %d closure unit(s), cold produced %d", warm.ClosureStats.Cached, cold.ClosureStats.Ran+cold.ClosureStats.Cached)
	}
	ct, wt := cold.Trajectory, warm.Trajectory
	if ct.Reason != wt.Reason || ct.FinalPercent != wt.FinalPercent ||
		ct.TotalCycles != wt.TotalCycles || len(ct.Iterations) != len(wt.Iterations) {
		t.Errorf("warm trajectory diverged from cold:\n--- cold ---\n%s--- warm ---\n%s", TextString(ct), TextString(wt))
	}
	for i := range ct.Iterations {
		cu, wu := ct.Iterations[i].Units, wt.Iterations[i].Units
		if len(cu) != len(wu) {
			t.Fatalf("iter %d: unit count %d vs %d", i+1, len(cu), len(wu))
		}
		for j := range cu {
			if cu[j].Test != wu[j].Test || cu[j].NewBins != wu[j].NewBins || cu[j].Cycles != wu[j].Cycles {
				t.Errorf("iter %d unit %d diverged: cold %+v warm %+v", i+1, j, cu[j], wu[j])
			}
		}
	}
}

// TestCloseDeadBinsOnly: when the only remaining holes are statically
// unreachable, the loop stops immediately, converged, without planning.
func TestCloseDeadBinsOnly(t *testing.T) {
	cfg := nodespec.Config{
		Name:     "diag",
		Port:     stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit:  2,
		NumTgt:   2,
		Arch:     nodespec.PartialCrossbar,
		Allowed:  [][]bool{{true, false}, {false, true}},
		ReqArb:   arb.Priority,
		RespArb:  arb.RoundRobin,
		Map:      stbus.UniformMap(2, 0x1000, 0x800),
		PipeSize: 4,
	}.WithDefaults()
	cov := catg.NewCoverageModel(cfg, catg.UnionTraffic(cfg)).Group
	// Fill every bin except the dead one (nothing is sampled yet, so every
	// bin is still a hole).
	for _, it := range cov.Items() {
		for _, b := range it.Holes() {
			if !(it.Name == "completion_order" && b == "reordered") {
				it.Hit(b)
			}
		}
	}
	res, err := CloseGroup(cfg, cov, Options{})
	if err != nil {
		t.Fatal(err)
	}
	traj := res.Trajectory
	if traj.Reason != core.ClosureDeadBins || !traj.Converged {
		t.Errorf("reason=%s converged=%v, want dead-bins/true", traj.Reason, traj.Converged)
	}
	if len(traj.Iterations) != 0 {
		t.Errorf("planned %d iteration(s) against dead bins, want 0", len(traj.Iterations))
	}
	if len(traj.DeadBins) != 1 || traj.DeadBins[0] != "completion_order/reordered" {
		t.Errorf("dead bins %v", traj.DeadBins)
	}
}

// TestCloseStallsOnForeignHole: a hole in an item the bench can never sample
// (here: an item the planner does not know and no run declares) exhausts the
// stall counter instead of looping forever, and the fallback unit carries it.
func TestCloseStallsOnForeignHole(t *testing.T) {
	cfg := tinyConfig()
	base, err := regress.RunConfig(cfg, regress.Options{Tests: []core.Test{testcases.BasicWriteRead()}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	cov := base.SuiteCoverage
	cov.Item("foreign", "unhittable")
	res, err := CloseGroup(cfg, cov, Options{StallIters: 1, MaxIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	traj := res.Trajectory
	if traj.Reason != core.ClosureStalled || traj.Converged {
		t.Errorf("reason=%s converged=%v, want stalled/false", traj.Reason, traj.Converged)
	}
	if traj.HolesEnd == 0 {
		t.Error("foreign hole vanished")
	}
	found := false
	for _, it := range traj.Iterations {
		for _, u := range it.Units {
			for _, h := range u.Holes {
				if h == "foreign/unhittable" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no unit was planned for the foreign hole (fallback missing)")
	}
}

// TestCloseBudget: the cycle budget stops the loop between iterations.
func TestCloseBudget(t *testing.T) {
	cfg := tinyConfig()
	base, err := regress.RunConfig(cfg, regress.Options{Tests: []core.Test{testcases.BasicWriteRead()}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	cov := base.SuiteCoverage
	cov.Item("foreign", "unhittable") // never closes, so only the budget can stop the loop early
	res, err := CloseGroup(cfg, cov, Options{Budget: 1, StallIters: 100, MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	traj := res.Trajectory
	if traj.Reason != core.ClosureBudget {
		t.Errorf("reason=%s, want budget", traj.Reason)
	}
	if len(traj.Iterations) != 1 {
		t.Errorf("ran %d iteration(s) on a 1-cycle budget, want exactly 1", len(traj.Iterations))
	}
}

// TestCloseMaxIters: the iteration cap stops the loop.
func TestCloseMaxIters(t *testing.T) {
	cfg := tinyConfig()
	base, err := regress.RunConfig(cfg, regress.Options{Tests: []core.Test{testcases.BasicWriteRead()}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	cov := base.SuiteCoverage
	cov.Item("foreign", "unhittable")
	res, err := CloseGroup(cfg, cov, Options{MaxIters: 1, StallIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trajectory.Reason != core.ClosureMaxIters {
		t.Errorf("reason=%s, want max-iters", res.Trajectory.Reason)
	}
	if len(res.Trajectory.Iterations) != 1 {
		t.Errorf("ran %d iteration(s), want 1", len(res.Trajectory.Iterations))
	}
}

// TestPlanDeterministicAndHashed: the plan is a pure function of its inputs,
// unit names embed a content hash, and changing the iteration (which scales
// the operation count) changes the hash — so the result cache can never
// alias two different syntheses.
func TestPlanDeterministicAndHashed(t *testing.T) {
	cfg := holesConfig()
	holes := []coverage.Hole{{Item: "opcode", Bin: "SWAP1"}, {Item: "latency", Bin: "ge20"}}
	a := Plan(cfg, holes, 1)
	b := Plan(cfg, holes, 1)
	if len(a) != len(b) || len(a) != 2 {
		t.Fatalf("plan sizes: %d vs %d (want 2)", len(a), len(b))
	}
	for i := range a {
		if a[i].Test.Name != b[i].Test.Name {
			t.Errorf("unit %d name differs across identical plans: %q vs %q", i, a[i].Test.Name, b[i].Test.Name)
		}
		if !strings.Contains(a[i].Test.Name, "@") || !strings.HasPrefix(a[i].Test.Name, "closure/") {
			t.Errorf("unit name %q lacks the closure/slug@hash shape", a[i].Test.Name)
		}
	}
	c := Plan(cfg, holes, 2)
	for i := range a {
		if a[i].Test.Name == c[i].Test.Name {
			t.Errorf("iteration 1 and 2 plans share name %q despite different operation counts", a[i].Test.Name)
		}
	}
}

// TestPlanCoversEveryHole: every live hole of the union model appears in
// some planned unit's target list — the planner never silently drops one.
func TestPlanCoversEveryHole(t *testing.T) {
	for _, cfg := range []nodespec.Config{holesConfig(), tinyConfig()} {
		cov := catg.NewCoverageModel(cfg, catg.UnionTraffic(cfg)).Group
		holes := cov.Holes() // everything: nothing sampled yet
		dead := map[coverage.Hole]bool{}
		for _, d := range catg.UnreachableBins(cfg, catg.UnionTraffic(cfg)) {
			dead[d] = true
		}
		var live []coverage.Hole
		for _, h := range holes {
			if !dead[h] {
				live = append(live, h)
			}
		}
		units := Plan(cfg, live, 1)
		planned := map[string]bool{}
		for _, u := range units {
			for _, h := range u.Holes {
				planned[h.String()] = true
			}
		}
		for _, h := range live {
			if !planned[h.String()] {
				t.Errorf("%s: hole %s not covered by any planned unit", cfg.Name, h)
			}
		}
	}
}

func TestPlanFeedbackEscalatesOnlyBarrenRecipes(t *testing.T) {
	cfg := holesConfig()
	holes := []coverage.Hole{{Item: "opcode", Bin: "SWAP1"}, {Item: "latency", Bin: "ge20"}}
	base := PlanWith(cfg, holes, nil)
	if len(base) != 2 {
		t.Fatalf("plan size %d, want 2", len(base))
	}
	slug0, slug1 := unitSlug(base[0].Test.Name), unitSlug(base[1].Test.Name)
	if slug0 == "" || slug1 == "" || slug0 == slug1 {
		t.Fatalf("bad slugs %q, %q from %q, %q", slug0, slug1, base[0].Test.Name, base[1].Test.Name)
	}

	// Only slug1's recipe has come back empty: its unit must change (a
	// bigger dose re-fingerprints the traffic) while slug0's stays
	// byte-identical, preserving its cache identity.
	esc := PlanWith(cfg, holes, History{slug1: {Attempts: 2, Barren: 2}})
	if esc[0].Test.Name != base[0].Test.Name {
		t.Errorf("productive recipe %s changed: %q -> %q", slug0, base[0].Test.Name, esc[0].Test.Name)
	}
	if esc[1].Test.Name == base[1].Test.Name {
		t.Errorf("barren recipe %s did not escalate: still %q", slug1, base[1].Test.Name)
	}

	// A recipe whose last attempt yielded bins is back at the base dose no
	// matter how many attempts preceded it.
	reset := PlanWith(cfg, holes, History{slug1: {Attempts: 5, Barren: 0}})
	if reset[1].Test.Name != base[1].Test.Name {
		t.Errorf("recipe %s with reset barren streak escalated: %q -> %q", slug1, base[1].Test.Name, reset[1].Test.Name)
	}

	// The dose is capped: three consecutive barren rounds saturate at
	// maxOps, exactly like the legacy iteration ramp at iter 4 and beyond.
	capped := PlanWith(cfg, holes, History{slug0: {Barren: 3}, slug1: {Barren: 9}})
	legacy := Plan(cfg, holes, 4)
	for i := range capped {
		if capped[i].Test.Name != legacy[i].Test.Name {
			t.Errorf("unit %d: capped history %q != legacy saturated ramp %q", i, capped[i].Test.Name, legacy[i].Test.Name)
		}
	}
}

func TestHistoryOfAttributesPerRecipe(t *testing.T) {
	traj := &core.ClosureTrajectory{Iterations: []core.ClosureIteration{
		{Units: []core.ClosureUnit{
			{Test: "closure/pkt_len@abc", NewBins: 0},
			{Test: "closure/union@s1", NewBins: 2},
		}},
		{Units: []core.ClosureUnit{
			{Test: "closure/pkt_len@def", NewBins: 0},
			{Test: "closure/union@s2", NewBins: 0},
			{Test: "smoke", NewBins: 0}, // foreign name: ignored
		}},
	}}
	h := HistoryOf(traj)
	if len(h) != 2 {
		t.Fatalf("history has %d slugs, want 2: %v", len(h), h)
	}
	if st := h["pkt_len"]; st.Attempts != 2 || st.Barren != 2 {
		t.Errorf("pkt_len = %+v, want {Attempts:2 Barren:2}", st)
	}
	if st := h["union"]; st.Attempts != 2 || st.Barren != 1 {
		t.Errorf("union = %+v, want {Attempts:2 Barren:1} (yield resets the streak)", st)
	}
}
