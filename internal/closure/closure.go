package closure

// This file is the closure loop itself: plan against the holes of the merged
// suite coverage, run the synthesized units on the regression engine, merge
// their coverage back in canonical order, repeat until full or out of
// budget. The loop's entire observable output is the core.ClosureTrajectory
// record; report.go renders it.

import (
	"context"
	"fmt"
	"io"

	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/regress"
)

// Options tunes a closure run.
type Options struct {
	// Tests is the base suite Close runs before closing (unused by
	// CloseGroup, whose caller already ran a suite).
	Tests []core.Test
	// Seeds seeds the base suite; Seeds[0] (default 1) also salts the
	// per-iteration closure seeds, so a different base seed explores a
	// different closure trajectory.
	Seeds []int64
	// Bugs seeds the BCA view, exactly as in a plain regression run.
	Bugs bca.Bugs
	// Workers bounds the engine's worker pool (0 = GOMAXPROCS). The
	// trajectory is byte-identical at any width.
	Workers int
	// Cache, when non-nil, serves unchanged units from disk. Cycle
	// accounting counts cached units at their recorded cost, so a warm
	// trajectory is identical to the cold one that produced it.
	Cache *regress.Cache
	// MaxIters bounds the loop (default 8).
	MaxIters int
	// Budget bounds the total simulated cycles spent on closure units
	// across both views; 0 means unlimited. The check runs between
	// iterations, so the final iteration may overshoot.
	Budget uint64
	// StallIters stops the loop after this many consecutive iterations
	// that closed no new bin (default 3): more of the same stimulus is not
	// going to help.
	StallIters int
	// Log receives progress lines when non-nil.
	Log io.Writer
	// NoLint skips the static-analysis gate of the base suite run.
	NoLint bool
}

// Result is the outcome of a closure run.
type Result struct {
	// Trajectory is the complete serializable record of the loop.
	Trajectory *core.ClosureTrajectory
	// Coverage is the final merged suite coverage (the same group the
	// caller handed CloseGroup, after mutation).
	Coverage *coverage.Group
	// Base is the base-suite aggregate (nil when the caller ran the suite
	// itself and used CloseGroup).
	Base *regress.ConfigResult
	// BaseStats / ClosureStats split the ran/cached unit counts between
	// the base suite and the synthesized closure units.
	BaseStats, ClosureStats regress.Stats
}

// Stats sums the base-suite and closure-unit statistics.
func (r *Result) Stats() regress.Stats {
	return regress.Stats{
		Ran:    r.BaseStats.Ran + r.ClosureStats.Ran,
		Cached: r.BaseStats.Cached + r.ClosureStats.Cached,
	}
}

// closureSeed derives the deterministic seed of one closure iteration from
// the base seed. The offset keeps closure seeds disjoint from any plausible
// hand-picked suite seed, so a synthesized unit never aliases a suite run.
func closureSeed(base int64, iter int) int64 {
	return base*1_000_000 + int64(iter)
}

// Close runs the base suite on cfg and then closes its coverage holes.
func Close(cfg nodespec.Config, opt Options) (*Result, error) {
	return CloseCtx(context.Background(), cfg, opt)
}

// CloseCtx is Close under a cancellation context, threaded through the base
// suite and every closure iteration.
func CloseCtx(ctx context.Context, cfg nodespec.Config, opt Options) (*Result, error) {
	base, stats, err := regress.RunCtx(ctx, []nodespec.Config{cfg}, regress.Options{
		Tests: opt.Tests, Seeds: opt.Seeds, Bugs: opt.Bugs,
		Log: opt.Log, NoLint: opt.NoLint, Workers: opt.Workers, Cache: opt.Cache,
	})
	if err != nil {
		return nil, err
	}
	res, err := CloseGroupCtx(ctx, cfg, base[0].SuiteCoverage, opt)
	if err != nil {
		return nil, err
	}
	res.Base = base[0]
	res.BaseStats = stats
	return res, nil
}

// CloseGroup runs only the closure loop against an already-populated suite
// coverage group — typically the aggregate of a prior matrix run — mutating
// it as holes close. A group with no holes returns immediately with zero
// iterations, zero synthesized units and an untouched cache: closure on full
// coverage is a no-op.
func CloseGroup(cfg nodespec.Config, cov *coverage.Group, opt Options) (*Result, error) {
	return CloseGroupCtx(context.Background(), cfg, cov, opt)
}

// CloseGroupCtx is CloseGroup under a cancellation context: the loop checks
// ctx between iterations and the engine checks it within each one, so a
// served closure job cancels promptly at any depth.
func CloseGroupCtx(ctx context.Context, cfg nodespec.Config, cov *coverage.Group, opt Options) (*Result, error) {
	cfg = cfg.WithDefaults()
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 8
	}
	stallAfter := opt.StallIters
	if stallAfter <= 0 {
		stallAfter = 3
	}
	baseSeed := int64(1)
	if len(opt.Seeds) > 0 {
		baseSeed = opt.Seeds[0]
	}

	// Statically unreachable bins (lint CRVE017) are never planned for: no
	// stimulus closes them, and chasing them would only burn the budget.
	dead := map[coverage.Hole]bool{}
	traj := &core.ClosureTrajectory{Config: cfg.Name, Group: cov.Name}
	for _, d := range catg.UnreachableBins(cfg, catg.UnionTraffic(cfg)) {
		dead[d] = true
		traj.DeadBins = append(traj.DeadBins, d.String())
	}

	_, traj.TotalBins = cov.Covered()
	traj.StartPercent = cov.Percent()
	traj.HolesStart = len(cov.Holes())

	stall := 0
	for iter := 1; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("closure: %s: %w", cfg.Name, err)
		}
		all := cov.Holes()
		var live []coverage.Hole
		for _, h := range all {
			if !dead[h] {
				live = append(live, h)
			}
		}
		if len(all) == 0 {
			traj.Reason = core.ClosureFull
			traj.Converged = true
			break
		}
		if len(live) == 0 {
			traj.Reason = core.ClosureDeadBins
			traj.Converged = true
			break
		}
		if iter > maxIters {
			traj.Reason = core.ClosureMaxIters
			break
		}
		if opt.Budget > 0 && traj.TotalCycles >= opt.Budget {
			traj.Reason = core.ClosureBudget
			break
		}
		if stall >= stallAfter {
			traj.Reason = core.ClosureStalled
			break
		}

		// Dose each recipe by its measured record so far: recipes whose
		// previous attempts yielded no new bins escalate geometrically,
		// productive ones stay at the base dose.
		units := PlanWith(cfg, live, HistoryOf(traj))
		if len(units) == 0 {
			traj.Reason = core.ClosureStalled
			break
		}
		seed := closureSeed(baseSeed, iter)
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "closure %s iter %d: %d hole(s), %d unit(s), seed %d\n",
				cfg.Name, iter, len(live), len(units), seed)
		}
		tests := make([]core.Test, len(units))
		for i, u := range units {
			tests[i] = u.Test
		}
		// Synthesized units bypass the lint gate: the configuration already
		// passed it (or was explicitly -nolint'ed) before the base suite ran.
		cres, err := regress.RunConfigCtx(ctx, cfg, regress.Options{
			Tests: tests, Seeds: []int64{seed}, Bugs: opt.Bugs,
			Log: opt.Log, Workers: opt.Workers, Cache: opt.Cache,
		})
		if err != nil {
			return nil, fmt.Errorf("closure: %s iter %d: %w", cfg.Name, iter, err)
		}

		// Merge in canonical order (cres.Runs follows the tests order) and
		// attribute each newly-hit bin to the first unit whose merge closed
		// it — deterministic at any worker count.
		itRec := core.ClosureIteration{Iter: iter, HolesBefore: len(all)}
		for i, run := range cres.Runs {
			before := len(cov.Holes())
			if err := cov.Merge(run.Pair.RTL.Coverage); err != nil {
				return nil, fmt.Errorf("closure: %s iter %d: %w", cfg.Name, iter, err)
			}
			cycles := run.Pair.RTL.Cycles + run.Pair.BCA.Cycles
			passed := run.Pair.SignedOff()
			if !passed {
				traj.Failures++
			}
			if run.Cached {
				itRec.CacheHits++
				traj.UnitsCached++
			} else {
				traj.UnitsRun++
			}
			itRec.Cycles += cycles
			itRec.Units = append(itRec.Units, core.ClosureUnit{
				Test:    run.Test,
				Seed:    seed,
				Holes:   holeStrings(units[i].Holes),
				NewBins: before - len(cov.Holes()),
				Cycles:  cycles,
				Cached:  run.Cached,
				Passed:  passed,
			})
		}
		itRec.HolesAfter = len(cov.Holes())
		itRec.NewBins = itRec.HolesBefore - itRec.HolesAfter
		traj.TotalCycles += itRec.Cycles
		traj.Iterations = append(traj.Iterations, itRec)
		if itRec.NewBins == 0 {
			stall++
		} else {
			stall = 0
		}
	}

	traj.HolesEnd = len(cov.Holes())
	traj.FinalPercent = cov.Percent()
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "closure %s: %s\n", cfg.Name, Summary(traj))
	}
	res := &Result{Trajectory: traj, Coverage: cov}
	for _, it := range traj.Iterations {
		res.ClosureStats.Ran += len(it.Units) - it.CacheHits
		res.ClosureStats.Cached += it.CacheHits
	}
	return res, nil
}

func holeStrings(hs []coverage.Hole) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.String()
	}
	return out
}
