// Package closure is the coverage-closure engine: it turns the regression
// flow into a feedback loop that automates the paper's "coverage not full →
// add tests" arc. After a suite run, the merged functional-coverage state
// names its holes (coverage.Group.Holes); the planner in this file maps each
// hole back to the catg.TrafficConfig/TargetConfig dimensions that can reach
// it and synthesizes biased follow-up work units; the engine (closure.go)
// feeds them through the regress runner pool and result cache until coverage
// is full or a budget runs out.
//
// Everything is deterministic: the plan is a pure function of
// (configuration, hole set, iteration), unit seeds derive from the base seed
// and the iteration number, and merges happen in canonical order — so a
// closure trajectory is reproducible at any worker count, and the warm
// re-run of a converged closure simulates nothing.
package closure

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Unit is one synthesized follow-up work unit: a test whose stimulus is
// biased toward a set of coverage holes.
type Unit struct {
	Test core.Test
	// Holes lists the holes this unit is aimed at (a unit may close others
	// incidentally; attribution happens at merge time).
	Holes []coverage.Hole
}

// planner carries the per-Plan state: the defaulted configuration and the
// dosing feedback that sizes each recipe's operation count.
type planner struct {
	cfg  nodespec.Config
	hist History
	// assumeBarren is Plan's legacy global ramp: with no measured history,
	// every recipe is dosed as if this many prior attempts had closed
	// nothing.
	assumeBarren int
}

// Operation-count dosing: every recipe starts at baseOps; each measured
// consecutive zero-yield attempt of that recipe doubles the dose up to
// maxOps (the same ceiling the old blind 40*iter ramp had).
const (
	baseOps = 40
	maxOps  = 320
)

// SlugStats is the measured outcome history of one planner recipe.
type SlugStats struct {
	// Attempts counts units planned with this slug across all iterations.
	Attempts int
	// Barren counts the consecutive most-recent attempts that closed no
	// bin — the signal that the current dose is not enough.
	Barren int
}

// History maps planner recipe slugs (the part of a synthesized test name
// between "closure/" and "@") to their measured outcomes. It feeds PlanWith
// so later iterations escalate stimulus only where it measurably failed.
type History map[string]SlugStats

// HistoryOf digests a closure trajectory into planner history: every
// recorded unit is attributed to its recipe slug, and a unit that closed at
// least one new bin resets the recipe's barren streak.
func HistoryOf(traj *core.ClosureTrajectory) History {
	h := History{}
	for _, it := range traj.Iterations {
		for _, u := range it.Units {
			slug := unitSlug(u.Test)
			if slug == "" {
				continue
			}
			st := h[slug]
			st.Attempts++
			if u.NewBins == 0 {
				st.Barren++
			} else {
				st.Barren = 0
			}
			h[slug] = st
		}
	}
	return h
}

// unitSlug extracts the recipe slug from a synthesized test name of the form
// "closure/<slug>@<fingerprint>", or "" for foreign names.
func unitSlug(name string) string {
	rest, ok := strings.CutPrefix(name, "closure/")
	if !ok {
		return ""
	}
	slug, _, _ := strings.Cut(rest, "@")
	return slug
}

// opsFor sizes one recipe's operation count from its measured history: the
// base dose, doubled once per consecutive zero-yield attempt, capped. A
// recipe that closed bins last time stays at the base dose — the next
// iteration's fresh seed explores new stimulus at the same cost — while one
// that keeps coming back empty escalates geometrically.
func (p *planner) opsFor(slug string) int {
	barren := p.assumeBarren
	if st, ok := p.hist[slug]; ok {
		barren = st.Barren
	}
	ops := baseOps
	for ; barren > 0 && ops < maxOps; barren-- {
		ops *= 2
	}
	if ops > maxOps {
		ops = maxOps
	}
	return ops
}

// Plan maps a hole set to biased follow-up units with no measured history:
// iteration number stands in for feedback, dosing every recipe as if the
// iter-1 prior rounds had all come back empty. It is pure and
// deterministic: the same (cfg, holes, iter) always yields the same units in
// the same order, with the same content-hashed names.
func Plan(cfg nodespec.Config, holes []coverage.Hole, iter int) []Unit {
	if iter < 1 {
		iter = 1
	}
	return plan(cfg, holes, nil, iter-1)
}

// PlanWith maps a hole set to biased follow-up units using measured
// per-recipe coverage deltas (HistoryOf a trajectory in progress): stimulus
// escalates only where prior rounds measurably failed to close bins, instead
// of ramping every recipe in lockstep. Like Plan it is pure and
// deterministic in its inputs. Holes the planner has no recipe for fall into
// one catch-all union-traffic unit, so no hole is ever silently dropped.
//
// The model-shaping traffic fields (Kinds, Sizes, UnmappedPct, ProgPct,
// ChunkPct) are kept uniform across initiators within a unit: the per-run
// coverage model derives from initiator 0's traffic, and a bin a unit is
// chasing must be declared by the unit's own model or its hits are dropped
// before the merge. Per-initiator bias uses only Ops, Targets, IdlePct and
// PriMax, which do not shape the model.
func PlanWith(cfg nodespec.Config, holes []coverage.Hole, hist History) []Unit {
	return plan(cfg, holes, hist, 0)
}

func plan(cfg nodespec.Config, holes []coverage.Hole, hist History, assumeBarren int) []Unit {
	cfg = cfg.WithDefaults()
	p := &planner{cfg: cfg, hist: hist, assumeBarren: assumeBarren}

	// Bucket the holes by item; bin order within an item follows the holes
	// slice (declaration order).
	byItem := map[string][]string{}
	for _, h := range holes {
		byItem[h.Item] = append(byItem[h.Item], h.Bin)
	}
	bins := func(item string) []string { return byItem[item] }
	has := func(item, bin string) bool {
		for _, b := range byItem[item] {
			if b == bin {
				return true
			}
		}
		return false
	}

	var units []Unit

	// opcode holes: one unit per operation kind, sizes restricted to exactly
	// the missing ones (the generator draws uniformly, so a narrow
	// constraint closes the bin almost surely in one round).
	if missing := bins("opcode"); len(missing) > 0 {
		units = append(units, p.opcodeUnits(missing)...)
	}

	// req_pkt_len holes: drive the kind/size combinations whose request
	// packets have the missing cell counts.
	if missing := bins("req_pkt_len"); len(missing) > 0 {
		if u, ok := p.pktLenUnit(missing); ok {
			units = append(units, u)
		}
	}

	// route/tgtN and init_x_route holes share one recipe: point each
	// involved initiator's Targets at its missing routes.
	if u, ok := p.routesUnit(bins("route"), bins("init_x_route")); ok {
		units = append(units, u)
	}

	// Error paths: route/unmapped and response/err are both closed by
	// unmapped traffic.
	if has("route", "unmapped") || has("response", "err") {
		units = append(units, p.errorUnit(has("route", "unmapped"), has("response", "err")))
	}
	if has("route", "prog") && cfg.ProgPort {
		units = append(units, p.progUnit())
	}

	// initiator/initN holes: boost the silent initiators, starve the rest.
	if missing := bins("initiator"); len(missing) > 0 {
		if u, ok := p.initiatorUnit(missing); ok {
			units = append(units, u)
		}
	}

	// Plain traffic closes response/ok and chunk/plain.
	if has("response", "ok") || has("chunk", "plain") {
		units = append(units, p.plainUnit(has("response", "ok"), has("chunk", "plain")))
	}
	if has("chunk", "locked") {
		units = append(units, p.chunkUnit())
	}

	if has("contention", "concurrent") {
		units = append(units, p.contentionConcurrentUnit())
	}
	if has("contention", "solo") {
		units = append(units, p.contentionSoloUnit())
	}

	if has("completion_order", "reordered") {
		units = append(units, p.reorderedUnit())
	}
	if has("completion_order", "in_order") {
		units = append(units, p.inOrderUnit())
	}

	if missing := bins("latency"); len(missing) > 0 {
		units = append(units, p.latencyUnits(missing)...)
	}

	// Catch-all for holes in items the planner has no recipe for (a future
	// coverage item, say): heavy union traffic. Without this, an unknown
	// hole would stall the loop silently.
	known := map[string]bool{
		"opcode": true, "req_pkt_len": true, "route": true,
		"init_x_route": true, "response": true, "initiator": true,
		"chunk": true, "contention": true, "completion_order": true,
		"latency": true,
	}
	var unknown []coverage.Hole
	for _, h := range holes {
		if !known[h.Item] {
			unknown = append(unknown, h)
		}
	}
	if len(unknown) > 0 {
		units = append(units, p.fallbackUnit(unknown))
	}
	return units
}

// opcodeBins enumerates every opcode the generator could ever emit for this
// node, keyed by its bin name.
func (p *planner) opcodeTable() map[string]stbus.Opcode {
	table := map[string]stbus.Opcode{}
	for _, k := range []stbus.OpKind{stbus.KindLoad, stbus.KindStore, stbus.KindRMW, stbus.KindSwap} {
		for _, size := range []int{1, 2, 4, 8, 16, 32, 64} {
			op := stbus.Op(k, size)
			if op.ValidFor(p.cfg.Port.Type, p.cfg.Port.BusBytes()) {
				table[op.String()] = op
			}
		}
	}
	return table
}

func kindSlug(k stbus.OpKind) string {
	switch k {
	case stbus.KindLoad:
		return "ld"
	case stbus.KindStore:
		return "st"
	case stbus.KindRMW:
		return "rmw"
	case stbus.KindSwap:
		return "swap"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// opcodeUnits emits one unit per operation kind with missing opcode bins,
// constrained to exactly the missing sizes of that kind.
func (p *planner) opcodeUnits(missing []string) []Unit {
	table := p.opcodeTable()
	sizesByKind := map[stbus.OpKind][]int{}
	holesByKind := map[stbus.OpKind][]coverage.Hole{}
	for _, bin := range missing {
		op, ok := table[bin]
		if !ok {
			continue // stale bin name; the fallback is not needed, it cannot be declared either
		}
		k := op.Kind()
		sizesByKind[k] = append(sizesByKind[k], op.SizeBytes())
		holesByKind[k] = append(holesByKind[k], coverage.Hole{Item: "opcode", Bin: bin})
	}
	var units []Unit
	for _, k := range []stbus.OpKind{stbus.KindLoad, stbus.KindStore, stbus.KindRMW, stbus.KindSwap} {
		sizes := sizesByKind[k]
		if len(sizes) == 0 {
			continue
		}
		sort.Ints(sizes)
		tc := catg.TrafficConfig{Ops: p.opsFor("opcode_" + kindSlug(k)), Kinds: []stbus.OpKind{k}, Sizes: sizes}
		units = append(units, p.unit("opcode_"+kindSlug(k), holesByKind[k],
			p.uniform(tc), p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 2, QueueDepth: 8})))
	}
	return units
}

// pktLenUnit drives the kind/size combinations whose request packets carry
// the missing cell counts.
func (p *planner) pktLenUnit(missing []string) (Unit, bool) {
	want := map[int]bool{}
	var hs []coverage.Hole
	for _, bin := range missing {
		n, err := strconv.Atoi(strings.TrimSuffix(bin, "cell"))
		if err != nil {
			continue
		}
		want[n] = true
		hs = append(hs, coverage.Hole{Item: "req_pkt_len", Bin: bin})
	}
	var kinds []stbus.OpKind
	var sizes []int
	seenKind := map[stbus.OpKind]bool{}
	seenSize := map[int]bool{}
	for _, k := range []stbus.OpKind{stbus.KindLoad, stbus.KindStore, stbus.KindRMW, stbus.KindSwap} {
		for _, size := range []int{1, 2, 4, 8, 16, 32, 64} {
			op := stbus.Op(k, size)
			if !op.ValidFor(p.cfg.Port.Type, p.cfg.Port.BusBytes()) {
				continue
			}
			if !want[stbus.ReqLen(p.cfg.Port.Type, op, p.cfg.Port.BusBytes())] {
				continue
			}
			if !seenKind[k] {
				seenKind[k] = true
				kinds = append(kinds, k)
			}
			if !seenSize[size] {
				seenSize[size] = true
				sizes = append(sizes, size)
			}
		}
	}
	if len(kinds) == 0 || len(hs) == 0 {
		return Unit{}, false
	}
	sort.Ints(sizes)
	tc := catg.TrafficConfig{Ops: p.opsFor("pkt_len"), Kinds: kinds, Sizes: sizes}
	return p.unit("pkt_len", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 2, QueueDepth: 8})), true
}

// routesUnit aims each involved initiator's Targets at its missing routes,
// covering both route/tgtN and init_x_route/initI×tgtT holes in one unit.
func (p *planner) routesUnit(routeBins, crossBins []string) (Unit, bool) {
	perInit := make(map[int]map[int]bool)
	addPair := func(i, t int) {
		if i < 0 || i >= p.cfg.NumInit || t < 0 || t >= p.cfg.NumTgt || !p.cfg.Connected(i, t) {
			return
		}
		if perInit[i] == nil {
			perInit[i] = map[int]bool{}
		}
		perInit[i][t] = true
	}
	var hs []coverage.Hole
	for _, bin := range routeBins {
		t, err := strconv.Atoi(strings.TrimPrefix(bin, "tgt"))
		if err != nil {
			continue // unmapped/prog handled elsewhere
		}
		for i := 0; i < p.cfg.NumInit; i++ {
			addPair(i, t)
		}
		hs = append(hs, coverage.Hole{Item: "route", Bin: bin})
	}
	for _, bin := range crossBins {
		parts := strings.SplitN(bin, "×", 2)
		if len(parts) != 2 {
			continue
		}
		i, err1 := strconv.Atoi(strings.TrimPrefix(parts[0], "init"))
		t, err2 := strconv.Atoi(strings.TrimPrefix(parts[1], "tgt"))
		if err1 != nil || err2 != nil {
			continue
		}
		addPair(i, t)
		hs = append(hs, coverage.Hole{Item: "init_x_route", Bin: bin})
	}
	if len(perInit) == 0 {
		return Unit{}, false
	}
	traffic := make([]catg.TrafficConfig, p.cfg.NumInit)
	for i := range traffic {
		tc := catg.TrafficConfig{Ops: p.opsFor("routes"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4, 8}}
		if missing := perInit[i]; len(missing) > 0 {
			var ts []int
			for t := range missing {
				ts = append(ts, t)
			}
			sort.Ints(ts)
			tc.Targets = ts
		} else {
			tc.Ops = 5
			tc.IdlePct = 50
		}
		traffic[i] = tc
	}
	return p.unit("routes", hs, traffic,
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 3})), true
}

func (p *planner) errorUnit(routeHole, respHole bool) Unit {
	var hs []coverage.Hole
	if routeHole {
		hs = append(hs, coverage.Hole{Item: "route", Bin: "unmapped"})
	}
	if respHole {
		hs = append(hs, coverage.Hole{Item: "response", Bin: "err"})
	}
	tc := catg.TrafficConfig{Ops: p.opsFor("error_paths"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4}, UnmappedPct: 60}
	return p.unit("error_paths", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 3}))
}

func (p *planner) progUnit() Unit {
	hs := []coverage.Hole{{Item: "route", Bin: "prog"}}
	tc := catg.TrafficConfig{Ops: p.opsFor("prog"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4}, ProgPct: 50}
	return p.unit("prog", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 3}))
}

// initiatorUnit boosts the initiators whose initN bins are unhit and starves
// the rest, so the silent ports get bus time even under contention.
func (p *planner) initiatorUnit(missing []string) (Unit, bool) {
	want := map[int]bool{}
	var hs []coverage.Hole
	for _, bin := range missing {
		i, err := strconv.Atoi(strings.TrimPrefix(bin, "init"))
		if err != nil || i < 0 || i >= p.cfg.NumInit {
			continue
		}
		want[i] = true
		hs = append(hs, coverage.Hole{Item: "initiator", Bin: bin})
	}
	if len(want) == 0 {
		return Unit{}, false
	}
	traffic := make([]catg.TrafficConfig, p.cfg.NumInit)
	for i := range traffic {
		tc := catg.TrafficConfig{Ops: p.opsFor("initiators"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4}}
		if !want[i] {
			tc.Ops = 4
			tc.IdlePct = 60
		}
		traffic[i] = tc
	}
	return p.unit("initiators", hs, traffic,
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 2, QueueDepth: 8})), true
}

func (p *planner) plainUnit(respOK, chunkPlain bool) Unit {
	var hs []coverage.Hole
	if respOK {
		hs = append(hs, coverage.Hole{Item: "response", Bin: "ok"})
	}
	if chunkPlain {
		hs = append(hs, coverage.Hole{Item: "chunk", Bin: "plain"})
	}
	tc := catg.TrafficConfig{Ops: p.opsFor("plain"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{1, 4, 8}}
	if chunkPlain {
		// The chunk item is declared only when ChunkPct > 0; a trace of
		// chunked traffic keeps the bin declared while most operations stay
		// plain.
		tc.ChunkPct = 1
	}
	return p.unit("plain", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 2}))
}

func (p *planner) chunkUnit() Unit {
	hs := []coverage.Hole{{Item: "chunk", Bin: "locked"}}
	tc := catg.TrafficConfig{Ops: p.opsFor("chunk"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4, 8}, ChunkPct: 65}
	return p.unit("chunk", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 3}))
}

// contentionConcurrentUnit makes every initiator request continuously into
// slow-ish targets, so the arbiter sees overlapping requests.
func (p *planner) contentionConcurrentUnit() Unit {
	hs := []coverage.Hole{{Item: "contention", Bin: "concurrent"}}
	tc := catg.TrafficConfig{Ops: p.opsFor("contention_concurrent"), Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4}, PriMax: 15}
	return p.unit("contention_concurrent", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 2, MaxLatency: 5, QueueDepth: 2}))
}

// contentionSoloUnit gives initiator 0 a long solo tail: everyone else
// issues a handful of operations and goes quiet.
func (p *planner) contentionSoloUnit() Unit {
	hs := []coverage.Hole{{Item: "contention", Bin: "solo"}}
	traffic := make([]catg.TrafficConfig, p.cfg.NumInit)
	for i := range traffic {
		tc := catg.TrafficConfig{Ops: p.opsFor("contention_solo"), Kinds: []stbus.OpKind{stbus.KindLoad}, Sizes: []int{4}, IdlePct: 40}
		if i != 0 {
			tc.Ops = 3
			tc.IdlePct = 0
		}
		traffic[i] = tc
	}
	return p.unit("contention_solo", hs, traffic,
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 1, QueueDepth: 8}))
}

// reorderedUnit reproduces the paper's out-of-order forcing recipe: short
// loads from one initiator to targets of very different speed.
func (p *planner) reorderedUnit() Unit {
	hs := []coverage.Hole{{Item: "completion_order", Bin: "reordered"}}
	tc := catg.TrafficConfig{Ops: p.opsFor("ooo_reordered"), Kinds: []stbus.OpKind{stbus.KindLoad}, Sizes: []int{4}}
	targets := make([]catg.TargetConfig, p.cfg.NumTgt)
	for t := range targets {
		if t%2 == 0 {
			targets[t] = catg.TargetConfig{MinLatency: 22, MaxLatency: 28}
		} else {
			targets[t] = catg.TargetConfig{MinLatency: 0, MaxLatency: 1}
		}
	}
	return p.unit("ooo_reordered", hs, p.uniform(tc), targets)
}

func (p *planner) inOrderUnit() Unit {
	hs := []coverage.Hole{{Item: "completion_order", Bin: "in_order"}}
	tc := catg.TrafficConfig{Ops: p.opsFor("ooo_in_order"), Kinds: []stbus.OpKind{stbus.KindLoad}, Sizes: []int{4}, IdlePct: 60}
	return p.unit("ooo_in_order", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 1, MaxLatency: 1}))
}

// latencyUnits emits one unit per missing latency band; each band needs its
// own target timing.
func (p *planner) latencyUnits(missing []string) []Unit {
	recipes := []struct {
		bin    string
		target catg.TargetConfig
		idle   int
	}{
		// Hitting a band from below needs an idle bus (no queueing on top of
		// the target latency); from above, the target latency dominates.
		{"lt5", catg.TargetConfig{MinLatency: 0, MaxLatency: 1, QueueDepth: 8}, 60},
		{"lt10", catg.TargetConfig{MinLatency: 4, MaxLatency: 6, QueueDepth: 8}, 50},
		{"lt20", catg.TargetConfig{MinLatency: 12, MaxLatency: 15, QueueDepth: 8}, 40},
		{"ge20", catg.TargetConfig{MinLatency: 24, MaxLatency: 30}, 0},
	}
	var units []Unit
	for _, r := range recipes {
		found := false
		for _, bin := range missing {
			if bin == r.bin {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		hs := []coverage.Hole{{Item: "latency", Bin: r.bin}}
		tc := catg.TrafficConfig{Ops: p.opsFor("lat_" + r.bin), Kinds: []stbus.OpKind{stbus.KindLoad}, Sizes: []int{4}, IdlePct: r.idle}
		units = append(units, p.unit("lat_"+r.bin, hs, p.uniform(tc), p.targets(r.target)))
	}
	return units
}

// fallbackUnit is the catch-all for holes the planner has no recipe for:
// heavy union traffic across every stimulus class.
func (p *planner) fallbackUnit(hs []coverage.Hole) Unit {
	tc := catg.UnionTraffic(p.cfg)
	tc.Ops = p.opsFor("union")
	tc.UnmappedPct = 10
	tc.ChunkPct = 15
	tc.IdlePct = 20
	if p.cfg.ProgPort {
		tc.ProgPct = 10
	}
	return p.unit("union", hs, p.uniform(tc),
		p.targets(catg.TargetConfig{MinLatency: 0, MaxLatency: 6, GntGapPct: 15}))
}

// uniform replicates one traffic configuration across every initiator.
func (p *planner) uniform(tc catg.TrafficConfig) []catg.TrafficConfig {
	out := make([]catg.TrafficConfig, p.cfg.NumInit)
	for i := range out {
		out[i] = tc
	}
	return out
}

// targets replicates one target configuration across every target.
func (p *planner) targets(tc catg.TargetConfig) []catg.TargetConfig {
	out := make([]catg.TargetConfig, p.cfg.NumTgt)
	for t := range out {
		out[t] = tc
	}
	return out
}

// unit materialises a planned unit as a core.Test. The name embeds a content
// hash of the complete per-initiator traffic and per-target timing, so the
// content-addressed result cache (which keys units by test name) can never
// confuse two different syntheses — including the same hole class planned at
// different iterations with different operation counts.
func (p *planner) unit(slug string, hs []coverage.Hole, traffic []catg.TrafficConfig, targets []catg.TargetConfig) Unit {
	name := fmt.Sprintf("closure/%s@%s", slug, fingerprint(traffic, targets))
	return Unit{
		Test: core.Test{
			Name: name,
			TrafficFor: func(_ nodespec.Config, i int) catg.TrafficConfig {
				if i < 0 || i >= len(traffic) {
					return traffic[0]
				}
				return traffic[i]
			},
			TargetFor: func(_ nodespec.Config, t int) catg.TargetConfig {
				if t < 0 || t >= len(targets) {
					return targets[0]
				}
				return targets[t]
			},
		},
		Holes: hs,
	}
}

// fingerprint hashes the full stimulus description of a unit.
func fingerprint(traffic []catg.TrafficConfig, targets []catg.TargetConfig) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%+v", traffic, targets)
	return fmt.Sprintf("%016x", h.Sum64())
}
