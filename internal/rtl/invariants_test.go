package rtl

import (
	"math/rand"
	"testing"

	"crve/internal/arb"
	"crve/internal/catg"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// TestNodeInvariantsUnderRandomTraffic drives random configurations with
// random traffic and asserts, every cycle, structural invariants of the node
// that no specific scenario test pins down:
//
//   - the node never asserts gnt to a non-requesting initiator, nor r_gnt to
//     a non-responding target;
//   - shared-bus configurations never fire two request (or two response)
//     transfers in one cycle;
//   - packets arriving at a target port are never interleaved (src constant
//     from first cell to EOP);
//   - every request cell that enters the node eventually leaves it toward a
//     target or is answered internally (conservation at drain).
func TestNodeInvariantsUnderRandomTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 8; trial++ {
		cfg := nodespec.Config{
			Port: stbus.PortConfig{
				Type:     []stbus.Type{stbus.Type2, stbus.Type3}[rng.Intn(2)],
				DataBits: []int{16, 32, 64}[rng.Intn(3)],
			},
			NumInit: 1 + rng.Intn(4),
			NumTgt:  1 + rng.Intn(3),
			Arch:    []nodespec.Arch{nodespec.SharedBus, nodespec.FullCrossbar}[rng.Intn(2)],
			ReqArb:  arb.Kinds[rng.Intn(len(arb.Kinds))],
			RespArb: arb.Kinds[rng.Intn(5)], // skip programmable on response path
			Map:     stbus.UniformMap(1+rng.Intn(3), 0x1000, 0x1000),
		}
		cfg.Map = stbus.UniformMap(cfg.NumTgt, 0x1000, 0x1000)
		cfg.PipeSize = 1 + rng.Intn(6)
		cfg = cfg.WithDefaults()

		sm := sim.New()
		n, err := NewNode(sim.Root(sm), cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var bfms []*catg.InitiatorBFM
		tc := catg.TrafficConfig{Ops: 25, UnmappedPct: 5, ChunkPct: 10, IdlePct: 10, PriMax: 7}
		for i, p := range n.Init {
			bfms = append(bfms, catg.NewInitiatorBFM(sm, p, catg.GenerateOps(cfg, tc, i, int64(trial*100+i))))
		}
		for tg, p := range n.Tgt {
			catg.NewTargetBFM(sm, p, catg.TargetConfig{MinLatency: 0, MaxLatency: 5, GntGapPct: 20},
				int64(trial*31+tg))
		}

		cellsIn, cellsOut := 0, 0
		pktSrc := make([]int, cfg.NumTgt)
		for i := range pktSrc {
			pktSrc[i] = -1
		}
		sm.AtCycleEnd(func() {
			reqFires, respFires := 0, 0
			for _, p := range n.Init {
				if p.Gnt.Bool() && !p.Req.Bool() {
					t.Errorf("trial %d: gnt without req at %s", trial, p.Name)
				}
				if p.ReqFire() {
					reqFires++
					cellsIn++
				}
			}
			for tg, p := range n.Tgt {
				if p.RGnt.Bool() && !p.RReq.Bool() {
					t.Errorf("trial %d: r_gnt without r_req at %s", trial, p.Name)
				}
				if p.ReqFire() {
					cellsOut++
					cell := p.SampleCell()
					if pktSrc[tg] == -1 {
						pktSrc[tg] = int(cell.Src)
					} else if pktSrc[tg] != int(cell.Src) {
						t.Errorf("trial %d: packet interleaved at %s (src %d then %d)",
							trial, p.Name, pktSrc[tg], cell.Src)
					}
					if cell.EOP {
						pktSrc[tg] = -1
					}
				}
				if p.RespFire() {
					respFires++
				}
			}
			if cfg.Arch == nodespec.SharedBus {
				if reqFires > 1 {
					t.Errorf("trial %d: %d request fires in one cycle on shared bus", trial, reqFires)
				}
				// Response fires at target ports plus internal dequeues share
				// the response datapath; target-port fires alone must be <=1.
				if respFires > 1 {
					t.Errorf("trial %d: %d response fires in one cycle on shared bus", trial, respFires)
				}
			}
		})
		done := func() bool {
			for _, b := range bfms {
				if !b.Done() {
					return false
				}
			}
			return true
		}
		if err := sm.RunUntil(done, 60000); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, cfg, err)
		}
		// Conservation: cells that entered either left toward a target or
		// were absorbed by the internal services (unmapped/prog traffic).
		if cellsOut > cellsIn {
			t.Errorf("trial %d: %d cells out of the node but only %d in", trial, cellsOut, cellsIn)
		}
		for i := range n.Init {
			if n.Outstanding(i) != 0 {
				t.Errorf("trial %d: initiator %d left %d outstanding after drain",
					trial, i, n.Outstanding(i))
			}
		}
	}
}
