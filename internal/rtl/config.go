// Package rtl implements the signal-level, cycle-accurate ("RTL") view of
// the STBus components: the node (arbitration + routing), the size
// converter, the type converter, the register decoder and a memory target.
//
// The node follows the micro-architecture documented in NODE-SPEC.md at the
// repository root; internal/bca implements the same specification
// independently, and the STBus Analyzer checks that the two views stay
// cycle-aligned at every port.
//
// The RTL view is instrumented with code-coverage points (line, branch,
// statement), reproducing the paper's asymmetry: code coverage is an
// RTL-only metric.
package rtl

import "crve/internal/nodespec"

// Arch re-exports the node architecture selector from the shared node
// specification (see internal/nodespec).
type Arch = nodespec.Arch

// NodeConfig re-exports the node parameter set from the shared node
// specification.
type NodeConfig = nodespec.Config

// Architecture values, re-exported for local readability.
const (
	SharedBus       = nodespec.SharedBus
	FullCrossbar    = nodespec.FullCrossbar
	PartialCrossbar = nodespec.PartialCrossbar
)

// MaxPorts re-exports the port-count limit.
const MaxPorts = nodespec.MaxPorts

// ParseArch re-exports the architecture parser.
var ParseArch = nodespec.ParseArch
