package rtl

import (
	"bytes"
	"testing"

	"crve/internal/sim"
	"crve/internal/stbus"
)

func memCfg(lat, gap int) MemoryConfig {
	return MemoryConfig{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		Base:    0x0,
		Size:    0x10000,
		Latency: lat,
		GntGap:  gap,
	}
}

func TestMemoryWriteReadback(t *testing.T) {
	sm := sim.New()
	m, err := NewMemory(sim.Root(sm), memCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	drv := attachInit(sm, m.Port)
	payload := []byte{9, 8, 7, 6}
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x20, payload, 4, 1, 0))
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x20, nil, 4, 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 200); err != nil {
		t.Fatal(err)
	}
	if m.Peek(0x20) != 9 || m.Peek(0x23) != 6 {
		t.Error("memory bytes wrong")
	}
	rd := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD4, 0x20, drv.respPackets()[1], 4)
	if !bytes.Equal(rd, payload) {
		t.Errorf("read %x", rd)
	}
}

func TestMemoryRMWReturnsOldValue(t *testing.T) {
	sm := sim.New()
	m, err := NewMemory(sim.Root(sm), memCfg(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	m.Poke(0x40, 0xaa)
	drv := attachInit(sm, m.Port)
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.RMW4, 0x40, []byte{1, 2, 3, 4}, 4, 1, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	old := stbus.ExtractReadData(stbus.LittleEndian, stbus.RMW4, 0x40, drv.respPackets()[0], 4)
	if old[0] != 0xaa {
		t.Errorf("RMW old value %#x, want 0xaa", old[0])
	}
	if m.Peek(0x40) != 1 {
		t.Errorf("RMW new value %#x, want 1", m.Peek(0x40))
	}
}

func TestMemoryOutOfWindowErrors(t *testing.T) {
	sm := sim.New()
	cfg := memCfg(0, 0)
	cfg.Base, cfg.Size = 0x1000, 0x100
	m, err := NewMemory(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := attachInit(sm, m.Port)
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x2000, nil, 4, 0, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	if !drv.respPackets()[0][0].Err() {
		t.Error("out-of-window access should error")
	}
}

func TestMemoryLatencyObserved(t *testing.T) {
	sm := sim.New()
	m, err := NewMemory(sim.Root(sm), memCfg(15, 0))
	if err != nil {
		t.Fatal(err)
	}
	drv := attachInit(sm, m.Port)
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x0, nil, 4, 0, 0))
	var reqAt, respAt uint64
	sm.AtCycleEnd(func() {
		if m.Port.ReqFire() {
			reqAt = sm.Cycle()
		}
		if m.Port.RespFire() {
			respAt = sm.Cycle()
		}
	})
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 200); err != nil {
		t.Fatal(err)
	}
	if respAt-reqAt < 15 {
		t.Errorf("latency %d cycles, want >= 15", respAt-reqAt)
	}
}

func TestMemoryGntGapSlowsAcceptance(t *testing.T) {
	run := func(gap int) uint64 {
		sm := sim.New()
		cfg := memCfg(0, gap)
		m, err := NewMemory(sim.Root(sm), cfg)
		if err != nil {
			t.Fatal(err)
		}
		drv := attachInit(sm, m.Port)
		payload := make([]byte, 16)
		drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST16, 0x0, payload, 4, 0, 0))
		if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 500); err != nil {
			t.Fatal(err)
		}
		return sm.Cycle()
	}
	fast, slow := run(0), run(3)
	if slow <= fast {
		t.Errorf("gap=3 completed in %d cycles, gap=0 in %d", slow, fast)
	}
}

func TestMemoryFlushIsNoOpAck(t *testing.T) {
	sm := sim.New()
	m, err := NewMemory(sim.Root(sm), memCfg(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	m.Poke(0x10, 0x55)
	drv := attachInit(sm, m.Port)
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.Op(stbus.KindFlush, 4), 0x10, nil, 4, 0, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	pk := drv.respPackets()[0]
	if pk[0].Err() {
		t.Error("flush should ack")
	}
	if m.Peek(0x10) != 0x55 {
		t.Error("flush must not modify memory")
	}
}
