package rtl

import (
	"bytes"
	"testing"

	"crve/internal/sim"
	"crve/internal/stbus"
)

// buildConvChain elaborates driver -> converter -> memory, bound with Bind.
func buildConvChain(t *testing.T, up, down stbus.PortConfig) (*sim.Simulator, *tbInit, *Converter, *Memory) {
	t.Helper()
	sm := sim.New()
	root := sim.Root(sm)
	conv, err := NewConverter(root, ConverterConfig{Name: "cv", Up: up, Down: down})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMemory(root, MemoryConfig{Name: "m", Port: down, Base: 0, Size: 1 << 20, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	stbus.Bind(sm, conv.Down, mem.Port)
	drv := attachInit(sm, conv.Up)
	return sm, drv, conv, mem
}

func TestSizeConverterDownsize(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type3, DataBits: 64}.WithDefaults()
	down := up
	down.DataBits = 32
	sm, drv, conv, mem := buildConvChain(t, up, down)
	payload := make([]byte, 16)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	drv.send(mustCells(t, up.Type, up.Endian, stbus.ST16, 0x100, payload, up.BusBytes(), 1, 0))
	drv.send(mustCells(t, up.Type, up.Endian, stbus.LD16, 0x100, nil, up.BusBytes(), 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	for i, b := range payload {
		if mem.Peek(0x100+uint64(i)) != b {
			t.Fatalf("memory byte %d = %#x", i, mem.Peek(0x100+uint64(i)))
		}
	}
	rd := stbus.ExtractReadData(up.Endian, stbus.LD16, 0x100, drv.respPackets()[1], up.BusBytes())
	if !bytes.Equal(rd, payload) {
		t.Errorf("read back %x want %x", rd, payload)
	}
	if conv.Outstanding() != 0 {
		t.Errorf("converter still holds %d packets", conv.Outstanding())
	}
}

func TestSizeConverterUpsize(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type3, DataBits: 16}.WithDefaults()
	down := up
	down.DataBits = 128
	sm, drv, _, mem := buildConvChain(t, up, down)
	payload := []byte{0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3, 4}
	drv.send(mustCells(t, up.Type, up.Endian, stbus.ST8, 0x40, payload, up.BusBytes(), 1, 0))
	drv.send(mustCells(t, up.Type, up.Endian, stbus.LD8, 0x40, nil, up.BusBytes(), 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	if mem.Peek(0x40) != 0xaa || mem.Peek(0x47) != 4 {
		t.Error("memory content wrong after upsize")
	}
	rd := stbus.ExtractReadData(up.Endian, stbus.LD8, 0x40, drv.respPackets()[1], up.BusBytes())
	if !bytes.Equal(rd, payload) {
		t.Errorf("read back %x", rd)
	}
}

func TestTypeConverterT3ToT2(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type3, DataBits: 32}.WithDefaults()
	down := up
	down.Type = stbus.Type2
	sm, drv, _, _ := buildConvChain(t, up, down)
	// A T3 read request is 1 cell; downstream T2 must see the symmetric
	// form and the response must come back as T3.
	drv.send(mustCells(t, up.Type, up.Endian, stbus.LD16, 0x200, nil, up.BusBytes(), 3, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 500); err != nil {
		t.Fatal(err)
	}
	pk := drv.respPackets()[0]
	if len(pk) != stbus.RespLen(stbus.Type3, stbus.LD16, 4) {
		t.Errorf("upstream response has %d cells", len(pk))
	}
	if pk[0].TID != 3 || pk[0].Err() {
		t.Errorf("response %+v", pk[0])
	}
}

func TestTypeConverterT2ToT3(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type2, DataBits: 32}.WithDefaults()
	down := up
	down.Type = stbus.Type3
	sm, drv, _, mem := buildConvChain(t, up, down)
	payload := []byte{5, 6, 7, 8}
	drv.send(mustCells(t, up.Type, up.Endian, stbus.ST4, 0x10, payload, up.BusBytes(), 1, 0))
	drv.send(mustCells(t, up.Type, up.Endian, stbus.LD4, 0x10, nil, up.BusBytes(), 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	if mem.Peek(0x10) != 5 {
		t.Error("write lost through T2->T3 conversion")
	}
	rd := stbus.ExtractReadData(up.Endian, stbus.LD4, 0x10, drv.respPackets()[1], up.BusBytes())
	if !bytes.Equal(rd, payload) {
		t.Errorf("read %x", rd)
	}
}

func TestTypeConverterRejectsIllegalDownstreamOp(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type2, DataBits: 32}.WithDefaults()
	down := up
	down.Type = stbus.Type1
	sm, drv, _, _ := buildConvChain(t, up, down)
	// RMW is not in the Type 1 command set: the converter must answer an
	// upstream error response without touching the downstream side.
	drv.send(mustCells(t, up.Type, up.Endian, stbus.RMW4, 0x20, []byte{1, 2, 3, 4}, up.BusBytes(), 1, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 1 }, 300); err != nil {
		t.Fatal(err)
	}
	if !drv.respPackets()[0][0].Err() {
		t.Error("illegal downstream op must error")
	}
}

func TestTypeConverterT1Downstream(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type2, DataBits: 32}.WithDefaults()
	down := up
	down.Type = stbus.Type1
	sm, drv, conv, mem := buildConvChain(t, up, down)
	if conv.Cfg.Pipe != 1 {
		t.Fatalf("T1 converter pipe = %d, want 1", conv.Cfg.Pipe)
	}
	drv.send(mustCells(t, up.Type, up.Endian, stbus.ST4, 0x30, []byte{9, 9, 9, 9}, up.BusBytes(), 1, 0))
	drv.send(mustCells(t, up.Type, up.Endian, stbus.LD4, 0x30, nil, up.BusBytes(), 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	if mem.Peek(0x30) != 9 {
		t.Error("T1 downstream write lost")
	}
}

func TestConverterEndiannessRecoding(t *testing.T) {
	up := stbus.PortConfig{Type: stbus.Type3, DataBits: 32, Endian: stbus.BigEndian}.WithDefaults()
	down := up
	down.Endian = stbus.LittleEndian
	sm, drv, _, mem := buildConvChain(t, up, down)
	payload := []byte{1, 2, 3, 4}
	drv.send(mustCells(t, up.Type, up.Endian, stbus.ST4, 0x50, payload, up.BusBytes(), 1, 0))
	drv.send(mustCells(t, up.Type, up.Endian, stbus.LD4, 0x50, nil, up.BusBytes(), 2, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	// Memory content is lane-independent payload order.
	for i, b := range payload {
		if mem.Peek(0x50+uint64(i)) != b {
			t.Fatalf("byte %d = %#x through endian recode", i, mem.Peek(0x50+uint64(i)))
		}
	}
	rd := stbus.ExtractReadData(up.Endian, stbus.LD4, 0x50, drv.respPackets()[1], up.BusBytes())
	if !bytes.Equal(rd, payload) {
		t.Errorf("read %x", rd)
	}
}

func TestConverterConfigValidation(t *testing.T) {
	good := ConverterConfig{
		Up:   stbus.PortConfig{Type: stbus.Type3, DataBits: 64},
		Down: stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
	}
	if _, err := NewConverter(sim.Root(sim.New()), good); err != nil {
		t.Fatal(err)
	}
	bad := ConverterConfig{
		Up:   stbus.PortConfig{Type: stbus.Type3, DataBits: 64, AddrBits: 32},
		Down: stbus.PortConfig{Type: stbus.Type3, DataBits: 32, AddrBits: 40},
	}
	if _, err := NewConverter(sim.Root(sim.New()), bad); err == nil {
		t.Error("mismatched address widths should fail")
	}
}

func TestRegDecoderReadWrite(t *testing.T) {
	sm := sim.New()
	cfg := RegDecoderConfig{
		Port: stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		Base: 0x400, NumRegs: 4,
	}
	rd, err := NewRegDecoder(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var writes []uint32
	rd.OnWrite = func(reg int, v uint32) { writes = append(writes, v) }
	drv := attachInit(sm, rd.Port)
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x404,
		[]byte{0x78, 0x56, 0x34, 0x12}, 4, 1, 0))
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x404, nil, 4, 2, 0))
	// Illegal: ST8 into the register file.
	drv.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST8, 0x400,
		make([]byte, 8), 4, 3, 0))
	if err := sm.RunUntil(func() bool { return len(drv.respPackets()) == 3 }, 400); err != nil {
		t.Fatal(err)
	}
	if rd.Reg(1) != 0x12345678 {
		t.Errorf("reg1 = %#x", rd.Reg(1))
	}
	if len(writes) != 1 || writes[0] != 0x12345678 {
		t.Errorf("write hook %v", writes)
	}
	got := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD4, 0x404, drv.respPackets()[1], 4)
	if got[0] != 0x78 || got[3] != 0x12 {
		t.Errorf("readback %x", got)
	}
	if !drv.respPackets()[2][0].Err() {
		t.Error("ST8 into register file must error")
	}
	rd.SetReg(2, 7)
	if rd.Reg(2) != 7 {
		t.Error("direct register access")
	}
}

func TestBindPanicsOnMismatch(t *testing.T) {
	sm := sim.New()
	a := stbus.NewPort(sim.Root(sm), "a", stbus.PortConfig{Type: stbus.Type3, DataBits: 32})
	b := stbus.NewPort(sim.Root(sm), "b", stbus.PortConfig{Type: stbus.Type3, DataBits: 64})
	defer func() {
		if recover() == nil {
			t.Error("binding mismatched widths should panic")
		}
	}()
	stbus.Bind(sm, a, b)
}
