package rtl

import (
	"bytes"
	"testing"

	"crve/internal/arb"
	"crve/internal/coverage"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// tbInit is a minimal test driver for an initiator-side port: it streams a
// queue of request cells (holding each until granted) and collects response
// cells with r_gnt always offered.
type tbInit struct {
	p      *stbus.Port
	toSend []stbus.Cell
	idx    int
	resp   []stbus.RespCell
}

func attachInit(sm *sim.Simulator, p *stbus.Port) *tbInit {
	tb := &tbInit{p: p}
	sm.Seq(p.Name+".drv", func() {
		if tb.idx < len(tb.toSend) && p.ReqFire() {
			tb.idx++
		}
		if tb.idx < len(tb.toSend) {
			p.DriveCell(tb.toSend[tb.idx])
		} else {
			p.IdleReq()
		}
		if p.RespFire() {
			tb.resp = append(tb.resp, p.SampleResp())
		}
		p.RGnt.SetBool(true)
	})
	return tb
}

func (tb *tbInit) send(cells []stbus.Cell) { tb.toSend = append(tb.toSend, cells...) }

// respPackets splits collected cells into packets at EOP boundaries.
func (tb *tbInit) respPackets() [][]stbus.RespCell {
	var out [][]stbus.RespCell
	var cur []stbus.RespCell
	for _, c := range tb.resp {
		cur = append(cur, c)
		if c.EOP {
			out = append(out, cur)
			cur = nil
		}
	}
	return out
}

func t3cfg(nInit, nTgt int) NodeConfig {
	return NodeConfig{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: nInit, NumTgt: nTgt,
		Arch:   FullCrossbar,
		ReqArb: arb.Priority, RespArb: arb.Priority,
		Map: stbus.UniformMap(nTgt, 0x1000, 0x1000),
	}
}

// memBridge attaches memory-model behaviour directly to a node target port
// as a clocked process, standing in for a Memory component without needing a
// wire-level bridge between two separately created port bundles.
type memBridge struct {
	mem map[uint64]byte
	cur []stbus.Cell
	q   []*memPacket
	cyc uint64
	lat uint64
	gap int
	gp  int
}

func attachMem(sm *sim.Simulator, p *stbus.Port, lat uint64, gap int) *memBridge {
	b := &memBridge{mem: map[uint64]byte{}, lat: lat, gp: gap}
	cfg := p.Cfg
	sm.Seq(p.Name+".mem", func() {
		b.cyc++
		if p.ReqFire() {
			b.cur = append(b.cur, p.SampleCell())
			b.gap = b.gp
			if b.cur[len(b.cur)-1].EOP {
				b.q = append(b.q, b.serve(cfg, b.cur))
				b.cur = nil
			}
		} else if b.gap > 0 {
			b.gap--
		}
		if p.RespFire() {
			h := b.q[0]
			h.idx++
			if h.idx == len(h.resp) {
				b.q = b.q[1:]
			}
		}
		if len(b.q) > 0 && b.cyc >= b.q[0].readyAt {
			p.DriveResp(b.q[0].resp[b.q[0].idx])
		} else {
			p.IdleResp()
		}
		p.Gnt.SetBool(len(b.q) < 4 && b.gap == 0)
	})
	return b
}

func (b *memBridge) serve(cfg stbus.PortConfig, cells []stbus.Cell) *memPacket {
	first := cells[0]
	op, addr := first.Opc, first.Addr
	var rd []byte
	if op.IsLoad() {
		rd = make([]byte, op.SizeBytes())
		for i := range rd {
			rd[i] = b.mem[addr+uint64(i)]
		}
	}
	if op.HasWriteData() {
		for i, v := range stbus.ExtractWriteData(cfg.Endian, cells, cfg.BusBytes()) {
			b.mem[addr+uint64(i)] = v
		}
	}
	resp, err := stbus.BuildResponse(cfg.Type, cfg.Endian, op, addr, rd, cfg.BusBytes(),
		first.TID, first.Src, false)
	if err != nil {
		panic(err)
	}
	return &memPacket{resp: resp, readyAt: b.cyc + b.lat}
}

func mustCells(t *testing.T, ty stbus.Type, e stbus.Endianness, op stbus.Opcode, addr uint64,
	payload []byte, busBytes int, tid, src uint8) []stbus.Cell {
	t.Helper()
	cells, err := stbus.BuildRequest(ty, e, op, addr, payload, busBytes, tid, src, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestNodeWriteReadRoundTrip(t *testing.T) {
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), t3cfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 2, 0)

	payload := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST8, 0x1000, payload, 4, 1, 0))
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD8, 0x1000, nil, 4, 2, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 2 }, 200); err != nil {
		t.Fatal(err)
	}
	pks := init.respPackets()
	if pks[0][0].Err() || pks[0][0].TID != 1 {
		t.Errorf("store response wrong: %+v", pks[0])
	}
	got := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD8, 0x1000, pks[1], 4)
	if !bytes.Equal(got, payload) {
		t.Errorf("read back %x, want %x", got, payload)
	}
	if pks[1][0].TID != 2 {
		t.Errorf("read tid = %d", pks[1][0].TID)
	}
	if n.Outstanding(0) != 0 {
		t.Errorf("outstanding = %d after completion", n.Outstanding(0))
	}
}

func TestNodeUnmappedAddressError(t *testing.T) {
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), t3cfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 0, 0)
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x9000, nil, 4, 5, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	pk := init.respPackets()[0]
	if !pk[0].Err() {
		t.Error("unmapped access should return error response")
	}
	if pk[0].TID != 5 {
		t.Errorf("error response tid = %d, want 5", pk[0].TID)
	}
}

func TestNodeProgrammingPort(t *testing.T) {
	cfg := t3cfg(2, 1)
	cfg.ReqArb = arb.Programmable
	cfg.ProgPort = true
	cfg.ProgBase = 0x8000
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachInit(sm, n.Init[1])
	attachMem(sm, n.Tgt[0], 0, 0)

	// Write priority 0xA for initiator 1, then read it back.
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x8004, []byte{0x0a, 0, 0, 0}, 4, 1, 0))
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x8004, nil, 4, 2, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 2 }, 200); err != nil {
		t.Fatal(err)
	}
	pks := init.respPackets()
	if pks[0][0].Err() {
		t.Fatal("prog write errored")
	}
	rd := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD4, 0x8004, pks[1], 4)
	if rd[0] != 0x0a {
		t.Errorf("prog read = %#x, want 0x0a", rd[0])
	}
	if n.PriorityRegs()[1] != 0x0a {
		t.Errorf("register file = %v", n.PriorityRegs())
	}
}

func TestNodeProgPortBadAccessErrors(t *testing.T) {
	cfg := t3cfg(1, 1)
	cfg.ReqArb = arb.Programmable
	cfg.ProgPort = true
	cfg.ProgBase = 0x8000
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 0, 0)
	// ST8 is not a legal programming access.
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST8, 0x8000,
		make([]byte, 8), 4, 1, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	if !init.respPackets()[0][0].Err() {
		t.Error("illegal programming access should error")
	}
}

func TestNodePriorityArbitrationOrder(t *testing.T) {
	// Two initiators contend for one slow target; initiator 0 has the higher
	// static priority and must win every first grant.
	cfg := t3cfg(2, 1)
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	i0 := attachInit(sm, n.Init[0])
	i1 := attachInit(sm, n.Init[1])
	attachMem(sm, n.Tgt[0], 1, 0)
	for k := 0; k < 3; k++ {
		i0.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x1000, nil, 4, uint8(k), 0))
		i1.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x1004, nil, 4, uint8(k), 1))
	}
	var order []int
	sm.AtCycleEnd(func() {
		if n.Init[0].ReqFire() {
			order = append(order, 0)
		}
		if n.Init[1].ReqFire() {
			order = append(order, 1)
		}
	})
	if err := sm.RunUntil(func() bool {
		return len(i0.respPackets()) == 3 && len(i1.respPackets()) == 3
	}, 500); err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("grants = %v", order)
	}
	// All of initiator 0's packets must be granted before any wait-blocked
	// initiator 1 packet when both request (priority policy, init0 higher).
	first3 := order[:3]
	for _, w := range first3 {
		if w != 0 {
			t.Errorf("grant order %v: init0 must win all early grants", order)
			break
		}
	}
}

func TestNodeType2OrderingBlock(t *testing.T) {
	// Type 2: an initiator with an outstanding packet to target 0 must not
	// be granted toward target 1 until the response returns.
	cfg := t3cfg(1, 2)
	cfg.Port.Type = stbus.Type2
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 20, 0) // very slow
	attachMem(sm, n.Tgt[1], 0, 0)  // fast
	init.send(mustCells(t, stbus.Type2, stbus.LittleEndian, stbus.LD4, 0x1000, nil, 4, 0, 0))
	init.send(mustCells(t, stbus.Type2, stbus.LittleEndian, stbus.LD4, 0x2000, nil, 4, 1, 0))
	var fires []uint64
	sm.AtCycleEnd(func() {
		if n.Init[0].ReqFire() {
			fires = append(fires, sm.Cycle())
		}
	})
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	// The second grant must come after the slow response (≥20 cycles later).
	if len(fires) != 2 || fires[1]-fires[0] < 20 {
		t.Errorf("fires = %v: T2 ordering not enforced", fires)
	}
	// Responses must arrive in order: tid 0 then tid 1.
	pks := init.respPackets()
	if pks[0][0].TID != 0 || pks[1][0].TID != 1 {
		t.Errorf("T2 responses out of order: %d then %d", pks[0][0].TID, pks[1][0].TID)
	}
}

func TestNodeType3OutOfOrderResponses(t *testing.T) {
	// Type 3: short transactions to targets of different speed complete out
	// of order (the paper's §5 example of forcing out-of-order traffic).
	cfg := t3cfg(1, 2)
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 30, 0) // slow
	attachMem(sm, n.Tgt[1], 0, 0)  // fast
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x1000, nil, 4, 0, 0))
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x2000, nil, 4, 1, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	pks := init.respPackets()
	if pks[0][0].TID != 1 || pks[1][0].TID != 0 {
		t.Errorf("expected out-of-order completion, got tids %d,%d", pks[0][0].TID, pks[1][0].TID)
	}
}

func TestNodePipeSizeBackpressure(t *testing.T) {
	cfg := t3cfg(1, 1)
	cfg.PipeSize = 2
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 10, 0)
	for k := 0; k < 4; k++ {
		init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x1000, nil, 4, uint8(k), 0))
	}
	maxOut := 0
	sm.AtCycleEnd(func() {
		if n.Outstanding(0) > maxOut {
			maxOut = n.Outstanding(0)
		}
	})
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 4 }, 1000); err != nil {
		t.Fatal(err)
	}
	if maxOut > 2 {
		t.Errorf("outstanding reached %d, pipe size is 2", maxOut)
	}
}

func TestNodeSharedBusSingleGrantPerCycle(t *testing.T) {
	cfg := t3cfg(3, 3)
	cfg.Arch = SharedBus
	cfg.ReqArb, cfg.RespArb = arb.RoundRobin, arb.RoundRobin
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	inits := []*tbInit{attachInit(sm, n.Init[0]), attachInit(sm, n.Init[1]), attachInit(sm, n.Init[2])}
	for tgt := 0; tgt < 3; tgt++ {
		attachMem(sm, n.Tgt[tgt], 0, 0)
	}
	for k, in := range inits {
		for j := 0; j < 4; j++ {
			addr := 0x1000 + uint64(k)*0x1000
			in.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, addr, nil, 4, uint8(j), uint8(k)))
		}
	}
	violations := 0
	sm.AtCycleEnd(func() {
		fires := 0
		for _, p := range n.Init {
			if p.ReqFire() {
				fires++
			}
		}
		if fires > 1 {
			violations++
		}
	})
	done := func() bool {
		for _, in := range inits {
			if len(in.respPackets()) != 4 {
				return false
			}
		}
		return true
	}
	if err := sm.RunUntil(done, 2000); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Errorf("%d cycles with >1 request grant on shared bus", violations)
	}
}

func TestNodeFullCrossbarParallelGrants(t *testing.T) {
	cfg := t3cfg(2, 2)
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	i0 := attachInit(sm, n.Init[0])
	i1 := attachInit(sm, n.Init[1])
	attachMem(sm, n.Tgt[0], 0, 0)
	attachMem(sm, n.Tgt[1], 0, 0)
	for j := 0; j < 8; j++ {
		i0.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x1000, nil, 4, uint8(j), 0))
		i1.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x2000, nil, 4, uint8(j), 1))
	}
	parallel := 0
	sm.AtCycleEnd(func() {
		if n.Init[0].ReqFire() && n.Init[1].ReqFire() {
			parallel++
		}
	})
	if err := sm.RunUntil(func() bool {
		return len(i0.respPackets()) == 8 && len(i1.respPackets()) == 8
	}, 1000); err != nil {
		t.Fatal(err)
	}
	if parallel == 0 {
		t.Error("full crossbar never granted two initiators in one cycle")
	}
}

func TestNodePartialCrossbarBlockedPair(t *testing.T) {
	cfg := t3cfg(2, 2)
	cfg.Arch = PartialCrossbar
	cfg.Allowed = [][]bool{{true, true}, {true, false}} // init1 cannot reach tgt1
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	i1 := attachInit(sm, n.Init[1])
	attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 0, 0)
	attachMem(sm, n.Tgt[1], 0, 0)
	i1.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x2000, nil, 4, 0, 1))
	if err := sm.RunUntil(func() bool { return len(i1.respPackets()) == 1 }, 200); err != nil {
		t.Fatal(err)
	}
	if !i1.respPackets()[0][0].Err() {
		t.Error("unreachable pair must answer with error response")
	}
}

func TestNodeChunkLockHoldsTarget(t *testing.T) {
	// Initiator 0 sends a 2-packet chunk (lck on first packet's EOP);
	// initiator 1 must not interleave at the target between the packets.
	cfg := t3cfg(2, 1)
	cfg.ReqArb = arb.RoundRobin // would otherwise alternate
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	i0 := attachInit(sm, n.Init[0])
	i1 := attachInit(sm, n.Init[1])
	attachMem(sm, n.Tgt[0], 0, 0)
	chunk1, err := stbus.BuildRequest(stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x1000,
		[]byte{1, 2, 3, 4}, 4, 0, 0, 0, true) // lck set
	if err != nil {
		t.Fatal(err)
	}
	chunk2 := mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x1004, []byte{5, 6, 7, 8}, 4, 1, 0)
	i0.send(chunk1)
	i0.send(chunk2)
	i1.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x1000, nil, 4, 0, 1))
	var order []int
	sm.AtCycleEnd(func() {
		if n.Init[0].ReqFire() {
			order = append(order, 0)
		}
		if n.Init[1].ReqFire() {
			order = append(order, 1)
		}
	})
	if err := sm.RunUntil(func() bool {
		return len(i0.respPackets()) == 2 && len(i1.respPackets()) == 1
	}, 500); err != nil {
		t.Fatal(err)
	}
	// Both of init0's packets must be granted before init1's.
	if len(order) != 3 || order[0] != 0 || order[1] != 0 || order[2] != 1 {
		t.Errorf("grant order %v, want [0 0 1] (chunk must hold the target)", order)
	}
}

func TestNodeMultiCellPacketThroughNode(t *testing.T) {
	// An ST16 on a 32-bit bus is 4 request cells; data integrity end to end.
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), t3cfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	mem := attachMem(sm, n.Tgt[0], 1, 1)
	payload := make([]byte, 16)
	for i := range payload {
		payload[i] = byte(0x40 + i)
	}
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST16, 0x1010, payload, 4, 3, 0))
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD16, 0x1010, nil, 4, 4, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 2 }, 500); err != nil {
		t.Fatal(err)
	}
	for i, b := range payload {
		if mem.mem[0x1010+uint64(i)] != b {
			t.Fatalf("memory byte %d = %#x, want %#x", i, mem.mem[0x1010+uint64(i)], b)
		}
	}
	rd := stbus.ExtractReadData(stbus.LittleEndian, stbus.LD16, 0x1010, init.respPackets()[1], 4)
	if !bytes.Equal(rd, payload) {
		t.Errorf("read %x want %x", rd, payload)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	bad := []NodeConfig{
		{Port: stbus.PortConfig{Type: stbus.Type1, DataBits: 32}, NumInit: 1, NumTgt: 1,
			Map: stbus.UniformMap(1, 0, 0x1000)},
		func() NodeConfig { c := t3cfg(0, 1); return c }(),
		func() NodeConfig { c := t3cfg(1, 33); return c }(),
		func() NodeConfig { c := t3cfg(2, 2); c.Arch = PartialCrossbar; return c }(),
		func() NodeConfig { c := t3cfg(1, 1); c.PipeSize = 100; return c }(),
		func() NodeConfig {
			c := t3cfg(1, 1)
			c.ProgPort = true
			c.ProgBase = 0x1000 // overlaps map
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := NewNode(sim.Root(sim.New()), cfg.WithDefaults()); err == nil {
			t.Errorf("config %d should be rejected: %v", i, cfg)
		}
	}
}

func TestParseArch(t *testing.T) {
	for _, a := range []Arch{SharedBus, FullCrossbar, PartialCrossbar} {
		got, err := ParseArch(a.String())
		if err != nil || got != a {
			t.Errorf("ParseArch(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArch("mesh"); err == nil {
		t.Error("unknown arch should fail")
	}
}

func TestNodeCodeCoverageAccumulates(t *testing.T) {
	sm := sim.New()
	n, err := NewNode(sim.Root(sm), t3cfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	init := attachInit(sm, n.Init[0])
	attachMem(sm, n.Tgt[0], 0, 0)
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.ST4, 0x1000, []byte{1, 2, 3, 4}, 4, 0, 0))
	init.send(mustCells(t, stbus.Type3, stbus.LittleEndian, stbus.LD4, 0x9000, nil, 4, 1, 0))
	if err := sm.RunUntil(func() bool { return len(init.respPackets()) == 2 }, 200); err != nil {
		t.Fatal(err)
	}
	// Core statements must have been exercised by the two transactions.
	if n.Code.Percent(coverage.LinePoint) == 0 {
		t.Error("no line coverage accumulated")
	}
	for _, want := range []string{"route.mapped", "route.unmapped"} {
		found := true
		for _, h := range n.Code.Holes(coverage.StmtPoint) {
			if h == want {
				found = false
			}
		}
		if !found {
			t.Errorf("statement %q not covered", want)
		}
	}
}
