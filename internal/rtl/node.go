package rtl

import (
	"fmt"

	"crve/internal/arb"
	"crve/internal/coverage"
	"crve/internal/sim"
	"crve/internal/stbus"
)

// Route encodings used by the request path. Non-negative routes are target
// port indices; the two internal services are the error responder and the
// register decoder (programming port).
const (
	routeNone = -3
	routeProg = -2
	routeErr  = -1
)

// initState is the per-initiator-port state of the node.
type initState struct {
	// Request side.
	inPacket bool
	route    int
	intCells []stbus.Cell
	// outstanding holds one response-source index per in-flight packet, in
	// issue order (targets 0..NumTgt-1, internal services NumTgt).
	outstanding []int

	// Response side.
	intQ       []stbus.RespCell
	respValid  bool
	respCell   stbus.RespCell
	respSrc    int
	respLocked bool
}

// tgtState is the per-target-port state of the node.
type tgtState struct {
	outValid bool
	outCell  stbus.Cell
	lockInit int
}

// Node is the RTL view of the STBus node: combinational grant logic plus one
// registered forwarding stage in each direction, per NODE-SPEC.md.
type Node struct {
	Cfg NodeConfig
	// Init are the initiator-facing ports (the node drives gnt/r_req/...).
	Init []*stbus.Port
	// Tgt are the target-facing ports (the node drives req/r_gnt/...).
	Tgt []*stbus.Port
	// Code is the RTL code-coverage instrumentation of this instance.
	Code *coverage.CodeMap

	prog     *arb.ProgrammablePolicy
	progRegs []uint8

	reqArbs  []arb.Policy
	reqArbG  arb.Policy
	respArbs []arb.Policy
	respArbG arb.Policy

	tick *sim.Signal

	// Internal handshake strobes, one per port: fire = req & gnt and
	// rfire = r_req & r_gnt, computed by IR-declared combinational processes
	// so the compiled backend fuses the node's hottest signal-level datapath.
	// The state process reads the settled strobes instead of re-deriving the
	// handshakes — the same values, computed once.
	ifire, irfire []*sim.Signal
	tfire, trfire []*sim.Signal

	ist []initState
	tst []tgtState

	// pts holds the node's preresolved code-coverage handles, filled by
	// declareCoverage. Per-event instrumentation through a handle is a counter
	// increment; the Declare-and-lookup-per-hit path was a visible slice of
	// the E5 throughput profile.
	pts struct {
		routeProg, routeUnmapped, routePartial, routeMapped  coverage.Point
		grantMid, grantFirst, arbShared, arbCrossbar         coverage.Point
		respTarget, respInternal, chunkRelease, orphanResp   coverage.Point
		seqTgtDrain, seqRespDeliver, seqReqForward           coverage.Point
		seqReqInternal, seqRespLoad                          coverage.Point
		intErrPacket, intProgWrite, intProgRead, intProgBad  coverage.Point
		eligOrder, eligOutreg, eligPipe, eligLock, chunkHold coverage.Point
	}

	// srcMap learns which initiator port issues each src value, so responses
	// are routed back transparently even when the node sits below another
	// node in a hierarchy (srcs are system-global in STBus).
	srcMap [256]int16

	// Per-cycle plans rewritten by the combinational process and consumed by
	// the sequential one.
	reqPlan  []int
	grant    []bool
	respPlan []int
	rgnt     []bool
	reqInG   arb.Input
	reqIns   []arb.Input
	respIns  []arb.Input
	respInG  arb.Input
}

// NewNode elaborates a node under scope sc, creating its port signal bundles
// and registering its processes with the simulator.
func NewNode(sc sim.Scope, cfg NodeConfig) (*Node, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := sc.Sub(cfg.Name)
	n := &Node{
		Cfg:      cfg,
		Code:     coverage.NewCodeMap(),
		progRegs: make([]uint8, cfg.NumInit),
		ist:      make([]initState, cfg.NumInit),
		tst:      make([]tgtState, cfg.NumTgt),
		reqPlan:  make([]int, cfg.NumInit),
		grant:    make([]bool, cfg.NumInit),
		respPlan: make([]int, cfg.NumInit),
		rgnt:     make([]bool, cfg.NumTgt),
	}
	for i := range n.tst {
		n.tst[i].lockInit = -1
	}
	for i := range n.srcMap {
		n.srcMap[i] = -1
	}
	copy(n.progRegs, cfg.DefaultPriorities())
	for i := 0; i < cfg.NumInit; i++ {
		n.Init = append(n.Init, stbus.NewPort(ns, fmt.Sprintf("init%d", i), cfg.Port))
		n.respArbs = append(n.respArbs, arb.New(cfg.RespArb, cfg.NumTgt+1))
		n.respIns = append(n.respIns, arb.Input{Req: make([]bool, cfg.NumTgt+1)})
	}
	for t := 0; t < cfg.NumTgt; t++ {
		n.Tgt = append(n.Tgt, stbus.NewPort(ns, fmt.Sprintf("tgt%d", t), cfg.Port))
		n.reqArbs = append(n.reqArbs, n.newReqArb())
		n.reqIns = append(n.reqIns, arb.Input{Req: make([]bool, cfg.NumInit), Pri: make([]uint8, cfg.NumInit)})
	}
	n.reqArbG = n.newReqArb()
	n.reqInG = arb.Input{Req: make([]bool, cfg.NumInit), Pri: make([]uint8, cfg.NumInit)}
	n.respArbG = arb.New(cfg.RespArb, cfg.NumInit)
	n.respInG = arb.Input{Req: make([]bool, cfg.NumInit)}

	n.declareCoverage()

	n.tick = ns.Signal("tick", 32)
	sens := []*sim.Signal{n.tick}
	var outs []*sim.Signal
	for _, p := range n.Init {
		sens = append(sens, p.Req, p.Add, p.EOP, p.Lck, p.Pri, p.RGnt)
		outs = append(outs, p.Gnt)
	}
	for _, p := range n.Tgt {
		sens = append(sens, p.Gnt, p.RReq, p.RSrc)
		outs = append(outs, p.RGnt)
	}
	ns.CombOut("grants", n.comb, outs, sens...)
	for i, p := range n.Init {
		fire := ns.Bool(fmt.Sprintf("init%d_fire", i))
		rfire := ns.Bool(fmt.Sprintf("init%d_rfire", i))
		ns.CombExpr(fmt.Sprintf("init%d_fire", i),
			sim.Assign{Dst: fire, Src: sim.Read(p.Req).And(sim.Read(p.Gnt))},
			sim.Assign{Dst: rfire, Src: sim.Read(p.RReq).And(sim.Read(p.RGnt))})
		n.ifire = append(n.ifire, fire)
		n.irfire = append(n.irfire, rfire)
	}
	for t, p := range n.Tgt {
		fire := ns.Bool(fmt.Sprintf("tgt%d_fire", t))
		rfire := ns.Bool(fmt.Sprintf("tgt%d_rfire", t))
		ns.CombExpr(fmt.Sprintf("tgt%d_fire", t),
			sim.Assign{Dst: fire, Src: sim.Read(p.Req).And(sim.Read(p.Gnt))},
			sim.Assign{Dst: rfire, Src: sim.Read(p.RReq).And(sim.Read(p.RGnt))})
		n.tfire = append(n.tfire, fire)
		n.trfire = append(n.trfire, rfire)
	}
	ns.Seq("state", n.seq)
	ns.SeqExpr("tick", sim.Assign{Dst: n.tick, Src: sim.Read(n.tick).Add(sim.ConstU64(1, 32))})
	return n, nil
}

// newReqArb instantiates the request-path policy. The programmable policy is
// shared with the register decoder, so a single instance backs every port of
// the request path.
func (n *Node) newReqArb() arb.Policy {
	if n.Cfg.ReqArb == arb.Programmable {
		if n.prog == nil {
			n.prog = arb.NewProgrammable(n.Cfg.DefaultPriorities())
		}
		return n.prog
	}
	return arb.New(n.Cfg.ReqArb, n.Cfg.NumInit)
}

// Ports returns every external port, initiators first, for tracing and the
// per-port alignment analysis.
func (n *Node) Ports() []*stbus.Port {
	out := append([]*stbus.Port{}, n.Init...)
	return append(out, n.Tgt...)
}

// srcIdx maps a route to its response-source index.
func (n *Node) srcIdx(route int) int {
	if route >= 0 {
		return route
	}
	return n.Cfg.NumTgt
}

// decode routes a first-cell address for initiator i.
func (n *Node) decode(addr uint64, i int) int {
	if n.Cfg.ProgPort && addr >= n.Cfg.ProgBase && addr < n.Cfg.ProgBase+uint64(4*n.Cfg.NumInit) {
		n.pts.routeProg.Hit()
		return routeProg
	}
	t := n.Cfg.Map.Route(addr)
	if t < 0 {
		n.pts.routeUnmapped.Hit()
		return routeErr
	}
	if !n.Cfg.Connected(i, t) {
		n.pts.routePartial.Hit()
		return routeErr
	}
	n.pts.routeMapped.Hit()
	return t
}

// orderOK enforces the Type 2 ordering rule: all outstanding packets of an
// initiator must share one response source.
func (n *Node) orderOK(i, src int) bool {
	if n.Cfg.Port.Type != stbus.Type2 {
		return true
	}
	for _, s := range n.ist[i].outstanding {
		if s != src {
			n.pts.eligOrder.Branch(true)
			return false
		}
	}
	n.pts.eligOrder.Branch(false)
	return true
}

// tgtCanAccept reports whether target t's output register can take a cell
// this cycle (empty, or draining because the target grants).
func (n *Node) tgtCanAccept(t int) bool {
	ok := !n.tst[t].outValid || n.Tgt[t].Gnt.Bool()
	n.pts.eligOutreg.Branch(!ok)
	return ok
}

// eligible evaluates the request-path grant conditions for initiator i
// toward route (NODE-SPEC.md "Eligibility").
func (n *Node) eligible(i, route int) bool {
	st := &n.ist[i]
	if st.inPacket {
		n.pts.grantMid.Hit()
		if route >= 0 {
			return n.tgtCanAccept(route)
		}
		return true // internal services always absorb mid-packet cells
	}
	n.pts.grantFirst.Hit()
	if !n.orderOK(i, n.srcIdx(route)) {
		return false
	}
	if len(st.outstanding) >= n.Cfg.PipeSize {
		n.pts.eligPipe.Branch(true)
		return false
	}
	n.pts.eligPipe.Branch(false)
	if route >= 0 {
		lock := n.tst[route].lockInit
		if lock != -1 && lock != i {
			n.pts.eligLock.Branch(true)
			return false
		}
		n.pts.eligLock.Branch(false)
		return n.tgtCanAccept(route)
	}
	return true
}

// comb is the grant process: it plans routes, arbitrates and drives gnt and
// r_gnt combinationally (NODE-SPEC.md "Request path" / "Response path").
func (n *Node) comb() {
	cfg := &n.Cfg
	// ----- Request path: candidates -----
	for i, p := range n.Init {
		n.reqPlan[i] = routeNone
		n.grant[i] = false
		if !p.Req.Bool() {
			continue
		}
		var route int
		if n.ist[i].inPacket {
			route = n.ist[i].route
		} else {
			route = n.decode(p.Add.U64(), i)
		}
		if n.eligible(i, route) {
			n.reqPlan[i] = route
		}
	}
	// ----- Request path: arbitration -----
	if cfg.Arch == SharedBus {
		n.pts.arbShared.Hit()
		for i, p := range n.Init {
			n.reqInG.Req[i] = n.reqPlan[i] != routeNone
			n.reqInG.Pri[i] = uint8(p.Pri.U64())
		}
		w := n.reqArbG.Pick(n.reqInG)
		for i := range n.grant {
			if i == w {
				n.grant[i] = true
			} else {
				n.reqPlan[i] = routeNone
			}
		}
	} else {
		n.pts.arbCrossbar.Hit()
		for i := range n.Init {
			if n.reqPlan[i] == routeErr || n.reqPlan[i] == routeProg {
				n.grant[i] = true // internal routes: no datapath contention
			}
		}
		for t := range n.Tgt {
			in := &n.reqIns[t]
			for i, p := range n.Init {
				in.Req[i] = n.reqPlan[i] == t
				in.Pri[i] = uint8(p.Pri.U64())
			}
			w := n.reqArbs[t].Pick(*in)
			for i := range n.Init {
				if n.reqPlan[i] != t {
					continue
				}
				if i == w {
					n.grant[i] = true
				} else {
					n.reqPlan[i] = routeNone
				}
			}
		}
	}
	for i, p := range n.Init {
		p.Gnt.SetBool(n.grant[i])
	}

	// ----- Response path: candidates per initiator -----
	for t := range n.Tgt {
		n.rgnt[t] = false
	}
	eligibleSrc := func(i, s int) bool {
		st := &n.ist[i]
		if len(st.outstanding) == 0 {
			return false
		}
		if st.respLocked && s != st.respSrc {
			return false
		}
		if cfg.Port.Type == stbus.Type2 && s != st.outstanding[0] {
			return false
		}
		if s == cfg.NumTgt {
			return len(st.intQ) > 0
		}
		return n.Tgt[s].RReq.Bool() && n.srcMap[uint8(n.Tgt[s].RSrc.U64())] == int16(i)
	}
	avail := func(i int) bool {
		st := &n.ist[i]
		return !st.respValid || n.Init[i].RGnt.Bool()
	}
	chooseSrc := func(i int) int {
		in := &n.respIns[i]
		any := false
		for s := 0; s <= cfg.NumTgt; s++ {
			in.Req[s] = eligibleSrc(i, s)
			any = any || in.Req[s]
		}
		if !any {
			return -1
		}
		return n.respArbs[i].Pick(*in)
	}
	for i := range n.Init {
		n.respPlan[i] = -1
	}
	if cfg.Arch == SharedBus {
		for i := range n.Init {
			n.respInG.Req[i] = false
			if !avail(i) {
				continue
			}
			for s := 0; s <= cfg.NumTgt; s++ {
				if eligibleSrc(i, s) {
					n.respInG.Req[i] = true
					break
				}
			}
		}
		if w := n.respArbG.Pick(n.respInG); w >= 0 {
			n.respPlan[w] = chooseSrc(w)
		}
	} else {
		for i := range n.Init {
			if avail(i) {
				n.respPlan[i] = chooseSrc(i)
			}
		}
	}
	for i := range n.Init {
		if s := n.respPlan[i]; s >= 0 && s < cfg.NumTgt {
			n.pts.respTarget.Hit()
			n.rgnt[s] = true
		} else if s == cfg.NumTgt {
			n.pts.respInternal.Hit()
		}
	}
	for t, p := range n.Tgt {
		p.RGnt.SetBool(n.rgnt[t])
	}
}

// seq is the state process: it commits the transfers the settled grant plan
// implies, updates packet/lock/outstanding bookkeeping, advances the
// arbiters and drives the registered outputs.
func (n *Node) seq() {
	cfg := &n.Cfg
	// 1) Drain target output registers accepted by their targets.
	for t := range n.Tgt {
		if n.tst[t].outValid && n.tfire[t].Bool() {
			n.pts.seqTgtDrain.Hit()
			n.tst[t].outValid = false
		}
	}
	// 2) Deliver response cells accepted by initiators.
	for i := range n.Init {
		st := &n.ist[i]
		if st.respValid && n.irfire[i].Bool() {
			n.pts.seqRespDeliver.Hit()
			if st.respCell.EOP {
				n.popOutstanding(i, st.respSrc)
				st.respLocked = false
			}
			st.respValid = false
		}
	}
	// 3) Capture granted request cells.
	for i, p := range n.Init {
		if !n.ifire[i].Bool() {
			continue
		}
		cell := p.SampleCell()
		route := n.reqPlan[i]
		st := &n.ist[i]
		if !st.inPacket {
			st.outstanding = append(st.outstanding, n.srcIdx(route))
			n.srcMap[cell.Src] = int16(i)
		}
		switch {
		case route >= 0:
			n.pts.seqReqForward.Hit()
			// A chunk lock held elsewhere by i is released when i opens a
			// packet to a different target (defensive: misbehaving chunk).
			if !st.inPacket {
				for u := range n.tst {
					if u != route && n.tst[u].lockInit == i {
						n.pts.chunkRelease.Hit()
						n.tst[u].lockInit = -1
					}
				}
			}
			ts := &n.tst[route]
			ts.outCell = cell
			ts.outValid = true
			ts.lockInit = i
			if cell.EOP {
				if cell.Lck {
					n.pts.chunkHold.Branch(true)
				} else {
					n.pts.chunkHold.Branch(false)
					ts.lockInit = -1
				}
			}
			st.inPacket = !cell.EOP
			st.route = route
		default:
			n.pts.seqReqInternal.Hit()
			st.intCells = append(st.intCells, cell)
			st.inPacket = !cell.EOP
			st.route = route
			if cell.EOP {
				n.serveInternal(i, route)
				st.intCells = nil
			}
		}
	}
	// 4) Accept planned response cells into the response registers.
	for i := range n.Init {
		s := n.respPlan[i]
		if s < 0 {
			continue
		}
		st := &n.ist[i]
		var cell stbus.RespCell
		if s < cfg.NumTgt {
			if !n.trfire[s].Bool() {
				continue
			}
			cell = n.Tgt[s].SampleResp()
		} else {
			cell = st.intQ[0]
			st.intQ = st.intQ[1:]
		}
		n.pts.seqRespLoad.Hit()
		st.respCell = cell
		st.respValid = true
		st.respSrc = s
		st.respLocked = !cell.EOP
	}
	// 5) Advance the arbiters once per cycle.
	if cfg.Arch == SharedBus {
		wg := -1
		for i, g := range n.grant {
			if g {
				wg = i
			}
		}
		n.reqArbG.Tick(n.reqInG, wg)
		wr := -1
		for i, s := range n.respPlan {
			if s >= 0 {
				wr = i
			}
		}
		n.respArbG.Tick(n.respInG, wr)
	} else {
		for t := range n.Tgt {
			w := -1
			for i, g := range n.grant {
				if g && n.reqPlan[i] == t {
					w = i
				}
			}
			n.reqArbs[t].Tick(n.reqIns[t], w)
		}
	}
	for i := range n.Init {
		n.respArbs[i].Tick(n.respIns[i], n.respPlan[i])
	}
	// 6) Drive registered outputs.
	for t, p := range n.Tgt {
		if n.tst[t].outValid {
			p.DriveCell(n.tst[t].outCell)
		} else {
			p.IdleReq()
		}
	}
	for i, p := range n.Init {
		if n.ist[i].respValid {
			p.DriveResp(n.ist[i].respCell)
		} else {
			p.IdleResp()
		}
	}
	// The tick re-trigger of the grant process lives in its own SeqExpr.
}

// popOutstanding removes the oldest outstanding entry with the given source.
func (n *Node) popOutstanding(i, src int) {
	st := &n.ist[i]
	for k, s := range st.outstanding {
		if s == src {
			st.outstanding = append(st.outstanding[:k], st.outstanding[k+1:]...)
			return
		}
	}
	n.pts.orphanResp.Hit()
}

// serveInternal runs the node's internal services at the edge completing a
// request packet: the error responder and the register decoder.
func (n *Node) serveInternal(i, route int) {
	cfg := &n.Cfg
	st := &n.ist[i]
	first := st.intCells[0]
	op, addr := first.Opc, first.Addr
	buildErr := func() []stbus.RespCell {
		cells, err := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, nil,
			cfg.Port.BusBytes(), first.TID, first.Src, true)
		if err != nil {
			// Unbuildable (e.g. invalid opcode field): answer a single error
			// cell so the initiator is never left hanging.
			return []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
		}
		return cells
	}
	if route == routeErr {
		n.pts.intErrPacket.Hit()
		st.intQ = append(st.intQ, buildErr()...)
		return
	}
	// Register decoder.
	off := addr - cfg.ProgBase
	idx := int(off / 4)
	switch {
	case op == stbus.ST4 && idx < cfg.NumInit:
		n.pts.intProgWrite.Hit()
		data := stbus.ExtractWriteData(cfg.Port.Endian, st.intCells, cfg.Port.BusBytes())
		val := data[0] & 0xf
		n.progRegs[idx] = val
		if n.prog != nil {
			if err := n.prog.SetPriority(idx, val); err != nil {
				st.intQ = append(st.intQ, buildErr()...)
				return
			}
		}
		cells, _ := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, nil,
			cfg.Port.BusBytes(), first.TID, first.Src, false)
		st.intQ = append(st.intQ, cells...)
	case op == stbus.LD4 && idx < cfg.NumInit:
		n.pts.intProgRead.Hit()
		data := []byte{n.progRegs[idx], 0, 0, 0}
		cells, _ := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, data,
			cfg.Port.BusBytes(), first.TID, first.Src, false)
		st.intQ = append(st.intQ, cells...)
	default:
		n.pts.intProgBad.Hit()
		st.intQ = append(st.intQ, buildErr()...)
	}
}

// PriorityRegs returns a copy of the programming-port register file.
func (n *Node) PriorityRegs() []uint8 {
	out := make([]uint8, len(n.progRegs))
	copy(out, n.progRegs)
	return out
}

// Outstanding returns the number of in-flight packets of initiator i,
// exposed for tests and checkers.
func (n *Node) Outstanding(i int) int { return len(n.ist[i].outstanding) }

// declareCoverage pre-declares every code-coverage point of the node and
// justifies the ones unreachable under this configuration, mirroring the
// paper's "100 % of justified code" line-coverage goal.
func (n *Node) declareCoverage() {
	m := n.Code
	// Declaration resolves the preresolved handles the hot processes hit
	// through; declaration order is the report order, so it is kept stable.
	n.pts.routeProg = m.Point(coverage.StmtPoint, "route.prog")
	n.pts.routeUnmapped = m.Point(coverage.StmtPoint, "route.unmapped")
	n.pts.routePartial = m.Point(coverage.StmtPoint, "route.partial_blocked")
	n.pts.routeMapped = m.Point(coverage.StmtPoint, "route.mapped")
	n.pts.grantMid = m.Point(coverage.StmtPoint, "grant.mid_packet")
	n.pts.grantFirst = m.Point(coverage.StmtPoint, "grant.first_cell")
	n.pts.arbShared = m.Point(coverage.StmtPoint, "arb.shared")
	n.pts.arbCrossbar = m.Point(coverage.StmtPoint, "arb.crossbar")
	n.pts.respTarget = m.Point(coverage.StmtPoint, "resp.target")
	n.pts.respInternal = m.Point(coverage.StmtPoint, "resp.internal")
	n.pts.chunkRelease = m.Point(coverage.StmtPoint, "chunk.release_elsewhere")
	n.pts.orphanResp = m.Point(coverage.StmtPoint, "seq.orphan_response")
	n.pts.seqTgtDrain = m.Point(coverage.LinePoint, "seq.tgt_drain")
	n.pts.seqRespDeliver = m.Point(coverage.LinePoint, "seq.resp_deliver")
	n.pts.seqReqForward = m.Point(coverage.LinePoint, "seq.req_forward")
	n.pts.seqReqInternal = m.Point(coverage.LinePoint, "seq.req_internal")
	n.pts.seqRespLoad = m.Point(coverage.LinePoint, "seq.resp_load")
	n.pts.intErrPacket = m.Point(coverage.LinePoint, "int.error_packet")
	n.pts.intProgWrite = m.Point(coverage.LinePoint, "int.prog_write")
	n.pts.intProgRead = m.Point(coverage.LinePoint, "int.prog_read")
	n.pts.intProgBad = m.Point(coverage.LinePoint, "int.prog_bad_access")
	n.pts.eligOrder = m.Point(coverage.BranchPoint, "elig.order")
	n.pts.eligOutreg = m.Point(coverage.BranchPoint, "elig.outreg")
	n.pts.eligPipe = m.Point(coverage.BranchPoint, "elig.pipe")
	n.pts.eligLock = m.Point(coverage.BranchPoint, "elig.lock")
	n.pts.chunkHold = m.Point(coverage.BranchPoint, "chunk.hold")
	// Configuration-dependent justifications.
	if !n.Cfg.ProgPort {
		for _, p := range []string{"route.prog", "int.prog_write", "int.prog_read", "int.prog_bad_access"} {
			_ = m.Justify(p)
		}
	}
	if n.Cfg.Arch != PartialCrossbar {
		_ = m.Justify("route.partial_blocked")
	}
	if n.Cfg.Arch == SharedBus {
		_ = m.Justify("arb.crossbar")
	} else {
		_ = m.Justify("arb.shared")
	}
	if n.Cfg.Port.Type != stbus.Type2 {
		_ = m.Justify("elig.order")
	}
	// Defensive paths not reachable from spec-conforming harnesses.
	_ = m.Justify("chunk.release_elsewhere")
	_ = m.Justify("seq.orphan_response")
}
