package rtl

import (
	"fmt"

	"crve/internal/sim"
	"crve/internal/stbus"
)

// MemoryConfig parameterises a Memory target.
type MemoryConfig struct {
	Name string
	Port stbus.PortConfig
	// Base and Size bound the decoded address window; accesses outside it
	// answer with error responses.
	Base, Size uint64
	// Latency is the number of cycles between receiving the last request
	// cell of a packet and offering its first response cell.
	Latency int
	// GntGap inserts this many dead cycles after every accepted request
	// cell, modelling a slow target ("different speed" targets are how the
	// paper's test cases force out-of-order traffic).
	GntGap int
	// QueueDepth bounds the packets in flight inside the memory.
	QueueDepth int
}

// WithDefaults fills zero-valued fields.
func (c MemoryConfig) WithDefaults() MemoryConfig {
	c.Port = c.Port.WithDefaults()
	if c.Name == "" {
		c.Name = "mem"
	}
	if c.Size == 0 {
		c.Size = 1 << 20
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2
	}
	return c
}

type memPacket struct {
	cells   []stbus.Cell
	resp    []stbus.RespCell
	readyAt uint64
	idx     int
}

// Memory is a deterministic RTL memory target: it stores bytes sparsely,
// serves the full STBus operation set, and exposes configurable grant gaps
// and latency. It is the leaf target of the example interconnects; the
// verification environment's target harness (internal/catg) additionally
// randomises timing from the test seed.
type Memory struct {
	Cfg  MemoryConfig
	Port *stbus.Port

	mem     map[uint64]byte
	cur     []stbus.Cell
	queue   []*memPacket
	gap     int
	cycle   uint64
	gntNext bool
}

// NewMemory elaborates a memory target under sc.
func NewMemory(sc sim.Scope, cfg MemoryConfig) (*Memory, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Port.Validate(); err != nil {
		return nil, err
	}
	ms := sc.Sub(cfg.Name)
	m := &Memory{
		Cfg:  cfg,
		Port: stbus.NewPort(ms, "port", cfg.Port),
		mem:  make(map[uint64]byte),
	}
	ms.Seq("mem", m.seq)
	return m, nil
}

// Peek reads a byte directly, for tests and scoreboards.
func (m *Memory) Peek(addr uint64) byte { return m.mem[addr] }

// Poke writes a byte directly, for test preconditioning.
func (m *Memory) Poke(addr uint64, v byte) { m.mem[addr] = v }

// inFlight counts packets being received or awaiting/streaming responses.
func (m *Memory) inFlight() int {
	n := len(m.queue)
	if len(m.cur) > 0 {
		n++
	}
	return n
}

func (m *Memory) seq() {
	p := m.Port
	m.cycle++
	// Accept a request cell if we offered gnt and the initiator requested.
	if p.ReqFire() {
		m.cur = append(m.cur, p.SampleCell())
		m.gap = m.Cfg.GntGap
		if m.cur[len(m.cur)-1].EOP {
			m.queue = append(m.queue, m.servePacket(m.cur))
			m.cur = nil
		}
	} else if m.gap > 0 {
		m.gap--
	}
	// Stream response cells.
	if p.RespFire() {
		head := m.queue[0]
		head.idx++
		if head.idx == len(head.resp) {
			m.queue = m.queue[1:]
		}
	}
	if len(m.queue) > 0 && m.cycle >= m.queue[0].readyAt {
		head := m.queue[0]
		p.DriveResp(head.resp[head.idx])
	} else {
		p.IdleResp()
	}
	// Offer grant for the next cycle.
	m.gntNext = m.inFlight() < m.Cfg.QueueDepth && m.gap == 0
	p.Gnt.SetBool(m.gntNext)
}

// servePacket executes a completed request packet against the byte store and
// builds its response packet.
func (m *Memory) servePacket(cells []stbus.Cell) *memPacket {
	cfg := &m.Cfg
	first := cells[0]
	op, addr := first.Opc, first.Addr
	size := op.SizeBytes()
	pk := &memPacket{cells: cells, readyAt: m.cycle + uint64(cfg.Latency)}
	inWindow := addr >= cfg.Base && addr+uint64(size) <= cfg.Base+cfg.Size
	if !inWindow || !op.Valid() {
		pk.resp = m.errResp(op, addr, first)
		return pk
	}
	var readData []byte
	if op.IsLoad() {
		readData = make([]byte, size)
		for i := range readData {
			readData[i] = m.mem[addr+uint64(i)]
		}
	}
	if op.HasWriteData() {
		data := stbus.ExtractWriteData(cfg.Port.Endian, cells, cfg.Port.BusBytes())
		for i, b := range data {
			m.mem[addr+uint64(i)] = b
		}
	}
	resp, err := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, readData,
		cfg.Port.BusBytes(), first.TID, first.Src, false)
	if err != nil {
		resp = m.errResp(op, addr, first)
	}
	pk.resp = resp
	return pk
}

func (m *Memory) errResp(op stbus.Opcode, addr uint64, first stbus.Cell) []stbus.RespCell {
	resp, err := stbus.BuildResponse(m.Cfg.Port.Type, m.Cfg.Port.Endian, op, addr, nil,
		m.Cfg.Port.BusBytes(), first.TID, first.Src, true)
	if err != nil {
		return []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
	}
	return resp
}

func (m *Memory) String() string {
	return fmt.Sprintf("mem %s [%#x+%#x] lat=%d gap=%d", m.Cfg.Name, m.Cfg.Base, m.Cfg.Size,
		m.Cfg.Latency, m.Cfg.GntGap)
}
