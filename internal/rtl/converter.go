package rtl

import (
	"fmt"

	"crve/internal/sim"
	"crve/internal/stbus"
)

// ConverterConfig parameterises a protocol converter: a component with an
// upstream port (facing an initiator; the converter acts as target) and a
// downstream port (facing a target; the converter acts as initiator) whose
// interface configurations may differ in data width (size converter),
// protocol type (type converter), endianness, or any combination.
type ConverterConfig struct {
	Name string
	Up   stbus.PortConfig
	Down stbus.PortConfig
	// Pipe bounds the converter's outstanding packets (default 4; forced to
	// 1 when the upstream side is Type 1).
	Pipe int
}

// WithDefaults fills zero-valued fields.
func (c ConverterConfig) WithDefaults() ConverterConfig {
	c.Up = c.Up.WithDefaults()
	c.Down = c.Down.WithDefaults()
	if c.Name == "" {
		c.Name = "conv"
	}
	if c.Pipe == 0 {
		c.Pipe = 4
	}
	if c.Up.Type == stbus.Type1 || c.Down.Type == stbus.Type1 {
		c.Pipe = 1
	}
	return c
}

// Validate checks the configuration.
func (c ConverterConfig) Validate() error {
	if err := c.Up.Validate(); err != nil {
		return fmt.Errorf("rtl: converter up: %w", err)
	}
	if err := c.Down.Validate(); err != nil {
		return fmt.Errorf("rtl: converter down: %w", err)
	}
	if c.Up.AddrBits != c.Down.AddrBits {
		return fmt.Errorf("rtl: converter address widths differ (%d vs %d)", c.Up.AddrBits, c.Down.AddrBits)
	}
	if c.Pipe < 1 || c.Pipe > 64 {
		return fmt.Errorf("rtl: converter pipe %d out of range", c.Pipe)
	}
	return nil
}

type convPend struct {
	op   stbus.Opcode
	addr uint64
	tid  uint8
	src  uint8
}

// Converter is a store-and-forward STBus protocol converter: it accepts a
// whole request packet on the upstream interface, re-packetises it for the
// downstream interface (different width, protocol type and/or endianness),
// and converts the response packet back. Operations illegal on the
// downstream protocol (e.g. an RMW crossing into Type 1) are answered
// upstream with an error response.
//
// The Figure 1 interconnect of the paper uses converters as glue between
// nodes of different width (the "64/32" size converter) and type (the
// "t2/t3" type converters).
type Converter struct {
	Cfg ConverterConfig
	// Up faces the initiator side: the converter drives gnt and r_req.
	Up *stbus.Port
	// Down faces the target side: the converter drives req and r_gnt.
	Down *stbus.Port

	reqBuf  []stbus.Cell
	sendQ   []stbus.Cell
	sendIdx int

	pending []convPend

	respBuf []stbus.RespCell
	upQ     [][]stbus.RespCell
	upIdx   int
}

// NewConverter elaborates a converter under sc. See NewSizeConverter and
// NewTypeConverter for the named variants of the paper's component list.
func NewConverter(sc sim.Scope, cfg ConverterConfig) (*Converter, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cs := sc.Sub(cfg.Name)
	c := &Converter{
		Cfg:  cfg,
		Up:   stbus.NewPort(cs, "up", cfg.Up),
		Down: stbus.NewPort(cs, "down", cfg.Down),
	}
	cs.Seq("conv", c.seq)
	return c, nil
}

// NewSizeConverter elaborates a size converter: same protocol type both
// sides, different data width (the "64/32" block of the paper's Figure 1).
func NewSizeConverter(sc sim.Scope, name string, up stbus.PortConfig, downBits int) (*Converter, error) {
	down := up
	down.DataBits = downBits
	return NewConverter(sc, ConverterConfig{Name: name, Up: up, Down: down})
}

// NewTypeConverter elaborates a type converter: same width both sides,
// different protocol type (the "t2/t3" blocks of the paper's Figure 1).
func NewTypeConverter(sc sim.Scope, name string, up stbus.PortConfig, downType stbus.Type) (*Converter, error) {
	down := up
	down.Type = downType
	return NewConverter(sc, ConverterConfig{Name: name, Up: up, Down: down})
}

func (c *Converter) String() string {
	return fmt.Sprintf("conv %s %v -> %v", c.Cfg.Name, c.Cfg.Up, c.Cfg.Down)
}

// gntUp reports whether the converter can accept an upstream request cell
// this cycle. Port-level occupancy counts packets from request acceptance
// until their response fully drains upstream: entries awaiting a downstream
// response (pending) plus converted responses still queued (upQ). This is
// what keeps a Pipe=1 converter Type 1 compliant — no new grant until the
// previous response completed.
func (c *Converter) gntUp() bool {
	if len(c.sendQ) > 0 {
		return false // previous packet still draining downstream
	}
	return len(c.pending)+len(c.upQ) < c.Cfg.Pipe
}

// seq is the converter's clocked process.
func (c *Converter) seq() {
	up, down := c.Up, c.Down
	// Upstream request capture.
	if up.ReqFire() {
		c.reqBuf = append(c.reqBuf, up.SampleCell())
		if c.reqBuf[len(c.reqBuf)-1].EOP {
			c.convertRequest()
			c.reqBuf = nil
		}
	}
	// Downstream request drive progress.
	if down.ReqFire() {
		c.sendIdx++
		if c.sendIdx == len(c.sendQ) {
			c.sendQ = nil
			c.sendIdx = 0
		}
	}
	// Downstream response capture.
	if down.RespFire() {
		c.respBuf = append(c.respBuf, down.SampleResp())
		if c.respBuf[len(c.respBuf)-1].EOP {
			c.convertResponse()
			c.respBuf = nil
		}
	}
	// Upstream response drive progress.
	if up.RespFire() {
		c.upIdx++
		if c.upIdx == len(c.upQ[0]) {
			c.upQ = c.upQ[1:]
			c.upIdx = 0
		}
	}
	// Drives for the next cycle.
	if len(c.sendQ) > 0 {
		down.DriveCell(c.sendQ[c.sendIdx])
	} else {
		down.IdleReq()
	}
	if len(c.upQ) > 0 {
		up.DriveResp(c.upQ[0][c.upIdx])
	} else {
		up.IdleResp()
	}
	up.Gnt.SetBool(c.gntUp())
	// One downstream response packet is converted at a time.
	down.RGnt.SetBool(len(c.respBuf) > 0 || len(c.upQ) == 0)
}

// convertRequest re-packetises the completed upstream packet for the
// downstream interface.
func (c *Converter) convertRequest() {
	upCfg, downCfg := c.Cfg.Up, c.Cfg.Down
	first := c.reqBuf[0]
	op, addr := first.Opc, first.Addr
	fail := func() {
		resp, err := stbus.BuildResponse(upCfg.Type, upCfg.Endian, op, addr, nil,
			upCfg.BusBytes(), first.TID, first.Src, true)
		if err != nil {
			resp = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
		}
		c.upQ = append(c.upQ, resp)
	}
	if !op.ValidFor(downCfg.Type, downCfg.BusBytes()) {
		fail()
		return
	}
	var payload []byte
	if op.HasWriteData() {
		payload = stbus.ExtractWriteData(upCfg.Endian, c.reqBuf, upCfg.BusBytes())
	}
	cells, err := stbus.BuildRequest(downCfg.Type, downCfg.Endian, op, addr, payload,
		downCfg.BusBytes(), first.TID, first.Src, first.Pri, first.Lck)
	if err != nil {
		fail()
		return
	}
	c.sendQ = cells
	c.sendIdx = 0
	c.pending = append(c.pending, convPend{op: op, addr: addr, tid: first.TID, src: first.Src})
}

// convertResponse re-packetises the completed downstream response for the
// upstream interface.
func (c *Converter) convertResponse() {
	upCfg, downCfg := c.Cfg.Up, c.Cfg.Down
	first := c.respBuf[0]
	idx := -1
	if downCfg.Type == stbus.Type3 {
		for k, pd := range c.pending {
			if pd.src == first.Src && pd.tid == first.TID {
				idx = k
				break
			}
		}
	} else if len(c.pending) > 0 {
		idx = 0
	}
	if idx < 0 {
		// Orphan downstream response: drop it; the port checker at the
		// downstream interface reports the protocol violation.
		return
	}
	pd := c.pending[idx]
	c.pending = append(c.pending[:idx], c.pending[idx+1:]...)
	respErr := false
	for _, cell := range c.respBuf {
		if cell.Err() {
			respErr = true
		}
	}
	var data []byte
	if pd.op.IsLoad() && !respErr {
		data = stbus.ExtractReadData(downCfg.Endian, pd.op, pd.addr, c.respBuf, downCfg.BusBytes())
	}
	resp, err := stbus.BuildResponse(upCfg.Type, upCfg.Endian, pd.op, pd.addr, data,
		upCfg.BusBytes(), pd.tid, pd.src, respErr)
	if err != nil {
		resp = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: pd.tid, Src: pd.src}}
	}
	c.upQ = append(c.upQ, resp)
}

// Outstanding returns the number of packets inside the converter.
func (c *Converter) Outstanding() int { return len(c.pending) }
