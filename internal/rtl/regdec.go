package rtl

import (
	"fmt"

	"crve/internal/sim"
	"crve/internal/stbus"
)

// RegDecoderConfig parameterises a register decoder target.
type RegDecoderConfig struct {
	Name string
	Port stbus.PortConfig
	// Base is the address of register 0; register k lives at Base + 4k.
	Base uint64
	// NumRegs is the register-file size (32-bit registers).
	NumRegs int
}

// WithDefaults fills zero-valued fields.
func (c RegDecoderConfig) WithDefaults() RegDecoderConfig {
	c.Port = c.Port.WithDefaults()
	if c.Name == "" {
		c.Name = "regdec"
	}
	if c.NumRegs == 0 {
		c.NumRegs = 8
	}
	return c
}

// RegDecoder is the fourth basic STBus component of the paper's Section 3
// ("nodes, size converters, type converters and register decoders"): a leaf
// target exposing a 32-bit register file. Only ST4 and LD4 at register
// offsets are legal; everything else is answered with an error response.
// Writes are observable through the OnWrite hook (this is how peripherals
// hang their control registers on the bus).
type RegDecoder struct {
	Cfg  RegDecoderConfig
	Port *stbus.Port
	// OnWrite, when set, is called at the edge a register write completes.
	OnWrite func(reg int, value uint32)

	regs  []uint32
	cur   []stbus.Cell
	queue [][]stbus.RespCell
	idx   int
}

// NewRegDecoder elaborates a register decoder under sc.
func NewRegDecoder(sc sim.Scope, cfg RegDecoderConfig) (*RegDecoder, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Port.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumRegs < 1 || cfg.NumRegs > 1024 {
		return nil, fmt.Errorf("rtl: regdec with %d registers", cfg.NumRegs)
	}
	rs := sc.Sub(cfg.Name)
	r := &RegDecoder{
		Cfg:  cfg,
		Port: stbus.NewPort(rs, "port", cfg.Port),
		regs: make([]uint32, cfg.NumRegs),
	}
	rs.Seq("regdec", r.seq)
	return r, nil
}

// Reg reads register k directly (tests, firmware models).
func (r *RegDecoder) Reg(k int) uint32 { return r.regs[k] }

// SetReg writes register k directly.
func (r *RegDecoder) SetReg(k int, v uint32) { r.regs[k] = v }

func (r *RegDecoder) seq() {
	p := r.Port
	if p.ReqFire() {
		r.cur = append(r.cur, p.SampleCell())
		if r.cur[len(r.cur)-1].EOP {
			r.queue = append(r.queue, r.serve(r.cur))
			r.cur = nil
		}
	}
	if p.RespFire() {
		r.idx++
		if r.idx == len(r.queue[0]) {
			r.queue = r.queue[1:]
			r.idx = 0
		}
	}
	if len(r.queue) > 0 {
		p.DriveResp(r.queue[0][r.idx])
	} else {
		p.IdleResp()
	}
	p.Gnt.SetBool(len(r.queue) < 2)
}

func (r *RegDecoder) serve(cells []stbus.Cell) []stbus.RespCell {
	cfg := r.Cfg
	first := cells[0]
	op, addr := first.Opc, first.Addr
	reg := int(addr-cfg.Base) / 4
	legal := addr >= cfg.Base && reg < cfg.NumRegs && (addr-cfg.Base)%4 == 0 &&
		(op == stbus.ST4 || op == stbus.LD4)
	errResp := func() []stbus.RespCell {
		resp, err := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, nil,
			cfg.Port.BusBytes(), first.TID, first.Src, true)
		if err != nil {
			return []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
		}
		return resp
	}
	if !legal {
		return errResp()
	}
	if op == stbus.ST4 {
		data := stbus.ExtractWriteData(cfg.Port.Endian, cells, cfg.Port.BusBytes())
		v := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		r.regs[reg] = v
		if r.OnWrite != nil {
			r.OnWrite(reg, v)
		}
		resp, _ := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, nil,
			cfg.Port.BusBytes(), first.TID, first.Src, false)
		return resp
	}
	v := r.regs[reg]
	data := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	resp, _ := stbus.BuildResponse(cfg.Port.Type, cfg.Port.Endian, op, addr, data,
		cfg.Port.BusBytes(), first.TID, first.Src, false)
	return resp
}
