package web_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"crve/internal/arb"
	"crve/internal/jobs"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/stbus"
	"crve/internal/web"
)

func testCfgText(t *testing.T, name string) string {
	t.Helper()
	cfg := nodespec.Config{
		Name:    name,
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x800),
		PipeSize: 4,
	}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return regress.FormatConfig(cfg)
}

func getPage(t *testing.T, srv *httptest.Server, path string, want int) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("GET %s: %d, want %d: %s", path, resp.StatusCode, want, body)
	}
	return string(body)
}

// TestDashboard renders every template against a real finished job — a field
// renamed out from under a template fails here, not in production.
func TestDashboard(t *testing.T) {
	cache, err := regress.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := jobs.NewManager(jobs.Options{Cache: cache, Slots: 1, Workers: 2})
	srv := httptest.NewServer(web.New(mgr).Handler())
	defer srv.Close()

	// Empty index renders.
	if page := getPage(t, srv, "/", http.StatusOK); !strings.Contains(page, "no jobs yet") {
		t.Errorf("empty index is missing the empty-state hint:\n%s", page)
	}

	job, err := mgr.Submit(jobs.Spec{
		Configs:    []string{testCfgText(t, "web0")},
		Tests:      []string{"basic_write_read", "error_paths"},
		RecordWave: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !job.Status().State.Terminal() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := job.Status(); st.State != jobs.Done {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}

	index := getPage(t, srv, "/", http.StatusOK)
	for _, want := range []string{job.ID, "done"} {
		if !strings.Contains(index, want) {
			t.Errorf("index page is missing %q:\n%s", want, index)
		}
	}

	detail := getPage(t, srv, "/jobs/"+job.ID, http.StatusOK)
	for _, want := range []string{"web0", "basic_write_read", "Matrix", "Waveforms", "sign-off"} {
		if !strings.Contains(detail, want) {
			t.Errorf("job page is missing %q", want)
		}
	}

	getPage(t, srv, "/jobs/nope", http.StatusNotFound)

	// The submit form round-trips into a redirect to the new job's page.
	resp, err := srv.Client().PostForm(srv.URL+"/submit", url.Values{
		"config": {testCfgText(t, "web1")},
		"tests":  {"basic_write_read"},
		"seeds":  {"1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The default client follows the 303 to the job page.
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Request.URL.Path, "/jobs/") {
		t.Errorf("form submit landed on %s (%d), want a /jobs/{id} page", resp.Request.URL.Path, resp.StatusCode)
	}

	// Bad form input is a client error.
	resp2, err := srv.Client().PostForm(srv.URL+"/submit", url.Values{"seeds": {"zap"}})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seed form: %d, want 400", resp2.StatusCode)
	}
}
