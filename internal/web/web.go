// Package web is the embedded dashboard of the served verification flow: a
// few server-rendered html/template pages over the job manager — job list
// with a submit form, and a per-job page with the matrix grid, coverage
// bars and closure trajectories. Everything ships inside the binary via
// embed.FS; the dashboard needs no assets, no build step and no JavaScript
// (running pages poll by meta-refresh).
package web

import (
	"embed"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"crve/internal/coverage"
	"crve/internal/jobs"
	"crve/internal/regress"
	"crve/internal/sim"
)

//go:embed templates/*.html
var templates embed.FS

// Server renders the dashboard over a job manager.
type Server struct {
	mgr *jobs.Manager
	mux *http.ServeMux
	tpl *template.Template
}

// New builds the dashboard for mgr.
func New(mgr *jobs.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.tpl = template.Must(template.ParseFS(templates, "templates/*.html"))
	s.mux.HandleFunc("GET /{$}", s.index)
	s.mux.HandleFunc("POST /submit", s.submit)
	s.mux.HandleFunc("GET /jobs/{id}", s.job)
	return s
}

// Handler returns the routable handler.
func (s *Server) Handler() http.Handler { return s.mux }

// indexData feeds templates/index.html.
type indexData struct {
	Jobs    []jobs.Status
	Tests   []string
	Version string
	CacheOn bool
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	all := s.mgr.List()
	data := indexData{Version: regress.CodeVersion(), CacheOn: s.mgr.Cache() != nil}
	for i := len(all) - 1; i >= 0; i-- { // newest first
		data.Jobs = append(data.Jobs, all[i].Status())
	}
	s.render(w, "index.html", data)
}

// submit accepts the dashboard form and redirects to the new job's page.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec := jobs.Spec{
		Matrix:      r.Form.Get("matrix") != "",
		Quick:       r.Form.Get("quick") != "",
		KernelStats: r.Form.Get("kernelstats") != "",
		Kernel:      strings.TrimSpace(r.Form.Get("kernel")),
		RecordWave:  r.Form.Get("record_wave") != "",
		Close:       r.Form.Get("close") != "",
	}
	if t := strings.TrimSpace(r.Form.Get("tests")); t != "" {
		for _, name := range strings.Split(t, ",") {
			spec.Tests = append(spec.Tests, strings.TrimSpace(name))
		}
	}
	if sd := strings.TrimSpace(r.Form.Get("seeds")); sd != "" {
		for _, v := range strings.Split(sd, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad seed %q", v), http.StatusBadRequest)
				return
			}
			spec.Seeds = append(spec.Seeds, n)
		}
	}
	if ln := strings.TrimSpace(r.Form.Get("lanes")); ln != "" {
		n, err := strconv.Atoi(ln)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad lanes %q", ln), http.StatusBadRequest)
			return
		}
		spec.Lanes = n
	}
	if cfg := strings.TrimSpace(r.Form.Get("config")); cfg != "" {
		spec.Configs = []string{cfg}
	}
	job, err := s.mgr.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/jobs/"+job.ID, http.StatusSeeOther)
}

// runRow / cfgRow / trajRow are the pre-digested view models: templates only
// format, never compute.
type runRow struct {
	Test     string
	Seed     int64
	Cached   bool
	RTLPass  bool
	BCAPass  bool
	CovEqual bool
	MinAlign float64
}

type cfgRow struct {
	Name      string
	FuncCov   float64
	LineCov   float64
	MinAlign  float64
	SignedOff bool
	Runs      []runRow
	Holes     []string
}

type trajIter struct {
	Iter    int
	Percent float64
	NewBins int
	Units   int
	Cycles  uint64
}

// kernelRow is one (config, view) merged kernel profile for the dashboard's
// kernel table; lane columns light up only for lane-parallel runs.
type kernelRow struct {
	Name          string
	View          string
	Runs          int
	Cycles        uint64
	CompiledEvals uint64
	ClosureEvals  uint64
	Lanes         int
	FusedEvals    uint64
	DivergencePct float64
}

type trajRow struct {
	Config       string
	Reason       string
	Converged    bool
	StartPercent float64
	FinalPercent float64
	Iters        []trajIter
}

// jobData feeds templates/job.html.
type jobData struct {
	St       jobs.Status
	Live     bool
	Percent  float64
	Configs  []cfgRow
	Kernels  []kernelRow
	Closures []trajRow
	Waves    []string
	LogTail  string
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	st := job.Status()
	data := jobData{St: st, Live: !st.State.Terminal(), Waves: job.WaveUnits()}
	if st.Progress.Total > 0 {
		data.Percent = 100 * float64(st.Progress.Done) / float64(st.Progress.Total)
	}
	for _, cr := range job.Results() {
		row := cfgRow{
			Name:      cr.Cfg.Name,
			FuncCov:   cr.SuiteCoverage.Percent(),
			LineCov:   cr.CodeCov.Percent(coverage.LinePoint),
			MinAlign:  cr.MinAlignment,
			SignedOff: cr.SignedOff(),
		}
		for _, h := range cr.SuiteCoverage.Holes() {
			row.Holes = append(row.Holes, h.String())
		}
		for _, run := range cr.Runs {
			row.Runs = append(row.Runs, runRow{
				Test: run.Test, Seed: run.Seed, Cached: run.Cached,
				RTLPass: run.Pair.RTL.Passed(), BCAPass: run.Pair.BCA.Passed(),
				CovEqual: run.Pair.CoverageEqual, MinAlign: run.Pair.Alignment.MinRate(),
			})
		}
		data.Configs = append(data.Configs, row)
		for _, view := range []string{"RTL", "BCA"} {
			merged := &sim.KernelStats{}
			n := 0
			for _, run := range cr.Runs {
				res := run.Pair.RTL
				if view == "BCA" {
					res = run.Pair.BCA
				}
				if res.Kernel == nil {
					continue
				}
				merged.Merge(res.Kernel)
				n++
			}
			if n == 0 {
				continue
			}
			kr := kernelRow{
				Name: cr.Cfg.Name, View: view, Runs: n,
				Cycles:        merged.Cycles,
				CompiledEvals: merged.CompiledEvals,
				ClosureEvals:  merged.ClosureEvals,
				Lanes:         merged.Lanes,
				FusedEvals:    merged.FusedLaneEvals,
			}
			if merged.Lanes > 0 {
				kr.DivergencePct = merged.DivergenceRate() * 100
			}
			data.Kernels = append(data.Kernels, kr)
		}
	}
	for _, traj := range job.Closures() {
		tr := trajRow{
			Config: traj.Config, Reason: traj.Reason, Converged: traj.Converged,
			StartPercent: traj.StartPercent, FinalPercent: traj.FinalPercent,
		}
		for _, it := range traj.Iterations {
			pct := 0.0
			if traj.TotalBins > 0 {
				pct = 100 * float64(traj.TotalBins-it.HolesAfter) / float64(traj.TotalBins)
			}
			tr.Iters = append(tr.Iters, trajIter{
				Iter: it.Iter, Percent: pct, NewBins: it.NewBins,
				Units: len(it.Units), Cycles: it.Cycles,
			})
		}
		data.Closures = append(data.Closures, tr)
	}
	if log := job.Log(); log != "" {
		const tail = 4000
		if len(log) > tail {
			log = "..." + log[len(log)-tail:]
		}
		data.LogTail = log
	}
	s.render(w, "job.html", data)
}

func (s *Server) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tpl.ExecuteTemplate(w, name, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
