// Package nodespec holds the configuration vocabulary of the STBus node —
// the "HDL parameters" the paper's regression tool collects and applies to
// both design views. It is specification, not implementation: internal/rtl
// and internal/bca each implement NODE-SPEC.md independently from this
// shared parameter set.
package nodespec

import (
	"fmt"

	"crve/internal/arb"
	"crve/internal/stbus"
)

// Arch selects the node interconnect architecture (Section 3 of the paper:
// single shared bus, full crossbar or partial crossbar).
type Arch int

const (
	// SharedBus serialises the fabric: at most one request transfer and one
	// response transfer cross the node per cycle.
	SharedBus Arch = iota
	// FullCrossbar lets every initiator-target pair transfer concurrently.
	FullCrossbar
	// PartialCrossbar restricts connectivity to an allowed matrix; requests
	// to unreachable targets receive error responses.
	PartialCrossbar
)

func (a Arch) String() string {
	switch a {
	case SharedBus:
		return "shared"
	case FullCrossbar:
		return "full"
	case PartialCrossbar:
		return "partial"
	default:
		return fmt.Sprintf("arch?%d", int(a))
	}
}

// ParseArch parses an architecture name from a configuration file.
func ParseArch(s string) (Arch, error) {
	for _, a := range []Arch{SharedBus, FullCrossbar, PartialCrossbar} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("nodespec: unknown architecture %q", s)
}

// MaxPorts is the node port-count limit (the paper: "can manage up to 32
// initiators and 32 targets").
const MaxPorts = 32

// Config is the set of HDL parameters of a node instance, the ones the
// paper's regression tool collects ("bus size, protocol bus type, pipe size,
// endianess and some other parameters").
type Config struct {
	Name string
	// Port is the common configuration of every node interface. The node
	// supports Type2 and Type3 (Type1 peripherals attach through a type
	// converter, as in the paper's Figure 1).
	Port stbus.PortConfig
	// NumInit and NumTgt are the initiator and target port counts (1..32).
	NumInit, NumTgt int
	Arch            Arch
	// Allowed is the partial-crossbar connectivity matrix
	// (Allowed[init][tgt]); ignored for the other architectures.
	Allowed [][]bool
	// ReqArb is the request-path arbitration policy (per target port, or
	// global for a shared bus); RespArb is the response-path policy.
	ReqArb, RespArb arb.Kind
	// Map routes request addresses to target ports.
	Map stbus.AddrMap
	// PipeSize bounds outstanding request packets per initiator port before
	// the node back-pressures (the CATG "pipe size" parameter).
	PipeSize int
	// ProgPort exposes the arbitration priority registers at ProgBase
	// (4 bytes per initiator), served by the node's internal register
	// decoder. Effective with the programmable policy.
	ProgPort bool
	ProgBase uint64
}

// WithDefaults fills zero-valued fields with usable defaults.
func (c Config) WithDefaults() Config {
	c.Port = c.Port.WithDefaults()
	if c.PipeSize == 0 {
		c.PipeSize = 4
	}
	if c.Name == "" {
		c.Name = "node"
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Port.Validate(); err != nil {
		return err
	}
	if c.Port.Type == stbus.Type1 {
		return fmt.Errorf("nodespec: node supports Type2/Type3 only (Type1 attaches via a type converter)")
	}
	if c.NumInit < 1 || c.NumInit > MaxPorts {
		return fmt.Errorf("nodespec: %d initiators out of range 1..%d", c.NumInit, MaxPorts)
	}
	if c.NumTgt < 1 || c.NumTgt > MaxPorts {
		return fmt.Errorf("nodespec: %d targets out of range 1..%d", c.NumTgt, MaxPorts)
	}
	if c.Arch == PartialCrossbar {
		if len(c.Allowed) != c.NumInit {
			return fmt.Errorf("nodespec: allowed matrix has %d rows, want %d", len(c.Allowed), c.NumInit)
		}
		for i, row := range c.Allowed {
			if len(row) != c.NumTgt {
				return fmt.Errorf("nodespec: allowed row %d has %d cols, want %d", i, len(row), c.NumTgt)
			}
		}
	}
	if len(c.Map) == 0 {
		return fmt.Errorf("nodespec: node needs at least one address-map region")
	}
	if err := c.Map.Validate(c.NumTgt); err != nil {
		return err
	}
	if c.PipeSize < 1 || c.PipeSize > 64 {
		return fmt.Errorf("nodespec: pipe size %d out of range 1..64", c.PipeSize)
	}
	if c.ProgPort {
		for _, r := range c.Map {
			if c.ProgBase < r.End() && r.Base < c.ProgBase+uint64(4*c.NumInit) {
				return fmt.Errorf("nodespec: programming region overlaps map region at %#x", r.Base)
			}
		}
	}
	return nil
}

// Connected reports whether initiator i may reach target t.
func (c Config) Connected(i, t int) bool {
	if c.Arch != PartialCrossbar {
		return true
	}
	return c.Allowed[i][t]
}

// DefaultPriorities returns the power-on arbitration priority table both
// views must use: port 0 highest (the paper's Figure 6 node numbers its
// initiators by importance).
func (c Config) DefaultPriorities() []uint8 {
	prios := make([]uint8, c.NumInit)
	for i := range prios {
		prios[i] = uint8(c.NumInit-i) & 0xf
	}
	return prios
}

func (c Config) String() string {
	return fmt.Sprintf("%s: %v %dx%d %v req=%v resp=%v pipe=%d prog=%v",
		c.Name, c.Port, c.NumInit, c.NumTgt, c.Arch, c.ReqArb, c.RespArb, c.PipeSize, c.ProgPort)
}
