package nodespec

import (
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/stbus"
)

func valid() Config {
	return Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   FullCrossbar,
		ReqArb: arb.Priority, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

func TestValidateAccepts(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Port.Type = stbus.Type1 },
		func(c *Config) { c.Port.DataBits = 48 },
		func(c *Config) { c.NumInit = 0 },
		func(c *Config) { c.NumInit = 33 },
		func(c *Config) { c.NumTgt = 0 },
		func(c *Config) { c.Arch = PartialCrossbar }, // missing Allowed
		func(c *Config) { c.Map = nil },
		func(c *Config) { c.Map = stbus.UniformMap(5, 0, 0x100) }, // routes past NumTgt
		func(c *Config) { c.PipeSize = -1 },                       // negative pipe (0 is defaulted)
		func(c *Config) { c.PipeSize = 99 },
		func(c *Config) { c.ProgPort = true; c.ProgBase = 0x1000 }, // overlaps map
	}
	for i, m := range mut {
		c := valid()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %v", i, c)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{Port: stbus.PortConfig{Type: stbus.Type2, DataBits: 64},
		NumInit: 1, NumTgt: 1, Map: stbus.UniformMap(1, 0, 0x100)}.WithDefaults()
	if c.PipeSize != 4 || c.Name != "node" || c.Port.AddrBits != 32 {
		t.Errorf("defaults: %v", c)
	}
}

func TestConnected(t *testing.T) {
	c := valid()
	if !c.Connected(0, 1) {
		t.Error("full crossbar should connect everything")
	}
	c.Arch = PartialCrossbar
	c.Allowed = [][]bool{{true, false}, {true, true}}
	if c.Connected(0, 1) || !c.Connected(1, 1) {
		t.Error("partial connectivity wrong")
	}
}

func TestDefaultPriorities(t *testing.T) {
	c := valid()
	c.NumInit = 3
	p := c.DefaultPriorities()
	if len(p) != 3 || p[0] <= p[1] || p[1] <= p[2] {
		t.Errorf("priorities %v: port 0 must rank highest", p)
	}
}

func TestArchParseAndString(t *testing.T) {
	for _, a := range []Arch{SharedBus, FullCrossbar, PartialCrossbar} {
		got, err := ParseArch(a.String())
		if err != nil || got != a {
			t.Errorf("ParseArch(%q)", a.String())
		}
	}
	if _, err := ParseArch("torus"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestConfigString(t *testing.T) {
	s := valid().String()
	for _, want := range []string{"node", "2x2", "T3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
