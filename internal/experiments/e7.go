package experiments

import (
	"fmt"
	"io"
	"time"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/testcases"
	"crve/internal/tlm"
)

// E7PortsApproach regenerates the paper's future-work claim (Section 6): a
// CATG with "ports approach" support plugs the model directly into the
// verification environment, which "should enhance simulation performance" —
// without changing what the environment observes. The experiment verifies
// both halves: the transaction-level bench reports results identical to the
// wrapped signal-level bench (same transactions, bin-identical coverage),
// and it does so several times faster.
func E7PortsApproach(w io.Writer) error {
	cfg := RefConfig()
	cfg.ReqArb = arb.LRU
	cfg.ProgPort = false
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return err
	}
	tc.Traffic.Ops = 300
	seed := int64(7)

	fmt.Fprintf(w, "E7 (future work): ports approach — direct model integration\n")

	startW := time.Now()
	wrapped, err := core.RunTest(cfg, core.BCAView, tc, seed, core.RunOptions{})
	if err != nil {
		return err
	}
	elW := time.Since(startW)

	startP := time.Now()
	ports, err := tlm.RunTest(cfg, tc.Traffic, tc.Target, seed, bca.Bugs{})
	if err != nil {
		return err
	}
	elP := time.Since(startP)

	eq, why := wrapped.Coverage.EqualHits(ports.Coverage)
	fmt.Fprintf(w, "%-32s %10s %12s %14s %6s %8s\n", "bench", "cycles", "elapsed", "cycles/sec", "txs", "passed")
	fmt.Fprintf(w, "%-32s %10d %12s %14.0f %6d %8v\n", "BCA wrapped (signal bench)", wrapped.Cycles,
		elW.Round(time.Microsecond), float64(wrapped.Cycles)/elW.Seconds(), wrapped.Transactions, wrapped.Passed())
	fmt.Fprintf(w, "%-32s %10d %12s %14.0f %6d %8v\n", "BCA ports approach (TLM bench)", ports.Cycles,
		elP.Round(time.Microsecond), float64(ports.Cycles)/elP.Seconds(), ports.Transactions, ports.Passed())
	fmt.Fprintf(w, "identical results: transactions %v, coverage bins %v", wrapped.Transactions == ports.Transactions, eq)
	if !eq {
		fmt.Fprintf(w, " (%s)", why)
	}
	fmt.Fprintln(w)
	speedup := (float64(ports.Cycles) / elP.Seconds()) / (float64(wrapped.Cycles) / elW.Seconds())
	fmt.Fprintf(w, "ports-approach speedup over the wrapped bench: %.1fx\n", speedup)
	fmt.Fprintf(w, "paper claim: direct interfacing \"should enhance simulation performance\"\n")
	if !eq || wrapped.Transactions != ports.Transactions {
		return fmt.Errorf("experiments: ports approach diverged from the wrapped bench")
	}
	return nil
}
