// Package experiments regenerates every quantitative and structural claim of
// the paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	E1 — the ≥36-configuration regression matrix (§5)
//	E2 — five seeded BCA bugs: new flow finds all, past flow finds none (§5)
//	E3 — functional-coverage equality between views (§4)
//	E4 — per-port bus-accurate alignment, sign-off at 99 % (§4)
//	E5 — BCA speed: fast standalone, advantage lost when wrapped (§1/§4)
//	E6 — code coverage on RTL only (§4)
//
// Each experiment prints the table the paper's flow would report; the
// benchmarks in bench_test.go and the cmd/experiments binary both call into
// this package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/oldflow"
	"crve/internal/regress"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// RefConfig is the reference node configuration used by the single-config
// experiments: the Figure 6 shape (three initiators, two targets, a
// programming port) on Type 3.
func RefConfig() nodespec.Config {
	return nodespec.Config{
		Name:    "ref",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Programmable, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x1000),
		ProgPort: true,
		ProgBase: 0x10_0000,
	}.WithDefaults()
}

// E1RegressionMatrix runs the twelve-test suite over the configuration
// matrix on both views and prints the per-configuration sign-off table. With
// quick set, a 6-configuration slice and one seed is used (the full matrix
// is the paper-scale run).
func E1RegressionMatrix(w io.Writer, quick bool) error {
	cfgs := regress.StandardMatrix()
	seeds := []int64{1, 2}
	if quick {
		cfgs = cfgs[:6]
		seeds = seeds[:1]
	}
	fmt.Fprintf(w, "E1: regression matrix — %d configurations × 12 tests × %d seeds, both views\n",
		len(cfgs), len(seeds))
	results, err := regress.RunMatrix(cfgs, regress.Options{Tests: testcases.All(), Seeds: seeds})
	if err != nil {
		return err
	}
	fmt.Fprint(w, regress.MatrixReport(results))
	signed := 0
	fullCov := 0
	for _, cr := range results {
		if cr.SignedOff() {
			signed++
		}
		if cr.SuiteCoverage.Full() {
			fullCov++
		}
	}
	fmt.Fprintf(w, "summary: %d/%d configurations signed off, %d/%d at full functional coverage\n",
		signed, len(results), fullCov, len(results))
	fmt.Fprintf(w, "paper claim: >36 configurations tested, all main features covered, full coverage goal\n")
	return nil
}

// E2BugDetection runs each of the five seeded BCA bugs through the past flow
// and the common flow, printing the detection matrix. Reproduces "The
// verification environment permitted to find five bugs on BCA models, not
// found using old environment of the past flow."
func E2BugDetection(w io.Writer) error {
	fmt.Fprintf(w, "E2: seeded BCA bug detection — past flow vs common environment\n")
	fmt.Fprintf(w, "%-22s %-10s %-10s %s\n", "bug", "past-flow", "new-flow", "detected by")
	base := RefConfig()
	base.ReqArb = arb.LRU
	base.ProgPort = false
	t2 := base
	t2.Port.Type = stbus.Type2
	foundNew, foundOld := 0, 0
	for bi, bug := range bca.AllBugs() {
		cfg := base
		if bug.T2OrderIgnored {
			cfg = t2
		}
		// Past flow: three directed write-then-read runs.
		oldCaught := false
		for seed := int64(1); seed <= 3; seed++ {
			res, err := oldflow.Run(cfg, bug, 20, seed)
			if err != nil {
				return err
			}
			if !res.Passed {
				oldCaught = true
			}
		}
		// Common flow: the generic suite with two seeds; detection = checker
		// or scoreboard failure on the BCA run, or alignment below sign-off.
		newCaught := false
		how := "-"
		for _, tc := range testcases.All() {
			for seed := int64(1); seed <= 2 && !newCaught; seed++ {
				pair, err := core.RunPair(cfg, tc, seed, bug)
				if err != nil {
					return err
				}
				switch {
				case len(pair.BCA.Violations) > 0:
					newCaught = true
					how = fmt.Sprintf("checker[%s] in %s", pair.BCA.Violations[0].Rule, tc.Name)
				case len(pair.BCA.ScoreErrors) > 0:
					newCaught = true
					how = "scoreboard in " + tc.Name
				case !pair.BCA.Drained:
					newCaught = true
					how = "stall in " + tc.Name
				case !pair.Alignment.AllPass():
					newCaught = true
					how = fmt.Sprintf("alignment %.2f%% in %s", pair.Alignment.MinRate(), tc.Name)
				}
			}
			if newCaught {
				break
			}
		}
		if oldCaught {
			foundOld++
		}
		if newCaught {
			foundNew++
		}
		fmt.Fprintf(w, "%-22s %-10s %-10s %s\n", bca.BugNames()[bi],
			verdict(!oldCaught), verdict(!newCaught), how)
	}
	fmt.Fprintf(w, "summary: past flow found %d/5, common environment found %d/5\n", foundOld, foundNew)
	fmt.Fprintf(w, "paper claim: five bugs on BCA models found, none found by the old environment\n")
	return nil
}

func verdict(missed bool) string {
	if missed {
		return "missed"
	}
	return "FOUND"
}

// E3CoverageEquality runs the suite on both views and prints per-test
// functional coverage for each, asserting bin-exact equality (§4: coverage
// "must be equal running the same tests").
func E3CoverageEquality(w io.Writer) error {
	cfg := RefConfig()
	fmt.Fprintf(w, "E3: functional-coverage equality, config %v\n", cfg)
	fmt.Fprintf(w, "%-22s %-6s %9s %9s %s\n", "test", "seed", "RTL cov", "BCA cov", "bins equal")
	allEq := true
	for _, tc := range testcases.All() {
		pair, err := core.RunPair(cfg, tc, 1, bca.Bugs{})
		if err != nil {
			return err
		}
		eq, _ := pair.RTL.Coverage.EqualHits(pair.BCA.Coverage)
		allEq = allEq && eq
		fmt.Fprintf(w, "%-22s %-6d %8.1f%% %8.1f%% %v\n", tc.Name, 1,
			pair.RTL.Coverage.Percent(), pair.BCA.Coverage.Percent(), eq)
	}
	fmt.Fprintf(w, "summary: coverage equal on every test = %v\n", allEq)
	fmt.Fprintf(w, "paper claim: functional coverage obtainable on both models and equal for same tests\n")
	return nil
}

// E4Alignment runs the bus-accurate comparison for a clean BCA model and for
// each seeded bug, printing the per-port alignment table against the 99 %
// sign-off line — including the paper's "low alignment rate" loop-back case.
func E4Alignment(w io.Writer) error {
	cfg := RefConfig()
	cfg.ReqArb = arb.LRU
	cfg.ProgPort = false
	tc, err := testcases.ByName("random_mixed")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E4: bus-accurate comparison (STBA), config %v, test %s\n", cfg, tc.Name)
	run := func(label string, bugs bca.Bugs) error {
		pair, err := core.RunPair(cfg, tc, 3, bugs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s (min rate %.2f%%, sign-off %v)\n%s",
			label, pair.Alignment.MinRate(), pair.Alignment.AllPass(), pair.Alignment)
		return nil
	}
	if err := run("clean BCA", bca.Bugs{}); err != nil {
		return err
	}
	// Each bug is compared under the suite test that exercises its feature —
	// a bug aligns perfectly on traffic that never touches it, which is why
	// the flow runs the whole twelve-test suite before sign-off.
	bugTests := []string{"hot_target", "chunked", "back_to_back", "error_paths", "random_mixed"}
	for bi, bug := range bca.AllBugs() {
		c := cfg
		if bug.T2OrderIgnored {
			c.Port.Type = stbus.Type2
		}
		btc, err := testcases.ByName(bugTests[bi])
		if err != nil {
			return err
		}
		pair, err := core.RunPair(c, btc, 3, bug)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- bug %-22s test %-14s min rate %6.2f%%  sign-off %v\n",
			bca.BugNames()[bi], btc.Name, pair.Alignment.MinRate(), pair.Alignment.AllPass())
	}
	fmt.Fprintf(w, "paper claim: per-port alignment rate computed from VCDs; 99%% needed for sign-off\n")
	return nil
}

// SpeedResult is one row of the E5 table.
type SpeedResult struct {
	Mode         string
	Cycles       uint64
	Elapsed      time.Duration
	CyclesPerSec float64
}

// E5Speed measures simulation throughput of the RTL view in the common
// environment, the BCA view wrapped into the same environment, and the BCA
// engine standalone. Reproduces the paper's motivation (fast BCA
// simulation) and its observation that wrapping the BCA into the common
// bench forfeits the speed advantage.
func E5Speed(w io.Writer) ([]SpeedResult, error) {
	cfg := RefConfig()
	cfg.ReqArb = arb.LRU
	cfg.ProgPort = false
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return nil, err
	}
	tc.Traffic.Ops = 400
	var out []SpeedResult
	runWrapped := func(label string, view core.View) error {
		start := time.Now()
		res, err := core.RunTest(cfg, view, tc, 11, core.RunOptions{})
		if err != nil {
			return err
		}
		el := time.Since(start)
		out = append(out, SpeedResult{Mode: label, Cycles: res.Cycles, Elapsed: el,
			CyclesPerSec: float64(res.Cycles) / el.Seconds()})
		return nil
	}
	if err := runWrapped("RTL in common env", core.RTLView); err != nil {
		return nil, err
	}
	if err := runWrapped("BCA wrapped in common env", core.BCAView); err != nil {
		return nil, err
	}
	start := time.Now()
	sa, err := bca.RunStandalone(bca.StandaloneConfig{Node: cfg, Seed: 11, OpsPerInit: 400, MemLatency: 1})
	if err != nil {
		return nil, err
	}
	el := time.Since(start)
	out = append(out, SpeedResult{Mode: "BCA standalone (no kernel)", Cycles: sa.Cycles, Elapsed: el,
		CyclesPerSec: float64(sa.Cycles) / el.Seconds()})

	fmt.Fprintf(w, "E5: simulation throughput (same node configuration, saturating traffic)\n")
	fmt.Fprintf(w, "%-28s %10s %12s %14s\n", "mode", "cycles", "elapsed", "cycles/sec")
	for _, r := range out {
		fmt.Fprintf(w, "%-28s %10d %12s %14.0f\n", r.Mode, r.Cycles, r.Elapsed.Round(time.Microsecond), r.CyclesPerSec)
	}
	wrapped := out[1].CyclesPerSec / out[0].CyclesPerSec
	standalone := out[2].CyclesPerSec / out[0].CyclesPerSec
	fmt.Fprintf(w, "speedup vs RTL: wrapped BCA %.2fx, standalone BCA %.1fx\n", wrapped, standalone)
	fmt.Fprintf(w, "paper claim: BCA simulation is fast, but \"the advantage of having fast SystemC simulator is lost\" once wrapped\n")
	return out, nil
}

// E6CodeCoverage reports the RTL-only code coverage after the full suite:
// line/branch/statement percentages on the RTL view, and the BCA view's
// structural lack of the metric.
func E6CodeCoverage(w io.Writer) error {
	cfg := RefConfig()
	fmt.Fprintf(w, "E6: code coverage (line/branch/statement), config %v\n", cfg)
	cc := coverage.NewCodeMap()
	for _, tc := range testcases.All() {
		res, err := core.RunTest(cfg, core.RTLView, tc, 1, core.RunOptions{})
		if err != nil {
			return err
		}
		cc.Merge(res.CodeCov)
	}
	fmt.Fprint(w, cc.Report())
	bres, err := core.RunTest(cfg, core.BCAView, testcases.All()[0], 1, core.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "BCA view code coverage: %v (not available — matches the paper: no tool for SystemC)\n",
		bres.CodeCov)
	fmt.Fprintf(w, "paper goal: 100%% functional coverage and 100%% justified line coverage; line=%.1f%%\n",
		cc.Percent(coverage.LinePoint))
	return nil
}
