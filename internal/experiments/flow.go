package experiments

import (
	"fmt"
	"io"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/testcases"
)

// Flow walks the complete common verification flow of the paper's Figures 4
// and 5 on the reference configuration, narrating each step, including the
// two loop-backs: "low alignment rate" sends the BCA model back for fixing,
// and sign-off requires full coverage first.
func Flow(w io.Writer) error {
	cfg := RefConfig()
	tc, err := testcases.ByName("random_mixed")
	if err != nil {
		return err
	}
	say := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	say("F4/F5: common verification flow, step by step")
	say("[1] functional specification signed off       -> NODE-SPEC.md (stable)")
	say("[2] verification implementation               -> CATG bench for %v", cfg)
	say("[3] RTL model verification")
	rtlRes, err := core.RunTest(cfg, core.RTLView, tc, 1, core.RunOptions{DumpVCD: true})
	if err != nil {
		return err
	}
	say("    %s", rtlRes.Summary())
	if !rtlRes.Passed() {
		return fmt.Errorf("flow: RTL model did not pass")
	}
	say("[4] BCA model verification — first drop has a model bug (lru-init)")
	buggy, err := core.RunPair(cfg2LRU(cfg), tc, 1, bca.Bugs{LRUInit: true})
	if err != nil {
		return err
	}
	say("    BCA: %s", buggy.BCA.Summary())
	say("    bus-accurate comparison: min alignment %.2f%% -> %s", buggy.Alignment.MinRate(),
		loopback(buggy.Alignment.AllPass()))
	say("[5] model fixed, rerun with the same tests and seeds")
	clean, err := core.RunPair(cfg2LRU(cfg), tc, 1, bca.Bugs{})
	if err != nil {
		return err
	}
	say("    BCA: %s", clean.BCA.Summary())
	say("    functional coverage equal: %v", clean.CoverageEqual)
	say("[6] compare VCD results (full functional coverage reached)")
	say("%s", clean.Alignment)
	say("[7] sign-off: %v (both pass, coverage equal, every port >= 99%%)", clean.SignedOff())
	if !clean.SignedOff() {
		return fmt.Errorf("flow: clean pair failed sign-off")
	}
	return nil
}

// cfg2LRU switches the reference config to the LRU arbiter (the policy the
// first seeded bug lives in) without a programming port.
func cfg2LRU(cfg nodespec.Config) nodespec.Config {
	cfg.ReqArb = arb.LRU
	cfg.ProgPort = false
	return cfg
}

func loopback(pass bool) string {
	if pass {
		return "proceed"
	}
	return "LOW ALIGNMENT RATE: back to BCA model fixing (Figure 4 loop)"
}
