package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestE2BugDetectionFinds5Misses0(t *testing.T) {
	var buf bytes.Buffer
	if err := E2BugDetection(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "past flow found 0/5") {
		t.Errorf("past flow should find 0/5:\n%s", out)
	}
	if !strings.Contains(out, "common environment found 5/5") {
		t.Errorf("common flow should find 5/5:\n%s", out)
	}
}

func TestE3CoverageEquality(t *testing.T) {
	var buf bytes.Buffer
	if err := E3CoverageEquality(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coverage equal on every test = true") {
		t.Errorf("coverage inequality:\n%s", buf.String())
	}
}

func TestE4Alignment(t *testing.T) {
	var buf bytes.Buffer
	if err := E4Alignment(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "clean BCA (min rate 100.00%") {
		t.Errorf("clean run should align 100%%:\n%s", out)
	}
	if !strings.Contains(out, "sign-off false") {
		t.Errorf("at least one bug should fail sign-off:\n%s", out)
	}
}

func TestE5SpeedOrdering(t *testing.T) {
	var buf bytes.Buffer
	res, err := E5Speed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d rows", len(res))
	}
	rtl, wrapped, standalone := res[0], res[1], res[2]
	// The paper's shape: standalone BCA much faster than RTL; wrapped BCA in
	// the same ballpark as RTL (the advantage is lost).
	if standalone.CyclesPerSec < 3*rtl.CyclesPerSec {
		t.Errorf("standalone BCA should be several times faster than RTL: %.0f vs %.0f",
			standalone.CyclesPerSec, rtl.CyclesPerSec)
	}
	if wrapped.CyclesPerSec > standalone.CyclesPerSec/2 {
		t.Errorf("wrapped BCA should lose most of the standalone advantage: wrapped %.0f, standalone %.0f",
			wrapped.CyclesPerSec, standalone.CyclesPerSec)
	}
}

func TestE6CodeCoverage(t *testing.T) {
	var buf bytes.Buffer
	if err := E6CodeCoverage(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "line=100.0%") {
		t.Errorf("full suite should reach 100%% justified line coverage:\n%s", out)
	}
	if !strings.Contains(out, "not available") {
		t.Errorf("BCA code coverage should be reported unavailable:\n%s", out)
	}
}

func TestE1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix slice")
	}
	var buf bytes.Buffer
	if err := E1RegressionMatrix(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "6/6 configurations signed off") {
		t.Errorf("quick matrix should sign off all 6 configs:\n%s", out)
	}
}

func TestFlowNarrative(t *testing.T) {
	var buf bytes.Buffer
	if err := Flow(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"LOW ALIGNMENT RATE", "sign-off: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("flow narrative missing %q:\n%s", want, out)
		}
	}
}

func TestAblationArchShape(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationArch(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "shared bus takes") {
		t.Errorf("missing summary:\n%s", buf.String())
	}
}

func TestE7PortsApproachIdentity(t *testing.T) {
	var buf bytes.Buffer
	if err := E7PortsApproach(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "identical results: transactions true, coverage bins true") {
		t.Errorf("ports approach not identical:\n%s", buf.String())
	}
}

func TestAblationPipeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationPipe(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}

func TestExplorationPicksBudgetWinner(t *testing.T) {
	var buf bytes.Buffer
	if err := Exploration(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "winner:") {
		t.Errorf("no winner reported:\n%s", buf.String())
	}
}
