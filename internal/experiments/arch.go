package experiments

import (
	"fmt"
	"io"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// latencyStats summarises transaction latency over one run.
type latencyStats struct {
	n          int
	sum, worst uint64
}

func (ls *latencyStats) add(lat uint64) {
	ls.n++
	ls.sum += lat
	if lat > ls.worst {
		ls.worst = lat
	}
}

func (ls *latencyStats) avg() float64 {
	if ls.n == 0 {
		return 0
	}
	return float64(ls.sum) / float64(ls.n)
}

// AblationArch regenerates the paper's Section 3 architecture trade-off:
// "a single shared bus ... can lead to worse results in terms of
// performance, or a crossbar (full or partial), that leads better results in
// terms of performance". The experiment runs identical contended traffic
// through the three node architectures and reports drain time and
// transaction latency.
func AblationArch(w io.Writer) error {
	base := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 4, NumTgt: 4,
		ReqArb: arb.RoundRobin, RespArb: arb.RoundRobin,
		Map: stbus.UniformMap(4, 0x1000, 0x1000),
	}
	tc, err := testcases.ByName("back_to_back")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "A1: node architecture trade-off (4x4, round-robin, saturating traffic)\n")
	fmt.Fprintf(w, "%-10s %12s %12s %14s %14s\n", "arch", "cycles", "txs", "avg latency", "max latency")
	var sharedCycles, fullCycles uint64
	for _, arch := range []nodespec.Arch{nodespec.SharedBus, nodespec.PartialCrossbar, nodespec.FullCrossbar} {
		cfg := base
		cfg.Arch = arch
		if arch == nodespec.PartialCrossbar {
			cfg.Allowed = make([][]bool, cfg.NumInit)
			for i := range cfg.Allowed {
				cfg.Allowed[i] = make([]bool, cfg.NumTgt)
				for t := range cfg.Allowed[i] {
					cfg.Allowed[i][t] = true
				}
			}
			cfg.Allowed[cfg.NumInit-1][cfg.NumTgt-1] = false
		}
		res, err := core.RunTest(cfg, core.BCAView, tc, 3, core.RunOptions{Bugs: bca.Bugs{}})
		if err != nil {
			return err
		}
		if !res.Passed() {
			return fmt.Errorf("experiments: %v run failed", arch)
		}
		// Latency from the coverage-feeding monitors is not retained; derive
		// stats by re-running with a transaction listener would double work,
		// so use the run's cycle count plus latency coverage buckets.
		ls := latencyFromRun(res)
		fmt.Fprintf(w, "%-10s %12d %12d %14.1f %14d\n", arch, res.Cycles, res.Transactions, ls.avg(), ls.worst)
		switch arch {
		case nodespec.SharedBus:
			sharedCycles = res.Cycles
		case nodespec.FullCrossbar:
			fullCycles = res.Cycles
		}
	}
	fmt.Fprintf(w, "shared bus takes %.2fx the cycles of the full crossbar on this workload\n",
		float64(sharedCycles)/float64(fullCycles))
	fmt.Fprintf(w, "paper claim (§3): shared bus is worse, crossbar better, in performance\n")
	if sharedCycles <= fullCycles {
		return fmt.Errorf("experiments: shared bus unexpectedly at least as fast as the crossbar")
	}
	return nil
}

// latencyFromRun folds the run's per-transaction latencies into statistics.
func latencyFromRun(res *core.RunResult) *latencyStats {
	ls := &latencyStats{}
	for _, l := range res.Latencies {
		ls.add(l)
	}
	return ls
}
