package experiments

import (
	"fmt"
	"io"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
	"crve/internal/testcases"
)

// AblationPipe sweeps the node's pipe size (the CATG "pipe size" parameter
// the paper lists) under latency-bound traffic: deeper pipelining hides
// target latency until the pipe saturates the targets. The table shows drain
// cycles and average transaction latency per depth.
func AblationPipe(w io.Writer) error {
	base := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.RoundRobin, RespArb: arb.RoundRobin,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}
	tc, err := testcases.ByName("slow_targets")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "A2: pipe-size sweep (2x2, slow targets: latency 10..20, gnt gaps)\n")
	fmt.Fprintf(w, "%-6s %12s %14s %14s\n", "pipe", "cycles", "avg latency", "max latency")
	var prev uint64
	improvedOnce := false
	for _, pipe := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.PipeSize = pipe
		res, err := core.RunTest(cfg, core.BCAView, tc, 5, core.RunOptions{Bugs: bca.Bugs{}})
		if err != nil {
			return err
		}
		if !res.Passed() {
			return fmt.Errorf("experiments: pipe=%d run failed", pipe)
		}
		ls := latencyFromRun(res)
		fmt.Fprintf(w, "%-6d %12d %14.1f %14d\n", pipe, res.Cycles, ls.avg(), ls.worst)
		if prev != 0 && res.Cycles < prev {
			improvedOnce = true
		}
		prev = res.Cycles
	}
	fmt.Fprintf(w, "deeper pipes hide target latency until the targets saturate\n")
	if !improvedOnce {
		return fmt.Errorf("experiments: pipelining never improved throughput")
	}
	return nil
}
