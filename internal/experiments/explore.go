package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// ExploreCandidate is one point of the design space with its measurements.
type ExploreCandidate struct {
	Cfg nodespec.Config
	// Cycles is the drain time of the reference workload (performance).
	Cycles uint64
	// AreaProxy is a wiring/area cost stand-in: datapath bit-width times the
	// number of concurrently switchable paths (crossbars pay per pair, a
	// shared bus pays once per side), the qualitative trade-off of §3.
	AreaProxy int
}

func areaProxy(cfg nodespec.Config) int {
	switch cfg.Arch {
	case nodespec.SharedBus:
		return (cfg.NumInit + cfg.NumTgt) * cfg.Port.DataBits
	case nodespec.PartialCrossbar:
		n := 0
		for i := 0; i < cfg.NumInit; i++ {
			for t := 0; t < cfg.NumTgt; t++ {
				if cfg.Connected(i, t) {
					n++
				}
			}
		}
		return n * cfg.Port.DataBits
	default:
		return cfg.NumInit * cfg.NumTgt * cfg.Port.DataBits
	}
}

// Exploration reproduces the paper's Section 1 motivation: "The fast
// simulation of BCA models permits to fast find the optimized configuration,
// in terms of bandwidth, area and power consumption." It sweeps a node
// design space with the standalone BCA engine (the fast form), measures each
// candidate's performance on a reference workload, and picks the cheapest
// configuration meeting a performance budget — reporting how little wall
// time the whole sweep took.
func Exploration(w io.Writer) error {
	type point struct {
		arch  nodespec.Arch
		width int
		pipe  int
	}
	var space []point
	for _, arch := range []nodespec.Arch{nodespec.SharedBus, nodespec.FullCrossbar} {
		for _, width := range []int{16, 32, 64} {
			for _, pipe := range []int{2, 4, 8} {
				space = append(space, point{arch, width, pipe})
			}
		}
	}
	fmt.Fprintf(w, "M1: design-space exploration on the standalone BCA engine (%d candidates)\n", len(space))
	start := time.Now()
	var cands []ExploreCandidate
	for _, pt := range space {
		cfg := nodespec.Config{
			Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: pt.width},
			NumInit: 3, NumTgt: 2,
			Arch:   pt.arch,
			ReqArb: arb.RoundRobin, RespArb: arb.RoundRobin,
			Map:      stbus.UniformMap(2, 0x1000, 0x1000),
			PipeSize: pt.pipe,
		}
		res, err := bca.RunStandalone(bca.StandaloneConfig{
			Node: cfg, Seed: 4, OpsPerInit: 120, MemLatency: 3})
		if err != nil {
			return err
		}
		cands = append(cands, ExploreCandidate{Cfg: cfg, Cycles: res.Cycles, AreaProxy: areaProxy(cfg)})
	}
	elapsed := time.Since(start)

	// The fastest candidate defines the achievable performance; the budget
	// allows 15 % slack, and the winner is the cheapest candidate inside it.
	best := cands[0].Cycles
	for _, c := range cands {
		if c.Cycles < best {
			best = c.Cycles
		}
	}
	budget := best + best*15/100
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := cands[i], cands[j]
		inI, inJ := ci.Cycles <= budget, cj.Cycles <= budget
		if inI != inJ {
			return inI
		}
		if ci.AreaProxy != cj.AreaProxy {
			return ci.AreaProxy < cj.AreaProxy
		}
		return ci.Cycles < cj.Cycles
	})
	fmt.Fprintf(w, "%-8s %6s %5s %10s %10s %8s\n", "arch", "width", "pipe", "cycles", "area", "in-budget")
	for i, c := range cands {
		if i == 8 {
			fmt.Fprintf(w, "... (%d more)\n", len(cands)-8)
			break
		}
		fmt.Fprintf(w, "%-8v %6d %5d %10d %10d %8v\n",
			c.Cfg.Arch, c.Cfg.Port.DataBits, c.Cfg.PipeSize, c.Cycles, c.AreaProxy, c.Cycles <= budget)
	}
	winner := cands[0]
	fmt.Fprintf(w, "winner: %v %d-bit pipe=%d — cheapest within %d-cycle budget (best %d)\n",
		winner.Cfg.Arch, winner.Cfg.Port.DataBits, winner.Cfg.PipeSize, budget, best)
	fmt.Fprintf(w, "whole sweep: %s wall time for %d cycle-accurate candidate runs\n",
		elapsed.Round(time.Millisecond), len(space))
	fmt.Fprintf(w, "paper claim (§1): fast BCA simulation permits finding the optimized configuration quickly\n")
	if winner.Cycles > budget {
		return fmt.Errorf("experiments: no candidate met the budget")
	}
	return nil
}
