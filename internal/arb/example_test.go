package arb_test

import (
	"fmt"

	"crve/internal/arb"
)

// ExampleNewRoundRobin shows the rotating grant pointer under full
// contention.
func ExampleNewRoundRobin() {
	p := arb.NewRoundRobin(3)
	in := arb.Input{Req: []bool{true, true, true}}
	for i := 0; i < 5; i++ {
		w := p.Pick(in)
		fmt.Print(w, " ")
		p.Tick(in, w)
	}
	// Output: 0 1 2 0 1
}

// ExampleProgrammablePolicy reprograms a priority register mid-flight, as
// the node's programming port does.
func ExampleProgrammablePolicy() {
	p := arb.NewProgrammable([]uint8{9, 1})
	in := arb.Input{Req: []bool{true, true}}
	fmt.Println("before:", p.Pick(in))
	_ = p.SetPriority(1, 15)
	fmt.Println("after: ", p.Pick(in))
	// Output:
	// before: 0
	// after:  1
}
