package arb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func reqs(bits ...int) Input {
	max := 0
	for _, b := range bits {
		if b > max {
			max = b
		}
	}
	in := Input{Req: make([]bool, max+1)}
	for _, b := range bits {
		in.Req[b] = true
	}
	return in
}

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
}

func TestNewBuildsEveryKind(t *testing.T) {
	for _, k := range Kinds {
		p := New(k, 4)
		if p == nil {
			t.Fatalf("New(%v) returned nil", k)
		}
		if p.Name() != k.String() {
			t.Errorf("New(%v).Name() = %q", k, p.Name())
		}
		if w := p.Pick(Input{Req: make([]bool, 4)}); w != -1 {
			t.Errorf("%v picked %d with no requesters", k, w)
		}
	}
}

func TestFixedPriorityOrder(t *testing.T) {
	p := NewFixedPriority([]uint8{1, 9, 5}, false)
	if w := p.Pick(reqs(0, 1, 2)); w != 1 {
		t.Errorf("winner %d, want 1", w)
	}
	if w := p.Pick(reqs(0, 2)); w != 2 {
		t.Errorf("winner %d, want 2", w)
	}
	if w := p.Pick(reqs(0)); w != 0 {
		t.Errorf("winner %d, want 0", w)
	}
}

func TestFixedPriorityTieBreaksLowIndex(t *testing.T) {
	p := NewFixedPriority([]uint8{5, 5, 5}, false)
	if w := p.Pick(reqs(1, 2)); w != 1 {
		t.Errorf("tie winner %d, want 1", w)
	}
}

func TestFixedPriorityDynamic(t *testing.T) {
	p := NewFixedPriority([]uint8{9, 1}, true)
	in := Input{Req: []bool{true, true}, Pri: []uint8{2, 7}}
	if w := p.Pick(in); w != 1 {
		t.Errorf("dynamic winner %d, want 1 (signal pri wins)", w)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	p := NewRoundRobin(3)
	in := reqs(0, 1, 2)
	var seq []int
	for i := 0; i < 6; i++ {
		w := p.Pick(in)
		seq = append(seq, w)
		p.Tick(in, w)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v, want %v", seq, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	p := NewRoundRobin(4)
	in := reqs(1, 3)
	w := p.Pick(in)
	if w != 1 {
		t.Fatalf("first winner %d, want 1", w)
	}
	p.Tick(in, w)
	if w = p.Pick(in); w != 3 {
		t.Fatalf("second winner %d, want 3", w)
	}
}

func TestLRUPrefersOldest(t *testing.T) {
	p := NewLRU(3)
	all := reqs(0, 1, 2)
	w := p.Pick(all) // all stamps equal: lowest index
	if w != 0 {
		t.Fatalf("first %d", w)
	}
	p.Tick(all, 0)
	if w = p.Pick(all); w != 1 {
		t.Fatalf("second %d, want 1", w)
	}
	p.Tick(all, 1)
	if w = p.Pick(all); w != 2 {
		t.Fatalf("third %d, want 2", w)
	}
	p.Tick(all, 2)
	// 0 is now least recently used again.
	if w = p.Pick(all); w != 0 {
		t.Fatalf("fourth %d, want 0", w)
	}
}

func TestLatencyUrgency(t *testing.T) {
	// Port 0 has a loose budget, port 1 a tight one: under continuous
	// contention port 1 must win more often once its slack is smaller.
	p := NewLatency([]uint32{100, 2})
	in := reqs(0, 1)
	wins := [2]int{}
	for i := 0; i < 100; i++ {
		w := p.Pick(in)
		wins[w]++
		p.Tick(in, w)
	}
	if wins[1] <= wins[0] {
		t.Errorf("tight-budget port won %d of 100 (loose won %d)", wins[1], wins[0])
	}
	if wins[0] == 0 {
		t.Error("loose port must not starve")
	}
}

func TestLatencyWaitResetOnGrant(t *testing.T) {
	p := NewLatency([]uint32{5, 5})
	in := reqs(0, 1)
	w1 := p.Pick(in)
	p.Tick(in, w1)
	w2 := p.Pick(in)
	if w1 == w2 {
		t.Errorf("same winner twice under equal budgets: %d then %d", w1, w2)
	}
}

func TestBandwidthSharesRespected(t *testing.T) {
	// Port 0 gets 2 beats per 8-cycle window, port 1 gets 6.
	p := NewBandwidth([]uint32{2, 6}, 8)
	in := reqs(0, 1)
	wins := [2]int{}
	for i := 0; i < 80; i++ {
		w := p.Pick(in)
		wins[w]++
		p.Tick(in, w)
	}
	if wins[0] != 20 || wins[1] != 60 {
		t.Errorf("wins = %v, want [20 60]", wins)
	}
}

func TestBandwidthWorkConserving(t *testing.T) {
	p := NewBandwidth([]uint32{1}, 8)
	in := reqs(0)
	granted := 0
	for i := 0; i < 8; i++ {
		if w := p.Pick(in); w == 0 {
			granted++
		}
		p.Tick(in, p.Pick(in))
	}
	if granted != 8 {
		t.Errorf("sole requester granted %d of 8 cycles (must be work-conserving)", granted)
	}
}

func TestProgrammableReprogramming(t *testing.T) {
	p := NewProgrammable([]uint8{9, 1})
	in := reqs(0, 1)
	if w := p.Pick(in); w != 0 {
		t.Fatalf("initial winner %d", w)
	}
	if err := p.SetPriority(1, 15); err != nil {
		t.Fatal(err)
	}
	if w := p.Pick(in); w != 1 {
		t.Fatalf("after reprogram winner %d, want 1", w)
	}
	if p.PriorityOf(1) != 15 || p.Ports() != 2 {
		t.Error("register readback wrong")
	}
	p.Reset()
	if w := p.Pick(in); w != 0 {
		t.Fatalf("after reset winner %d, want 0", w)
	}
	if err := p.SetPriority(5, 1); err == nil {
		t.Error("out-of-range register write should fail")
	}
}

// Property: every policy only ever picks a requesting port, and picks -1
// exactly when nothing requests.
func TestPickSoundnessProperty(t *testing.T) {
	for _, k := range Kinds {
		k := k
		p := New(k, 8)
		f := func(mask uint8, seed int64) bool {
			in := Input{Req: make([]bool, 8), Pri: make([]uint8, 8)}
			rng := rand.New(rand.NewSource(seed))
			any := false
			for i := 0; i < 8; i++ {
				in.Req[i] = mask&(1<<i) != 0
				in.Pri[i] = uint8(rng.Intn(16))
				any = any || in.Req[i]
			}
			w := p.Pick(in)
			p.Tick(in, w)
			if !any {
				return w == -1
			}
			return w >= 0 && w < 8 && in.Req[w]
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// Property: no starvation under continuous full contention for the fair
// policies (round-robin, LRU, latency, bandwidth): every port wins within a
// bounded horizon.
func TestNoStarvationProperty(t *testing.T) {
	for _, k := range []Kind{RoundRobin, LRU, Latency, Bandwidth} {
		p := New(k, 5)
		in := reqs(0, 1, 2, 3, 4)
		lastWin := make([]int, 5)
		for cyc := 0; cyc < 200; cyc++ {
			w := p.Pick(in)
			p.Tick(in, w)
			lastWin[w] = cyc
		}
		for i, lw := range lastWin {
			if 200-lw > 64 {
				t.Errorf("%v: port %d starved (last win at %d)", k, i, lw)
			}
		}
	}
}

// Property: determinism — two instances fed identical input sequences pick
// identically.
func TestDeterminismProperty(t *testing.T) {
	for _, k := range Kinds {
		a, b := New(k, 6), New(k, 6)
		rng := rand.New(rand.NewSource(42))
		for cyc := 0; cyc < 500; cyc++ {
			in := Input{Req: make([]bool, 6), Pri: make([]uint8, 6)}
			for i := range in.Req {
				in.Req[i] = rng.Intn(2) == 1
				in.Pri[i] = uint8(rng.Intn(16))
			}
			wa, wb := a.Pick(in), b.Pick(in)
			if wa != wb {
				t.Fatalf("%v diverged at cycle %d: %d vs %d", k, cyc, wa, wb)
			}
			a.Tick(in, wa)
			b.Tick(in, wb)
		}
	}
}

func TestResetRestoresState(t *testing.T) {
	for _, k := range Kinds {
		p := New(k, 4)
		in := reqs(0, 1, 2, 3)
		first := p.Pick(in)
		for i := 0; i < 10; i++ {
			w := p.Pick(in)
			p.Tick(in, w)
		}
		p.Reset()
		if got := p.Pick(in); got != first {
			t.Errorf("%v: after Reset pick = %d, want %d", k, got, first)
		}
	}
}

func TestBandwidthWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window should panic")
		}
	}()
	NewBandwidth([]uint32{1}, 0)
}
