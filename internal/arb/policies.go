package arb

import "fmt"

// fixedPriority grants the highest-priority requester; ties break to the
// lowest port index. With dynamic=true the per-request pri field from the
// bus replaces the static table.
type fixedPriority struct {
	prios   []uint8
	dynamic bool
}

// NewFixedPriority returns a priority arbiter. prios[i] is port i's static
// priority (higher wins). With dynamic set, the request-cell priority field
// is used instead of the static table.
func NewFixedPriority(prios []uint8, dynamic bool) Policy {
	p := make([]uint8, len(prios))
	copy(p, prios)
	return &fixedPriority{prios: p, dynamic: dynamic}
}

func (a *fixedPriority) Name() string { return "priority" }

func (a *fixedPriority) Pick(in Input) int {
	best, bestPri := -1, -1
	for i, r := range in.Req {
		if !r {
			continue
		}
		pri := int(a.prios[i])
		if a.dynamic && i < len(in.Pri) {
			pri = int(in.Pri[i])
		}
		if pri > bestPri {
			best, bestPri = i, pri
		}
	}
	return best
}

func (a *fixedPriority) Tick(Input, int) {}
func (a *fixedPriority) Reset()          {}

// roundRobin grants the first requester at or after a rotating pointer.
type roundRobin struct {
	n   int
	ptr int
}

// NewRoundRobin returns a rotating-pointer arbiter over n requesters.
func NewRoundRobin(n int) Policy { return &roundRobin{n: n} }

func (a *roundRobin) Name() string { return "roundrobin" }

func (a *roundRobin) Pick(in Input) int {
	for off := 0; off < a.n; off++ {
		i := (a.ptr + off) % a.n
		if in.Req[i] {
			return i
		}
	}
	return -1
}

func (a *roundRobin) Tick(_ Input, winner int) {
	if winner >= 0 {
		a.ptr = (winner + 1) % a.n
	}
}

func (a *roundRobin) Reset() { a.ptr = 0 }

// lru grants the requester that was granted longest ago.
type lru struct {
	stamp []uint64
	clock uint64
}

// NewLRU returns a least-recently-used arbiter over n requesters.
func NewLRU(n int) Policy { return &lru{stamp: make([]uint64, n)} }

func (a *lru) Name() string { return "lru" }

func (a *lru) Pick(in Input) int {
	best := -1
	var bestStamp uint64
	for i, r := range in.Req {
		if !r {
			continue
		}
		if best == -1 || a.stamp[i] < bestStamp {
			best, bestStamp = i, a.stamp[i]
		}
	}
	return best
}

func (a *lru) Tick(_ Input, winner int) {
	if winner >= 0 {
		a.clock++
		a.stamp[winner] = a.clock
	}
}

func (a *lru) Reset() {
	a.clock = 0
	for i := range a.stamp {
		a.stamp[i] = 0
	}
}

// latency grants the requester with the smallest slack against its
// maximum-latency budget: slack_i = limit_i - waited_i. Requests past their
// budget (negative slack) are the most urgent. Ties break to the lowest
// index.
type latency struct {
	limit  []uint32
	waited []uint32
}

// NewLatency returns a latency-based arbiter. limit[i] is port i's
// maximum-latency budget in cycles; smaller budgets yield more urgent ports.
func NewLatency(limit []uint32) Policy {
	l := make([]uint32, len(limit))
	copy(l, limit)
	return &latency{limit: l, waited: make([]uint32, len(limit))}
}

func (a *latency) Name() string { return "latency" }

func (a *latency) Pick(in Input) int {
	best := -1
	bestSlack := 0
	for i, r := range in.Req {
		if !r {
			continue
		}
		slack := int(a.limit[i]) - int(a.waited[i])
		if best == -1 || slack < bestSlack {
			best, bestSlack = i, slack
		}
	}
	return best
}

func (a *latency) Tick(in Input, winner int) {
	for i, r := range in.Req {
		if i == winner {
			a.waited[i] = 0
		} else if r {
			a.waited[i]++
		}
	}
}

func (a *latency) Reset() {
	for i := range a.waited {
		a.waited[i] = 0
	}
}

// bandwidth enforces per-port grant shares over a fixed window of cycles.
// Ports under their share outrank ports over it; within each class the
// arbiter is round-robin. The arbiter is work-conserving: if only
// over-budget ports request, one of them still wins.
type bandwidth struct {
	share  []uint32
	window uint32
	used   []uint32
	epoch  uint32
	ptr    int
}

// NewBandwidth returns a bandwidth-limiting arbiter granting each port at
// most share[i] beats per window cycles (soft limit, work-conserving).
func NewBandwidth(share []uint32, window uint32) Policy {
	if window == 0 {
		panic("arb: bandwidth window must be positive")
	}
	s := make([]uint32, len(share))
	copy(s, share)
	return &bandwidth{share: s, window: window, used: make([]uint32, len(share))}
}

func (a *bandwidth) Name() string { return "bandwidth" }

func (a *bandwidth) Pick(in Input) int {
	pick := func(eligible func(i int) bool) int {
		n := len(in.Req)
		for off := 0; off < n; off++ {
			i := (a.ptr + off) % n
			if in.Req[i] && eligible(i) {
				return i
			}
		}
		return -1
	}
	if w := pick(func(i int) bool { return a.used[i] < a.share[i] }); w >= 0 {
		return w
	}
	return pick(func(int) bool { return true })
}

func (a *bandwidth) Tick(_ Input, winner int) {
	if winner >= 0 {
		a.used[winner]++
		a.ptr = (winner + 1) % len(a.used)
	}
	a.epoch++
	if a.epoch >= a.window {
		a.epoch = 0
		for i := range a.used {
			a.used[i] = 0
		}
	}
}

func (a *bandwidth) Reset() {
	a.epoch = 0
	a.ptr = 0
	for i := range a.used {
		a.used[i] = 0
	}
}

// ProgrammablePolicy is a priority arbiter whose table is writable at run
// time through the node's register decoder (the paper's "optional
// programmable port allowing changing the arbitration priority").
type ProgrammablePolicy struct {
	reset []uint8
	prios []uint8
}

// NewProgrammable returns a programmable-priority arbiter with the given
// power-on priorities.
func NewProgrammable(prios []uint8) *ProgrammablePolicy {
	r := make([]uint8, len(prios))
	copy(r, prios)
	p := make([]uint8, len(prios))
	copy(p, prios)
	return &ProgrammablePolicy{reset: r, prios: p}
}

// Name implements Policy.
func (a *ProgrammablePolicy) Name() string { return "programmable" }

// Pick implements Policy (highest current priority, ties to lowest index).
func (a *ProgrammablePolicy) Pick(in Input) int {
	best, bestPri := -1, -1
	for i, r := range in.Req {
		if r && int(a.prios[i]) > bestPri {
			best, bestPri = i, int(a.prios[i])
		}
	}
	return best
}

// Tick implements Policy.
func (a *ProgrammablePolicy) Tick(Input, int) {}

// Reset restores the power-on priority table.
func (a *ProgrammablePolicy) Reset() { copy(a.prios, a.reset) }

// SetPriority writes port's priority register.
func (a *ProgrammablePolicy) SetPriority(port int, pri uint8) error {
	if port < 0 || port >= len(a.prios) {
		return fmt.Errorf("arb: priority register %d out of range", port)
	}
	a.prios[port] = pri
	return nil
}

// PriorityOf reads port's priority register.
func (a *ProgrammablePolicy) PriorityOf(port int) uint8 { return a.prios[port] }

// Ports returns the number of priority registers.
func (a *ProgrammablePolicy) Ports() int { return len(a.prios) }
