// Package arb implements the six STBus node arbitration policies the paper
// names (Section 3: "bandwidth limitation, latency arbitration, LRU,
// priority-based arbitration and others"; Section 5: "the Node supports 6
// arbitration types").
//
// A Policy is pure sequential logic: Pick is a side-effect-free decision
// from the current state and the per-cycle request vector, and Tick advances
// the state once per cycle given the granted winner. The RTL view calls Pick
// from a combinational process and Tick from a clocked one; the BCA view
// calls both from its per-cycle transaction loop. Because the decision logic
// is deterministic, the two views arbitrate identically whenever they present
// identical request vectors — the property the paper's cycle-alignment
// sign-off (≥99 % per port) relies on.
package arb

import "fmt"

// Kind enumerates the supported arbitration policies.
type Kind int

const (
	// Priority grants the requester with the highest static priority.
	Priority Kind = iota
	// RoundRobin rotates a grant pointer over the requesters.
	RoundRobin
	// LRU grants the least-recently-used requester.
	LRU
	// Latency grants the requester with the least slack against its
	// configured maximum-latency budget.
	Latency
	// Bandwidth enforces per-requester bandwidth shares over a window.
	Bandwidth
	// Programmable is a priority arbiter whose priorities are runtime
	// registers, written through the node's programming port.
	Programmable
	numKinds
)

// Kinds lists every policy, in a stable order, for configuration sweeps.
var Kinds = []Kind{Priority, RoundRobin, LRU, Latency, Bandwidth, Programmable}

func (k Kind) String() string {
	switch k {
	case Priority:
		return "priority"
	case RoundRobin:
		return "roundrobin"
	case LRU:
		return "lru"
	case Latency:
		return "latency"
	case Bandwidth:
		return "bandwidth"
	case Programmable:
		return "programmable"
	default:
		return fmt.Sprintf("arb?%d", int(k))
	}
}

// ParseKind parses a policy name as written in regression configuration
// files.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("arb: unknown arbitration %q", s)
}

// Input is the per-cycle arbitration input: which ports request, and the
// request-priority field each drives (used by dynamic priority arbitration).
type Input struct {
	Req []bool
	Pri []uint8
}

// Policy is one arbitration algorithm instance, sized for a fixed number of
// requesters.
type Policy interface {
	// Name returns the policy kind name.
	Name() string
	// Pick returns the index of the winning requester, or -1 if none
	// requests. Pick must not mutate state.
	Pick(in Input) int
	// Tick advances internal state at the end of a cycle. winner is the
	// index actually granted this cycle (-1 for none); it need not equal
	// Pick's result (e.g. a shared-bus node may suppress the grant).
	Tick(in Input, winner int)
	// Reset restores the power-on state.
	Reset()
}

// New builds a policy of the given kind for n requesters with default
// parameters: descending static priorities (port 0 highest), latency budgets
// of 16 cycles, bandwidth shares of 4 beats per 16-cycle window.
func New(kind Kind, n int) Policy {
	switch kind {
	case Priority:
		prios := make([]uint8, n)
		for i := range prios {
			prios[i] = uint8(n - i)
		}
		return NewFixedPriority(prios, false)
	case RoundRobin:
		return NewRoundRobin(n)
	case LRU:
		return NewLRU(n)
	case Latency:
		lim := make([]uint32, n)
		for i := range lim {
			lim[i] = 16
		}
		return NewLatency(lim)
	case Bandwidth:
		shares := make([]uint32, n)
		for i := range shares {
			shares[i] = 4
		}
		return NewBandwidth(shares, 16)
	case Programmable:
		prios := make([]uint8, n)
		for i := range prios {
			prios[i] = uint8(n - i)
		}
		return NewProgrammable(prios)
	default:
		panic(fmt.Sprintf("arb: bad kind %d", int(kind)))
	}
}
