package tlm

import (
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

func cfg(nInit, nTgt int) nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: nInit, NumTgt: nTgt,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(nTgt, 0x1000, 0x1000),
	}.WithDefaults()
}

func traffic() catg.TrafficConfig {
	return catg.TrafficConfig{Ops: 40, UnmappedPct: 5, ChunkPct: 10, IdlePct: 10, PriMax: 7}
}

func target() catg.TargetConfig {
	return catg.TargetConfig{MinLatency: 1, MaxLatency: 6, GntGapPct: 20}
}

func TestTLMRunDrainsClean(t *testing.T) {
	res, err := RunTest(cfg(3, 2), traffic(), target(), 42, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("TLM run failed: drained=%v scoreErrors=%v", res.Drained, res.ScoreErrors)
	}
	if res.Transactions != 3*40 {
		t.Errorf("transactions = %d, want 120", res.Transactions)
	}
}

// TestTLMMatchesWrappedBench is the core future-work claim: the ports
// approach must report exactly what the wrapped signal-level bench reports —
// same drain cycle count, same transaction count, bin-identical functional
// coverage — for the same configuration, test and seed.
func TestTLMMatchesWrappedBench(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		c := cfg(3, 2)
		test := core.Test{Name: "tlm_equiv", Traffic: traffic(), Target: target()}
		wrapped, err := core.RunTest(c, core.BCAView, test, seed, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ports, err := RunTest(c, traffic(), target(), seed, bca.Bugs{})
		if err != nil {
			t.Fatal(err)
		}
		if !wrapped.Passed() || !ports.Passed() {
			t.Fatalf("seed %d: runs failed (wrapped=%v ports=%v %v)", seed,
				wrapped.Passed(), ports.Passed(), ports.ScoreErrors)
		}
		if wrapped.Transactions != ports.Transactions {
			t.Errorf("seed %d: transactions %d (wrapped) vs %d (ports)",
				seed, wrapped.Transactions, ports.Transactions)
		}
		if eq, why := wrapped.Coverage.EqualHits(ports.Coverage); !eq {
			t.Errorf("seed %d: coverage differs between wrapped and ports approach: %s", seed, why)
		}
	}
}

// TestTLMMatchesRTL closes the triangle: the ports-approach BCA bench also
// matches the RTL signal-level bench, because the clean views are
// cycle-equivalent.
func TestTLMMatchesRTL(t *testing.T) {
	c := cfg(2, 2)
	test := core.Test{Name: "tlm_equiv", Traffic: traffic(), Target: target()}
	rtlRes, err := core.RunTest(c, core.RTLView, test, 5, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ports, err := RunTest(c, traffic(), target(), 5, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := rtlRes.Coverage.EqualHits(ports.Coverage); !eq {
		t.Errorf("coverage differs between RTL bench and ports approach: %s", why)
	}
}

// TestTLMCatchesBugThroughScoreboard shows the transaction-level bench still
// verifies: a bugged engine fails its scoreboard/drain checks.
func TestTLMCatchesBugThroughScoreboard(t *testing.T) {
	c := cfg(1, 1)
	tc := catg.TrafficConfig{Ops: 40, UnmappedPct: 40}
	res, err := RunTest(c, tc, target(), 3, bca.Bugs{ErrRespTIDZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Error("err-resp-tid-zero should break the transaction-level checks")
	}
}

func TestTLMSharedBusConfig(t *testing.T) {
	c := cfg(3, 2)
	c.Arch = nodespec.SharedBus
	c.ReqArb, c.RespArb = arb.RoundRobin, arb.RoundRobin
	res, err := RunTest(c, traffic(), target(), 11, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("shared-bus TLM run failed: %v", res.ScoreErrors)
	}
}

func TestTLMType2Config(t *testing.T) {
	c := cfg(2, 2)
	c.Port.Type = stbus.Type2
	res, err := RunTest(c, traffic(), target(), 13, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("Type 2 TLM run failed: %v", res.ScoreErrors)
	}
}

func TestTLMDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := RunTest(cfg(2, 2), traffic(), target(), 9, bca.Bugs{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Transactions != b.Transactions {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	if eq, why := a.Coverage.EqualHits(b.Coverage); !eq {
		t.Errorf("coverage differs across identical runs: %s", why)
	}
}
