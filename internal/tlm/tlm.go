// Package tlm implements the paper's future-work items (Section 6): the
// "ports approach" — plugging the BCA model into the verification
// environment *directly*, without the signal-level wrapper stack — and the
// resulting transaction-level-modelling (TLM) verification phase.
//
// The paper observes that routing the SystemC model through the VHDL wrapper
// forfeits its simulation speed, and anticipates that "the next version of
// CATG supporting ports approach will make possible a direct interfacing of
// SystemC simulator with Specman's environment. This should enhance
// simulation performance."
//
// Run drives the BCA engine with function-call harnesses that replicate the
// CATG BFMs' cycle behaviour exactly (same generated stimulus, same seeded
// target timing, same transaction assembly, scoreboard and functional-
// coverage model), so the transaction-level bench reports results
// *identical* to the wrapped signal-level bench — at standalone-engine
// speed. Experiment E7 measures both properties.
package tlm

import (
	"fmt"
	"math/rand"

	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Result summarises one transaction-level bench run.
type Result struct {
	Cycles       uint64
	Drained      bool
	Transactions int
	ScoreErrors  []string
	Coverage     *coverage.Group
}

// Passed reports whether the run drained with a clean scoreboard.
func (r *Result) Passed() bool { return r.Drained && len(r.ScoreErrors) == 0 }

// tlmDriver replicates catg.InitiatorBFM at function-call level.
type tlmDriver struct {
	ops     []catg.Op
	opIdx   int
	cellIdx int
	idle    int
	started bool
	sent    int
	resps   int

	presenting bool
	cell       stbus.Cell
}

// tick is the posedge update: fired/prevReq/respEOPFired describe the
// previous cycle, exactly what the signal BFM reads from the wires.
func (d *tlmDriver) tick(fired, prevReq, respEOPFired bool) {
	if fired {
		cur := d.ops[d.opIdx]
		d.cellIdx++
		if d.cellIdx == len(cur.Cells) {
			d.sent++
			d.opIdx++
			d.cellIdx = 0
			if d.opIdx < len(d.ops) {
				d.idle = d.ops[d.opIdx].IdleBefore
			}
		}
	} else if d.started && d.idle > 0 && !prevReq {
		d.idle--
	}
	if !d.started {
		d.started = true
		if d.opIdx < len(d.ops) {
			d.idle = d.ops[d.opIdx].IdleBefore
		}
	}
	d.presenting = d.opIdx < len(d.ops) && d.idle == 0
	if d.presenting {
		d.cell = d.ops[d.opIdx].Cells[d.cellIdx]
	} else {
		d.cell = stbus.Cell{}
	}
	if respEOPFired {
		d.resps++
	}
}

func (d *tlmDriver) done() bool { return d.opIdx >= len(d.ops) && d.resps >= d.sent }

// tlmMem replicates catg.TargetBFM at function-call level, consuming its
// random stream in the identical order.
type tlmMem struct {
	cfg  catg.TargetConfig
	port stbus.PortConfig
	rng  *rand.Rand
	mem  map[uint64]byte

	cur   []stbus.Cell
	queue []*tlmPkt
	gap   int
	cyc   uint64

	offering bool
	offer    stbus.RespCell
	gnt      bool
}

type tlmPkt struct {
	resp    []stbus.RespCell
	readyAt uint64
	idx     int
}

func (m *tlmMem) tick(reqFired bool, cell stbus.Cell, respFired bool) {
	m.cyc++
	if reqFired {
		m.cur = append(m.cur, cell)
		if m.cfg.GntGapPct > 0 && m.rng.Intn(100) < m.cfg.GntGapPct {
			m.gap = 1 + m.rng.Intn(3)
		}
		if m.cur[len(m.cur)-1].EOP {
			m.queue = append(m.queue, m.serve(m.cur))
			m.cur = nil
		}
	} else if m.gap > 0 {
		m.gap--
	}
	if respFired {
		h := m.queue[0]
		h.idx++
		if h.idx == len(h.resp) {
			m.queue = m.queue[1:]
		}
	}
	if len(m.queue) > 0 && m.cyc >= m.queue[0].readyAt {
		m.offering = true
		m.offer = m.queue[0].resp[m.queue[0].idx]
	} else {
		m.offering = false
		m.offer = stbus.RespCell{}
	}
	m.gnt = len(m.queue) < m.cfg.QueueDepth && m.gap == 0
}

func (m *tlmMem) serve(cells []stbus.Cell) *tlmPkt {
	first := cells[0]
	op, addr := first.Opc, first.Addr
	lat := m.cfg.MinLatency
	if m.cfg.MaxLatency > m.cfg.MinLatency {
		lat += m.rng.Intn(m.cfg.MaxLatency - m.cfg.MinLatency + 1)
	}
	pk := &tlmPkt{readyAt: m.cyc + uint64(lat)}
	var rd []byte
	if op.IsLoad() {
		rd = make([]byte, op.SizeBytes())
		for i := range rd {
			rd[i] = m.mem[addr+uint64(i)]
		}
	}
	if op.HasWriteData() {
		for i, v := range stbus.ExtractWriteData(m.port.Endian, cells, m.port.BusBytes()) {
			m.mem[addr+uint64(i)] = v
		}
	}
	resp, err := stbus.BuildResponse(m.port.Type, m.port.Endian, op, addr, rd, m.port.BusBytes(),
		first.TID, first.Src, false)
	if err != nil {
		resp = []stbus.RespCell{{ROpc: stbus.RespError, EOP: true, TID: first.TID, Src: first.Src}}
	}
	pk.resp = resp
	return pk
}

// Run executes one (test, seed) against the BCA engine through the ports
// approach. The test's traffic and target parameters are resolved exactly as
// the signal-level bench resolves them, so a clean model yields bit-identical
// transactions, scoreboard results and functional coverage.
func Run(cfg nodespec.Config, traffic func(initIdx int) catg.TrafficConfig,
	target func(tgtIdx int) catg.TargetConfig, seed int64, bugs bca.Bugs, maxCycles uint64) (*Result, error) {
	cfg = cfg.WithDefaults()
	eng, err := bca.NewEngine(cfg, bugs)
	if err != nil {
		return nil, err
	}
	nI, nT := cfg.NumInit, cfg.NumTgt

	drivers := make([]*tlmDriver, nI)
	totalCells := 0
	for i := range drivers {
		ops := catg.GenerateOps(cfg, traffic(i), i, seed)
		for _, o := range ops {
			totalCells += len(o.Cells) + o.IdleBefore
		}
		drivers[i] = &tlmDriver{ops: ops}
	}
	mems := make([]*tlmMem, nT)
	for t := range mems {
		mems[t] = &tlmMem{
			cfg:  target(t).WithDefaults(),
			port: cfg.Port,
			rng:  rand.New(rand.NewSource(catg.TargetSeed(seed, t))),
			mem:  make(map[uint64]byte),
		}
	}
	if maxCycles == 0 {
		maxCycles = uint64(2000 + totalCells*60)
	}

	// Verification components: the same assemblers, scoreboard and coverage
	// model as the signal-level bench.
	initAsm := make([]*catg.TxAssembler, nI)
	tgtAsm := make([]*catg.TxAssembler, nT)
	sb := catg.NewScoreboard(cfg, nil, nil)
	cov := catg.NewCoverageModel(cfg, traffic(0))
	res := &Result{Coverage: cov.Group}
	for i := range initAsm {
		a := catg.NewTxAssembler(cfg.Port, i, true, catg.NodeRouter(cfg, i))
		a.OnComplete(sb.AddInitiatorTransaction)
		a.OnComplete(func(tr *stbus.Transaction) {
			cov.SampleTransaction(tr, a.LastCompletedSeq(), a.OldestPendingSeq())
			res.Transactions++
		})
		initAsm[i] = a
	}
	for t := range tgtAsm {
		a := catg.NewTxAssembler(cfg.Port, t, false, nil)
		a.OnComplete(sb.AddTargetTransaction)
		tgtAsm[t] = a
	}

	in := bca.NewInputs(cfg)
	prevIn := bca.NewInputs(cfg)
	out := eng.Out()
	// Previous-cycle snapshots, the "wires" of the function-call bench.
	prevGnt := make([]bool, nI)
	prevRGnt := make([]bool, nT)
	prevDrvCell := make([]stbus.Cell, nI)
	prevTgtReq := make([]bool, nT)
	prevTgtCell := make([]stbus.Cell, nT)
	prevInitRsp := make([]bool, nI)
	prevInitRC := make([]stbus.RespCell, nI)
	prevMemOffering := make([]bool, nT)
	prevMemOffer := make([]stbus.RespCell, nT)

	allDone := func() bool {
		for _, d := range drivers {
			if !d.done() {
				return false
			}
		}
		return true
	}
	cyc := uint64(0)
	for ; !allDone(); cyc++ {
		if cyc > maxCycles {
			res.Cycles = cyc
			res.ScoreErrors = sb.Check()
			return res, nil // Drained stays false
		}
		// ---- posedge: engine commit + harness sequential updates ----
		if cyc > 0 {
			eng.Commit(prevIn,
				func(i int) stbus.Cell { return prevDrvCell[i] },
				func(t int) stbus.RespCell { return prevMemOffer[t] })
		}
		for i, d := range drivers {
			fired := prevIn.Req[i] && prevGnt[i]
			respEOP := prevInitRsp[i] && prevIn.RGnt[i] && prevInitRC[i].EOP
			d.tick(fired, prevIn.Req[i], respEOP)
		}
		for t, m := range mems {
			reqFired := prevTgtReq[t] && prevIn.TgtGnt[t]
			respFired := prevMemOffering[t] && prevRGnt[t]
			m.tick(reqFired, prevTgtCell[t], respFired)
		}
		// ---- settle: present inputs, plan grants ----
		for i, d := range drivers {
			in.Req[i] = d.presenting
			in.Addr[i] = d.cell.Addr
			in.EOP[i] = d.cell.EOP
			in.Lck[i] = d.cell.Lck
			in.Pri[i] = d.cell.Pri
			in.RGnt[i] = true
		}
		for t, m := range mems {
			in.TgtGnt[t] = m.gnt
			in.TgtRResp[t] = m.offering
			in.TgtRSrc[t] = m.offer.Src
		}
		eng.Plan(in)
		// ---- cycle-end observation (monitors + coverage) ----
		reqN := 0
		for i, d := range drivers {
			if in.Req[i] {
				reqN++
			}
			if in.Req[i] && out.Gnt[i] {
				initAsm[i].ReqCell(cyc, d.cell)
			}
			if out.InitRsp[i] && in.RGnt[i] {
				initAsm[i].RespCell(cyc, out.InitRC[i])
			}
		}
		for t, m := range mems {
			if out.TgtReq[t] && in.TgtGnt[t] {
				tgtAsm[t].ReqCell(cyc, out.TgtCell[t])
			}
			if m.offering && out.RGnt[t] {
				tgtAsm[t].RespCell(cyc, m.offer)
			}
		}
		cov.SampleContention(reqN)
		// ---- snapshot the cycle for the next posedge ----
		copyInputs(prevIn, in)
		copy(prevGnt, out.Gnt)
		copy(prevRGnt, out.RGnt)
		for i, d := range drivers {
			prevDrvCell[i] = d.cell
		}
		copy(prevTgtReq, out.TgtReq)
		copy(prevTgtCell, out.TgtCell)
		copy(prevInitRsp, out.InitRsp)
		copy(prevInitRC, out.InitRC)
		for t, m := range mems {
			prevMemOffering[t] = m.offering
			prevMemOffer[t] = m.offer
		}
	}
	res.Cycles = cyc
	res.Drained = true
	res.ScoreErrors = sb.Check()
	// The transaction-level bench has no signal-level protocol checkers, so
	// it enforces the end-of-test invariant directly: every issued request
	// must have been paired with a response (an unpaired request means the
	// DUT dropped or mis-tagged a response, e.g. the err-resp-tid-zero bug).
	for i, a := range initAsm {
		if n := a.PendingCount(); n > 0 {
			res.ScoreErrors = append(res.ScoreErrors,
				fmt.Sprintf("initiator %d: %d requests never received a matching response", i, n))
		}
	}
	return res, nil
}

func copyInputs(dst, src *bca.Inputs) {
	copy(dst.Req, src.Req)
	copy(dst.Addr, src.Addr)
	copy(dst.EOP, src.EOP)
	copy(dst.Lck, src.Lck)
	copy(dst.Pri, src.Pri)
	copy(dst.RGnt, src.RGnt)
	copy(dst.TgtGnt, src.TgtGnt)
	copy(dst.TgtRResp, src.TgtRResp)
	copy(dst.TgtRSrc, src.TgtRSrc)
}

// RunTest adapts a core-style test description (traffic and target resolved
// per port) without importing internal/core (which would create an import
// cycle through the experiments).
func RunTest(cfg nodespec.Config, trafficOne catg.TrafficConfig,
	targetOne catg.TargetConfig, seed int64, bugs bca.Bugs) (*Result, error) {
	return Run(cfg,
		func(int) catg.TrafficConfig { return trafficOne },
		func(int) catg.TargetConfig { return targetOne },
		seed, bugs, 0)
}
