package vcd

import (
	"bytes"
	"reflect"
	"testing"
)

// runBoth attaches a Writer and a Recorder to the same simulator run and
// returns the text VCD plus the captured Recording.
func runBoth(t *testing.T, cycles int) ([]byte, *Recording) {
	t.Helper()
	sm, tog, cnt := buildCounterSim()
	var buf bytes.Buffer
	wr := NewWriter(&buf, "bench")
	wr.Declare(tog)
	wr.Declare(cnt)
	wr.Attach(sm)
	r := NewRecorder("bench")
	r.Declare(tog)
	r.Declare(cnt)
	r.Attach(sm)
	if err := sm.Run(cycles); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r.Recording()
}

func TestRecordingVCDMatchesWriter(t *testing.T) {
	text, rec := runBoth(t, 10)
	if got := rec.VCD(); !bytes.Equal(got, text) {
		t.Errorf("Recording.VCD differs from Writer output:\n--- writer ---\n%s\n--- recording ---\n%s", text, got)
	}
	if rec.Cycles() != 10 {
		t.Errorf("Cycles() = %d, want 10", rec.Cycles())
	}
	if rec.Samples() != 10 {
		t.Errorf("Samples() = %d, want 10", rec.Samples())
	}
}

func TestRecordingFileMatchesParse(t *testing.T) {
	text, rec := runBoth(t, 10)
	want, err := Parse(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got := rec.File()
	if got.TopModule != want.TopModule || got.EndTime != want.EndTime {
		t.Errorf("File() header = (%q, %d), want (%q, %d)",
			got.TopModule, got.EndTime, want.TopModule, want.EndTime)
	}
	if got.Cycles() != want.Cycles() {
		t.Errorf("File().Cycles() = %d, want %d", got.Cycles(), want.Cycles())
	}
	// Vars in a parsed dump are in sorted (scope-tree) order while File()
	// keeps declare order; compare by name.
	if len(got.Vars) != len(want.Vars) {
		t.Fatalf("File() has %d vars, parse has %d", len(got.Vars), len(want.Vars))
	}
	for _, v := range want.Vars {
		gi := got.VarIndex(v.Name)
		if gi < 0 {
			t.Fatalf("File() missing var %q", v.Name)
		}
		if got.Vars[gi].Width != v.Width {
			t.Errorf("var %q width %d, want %d", v.Name, got.Vars[gi].Width, v.Width)
		}
		wi := want.VarIndex(v.Name)
		for cyc := uint64(0); cyc < want.Cycles(); cyc++ {
			tm := cyc * TimePerCycle
			if g, w := got.ValueAt(gi, tm), want.ValueAt(wi, tm); !g.Equal(w) {
				t.Errorf("var %q cycle %d = %s, want %s",
					v.Name, cyc, g.BinaryString(v.Width), w.BinaryString(v.Width))
			}
		}
	}
}

func TestRecordingEncodeDecodeRoundTrip(t *testing.T) {
	text, rec := runBoth(t, 25)
	enc := rec.Encode()
	if len(enc) >= len(text) {
		t.Errorf("binary recording (%d bytes) not smaller than text VCD (%d bytes)", len(enc), len(text))
	}
	dec, err := DecodeRecording(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, rec) {
		t.Errorf("decoded recording differs:\n got %+v\nwant %+v", dec, rec)
	}
	if got := dec.VCD(); !bytes.Equal(got, text) {
		t.Errorf("decoded Recording.VCD differs from Writer output")
	}
}

func TestDecodeRecordingRejectsCorrupt(t *testing.T) {
	_, rec := runBoth(t, 5)
	enc := rec.Encode()
	if _, err := DecodeRecording([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeRecording(enc[:len(enc)/2]); err == nil {
		t.Error("truncated recording accepted")
	}
}

func TestCursorStreamsValues(t *testing.T) {
	_, rec := runBoth(t, 10)
	ci := rec.SignalIndex("top.cnt")
	ti := rec.SignalIndex("top.tog")
	if ci < 0 || ti < 0 {
		t.Fatalf("missing signals: %v", rec.names)
	}
	cur := rec.NewCursor()
	for cyc := uint64(0); cyc < rec.Cycles(); cyc++ {
		cur.AdvanceTo(cyc)
		if got := cur.Value(ci).Uint64(); got != cyc+1 {
			t.Errorf("cnt at cycle %d = %d, want %d", cyc, got, cyc+1)
		}
		if got, want := cur.Value(ti).Bool(), (cyc+1)%2 == 1; got != want {
			t.Errorf("tog at cycle %d = %v, want %v", cyc, got, want)
		}
		if got := rec.ValueAt(ci, cyc).Uint64(); got != cyc+1 {
			t.Errorf("ValueAt(cnt, %d) = %d, want %d", cyc, got, cyc+1)
		}
	}
}
