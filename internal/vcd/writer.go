// Package vcd implements reading and writing of Value Change Dump files,
// the standard waveform interchange format (IEEE 1364 §18). The paper's flow
// dumps a VCD file for every regression run of both the RTL and the BCA
// model; the STBus Analyzer then compares the two dumps port by port.
//
// Writer integrates with the sim kernel: Attach registers an end-of-cycle
// hook that samples traced signals and emits value changes, with one clock
// cycle equal to TimePerCycle time units.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"crve/internal/sim"
)

// TimePerCycle is the number of VCD time units per simulated clock cycle.
const TimePerCycle = 10

// Writer emits a VCD file for a chosen set of signals. Declare every signal
// before the first sample; the header is written lazily on the first Sample
// (or by Flush if no samples were taken).
type Writer struct {
	w      *bufio.Writer
	module string

	sigs        []*sim.Signal
	codes       []string
	last        []sim.Bits
	headerDone  bool
	firstSample bool
	err         error
}

// NewWriter returns a Writer emitting to w. module names the top VCD scope.
func NewWriter(w io.Writer, module string) *Writer {
	return &Writer{w: bufio.NewWriter(w), module: module, firstSample: true}
}

// Declare adds a signal to the trace set. All declarations must happen
// before the first sample.
func (wr *Writer) Declare(sig *sim.Signal) {
	if wr.headerDone {
		panic("vcd: Declare after first sample")
	}
	wr.sigs = append(wr.sigs, sig)
}

// DeclareAll adds every signal of a simulator to the trace set.
func (wr *Writer) DeclareAll(sm *sim.Simulator) {
	for _, s := range sm.Signals() {
		wr.Declare(s)
	}
}

// Attach registers an end-of-cycle hook on sm that samples all declared
// signals each cycle. Call after declaring signals.
func (wr *Writer) Attach(sm *sim.Simulator) {
	sm.AtCycleEnd(func() {
		wr.Sample((sm.Cycle() - 1) * TimePerCycle)
	})
}

// idCode converts a dense index into a VCD identifier code (printable ASCII
// 33..126, little-endian base 94).
func idCode(i int) string {
	var b []byte
	for {
		b = append(b, byte('!'+i%94))
		i /= 94
		if i == 0 {
			return string(b)
		}
		i--
	}
}

func (wr *Writer) writeHeader() {
	wr.headerDone = true
	fmt.Fprintf(wr.w, "$date\n\treproduction run\n$end\n")
	fmt.Fprintf(wr.w, "$version\n\tcrve vcd writer\n$end\n")
	fmt.Fprintf(wr.w, "$timescale\n\t1ns\n$end\n")

	// Build a scope tree from dotted names so hierarchy survives round-trips.
	wr.codes = make([]string, len(wr.sigs))
	wr.last = make([]sim.Bits, len(wr.sigs))
	for i := range wr.sigs {
		wr.codes[i] = idCode(i)
	}
	fmt.Fprintf(wr.w, "$scope module %s $end\n", wr.module)
	wr.writeScope("", wr.sortedIndices())
	fmt.Fprintf(wr.w, "$upscope $end\n")
	fmt.Fprintf(wr.w, "$enddefinitions $end\n")
}

// sortedIndices returns signal indices ordered by hierarchical name so that
// signals of a scope group together.
func (wr *Writer) sortedIndices() []int {
	idx := make([]int, len(wr.sigs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return wr.sigs[idx[a]].Name() < wr.sigs[idx[b]].Name()
	})
	return idx
}

// writeScope emits $scope/$var declarations for all signals under prefix.
func (wr *Writer) writeScope(prefix string, idx []int) {
	emitted := map[string]bool{}
	for _, i := range idx {
		name := wr.sigs[i].Name()
		if prefix != "" {
			if !strings.HasPrefix(name, prefix+".") {
				continue
			}
			name = name[len(prefix)+1:]
		}
		if dot := strings.IndexByte(name, '.'); dot >= 0 {
			child := name[:dot]
			if emitted[child+"/"] {
				continue
			}
			emitted[child+"/"] = true
			full := child
			if prefix != "" {
				full = prefix + "." + child
			}
			fmt.Fprintf(wr.w, "$scope module %s $end\n", child)
			wr.writeScope(full, idx)
			fmt.Fprintf(wr.w, "$upscope $end\n")
			continue
		}
		if emitted[name] {
			continue
		}
		emitted[name] = true
		fmt.Fprintf(wr.w, "$var wire %d %s %s $end\n", wr.sigs[i].Width(), wr.codes[i], name)
	}
}

// Sample records the current value of every declared signal at the given
// time, emitting value changes for signals that differ from the previous
// sample. The first sample emits a $dumpvars block with all values.
func (wr *Writer) Sample(time uint64) {
	if wr.err != nil {
		return
	}
	if !wr.headerDone {
		wr.writeHeader()
	}
	if wr.firstSample {
		wr.firstSample = false
		fmt.Fprintf(wr.w, "#%d\n$dumpvars\n", time)
		for i, s := range wr.sigs {
			wr.emitChange(i, s.Get())
			wr.last[i] = s.Get()
		}
		fmt.Fprintf(wr.w, "$end\n")
		return
	}
	wrote := false
	for i, s := range wr.sigs {
		v := s.Get()
		if v.Equal(wr.last[i]) {
			continue
		}
		if !wrote {
			fmt.Fprintf(wr.w, "#%d\n", time)
			wrote = true
		}
		wr.emitChange(i, v)
		wr.last[i] = v
	}
}

func (wr *Writer) emitChange(i int, v sim.Bits) {
	if wr.sigs[i].Width() == 1 {
		if v.Bool() {
			fmt.Fprintf(wr.w, "1%s\n", wr.codes[i])
		} else {
			fmt.Fprintf(wr.w, "0%s\n", wr.codes[i])
		}
		return
	}
	fmt.Fprintf(wr.w, "b%s %s\n", v.BinaryString(wr.sigs[i].Width()), wr.codes[i])
}

// Flush writes buffered output and returns the first error encountered.
func (wr *Writer) Flush() error {
	if !wr.headerDone {
		wr.writeHeader()
	}
	if err := wr.w.Flush(); err != nil {
		return err
	}
	return wr.err
}
