// Package vcd implements reading and writing of Value Change Dump files,
// the standard waveform interchange format (IEEE 1364 §18). The paper's flow
// dumps a VCD file for every regression run of both the RTL and the BCA
// model; the STBus Analyzer then compares the two dumps port by port.
//
// Writer integrates with the sim kernel: Attach registers an end-of-cycle
// hook that samples traced signals and emits value changes, with one clock
// cycle equal to TimePerCycle time units.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"crve/internal/sim"
)

// TimePerCycle is the number of VCD time units per simulated clock cycle.
const TimePerCycle = 10

// Writer emits a VCD file for a chosen set of signals. Declare every signal
// before the first sample; the header is written lazily on the first Sample
// (or by Flush if no samples were taken).
type Writer struct {
	w      *bufio.Writer
	module string

	sigs        []*sim.Signal
	codes       []string
	last        []sim.Bits
	headerDone  bool
	firstSample bool
	err         error
}

// NewWriter returns a Writer emitting to w. module names the top VCD scope.
func NewWriter(w io.Writer, module string) *Writer {
	return &Writer{w: bufio.NewWriter(w), module: module, firstSample: true}
}

// Declare adds a signal to the trace set. All declarations must happen
// before the first sample.
func (wr *Writer) Declare(sig *sim.Signal) {
	if wr.headerDone {
		panic("vcd: Declare after first sample")
	}
	wr.sigs = append(wr.sigs, sig)
}

// DeclareAll adds every signal of a simulator to the trace set.
func (wr *Writer) DeclareAll(sm *sim.Simulator) {
	for _, s := range sm.Signals() {
		wr.Declare(s)
	}
}

// Attach registers an end-of-cycle hook on sm that samples all declared
// signals each cycle. Call after declaring signals.
func (wr *Writer) Attach(sm *sim.Simulator) {
	sm.AtCycleEnd(func() {
		wr.Sample((sm.Cycle() - 1) * TimePerCycle)
	})
}

// idCode converts a dense index into a VCD identifier code (printable ASCII
// 33..126, little-endian base 94).
func idCode(i int) string {
	var b []byte
	for {
		b = append(b, byte('!'+i%94))
		i /= 94
		if i == 0 {
			return string(b)
		}
		i--
	}
}

func (wr *Writer) writeHeader() {
	wr.headerDone = true
	wr.codes = make([]string, len(wr.sigs))
	wr.last = make([]sim.Bits, len(wr.sigs))
	names := make([]string, len(wr.sigs))
	widths := make([]int, len(wr.sigs))
	for i, s := range wr.sigs {
		wr.codes[i] = idCode(i)
		names[i] = s.Name()
		widths[i] = s.Width()
	}
	writeDefs(wr.w, wr.module, names, widths, wr.codes)
}

// writeDefs emits the VCD declaration section — header directives plus a
// scope tree rebuilt from dotted names so hierarchy survives round-trips —
// for both the live Writer and a Recording re-serving text VCD.
func writeDefs(w io.Writer, module string, names []string, widths []int, codes []string) {
	fmt.Fprintf(w, "$date\n\treproduction run\n$end\n")
	fmt.Fprintf(w, "$version\n\tcrve vcd writer\n$end\n")
	fmt.Fprintf(w, "$timescale\n\t1ns\n$end\n")

	// Sort by hierarchical name so signals of a scope group together.
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return names[idx[a]] < names[idx[b]]
	})
	fmt.Fprintf(w, "$scope module %s $end\n", module)
	writeScope(w, "", names, widths, codes, idx)
	fmt.Fprintf(w, "$upscope $end\n")
	fmt.Fprintf(w, "$enddefinitions $end\n")
}

// writeScope emits $scope/$var declarations for all signals under prefix.
func writeScope(w io.Writer, prefix string, names []string, widths []int, codes []string, idx []int) {
	emitted := map[string]bool{}
	for _, i := range idx {
		name := names[i]
		if prefix != "" {
			if !strings.HasPrefix(name, prefix+".") {
				continue
			}
			name = name[len(prefix)+1:]
		}
		if dot := strings.IndexByte(name, '.'); dot >= 0 {
			child := name[:dot]
			if emitted[child+"/"] {
				continue
			}
			emitted[child+"/"] = true
			full := child
			if prefix != "" {
				full = prefix + "." + child
			}
			fmt.Fprintf(w, "$scope module %s $end\n", child)
			writeScope(w, full, names, widths, codes, idx)
			fmt.Fprintf(w, "$upscope $end\n")
			continue
		}
		if emitted[name] {
			continue
		}
		emitted[name] = true
		fmt.Fprintf(w, "$var wire %d %s %s $end\n", widths[i], codes[i], name)
	}
}

// Sample records the current value of every declared signal at the given
// time, emitting value changes for signals that differ from the previous
// sample. The first sample emits a $dumpvars block with all values.
func (wr *Writer) Sample(time uint64) {
	if wr.err != nil {
		return
	}
	if !wr.headerDone {
		wr.writeHeader()
	}
	if wr.firstSample {
		wr.firstSample = false
		fmt.Fprintf(wr.w, "#%d\n$dumpvars\n", time)
		for i, s := range wr.sigs {
			wr.emitChange(i, s.Get())
			wr.last[i] = s.Get()
		}
		fmt.Fprintf(wr.w, "$end\n")
		return
	}
	wrote := false
	for i, s := range wr.sigs {
		v := s.Get()
		if v.Equal(wr.last[i]) {
			continue
		}
		if !wrote {
			fmt.Fprintf(wr.w, "#%d\n", time)
			wrote = true
		}
		wr.emitChange(i, v)
		wr.last[i] = v
	}
}

func (wr *Writer) emitChange(i int, v sim.Bits) {
	if wr.sigs[i].Width() == 1 {
		if v.Bool() {
			fmt.Fprintf(wr.w, "1%s\n", wr.codes[i])
		} else {
			fmt.Fprintf(wr.w, "0%s\n", wr.codes[i])
		}
		return
	}
	fmt.Fprintf(wr.w, "b%s %s\n", v.BinaryString(wr.sigs[i].Width()), wr.codes[i])
}

// Flush writes buffered output and returns the first error encountered.
func (wr *Writer) Flush() error {
	if !wr.headerDone {
		wr.writeHeader()
	}
	if err := wr.w.Flush(); err != nil {
		return err
	}
	return wr.err
}
