package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"crve/internal/sim"
)

// Var is a declared VCD variable.
type Var struct {
	// Name is the full hierarchical name, scopes joined with dots, with the
	// top module scope omitted.
	Name  string
	Width int
	Code  string
}

// Change is one value change of a variable.
type Change struct {
	Time  uint64
	Value sim.Bits
}

// File is a parsed VCD dump.
type File struct {
	Timescale string
	TopModule string
	Vars      []Var
	// Changes holds, per variable (indexed as Vars), the time-ordered value
	// changes including the initial $dumpvars values.
	Changes [][]Change
	// EndTime is the largest timestamp seen.
	EndTime uint64

	byName map[string]int
}

// VarIndex returns the index of the variable with the given hierarchical
// name, or -1.
func (f *File) VarIndex(name string) int {
	if i, ok := f.byName[name]; ok {
		return i
	}
	return -1
}

// ValueAt returns the value of variable v at the given time (the last change
// at or before time; zero if none).
func (f *File) ValueAt(v int, time uint64) sim.Bits {
	ch := f.Changes[v]
	// Binary search for the last change with Time <= time.
	i := sort.Search(len(ch), func(i int) bool { return ch[i].Time > time }) - 1
	if i < 0 {
		return sim.Bits{}
	}
	return ch[i].Value
}

// Cycles returns the number of complete clock cycles covered by the dump,
// assuming TimePerCycle time units per cycle and a sample at each cycle
// boundary starting from time 0.
func (f *File) Cycles() uint64 {
	return f.EndTime/TimePerCycle + 1
}

// Parse reads a VCD stream.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	f := &File{byName: map[string]int{}}
	codeIdx := map[string]int{}
	var scopes []string
	time := uint64(0)
	inDefs := true

	joinScope := func(name string) string {
		// Scope depth 0 is the top module: omit it from hierarchical names so
		// names match the sim-side signal names.
		if len(scopes) <= 1 {
			return name
		}
		return strings.Join(scopes[1:], ".") + "." + name
	}

	// collect tokens of a $keyword ... $end directive spanning lines.
	readDirective := func(first []string) ([]string, error) {
		toks := first
		for {
			for i, t := range toks {
				if t == "$end" {
					return toks[:i], nil
				}
			}
			if !sc.Scan() {
				return nil, fmt.Errorf("vcd: unterminated directive")
			}
			toks = append(toks, strings.Fields(sc.Text())...)
		}
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		toks := strings.Fields(line)
		switch {
		case toks[0] == "$timescale":
			body, err := readDirective(toks[1:])
			if err != nil {
				return nil, err
			}
			f.Timescale = strings.Join(body, " ")
		case toks[0] == "$scope":
			body, err := readDirective(toks[1:])
			if err != nil {
				return nil, err
			}
			if len(body) != 2 {
				return nil, fmt.Errorf("vcd: malformed $scope %q", line)
			}
			if len(scopes) == 0 {
				f.TopModule = body[1]
			}
			scopes = append(scopes, body[1])
		case toks[0] == "$upscope":
			if len(scopes) == 0 {
				return nil, fmt.Errorf("vcd: $upscope without scope")
			}
			scopes = scopes[:len(scopes)-1]
		case toks[0] == "$var":
			body, err := readDirective(toks[1:])
			if err != nil {
				return nil, err
			}
			if len(body) < 4 {
				return nil, fmt.Errorf("vcd: malformed $var %q", line)
			}
			w, err := strconv.Atoi(body[1])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("vcd: bad var width %q", body[1])
			}
			name := joinScope(body[3])
			v := Var{Name: name, Width: w, Code: body[2]}
			codeIdx[v.Code] = len(f.Vars)
			f.byName[name] = len(f.Vars)
			f.Vars = append(f.Vars, v)
			f.Changes = append(f.Changes, nil)
		case toks[0] == "$enddefinitions":
			inDefs = false
		case toks[0] == "$dumpvars", toks[0] == "$end", toks[0] == "$date", toks[0] == "$version", toks[0] == "$comment":
			// $date/$version/$comment bodies are skipped until their $end.
			if toks[0] == "$date" || toks[0] == "$version" || toks[0] == "$comment" {
				if _, err := readDirective(toks[1:]); err != nil {
					return nil, err
				}
			}
		case toks[0][0] == '#':
			t, err := strconv.ParseUint(toks[0][1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vcd: bad timestamp %q", toks[0])
			}
			time = t
			if t > f.EndTime {
				f.EndTime = t
			}
		case !inDefs && (toks[0][0] == '0' || toks[0][0] == '1' || toks[0][0] == 'x' || toks[0][0] == 'z' ||
			toks[0][0] == 'X' || toks[0][0] == 'Z'):
			// Scalar change: value immediately followed by the id code.
			code := toks[0][1:]
			idx, ok := codeIdx[code]
			if !ok {
				return nil, fmt.Errorf("vcd: unknown id code %q", code)
			}
			val := sim.Bits{}
			if toks[0][0] == '1' {
				val = sim.B64(1)
			}
			f.Changes[idx] = append(f.Changes[idx], Change{Time: time, Value: val})
		case !inDefs && (toks[0][0] == 'b' || toks[0][0] == 'B'):
			if len(toks) != 2 {
				return nil, fmt.Errorf("vcd: malformed vector change %q", line)
			}
			idx, ok := codeIdx[toks[1]]
			if !ok {
				return nil, fmt.Errorf("vcd: unknown id code %q", toks[1])
			}
			val, err := sim.ParseBinary(toks[0][1:])
			if err != nil {
				return nil, err
			}
			f.Changes[idx] = append(f.Changes[idx], Change{Time: time, Value: val})
		default:
			// Real-number changes and other extensions are out of scope.
			return nil, fmt.Errorf("vcd: unsupported record %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}
