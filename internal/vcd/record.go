package vcd

import (
	"encoding/binary"
	"fmt"

	"crve/internal/sim"
)

// This file is the compact binary waveform sidecar: the artifact tier that
// replaces text VCD on the regression hot path. A Recorder samples signals at
// the same cycle boundaries as Writer but keeps the changes as an in-memory
// frame stream instead of serialized text; a Recording answers value queries
// without any parsing (the streaming STBus Analyzer attaches a Cursor), and
// Encode/Decode give the cache/service tier a storable record — varint
// time-deltas plus changed-signal frames — that can re-serve either raw
// values or the byte-identical text VCD on demand.

// streamChange is one recorded value change: signal sig (declare index) took
// value val at the end of clock cycle cycle. The stream is ordered by
// (cycle, sig), exactly the order Writer would have emitted the change in.
type streamChange struct {
	cycle uint64
	sig   int32
	val   sim.Bits
}

// Recording is a captured waveform: per-signal metadata plus the ordered
// change stream. The zero value is an empty recording of no signals.
type Recording struct {
	module string
	names  []string
	widths []int
	stream []streamChange

	// endCycle is the last cycle any change was recorded (the binary analog
	// of a VCD file's EndTime); samples counts Sample invocations.
	endCycle uint64
	samples  uint64

	byName map[string]int
}

// Module returns the top scope name the recording re-serves VCD under.
func (rec *Recording) Module() string { return rec.module }

// NumSignals returns the number of recorded signals.
func (rec *Recording) NumSignals() int { return len(rec.names) }

// SignalName returns the hierarchical name of signal i (declare order).
func (rec *Recording) SignalName(i int) string { return rec.names[i] }

// SignalWidth returns the bit width of signal i.
func (rec *Recording) SignalWidth(i int) int { return rec.widths[i] }

// SignalIndex returns the declare index of the named signal, or -1.
func (rec *Recording) SignalIndex(name string) int {
	if i, ok := rec.byName[name]; ok {
		return i
	}
	return -1
}

// Changes returns the total number of recorded value changes.
func (rec *Recording) Changes() int { return len(rec.stream) }

// Samples returns the number of cycle samples taken.
func (rec *Recording) Samples() uint64 { return rec.samples }

// Cycles returns the number of clock cycles the recording covers, defined —
// exactly like File.Cycles on a parsed dump — by the last recorded activity,
// so alignment windows computed from a recording and from its text VCD
// rendering agree.
func (rec *Recording) Cycles() uint64 { return rec.endCycle + 1 }

// Recorder captures a compact Recording from live simulation signals. It
// mirrors Writer's protocol: Declare every signal, Attach (or call Sample
// per cycle), then read Recording() once the run completes.
type Recorder struct {
	rec     *Recording
	sigs    []*sim.Signal
	last    []sim.Bits
	started bool
}

// NewRecorder returns an empty Recorder; module names the top scope used
// when the recording is re-served as text VCD.
func NewRecorder(module string) *Recorder {
	return &Recorder{rec: &Recording{module: module, byName: map[string]int{}}}
}

// Declare adds a signal to the capture set. All declarations must happen
// before the first sample.
func (r *Recorder) Declare(sig *sim.Signal) {
	if r.started {
		panic("vcd: Recorder.Declare after first sample")
	}
	r.rec.byName[sig.Name()] = len(r.sigs)
	r.rec.names = append(r.rec.names, sig.Name())
	r.rec.widths = append(r.rec.widths, sig.Width())
	r.sigs = append(r.sigs, sig)
}

// DeclareAll adds every signal of a simulator to the capture set.
func (r *Recorder) DeclareAll(sm *sim.Simulator) {
	for _, s := range sm.Signals() {
		r.Declare(s)
	}
}

// Attach registers an end-of-cycle hook on sm that samples all declared
// signals each cycle — the same sampling points as Writer.Attach.
func (r *Recorder) Attach(sm *sim.Simulator) {
	sm.AtCycleEnd(func() {
		r.Sample(sm.Cycle() - 1)
	})
}

// Sample records the value of every declared signal at the end of the given
// cycle. The first sample records every signal (the $dumpvars analog);
// subsequent samples record only signals whose value changed.
func (r *Recorder) Sample(cycle uint64) {
	rec := r.rec
	rec.samples++
	if !r.started {
		r.started = true
		r.last = make([]sim.Bits, len(r.sigs))
		for i, s := range r.sigs {
			v := s.Get()
			r.last[i] = v
			rec.stream = append(rec.stream, streamChange{cycle: cycle, sig: int32(i), val: v})
		}
		rec.endCycle = cycle
		return
	}
	for i, s := range r.sigs {
		v := s.Get()
		if v.Equal(r.last[i]) {
			continue
		}
		r.last[i] = v
		rec.stream = append(rec.stream, streamChange{cycle: cycle, sig: int32(i), val: v})
		rec.endCycle = cycle
	}
}

// Recording returns the captured waveform.
func (r *Recorder) Recording() *Recording { return r.rec }

// Cursor streams a Recording's values forward, cycle by cycle, in O(changes)
// total — the parse-once/query-many access path of the streaming analyzer.
type Cursor struct {
	rec  *Recording
	pos  int
	vals []sim.Bits
}

// NewCursor returns a cursor positioned before the first cycle; every value
// reads zero until the first AdvanceTo.
func (rec *Recording) NewCursor() *Cursor {
	return &Cursor{rec: rec, vals: make([]sim.Bits, len(rec.names))}
}

// AdvanceTo applies every change up to and including the given cycle.
// Cycles must be non-decreasing across calls.
func (c *Cursor) AdvanceTo(cycle uint64) {
	st := c.rec.stream
	for c.pos < len(st) && st[c.pos].cycle <= cycle {
		c.vals[st[c.pos].sig] = st[c.pos].val
		c.pos++
	}
}

// Value returns signal i's value at the cursor's current cycle.
func (c *Cursor) Value(i int) sim.Bits { return c.vals[i] }

// ValueAt returns the value of signal i at the end of the given cycle (the
// last change at or before it; zero if none) — random access for report and
// window serving; sequential readers should prefer a Cursor.
func (rec *Recording) ValueAt(i int, cycle uint64) sim.Bits {
	var v sim.Bits
	for _, ch := range rec.stream {
		if ch.cycle > cycle {
			break
		}
		if int(ch.sig) == i {
			v = ch.val
		}
	}
	return v
}

// recordingMagic versions the binary encoding; bump on layout changes.
const recordingMagic = "CRW1"

// valWords returns the number of 64-bit words a width-w value serializes as.
func valWords(w int) int { return (w + 63) / 64 }

// Encode serializes the recording: header (module, signal names and widths),
// then one frame per active cycle as a varint cycle delta plus the changed
// signals' (index, value-words) pairs. Values of small magnitude — the
// common case for control wires and addresses — shrink to a few bytes.
func (rec *Recording) Encode() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		buf = append(buf, s...)
	}

	buf = append(buf, recordingMagic...)
	putString(rec.module)
	putUvarint(uint64(len(rec.names)))
	for i, name := range rec.names {
		putString(name)
		putUvarint(uint64(rec.widths[i]))
	}
	putUvarint(rec.samples)

	// Count frames (runs of equal cycle in the ordered stream).
	frames := 0
	for k := 0; k < len(rec.stream); {
		j := k
		for j < len(rec.stream) && rec.stream[j].cycle == rec.stream[k].cycle {
			j++
		}
		frames++
		k = j
	}
	putUvarint(uint64(frames))
	prev := uint64(0)
	for k := 0; k < len(rec.stream); {
		j := k
		for j < len(rec.stream) && rec.stream[j].cycle == rec.stream[k].cycle {
			j++
		}
		cyc := rec.stream[k].cycle
		putUvarint(cyc - prev)
		prev = cyc
		putUvarint(uint64(j - k))
		for _, ch := range rec.stream[k:j] {
			putUvarint(uint64(ch.sig))
			for w := 0; w < valWords(rec.widths[ch.sig]); w++ {
				putUvarint(ch.val.Word(w))
			}
		}
		k = j
	}
	return buf
}

// IsRecording reports whether data begins with the binary recording magic —
// the format sniff the CLI tools use to accept .crw and .vcd interchangeably.
func IsRecording(data []byte) bool {
	return len(data) >= len(recordingMagic) && string(data[:len(recordingMagic)]) == recordingMagic
}

// DecodeRecording parses a recording produced by Encode.
func DecodeRecording(data []byte) (*Recording, error) {
	if len(data) < len(recordingMagic) || string(data[:len(recordingMagic)]) != recordingMagic {
		return nil, fmt.Errorf("vcd: not a %s waveform recording", recordingMagic)
	}
	data = data[len(recordingMagic):]
	getUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("vcd: truncated waveform recording")
		}
		data = data[n:]
		return v, nil
	}
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(len(data)) {
			return "", fmt.Errorf("vcd: truncated waveform recording")
		}
		s := string(data[:n])
		data = data[n:]
		return s, nil
	}

	rec := &Recording{byName: map[string]int{}}
	var err error
	if rec.module, err = getString(); err != nil {
		return nil, err
	}
	nsig, err := getUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nsig; i++ {
		name, err := getString()
		if err != nil {
			return nil, err
		}
		w, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if w == 0 || w > sim.MaxBitsWidth {
			return nil, fmt.Errorf("vcd: recording signal %q width %d out of range", name, w)
		}
		rec.byName[name] = len(rec.names)
		rec.names = append(rec.names, name)
		rec.widths = append(rec.widths, int(w))
	}
	if rec.samples, err = getUvarint(); err != nil {
		return nil, err
	}
	frames, err := getUvarint()
	if err != nil {
		return nil, err
	}
	cyc := uint64(0)
	for f := uint64(0); f < frames; f++ {
		delta, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if f > 0 && delta == 0 {
			return nil, fmt.Errorf("vcd: recording frames not strictly increasing")
		}
		cyc += delta
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			sig, err := getUvarint()
			if err != nil {
				return nil, err
			}
			if sig >= nsig {
				return nil, fmt.Errorf("vcd: recording change for unknown signal %d", sig)
			}
			var words [sim.BitsWords]uint64
			for w := 0; w < valWords(rec.widths[sig]); w++ {
				if words[w], err = getUvarint(); err != nil {
					return nil, err
				}
			}
			rec.stream = append(rec.stream, streamChange{
				cycle: cyc, sig: int32(sig),
				val: sim.BWords(words[:]...).Mask(rec.widths[sig]),
			})
		}
		rec.endCycle = cyc
	}
	return rec, nil
}

// File converts the recording into the parsed-dump representation, so every
// consumer of a text VCD — Compare, SignalRates, transaction extraction,
// vcdcat — works on a recording without any text round trip.
func (rec *Recording) File() *File {
	f := &File{
		Timescale: "1ns",
		TopModule: rec.module,
		EndTime:   rec.endCycle * TimePerCycle,
		byName:    map[string]int{},
	}
	for i, name := range rec.names {
		f.byName[name] = i
		f.Vars = append(f.Vars, Var{Name: name, Width: rec.widths[i], Code: idCode(i)})
		f.Changes = append(f.Changes, nil)
	}
	for _, ch := range rec.stream {
		f.Changes[ch.sig] = append(f.Changes[ch.sig], Change{Time: ch.cycle * TimePerCycle, Value: ch.val})
	}
	return f
}

// VCD re-serves the recording as a text VCD stream, byte-identical to what a
// Writer attached to the original run would have produced — the service
// tier's on-demand full-fidelity artifact.
func (rec *Recording) VCD() []byte {
	var buf []byte
	w := &byteWriter{buf: &buf}
	codes := make([]string, len(rec.names))
	for i := range codes {
		codes[i] = idCode(i)
	}
	writeDefs(w, rec.module, rec.names, rec.widths, codes)

	emit := func(ch streamChange) {
		if rec.widths[ch.sig] == 1 {
			if ch.val.Bool() {
				fmt.Fprintf(w, "1%s\n", codes[ch.sig])
			} else {
				fmt.Fprintf(w, "0%s\n", codes[ch.sig])
			}
			return
		}
		fmt.Fprintf(w, "b%s %s\n", ch.val.BinaryString(rec.widths[ch.sig]), codes[ch.sig])
	}
	first := true
	for k := 0; k < len(rec.stream); {
		j := k
		for j < len(rec.stream) && rec.stream[j].cycle == rec.stream[k].cycle {
			j++
		}
		fmt.Fprintf(w, "#%d\n", rec.stream[k].cycle*TimePerCycle)
		if first {
			first = false
			fmt.Fprintf(w, "$dumpvars\n")
			for _, ch := range rec.stream[k:j] {
				emit(ch)
			}
			fmt.Fprintf(w, "$end\n")
		} else {
			for _, ch := range rec.stream[k:j] {
				emit(ch)
			}
		}
		k = j
	}
	return buf
}

// byteWriter adapts an append-only byte slice to io.Writer for writeDefs.
type byteWriter struct{ buf *[]byte }

func (b *byteWriter) Write(p []byte) (int, error) {
	*b.buf = append(*b.buf, p...)
	return len(p), nil
}
