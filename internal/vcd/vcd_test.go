package vcd

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"crve/internal/sim"
)

// buildCounterSim returns a simulator with a 1-bit toggle and an 8-bit
// counter, exercised by the round-trip tests.
func buildCounterSim() (*sim.Simulator, *sim.Signal, *sim.Signal) {
	sm := sim.New()
	tog := sm.Bool("top.tog")
	cnt := sm.Signal("top.cnt", 8)
	sm.Seq("count", func() {
		cnt.SetU64(cnt.U64() + 1)
		tog.SetBool(!tog.Bool())
	})
	return sm, tog, cnt
}

func TestWriteParseRoundTrip(t *testing.T) {
	sm, tog, cnt := buildCounterSim()
	var buf bytes.Buffer
	wr := NewWriter(&buf, "bench")
	wr.Declare(tog)
	wr.Declare(cnt)
	wr.Attach(sm)
	if err := sm.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}

	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.TopModule != "bench" {
		t.Errorf("top module %q", f.TopModule)
	}
	ci := f.VarIndex("top.cnt")
	ti := f.VarIndex("top.tog")
	if ci < 0 || ti < 0 {
		t.Fatalf("missing vars: %+v", f.Vars)
	}
	if f.Vars[ci].Width != 8 {
		t.Errorf("cnt width %d", f.Vars[ci].Width)
	}
	for cyc := uint64(0); cyc < 10; cyc++ {
		time := cyc * TimePerCycle
		if got := f.ValueAt(ci, time).Uint64(); got != cyc+1 {
			t.Errorf("cnt at cycle %d = %d, want %d", cyc, got, cyc+1)
		}
		wantTog := (cyc+1)%2 == 1
		if got := f.ValueAt(ti, time).Bool(); got != wantTog {
			t.Errorf("tog at cycle %d = %v, want %v", cyc, got, wantTog)
		}
	}
	if f.Cycles() != 10 {
		t.Errorf("Cycles() = %d, want 10", f.Cycles())
	}
}

func TestScopeHierarchyRoundTrip(t *testing.T) {
	sm := sim.New()
	a := sm.Signal("node.i0.req", 1)
	b := sm.Signal("node.i1.req", 1)
	c := sm.Signal("node.i0.add", 32)
	top := sm.Signal("clkcnt", 4)
	_ = top
	var buf bytes.Buffer
	wr := NewWriter(&buf, "tb")
	wr.DeclareAll(sm)
	wr.Attach(sm)
	sm.Seq("drive", func() {
		a.SetBool(true)
		b.SetBool(false)
		c.SetU64(0x1234)
	})
	if err := sm.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "$scope module node $end") {
		t.Error("missing node scope")
	}
	if !strings.Contains(text, "$scope module i0 $end") {
		t.Error("missing i0 scope")
	}
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"node.i0.req", "node.i1.req", "node.i0.add", "clkcnt"} {
		if f.VarIndex(name) < 0 {
			t.Errorf("var %q lost in round trip; have %+v", name, f.Vars)
		}
	}
	if got := f.ValueAt(f.VarIndex("node.i0.add"), TimePerCycle).Uint64(); got != 0x1234 {
		t.Errorf("add = %#x", got)
	}
}

func TestIDCodeUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("duplicate id code %q at %d", c, i)
		}
		seen[c] = true
		for _, ch := range c {
			if ch < '!' || ch > '~' {
				t.Fatalf("id code %q contains non-printable %q", c, ch)
			}
		}
	}
}

func TestIDCodeProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		return idCode(int(a)) != idCode(int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueAtBeforeFirstChange(t *testing.T) {
	f := &File{Changes: [][]Change{{{Time: 50, Value: sim.B64(7)}}}}
	if !f.ValueAt(0, 10).IsZero() {
		t.Error("value before first change should be zero")
	}
	if f.ValueAt(0, 50).Uint64() != 7 {
		t.Error("value at change time should be the new value")
	}
	if f.ValueAt(0, 90).Uint64() != 7 {
		t.Error("value after change should persist")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"$var wire eight ! x $end\n$enddefinitions $end\n",
		"#12\nqzzz\n",
		"$enddefinitions $end\n#5\nb1010\n", // vector change missing code
		"$enddefinitions $end\n#5\n1%\n",    // unknown code
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestParseXZCollapse(t *testing.T) {
	src := `$timescale 1ns $end
$scope module tb $end
$var wire 1 ! sig $end
$var wire 4 " vec $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
x!
bxz10 "
$end
#10
1!
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ValueAt(f.VarIndex("sig"), 0); !got.IsZero() {
		t.Error("x should collapse to 0")
	}
	if got := f.ValueAt(f.VarIndex("vec"), 0).Uint64(); got != 0b0010 {
		t.Errorf("vec = %#b, want 0b0010", got)
	}
	if got := f.ValueAt(f.VarIndex("sig"), 10); !got.Bool() {
		t.Error("sig should be 1 at t=10")
	}
}

func TestWriterOnlyEmitsChanges(t *testing.T) {
	sm := sim.New()
	stable := sm.Signal("stable", 8)
	moving := sm.Signal("moving", 8)
	sm.Seq("drv", func() { moving.SetU64(moving.U64() + 1) })
	var buf bytes.Buffer
	wr := NewWriter(&buf, "tb")
	wr.Declare(stable)
	wr.Declare(moving)
	wr.Attach(sm)
	if err := sm.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	// "stable" must appear exactly once (in $dumpvars).
	n := strings.Count(buf.String(), " !\n") // code for first declared var
	if n != 1 {
		t.Errorf("stable emitted %d times, want 1\n%s", n, buf.String())
	}
}

func TestWriterFlushWithoutSamples(t *testing.T) {
	var buf bytes.Buffer
	wr := NewWriter(&buf, "tb")
	sm := sim.New()
	wr.Declare(sm.Bool("a"))
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(&buf); err != nil {
		t.Fatalf("header-only file should parse: %v", err)
	}
}

func TestWide256BitSignalRoundTrip(t *testing.T) {
	sm := sim.New()
	wide := sm.Signal("wide", 256)
	sm.Seq("drv", func() {
		v := sim.BWords(0x1111_2222_3333_4444, 0x5555_6666_7777_8888,
			0x9999_aaaa_bbbb_cccc, 0xdddd_eeee_ffff_0000+sm.Cycle())
		wide.Set(v)
	})
	var buf bytes.Buffer
	wr := NewWriter(&buf, "tb")
	wr.Declare(wide)
	wr.Attach(sm)
	if err := sm.Run(3); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	i := f.VarIndex("wide")
	if i < 0 || f.Vars[i].Width != 256 {
		t.Fatal("wide var lost")
	}
	got := f.ValueAt(i, 2*TimePerCycle)
	// BWords is little-endian word order: word 0 is least significant.
	if got.Word(0) != 0x1111_2222_3333_4444 || got.Word(3) != 0xdddd_eeee_ffff_0002 {
		t.Errorf("wide value %v", got)
	}
}
