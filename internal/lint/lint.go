// Package lint is the static-analysis layer of the verification flow: it
// checks bench configurations (nodespec.Config parameter sets, their address
// maps and port parameters) and whole regression matrices BEFORE any
// simulation cycle runs, the way the paper's regression tool "generates/
// compiles testbench configuration" up front. A mis-specified node — an
// overlapping address map, a partial-crossbar row that strands an initiator,
// a programming port without a base address — is reported here with a
// diagnostic code and a file:line position instead of surfacing mid-run
// after expensive cycles and VCD dumps.
//
// The package unifies the ad-hoc Validate() methods scattered across
// internal/nodespec, internal/stbus and internal/rtl behind one reporting
// API: every rule is a Diagnostic with a stable CRVE0xx code, a severity and
// a position, so the cmd/crvelint CLI, the regression gate in
// internal/regress and CI all consume the same report.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Code identifies one lint rule. Codes are stable across releases: tools and
// CI suppressions refer to them.
type Code string

// The diagnostic codes. See DESIGN.md for the rule table; each code has a
// dedicated analyzer test in lint_test.go and a trigger fixture under
// configs/bad/.
const (
	// CodeParse — the parameter file does not parse (bad syntax, unknown
	// key, malformed value).
	CodeParse Code = "CRVE000"
	// CodeRegionMalformed — an address-map region has zero size or wraps
	// past the end of the address space.
	CodeRegionMalformed Code = "CRVE001"
	// CodeRegionOverlap — two address-map regions overlap, making routing
	// order-dependent.
	CodeRegionOverlap Code = "CRVE002"
	// CodeRegionGap — a hole between consecutive regions: addresses in the
	// gap are answered with error responses, which is legal but almost
	// always a typo in hand-written maps.
	CodeRegionGap Code = "CRVE003"
	// CodeRegionTarget — a region routes to a target port index outside
	// [0, num_tgt).
	CodeRegionTarget Code = "CRVE004"
	// CodeTargetUnmapped — a target port no address-map region routes to:
	// the port exists in hardware but can never receive a request.
	CodeTargetUnmapped Code = "CRVE005"
	// CodeRegionAddrWidth — a region (or the programming region) extends
	// beyond the 2^addr_bits address space of the ports, so part of it is
	// unreachable on the bus.
	CodeRegionAddrWidth Code = "CRVE006"
	// CodeRegionAlign — a region boundary is not aligned to the data-bus
	// width: one bus-wide beat would straddle two targets.
	CodeRegionAlign Code = "CRVE007"
	// CodeAllowedShape — the partial-crossbar allowed matrix has the wrong
	// shape (rows != num_init or a row with cols != num_tgt).
	CodeAllowedShape Code = "CRVE008"
	// CodeInitiatorStranded — a partial-crossbar row is all zero: the
	// initiator port can reach no target at all.
	CodeInitiatorStranded Code = "CRVE009"
	// CodeTargetIsolated — a partial-crossbar column is all zero: no
	// initiator can ever reach the target.
	CodeTargetIsolated Code = "CRVE010"
	// CodeProgPort — the programming port is misconfigured: enabled without
	// prog_base, or its register region overlaps the address map or falls
	// beyond the address space.
	CodeProgPort Code = "CRVE011"
	// CodeProgArb — a programmable arbitration policy without a programming
	// port: the priority registers can never be written, so the policy is
	// frozen at the power-on defaults.
	CodeProgArb Code = "CRVE012"
	// CodePipeProtocol — pipe depth inconsistent with the protocol type:
	// a Type3 node with pipe 1 cannot overlap requests (its out-of-order
	// logic is unreachable), and non-power-of-two depths do not map onto
	// the RTL pipe stages.
	CodePipeProtocol Code = "CRVE013"
	// CodePortParam — an illegal port or node parameter: protocol type
	// (the node supports Type2/Type3 only), data width, address width,
	// endianness, port counts or pipe range.
	CodePortParam Code = "CRVE014"
	// CodeDupName — two configurations in the lint set share a name, so
	// their reports and VCD artifacts would overwrite each other.
	CodeDupName Code = "CRVE015"
	// CodeDupSeed — a seed appears twice in the seed list: the duplicate
	// run adds cycles but no new coverage.
	CodeDupSeed Code = "CRVE016"
	// CodeDeadBin — the configuration's functional-coverage model declares a
	// bin no stimulus can ever hit (e.g. completion_order/reordered on a
	// partial crossbar whose rows each reach a single target): full
	// functional coverage is statically impossible and coverage closure can
	// never converge.
	CodeDeadBin Code = "CRVE017"

	// The CRVE018–CRVE023 codes are the fabric layer (internal/fabric): they
	// judge a whole multi-node topology — configs plus a bind graph — rather
	// than one configuration at a time.

	// CodeBindMismatch — a bind edge (or a converter's own up/down pair)
	// joins two port bundles whose configurations differ; stbus.Bind would
	// panic at elaboration.
	CodeBindMismatch Code = "CRVE018"
	// CodeFabricUnreachable — an address window is dead across the fabric: a
	// mapped region routes downstream to hardware that serves none of it
	// (black hole), or no external initiator can reach it at all.
	CodeFabricUnreachable Code = "CRVE019"
	// CodeFabricShadow — an address window is only partially served across
	// hops: the upstream node claims the whole region but the downstream
	// fabric covers a subset, so part of the window silently error-responds.
	CodeFabricShadow Code = "CRVE020"
	// CodeFabricDangling — a port bundle is dangling (bound to nothing) or
	// doubly driven (appears in more than one bind edge), or a bind edge
	// connects two ports with the same drive direction.
	CodeFabricDangling Code = "CRVE021"
	// CodeFabricSrcID — the return path cannot distinguish responses: two
	// initiators that converge on the same node present the same source ID,
	// or a source ID does not fit the 8-bit src field.
	CodeFabricSrcID Code = "CRVE022"
	// CodeFabricCycle — the bind graph is cyclic. The gnt/r_gnt chains of
	// bound nodes are combinational, so a topological loop is a combinational
	// cycle that forces the levelized kernel back into SCC iteration.
	CodeFabricCycle Code = "CRVE023"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Warning marks a configuration that will run but is almost certainly
	// not what the author meant. Warnings do not gate the regression.
	Warning Severity = iota
	// Error marks a configuration that cannot run correctly; the regression
	// driver refuses the matrix unless -nolint is passed.
	Error
)

func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity?%d", int(s))
	}
}

// MarshalJSON emits the severity name, not the internal ordinal, so JSON
// consumers read "error"/"warning" rather than a bare number.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the severity names MarshalJSON emits.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Position locates a diagnostic in a parameter file. Line 0 means "the file
// as a whole" (or a config synthesised in memory, where File is the
// configuration name).
type Position struct {
	File string `json:"file"`
	Line int    `json:"line"`
}

func (p Position) String() string {
	switch {
	case p.File == "" && p.Line == 0:
		return "-"
	case p.Line == 0:
		return p.File
	default:
		return fmt.Sprintf("%s:%d", p.File, p.Line)
	}
}

// Diagnostic is one finding: a coded, positioned, severity-classified
// message.
type Diagnostic struct {
	Pos      Position `json:"pos"`
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	Msg      string   `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Pos, d.Severity, d.Code, d.Msg)
}

// Report accumulates diagnostics across configurations and matrix-level
// checks.
type Report struct {
	Diags []Diagnostic
}

// Add appends a diagnostic.
func (r *Report) Add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// Addf appends a diagnostic built from a format string.
func (r *Report) Addf(pos Position, code Code, sev Severity, format string, args ...any) {
	r.Add(Diagnostic{Pos: pos, Code: code, Severity: sev, Msg: fmt.Sprintf(format, args...)})
}

// Errors counts Error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Warnings counts Warning-severity diagnostics.
func (r *Report) Warnings() int { return len(r.Diags) - r.Errors() }

// HasErrors reports whether any Error-severity diagnostic was found.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// ByCode returns the diagnostics carrying the given code.
func (r *Report) ByCode(code Code) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Sort orders diagnostics by file, line, code, then message, so reports are
// deterministic regardless of analyzer execution order.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// Text renders the report in the compiler-style one-line-per-diagnostic
// format, followed by a summary line.
func (r *Report) Text(w io.Writer) {
	for _, d := range r.Diags {
		fmt.Fprintln(w, d)
	}
	fmt.Fprintf(w, "%d error(s), %d warning(s)\n", r.Errors(), r.Warnings())
}

// JSON renders the report as a JSON object for machine consumers (CI
// annotations, editors).
func (r *Report) JSON(w io.Writer) error {
	diags := r.Diags
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
		Errors      int          `json:"errors"`
		Warnings    int          `json:"warnings"`
	}{diags, r.Errors(), r.Warnings()})
}

// Summary returns the one-line outcome of the report.
func (r *Report) Summary() string {
	if len(r.Diags) == 0 {
		return "lint clean"
	}
	var parts []string
	if n := r.Errors(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d error(s)", n))
	}
	if n := r.Warnings(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d warning(s)", n))
	}
	return strings.Join(parts, ", ")
}
