package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// base returns a lint-clean reference configuration; each analyzer test
// mutates one aspect of it.
func base() nodespec.Config {
	return nodespec.Config{
		Name:    "ref",
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}.WithDefaults()
}

// codes returns the set of codes present in the report.
func codes(r *Report) map[Code]int {
	m := map[Code]int{}
	for _, d := range r.Diags {
		m[d.Code]++
	}
	return m
}

func TestCleanConfigHasNoDiagnostics(t *testing.T) {
	r := Check(MemSource(base()))
	if len(r.Diags) != 0 {
		t.Fatalf("clean config produced diagnostics:\n%v", r.Diags)
	}
}

// expect checks one positive case (mutated config must trigger code) against
// the negative case (the base config must not).
func expect(t *testing.T, code Code, sev Severity, mutate func(*nodespec.Config)) {
	t.Helper()
	cfg := base()
	mutate(&cfg)
	r := Check(MemSource(cfg))
	found := false
	for _, d := range r.Diags {
		if d.Code == code {
			found = true
			if d.Severity != sev {
				t.Errorf("%s reported with severity %v, want %v", code, d.Severity, sev)
			}
		}
	}
	if !found {
		t.Errorf("%s not reported; got %v", code, r.Diags)
	}
	if n := codes(Check(MemSource(base())))[code]; n != 0 {
		t.Errorf("%s reported on the clean base config", code)
	}
}

func TestRegionMalformed(t *testing.T) {
	expect(t, CodeRegionMalformed, Error, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: 0x1000, Size: 0, Target: 0}, {Base: 0x2000, Size: 0x1000, Target: 1}}
	})
	expect(t, CodeRegionMalformed, Error, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: ^uint64(0) - 4, Size: 0x1000, Target: 0}, {Base: 0x1000, Size: 0x1000, Target: 1}}
	})
}

func TestRegionOverlap(t *testing.T) {
	expect(t, CodeRegionOverlap, Error, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 0}, {Base: 0x1800, Size: 0x1000, Target: 1}}
	})
}

func TestRegionGap(t *testing.T) {
	expect(t, CodeRegionGap, Warning, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 0}, {Base: 0x4000, Size: 0x1000, Target: 1}}
	})
}

func TestRegionTarget(t *testing.T) {
	expect(t, CodeRegionTarget, Error, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 0}, {Base: 0x2000, Size: 0x1000, Target: 7}}
	})
}

func TestTargetUnmapped(t *testing.T) {
	expect(t, CodeTargetUnmapped, Error, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 0}, {Base: 0x2000, Size: 0x1000, Target: 0}}
	})
	// No map at all: one file-level diagnostic instead of one per target.
	cfg := base()
	cfg.Map = nil
	if n := codes(Check(MemSource(cfg)))[CodeTargetUnmapped]; n != 1 {
		t.Errorf("empty map reported %d CodeTargetUnmapped diagnostics, want 1", n)
	}
}

func TestRegionAddrWidth(t *testing.T) {
	expect(t, CodeRegionAddrWidth, Error, func(c *nodespec.Config) {
		c.Port.AddrBits = 16
		c.Map = stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 0}, {Base: 0x1_0000, Size: 0x1000, Target: 1}}
	})
	// A 64-bit port has no overflow to report.
	cfg := base()
	cfg.Port.AddrBits = 64
	cfg.Map = stbus.AddrMap{{Base: 0x1000, Size: 0x1000, Target: 0}, {Base: ^uint64(0) - 0xfff, Size: 0x1000, Target: 1}}
	if n := codes(Check(MemSource(cfg)))[CodeRegionAddrWidth]; n != 0 {
		t.Errorf("64-bit address space wrongly reported overflow")
	}
}

func TestRegionAlign(t *testing.T) {
	expect(t, CodeRegionAlign, Warning, func(c *nodespec.Config) {
		c.Map = stbus.AddrMap{{Base: 0x1002, Size: 0xffe, Target: 0}, {Base: 0x2000, Size: 0x1000, Target: 1}}
	})
}

func TestAllowedShape(t *testing.T) {
	expect(t, CodeAllowedShape, Error, func(c *nodespec.Config) {
		c.Arch = nodespec.PartialCrossbar
		c.Allowed = [][]bool{{true, true}} // one row for two initiators
	})
	expect(t, CodeAllowedShape, Error, func(c *nodespec.Config) {
		c.Arch = nodespec.PartialCrossbar
		c.Allowed = [][]bool{{true}, {true, true}} // short row
	})
}

func TestInitiatorStranded(t *testing.T) {
	expect(t, CodeInitiatorStranded, Error, func(c *nodespec.Config) {
		c.Arch = nodespec.PartialCrossbar
		c.Allowed = [][]bool{{false, false}, {true, true}}
	})
	// A fully-connected partial crossbar is clean.
	cfg := base()
	cfg.Arch = nodespec.PartialCrossbar
	cfg.Allowed = [][]bool{{true, true}, {true, true}}
	if got := codes(Check(MemSource(cfg))); len(got) != 0 {
		t.Errorf("fully-connected partial crossbar reported %v", got)
	}
}

func TestTargetIsolated(t *testing.T) {
	expect(t, CodeTargetIsolated, Warning, func(c *nodespec.Config) {
		c.Arch = nodespec.PartialCrossbar
		c.Allowed = [][]bool{{true, false}, {true, false}}
	})
}

func TestProgPort(t *testing.T) {
	// Enabled without a base.
	expect(t, CodeProgPort, Error, func(c *nodespec.Config) {
		c.ProgPort = true
	})
	// Register region overlapping the address map.
	expect(t, CodeProgPort, Error, func(c *nodespec.Config) {
		c.ProgPort = true
		c.ProgBase = 0x1004
	})
	// Register region beyond the address space.
	expect(t, CodeProgPort, Error, func(c *nodespec.Config) {
		c.Port.AddrBits = 16
		c.ProgPort = true
		c.ProgBase = 0xfffc
	})
	// A well-placed programming port is clean.
	cfg := base()
	cfg.ReqArb = arb.Programmable
	cfg.ProgPort = true
	cfg.ProgBase = 0x10_0000
	if got := codes(Check(MemSource(cfg))); len(got) != 0 {
		t.Errorf("valid programming port reported %v", got)
	}
}

func TestProgArb(t *testing.T) {
	expect(t, CodeProgArb, Warning, func(c *nodespec.Config) {
		c.ReqArb = arb.Programmable
	})
	expect(t, CodeProgArb, Warning, func(c *nodespec.Config) {
		c.RespArb = arb.Programmable
	})
}

func TestPipeProtocol(t *testing.T) {
	expect(t, CodePipeProtocol, Warning, func(c *nodespec.Config) {
		c.PipeSize = 1 // t3 with no request overlap
	})
	expect(t, CodePipeProtocol, Warning, func(c *nodespec.Config) {
		c.PipeSize = 6 // not a power of two
	})
	// t2 with pipe 1 is a legitimate minimal node.
	cfg := base()
	cfg.Port.Type = stbus.Type2
	cfg.PipeSize = 1
	if n := codes(Check(MemSource(cfg)))[CodePipeProtocol]; n != 0 {
		t.Errorf("t2 pipe=1 wrongly reported")
	}
}

func TestPortParam(t *testing.T) {
	expect(t, CodePortParam, Error, func(c *nodespec.Config) { c.Port.Type = stbus.Type1 })
	expect(t, CodePortParam, Error, func(c *nodespec.Config) { c.Port.DataBits = 24 })
	expect(t, CodePortParam, Error, func(c *nodespec.Config) { c.Port.AddrBits = 80 })
	expect(t, CodePortParam, Error, func(c *nodespec.Config) { c.NumInit = 0 })
	expect(t, CodePortParam, Error, func(c *nodespec.Config) { c.NumTgt = 40 })
	expect(t, CodePortParam, Error, func(c *nodespec.Config) { c.PipeSize = 65 })
}

func TestDupName(t *testing.T) {
	a, b := base(), base()
	b.Map = stbus.UniformMap(2, 0x2000, 0x1000)
	r := CheckSet([]Source{MemSource(a), MemSource(b)}, nil)
	if n := codes(r)[CodeDupName]; n != 1 {
		t.Errorf("duplicate name reported %d times, want 1:\n%v", n, r.Diags)
	}
	b.Name = "other"
	r = CheckSet([]Source{MemSource(a), MemSource(b)}, nil)
	if n := codes(r)[CodeDupName]; n != 0 {
		t.Errorf("distinct names wrongly reported as duplicates")
	}
}

func TestDupSeed(t *testing.T) {
	r := CheckSet([]Source{MemSource(base())}, []int64{1, 2, 1})
	if n := codes(r)[CodeDupSeed]; n != 1 {
		t.Errorf("duplicate seed reported %d times, want 1", n)
	}
	r = CheckSet([]Source{MemSource(base())}, []int64{1, 2, 3})
	if n := codes(r)[CodeDupSeed]; n != 0 {
		t.Errorf("distinct seeds wrongly reported")
	}
}

func TestDeadBin(t *testing.T) {
	expect(t, CodeDeadBin, Warning, func(c *nodespec.Config) {
		// Diagonal partial crossbar on a t3 node: completion_order/reordered
		// is declared but no initiator can reach two targets.
		c.Arch = nodespec.PartialCrossbar
		c.Allowed = [][]bool{{true, false}, {false, true}}
	})
	// A single row with fanout >= 2 makes reordering observable again.
	cfg := base()
	cfg.Arch = nodespec.PartialCrossbar
	cfg.Allowed = [][]bool{{true, true}, {false, true}}
	if n := codes(Check(MemSource(cfg)))[CodeDeadBin]; n != 0 {
		t.Errorf("CRVE017 reported on a config with fanout 2")
	}
	// A broken allowed shape must not cascade into (or panic) the dead-bin
	// check: CRVE008 owns that failure.
	bad := base()
	bad.Arch = nodespec.PartialCrossbar
	bad.Allowed = [][]bool{{true}}
	r := Check(MemSource(bad))
	if codes(r)[CodeDeadBin] != 0 || codes(r)[CodeAllowedShape] == 0 {
		t.Errorf("shape error should suppress CRVE017: %v", r.Diags)
	}
}

func TestParseDiagnosticsShortCircuitSemantics(t *testing.T) {
	src := Source{
		File: "broken.cfg",
		Parse: []Diagnostic{{
			Pos: Position{File: "broken.cfg", Line: 3}, Code: CodeParse,
			Severity: Error, Msg: "unknown parameter \"bogus\"",
		}},
	}
	r := Check(src)
	if len(r.Diags) != 1 || r.Diags[0].Code != CodeParse {
		t.Fatalf("want only the parse diagnostic, got %v", r.Diags)
	}
}

func TestReportSortTextAndJSON(t *testing.T) {
	r := &Report{}
	r.Addf(Position{File: "b.cfg", Line: 2}, CodeRegionOverlap, Error, "second")
	r.Addf(Position{File: "a.cfg", Line: 9}, CodeRegionGap, Warning, "first")
	r.Sort()
	if r.Diags[0].Pos.File != "a.cfg" {
		t.Errorf("sort order wrong: %v", r.Diags)
	}
	var text bytes.Buffer
	r.Text(&text)
	want := "a.cfg:9: warning: CRVE003: first"
	if !strings.Contains(text.String(), want) {
		t.Errorf("text output missing %q:\n%s", want, text.String())
	}
	if !strings.Contains(text.String(), "1 error(s), 1 warning(s)") {
		t.Errorf("summary line missing:\n%s", text.String())
	}

	var buf bytes.Buffer
	if err := r.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
		Errors      int          `json:"errors"`
		Warnings    int          `json:"warnings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Diagnostics) != 2 || decoded.Errors != 1 || decoded.Warnings != 1 {
		t.Errorf("JSON round-trip: %+v", decoded)
	}
}

func TestRulesTableCoversAllCodes(t *testing.T) {
	rules := Rules()
	if len(rules) < 8 {
		t.Fatalf("only %d rules documented", len(rules))
	}
	seen := map[Code]bool{}
	for _, rule := range rules {
		if seen[rule.Code] {
			t.Errorf("duplicate rule entry %s", rule.Code)
		}
		seen[rule.Code] = true
	}
	for _, c := range []Code{CodeParse, CodeRegionOverlap, CodeDupSeed, CodePortParam} {
		if !seen[c] {
			t.Errorf("rule table missing %s", c)
		}
	}
}
