package lint

import (
	"sort"

	"crve/internal/arb"
	"crve/internal/catg"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// Source is one configuration as seen by the linter: the parsed parameter
// set plus enough provenance to position diagnostics. KeyLine maps a
// parameter-file key (e.g. "map", "pipe") to the line that set it; it is nil
// for configurations synthesised in memory (the standard matrix), in which
// case diagnostics are positioned at the file level.
type Source struct {
	// File is the parameter-file path, or a display name (the config name)
	// for in-memory configurations.
	File string
	// Cfg is the parsed configuration, with defaults applied.
	Cfg nodespec.Config
	// KeyLine maps parameter keys to 1-based line numbers.
	KeyLine map[string]int
	// Parse holds parse-stage diagnostics (CodeParse). When it contains an
	// Error the semantic analyzers are skipped for this source: a half-
	// parsed config would only produce cascade noise.
	Parse []Diagnostic
}

// MemSource wraps an in-memory configuration (no file, no line numbers) for
// linting, positioning diagnostics at the configuration name.
func MemSource(cfg nodespec.Config) Source {
	cfg = cfg.WithDefaults()
	return Source{File: cfg.Name, Cfg: cfg}
}

// keyPos positions a diagnostic at the line that set key, falling back to
// the file as a whole when the key never appeared (or the source is
// in-memory).
func (s Source) keyPos(key string) Position {
	return Position{File: s.File, Line: s.KeyLine[key]}
}

// hasKey reports whether the parameter file set key explicitly.
func (s Source) hasKey(key string) bool {
	_, ok := s.KeyLine[key]
	return ok
}

// Rule documents one lint rule for the CLI code table and DESIGN.md.
type Rule struct {
	Code     Code
	Severity Severity
	Summary  string
}

// Rules returns the rule table in code order.
func Rules() []Rule {
	return []Rule{
		{CodeParse, Error, "parameter file does not parse (syntax, unknown key, bad value)"},
		{CodeRegionMalformed, Error, "address-map region with zero size or wrapping past 2^64"},
		{CodeRegionOverlap, Error, "address-map regions overlap"},
		{CodeRegionGap, Warning, "hole between consecutive address-map regions"},
		{CodeRegionTarget, Error, "region routes to a target port index out of range"},
		{CodeTargetUnmapped, Error, "target port that no address-map region routes to"},
		{CodeRegionAddrWidth, Error, "region extends beyond the 2^addr_bits address space"},
		{CodeRegionAlign, Warning, "region boundary not aligned to the data-bus width"},
		{CodeAllowedShape, Error, "partial-crossbar allowed matrix has the wrong shape"},
		{CodeInitiatorStranded, Error, "partial-crossbar row strands an initiator (no reachable target)"},
		{CodeTargetIsolated, Warning, "partial-crossbar target reachable by no initiator"},
		{CodeProgPort, Error, "programming port without prog_base, or its region overlaps the map"},
		{CodeProgArb, Warning, "programmable arbitration without a programming port"},
		{CodePipeProtocol, Warning, "pipe depth inconsistent with the protocol type"},
		{CodePortParam, Error, "illegal port/node parameter (type, width, endianness, counts, pipe)"},
		{CodeDupName, Error, "duplicate configuration name in the lint set"},
		{CodeDupSeed, Warning, "duplicate seed in the seed list"},
		{CodeDeadBin, Warning, "coverage model declares a statically unreachable bin (full coverage impossible)"},
		{CodeBindMismatch, Error, "bind edge joins two port bundles with differing configurations"},
		{CodeFabricUnreachable, Error, "address window black-holed downstream or reachable by no initiator"},
		{CodeFabricShadow, Warning, "address window only partially served across fabric hops"},
		{CodeFabricDangling, Error, "port bundle dangling, doubly bound, or bound with the wrong role"},
		{CodeFabricSrcID, Error, "source IDs collide or overflow on the return path"},
		{CodeFabricCycle, Error, "combinational cycle in the bind graph"},
	}
}

// Check runs every per-configuration analyzer over one source and returns
// its report. Matrix-level rules (duplicate names, duplicate seeds) live in
// CheckSet.
func Check(src Source) *Report {
	r := &Report{}
	r.Diags = append(r.Diags, src.Parse...)
	for _, d := range src.Parse {
		if d.Severity == Error {
			return r
		}
	}
	cfg := src.Cfg.WithDefaults()
	portsOK := checkPortParams(r, src, cfg)
	checkMap(r, src, cfg, portsOK)
	checkCrossbar(r, src, cfg, portsOK)
	checkProg(r, src, cfg)
	checkPipe(r, src, cfg)
	checkDeadBins(r, src, cfg, portsOK)
	return r
}

// CheckSet lints a whole regression matrix: every configuration plus the
// cross-configuration and run-level rules. seeds may be nil when the seed
// list is not known yet.
func CheckSet(srcs []Source, seeds []int64) *Report {
	r := &Report{}
	for _, src := range srcs {
		r.Diags = append(r.Diags, Check(src).Diags...)
	}
	checkDupNames(r, srcs)
	checkDupSeeds(r, seeds)
	r.Sort()
	return r
}

// checkPortParams is the positioned version of stbus.PortConfig.Validate
// plus the node port-count and pipe ranges from nodespec.Config.Validate.
// It reports whether the shape parameters (counts, widths) are sane enough
// for the structural analyzers to run without cascading.
func checkPortParams(r *Report, src Source, cfg nodespec.Config) bool {
	ok := true
	switch cfg.Port.Type {
	case stbus.Type2, stbus.Type3:
	case stbus.Type1:
		r.Addf(src.keyPos("type"), CodePortParam, Error,
			"node supports protocol t2/t3 only (t1 peripherals attach via a type converter)")
	default:
		r.Addf(src.keyPos("type"), CodePortParam, Error,
			"bad protocol type %d", int(cfg.Port.Type))
	}
	switch cfg.Port.DataBits {
	case 8, 16, 32, 64, 128, 256:
	default:
		r.Addf(src.keyPos("data_bits"), CodePortParam, Error,
			"bad data width %d (want 8..256, power of two)", cfg.Port.DataBits)
		ok = false
	}
	if cfg.Port.AddrBits < 1 || cfg.Port.AddrBits > 64 {
		r.Addf(src.keyPos("addr_bits"), CodePortParam, Error,
			"bad address width %d (want 1..64)", cfg.Port.AddrBits)
		ok = false
	}
	if cfg.Port.Endian != stbus.LittleEndian && cfg.Port.Endian != stbus.BigEndian {
		r.Addf(src.keyPos("endian"), CodePortParam, Error,
			"bad endianness %d", int(cfg.Port.Endian))
	}
	if cfg.NumInit < 1 || cfg.NumInit > nodespec.MaxPorts {
		r.Addf(src.keyPos("num_init"), CodePortParam, Error,
			"%d initiators out of range 1..%d", cfg.NumInit, nodespec.MaxPorts)
		ok = false
	}
	if cfg.NumTgt < 1 || cfg.NumTgt > nodespec.MaxPorts {
		r.Addf(src.keyPos("num_tgt"), CodePortParam, Error,
			"%d targets out of range 1..%d", cfg.NumTgt, nodespec.MaxPorts)
		ok = false
	}
	if cfg.PipeSize < 1 || cfg.PipeSize > 64 {
		r.Addf(src.keyPos("pipe"), CodePortParam, Error,
			"pipe size %d out of range 1..64", cfg.PipeSize)
	}
	return ok
}

// addrSpace returns the first address past the port address space, or 0 when
// the space covers all 64 bits.
func addrSpace(addrBits int) uint64 {
	if addrBits <= 0 || addrBits >= 64 {
		return 0
	}
	return uint64(1) << addrBits
}

// checkMap analyzes the address map: malformed regions, overlaps, gaps,
// out-of-range and unreachable targets, address-space overflow and bus-width
// alignment.
func checkMap(r *Report, src Source, cfg nodespec.Config, portsOK bool) {
	pos := src.keyPos("map")
	if len(cfg.Map) == 0 {
		r.Addf(Position{File: src.File}, CodeTargetUnmapped, Error,
			"configuration has no address map: every target port is unreachable")
		return
	}
	sorted := append(stbus.AddrMap(nil), cfg.Map...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })

	space := addrSpace(cfg.Port.AddrBits)
	busBytes := uint64(cfg.Port.DataBits / 8)
	for i, reg := range sorted {
		if reg.Size == 0 {
			r.Addf(pos, CodeRegionMalformed, Error,
				"region %#x:%#x has zero size", reg.Base, reg.Size)
			continue
		}
		if reg.End() < reg.Base {
			r.Addf(pos, CodeRegionMalformed, Error,
				"region at %#x wraps past the end of the 64-bit address space", reg.Base)
			continue
		}
		if portsOK && (reg.Target < 0 || reg.Target >= cfg.NumTgt) {
			r.Addf(pos, CodeRegionTarget, Error,
				"region at %#x routes to target %d, but the node has targets 0..%d",
				reg.Base, reg.Target, cfg.NumTgt-1)
		}
		if space != 0 && (reg.Base >= space || reg.End() > space) {
			r.Addf(pos, CodeRegionAddrWidth, Error,
				"region %#x..%#x extends beyond the %d-bit address space (last address %#x)",
				reg.Base, reg.End()-1, cfg.Port.AddrBits, space-1)
		}
		if portsOK && busBytes > 0 && (reg.Base%busBytes != 0 || reg.Size%busBytes != 0) {
			r.Addf(pos, CodeRegionAlign, Warning,
				"region %#x:%#x is not aligned to the %d-byte data bus: a bus-wide beat would straddle targets",
				reg.Base, reg.Size, busBytes)
		}
		if i == 0 {
			continue
		}
		prev := sorted[i-1]
		if prev.End() > reg.Base {
			r.Addf(pos, CodeRegionOverlap, Error,
				"regions at %#x and %#x overlap", prev.Base, reg.Base)
		} else if prev.End() < reg.Base {
			r.Addf(pos, CodeRegionGap, Warning,
				"hole %#x..%#x between regions: requests there get error responses",
				prev.End(), reg.Base-1)
		}
	}

	if portsOK {
		covered := make([]bool, cfg.NumTgt)
		for _, reg := range cfg.Map {
			if reg.Target >= 0 && reg.Target < cfg.NumTgt {
				covered[reg.Target] = true
			}
		}
		for t, ok := range covered {
			if !ok {
				r.Addf(pos, CodeTargetUnmapped, Error,
					"target %d has no address-map region: the port can never receive a request", t)
			}
		}
	}
}

// checkCrossbar analyzes the partial-crossbar connectivity matrix: shape,
// stranded initiators and isolated targets.
func checkCrossbar(r *Report, src Source, cfg nodespec.Config, portsOK bool) {
	if cfg.Arch != nodespec.PartialCrossbar || !portsOK {
		return
	}
	pos := src.keyPos("allowed")
	if len(cfg.Allowed) != cfg.NumInit {
		r.Addf(pos, CodeAllowedShape, Error,
			"allowed matrix has %d rows, want one per initiator (%d)", len(cfg.Allowed), cfg.NumInit)
		return
	}
	for i, row := range cfg.Allowed {
		if len(row) != cfg.NumTgt {
			r.Addf(pos, CodeAllowedShape, Error,
				"allowed row %d has %d columns, want one per target (%d)", i, len(row), cfg.NumTgt)
			return
		}
	}
	for i, row := range cfg.Allowed {
		stranded := true
		for _, ok := range row {
			if ok {
				stranded = false
				break
			}
		}
		if stranded {
			r.Addf(pos, CodeInitiatorStranded, Error,
				"initiator %d can reach no target: its row of the allowed matrix is all zero", i)
		}
	}
	for t := 0; t < cfg.NumTgt; t++ {
		isolated := true
		for i := 0; i < cfg.NumInit; i++ {
			if cfg.Allowed[i][t] {
				isolated = false
				break
			}
		}
		if isolated {
			r.Addf(pos, CodeTargetIsolated, Warning,
				"target %d is reachable by no initiator: its column of the allowed matrix is all zero", t)
		}
	}
}

// checkProg analyzes the programming port: prog_port without prog_base, the
// register region overlapping the address map or falling outside the address
// space, and a programmable policy without the port.
func checkProg(r *Report, src Source, cfg nodespec.Config) {
	if cfg.ProgPort {
		pos := src.keyPos("prog_port")
		progEnd := cfg.ProgBase + uint64(4*cfg.NumInit)
		if cfg.ProgBase == 0 && !src.hasKey("prog_base") {
			r.Addf(pos, CodeProgPort, Error,
				"prog_port enabled without prog_base: the priority registers have no address")
		} else {
			for _, reg := range cfg.Map {
				if cfg.ProgBase < reg.End() && reg.Base < progEnd {
					r.Addf(src.keyPos("prog_base"), CodeProgPort, Error,
						"programming region %#x..%#x overlaps the map region at %#x",
						cfg.ProgBase, progEnd-1, reg.Base)
				}
			}
			if space := addrSpace(cfg.Port.AddrBits); space != 0 && progEnd > space {
				r.Addf(src.keyPos("prog_base"), CodeProgPort, Error,
					"programming region %#x..%#x extends beyond the %d-bit address space",
					cfg.ProgBase, progEnd-1, cfg.Port.AddrBits)
			}
		}
	}
	if !cfg.ProgPort && (cfg.ReqArb == arb.Programmable || cfg.RespArb == arb.Programmable) {
		r.Addf(src.keyPos("req_arb"), CodeProgArb, Warning,
			"programmable arbitration without prog_port: priorities are frozen at the power-on defaults")
	}
}

// checkPipe analyzes pipe depth against the protocol type.
func checkPipe(r *Report, src Source, cfg nodespec.Config) {
	if cfg.PipeSize < 1 || cfg.PipeSize > 64 {
		return // already reported by checkPortParams
	}
	pos := src.keyPos("pipe")
	if cfg.Port.Type == stbus.Type3 && cfg.PipeSize == 1 {
		r.Addf(pos, CodePipeProtocol, Warning,
			"t3 node with pipe 1 cannot overlap requests: the out-of-order logic is unreachable")
	}
	if cfg.PipeSize&(cfg.PipeSize-1) != 0 {
		r.Addf(pos, CodePipeProtocol, Warning,
			"pipe size %d is not a power of two and does not map onto the RTL pipe stages", cfg.PipeSize)
	}
}

// checkDeadBins asks the coverage-model layer (catg.UnreachableBins) which
// bins the suite-level model for this configuration declares but can never
// hit. A dead bin means "full functional coverage" — the paper's sign-off
// target — is statically impossible and the closure engine would burn its
// whole budget on it, so it is worth a diagnostic before any cycle runs. The
// check needs sane shape parameters: a broken allowed matrix or port counts
// are already errors, and evaluating connectivity on them would only cascade.
func checkDeadBins(r *Report, src Source, cfg nodespec.Config, portsOK bool) {
	if !portsOK {
		return
	}
	if cfg.Arch == nodespec.PartialCrossbar {
		if len(cfg.Allowed) != cfg.NumInit {
			return // CRVE008 already reported
		}
		for _, row := range cfg.Allowed {
			if len(row) != cfg.NumTgt {
				return
			}
		}
	}
	for _, dead := range catg.UnreachableBins(cfg, catg.UnionTraffic(cfg)) {
		r.Addf(src.keyPos("allowed"), CodeDeadBin, Warning,
			"coverage bin %s is statically unreachable for this configuration: full functional coverage is impossible", dead)
	}
}

// checkDupNames reports configurations that share a name: their reports and
// VCD artifacts would overwrite each other in the output directory.
func checkDupNames(r *Report, srcs []Source) {
	first := map[string]Source{}
	for _, src := range srcs {
		name := src.Cfg.WithDefaults().Name
		if prev, ok := first[name]; ok {
			r.Addf(src.keyPos("name"), CodeDupName, Error,
				"configuration name %q already used by %s: reports and VCDs would overwrite", name, prev.File)
			continue
		}
		first[name] = src
	}
}

// checkDupSeeds reports seeds that appear twice in the run's seed list.
func checkDupSeeds(r *Report, seeds []int64) {
	seen := map[int64]bool{}
	for _, s := range seeds {
		if seen[s] {
			r.Addf(Position{}, CodeDupSeed, Warning,
				"seed %d appears more than once: the duplicate run adds cycles but no coverage", s)
			continue
		}
		seen[s] = true
	}
}
