package core

import (
	"strings"
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)

func cfg(nInit, nTgt int) nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: nInit, NumTgt: nTgt,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(nTgt, 0x1000, 0x1000),
	}.WithDefaults()
}

func smokeTest() Test {
	return Test{
		Name:    "smoke",
		Traffic: catg.TrafficConfig{Ops: 25, UnmappedPct: 5, IdlePct: 10},
		Target:  catg.TargetConfig{MinLatency: 1, MaxLatency: 4, GntGapPct: 15},
	}
}

func TestRunTestRTLPasses(t *testing.T) {
	res, err := RunTest(cfg(2, 2), RTLView, smokeTest(), 42, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("RTL run failed: %s\nviolations: %v\nscore: %v",
			res.Summary(), res.Violations, res.ScoreErrors)
	}
	if res.CodeCov == nil {
		t.Error("RTL run must expose code coverage")
	}
	if res.Transactions != 2*25 {
		t.Errorf("transactions = %d, want 50", res.Transactions)
	}
	if !strings.Contains(res.Summary(), "PASS") {
		t.Error("summary should say PASS")
	}
}

func TestRunTestBCAHasNoCodeCoverage(t *testing.T) {
	res, err := RunTest(cfg(2, 2), BCAView, smokeTest(), 42, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("BCA run failed: %s", res.Summary())
	}
	if res.CodeCov != nil {
		t.Error("BCA run must not expose code coverage (paper: no tool for SystemC)")
	}
}

func TestRunPairSignsOffCleanModel(t *testing.T) {
	pr, err := RunPair(cfg(2, 2), smokeTest(), 7, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.SignedOff() {
		t.Fatalf("clean pair not signed off:\nRTL: %s\nBCA: %s\ncov equal: %v (%s)\n%s",
			pr.RTL.Summary(), pr.BCA.Summary(), pr.CoverageEqual, pr.CoverageDiff, pr.Alignment)
	}
	if pr.Alignment.MinRate() != 100 {
		t.Errorf("alignment %.2f%%, want 100%%", pr.Alignment.MinRate())
	}
}

func TestRunPairRejectsBuggedModel(t *testing.T) {
	c := cfg(3, 1)
	c.ReqArb = arb.LRU
	pr, err := RunPair(c, smokeTest(), 7, bca.Bugs{LRUInit: true})
	if err != nil {
		t.Fatal(err)
	}
	if pr.SignedOff() {
		t.Error("bugged model must not sign off")
	}
	if pr.Alignment.MinRate() == 100 {
		t.Error("alignment should drop with the LRU bug")
	}
}

func TestRunTestVCDOnlyWhenRequested(t *testing.T) {
	res, err := RunTest(cfg(1, 1), RTLView, smokeTest(), 3, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VCD != nil {
		t.Error("VCD captured without request")
	}
	res, err = RunTest(cfg(1, 1), RTLView, smokeTest(), 3, RunOptions{DumpVCD: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VCD) == 0 {
		t.Error("VCD missing")
	}
}

func TestRunTestSeedsMatter(t *testing.T) {
	a, err := RunTest(cfg(1, 1), RTLView, smokeTest(), 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTest(cfg(1, 1), RTLView, smokeTest(), 2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.Coverage.SortedBinDump() == b.Coverage.SortedBinDump() {
		t.Error("different seeds produced identical runs")
	}
	c, err := RunTest(cfg(1, 1), RTLView, smokeTest(), 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != c.Cycles || a.Coverage.SortedBinDump() != c.Coverage.SortedBinDump() {
		t.Error("same seed must reproduce the run exactly")
	}
}

func TestBuildDUTViews(t *testing.T) {
	sm := sim.New()
	d, err := BuildDUT(sim.Root(sm), cfg(2, 2), RTLView, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if d.View() != RTLView || len(d.InitPorts()) != 2 || len(d.TgtPorts()) != 2 {
		t.Error("RTL DUT malformed")
	}
	sm2 := sim.New()
	d2, err := BuildDUT(sim.Root(sm2), cfg(2, 2), BCAView, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.View() != BCAView || d2.CodeCoverage() != nil {
		t.Error("BCA DUT malformed")
	}
	if _, err := BuildDUT(sim.Root(sim.New()), cfg(2, 2), View(9), bca.Bugs{}); err == nil {
		t.Error("unknown view should fail")
	}
	if RTLView.String() != "RTL" || BCAView.String() != "BCA" {
		t.Error("view names")
	}
}

func TestRunTestDetectsStall(t *testing.T) {
	// A test with an impossible cycle budget must report not-drained.
	tst := smokeTest()
	tst.MaxCycles = 3
	res, err := RunTest(cfg(1, 1), RTLView, tst, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drained || res.Passed() {
		t.Error("3-cycle budget should not drain")
	}
}
