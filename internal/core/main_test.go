package core

import (
	"os"
	"testing"

	"crve/internal/sim"
)

// TestMain runs the whole core suite — which elaborates every DUT view and
// the full bench around it — under the kernel's strict-sensitivity check, so
// an undersensitized combinational process anywhere in the design stack
// fails loudly instead of levelizing against an incomplete input set.
func TestMain(m *testing.M) {
	sim.StrictSensitivity = true
	os.Exit(m.Run())
}
