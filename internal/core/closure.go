package core

// This file defines the serializable records of a coverage-closure run — the
// machine-checkable form of the paper's "coverage not full → add tests" arc.
// The closure engine (internal/closure) fills them in; they live here, next
// to RunRecord/PairRecord, because they are results of the common flow, not
// planner internals: reports, CI greps and trend tooling consume them as
// JSON without importing the engine.

// ClosureUnit records one synthesized follow-up work unit of a closure
// iteration: which holes it was aimed at and what it bought.
type ClosureUnit struct {
	// Test is the synthesized test name; it encodes the targeted hole class
	// and a content hash of the biased traffic, so the incremental cache can
	// never confuse two different syntheses under one name.
	Test string `json:"test"`
	Seed int64  `json:"seed"`
	// Holes lists the "item/bin" holes the planner aimed this unit at.
	Holes []string `json:"holes"`
	// NewBins counts the bins this unit was the first to hit, attributed in
	// canonical merge order (so the split is deterministic at any worker
	// count).
	NewBins int `json:"new_bins"`
	// Cycles is the simulated cost of the unit on both views (RTL + BCA).
	Cycles uint64 `json:"cycles"`
	// Cached reports whether the unit was served from the result cache
	// rather than simulated.
	Cached bool `json:"cached"`
	// Passed reports whether every check of the pair run passed.
	Passed bool `json:"passed"`
}

// ClosureIteration records one trip around the closure loop.
type ClosureIteration struct {
	Iter int `json:"iter"`
	// HolesBefore/HolesAfter count unhit bins entering and leaving the
	// iteration; NewBins is their difference, attributed per unit.
	HolesBefore int `json:"holes_before"`
	HolesAfter  int `json:"holes_after"`
	NewBins     int `json:"new_bins"`
	// Cycles sums the simulated cost of the iteration's units (both views,
	// cached or not — the trajectory must not depend on cache state).
	Cycles uint64 `json:"cycles"`
	// CacheHits counts units served from the incremental cache.
	CacheHits int           `json:"cache_hits"`
	Units     []ClosureUnit `json:"units"`
}

// Closure stop reasons.
const (
	// ClosureFull — every declared bin is hit: the paper's sign-off arc is
	// complete.
	ClosureFull = "full"
	// ClosureMaxIters — the iteration budget ran out with holes remaining.
	ClosureMaxIters = "max-iters"
	// ClosureBudget — the cycle budget ran out with holes remaining.
	ClosureBudget = "budget"
	// ClosureStalled — consecutive iterations closed no new bin; more of the
	// same stimulus is not going to help.
	ClosureStalled = "stalled"
	// ClosureDeadBins — only statically unreachable bins remain (see lint
	// CRVE017); no stimulus can close them.
	ClosureDeadBins = "dead-bins"
)

// ClosureTrajectory is the complete, serializable record of one closure run
// on one configuration.
type ClosureTrajectory struct {
	Config string `json:"config"`
	Group  string `json:"group"`
	// TotalBins is the number of declared bins; HolesStart the unhit count
	// after the base suite ran.
	TotalBins  int `json:"total_bins"`
	HolesStart int `json:"holes_start"`
	HolesEnd   int `json:"holes_end"`
	// DeadBins lists statically unreachable holes (never planned for).
	DeadBins []string `json:"dead_bins,omitempty"`
	// StartPercent/FinalPercent bracket the functional-coverage trajectory.
	StartPercent float64            `json:"start_percent"`
	FinalPercent float64            `json:"final_percent"`
	Iterations   []ClosureIteration `json:"iterations"`
	// Reason is why the loop stopped: one of the Closure* constants.
	Reason string `json:"reason"`
	// Converged reports whether every closable hole was closed (Reason is
	// ClosureFull, or ClosureDeadBins with nothing else remaining).
	Converged bool `json:"converged"`
	// TotalCycles sums iteration cycles (the base suite is not included: it
	// would have run with or without closure).
	TotalCycles uint64 `json:"total_cycles"`
	// UnitsRun / UnitsCached split the synthesized units by how they were
	// satisfied.
	UnitsRun    int `json:"units_run"`
	UnitsCached int `json:"units_cached"`
	// Failures counts synthesized units whose pair run failed a check — a
	// closure run is still a regression run, and a failing follow-up test is
	// a finding, not a detail.
	Failures int `json:"failures"`
}
