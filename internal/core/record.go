package core

import (
	"crve/internal/catg"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stba"
)

// RunRecord is the serializable form of a RunResult: everything the
// regression aggregates and reports need, minus the waveform dump (VCDs are
// regeneration artifacts, not results — caching them would dwarf the results
// they support) and minus the configuration (the cache key already pins it,
// so the loader re-attaches the one it looked up with).
type RunRecord struct {
	Test         string            `json:"test"`
	Seed         int64             `json:"seed"`
	View         View              `json:"view"`
	Cycles       uint64            `json:"cycles"`
	Drained      bool              `json:"drained"`
	Transactions int               `json:"transactions"`
	Latencies    []uint64          `json:"latencies,omitempty"`
	Violations   []catg.Violation  `json:"violations,omitempty"`
	ScoreErrors  []string          `json:"score_errors,omitempty"`
	Coverage     *coverage.Group   `json:"coverage"`
	CodeCov      *coverage.CodeMap `json:"code_cov,omitempty"`
	Kernel       *sim.KernelStats  `json:"kernel,omitempty"`
}

// Record snapshots the run for persistence.
func (r *RunResult) Record() *RunRecord {
	return &RunRecord{
		Test: r.Test, Seed: r.Seed, View: r.View,
		Cycles: r.Cycles, Drained: r.Drained, Transactions: r.Transactions,
		Latencies: r.Latencies, Violations: r.Violations, ScoreErrors: r.ScoreErrors,
		Coverage: r.Coverage, CodeCov: r.CodeCov, Kernel: r.Kernel,
	}
}

// Result rebuilds the RunResult for configuration cfg. The VCD field stays
// nil: report writers skip waveform artifacts for cache-served runs.
func (rec *RunRecord) Result(cfg nodespec.Config) *RunResult {
	return &RunResult{
		Test: rec.Test, Seed: rec.Seed, View: rec.View, DUTIn: cfg,
		Cycles: rec.Cycles, Drained: rec.Drained, Transactions: rec.Transactions,
		Latencies: rec.Latencies, Violations: rec.Violations, ScoreErrors: rec.ScoreErrors,
		Coverage: rec.Coverage, CodeCov: rec.CodeCov, Kernel: rec.Kernel,
	}
}

// PairRecord is the serializable form of a PairResult — the unit the
// incremental regression cache stores per (config, test, seed, bugs, code
// version) key.
type PairRecord struct {
	RTL           *RunRecord   `json:"rtl"`
	BCA           *RunRecord   `json:"bca"`
	Alignment     *stba.Report `json:"alignment"`
	CoverageEqual bool         `json:"coverage_equal"`
	CoverageDiff  string       `json:"coverage_diff,omitempty"`
}

// Record snapshots the pair for persistence.
func (p *PairResult) Record() *PairRecord {
	return &PairRecord{
		RTL: p.RTL.Record(), BCA: p.BCA.Record(),
		Alignment:     p.Alignment,
		CoverageEqual: p.CoverageEqual, CoverageDiff: p.CoverageDiff,
	}
}

// Result rebuilds the PairResult for configuration cfg.
func (rec *PairRecord) Result(cfg nodespec.Config) *PairResult {
	return &PairResult{
		RTL: rec.RTL.Result(cfg), BCA: rec.BCA.Result(cfg),
		Alignment:     rec.Alignment,
		CoverageEqual: rec.CoverageEqual, CoverageDiff: rec.CoverageDiff,
	}
}
