package core

import (
	"context"
	"reflect"
	"testing"

	"crve/internal/bca"
	"crve/internal/sim"
)

// compareRun asserts a lane-demultiplexed report is byte-identical to the
// scalar reference, field by field so a mismatch names what diverged. The
// kernel profile is excluded: it describes the whole shared simulator.
func compareRun(t *testing.T, tag string, got, want *RunResult) {
	t.Helper()
	got = &(*got)
	want = &(*want)
	gk, wk := *got, *want
	gk.Kernel, wk.Kernel = nil, nil
	if reflect.DeepEqual(&gk, &wk) {
		return
	}
	checks := []struct {
		name string
		g, w interface{}
	}{
		{"Cycles", gk.Cycles, wk.Cycles},
		{"Drained", gk.Drained, wk.Drained},
		{"Transactions", gk.Transactions, wk.Transactions},
		{"Latencies", gk.Latencies, wk.Latencies},
		{"Violations", gk.Violations, wk.Violations},
		{"ScoreErrors", gk.ScoreErrors, wk.ScoreErrors},
		{"CodeCov", gk.CodeCov, wk.CodeCov},
		{"VCD", gk.VCD, wk.VCD},
		{"Wave", gk.Wave, wk.Wave},
		{"Alignment", gk.Alignment, wk.Alignment},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.g, c.w) {
			t.Errorf("%s: %s diverges from the scalar run\nlane:   %+v\nscalar: %+v", tag, c.name, c.g, c.w)
		}
	}
	if gd, wd := gk.Coverage.SortedBinDump(), wk.Coverage.SortedBinDump(); gd != wd {
		t.Errorf("%s: coverage bins diverge from the scalar run\nlane:\n%s\nscalar:\n%s", tag, gd, wd)
	}
	// Anything not covered by the named checks (future fields) still fails.
	t.Errorf("%s: lane report != scalar report\nlane:   %s\nscalar: %s", tag, gk.Summary(), wk.Summary())
}

// TestLaneScalarEquivalence is the headline property of lane-parallel
// execution: every per-seed report demultiplexed from a lane run — counts,
// latencies, violations, coverage bins, even the text VCD — is byte-identical
// to the scalar run of that seed, across views, kernels, and a bugged model.
func TestLaneScalarEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7}
	cases := []struct {
		name   string
		nInit  int
		nTgt   int
		view   View
		kernel sim.Kernel
		bugs   bca.Bugs
	}{
		{"rtl-compiled", 2, 2, RTLView, sim.KernelCompiled, bca.Bugs{}},
		{"rtl-levelized", 2, 2, RTLView, sim.KernelLevelized, bca.Bugs{}},
		{"bca-compiled", 2, 2, BCAView, sim.KernelCompiled, bca.Bugs{}},
		{"bca-bugged", 3, 1, BCAView, sim.KernelCompiled, bca.Bugs{LRUInit: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := RunOptions{DumpVCD: true, RecordWave: true, KernelStats: true, Kernel: tc.kernel, Bugs: tc.bugs}
			lres, err := RunTestLanes(context.Background(), cfg(tc.nInit, tc.nTgt), tc.view, smokeTest(), seeds, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(lres) != len(seeds) {
				t.Fatalf("lane run returned %d results for %d seeds", len(lres), len(seeds))
			}
			if lres[0].Kernel == nil || lres[0].Kernel.Lanes != len(seeds) {
				t.Errorf("lane kernel profile missing or unlabelled: %+v", lres[0].Kernel)
			}
			// Only the RTL view carries IR-declared processes; the BCA model
			// is pure closures, so its lane runs legitimately fuse nothing.
			if tc.kernel == sim.KernelCompiled && tc.view == RTLView && lres[0].Kernel.FusedLaneEvals == 0 {
				t.Errorf("compiled lane run fused no lane evals")
			}
			for i, seed := range seeds {
				sres, err := RunTest(cfg(tc.nInit, tc.nTgt), tc.view, smokeTest(), seed, opt)
				if err != nil {
					t.Fatal(err)
				}
				if lres[i].Seed != seed {
					t.Fatalf("result %d carries seed %d, want %d", i, lres[i].Seed, seed)
				}
				compareRun(t, tc.name, lres[i], sres)
			}
		})
	}
}

// TestLanePairEquivalence extends the property to the paired flow: per-seed
// PairResults from RunPairLanes — alignment reports, coverage equality, the
// sign-off verdict — match RunPairCtx seed for seed, clean and bugged.
func TestLanePairEquivalence(t *testing.T) {
	seeds := []int64{11, 12, 13}
	for _, tc := range []struct {
		name string
		bugs bca.Bugs
	}{
		{"clean", bca.Bugs{}},
		{"bugged", bca.Bugs{LRUInit: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg(3, 1)
			opt := RunOptions{Kernel: sim.KernelCompiled, Bugs: tc.bugs}
			prs, err := RunPairLanes(context.Background(), c, smokeTest(), seeds, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i, seed := range seeds {
				ref, err := RunPairCtx(context.Background(), c, smokeTest(), seed, opt)
				if err != nil {
					t.Fatal(err)
				}
				pr := prs[i]
				if !reflect.DeepEqual(pr.Alignment, ref.Alignment) {
					t.Errorf("seed %d: alignment diverges\nlane:   %+v\nscalar: %+v", seed, pr.Alignment, ref.Alignment)
				}
				if pr.CoverageEqual != ref.CoverageEqual || pr.CoverageDiff != ref.CoverageDiff {
					t.Errorf("seed %d: coverage verdict (%v, %q) vs scalar (%v, %q)",
						seed, pr.CoverageEqual, pr.CoverageDiff, ref.CoverageEqual, ref.CoverageDiff)
				}
				if pr.SignedOff() != ref.SignedOff() {
					t.Errorf("seed %d: sign-off %v vs scalar %v", seed, pr.SignedOff(), ref.SignedOff())
				}
				compareRun(t, "rtl", pr.RTL, ref.RTL)
				compareRun(t, "bca", pr.BCA, ref.BCA)
			}
		})
	}
}

// TestLaneStallMatchesScalar pins the per-lane timeout path: an impossible
// cycle budget reports not-drained at the same cycle count as a scalar run.
func TestLaneStallMatchesScalar(t *testing.T) {
	tst := smokeTest()
	tst.MaxCycles = 3
	seeds := []int64{1, 2}
	lres, err := RunTestLanes(context.Background(), cfg(1, 1), RTLView, tst, seeds, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		sres, err := RunTest(cfg(1, 1), RTLView, tst, seed, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if lres[i].Drained || lres[i].Cycles != sres.Cycles {
			t.Errorf("seed %d: lane stall (drained=%v cycles=%d) vs scalar (drained=%v cycles=%d)",
				seed, lres[i].Drained, lres[i].Cycles, sres.Drained, sres.Cycles)
		}
	}
}

// TestLaneSeedCapacity pins the API edges: empty seed list, single-seed
// scalar fallback, and the 64-seed capacity error.
func TestLaneSeedCapacity(t *testing.T) {
	if res, err := RunTestLanes(context.Background(), cfg(1, 1), RTLView, smokeTest(), nil, RunOptions{}); err != nil || res != nil {
		t.Errorf("empty seeds: res=%v err=%v", res, err)
	}
	res, err := RunTestLanes(context.Background(), cfg(1, 1), RTLView, smokeTest(), []int64{5}, RunOptions{})
	if err != nil || len(res) != 1 || res[0].Seed != 5 {
		t.Errorf("single seed fallback: res=%v err=%v", res, err)
	}
	big := make([]int64, MaxLanes+1)
	if _, err := RunTestLanes(context.Background(), cfg(1, 1), RTLView, smokeTest(), big, RunOptions{}); err == nil {
		t.Error("65 seeds must exceed lane capacity")
	}
}
