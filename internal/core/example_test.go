package core_test

import (
	"fmt"
	"log"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// ExampleRunPair runs one (test, seed) against both design views and checks
// the paper's sign-off criteria: all automatic checks pass, functional
// coverage matches bin for bin, and every port meets the 99 % alignment
// rate.
func ExampleRunPair() {
	cfg := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(2, 0x1000, 0x1000),
	}
	test := core.Test{
		Name:    "example",
		Traffic: catg.TrafficConfig{Ops: 20},
		Target:  catg.TargetConfig{MinLatency: 1, MaxLatency: 4},
	}
	pair, err := core.RunPair(cfg, test, 1, bca.Bugs{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RTL passed:", pair.RTL.Passed())
	fmt.Println("BCA passed:", pair.BCA.Passed())
	fmt.Println("coverage equal:", pair.CoverageEqual)
	fmt.Printf("min alignment: %.0f%%\n", pair.Alignment.MinRate())
	fmt.Println("signed off:", pair.SignedOff())
	// Output:
	// RTL passed: true
	// BCA passed: true
	// coverage equal: true
	// min alignment: 100%
	// signed off: true
}
