// Lane-parallel test execution: one simulator runs the same (config, view,
// test) for up to 64 seeds at once, one seed per bit-sliced lane (see
// internal/sim/lane.go). The DUT's IR-declared processes evaluate all seeds
// per bytecode pass; the testbench closures — BFMs, monitors, checkers — run
// per lane under the lane dispatch, so every seed observes exactly what its
// scalar run would and the per-seed RunResults demultiplex byte-identical.
//
// Each lane lives its own scalar lifecycle on the shared clock: it drains
// (all its BFMs done) or times out at its own traffic-derived cycle limit,
// runs the same five-cycle settle tail, then retires via SetLaneActive so its
// closures stop while surviving lanes keep stepping.
package core

import (
	"context"
	"fmt"

	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/vcd"
)

// MaxLanes is the lane capacity of one simulator: one seed per bit of the
// plane words.
const MaxLanes = 64

// RunTestLanes runs one (config, view, test) across up to MaxLanes seeds in
// a single lane-parallel simulator and returns one RunResult per seed, index-
// matched to seeds. A single seed falls back to the scalar runner; an empty
// seed list returns nil. opt.AlignWith, when set, applies to every lane —
// per-seed alignment references come from RunPairLanes. The kernel profile
// (opt.KernelStats) describes the shared simulator and rides on the first
// seed's report only.
func RunTestLanes(ctx context.Context, cfg nodespec.Config, view View, test Test, seeds []int64, opt RunOptions) ([]*RunResult, error) {
	return runTestLanes(ctx, cfg, view, test, seeds, opt, nil)
}

// runTestLanes is the lane runner proper. align, when non-nil, carries one
// alignment reference per seed (nil entries allowed).
func runTestLanes(ctx context.Context, cfg nodespec.Config, view View, test Test, seeds []int64, opt RunOptions, align []*vcd.Recording) ([]*RunResult, error) {
	if len(seeds) > MaxLanes {
		return nil, fmt.Errorf("core: %d seeds exceed the %d-lane capacity", len(seeds), MaxLanes)
	}
	if align != nil && len(align) != len(seeds) {
		return nil, fmt.Errorf("core: %d alignment references for %d seeds", len(align), len(seeds))
	}
	if len(seeds) == 0 {
		return nil, nil
	}
	if len(seeds) == 1 {
		// One seed gains nothing from lane mode: run it scalar.
		o := opt
		if align != nil {
			o.AlignWith = align[0]
		}
		res, err := RunTestCtx(ctx, cfg, view, test, seeds[0], o)
		if err != nil {
			return nil, err
		}
		return []*RunResult{res}, nil
	}

	cfg = cfg.WithDefaults()
	sm := sim.New()
	sm.Kernel = opt.Kernel
	sm.Timing = opt.KernelStats
	sm.SetLanes(len(seeds))
	benches := make([]*benchInst, len(seeds))
	for l, seed := range seeds {
		sm.BeginLane(l)
		o := opt
		if align != nil {
			o.AlignWith = align[l]
		}
		b, err := buildBench(sm, cfg, view, test, seed, o)
		if err != nil {
			sm.EndBuild()
			return nil, err
		}
		benches[l] = b
	}
	sm.EndBuild()

	// Per-lane lifecycle, reproducing the scalar runner cycle-exactly: the
	// drain condition is checked before the limit (a run draining exactly at
	// its limit counts as drained, like RunUntil's final done() probe), a
	// drained lane runs a tailLen-cycle settle tail, and a finished lane
	// retires from the shared clock.
	const tailLen = 5
	type laneState struct {
		limit    int
		tail     bool
		tailLeft int
		finished bool
	}
	st := make([]laneState, len(benches))
	for l, b := range benches {
		st[l].limit = b.limit(test)
	}
	finish := func(l int, drained bool) {
		st[l].finished = true
		benches[l].res.Drained = drained
		benches[l].res.Cycles = sm.Cycle()
		sm.SetLaneActive(l, false)
	}
	live := len(benches)
	poll := ctx.Done() != nil
	for live > 0 {
		for l := range st {
			s := &st[l]
			if s.finished {
				continue
			}
			if !s.tail {
				if benches[l].done() {
					s.tail = true
					s.tailLeft = tailLen
				} else if sm.Cycle() >= uint64(s.limit) {
					finish(l, false)
					live--
					continue
				}
			}
			if s.tail && s.tailLeft == 0 {
				finish(l, true)
				live--
			}
		}
		if live == 0 {
			break
		}
		if poll && sm.Cycle()&63 == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("core: %s %s lanes: %w", view, test.Name, ctx.Err())
		}
		if err := sm.Step(); err != nil {
			// A kernel error is global: every unfinished lane reports
			// undrained at the failing cycle, mirroring the scalar runner's
			// collect-on-error shape.
			for l := range st {
				if !st[l].finished {
					finish(l, false)
					live--
				}
			}
			break
		}
		for l := range st {
			if st[l].tail && !st[l].finished {
				st[l].tailLeft--
			}
		}
	}

	results := make([]*RunResult, len(benches))
	for l, b := range benches {
		res, err := b.collect()
		if err != nil {
			return nil, err
		}
		results[l] = res
	}
	if opt.KernelStats {
		results[0].Kernel = sm.Stats()
	}
	return results, nil
}

// RunPairLanes is the lane-parallel RunPairCtx: the RTL view runs all seeds
// as lanes with per-lane waveform recordings, then the BCA view runs all
// seeds as lanes with each lane's streaming alignment observer replaying its
// own seed's recording. Returns one PairResult per seed, index-matched.
func RunPairLanes(ctx context.Context, cfg nodespec.Config, test Test, seeds []int64, opt RunOptions) ([]*PairResult, error) {
	rtlOpt := RunOptions{DumpVCD: opt.DumpVCD, RecordWave: true, KernelStats: opt.KernelStats, Kernel: opt.Kernel}
	rress, err := runTestLanes(ctx, cfg, RTLView, test, seeds, rtlOpt, nil)
	if err != nil {
		return nil, fmt.Errorf("core: RTL lanes: %w", err)
	}
	waves := make([]*vcd.Recording, len(rress))
	for i, r := range rress {
		waves[i] = r.Wave
	}
	bcaOpt := RunOptions{
		DumpVCD: opt.DumpVCD, RecordWave: opt.RecordWave,
		KernelStats: opt.KernelStats, Kernel: opt.Kernel, Bugs: opt.Bugs,
	}
	bress, err := runTestLanes(ctx, cfg, BCAView, test, seeds, bcaOpt, waves)
	if err != nil {
		return nil, fmt.Errorf("core: BCA lanes: %w", err)
	}
	prs := make([]*PairResult, len(seeds))
	for i := range prs {
		rres, bres := rress[i], bress[i]
		pr := &PairResult{RTL: rres, BCA: bres, Alignment: bres.Alignment}
		bres.Alignment = nil
		if !opt.RecordWave {
			// The RTL recording was only the alignment reference; drop it
			// unless the caller asked for the artifact.
			rres.Wave = nil
		}
		pr.CoverageEqual, pr.CoverageDiff = rres.Coverage.EqualHits(bres.Coverage)
		prs[i] = pr
	}
	return prs, nil
}
