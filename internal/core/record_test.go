package core

import (
	"encoding/json"
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/nodespec"
	"crve/internal/stba"
	"crve/internal/stbus"
)

// TestPairRecordRoundTrip runs one real pair, snapshots it through JSON and
// checks the restored result is indistinguishable in every report the
// regression layer derives from it — the contract the incremental cache
// depends on.
func TestPairRecordRoundTrip(t *testing.T) {
	cfg := nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 1,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map: stbus.UniformMap(1, 0x1000, 0x1000),
	}.WithDefaults()
	test := Test{
		Name:    "record_round_trip",
		Traffic: catg.TrafficConfig{Ops: 6, Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore}, Sizes: []int{4}},
	}
	pair, err := RunPair(cfg, test, 7, bca.Bugs{})
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(pair.Record())
	if err != nil {
		t.Fatal(err)
	}
	rec := &PairRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		t.Fatal(err)
	}
	back := rec.Result(cfg)

	if back.RTL.Summary() != pair.RTL.Summary() || back.BCA.Summary() != pair.BCA.Summary() {
		t.Errorf("summaries changed:\n%s\n%s\nvs\n%s\n%s",
			pair.RTL.Summary(), pair.BCA.Summary(), back.RTL.Summary(), back.BCA.Summary())
	}
	if back.SignedOff() != pair.SignedOff() {
		t.Errorf("sign-off changed: %v vs %v", pair.SignedOff(), back.SignedOff())
	}
	if back.Alignment.MinRate() != pair.Alignment.MinRate() {
		t.Errorf("alignment %.4f vs %.4f", pair.Alignment.MinRate(), back.Alignment.MinRate())
	}
	if back.Alignment.String() != pair.Alignment.String() {
		t.Error("alignment table changed across round trip")
	}
	if eq, diff := back.RTL.Coverage.EqualHits(pair.RTL.Coverage); !eq {
		t.Errorf("RTL coverage changed: %s", diff)
	}
	if back.RTL.CodeCov == nil || back.RTL.CodeCov.Report() != pair.RTL.CodeCov.Report() {
		t.Error("RTL code coverage changed across round trip")
	}
	// The paper's asymmetry must survive: the BCA view has no code coverage.
	if back.BCA.CodeCov != nil {
		t.Error("BCA code coverage must stay nil")
	}
	if back.RTL.VCD != nil || back.BCA.VCD != nil {
		t.Error("records must not carry waveforms")
	}
	if back.RTL.DUTIn.Name != cfg.Name {
		t.Errorf("restored DUTIn %q", back.RTL.DUTIn.Name)
	}
	if len(back.RTL.Latencies) != len(pair.RTL.Latencies) {
		t.Errorf("latencies %d vs %d", len(pair.RTL.Latencies), len(back.RTL.Latencies))
	}
}

// TestRunRecordKeepsFailures checks failed runs round-trip as failed —
// a cache that launders failures into passes would be worse than no cache.
func TestRunRecordKeepsFailures(t *testing.T) {
	res := &RunResult{
		Test: "t", Seed: 1, View: BCAView,
		Drained:     true,
		Violations:  []catg.Violation{{Cycle: 9, Port: "init0", Rule: "stability", Detail: "payload changed"}},
		ScoreErrors: []string{"lost transaction"},
	}
	data, err := json.Marshal(res.Record())
	if err != nil {
		t.Fatal(err)
	}
	rec := &RunRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		t.Fatal(err)
	}
	back := rec.Result(nodespec.Config{}.WithDefaults())
	if back.Passed() {
		t.Error("failed run restored as passed")
	}
	if len(back.Violations) != 1 || back.Violations[0].String() != res.Violations[0].String() {
		t.Errorf("violations %v", back.Violations)
	}
}

// TestEmptyAlignmentFailsSignoff is the regression test for the vacuous
// sign-off hole at the pair level: a PairResult whose alignment report is
// nil or empty — a zero-value or truncated cached record — used to sign off
// because Report.AllPass() was vacuously true.
func TestEmptyAlignmentFailsSignoff(t *testing.T) {
	passing := &RunResult{Drained: true}
	for name, rep := range map[string]*stba.Report{"nil": nil, "empty": {}} {
		pr := &PairResult{RTL: passing, BCA: passing, Alignment: rep, CoverageEqual: true}
		if pr.SignedOff() {
			t.Errorf("pair with %s alignment report must not sign off", name)
		}
	}
	// A truncated record restores without ports and must stay failed too.
	rec := &PairRecord{}
	if err := json.Unmarshal([]byte(`{"rtl":{"drained":true},"bca":{"drained":true},"coverage_equal":true}`), rec); err != nil {
		t.Fatal(err)
	}
	if rec.Result(nodespec.Config{}.WithDefaults()).SignedOff() {
		t.Error("truncated record without alignment must not sign off")
	}
}
